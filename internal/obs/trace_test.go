package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"ecndelay/internal/des"
)

func TestTracerCountsAndFanout(t *testing.T) {
	m1, m2 := NewMemorySink(8), NewMemorySink(8)
	tr := NewTracer(m1)
	tr.AddSink(m2)
	tr.Emit(Event{Type: Enqueue, Size: 100})
	tr.Emit(Event{Type: Enqueue, Size: 200})
	tr.Emit(Event{Type: Mark})
	if got := tr.Count(Enqueue); got != 2 {
		t.Errorf("Count(Enqueue) = %d, want 2", got)
	}
	if got := tr.Count(Mark); got != 1 {
		t.Errorf("Count(Mark) = %d, want 1", got)
	}
	if got := tr.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	if len(m1.Events()) != 3 || len(m2.Events()) != 3 {
		t.Fatalf("sink lengths %d/%d, want 3/3", len(m1.Events()), len(m2.Events()))
	}
	if m1.Events()[1].Size != 200 {
		t.Errorf("event not delivered in order: %+v", m1.Events()[1])
	}
}

func TestMemorySinkLimit(t *testing.T) {
	m := NewMemorySink(2)
	m.Limit = 2
	for i := 0; i < 5; i++ {
		m.Event(Event{Pkt: uint64(i)})
	}
	if len(m.Events()) != 2 || m.Dropped() != 3 {
		t.Fatalf("retained %d dropped %d, want 2/3", len(m.Events()), m.Dropped())
	}
	if m.Events()[0].Pkt != 0 || m.Events()[1].Pkt != 1 {
		t.Error("limit did not keep the earliest events")
	}
}

func TestEventTypeAndKindNames(t *testing.T) {
	want := map[EventType]string{
		Enqueue: "enq", Dequeue: "deq", Mark: "mark", Pause: "pause",
		Resume: "resume", WireDrop: "wiredrop", BufDrop: "bufdrop",
		Deliver: "deliver", Retx: "retx", DoubleFree: "dfree",
	}
	for typ, name := range want {
		if typ.String() != name {
			t.Errorf("EventType(%d).String() = %q, want %q", typ, typ.String(), name)
		}
	}
	if EventType(200).String() != "?" {
		t.Error("out-of-range event type should render as ?")
	}
	if KindName(0) != "data" || KindName(200) != "?" {
		t.Error("KindName mapping broken")
	}
	// Packet-less records (PFC pause/resume) carry KindNone and must not
	// render as data packets.
	if KindName(KindNone) != "-" {
		t.Errorf("KindName(KindNone) = %q, want %q", KindName(KindNone), "-")
	}
}

func TestJSONLSinkSchema(t *testing.T) {
	var sb strings.Builder
	s := NewJSONLSink(&sb)
	s.Event(Event{
		T: des.Time(1500), Type: Enqueue, Kind: 0, Node: 4, Peer: 0,
		Flow: 2, Size: 1000, QLen: 3, QBytes: 3000, Pkt: 77, Seq: 9000,
	})
	s.Event(Event{T: des.Time(2000), Type: DoubleFree, Node: -1, Peer: -1, Pkt: 5})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	want := `{"t_ns":1500,"type":"enq","node":4,"peer":0,"flow":2,"kind":"data","pkt":77,"size":1000,"seq":9000,"qbytes":3000,"qlen":3}`
	if lines[0] != want {
		t.Errorf("line 0:\n%s\nwant:\n%s", lines[0], want)
	}
	// Every line must be valid JSON with the full field set.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		for _, field := range []string{"t_ns", "type", "node", "peer", "flow", "kind", "pkt", "size", "seq", "qbytes", "qlen"} {
			if _, ok := m[field]; !ok {
				t.Errorf("line %d missing field %q", i, field)
			}
		}
	}
}

func TestJSONLSinkAllocFree(t *testing.T) {
	var sb strings.Builder
	sb.Grow(1 << 20)
	s := NewJSONLSink(&sb)
	e := Event{T: des.Time(123456789), Type: Dequeue, Node: 1, Peer: 2, Flow: 3, Size: 1000, Pkt: 42}
	// Warm the scratch buffer and the bufio writer.
	for i := 0; i < 100; i++ {
		s.Event(e)
	}
	if n := testing.AllocsPerRun(1000, func() { s.Event(e) }); n > 0.1 {
		t.Fatalf("JSONL encoding allocates %.2f per event after warm-up, want ~0", n)
	}
}

func TestTracerEmitAllocFree(t *testing.T) {
	m := NewMemorySink(4096)
	m.Limit = 2048
	tr := NewTracer(m)
	e := Event{Type: Enqueue, Size: 100}
	for i := 0; i < 100; i++ {
		tr.Emit(e)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Emit(e) }); n != 0 {
		t.Fatalf("Emit allocates %.2f per event after warm-up, want 0", n)
	}
}
