package obs

import (
	"fmt"
	"sync"

	"ecndelay/internal/des"
)

// Invariant identifies one of the runtime invariant classes the checker
// enforces.
type Invariant uint8

const (
	// InvConservation: per queue, enqueued bytes == dequeued bytes +
	// bytes currently queued, re-established after every queue event.
	InvConservation Invariant = iota
	// InvQueueBounds: queue length and byte count are never negative, an
	// empty queue holds zero bytes, and a finite queue only exceeds its
	// capacity by the one over-cap packet the admit rule allows.
	InvQueueBounds
	// InvPFCPairing: PFC pause and resume strictly alternate per port.
	InvPFCPairing
	// InvDoubleFree: a pooled packet is never freed twice.
	InvDoubleFree
	// InvShardHandoff: per cross-shard edge, every packet (and byte)
	// pushed into the handoff mailbox by the producer shard was drained
	// into the consumer shard's event heap — the sharded engine may not
	// lose or duplicate traffic the serial engine would carry.
	InvShardHandoff
	numInvariants
)

var invariantNames = [numInvariants]string{
	"conservation", "queue-bounds", "pfc-pairing", "double-free",
	"shard-handoff",
}

func (v Invariant) String() string {
	if int(v) < len(invariantNames) {
		return invariantNames[v]
	}
	return "?"
}

// Violation is one detected invariant breach.
type Violation struct {
	T         des.Time
	Invariant Invariant
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%s %s: %s", v.T, v.Invariant, v.Detail)
}

// maxViolationDetails bounds stored Violation records; the per-invariant
// counts keep counting past it, so a storm is still measured in full.
const maxViolationDetails = 64

type portKey struct {
	run        uint32 // network-instance tag (Event.Run)
	node, peer int32
}

type portState struct {
	enqBytes int64
	deqBytes int64
	qBytes   int64
	qLen     int32
	paused   bool
	sawPFC   bool
	// closureFlagged makes the end-of-run closure check idempotent: a
	// shared checker sees one Finish per run, each auditing every port
	// recorded so far, and a broken port must count once, not once per
	// subsequent run.
	closureFlagged bool
}

// Checker consumes the trace event stream and verifies the runtime
// invariants. It keeps independent state per port — keyed by the network
// instance (Event.Run) plus the owner/peer node pair — so one checker
// covers a whole topology, and one shared checker covers many networks:
// concurrent sweep jobs and successive runs inside one job all carry
// distinct run tags, so their identically-numbered ports never share
// books. Feed is public so tests can push synthetic event streams at
// broken fixtures; real runs feed it through NetObserver.Emit. All methods
// are safe for concurrent use; per-port map entries are created on first
// touch, so steady-state checking allocates nothing.
type Checker struct {
	mu         sync.Mutex
	ports      map[portKey]*portState
	counts     [numInvariants]int64
	violations []Violation
}

// NewChecker returns a checker with no recorded state.
func NewChecker() *Checker {
	return &Checker{ports: make(map[portKey]*portState)}
}

func (c *Checker) violate(t des.Time, inv Invariant, format string, args ...any) {
	c.counts[inv]++
	if len(c.violations) < maxViolationDetails {
		c.violations = append(c.violations, Violation{
			T:         t,
			Invariant: inv,
			Detail:    fmt.Sprintf(format, args...),
		})
	}
}

func (c *Checker) port(e Event) *portState {
	k := portKey{run: e.Run, node: e.Node, peer: e.Peer}
	ps, ok := c.ports[k]
	if !ok {
		ps = &portState{}
		c.ports[k] = ps
	}
	return ps
}

// Feed runs one event through every invariant.
func (c *Checker) Feed(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e.Type {
	case Enqueue:
		ps := c.port(e)
		ps.enqBytes += int64(e.Size)
		ps.qBytes += int64(e.Size)
		ps.qLen++
		c.checkQueue(e, ps)
	case Dequeue:
		ps := c.port(e)
		ps.deqBytes += int64(e.Size)
		ps.qBytes -= int64(e.Size)
		ps.qLen--
		c.checkQueue(e, ps)
	case Pause:
		ps := c.port(e)
		if ps.sawPFC && ps.paused {
			c.violate(e.T, InvPFCPairing,
				"port %d->%d paused twice without an intervening resume", e.Node, e.Peer)
		}
		ps.paused = true
		ps.sawPFC = true
	case Resume:
		ps := c.port(e)
		if !ps.sawPFC || !ps.paused {
			c.violate(e.T, InvPFCPairing,
				"port %d->%d resumed while not paused", e.Node, e.Peer)
		}
		ps.paused = false
		ps.sawPFC = true
	case DoubleFree:
		c.violate(e.T, InvDoubleFree,
			"packet %d (kind %s, flow %d) freed twice", e.Pkt, KindName(e.Kind), e.Flow)
	}
}

// checkQueue verifies bounds and running conservation against the queue's
// self-reported occupancy after the event. Called with c.mu held.
func (c *Checker) checkQueue(e Event, ps *portState) {
	if e.QLen < 0 || e.QBytes < 0 {
		c.violate(e.T, InvQueueBounds,
			"port %d->%d queue went negative: len=%d bytes=%d", e.Node, e.Peer, e.QLen, e.QBytes)
	}
	if e.QLen == 0 && e.QBytes != 0 {
		c.violate(e.T, InvQueueBounds,
			"port %d->%d empty queue holds %d bytes", e.Node, e.Peer, e.QBytes)
	}
	// The admit rule lets the packet that crosses the threshold in: a
	// finite queue may stand above capacity only while that single
	// over-cap packet is its tail.
	if e.QCap > 0 && e.QBytes > e.QCap && e.QLen > 1 {
		c.violate(e.T, InvQueueBounds,
			"port %d->%d queue %d bytes exceeds capacity %d with %d packets",
			e.Node, e.Peer, e.QBytes, e.QCap, e.QLen)
	}
	if ps.qBytes != e.QBytes || ps.qLen != e.QLen {
		c.violate(e.T, InvConservation,
			"port %d->%d books say len=%d bytes=%d but queue reports len=%d bytes=%d (enq=%d deq=%d)",
			e.Node, e.Peer, ps.qLen, ps.qBytes, e.QLen, e.QBytes, ps.enqBytes, ps.deqBytes)
		// Resynchronise the occupancy books so one divergence is one
		// violation, not a storm — but leave the cumulative enq/deq
		// totals truthful, so the end-of-run closure check in Finish
		// still sees the imbalance.
		ps.qBytes = e.QBytes
		ps.qLen = e.QLen
	}
}

// CheckShardEdge audits one cross-shard mailbox at the end of a sharded
// run: pushed and drained packet/byte totals must balance exactly. The
// netsim layer calls it per directed edge; from/to are the node ids of the
// edge and run the network-instance tag, so violations name the edge the
// way the port invariants do.
func (c *Checker) CheckShardEdge(now des.Time, run uint32, from, to int, pushedPkts, drainedPkts, pushedBytes, drainedBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pushedPkts == drainedPkts && pushedBytes == drainedBytes {
		return
	}
	c.violate(now, InvShardHandoff,
		"edge n%d->n%d (run %d) mailbox imbalance: pushed %d pkts/%d bytes, drained %d pkts/%d bytes",
		from, to, run, pushedPkts, pushedBytes, drainedPkts, drainedBytes)
}

// Finish runs the end-of-run closure check: for every queue, enqueued
// bytes must equal dequeued bytes plus bytes still queued. Call it after
// the simulation completes; it may be called more than once (on a shared
// checker, once per run) — each broken port is flagged exactly once.
func (c *Checker) Finish(now des.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, ps := range c.ports {
		if !ps.closureFlagged && ps.enqBytes != ps.deqBytes+ps.qBytes {
			ps.closureFlagged = true
			c.violate(now, InvConservation,
				"port %d->%d (run %d) conservation broken at end of run: enq=%d deq=%d queued=%d",
				k.node, k.peer, k.run, ps.enqBytes, ps.deqBytes, ps.qBytes)
		}
	}
}

// Count reports how many violations of one invariant were detected.
func (c *Checker) Count(inv Invariant) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(inv) >= len(c.counts) {
		return 0
	}
	return c.counts[inv]
}

// Total reports the number of violations across all invariants.
func (c *Checker) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Violations returns the stored violation records (capped at
// maxViolationDetails; Total keeps the true count).
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Err returns nil when no invariant fired, or an error summarising the
// first violation and the total count.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, v := range c.counts {
		total += v
	}
	if total == 0 {
		return nil
	}
	return fmt.Errorf("obs: %d invariant violation(s), first: %s", total, c.violations[0])
}
