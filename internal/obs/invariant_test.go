package obs

import (
	"strings"
	"testing"

	"ecndelay/internal/des"
)

// queueEvent builds a consistent enqueue/dequeue record for port 0->1.
func queueEvent(typ EventType, size int32, qLen int32, qBytes int64) Event {
	return Event{Type: typ, Node: 0, Peer: 1, Size: size, QLen: qLen, QBytes: qBytes}
}

func TestCheckerCleanStream(t *testing.T) {
	c := NewChecker()
	// Two packets through one queue, fully drained: every invariant holds.
	c.Feed(queueEvent(Enqueue, 1000, 1, 1000))
	c.Feed(queueEvent(Enqueue, 500, 2, 1500))
	c.Feed(queueEvent(Dequeue, 1000, 1, 500))
	c.Feed(queueEvent(Dequeue, 500, 0, 0))
	c.Feed(Event{Type: Pause, Node: 0, Peer: 1})
	c.Feed(Event{Type: Resume, Node: 0, Peer: 1})
	c.Finish(des.Time(des.Second))
	if c.Total() != 0 {
		t.Fatalf("clean stream produced %d violations: %v", c.Total(), c.Violations())
	}
	if c.Err() != nil {
		t.Fatalf("Err = %v on a clean stream", c.Err())
	}
}

func TestCheckerConservationFires(t *testing.T) {
	c := NewChecker()
	c.Feed(queueEvent(Enqueue, 1000, 1, 1000))
	// Queue self-reports 900 bytes after a 1000-byte enqueue onto an empty
	// queue: the books disagree with the hardware.
	c.Feed(queueEvent(Enqueue, 1000, 2, 1900))
	if got := c.Count(InvConservation); got != 1 {
		t.Fatalf("Count(InvConservation) = %d, want 1", got)
	}
	// The checker resyncs after a divergence: the same consistent stream
	// continuing from the reported state raises nothing further.
	c.Feed(queueEvent(Dequeue, 1000, 1, 900))
	if got := c.Count(InvConservation); got != 1 {
		t.Fatalf("post-resync Count = %d, want still 1 (one divergence, one violation)", got)
	}
}

func TestCheckerEndOfRunConservationFires(t *testing.T) {
	c := NewChecker()
	c.Feed(queueEvent(Enqueue, 1000, 1, 1000))
	// Dequeue reports fewer bytes than were enqueued and the queue claims
	// empty: running checks resync, but end-of-run closure must notice the
	// enq != deq + queued imbalance.
	c.Feed(queueEvent(Dequeue, 600, 0, 0))
	before := c.Total()
	c.Finish(des.Time(42))
	if c.Count(InvConservation) <= before {
		t.Fatal("Finish did not flag the end-of-run byte imbalance")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("Err = %v, want a conservation summary", err)
	}
}

func TestCheckerQueueBoundsFires(t *testing.T) {
	t.Run("negative", func(t *testing.T) {
		c := NewChecker()
		c.Feed(queueEvent(Dequeue, 100, -1, -100))
		if c.Count(InvQueueBounds) == 0 {
			t.Fatal("negative queue occupancy not flagged")
		}
	})
	t.Run("empty-with-bytes", func(t *testing.T) {
		c := NewChecker()
		e := queueEvent(Enqueue, 100, 0, 100)
		c.Feed(e)
		if c.Count(InvQueueBounds) == 0 {
			t.Fatal("empty queue holding bytes not flagged")
		}
	})
	t.Run("over-capacity", func(t *testing.T) {
		c := NewChecker()
		// One over-cap tail packet is the admit rule and must pass...
		one := queueEvent(Enqueue, 1500, 1, 1500)
		one.QCap = 1000
		c.Feed(one)
		if c.Count(InvQueueBounds) != 0 {
			t.Fatal("single over-cap packet wrongly flagged (admit rule)")
		}
		// ...but standing above capacity with multiple packets queued is a
		// broken queue.
		two := queueEvent(Enqueue, 1500, 2, 3000)
		two.QCap = 1000
		c.Feed(two)
		if c.Count(InvQueueBounds) == 0 {
			t.Fatal("multi-packet over-capacity queue not flagged")
		}
	})
}

func TestCheckerPFCPairingFires(t *testing.T) {
	t.Run("double-pause", func(t *testing.T) {
		c := NewChecker()
		c.Feed(Event{Type: Pause, Node: 0, Peer: 1})
		c.Feed(Event{Type: Pause, Node: 0, Peer: 1})
		if c.Count(InvPFCPairing) != 1 {
			t.Fatalf("Count = %d, want 1", c.Count(InvPFCPairing))
		}
	})
	t.Run("resume-unpaused", func(t *testing.T) {
		c := NewChecker()
		c.Feed(Event{Type: Resume, Node: 0, Peer: 1})
		if c.Count(InvPFCPairing) != 1 {
			t.Fatalf("Count = %d, want 1", c.Count(InvPFCPairing))
		}
	})
	t.Run("ports-independent", func(t *testing.T) {
		c := NewChecker()
		c.Feed(Event{Type: Pause, Node: 0, Peer: 1})
		c.Feed(Event{Type: Pause, Node: 2, Peer: 1}) // different port: fine
		c.Feed(Event{Type: Resume, Node: 0, Peer: 1})
		c.Feed(Event{Type: Resume, Node: 2, Peer: 1})
		if c.Total() != 0 {
			t.Fatalf("independent ports cross-contaminated: %v", c.Violations())
		}
	})
}

// One shared checker serving several networks with identical node ids must
// keep their books apart: events carry a run tag, and the interleaving a
// parallel sweep produces — including one run's Finish landing while
// another run's queue is non-empty — raises nothing.
func TestCheckerRunScoping(t *testing.T) {
	c := NewChecker()
	ev := func(run uint32, typ EventType, size, qLen int32, qBytes int64) Event {
		return Event{Run: run, Type: typ, Node: 0, Peer: 1, Size: size, QLen: qLen, QBytes: qBytes}
	}
	c.Feed(ev(1, Enqueue, 1000, 1, 1000))
	c.Feed(ev(2, Enqueue, 700, 1, 700)) // same port ids, different network
	c.Feed(ev(1, Dequeue, 1000, 0, 0))
	// Run 1 finishes — and audits every port recorded so far — while run 2
	// still holds 700 queued bytes.
	c.Finish(des.Time(1))
	c.Feed(ev(2, Dequeue, 700, 0, 0))
	c.Finish(des.Time(2))
	if c.Total() != 0 {
		t.Fatalf("run-scoped streams produced %d violations: %v", c.Total(), c.Violations())
	}
	// PFC pairing is scoped the same way: each run pauses the same port
	// once, which is a double pause only within a single run.
	c.Feed(Event{Run: 1, Type: Pause, Node: 0, Peer: 1})
	c.Feed(Event{Run: 2, Type: Pause, Node: 0, Peer: 1})
	if c.Count(InvPFCPairing) != 0 {
		t.Fatal("pause state leaked across run tags")
	}
	c.Feed(Event{Run: 1, Type: Pause, Node: 0, Peer: 1})
	if c.Count(InvPFCPairing) != 1 {
		t.Fatal("genuine same-run double pause not flagged")
	}
	// Within one run the books are still shared: a divergence is caught.
	c.Feed(ev(3, Enqueue, 500, 1, 500))
	c.Feed(ev(3, Enqueue, 500, 1, 500)) // books say 1000, queue reports 500
	if c.Count(InvConservation) != 1 {
		t.Fatalf("same-run divergence count = %d, want 1", c.Count(InvConservation))
	}
}

// The end-of-run closure check flags a broken port exactly once, however
// many later runs on the same shared checker call Finish again.
func TestCheckerFinishIdempotentPerPort(t *testing.T) {
	c := NewChecker()
	c.Feed(queueEvent(Enqueue, 1000, 1, 1000))
	c.Feed(queueEvent(Dequeue, 600, 0, 0)) // 400 bytes vanish
	c.Finish(des.Time(1))
	n := c.Count(InvConservation)
	if n == 0 {
		t.Fatal("broken closure not flagged")
	}
	c.Finish(des.Time(2))
	c.Finish(des.Time(3))
	if got := c.Count(InvConservation); got != n {
		t.Fatalf("repeated Finish inflated the count: %d -> %d", n, got)
	}
}

func TestCheckerDoubleFreeFires(t *testing.T) {
	c := NewChecker()
	c.Feed(Event{T: des.Time(7), Type: DoubleFree, Pkt: 99, Flow: 3})
	if c.Count(InvDoubleFree) != 1 {
		t.Fatalf("Count = %d, want 1", c.Count(InvDoubleFree))
	}
	v := c.Violations()
	if len(v) != 1 || v[0].Invariant != InvDoubleFree || !strings.Contains(v[0].Detail, "99") {
		t.Fatalf("violation record %+v", v)
	}
	if got := v[0].String(); !strings.Contains(got, "double-free") {
		t.Errorf("violation renders as %q, want the invariant name in it", got)
	}
}

func TestCheckerViolationStorm(t *testing.T) {
	c := NewChecker()
	for i := 0; i < 200; i++ {
		c.Feed(Event{Type: DoubleFree, Pkt: uint64(i)})
	}
	if got := c.Total(); got != 200 {
		t.Fatalf("Total = %d, want 200 (counts keep counting past the detail cap)", got)
	}
	if got := len(c.Violations()); got != maxViolationDetails {
		t.Fatalf("stored %d violation details, want the %d cap", got, maxViolationDetails)
	}
}

func TestCheckerFeedAllocFree(t *testing.T) {
	c := NewChecker()
	enq := queueEvent(Enqueue, 1000, 1, 1000)
	deq := queueEvent(Dequeue, 1000, 0, 0)
	// Warm the per-port map entry.
	c.Feed(enq)
	c.Feed(deq)
	if n := testing.AllocsPerRun(1000, func() {
		c.Feed(enq)
		c.Feed(deq)
	}); n != 0 {
		t.Fatalf("Feed allocates %.2f per pair after warm-up, want 0", n)
	}
}

func TestObserverEmitRouting(t *testing.T) {
	o := Full()
	m := NewMemorySink(4)
	o.Trace.AddSink(m)
	o.Emit(Event{Type: DoubleFree, Pkt: 1})
	if o.Trace.Count(DoubleFree) != 1 {
		t.Error("Emit did not reach the tracer")
	}
	if o.Check.Count(InvDoubleFree) != 1 {
		t.Error("Emit did not reach the checker")
	}
	if len(m.Events()) != 1 {
		t.Error("Emit did not reach the sink")
	}
	// Partially-populated observers route only what exists.
	part := &NetObserver{Trace: NewTracer()}
	part.Emit(Event{Type: Mark})
	if part.Trace.Count(Mark) != 1 {
		t.Error("partial observer dropped the event")
	}
}

func TestProbeCadenceDefault(t *testing.T) {
	o := &NetObserver{}
	if got := o.ProbeCadence(); got != 100*des.Microsecond {
		t.Errorf("default cadence %v, want 100µs", got)
	}
	o.ProbeEvery = des.Millisecond
	if got := o.ProbeCadence(); got != des.Millisecond {
		t.Errorf("configured cadence %v, want 1ms", got)
	}
}
