package obs

import (
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("port.n0-n1.tx_bytes")
	c1.Add(10)
	c2 := r.Counter("port.n0-n1.tx_bytes")
	if c1 != c2 {
		t.Fatal("second lookup returned a different counter")
	}
	c2.Inc()
	if got := c1.Value(); got != 11 {
		t.Fatalf("counter value %d, want 11", got)
	}

	g1 := r.Gauge("queue.depth")
	g1.Set(42)
	g2 := r.Gauge("queue.depth")
	if g1 != g2 {
		t.Fatal("second lookup returned a different gauge")
	}
	g2.Set(7)
	if got := g1.Value(); got != 7 {
		t.Fatalf("gauge value %d, want 7 (last write wins)", got)
	}

	// A counter and a gauge may share a name without colliding: they live
	// in separate namespaces.
	if r.Counter("queue.depth").Value() != 0 {
		t.Error("counter namespace leaked into gauge namespace")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.Gauge("m.middle").Set(2)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if snap[0].Name != "a.first" || snap[0].Value != 1 || snap[0].Gauge {
		t.Errorf("first entry %+v", snap[0])
	}
	if snap[1].Name != "m.middle" || !snap[1].Gauge {
		t.Errorf("gauge entry %+v", snap[1])
	}
}

func TestRegistryWriteTSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	var sb strings.Builder
	if err := r.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a\t1\nb\t2\n"
	if sb.String() != want {
		t.Fatalf("TSV = %q, want %q", sb.String(), want)
	}
}

func TestPortAndEndpointCounterNames(t *testing.T) {
	r := NewRegistry()
	pc := r.PortCounters("port.n0-n1")
	pc.TxBytes.Add(1000)
	pc.Marks.Inc()
	ec := r.EndpointCounters("dcqcn.n2")
	ec.CNPTx.Inc()
	ec.RetxBytes.Add(512)

	wantNames := []string{
		"dcqcn.n2.acks_tx", "dcqcn.n2.cnp_rx", "dcqcn.n2.cnp_tx",
		"dcqcn.n2.nacks_tx", "dcqcn.n2.retx_bytes", "dcqcn.n2.retx_pkts",
		"dcqcn.n2.rtos", "dcqcn.n2.rx_bytes",
		"port.n0-n1.buf_drops", "port.n0-n1.marks", "port.n0-n1.pauses",
		"port.n0-n1.resumes", "port.n0-n1.tx_bytes", "port.n0-n1.tx_pkts",
		"port.n0-n1.wire_drops",
	}
	snap := r.Snapshot()
	if len(snap) != len(wantNames) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(wantNames))
	}
	for i, m := range snap {
		if m.Name != wantNames[i] {
			t.Errorf("entry %d: name %q, want %q", i, m.Name, wantNames[i])
		}
	}
	if r.Counter("port.n0-n1.tx_bytes").Value() != 1000 {
		t.Error("PortCounters did not bind the shared registry counter")
	}
	if r.Counter("dcqcn.n2.retx_bytes").Value() != 512 {
		t.Error("EndpointCounters did not bind the shared registry counter")
	}
}

func TestCounterAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("hot")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(c.Value())
	}); n != 0 {
		t.Fatalf("counter/gauge hot path allocates %.1f per op, want 0", n)
	}
}
