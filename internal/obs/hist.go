package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Streaming latency histograms. Hist is a log-bucketed (HDR-style)
// fixed-size histogram: every power-of-two octave is split into HistSub
// linear sub-buckets, so any recorded value lands in a bucket whose width
// is at most 1/HistSub of its magnitude. Recording is a handful of atomic
// operations on preallocated arrays — zero steady-state allocations, safe
// for concurrent writers (sweep workers sharing one instance) and for
// concurrent readers (the telemetry server snapshotting mid-run).
//
// Two instances are mergeable: bucket counts, totals and min/max all
// commute, so per-worker histograms merged in any order, or one histogram
// shared by every worker, produce identical quantiles for any worker
// count. Sum (kept for live mean/Prometheus export) is a float
// accumulator and is deliberately excluded from the canonical file
// exports, which must be byte-deterministic across schedules.

// HistSub is the number of linear sub-buckets per power-of-two octave:
// the histogram's relative resolution is 1/HistSub (~3.1%), and every
// quantile it reports is within half a bucket width of the exact
// statistic.
const HistSub = 32

// The tracked octave range: values in [2^histMinExp, 2^histMaxExp) are
// bucketed at full resolution — for seconds that spans ~1e-12 s to
// ~1.7e13 s, for byte counts 1e-12 B to 17 TB. Values at or below zero
// (and positive underflow) land in the dedicated bucket 0; overflow
// clamps into the top bucket. Min/Max stay exact either way.
const (
	histMinExp  = -40
	histMaxExp  = 44
	histBuckets = (histMaxExp - histMinExp) * HistSub
)

// HistQuantiles is the canonical percentile set every export carries.
var HistQuantiles = [...]float64{0.50, 0.90, 0.95, 0.99, 0.999}

// histQuantileLabels matches HistQuantiles in the export schemas.
var histQuantileLabels = [...]string{"p50", "p90", "p95", "p99", "p999"}

// Hist is one streaming histogram. Create with NewHist or through a
// HistSet; the zero value is not usable (min/max need seeding).
type Hist struct {
	name    string
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
	min     atomic.Uint64 // float64 bits, +Inf when empty
	max     atomic.Uint64 // float64 bits, -Inf when empty
	buckets [histBuckets + 1]atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist(name string) *Hist {
	h := &Hist{name: name}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Name reports the histogram's name.
func (h *Hist) Name() string { return h.name }

// histBucketIndex maps a value to its bucket.
func histBucketIndex(v float64) int {
	if !(v > 0) { // catches <= 0 and NaN
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp <= histMinExp {
		return 0
	}
	if exp > histMaxExp {
		return histBuckets
	}
	sub := int((frac - 0.5) * 2 * HistSub)
	if sub >= HistSub { // guard the frac == nextafter(1, 0) edge
		sub = HistSub - 1
	}
	return (exp-histMinExp-1)*HistSub + sub + 1
}

// histBucketMid returns the representative value (arithmetic midpoint) of
// a bucket. Bucket 0 (zero/underflow) is represented by 0.
func histBucketMid(idx int) float64 {
	if idx <= 0 {
		return 0
	}
	i := idx - 1
	e := histMinExp + 1 + i/HistSub
	sub := i % HistSub
	lo := math.Ldexp(1+float64(sub)/HistSub, e-1)
	hi := math.Ldexp(1+float64(sub+1)/HistSub, e-1)
	return (lo + hi) / 2
}

// histBucketUpper returns a bucket's exclusive upper edge (the Prometheus
// "le" bound).
func histBucketUpper(idx int) float64 {
	if idx <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	i := idx - 1
	e := histMinExp + 1 + i/HistSub
	sub := i % HistSub
	return math.Ldexp(1+float64(sub+1)/HistSub, e-1)
}

// atomicAddFloat accumulates v into a float64 stored as bits.
func atomicAddFloat(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if u.CompareAndSwap(old, next) {
			return
		}
	}
}

// atomicMinFloat lowers the stored float to v if smaller.
func atomicMinFloat(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if u.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the stored float to v if larger.
func atomicMaxFloat(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if u.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Record adds one observation. It never allocates and is safe for
// concurrent use.
func (h *Hist) Record(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.buckets[histBucketIndex(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

// Count reports the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum reports the running total of recorded values. Unlike counts and
// quantiles it is a float accumulation, so its low bits may differ across
// recording orders; canonical exports omit it.
func (h *Hist) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Min reports the smallest recorded value (0 when empty).
func (h *Hist) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max reports the largest recorded value (0 when empty).
func (h *Hist) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the midpoint of the
// bucket holding that rank, clamped into [Min, Max]; 0 when empty. The
// result is within the bucket's width — at most a 1/HistSub relative
// error — of the exact order statistic.
func (h *Hist) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank <= 1 {
		return h.Min() // p0 and the first rank are the exact minimum
	}
	if rank >= n {
		return h.Max() // p100 is the exact maximum
	}
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := histBucketMid(i)
			if min := h.Min(); v < min {
				v = min
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
	}
	return h.Max()
}

// Merge folds other's observations into h. Bucket counts, counts and
// min/max commute, so any merge order (and any worker sharding) yields
// identical quantiles.
func (h *Hist) Merge(other *Hist) {
	for i := range h.buckets {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	n := other.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	atomicAddFloat(&h.sum, other.Sum())
	atomicMinFloat(&h.min, math.Float64frombits(other.min.Load()))
	atomicMaxFloat(&h.max, math.Float64frombits(other.max.Load()))
}

// ForEachBucket calls fn with the exclusive upper bound and count of every
// non-empty bucket, in increasing bound order (the shape Prometheus
// histogram exposition wants).
func (h *Hist) ForEachBucket(fn func(upper float64, count int64)) {
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			fn(histBucketUpper(i), c)
		}
	}
}

// HistSummary is one histogram's canonical export row.
type HistSummary struct {
	Name      string
	Count     int64
	Min, Max  float64
	Quantiles [len(HistQuantiles)]float64
}

// Summary snapshots the histogram's canonical export values.
func (h *Hist) Summary() HistSummary {
	s := HistSummary{Name: h.name, Count: h.Count(), Min: h.Min(), Max: h.Max()}
	for i, q := range HistQuantiles {
		s.Quantiles[i] = h.Quantile(q)
	}
	return s
}

// HistSet is a collection of named histograms. Hist is get-or-create, so
// independent components (endpoints created across sweep jobs) share an
// instrument by agreeing on its name — recording then merges for free.
// Lookup is mutex-guarded; hot paths bind once and keep the pointer.
type HistSet struct {
	mu    sync.Mutex
	hists map[string]*Hist
}

// NewHistSet returns an empty set.
func NewHistSet() *HistSet {
	return &HistSet{hists: make(map[string]*Hist)}
}

// Hist returns the histogram registered under name, creating it on first
// use.
func (hs *HistSet) Hist(name string) *Hist {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	h, ok := hs.hists[name]
	if !ok {
		h = NewHist(name)
		hs.hists[name] = h
	}
	return h
}

// Hists returns the registered histograms sorted by name — the canonical,
// byte-comparable order.
func (hs *HistSet) Hists() []*Hist {
	hs.mu.Lock()
	out := make([]*Hist, 0, len(hs.hists))
	for _, h := range hs.hists {
		out = append(out, h)
	}
	hs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteTSV renders every histogram as one row of
//
//	name\tcount\tmin\tmax\tp50\tp90\tp95\tp99\tp999
//
// after a "#"-prefixed header, sorted by name. All values derive from
// integer bucket counts and exact min/max, so the output is
// byte-identical across runs and worker counts.
func (hs *HistSet) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("# hist\tcount\tmin\tmax\tp50\tp90\tp95\tp99\tp999\n"); err != nil {
		return err
	}
	var buf []byte
	for _, h := range hs.Hists() {
		s := h.Summary()
		buf = buf[:0]
		buf = append(buf, s.Name...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, s.Count, 10)
		buf = append(buf, '\t')
		buf = strconv.AppendFloat(buf, s.Min, 'g', -1, 64)
		buf = append(buf, '\t')
		buf = strconv.AppendFloat(buf, s.Max, 'g', -1, 64)
		for _, q := range s.Quantiles {
			buf = append(buf, '\t')
			buf = strconv.AppendFloat(buf, q, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL renders every histogram as one JSON object per line:
//
//	{"hist":"fct_s","count":42,"min":1e-05,"max":0.3,"p50":...,"p90":...,"p95":...,"p99":...,"p999":...}
//
// in name order with shortest round-trip floats — byte-identical across
// identical runs and worker counts. cmd/obsreport consumes this format.
func (hs *HistSet) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, h := range hs.Hists() {
		s := h.Summary()
		buf = buf[:0]
		buf = append(buf, `{"hist":`...)
		buf = strconv.AppendQuote(buf, s.Name)
		buf = append(buf, `,"count":`...)
		buf = strconv.AppendInt(buf, s.Count, 10)
		buf = append(buf, `,"min":`...)
		buf = strconv.AppendFloat(buf, s.Min, 'g', -1, 64)
		buf = append(buf, `,"max":`...)
		buf = strconv.AppendFloat(buf, s.Max, 'g', -1, 64)
		for i, q := range s.Quantiles {
			buf = append(buf, `,"`...)
			buf = append(buf, histQuantileLabels[i]...)
			buf = append(buf, `":`...)
			buf = strconv.AppendFloat(buf, q, 'g', -1, 64)
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
