package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"

	"ecndelay/internal/des"
)

// DecisionType labels one control-loop decision. The audit trail records
// the congestion-control algorithms' *decisions* — not packet events —
// so the feedback chain queue-crossing → mark → CNP → rate cut can be
// reconstructed offline (cmd/ccreport) and its latency measured in-run.
type DecisionType uint8

// The decision record types. The first block is the switch side: a mark
// episode opens on the first CE mark after the queue crosses the marker
// threshold and closes when the queue falls back below it. The second
// block is DCQCN (per Zhu et al., SIGCOMM 2015): a CNP triggers a rate
// cut plus an alpha feedback update; the alpha timer decays alpha; the
// byte/time counters drive fast-recovery, additive and hyper increases.
// The third block is TIMELY (Mittal et al., SIGCOMM 2015): every ACK
// yields an RTT sample and a gradient computation, then exactly one
// rate action — additive increase, multiplicative decrease, the HAI
// brake above THigh, or the patched (Algorithm 2) update.
const (
	DecMarkOpen DecisionType = iota
	DecMarkClose
	DecRateCut
	DecAlphaFeedback
	DecAlphaDecay
	DecFastRecovery
	DecAdditiveInc
	DecHyperInc
	DecRTTSample
	DecGradient
	DecTimelyAdd
	DecTimelyMD
	DecTimelyBrake
	DecTimelyPatched
	numDecisionTypes
)

var decisionTypeNames = [numDecisionTypes]string{
	"epopen", "epclose",
	"cut", "alphafb", "alphadecay", "fr", "ai", "hai",
	"rtt", "grad", "tadd", "tmd", "tbrake", "tpatched",
}

func (t DecisionType) String() string {
	if int(t) < len(decisionTypeNames) {
		return decisionTypeNames[t]
	}
	return "?"
}

// Decision is one audit record. Like Event it is a plain value: emitting
// one copies a flat struct and allocates nothing. Fields that do not
// apply to a record type are zero (Peer/Flow: -1 when not applicable).
//
//   - Switch records (epopen/epclose): Node/Peer identify the marking
//     port, Episode is the episode id, QBytes the marker-visible queue
//     depth at open, RTT the queue-crossing→first-mark delay in seconds.
//   - DCQCN records: Node is the sender host, Flow the flow id. A cut
//     carries OldRate→NewRate, Target (the post-cut target rate rt),
//     Alpha (the alpha used), and Episode — the mark episode stamped on
//     the CNP that caused it (0: unattributed). alphafb/alphadecay carry
//     Alpha = the alpha after the update. fr/ai/hai carry
//     OldRate→NewRate and Target = rt.
//   - TIMELY records: rtt carries RTT = the new sample (seconds); grad
//     carries Grad = the normalised gradient and RTT = the EWMA input;
//     the action records carry OldRate→NewRate, RTT and Grad.
//
// Seq is a per-emitter monotone sequence number: each endpoint and each
// marking port stamps its own counter, making the total sort order used
// by AuditJSONLSink deterministic and shard-independent.
type Decision struct {
	T       des.Time     // simulation time, ns
	Type    DecisionType // record type
	Node    int32        // deciding node id (sender host or switch)
	Peer    int32        // port peer node id, -1 when not port-scoped
	Flow    int32        // flow id, -1 for switch/endpoint-global records
	Seq     uint64       // per-emitter sequence number
	Episode uint64       // mark episode id, 0 when none
	OldRate float64      // rate before the decision, bytes/s
	NewRate float64      // rate after the decision, bytes/s
	Target  float64      // DCQCN target rate rt after the decision
	Alpha   float64      // DCQCN alpha after the decision
	RTT     float64      // RTT sample / latency payload, seconds
	Grad    float64      // TIMELY normalised gradient
	QBytes  int64        // marker-visible queue depth, switch records
}

// DecisionSink receives audit records. Implementations are called with
// the trail's lock held, in emission order; they must not call back into
// the trail.
type DecisionSink interface {
	Decision(d Decision)
}

// AuditTrail fans decisions out to its sinks and keeps per-type counts.
// Emission is serialised by a mutex so one trail can serve concurrent
// sweep jobs; within one deterministic run the decision order is itself
// deterministic.
type AuditTrail struct {
	mu     sync.Mutex
	sinks  []DecisionSink
	counts [numDecisionTypes]int64
}

// NewAuditTrail returns a trail with the given sinks (counts accumulate
// even with none).
func NewAuditTrail(sinks ...DecisionSink) *AuditTrail {
	return &AuditTrail{sinks: sinks}
}

// AddSink attaches a sink.
func (a *AuditTrail) AddSink(s DecisionSink) {
	a.mu.Lock()
	a.sinks = append(a.sinks, s)
	a.mu.Unlock()
}

// Emit records one decision.
func (a *AuditTrail) Emit(d Decision) {
	a.mu.Lock()
	if int(d.Type) < len(a.counts) {
		a.counts[d.Type]++
	}
	for _, s := range a.sinks {
		s.Decision(d)
	}
	a.mu.Unlock()
}

// Decision implements DecisionSink, so one trail can chain into another:
// an experiment that wants a private in-memory view keeps the run-wide
// trail attached as a second sink instead of disconnecting it.
func (a *AuditTrail) Decision(d Decision) { a.Emit(d) }

// Count reports how many decisions of one type have been emitted.
func (a *AuditTrail) Count(typ DecisionType) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(typ) >= len(a.counts) {
		return 0
	}
	return a.counts[typ]
}

// Total reports the number of decisions emitted across all types.
func (a *AuditTrail) Total() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, c := range a.counts {
		n += c
	}
	return n
}

// AuditMemorySink retains decisions in memory. Give it a capacity hint
// to keep steady-state auditing allocation-free; Limit (if positive)
// stops retention after that many records.
type AuditMemorySink struct {
	Limit   int
	decs    []Decision
	dropped int64
}

// NewAuditMemorySink preallocates room for capacity records (0: grow on
// demand).
func NewAuditMemorySink(capacity int) *AuditMemorySink {
	return &AuditMemorySink{decs: make([]Decision, 0, capacity)}
}

// Decision implements DecisionSink.
func (m *AuditMemorySink) Decision(d Decision) {
	if m.Limit > 0 && len(m.decs) >= m.Limit {
		m.dropped++
		return
	}
	m.decs = append(m.decs, d)
}

// Decisions returns the retained records (the live slice; treat as
// read-only).
func (m *AuditMemorySink) Decisions() []Decision { return m.decs }

// Dropped reports decisions discarded past Limit.
func (m *AuditMemorySink) Dropped() int64 { return m.dropped }

// decisionLess is a total order over record *content*: primary key is
// simulation time, then emitter identity and its sequence number, then
// every remaining field. Because the order depends only on field values,
// sorted output is independent of emission interleaving — concurrent
// sweep jobs or shard schedules that permute arrival order still
// serialise to identical bytes (ties across emitters are between
// identical records, which are interchangeable).
func decisionLess(a, b Decision) bool {
	switch {
	case a.T != b.T:
		return a.T < b.T
	case a.Node != b.Node:
		return a.Node < b.Node
	case a.Peer != b.Peer:
		return a.Peer < b.Peer
	case a.Flow != b.Flow:
		return a.Flow < b.Flow
	case a.Seq != b.Seq:
		return a.Seq < b.Seq
	case a.Type != b.Type:
		return a.Type < b.Type
	case a.Episode != b.Episode:
		return a.Episode < b.Episode
	case a.OldRate != b.OldRate:
		return a.OldRate < b.OldRate
	case a.NewRate != b.NewRate:
		return a.NewRate < b.NewRate
	case a.Target != b.Target:
		return a.Target < b.Target
	case a.Alpha != b.Alpha:
		return a.Alpha < b.Alpha
	case a.RTT != b.RTT:
		return a.RTT < b.RTT
	case a.Grad != b.Grad:
		return a.Grad < b.Grad
	default:
		return a.QBytes < b.QBytes
	}
}

// AuditJSONLSink buffers decisions in memory and, on Close, writes them
// as one JSON object per line in the canonical content order (see
// decisionLess) behind an optional header record. Buffer-then-sort makes
// the file byte-identical across reruns and across sweep worker counts
// even when several jobs share one sink; encoding reuses one scratch
// buffer, so steady-state recording costs only the amortised growth of
// the decision slice (pass a capacity hint to eliminate it).
type AuditJSONLSink struct {
	mu     sync.Mutex
	w      io.Writer
	decs   []Decision
	buf    []byte
	header *Header
	err    onceError
	closed bool
}

// NewAuditJSONLSink writes to w on Close. capacity preallocates the
// decision buffer (0: grow on demand). If w is also an io.Closer, Close
// closes it.
func NewAuditJSONLSink(w io.Writer, capacity int) *AuditJSONLSink {
	return &AuditJSONLSink{w: w, decs: make([]Decision, 0, capacity)}
}

// SetHeader attaches a self-describing header record written as the
// first line of the output.
func (s *AuditJSONLSink) SetHeader(h Header) {
	s.mu.Lock()
	hc := h
	s.header = &hc
	s.mu.Unlock()
}

// Decision implements DecisionSink.
func (s *AuditJSONLSink) Decision(d Decision) {
	s.mu.Lock()
	if !s.closed {
		s.decs = append(s.decs, d)
	}
	s.mu.Unlock()
}

// Len reports the number of buffered records.
func (s *AuditJSONLSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.decs)
}

// Err reports the first write error, if any.
func (s *AuditJSONLSink) Err() error { return s.err.get() }

// Close sorts the buffered records into canonical order, writes the
// header (if set) and the records, and closes the underlying writer when
// it is closable. Further decisions are discarded.
func (s *AuditJSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err.get()
	}
	s.closed = true
	sort.SliceStable(s.decs, func(i, j int) bool {
		return decisionLess(s.decs[i], s.decs[j])
	})
	bw := bufio.NewWriter(s.w)
	if s.header != nil {
		if _, err := bw.Write(s.header.appendJSONL(s.buf[:0])); err != nil {
			s.err.set(err)
		}
	}
	for _, d := range s.decs {
		b := appendDecisionJSONL(s.buf[:0], d)
		s.buf = b
		if _, err := bw.Write(b); err != nil {
			s.err.set(err)
			break
		}
	}
	if err := bw.Flush(); err != nil {
		s.err.set(err)
	}
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil {
			s.err.set(err)
		}
	}
	return s.err.get()
}

// appendDecisionJSONL encodes one decision as a JSONL line. Floats use
// Go's shortest round-trip form, so identical values always encode to
// identical bytes.
func appendDecisionJSONL(b []byte, d Decision) []byte {
	b = append(b, `{"t_ns":`...)
	b = strconv.AppendInt(b, int64(d.T), 10)
	b = append(b, `,"dec":"`...)
	b = append(b, d.Type.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(d.Node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(d.Peer), 10)
	b = append(b, `,"flow":`...)
	b = strconv.AppendInt(b, int64(d.Flow), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, d.Seq, 10)
	b = append(b, `,"ep":`...)
	b = strconv.AppendUint(b, d.Episode, 10)
	b = append(b, `,"old":`...)
	b = strconv.AppendFloat(b, d.OldRate, 'g', -1, 64)
	b = append(b, `,"new":`...)
	b = strconv.AppendFloat(b, d.NewRate, 'g', -1, 64)
	b = append(b, `,"tgt":`...)
	b = strconv.AppendFloat(b, d.Target, 'g', -1, 64)
	b = append(b, `,"alpha":`...)
	b = strconv.AppendFloat(b, d.Alpha, 'g', -1, 64)
	b = append(b, `,"rtt":`...)
	b = strconv.AppendFloat(b, d.RTT, 'g', -1, 64)
	b = append(b, `,"grad":`...)
	b = strconv.AppendFloat(b, d.Grad, 'g', -1, 64)
	b = append(b, `,"qbytes":`...)
	b = strconv.AppendInt(b, d.QBytes, 10)
	b = append(b, '}', '\n')
	return b
}

// Header is the self-describing first record of a probe/trace/audit
// JSONL export: schema name and version, the run's base seed, the
// protocol under test, and a human-oriented summary of the invoking
// flags — enough to reproduce an archived file without the original
// command line. Readers recognise it by its "schema" key and must
// tolerate its absence (files written before the header existed).
type Header struct {
	Schema  string // export kind: "probe", "trace", "audit"
	Version int    // schema version, starts at 1
	Seed    int64  // base RNG seed of the run
	Proto   string // protocol under test ("dcqcn", "timely", ...)
	Flags   string // flag summary of the invocation, "" when not a CLI run
}

// appendJSONL encodes the header as a JSONL line.
func (h Header) appendJSONL(b []byte) []byte {
	b = append(b, `{"schema":`...)
	b = strconv.AppendQuote(b, h.Schema)
	b = append(b, `,"v":`...)
	b = strconv.AppendInt(b, int64(h.Version), 10)
	b = append(b, `,"seed":`...)
	b = strconv.AppendInt(b, h.Seed, 10)
	b = append(b, `,"proto":`...)
	b = strconv.AppendQuote(b, h.Proto)
	b = append(b, `,"flags":`...)
	b = strconv.AppendQuote(b, h.Flags)
	b = append(b, '}', '\n')
	return b
}
