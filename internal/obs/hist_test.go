package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// exactQuantile is the reference the histogram is graded against: the
// smallest sample whose rank covers q (nearest-rank definition, matching
// Hist.Quantile's rank arithmetic).
func exactQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// relErr is the symmetric relative error between a histogram quantile and
// the exact order statistic.
func relErr(got, want float64) float64 {
	if want == got {
		return 0
	}
	d := math.Abs(got - want)
	m := math.Max(math.Abs(got), math.Abs(want))
	if m == 0 {
		return 0
	}
	return d / m
}

// TestHistQuantileAccuracy grades the histogram against exact sorted-
// sample percentiles on fixed-seed workloads spanning the magnitudes the
// simulator records (microsecond RTTs, second-scale FCTs, byte counts).
// The contract is a relative error no worse than the bucket resolution.
func TestHistQuantileAccuracy(t *testing.T) {
	workloads := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform-rtt", func(r *rand.Rand) float64 { return 10e-6 + 500e-6*r.Float64() }},
		{"lognormal-fct", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*1.5 - 7) }},
		{"exponential-gap", func(r *rand.Rand) float64 { return r.ExpFloat64() * 50e-6 }},
		{"heavy-bytes", func(r *rand.Rand) float64 { return math.Pow(10, 2+6*r.Float64()) }},
	}
	const tol = 1.0 / HistSub
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			h := NewHist(w.name)
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := w.gen(r)
				samples = append(samples, v)
				h.Record(v)
			}
			sort.Float64s(samples)
			if h.Count() != int64(len(samples)) {
				t.Fatalf("count = %d, want %d", h.Count(), len(samples))
			}
			if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
				t.Errorf("min/max = %g/%g, want %g/%g", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
			for _, q := range HistQuantiles {
				got := h.Quantile(q)
				want := exactQuantile(samples, q)
				if e := relErr(got, want); e > tol {
					t.Errorf("q%.3f = %g, exact %g: rel err %.4f > %.4f", q, got, want, e, tol)
				}
			}
		})
	}
}

// TestHistEdgeCases pins the boundary behaviour: empty, zero and negative
// values, and magnitudes outside the bucketed octave range.
func TestHistEdgeCases(t *testing.T) {
	h := NewHist("edge")
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(0)
	h.Record(-3)
	if h.Count() != 2 || h.Min() != -3 || h.Max() != 0 {
		t.Fatalf("after 0,-3: count=%d min=%g max=%g", h.Count(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.99); q < -3 || q > 0 {
		t.Fatalf("quantile %g outside [min,max]", q)
	}
	h2 := NewHist("range")
	lo, hi := 1e-300, 1e300 // far outside the octave range
	h2.Record(lo)
	h2.Record(hi)
	if h2.Min() != lo || h2.Max() != hi {
		t.Fatalf("min/max must stay exact for clamped values: %g %g", h2.Min(), h2.Max())
	}
	if q := h2.Quantile(1); q != hi {
		t.Fatalf("p100 = %g, want exact max %g", q, hi)
	}
	h2.Record(math.NaN()) // ignored
	if h2.Count() != 2 {
		t.Fatalf("NaN must be ignored, count=%d", h2.Count())
	}
}

// TestHistMergeLaws verifies merge associativity and commutativity at the
// level that matters for determinism: every exported value (count, min,
// max, each quantile) must be identical for any merge order and identical
// to recording everything into one histogram.
func TestHistMergeLaws(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	parts := make([]*Hist, 3)
	var all []float64
	for i := range parts {
		parts[i] = NewHist("part")
		for j := 0; j < 5000; j++ {
			v := math.Exp(r.NormFloat64() - 9)
			all = append(all, v)
			parts[i].Record(v)
		}
	}
	one := NewHist("one")
	for _, v := range all {
		one.Record(v)
	}

	merge := func(order []int) HistSummary {
		acc := NewHist("acc")
		for _, i := range order {
			acc.Merge(parts[i])
		}
		return acc.Summary()
	}
	ref := merge([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := merge(order); got != ref {
			t.Errorf("merge order %v: %+v != %+v", order, got, ref)
		}
	}
	// Associativity: (a+b)+c vs a+(b+c).
	ab := NewHist("ab")
	ab.Merge(parts[0])
	ab.Merge(parts[1])
	abc := NewHist("abc")
	abc.Merge(ab)
	abc.Merge(parts[2])
	bc := NewHist("bc")
	bc.Merge(parts[1])
	bc.Merge(parts[2])
	abc2 := NewHist("abc2")
	abc2.Merge(parts[0])
	abc2.Merge(bc)
	sa, sb := abc.Summary(), abc2.Summary()
	sa.Name, sb.Name = "", ""
	if sa != sb {
		t.Errorf("associativity: %+v != %+v", sa, sb)
	}
	// Sharded recording == single-histogram recording.
	oneSum := one.Summary()
	refNamed := ref
	refNamed.Name = oneSum.Name
	if refNamed != oneSum {
		t.Errorf("sharded merge %+v != single %+v", refNamed, oneSum)
	}
}

// TestHistConcurrentRecord hammers one histogram from several goroutines
// (the shared-sweep-worker shape) and checks totals; run under -race this
// also proves the recording path is data-race free.
func TestHistConcurrentRecord(t *testing.T) {
	h := NewHist("conc")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(r.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() < 0 || h.Max() >= 1 {
		t.Fatalf("min/max outside [0,1): %g %g", h.Min(), h.Max())
	}
}

// TestHistSetExports pins the canonical export formats.
func TestHistSetExports(t *testing.T) {
	hs := NewHistSet()
	h := hs.Hist("b.second")
	for i := 1; i <= 100; i++ {
		h.Record(float64(i) * 1e-3)
	}
	hs.Hist("a.first").Record(2)
	if same := hs.Hist("a.first"); same.Count() != 1 {
		t.Fatal("Hist must be get-or-create")
	}

	var tsv strings.Builder
	if err := hs.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tsv.String(), "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "# hist\t") {
		t.Fatalf("unexpected TSV:\n%s", tsv.String())
	}
	if !strings.HasPrefix(lines[1], "a.first\t1\t") || !strings.HasPrefix(lines[2], "b.second\t100\t") {
		t.Fatalf("TSV rows not sorted by name:\n%s", tsv.String())
	}

	var jsonl strings.Builder
	if err := hs.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	if len(jl) != 2 || !strings.Contains(jl[0], `{"hist":"a.first","count":1,`) {
		t.Fatalf("unexpected JSONL:\n%s", jsonl.String())
	}
	for _, want := range []string{`"min":`, `"max":`, `"p50":`, `"p90":`, `"p95":`, `"p99":`, `"p999":`} {
		if !strings.Contains(jl[1], want) {
			t.Errorf("JSONL missing %s: %s", want, jl[1])
		}
	}
}

// TestHistBucketEdges cross-checks index and edge arithmetic: every value
// must fall inside its bucket's [prev upper, upper) range.
func TestHistBucketEdges(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := math.Exp(r.NormFloat64() * 10)
		idx := histBucketIndex(v)
		if idx == histBuckets { // clamped overflow bucket, edges don't apply
			continue
		}
		up := histBucketUpper(idx)
		if v >= up {
			t.Fatalf("v=%g >= upper edge %g of its bucket %d", v, up, idx)
		}
		if idx > 0 {
			if lo := histBucketUpper(idx - 1); v < lo {
				t.Fatalf("v=%g < lower edge %g of its bucket %d", v, lo, idx)
			}
		}
		mid := histBucketMid(idx)
		if idx > 0 && (mid >= up || mid < histBucketUpper(idx-1)) {
			t.Fatalf("mid %g outside bucket %d", mid, idx)
		}
	}
}

// TestHistAllocFree pins steady-state recording, quantile reads and
// merging at zero allocations — the gate bench-smoke runs.
func TestHistAllocFree(t *testing.T) {
	h := NewHist("alloc")
	other := NewHist("other")
	for i := 0; i < 100; i++ {
		other.Record(float64(i))
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(123e-6)
	}); n != 0 {
		t.Errorf("Record allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
	}); n != 0 {
		t.Errorf("Quantile allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		h.Merge(other)
	}); n != 0 {
		t.Errorf("Merge allocates %v per op", n)
	}
}
