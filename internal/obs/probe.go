package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"

	"ecndelay/internal/des"
)

// Sample is one recorded probe point: simulation time in seconds and the
// sampled value.
type Sample struct {
	T float64
	V float64
}

// Probe is a fixed-cadence time series in a preallocated ring buffer: once
// the buffer fills, the oldest samples are overwritten and counted, never
// silently lost. Recording never allocates. The ring is mutex-guarded so
// the telemetry server can snapshot a probe while the run still records;
// an uncontended lock keeps the recording path allocation-free.
type Probe struct {
	name    string
	mu      sync.Mutex
	ring    []Sample
	head    int // next write position
	n       int // samples currently retained
	dropped int64
}

// DefaultProbeCap is the ring capacity used when callers pass cap <= 0:
// at the default 100 µs cadence it retains the last ~6.5 simulated seconds.
const DefaultProbeCap = 1 << 16

// NewProbe creates a probe with a preallocated ring of the given capacity
// (cap <= 0: DefaultProbeCap).
func NewProbe(name string, capacity int) *Probe {
	if capacity <= 0 {
		capacity = DefaultProbeCap
	}
	return &Probe{name: name, ring: make([]Sample, capacity)}
}

// Name reports the probe's name.
func (p *Probe) Name() string { return p.name }

// Record appends one sample, overwriting the oldest when the ring is full.
func (p *Probe) Record(t, v float64) {
	p.mu.Lock()
	p.ring[p.head] = Sample{T: t, V: v}
	p.head++
	if p.head == len(p.ring) {
		p.head = 0
	}
	if p.n < len(p.ring) {
		p.n++
	} else {
		p.dropped++
	}
	p.mu.Unlock()
}

// Len reports the number of retained samples.
func (p *Probe) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Dropped reports samples overwritten because the ring wrapped.
func (p *Probe) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Samples returns the retained samples in chronological order (a copy).
func (p *Probe) Samples() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Sample, 0, p.n)
	start := p.head - p.n
	if start < 0 {
		start += len(p.ring)
	}
	for i := 0; i < p.n; i++ {
		out = append(out, p.ring[(start+i)%len(p.ring)])
	}
	return out
}

// MaxRelDev reports the largest relative deviation |v - center| /
// max(|center|, ε) among retained samples with t in [t0, t1], or 0 when
// none fall in the window. It is the probe-side half of a tolerance-band
// check: the hybrid warm-start validation asserts a warm trajectory's
// MaxRelDev from the analytic fixed point stays small from t=0, where a
// cold start spends its whole transient outside the band.
func (p *Probe) MaxRelDev(center, t0, t1 float64) float64 {
	c := center
	if c < 0 {
		c = -c
	}
	if c < 1e-12 {
		c = 1e-12
	}
	worst := 0.0
	p.mu.Lock()
	defer p.mu.Unlock()
	start := p.head - p.n
	if start < 0 {
		start += len(p.ring)
	}
	for i := 0; i < p.n; i++ {
		s := p.ring[(start+i)%len(p.ring)]
		if s.T < t0 || s.T > t1 {
			continue
		}
		d := s.V - center
		if d < 0 {
			d = -d
		}
		if d/c > worst {
			worst = d / c
		}
	}
	return worst
}

// Drive samples fn every interval on the simulator clock, starting one
// interval in. The returned ticker stops the sampling.
func (p *Probe) Drive(sim *des.Simulator, every des.Duration, fn func() float64) *des.Ticker {
	if every <= 0 {
		panic("obs: non-positive probe cadence")
	}
	return sim.Every(sim.Now().Add(every), every, func() {
		p.Record(sim.Now().Seconds(), fn())
	})
}

// ProbeSet is a collection of probes with canonical export. Add is
// guarded so concurrent sweep jobs can share a set; export sorts probes
// by name (ties by insertion order), so a set whose probe names are
// deterministic exports byte-identically for any worker count.
type ProbeSet struct {
	mu     sync.Mutex
	probes []*Probe
	header *Header
}

// NewProbeSet returns an empty set.
func NewProbeSet() *ProbeSet { return &ProbeSet{} }

// Add registers a probe and returns it.
func (ps *ProbeSet) Add(p *Probe) *Probe {
	ps.mu.Lock()
	ps.probes = append(ps.probes, p)
	ps.mu.Unlock()
	return p
}

// NewProbe creates, registers, and returns a probe in one step.
func (ps *ProbeSet) NewProbe(name string, capacity int) *Probe {
	return ps.Add(NewProbe(name, capacity))
}

// SetHeader attaches a self-describing header record written as the
// first line of WriteJSONL output. The header describes the whole
// export, so it is set once by the invoking command — not per job — and
// stays identical for any worker count.
func (ps *ProbeSet) SetHeader(h Header) {
	ps.mu.Lock()
	hc := h
	ps.header = &hc
	ps.mu.Unlock()
}

// Probes returns the registered probes sorted by name (stable on ties).
func (ps *ProbeSet) Probes() []*Probe {
	ps.mu.Lock()
	out := append([]*Probe(nil), ps.probes...)
	ps.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteJSONL renders every probe as one JSON object per sample:
//
//	{"probe":"queue_bytes","t":0.0001,"v":20000}
//
// A probe whose ring wrapped additionally emits, after its samples, one
//
//	{"probe":"queue_bytes","dropped":123}
//
// record carrying the overwrite count, so consumers can tell a short
// series from a truncated one. When a Header is set (SetHeader) it is
// written first. Probes export in name order, samples
// chronologically, and floats in Go's shortest round-trip form —
// byte-identical across identical runs.
func (ps *ProbeSet) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	ps.mu.Lock()
	h := ps.header
	ps.mu.Unlock()
	if h != nil {
		if _, err := bw.Write(h.appendJSONL(buf)); err != nil {
			return err
		}
	}
	for _, p := range ps.Probes() {
		for _, s := range p.Samples() {
			buf = buf[:0]
			buf = append(buf, `{"probe":`...)
			buf = strconv.AppendQuote(buf, p.name)
			buf = append(buf, `,"t":`...)
			buf = strconv.AppendFloat(buf, s.T, 'g', -1, 64)
			buf = append(buf, `,"v":`...)
			buf = strconv.AppendFloat(buf, s.V, 'g', -1, 64)
			buf = append(buf, '}', '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		if d := p.Dropped(); d > 0 {
			buf = buf[:0]
			buf = append(buf, `{"probe":`...)
			buf = strconv.AppendQuote(buf, p.name)
			buf = append(buf, `,"dropped":`...)
			buf = strconv.AppendInt(buf, d, 10)
			buf = append(buf, '}', '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteCSV renders the set as "probe,t,v" rows with a header, in the same
// canonical order as WriteJSONL.
func (ps *ProbeSet) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("probe,t,v\n"); err != nil {
		return err
	}
	var buf []byte
	for _, p := range ps.Probes() {
		for _, s := range p.Samples() {
			buf = buf[:0]
			buf = append(buf, p.name...)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.T, 'g', -1, 64)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.V, 'g', -1, 64)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
