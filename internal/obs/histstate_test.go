package obs

import (
	"encoding/json"
	"math"
	"testing"
)

// TestHistStateRoundTripMatchesMerge proves the wire path (State →
// JSON → MergeState) is equivalent to the in-process Merge: the
// property the fleet coordinator relies on when folding worker
// histograms into its own set.
func TestHistStateRoundTripMatchesMerge(t *testing.T) {
	h1, h2 := NewHist("rtt"), NewHist("rtt")
	for i := 0; i < 500; i++ {
		h1.Record(1e-6 * float64(i+1))
		h2.Record(3e-5 * float64(i+1))
	}

	direct := NewHist("rtt")
	direct.Merge(h1)
	direct.Merge(h2)

	wire := NewHist("rtt")
	for _, src := range []*Hist{h1, h2} {
		b, err := json.Marshal(src.State())
		if err != nil {
			t.Fatal(err)
		}
		var st HistState
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if err := wire.MergeState(st); err != nil {
			t.Fatal(err)
		}
	}

	if wire.Count() != direct.Count() {
		t.Fatalf("count %d != %d", wire.Count(), direct.Count())
	}
	if wire.Min() != direct.Min() || wire.Max() != direct.Max() {
		t.Fatalf("min/max (%g,%g) != (%g,%g)", wire.Min(), wire.Max(), direct.Min(), direct.Max())
	}
	for _, q := range HistQuantiles {
		if w, d := wire.Quantile(q), direct.Quantile(q); w != d {
			t.Errorf("q%g: wire %g != direct %g", q, w, d)
		}
	}
	if math.Abs(wire.Sum()-direct.Sum()) > 1e-9*math.Abs(direct.Sum()) {
		t.Errorf("sum drifted: wire %g direct %g", wire.Sum(), direct.Sum())
	}
}

func TestHistStateEmptyIsJSONSafe(t *testing.T) {
	st := NewHist("empty").State()
	if st.Count != 0 || st.Min != 0 || st.Max != 0 || len(st.Buckets) != 0 {
		t.Fatalf("empty state not zeroed: %+v", st)
	}
	// The ±Inf internal sentinels must not leak into the JSON encoding.
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("empty state not marshalable: %v", err)
	}
	h := NewHist("target")
	if err := h.MergeState(st); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 {
		t.Error("merging an empty state recorded observations")
	}
}

func TestHistStateRejectsMalformed(t *testing.T) {
	h := NewHist("x")
	h.Record(1)
	before := h.Count()
	cases := []HistState{
		{Name: "x", Count: 1, Buckets: []HistBucket{{Idx: -1, N: 1}}},
		{Name: "x", Count: 1, Buckets: []HistBucket{{Idx: 1 << 20, N: 1}}},
		{Name: "x", Count: 1, Buckets: []HistBucket{{Idx: 3, N: -4}}},
		{Name: "x", Count: -1},
	}
	for i, st := range cases {
		if err := h.MergeState(st); err == nil {
			t.Errorf("case %d: malformed state accepted", i)
		}
	}
	if h.Count() != before {
		t.Error("rejected state mutated the histogram")
	}

	hs := NewHistSet()
	if err := hs.MergeStates([]HistState{{Name: ""}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := hs.MergeStates([]HistState{{Name: "y", Count: 1, Sum: math.Inf(1)}}); err == nil {
		t.Error("non-finite sum accepted")
	}
}

func TestHistSetMergeStatesCreatesAndFolds(t *testing.T) {
	src := NewHistSet()
	src.Hist("a").Record(2)
	src.Hist("b").Record(5)
	src.Hist("b").Record(7)

	dst := NewHistSet()
	dst.Hist("b").Record(1)
	if err := dst.MergeStates(src.States()); err != nil {
		t.Fatal(err)
	}
	if got := dst.Hist("a").Count(); got != 1 {
		t.Errorf("hist a count %d, want 1", got)
	}
	if got := dst.Hist("b").Count(); got != 3 {
		t.Errorf("hist b count %d, want 3", got)
	}
	if got := dst.Hist("b").Max(); got != 7 {
		t.Errorf("hist b max %g, want 7", got)
	}
}
