package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"ecndelay/internal/des"
)

// EventType labels one instrumented simulator action.
type EventType uint8

// The trace record types. Enqueue/Dequeue bracket a packet's time in an
// egress queue; Mark is an ECN CE mark; Pause/Resume are genuine PFC state
// transitions (idempotent re-pauses are absorbed upstream and never
// traced); WireDrop and BufDrop are the two loss sites; Deliver is the
// packet landing at its destination node; Retx is a protocol endpoint
// re-sending below its high-water mark; DoubleFree is a pooled packet
// freed twice (always a bug — the invariant checker flags it).
const (
	Enqueue EventType = iota
	Dequeue
	Mark
	Pause
	Resume
	WireDrop
	BufDrop
	Deliver
	Retx
	DoubleFree
	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	"enq", "deq", "mark", "pause", "resume",
	"wiredrop", "bufdrop", "deliver", "retx", "dfree",
}

func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return "?"
}

// kindNames mirrors the netsim.Kind constants by value (Data, Ack, CNP,
// Pause, Resume, Nack); obs cannot import netsim without a cycle, so the
// correspondence is pinned by a test in internal/netsim.
var kindNames = [...]string{"data", "ack", "cnp", "pause", "resume", "nack"}

// KindNone marks a record that carries no packet (PFC pause/resume state
// transitions); KindName renders it as "-" so portless records are never
// mistaken for data packets when filtering a trace by kind.
const KindNone = 0xFF

// KindName renders a raw netsim packet kind for trace output.
func KindName(k uint8) string {
	if k == KindNone {
		return "-"
	}
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Event is one trace record. It is a plain value — emitting one copies a
// flat struct and allocates nothing. Node/Peer identify the port (one
// directed port per (owner, peer) pair in netsim); fields that do not
// apply to a record type are zero (Peer: -1 when portless, Kind: KindNone
// when no packet is involved).
type Event struct {
	T      des.Time  // simulation time, ns
	Type   EventType // record type
	Kind   uint8     // raw packet kind (see KindName), KindNone when packet-less
	Run    uint32    // network-instance tag (see below), 0 when untagged
	Node   int32     // owner node id
	Peer   int32     // peer node id, -1 when not port-scoped
	Flow   int32     // flow id, -1 for control not tied to a flow
	Size   int32     // packet payload bytes
	QLen   int32     // queue length after the action (queue events)
	QBytes int64     // queued bytes after the action (queue events)
	QCap   int64     // configured queue capacity, 0 = unbounded
	Pkt    uint64    // packet id
	Seq    int64     // sequence/offset field
}

// Run scopes per-port checker state: netsim stamps every port-scoped event
// with a process-unique tag for the network that emitted it, so one shared
// Checker keeps independent books per network even when several runs with
// identical node ids feed it — concurrently (sweep workers) or one after
// another (a runner building several networks). The tag is deliberately NOT
// part of the JSONL trace encoding: its value depends on how many networks
// the process created before, which would break byte-identical golden
// traces.

// Sink receives trace events. Implementations are called with the tracer's
// lock held, in emission order; they must not call back into the tracer.
type Sink interface {
	Event(e Event)
}

// Tracer fans events out to its sinks and keeps per-type counts. Emission
// is serialised by a mutex so one tracer can serve concurrent sweep jobs;
// within one deterministic run the event order is itself deterministic.
type Tracer struct {
	mu     sync.Mutex
	sinks  []Sink
	counts [numEventTypes]int64
}

// NewTracer returns a tracer with no sinks (counts still accumulate).
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// AddSink attaches a sink.
func (t *Tracer) AddSink(s Sink) {
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	if int(e.Type) < len(t.counts) {
		t.counts[e.Type]++
	}
	for _, s := range t.sinks {
		s.Event(e)
	}
	t.mu.Unlock()
}

// Count reports how many events of one type have been emitted.
func (t *Tracer) Count(typ EventType) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(typ) >= len(t.counts) {
		return 0
	}
	return t.counts[typ]
}

// Total reports the number of events emitted across all types.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// MemorySink retains events in memory. Give it a capacity hint to keep
// steady-state recording allocation-free; Limit (if positive) stops
// retention after that many events (the count of dropped events is kept).
type MemorySink struct {
	Limit   int
	events  []Event
	dropped int64
}

// NewMemorySink preallocates room for capacity events (0: grow on demand).
func NewMemorySink(capacity int) *MemorySink {
	return &MemorySink{events: make([]Event, 0, capacity)}
}

// Event implements Sink.
func (m *MemorySink) Event(e Event) {
	if m.Limit > 0 && len(m.events) >= m.Limit {
		m.dropped++
		return
	}
	m.events = append(m.events, e)
}

// Events returns the retained records (the live slice; treat as read-only).
func (m *MemorySink) Events() []Event { return m.events }

// Dropped reports events discarded past Limit.
func (m *MemorySink) Dropped() int64 { return m.dropped }

// JSONLSink streams events as one JSON object per line through a buffered
// writer, encoding into a reused scratch buffer — steady-state tracing
// does not allocate. Call Flush (or Close) before reading the output; Err
// latches the first write error (emission itself cannot fail).
type JSONLSink struct {
	bw  *bufio.Writer
	buf []byte
	err onceError
	c   io.Closer
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// WriteHeader writes a self-describing header record. Call it once,
// right after constructing the sink and before any event is emitted, so
// the header is the first line of the stream.
func (s *JSONLSink) WriteHeader(h Header) {
	b := h.appendJSONL(s.buf[:0])
	s.buf = b
	if _, err := s.bw.Write(b); err != nil {
		s.err.set(err)
	}
}

// Event implements Sink.
func (s *JSONLSink) Event(e Event) {
	b := s.buf[:0]
	b = append(b, `{"t_ns":`...)
	b = strconv.AppendInt(b, int64(e.T), 10)
	b = append(b, `,"type":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(e.Peer), 10)
	b = append(b, `,"flow":`...)
	b = strconv.AppendInt(b, int64(e.Flow), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, KindName(e.Kind)...)
	b = append(b, `","pkt":`...)
	b = strconv.AppendUint(b, e.Pkt, 10)
	b = append(b, `,"size":`...)
	b = strconv.AppendInt(b, int64(e.Size), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, e.Seq, 10)
	b = append(b, `,"qbytes":`...)
	b = strconv.AppendInt(b, e.QBytes, 10)
	b = append(b, `,"qlen":`...)
	b = strconv.AppendInt(b, int64(e.QLen), 10)
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.bw.Write(b); err != nil {
		s.err.set(err)
	}
}

// Flush drains the write buffer.
func (s *JSONLSink) Flush() error {
	if err := s.bw.Flush(); err != nil {
		s.err.set(err)
	}
	return s.err.get()
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error { return s.err.get() }

// Close flushes and closes the underlying writer when it is closable.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
