package obs

import (
	"strings"
	"testing"

	"ecndelay/internal/des"
)

func TestProbeRingWrap(t *testing.T) {
	p := NewProbe("q", 4)
	for i := 0; i < 6; i++ {
		p.Record(float64(i), float64(i*10))
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
	if p.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", p.Dropped())
	}
	s := p.Samples()
	for i, want := range []float64{2, 3, 4, 5} {
		if s[i].T != want || s[i].V != want*10 {
			t.Errorf("sample %d = %+v, want {T:%g V:%g}", i, s[i], want, want*10)
		}
	}
}

func TestProbeRecordAllocFree(t *testing.T) {
	p := NewProbe("q", 64)
	var x float64
	if n := testing.AllocsPerRun(1000, func() {
		p.Record(x, x*2)
		x++
	}); n != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", n)
	}
}

func TestProbeDriveCadence(t *testing.T) {
	sim := des.New()
	p := NewProbe("clock", 0)
	var calls int
	tick := p.Drive(sim, des.Millisecond, func() float64 {
		calls++
		return float64(calls)
	})
	sim.RunUntil(des.Time(10*des.Millisecond + des.Microsecond))
	tick.Stop()
	// First sample lands one interval in: t = 1ms .. 10ms inclusive.
	if calls != 10 || p.Len() != 10 {
		t.Fatalf("calls=%d len=%d, want 10", calls, p.Len())
	}
	s := p.Samples()
	if s[0].T != 0.001 || s[9].T != 0.010 {
		t.Errorf("sample times [%g .. %g], want [0.001 .. 0.010]", s[0].T, s[9].T)
	}
	// Stopping the ticker stops sampling.
	sim.RunUntil(des.Time(20 * des.Millisecond))
	if p.Len() != 10 {
		t.Errorf("probe kept sampling after Stop: len=%d", p.Len())
	}
}

func TestProbeDriveRejectsBadCadence(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Drive accepted a non-positive cadence")
		}
	}()
	NewProbe("x", 0).Drive(des.New(), 0, func() float64 { return 0 })
}

func TestProbeSetCanonicalExport(t *testing.T) {
	ps := NewProbeSet()
	b := ps.NewProbe("beta", 0)
	a := ps.NewProbe("alpha", 0)
	b.Record(0.25, 2)
	a.Record(0.5, 1e-9)
	a.Record(0.75, 3)

	var jsonl strings.Builder
	if err := ps.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	wantJSONL := `{"probe":"alpha","t":0.5,"v":1e-09}
{"probe":"alpha","t":0.75,"v":3}
{"probe":"beta","t":0.25,"v":2}
`
	if jsonl.String() != wantJSONL {
		t.Errorf("JSONL:\n%s\nwant:\n%s", jsonl.String(), wantJSONL)
	}

	var csv strings.Builder
	if err := ps.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	wantCSV := "probe,t,v\nalpha,0.5,1e-09\nalpha,0.75,3\nbeta,0.25,2\n"
	if csv.String() != wantCSV {
		t.Errorf("CSV:\n%s\nwant:\n%s", csv.String(), wantCSV)
	}
}

func TestProbeOverflowExportsDropped(t *testing.T) {
	// A probe whose ring wrapped must say so in the canonical export: the
	// trailing {"probe":...,"dropped":N} record. A probe that never
	// wrapped must not emit one.
	ps := NewProbeSet()
	full := ps.NewProbe("wrapped", 2)
	ok := ps.NewProbe("whole", 8)
	for i := 0; i < 5; i++ {
		full.Record(float64(i), float64(i))
		ok.Record(float64(i), float64(i))
	}
	var sb strings.Builder
	if err := ps.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `{"probe":"wrapped","dropped":3}`) {
		t.Errorf("missing dropped record:\n%s", out)
	}
	if strings.Contains(out, `{"probe":"whole","dropped"`) {
		t.Errorf("unwrapped probe must not export a dropped record:\n%s", out)
	}
	// The dropped record follows its probe's own samples.
	di := strings.Index(out, `"dropped"`)
	li := strings.LastIndex(out, `{"probe":"wrapped","t"`)
	if di < li {
		t.Errorf("dropped record must follow its probe's samples:\n%s", out)
	}
}

func TestProbeConcurrentReadDuringRecord(t *testing.T) {
	// The telemetry server snapshots probes while the run records; under
	// -race this pins the ring as data-race free.
	p := NewProbe("live", 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			p.Record(float64(i), float64(i))
		}
	}()
	for {
		s := p.Samples()
		for i := 1; i < len(s); i++ {
			if s[i].T < s[i-1].T {
				t.Fatalf("snapshot out of order at %d: %v then %v", i, s[i-1], s[i])
			}
		}
		_ = p.Len()
		_ = p.Dropped()
		select {
		case <-done:
			if p.Len() != 128 || p.Dropped() != 5000-128 {
				t.Fatalf("final len=%d dropped=%d", p.Len(), p.Dropped())
			}
			return
		default:
		}
	}
}

func TestProbeSetDuplicateNamesStable(t *testing.T) {
	// Two probes under the same name (e.g. two sequential RunFCT calls
	// sharing an observer) export in insertion order, stably.
	ps := NewProbeSet()
	first := ps.NewProbe("queue_bytes", 0)
	second := ps.NewProbe("queue_bytes", 0)
	first.Record(0.1, 1)
	second.Record(0.2, 2)
	var sb strings.Builder
	if err := ps.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"probe":"queue_bytes","t":0.1,"v":1}
{"probe":"queue_bytes","t":0.2,"v":2}
`
	if sb.String() != want {
		t.Errorf("JSONL:\n%s\nwant:\n%s", sb.String(), want)
	}
}
