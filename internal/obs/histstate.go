package obs

import (
	"fmt"
	"math"
)

// Portable histogram state. A fleet worker snapshots its per-shard
// histograms with State, ships them as JSON, and the coordinator folds
// them into its own set with MergeState. Bucket counts, totals and
// min/max all commute (the same property Merge relies on in-process),
// so any arrival order — including replays of the same shard after a
// worker re-runs it — yields quantiles identical to one shared
// histogram, as long as each shard's state is merged exactly once.

// HistState is the wire snapshot of one Hist: the sparse non-empty
// buckets plus the scalar accumulators. Min/Max are only meaningful
// when Count > 0 (an empty histogram's internal ±Inf sentinels are not
// JSON-encodable and are omitted).
type HistState struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min,omitempty"`
	Max     float64      `json:"max,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty bucket: the internal bucket index and its
// count. Indices are stable across processes because the bucket layout
// is a compile-time constant (histMinExp/histMaxExp/HistSub).
type HistBucket struct {
	Idx int   `json:"i"`
	N   int64 `json:"n"`
}

// State snapshots the histogram for cross-process merge. Safe against
// concurrent recording; like every mid-run snapshot, bucket counts and
// totals may each trail by an in-flight observation.
func (h *Hist) State() HistState {
	st := HistState{Name: h.name, Count: h.Count(), Sum: h.Sum()}
	if st.Count > 0 {
		st.Min, st.Max = h.Min(), h.Max()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			st.Buckets = append(st.Buckets, HistBucket{Idx: i, N: n})
		}
	}
	return st
}

// MergeState folds a portable snapshot into h. Malformed snapshots
// (out-of-range bucket indices, negative counts) are rejected whole, so
// a bad wire payload cannot corrupt the receiving histogram.
func (h *Hist) MergeState(st HistState) error {
	if st.Count < 0 {
		return fmt.Errorf("obs: hist %q state has negative count %d", st.Name, st.Count)
	}
	for _, b := range st.Buckets {
		if b.Idx < 0 || b.Idx >= len(h.buckets) {
			return fmt.Errorf("obs: hist %q state has bucket index %d out of range [0,%d)",
				st.Name, b.Idx, len(h.buckets))
		}
		if b.N < 0 {
			return fmt.Errorf("obs: hist %q state has negative bucket count %d", st.Name, b.N)
		}
	}
	if st.Count == 0 {
		return nil
	}
	for _, b := range st.Buckets {
		h.buckets[b.Idx].Add(b.N)
	}
	h.count.Add(st.Count)
	atomicAddFloat(&h.sum, st.Sum)
	atomicMinFloat(&h.min, st.Min)
	atomicMaxFloat(&h.max, st.Max)
	return nil
}

// States snapshots every histogram in the set, sorted by name.
func (hs *HistSet) States() []HistState {
	hists := hs.Hists()
	out := make([]HistState, 0, len(hists))
	for _, h := range hists {
		out = append(out, h.State())
	}
	return out
}

// MergeStates folds portable snapshots into the set, creating
// histograms on first sight of a name. The first malformed snapshot
// aborts the merge; snapshots before it are already applied.
func (hs *HistSet) MergeStates(sts []HistState) error {
	for _, st := range sts {
		if st.Name == "" {
			return fmt.Errorf("obs: hist state with empty name")
		}
		if math.IsNaN(st.Sum) || math.IsInf(st.Sum, 0) {
			return fmt.Errorf("obs: hist %q state has non-finite sum", st.Name)
		}
		if err := hs.Hist(st.Name).MergeState(st); err != nil {
			return err
		}
	}
	return nil
}
