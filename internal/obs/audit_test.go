package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ecndelay/internal/des"
)

func TestAuditTrailCounts(t *testing.T) {
	mem := NewAuditMemorySink(0)
	a := NewAuditTrail(mem)
	a.Emit(Decision{Type: DecMarkOpen})
	a.Emit(Decision{Type: DecRateCut})
	a.Emit(Decision{Type: DecRateCut})
	a.Emit(Decision{Type: DecRTTSample})
	if got := a.Count(DecRateCut); got != 2 {
		t.Errorf("Count(DecRateCut) = %d, want 2", got)
	}
	if got := a.Count(DecMarkClose); got != 0 {
		t.Errorf("Count(DecMarkClose) = %d, want 0", got)
	}
	if got := a.Total(); got != 4 {
		t.Errorf("Total() = %d, want 4", got)
	}
	if got := len(mem.Decisions()); got != 4 {
		t.Errorf("memory sink retained %d records, want 4", got)
	}
}

func TestAuditMemorySinkLimit(t *testing.T) {
	m := NewAuditMemorySink(4)
	m.Limit = 3
	for i := 0; i < 10; i++ {
		m.Decision(Decision{Seq: uint64(i)})
	}
	if got := len(m.Decisions()); got != 3 {
		t.Errorf("retained %d records past Limit 3", got)
	}
	if got := m.Dropped(); got != 7 {
		t.Errorf("Dropped() = %d, want 7", got)
	}
}

// A trail is itself a DecisionSink, so one trail can chain into another
// — the auditloop runner keeps a run-wide CLI trail attached behind its
// private in-memory view this way.
func TestAuditTrailChains(t *testing.T) {
	parentMem := NewAuditMemorySink(0)
	parent := NewAuditTrail(parentMem)
	childMem := NewAuditMemorySink(0)
	child := NewAuditTrail(childMem, parent)
	child.Emit(Decision{Type: DecRateCut})
	if len(childMem.Decisions()) != 1 || len(parentMem.Decisions()) != 1 {
		t.Errorf("child retained %d, parent retained %d; want 1 and 1",
			len(childMem.Decisions()), len(parentMem.Decisions()))
	}
	if parent.Count(DecRateCut) != 1 {
		t.Error("chained emission did not reach the parent's counters")
	}
}

// auditTestRecords is a deterministic shuffled workload with duplicate
// timestamps across distinct emitters, exercising every sort key.
func auditTestRecords() []Decision {
	rng := rand.New(rand.NewSource(7))
	var decs []Decision
	for i := 0; i < 500; i++ {
		decs = append(decs, Decision{
			T:       des.Time(rng.Intn(50) * 1000),
			Type:    DecisionType(rng.Intn(int(numDecisionTypes))),
			Node:    int32(rng.Intn(4)),
			Peer:    int32(rng.Intn(4)) - 1,
			Flow:    int32(rng.Intn(3)) - 1,
			Seq:     uint64(i),
			Episode: uint64(rng.Intn(3)),
			OldRate: float64(rng.Intn(10)) * 1e8,
			NewRate: float64(rng.Intn(10)) * 1e8,
			RTT:     float64(rng.Intn(5)) * 1e-6,
			QBytes:  int64(rng.Intn(2) * 1000),
		})
	}
	return decs
}

// The JSONL sink's output depends only on the record multiset, never on
// emission order: sorting is by content, so permuted arrivals (sweep
// workers, shard schedules) serialise to identical bytes.
func TestAuditJSONLSinkOrderIndependent(t *testing.T) {
	decs := auditTestRecords()
	encode := func(order []Decision) []byte {
		var buf bytes.Buffer
		s := NewAuditJSONLSink(&buf, len(order))
		s.SetHeader(Header{Schema: "audit", Version: 1, Seed: 7, Proto: "dcqcn"})
		for _, d := range order {
			s.Decision(d)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	forward := encode(decs)
	reversed := make([]Decision, len(decs))
	for i, d := range decs {
		reversed[len(decs)-1-i] = d
	}
	if !bytes.Equal(forward, encode(reversed)) {
		t.Error("reversed emission order changed the serialised bytes")
	}
	shuffled := append([]Decision(nil), decs...)
	rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if !bytes.Equal(forward, encode(shuffled)) {
		t.Error("shuffled emission order changed the serialised bytes")
	}

	lines := strings.Split(strings.TrimSuffix(string(forward), "\n"), "\n")
	if want := len(decs) + 1; len(lines) != want {
		t.Fatalf("export has %d lines, want %d (header + records)", len(lines), want)
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header is not valid JSON: %v", err)
	}
	if hdr["schema"] != "audit" {
		t.Errorf("header schema = %v, want audit", hdr["schema"])
	}
	for i, line := range lines[1:] {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("record line %d is not valid JSON: %v", i, err)
		}
		for _, field := range []string{"t_ns", "dec", "node", "peer", "flow", "seq", "ep", "old", "new", "tgt", "alpha", "rtt", "grad", "qbytes"} {
			if _, ok := m[field]; !ok {
				t.Errorf("record line %d missing field %q", i, field)
			}
		}
	}
}

// decisionLess must be a strict weak ordering: irreflexive, asymmetric,
// and total over distinct record contents — sort.SliceStable's contract,
// and the reason ties are only ever between interchangeable records.
func TestDecisionLessStrictWeakOrder(t *testing.T) {
	decs := auditTestRecords()
	for i := range decs {
		if decisionLess(decs[i], decs[i]) {
			t.Fatalf("decisionLess is not irreflexive at record %d", i)
		}
	}
	sorted := append([]Decision(nil), decs...)
	sort.SliceStable(sorted, func(i, j int) bool { return decisionLess(sorted[i], sorted[j]) })
	for i := 1; i < len(sorted); i++ {
		if decisionLess(sorted[i], sorted[i-1]) {
			t.Fatalf("sorted order violated at %d", i)
		}
		if !decisionLess(sorted[i-1], sorted[i]) && sorted[i-1] != sorted[i] {
			t.Fatalf("distinct records compare equal at %d: %+v vs %+v", i, sorted[i-1], sorted[i])
		}
	}
}

func TestAuditHeaderEncoding(t *testing.T) {
	h := Header{Schema: "audit", Version: 1, Seed: -3, Proto: "dcqcn", Flags: `n=4 trace="x"`}
	got := string(h.appendJSONL(nil))
	want := `{"schema":"audit","v":1,"seed":-3,"proto":"dcqcn","flags":"n=4 trace=\"x\""}` + "\n"
	if got != want {
		t.Errorf("header encoded as %q, want %q", got, want)
	}
}

func TestAuditJSONLSinkDiscardsAfterClose(t *testing.T) {
	var buf bytes.Buffer
	s := NewAuditJSONLSink(&buf, 0)
	s.Decision(Decision{Type: DecRateCut})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	s.Decision(Decision{Type: DecRateCut})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n || s.Len() != 1 {
		t.Error("decisions after Close were not discarded")
	}
}

// Steady-state emission through a trail into both sink kinds is
// allocation-free once buffers are warm: Decision is a flat value and
// both sinks append into preallocated storage.
func TestAuditEmitAllocFree(t *testing.T) {
	mem := NewAuditMemorySink(4096)
	mem.Limit = 2048
	var sb strings.Builder
	sb.Grow(1 << 20)
	jsonl := NewAuditJSONLSink(&sb, 4096)
	a := NewAuditTrail(mem, jsonl)
	d := Decision{T: des.Time(123456), Type: DecRateCut, Node: 1, Peer: 2, Flow: 3,
		Seq: 9, Episode: 77, OldRate: 1e9, NewRate: 5e8, Target: 1e9, Alpha: 0.5}
	for i := 0; i < 100; i++ {
		a.Emit(d)
	}
	if n := testing.AllocsPerRun(1000, func() { a.Emit(d) }); n != 0 {
		t.Fatalf("Emit allocates %.2f per decision after warm-up, want 0", n)
	}
}
