package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Server exposes live telemetry for a running simulation or sweep over
// HTTP:
//
//	/metrics        counters, gauges and histograms in Prometheus text format
//	/progress       a JSON snapshot from the pluggable progress provider
//	/probes         probe ring-buffer snapshots as JSONL
//	/debug/pprof/*  the standard Go profiling endpoints
//
// Every endpoint reads only the observer's lock- or atomic-guarded state,
// so serving concurrent scrapes never perturbs the simulation: a run with
// the server enabled is bit-identical to one without it. The server is
// opt-in — commands start one only when asked (-serve).
type Server struct {
	obs *NetObserver
	mux *http.ServeMux

	mu       sync.Mutex
	progress func() any

	ln  net.Listener
	srv *http.Server

	// Test overrides (0: the production defaults). Tests shrink these to
	// observe timeout enforcement without multi-second waits.
	readTimeout  time.Duration
	writeTimeout time.Duration
}

// NewServer wraps an observer (which may have any subset of facilities
// attached; absent ones simply export nothing).
func NewServer(o *NetObserver) *Server {
	s := &Server{obs: o, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/progress", s.handleProgress)
	s.mux.HandleFunc("/probes", s.handleProbes)
	// Mount pprof explicitly on this private mux; the package's implicit
	// registration on http.DefaultServeMux is never served.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handle registers an additional handler on the server's mux, letting
// embedders (the fleet coordinator's lease API) ride on the telemetry
// port. Call before Start; duplicate patterns panic, as in
// net/http.ServeMux.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetProgress installs the /progress provider: a function returning any
// JSON-marshalable snapshot of live run state (sweep job states, sim
// clock, ETA). Without one, /progress answers 404. Safe to call while the
// server runs.
func (s *Server) SetProgress(fn func() any) {
	s.mu.Lock()
	s.progress = fn
	s.mu.Unlock()
}

// Start binds addr (host:port; port 0 picks a free one) and serves in a
// background goroutine. It returns the bound address, so callers using
// port 0 can report where the server landed.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	s.ln = ln
	// ReadTimeout/WriteTimeout bound a whole request/response exchange, not
	// just the header: without them a scraper that stops reading mid-body
	// holds its connection in-flight and pins Shutdown to its full
	// deadline. Telemetry responses are small, so generous bounds still cut
	// a stalled scrape off long before a graceful drain would give up.
	rt, wt := 10*time.Second, 30*time.Second
	if s.readTimeout > 0 {
		rt = s.readTimeout
	}
	if s.writeTimeout > 0 {
		wt = s.writeTimeout
	}
	ht := 5 * time.Second
	if ht > rt {
		ht = rt
	}
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: ht,
		ReadTimeout:       rt,
		WriteTimeout:      wt,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the server immediately (in-flight scrapes are dropped; the
// simulation owns shutdown timing, not the scraper).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, waits up to d for in-flight requests (a /progress scrape,
// a fleet worker streaming its last checkpoint rows) to finish, then
// force-closes whatever remains. Interrupted runs call this from their
// signal handlers so live scrapes complete before the process exits.
// Safe to call when the server was never started, and after Close.
func (s *Server) Shutdown(d time.Duration) error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
		return fmt.Errorf("obs: telemetry shutdown: %w", err)
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, s.obs)
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.progress
	s.mu.Unlock()
	if fn == nil {
		http.Error(w, "no progress provider attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fn()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleProbes(w http.ResponseWriter, _ *http.Request) {
	if s.obs == nil || s.obs.Probes == nil {
		http.Error(w, "no probe set attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.obs.Probes.WriteJSONL(w)
}

// promName rewrites a dotted instrument name ("port.n0-n2.tx_bytes") into
// a legal Prometheus metric name under the ecndelay_ namespace.
func promName(name string) string {
	out := make([]byte, 0, len(name)+len("ecndelay_"))
	out = append(out, "ecndelay_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WritePrometheus renders the observer's counters, gauges, histograms and
// probe overflow counters in the Prometheus text exposition format. It
// reads only atomic and mutex-guarded state, so it is safe against a
// concurrently recording run.
func WritePrometheus(w io.Writer, o *NetObserver) error {
	bw := bufio.NewWriter(w)
	if o == nil {
		return bw.Flush()
	}
	if o.Metrics != nil {
		for _, m := range o.Metrics.Snapshot() {
			name := promName(m.Name)
			typ := "counter"
			if m.Gauge {
				typ = "gauge"
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n%s %d\n", name, typ, name, m.Value)
		}
	}
	if o.Hists != nil {
		for _, h := range o.Hists.Hists() {
			name := promName(h.Name())
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum int64
			h.ForEachBucket(func(upper float64, count int64) {
				cum += count
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(upper, 'g', -1, 64), cum)
			})
			// Mid-run, Record bumps a bucket before the total, so the
			// atomic count can trail the bucket sum for an instant; clamp
			// so the exposition stays cumulative-monotone.
			total := h.Count()
			if total < cum {
				total = cum
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
			fmt.Fprintf(bw, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
			fmt.Fprintf(bw, "%s_count %d\n", name, total)
		}
	}
	if o.Probes != nil {
		probes := o.Probes.Probes()
		wroteType := false
		for _, p := range probes {
			d := p.Dropped()
			if d == 0 {
				continue
			}
			if !wroteType {
				fmt.Fprint(bw, "# TYPE ecndelay_probe_dropped_total counter\n")
				wroteType = true
			}
			fmt.Fprintf(bw, "ecndelay_probe_dropped_total{probe=%q} %d\n", p.Name(), d)
		}
	}
	return bw.Flush()
}
