package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// httpGet fetches a URL and returns its body, failing the test on any
// transport or read error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE+.i-]+(nf)?$`)

// checkPrometheusText validates the exposition body line by line: every
// line is a comment or "name[{labels}] value" with a parseable value, and
// histogram bucket lines are cumulative-monotone per series.
func checkPrometheusText(t *testing.T, body string) (lines int) {
	t.Helper()
	lastCum := map[string]int64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("bad exposition line: %q", line)
		}
		lines++
		sp := strings.LastIndexByte(line, ' ')
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if i := strings.Index(name, "_bucket{"); i >= 0 {
			series := name[:i]
			cum, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket count not an integer: %q", line)
			}
			if cum < lastCum[series] {
				t.Fatalf("bucket counts not cumulative for %s: %d after %d", series, cum, lastCum[series])
			}
			lastCum[series] = cum
		}
	}
	return lines
}

// TestServerEndpoints exercises every endpoint against a live, concurrently
// recording observer — under -race this pins the scrape path as data-race
// free and the exposition as well-formed mid-run.
func TestServerEndpoints(t *testing.T) {
	o := Full()
	o.Metrics.PortCounters("port.n0-n1").TxBytes.Add(7)
	o.Metrics.Gauge("sweep.jobs_running").Set(3)
	p := o.Probes.NewProbe("queue_bytes", 4)
	for i := 0; i < 9; i++ { // wraps: 5 dropped
		p.Record(float64(i), float64(i))
	}

	srv := NewServer(o)
	srv.SetProgress(func() any {
		return map[string]any{"done": 2, "total": 10}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hammer the histogram while scraping.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := o.Hist("timely.rtt_s")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Record(50e-6 + float64(i%100)*1e-6)
			}
		}
	}()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	for i := 0; i < 5; i++ {
		code, body := get("/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		if n := checkPrometheusText(t, body); n == 0 {
			t.Fatal("/metrics exported nothing")
		}
		if !strings.Contains(body, "ecndelay_port_n0_n1_tx_bytes 7") {
			t.Errorf("missing counter:\n%s", body)
		}
		if !strings.Contains(body, `ecndelay_probe_dropped_total{probe="queue_bytes"} 5`) {
			t.Errorf("missing probe drop counter:\n%s", body)
		}
		if i > 0 && !strings.Contains(body, "ecndelay_timely_rtt_s_count") {
			t.Errorf("missing histogram series:\n%s", body)
		}
	}
	close(stop)
	wg.Wait()

	code, body := get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var prog map[string]any
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if prog["total"] != float64(10) {
		t.Errorf("progress = %v", prog)
	}

	code, body = get("/probes")
	if code != http.StatusOK {
		t.Fatalf("/probes status %d", code)
	}
	if !strings.Contains(body, `{"probe":"queue_bytes","t":`) ||
		!strings.Contains(body, `{"probe":"queue_bytes","dropped":5}`) {
		t.Errorf("unexpected /probes body:\n%s", body)
	}

	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestServerWithoutFacilities checks the degraded paths: no progress
// provider, no probe set, nil observer.
func TestServerWithoutFacilities(t *testing.T) {
	srv := NewServer(&NetObserver{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, want := range map[string]int{
		"/metrics":  http.StatusOK,
		"/progress": http.StatusNotFound,
		"/probes":   http.StatusNotFound,
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status %d, want %d", path, resp.StatusCode, want)
		}
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, nil); err != nil || sb.Len() != 0 {
		t.Errorf("nil observer must export nothing: %q err=%v", sb.String(), err)
	}
}

// TestServerHandleMountsExtraRoutes proves embedders can ride on the
// telemetry mux (the fleet coordinator mounts its lease API this way).
func TestServerHandleMountsExtraRoutes(t *testing.T) {
	srv := NewServer(nil)
	srv.Handle("/fleet/ping", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := httpGet(t, "http://"+addr+"/fleet/ping")
	if body != "pong" {
		t.Fatalf("extra route answered %q", body)
	}
	// Built-in routes still serve.
	if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatal(err)
	}
}

// TestServerShutdownDrainsInFlight: a request already being served must
// complete during Shutdown, and the deadline must bound a handler that
// never finishes.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := NewServer(nil)
	srv.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "done")
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- string(b)
	}()
	<-started
	// Release the handler shortly after shutdown begins: the in-flight
	// request must still be answered.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	if body := <-got; body != "done" {
		t.Fatalf("in-flight request dropped during shutdown: %q", body)
	}
	// After shutdown, new connections are refused.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestServerShutdownDeadlineBoundsHungHandler(t *testing.T) {
	started := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	srv := NewServer(nil)
	srv.Handle("/hang", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		close(started)
		<-hang
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + addr + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	t0 := time.Now()
	err = srv.Shutdown(100 * time.Millisecond)
	if err == nil {
		t.Fatal("shutdown reported success despite a hung handler")
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("shutdown took %v, deadline not enforced", d)
	}
}

func TestServerShutdownWithoutStartIsNoop(t *testing.T) {
	if err := NewServer(nil).Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestServerTimeoutsConfigured pins the production hardening: the HTTP
// server must bound the whole exchange, not just the header, or a
// scraper that stops reading mid-body holds its connection in-flight
// until the process dies.
func TestServerTimeoutsConfigured(t *testing.T) {
	srv := NewServer(nil)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.srv.ReadTimeout != 10*time.Second {
		t.Errorf("ReadTimeout = %v, want 10s", srv.srv.ReadTimeout)
	}
	if srv.srv.WriteTimeout != 30*time.Second {
		t.Errorf("WriteTimeout = %v, want 30s", srv.srv.WriteTimeout)
	}
	if srv.srv.ReadHeaderTimeout != 5*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 5s", srv.srv.ReadHeaderTimeout)
	}
}

// TestServerCutsStalledReader: a client that requests a large body and
// then never reads must be cut off by the write timeout — the handler's
// blocked Write fails — instead of pinning the connection (and any later
// graceful Shutdown) forever. Timeouts are shrunk so the test observes
// the cut in milliseconds rather than the production 30s.
func TestServerCutsStalledReader(t *testing.T) {
	srv := NewServer(nil)
	srv.readTimeout = 200 * time.Millisecond
	srv.writeTimeout = 200 * time.Millisecond
	writeErr := make(chan error, 1)
	srv.Handle("/big", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		chunk := make([]byte, 1<<20)
		for i := 0; i < 1024; i++ { // far beyond any socket buffer
			if _, err := w.Write(chunk); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /big HTTP/1.1\r\nHost: %s\r\n\r\n", addr); err != nil {
		t.Fatal(err)
	}
	// Never read: the response backs up into the socket buffers and the
	// handler's Write blocks until the write deadline fires.
	select {
	case err := <-writeErr:
		if err == nil {
			t.Fatal("handler drained 1 GiB into a non-reading client; write timeout not enforced")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled reader still pinned the handler after 10s; write timeout not enforced")
	}
	// With the stalled connection dead, a graceful drain is prompt.
	t0 := time.Now()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown after stalled reader: %v", err)
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("shutdown took %v despite the stalled reader being cut", d)
	}
}
