package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are atomic so one
// registry can serve concurrent sweep jobs; totals are then deterministic
// for any worker count (sums commute), even though interleaving differs.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reports the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Metric is one registry entry in a snapshot.
type Metric struct {
	Name  string
	Value int64
	Gauge bool
}

// Registry holds hierarchical counters and gauges. Names are dotted paths
// ("port.n0-n2.tx_bytes"); registration is get-or-create, so independent
// components can share an instrument by agreeing on its name. Lookup is
// guarded by a mutex — hot paths must register once and keep the returned
// pointer, which is what the netsim/dcqcn/timely bindings do.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every instrument sorted by name — the canonical,
// byte-comparable order.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Value: g.Value(), Gauge: true})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTSV renders the snapshot as "name\tvalue" lines sorted by name.
func (r *Registry) WriteTSV(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s\t%d\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// PortCounters are the per-port instruments netsim registers: the names
// the issue calls out (tx/rx bytes, marks, pauses) plus the drop taxonomy
// the fault layer introduced.
type PortCounters struct {
	TxBytes   *Counter // payload bytes serialised onto the wire
	TxPkts    *Counter // packets serialised
	Marks     *Counter // ECN CE marks applied at this port's queue
	BufDrops  *Counter // tail drops at the finite egress queue
	WireDrops *Counter // packets lost on the wire (fault hook or flap)
	Pauses    *Counter // genuine PFC pause transitions
	Resumes   *Counter // genuine PFC resume transitions
}

// PortCounters registers (or finds) the port instrument set under prefix.
func (r *Registry) PortCounters(prefix string) *PortCounters {
	return &PortCounters{
		TxBytes:   r.Counter(prefix + ".tx_bytes"),
		TxPkts:    r.Counter(prefix + ".tx_pkts"),
		Marks:     r.Counter(prefix + ".marks"),
		BufDrops:  r.Counter(prefix + ".buf_drops"),
		WireDrops: r.Counter(prefix + ".wire_drops"),
		Pauses:    r.Counter(prefix + ".pauses"),
		Resumes:   r.Counter(prefix + ".resumes"),
	}
}

// EndpointCounters are the per-endpoint instruments the DCQCN and TIMELY
// engines register (TIMELY leaves the CNP pair at zero).
type EndpointCounters struct {
	RxBytes   *Counter // payload bytes delivered (in-order under Recovery)
	CNPTx     *Counter // congestion notifications generated (NP role)
	CNPRx     *Counter // congestion notifications received (RP role)
	AcksTx    *Counter // acks emitted by the receiver role
	NacksTx   *Counter // go-back-N gap reports emitted
	RetxPkts  *Counter // retransmitted packets (below the high-water mark)
	RetxBytes *Counter // retransmitted bytes
	RTOs      *Counter // retransmission timeouts fired
}

// EndpointCounters registers (or finds) the endpoint instrument set under
// prefix.
func (r *Registry) EndpointCounters(prefix string) *EndpointCounters {
	return &EndpointCounters{
		RxBytes:   r.Counter(prefix + ".rx_bytes"),
		CNPTx:     r.Counter(prefix + ".cnp_tx"),
		CNPRx:     r.Counter(prefix + ".cnp_rx"),
		AcksTx:    r.Counter(prefix + ".acks_tx"),
		NacksTx:   r.Counter(prefix + ".nacks_tx"),
		RetxPkts:  r.Counter(prefix + ".retx_pkts"),
		RetxBytes: r.Counter(prefix + ".retx_bytes"),
		RTOs:      r.Counter(prefix + ".rtos"),
	}
}
