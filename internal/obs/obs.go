// Package obs is the observability layer of the simulator: hierarchical
// counters and gauges, fixed-cadence time-series probes backed by
// preallocated ring buffers, a pooled-buffer event-trace facility with
// pluggable sinks, and a runtime invariant checker fed by the same event
// stream.
//
// The package deliberately knows nothing about the network simulator: every
// hook carries plain integers (node ids, byte counts, packet kinds as raw
// bytes), so internal/netsim and the protocol endpoints can import obs
// without a dependency cycle. Instrumentation follows the nil-hook pattern
// of internal/fault: a network without an observer attached executes
// exactly the pre-observability code (one nil pointer check per hook site),
// keeping fault-free, observer-free runs bit-identical and the hot path at
// zero allocations. With an observer attached, counters are atomic adds,
// trace records are value types encoded into reused buffers, and checker
// state lives in maps warmed on first touch — so an observed run is also
// allocation-free after warm-up.
package obs

import (
	"sync"

	"ecndelay/internal/des"
)

// NetObserver bundles the observability facilities a simulation run may
// attach: any field may be nil, and a nil *NetObserver disables everything.
// The same observer may be shared by concurrent runs (the sweep engine):
// counters are atomic, the tracer and checker serialise internally, and the
// checker keeps books per network instance (Event.Run), so runs with
// identical node ids never corrupt each other's invariant state.
type NetObserver struct {
	// Metrics receives hierarchical counters registered by ports, hosts
	// and protocol endpoints at attach/creation time.
	Metrics *Registry
	// Trace receives one Event per instrumented simulator action.
	Trace *Tracer
	// Check feeds the same events through the runtime invariant checker.
	Check *Checker
	// Probes collects auto-registered time-series probes (bottleneck
	// queue depth and similar); experiment harnesses add their own.
	Probes *ProbeSet
	// Hists collects streaming latency histograms: per-hop queueing
	// delay, per-flow RTT, pacing/CNP inter-arrival gaps, flow
	// completion times. Instruments are get-or-create by name, so
	// concurrent runs sharing one set merge their distributions; names
	// are qualified through ProbeName like probe series.
	Hists *HistSet
	// ProbeEvery is the sampling cadence for auto-registered probes
	// (zero: 100 µs). See EXPERIMENTS.md for cadence guidance.
	ProbeEvery des.Duration
	// ProbePrefix qualifies every auto-registered probe name (via
	// ProbeName). Job orchestrators give each job a shallow copy of a
	// shared observer with a distinct prefix, so a shared ProbeSet holds
	// distinguishable series and exports in an order independent of job
	// scheduling.
	ProbePrefix string
	// Audit receives one Decision per congestion-control action: DCQCN
	// alpha updates, rate cuts and FR/AI/HAI increases; TIMELY RTT
	// samples, gradients and rate actions; switch mark-episode
	// open/close. Nil disables the control-loop audit entirely (the
	// usual state): endpoints and marking ports keep a nil trail pointer
	// and skip every audit site with one check.
	Audit *AuditTrail
	// TracePerJob, when set, gives every sweep job a private tracer: the
	// job orchestrator calls it with the job's ID when deriving the job's
	// observer copy and installs the result as that copy's Trace. A shared
	// Trace stream interleaves jobs by completion order; per-job tracers
	// (normally backed by per-job files) make trace output deterministic
	// for any worker count.
	TracePerJob func(jobID string) *Tracer
	// AuditPerJob mirrors TracePerJob for the control-loop audit: when
	// set, the job orchestrator installs AuditPerJob(jobID) as the job
	// copy's Audit trail, so per-job audit files stay byte-identical for
	// any worker count.
	AuditPerJob func(jobID string) *AuditTrail
}

// Emit routes one event to the tracer and the invariant checker. Callers
// guard the observer itself for nil; Emit guards its facilities.
func (o *NetObserver) Emit(e Event) {
	if o.Trace != nil {
		o.Trace.Emit(e)
	}
	if o.Check != nil {
		o.Check.Feed(e)
	}
}

// ProbeCadence reports the configured probe cadence, defaulted.
func (o *NetObserver) ProbeCadence() des.Duration {
	if o.ProbeEvery > 0 {
		return o.ProbeEvery
	}
	return 100 * des.Microsecond
}

// ProbeName qualifies an auto-registered probe name with the observer's
// ProbePrefix.
func (o *NetObserver) ProbeName(name string) string {
	if o.ProbePrefix == "" {
		return name
	}
	return o.ProbePrefix + name
}

// Hist returns the named histogram from the observer's set, with the
// name qualified by ProbePrefix like a probe series. It returns nil when
// the observer or its HistSet is absent, so binding sites can keep a nil
// pointer and skip recording with one check.
func (o *NetObserver) Hist(name string) *Hist {
	if o == nil || o.Hists == nil {
		return nil
	}
	return o.Hists.Hist(o.ProbeName(name))
}

// Full returns an observer with every facility enabled: a fresh registry,
// a tracer with no sinks (attach some, or use Counts), a checker, and a
// probe set. Convenient for tests that want everything on.
func Full() *NetObserver {
	return &NetObserver{
		Metrics: NewRegistry(),
		Trace:   NewTracer(),
		Check:   NewChecker(),
		Probes:  NewProbeSet(),
		Hists:   NewHistSet(),
	}
}

// onceError latches the first error from a best-effort writer path.
type onceError struct {
	mu  sync.Mutex
	err error
}

func (o *onceError) set(err error) {
	if err == nil {
		return
	}
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

func (o *onceError) get() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}
