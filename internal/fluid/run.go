package fluid

import (
	"math"

	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/ode"
)

// Model is the interface all fluid systems in this package satisfy: an ODE
// system that knows its own initial state and maximum history lag.
type Model interface {
	ode.System
	Initial() []float64
	MaxDelay() float64
}

// Sample is one recorded point of a trajectory.
type Sample struct {
	T float64
	Y []float64 // copy of the full state
}

// Run integrates m from 0 to t1 with step h, recording the state every
// sampleEvery seconds (clamped to at least one step). It returns the
// recorded trajectory, which always includes the initial and final states.
func Run(m Model, h, t1, sampleEvery float64) []Sample {
	if sampleEvery < h {
		sampleEvery = h
	}
	stride := int(math.Round(sampleEvery / h))
	// Linear history interpolation: the fluid models clamp state in
	// PostStep (queues at zero, rates at line rate), so the stored step
	// slopes can disagree with the clamped states and cubic Hermite would
	// overshoot into unphysical values (negative queues) at exactly the
	// operating points the paper cares about.
	solver := &ode.Solver{Sys: m, H: h, MaxDelay: m.MaxDelay(), Y0: m.Initial(), LinearHistory: true}
	var out []Sample
	step := 0
	steps := int(math.Round(t1 / h))
	solver.Integrate(0, t1, func(t float64, y []float64) {
		if step%stride == 0 || step == steps {
			out = append(out, Sample{T: t, Y: append([]float64(nil), y...)})
		}
		step++
	})
	return out
}

// DefaultDCQCNParams returns the [31] default parameters for n flows on a
// 40 Gb/s bottleneck with 1 KB packets, in packet units: C = 5e6 pkt/s,
// R_AI = 40 Mb/s, τ = 50 µs, τ' = T = 55 µs, B = 10 MB, F = 5,
// K_min/K_max = 5/200 KB, P_max = 1%, g = 1/256, τ* = 4 µs.
func DefaultDCQCNParams(n int) fixedpoint.DCQCNParams {
	return fixedpoint.DCQCNParams{
		N:        n,
		C:        40e9 / 8 / 1000,
		RAI:      40e6 / 8 / 1000,
		Tau:      50e-6,
		TauPrime: 55e-6,
		T:        55e-6,
		B:        10e6 / 1000,
		F:        5,
		Kmin:     5,
		Kmax:     200,
		Pmax:     0.01,
		G:        1.0 / 256,
		TauStar:  4e-6,
	}
}
