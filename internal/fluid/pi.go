package fluid

import (
	"fmt"

	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/ode"
)

// PIConfig holds the Eq. 32 controller gains: dp/dt = K1·de/dt + K2·e.
// For the switch-side controller (DCQCN) the error e is the queue deviation
// in packets; for the host-side controller (TIMELY) it is the delay
// deviation in seconds. QRef is in the respective queue unit.
type PIConfig struct {
	K1   float64
	K2   float64
	QRef float64
	// PMax caps the controller output (anti-windup): without it the
	// line-rate start transient winds the integrator to p = 1, which then
	// drains at only K2·QRef per second. Zero means 0.1 for the switch
	// controller; the host controller is capped structurally instead.
	PMax float64
}

// DCQCNPIConfig configures DCQCN with PI marking at the switch (Figure 18):
// RED (a proportional controller) is replaced by the integral controller of
// Eq. 32 and the resulting p drives the usual DCQCN multiplicative decrease.
type DCQCNPIConfig struct {
	DCQCN DCQCNConfig
	PI    PIConfig // e in packets; QRef in packets
}

// DCQCNPISystem lays out state as y[0] = queue (packets), y[1] = marking
// probability p, then per-flow (α, R_T, R_C) triples.
type DCQCNPISystem struct {
	inner *DCQCNSystem // reused for abcde and parameters
	pi    PIConfig
}

// NewDCQCNPI validates the configuration and builds the system. Zero PI
// gains default to K1 = 2e-5 /packet, K2 = 1e-3 /packet/s, QRef = 50
// packets — a controller that holds ~50 KB of queue with 1 KB packets and
// stays stable for 2-64 flows at feedback delays up to ~100 µs.
func NewDCQCNPI(cfg DCQCNPIConfig) (*DCQCNPISystem, error) {
	inner, err := NewDCQCN(cfg.DCQCN)
	if err != nil {
		return nil, err
	}
	pi := cfg.PI
	if pi.K1 == 0 {
		pi.K1 = 2e-5
	}
	if pi.K2 == 0 {
		pi.K2 = 1e-3
	}
	if pi.QRef == 0 {
		pi.QRef = 50
	}
	if pi.PMax == 0 {
		pi.PMax = 0.1
	}
	return &DCQCNPISystem{inner: inner, pi: pi}, nil
}

// Dim implements ode.System.
func (s *DCQCNPISystem) Dim() int { return 2 + 3*s.inner.cfg.Params.N }

// QIndex returns the state index of the queue.
func (s *DCQCNPISystem) QIndex() int { return 0 }

// PIndex returns the state index of the PI marking probability.
func (s *DCQCNPISystem) PIndex() int { return 1 }

// AlphaIndex returns the state index of flow i's α.
func (s *DCQCNPISystem) AlphaIndex(i int) int { return 2 + 3*i }

// RTIndex returns the state index of flow i's target rate.
func (s *DCQCNPISystem) RTIndex(i int) int { return 3 + 3*i }

// RCIndex returns the state index of flow i's current rate.
func (s *DCQCNPISystem) RCIndex(i int) int { return 4 + 3*i }

// QRef reports the controller's queue reference in packets.
func (s *DCQCNPISystem) QRef() float64 { return s.pi.QRef }

// Initial returns the initial state: empty queue, p = 0, flows at line rate.
func (s *DCQCNPISystem) Initial() []float64 {
	y := make([]float64, s.Dim())
	base := s.inner.Initial()
	copy(y[2:], base[1:])
	return y
}

// Derivs implements ode.System.
func (s *DCQCNPISystem) Derivs(t float64, y []float64, past ode.History, dydt []float64) {
	pr := s.inner.cfg.Params
	delay := pr.TauStar + s.inner.jit.value()
	tq := t - delay

	sum := 0.0
	for i := 0; i < pr.N; i++ {
		sum += y[s.RCIndex(i)]
	}
	dq := sum - pr.C
	if y[0] <= 0 && dq < 0 {
		dq = 0
	}
	dydt[0] = dq

	// Eq. 32 with e = q - QRef; de/dt = dq/dt.
	dydt[1] = s.pi.K1*dq + s.pi.K2*(y[0]-s.pi.QRef)
	if y[1] <= 0 && dydt[1] < 0 {
		dydt[1] = 0
	}
	if y[1] >= s.pi.PMax && dydt[1] > 0 {
		dydt[1] = 0
	}

	pHat := clamp(past.Value(tq, 1), 0, 1)
	for i := 0; i < pr.N; i++ {
		alpha := y[s.AlphaIndex(i)]
		rt := y[s.RTIndex(i)]
		rc := y[s.RCIndex(i)]
		rcHat := past.Value(tq, s.RCIndex(i))
		a, b, c, d, e := s.inner.abcde(pHat, rcHat)
		dydt[s.AlphaIndex(i)] = pr.G / pr.TauPrime * ((-fixedpoint.Expm1Pow(pHat, pr.TauPrime*rcHat)) - alpha)
		dydt[s.RTIndex(i)] = -(rt-rc)/pr.Tau*a + pr.RAI*rcHat*(c+e)
		dydt[s.RCIndex(i)] = -rc*alpha/(2*pr.Tau)*a + (rt-rc)/2*rcHat*(b+d)
	}
}

// PostStep implements ode.PostStepper.
func (s *DCQCNPISystem) PostStep(_ float64, y []float64) {
	if y[0] < 0 {
		y[0] = 0
	}
	y[1] = clamp(y[1], 0, s.pi.PMax)
	for i := 0; i < s.inner.cfg.Params.N; i++ {
		y[s.AlphaIndex(i)] = clamp(y[s.AlphaIndex(i)], 0, 1)
		y[s.RTIndex(i)] = clamp(y[s.RTIndex(i)], s.inner.rmin, s.inner.lineRate)
		y[s.RCIndex(i)] = clamp(y[s.RCIndex(i)], s.inner.rmin, s.inner.lineRate)
	}
	s.inner.jit.resample()
}

// MaxDelay reports the largest history lag requested.
func (s *DCQCNPISystem) MaxDelay() float64 { return s.inner.MaxDelay() }

// TimelyPIConfig configures patched TIMELY with an end-host PI controller
// (Figure 19): each sender integrates its own delay error into an internal
// variable p_i that replaces the (q-q')/q' term of Eq. 29.
type TimelyPIConfig struct {
	Timely TimelyConfig
	PI     PIConfig // e in seconds of queueing delay; QRef in bytes
}

// TimelyPISystem lays out state as y[0] = queue (bytes), then per-flow
// (R_i, g_i, p_i) triples.
type TimelyPISystem struct {
	base *timelyBase
	pi   PIConfig
	dref float64 // reference queueing delay, s
}

// NewTimelyPI validates the configuration and builds the system. Zero PI
// gains default to K1 = 500 /s, K2 = 2e4 /s², QRef = 300 KB (the Figure 19
// operating point).
func NewTimelyPI(cfg TimelyPIConfig) (*TimelyPISystem, error) {
	b, err := newTimelyBase(cfg.Timely, true)
	if err != nil {
		return nil, err
	}
	pi := cfg.PI
	if pi.K1 == 0 {
		pi.K1 = 500
	}
	if pi.K2 == 0 {
		pi.K2 = 2e4
	}
	if pi.QRef == 0 {
		pi.QRef = 300e3
	}
	if pi.QRef <= 0 || pi.QRef >= 16e6 {
		return nil, fmt.Errorf("fluid: TimelyPI QRef %v bytes out of range", pi.QRef)
	}
	return &TimelyPISystem{base: b, pi: pi, dref: pi.QRef / cfg.Timely.C}, nil
}

// Dim implements ode.System.
func (s *TimelyPISystem) Dim() int { return 1 + 3*s.base.cfg.N }

// QIndex returns the state index of the queue.
func (s *TimelyPISystem) QIndex() int { return 0 }

// RateIndex returns the state index of flow i's rate.
func (s *TimelyPISystem) RateIndex(i int) int { return 1 + 3*i }

// GradIndex returns the state index of flow i's RTT gradient.
func (s *TimelyPISystem) GradIndex(i int) int { return 2 + 3*i }

// PIndex returns the state index of flow i's internal PI variable.
func (s *TimelyPISystem) PIndex(i int) int { return 3 + 3*i }

// QRef reports the controller's queue reference in bytes.
func (s *TimelyPISystem) QRef() float64 { return s.pi.QRef }

// Initial returns the initial state with p_i = 0.
func (s *TimelyPISystem) Initial() []float64 {
	y := make([]float64, s.Dim())
	b := s.base.Initial()
	for i := 0; i < s.base.cfg.N; i++ {
		y[s.RateIndex(i)] = b[s.base.RateIndex(i)]
		y[s.GradIndex(i)] = b[s.base.GradIndex(i)]
	}
	return y
}

// Derivs implements ode.System.
func (s *TimelyPISystem) Derivs(t float64, y []float64, past ode.History, dydt []float64) {
	cfg := s.base.cfg
	sum := 0.0
	for i := 0; i < cfg.N; i++ {
		if s.base.active(i, t) {
			sum += y[s.RateIndex(i)]
		}
	}
	dq := sum - cfg.C
	if y[0] <= 0 && dq < 0 {
		dq = 0
	}
	dydt[0] = dq

	for i := 0; i < cfg.N; i++ {
		ri, gi, pi := s.RateIndex(i), s.GradIndex(i), s.PIndex(i)
		if !s.base.active(i, t) {
			dydt[ri], dydt[gi], dydt[pi] = 0, 0, 0
			continue
		}
		r := y[ri]
		g := y[gi]
		p := y[pi]
		ts := s.base.tauStar(r)
		qd, qd2 := s.base.sampleQueues(t, y[0], ts, past)
		dydt[gi] = cfg.EWMA / ts * (-g + (qd-qd2)/(cfg.C*cfg.DminRTT))

		// Host-side PI (Eq. 32): e = measured queueing delay - reference.
		// The controller runs once per completion event, so its integral
		// action scales with the flow's own update rate 1/τ*_i — this
		// per-flow sampling asymmetry is what lets the individual
		// integrators settle at different values (Theorem 6: delay can be
		// pinned, fairness cannot).
		e := qd/cfg.C - s.dref
		dedt := (qd - qd2) / ts / cfg.C
		dydt[pi] = s.pi.K1*dedt + s.pi.K2*e*(cfg.DminRTT/ts)

		switch {
		case qd < cfg.C*cfg.TLow:
			dydt[ri] = cfg.Delta / ts
		case qd > cfg.C*cfg.THigh:
			dydt[ri] = -cfg.Beta / ts * (1 - cfg.C*cfg.THigh/qd) * r
		default:
			w := PatchedWeight(g)
			dydt[ri] = (1-w)*cfg.Delta/ts - w*cfg.Beta*r/ts*p
		}
	}
}

// PostStep implements ode.PostStepper.
func (s *TimelyPISystem) PostStep(t float64, y []float64) {
	if y[0] < 0 {
		y[0] = 0
	}
	for i := 0; i < s.base.cfg.N; i++ {
		if !s.base.active(i, t) {
			continue
		}
		if !s.base.started[i] {
			s.base.started[i] = true
			r := s.base.cfg.C / float64(s.base.cfg.N+1)
			if s.base.cfg.InitialRates != nil && s.base.cfg.InitialRates[i] > 0 {
				r = s.base.cfg.InitialRates[i]
			}
			y[s.RateIndex(i)] = r
		}
		y[s.RateIndex(i)] = clamp(y[s.RateIndex(i)], s.base.rmin, s.base.lineRate)
		y[s.GradIndex(i)] = clamp(y[s.GradIndex(i)], -100, 100)
		y[s.PIndex(i)] = clamp(y[s.PIndex(i)], -10, 100)
	}
	s.base.jit.resample()
}

// MaxDelay reports the largest history lag requested.
func (s *TimelyPISystem) MaxDelay() float64 { return s.base.MaxDelay() }
