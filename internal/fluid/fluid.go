// Package fluid implements the delay-differential fluid models the paper
// analyses:
//
//   - DCQCN (Figure 1, Eq. 3-7), per-flow states, extended as in §3.1 to
//     flows with unequal rates;
//   - TIMELY (Figure 7, Eq. 20-24), including the original Algorithm 1
//     sign convention and the Eq. 28 variant;
//   - Patched TIMELY (Algorithm 2, Eq. 29-30);
//   - DCQCN with a PI marking controller at the switch (Eq. 32, Fig. 18);
//   - Patched TIMELY with an end-host PI controller (Fig. 19).
//
// Unit conventions: the DCQCN models work in packets and packets/second
// (matching the per-packet marking probability); the TIMELY models work in
// bytes and bytes/second (matching the paper's KB segments and Gb/s rates).
// Time is always seconds.
//
// Every model implements ode.System (plus ode.PostStepper for clamping), so
// they integrate with the solver in internal/ode. Optional uniform feedback
// jitter reproduces the Figure 20 experiment.
package fluid

import (
	"math/rand"
)

// REDMark is the RED-like marking profile of Eq. 3: zero below kmin, a
// linear ramp to pmax at kmax, and 1 beyond.
func REDMark(q, kmin, kmax, pmax float64) float64 {
	switch {
	case q <= kmin:
		return 0
	case q <= kmax:
		return (q - kmin) / (kmax - kmin) * pmax
	default:
		return 1
	}
}

// REDMarkExtended is the marking profile with the ramp extended past kmax
// (capped at probability 1). The paper's fixed point Eq. 9 admits q* > Kmax
// (e.g. 64 flows at the default parameters), which is only consistent with
// the ramp continuing past Kmax; the fluid model therefore uses this form by
// default, while the packet-level switch implements the strict Eq. 3.
func REDMarkExtended(q, kmin, kmax, pmax float64) float64 {
	if q <= kmin {
		return 0
	}
	p := (q - kmin) / (kmax - kmin) * pmax
	if p > 1 {
		return 1
	}
	return p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// jitterSource produces per-step frozen uniform jitter in [0, max). Two
// independent draws are kept per step because the TIMELY gradient compares
// two RTT samples, each carrying its own feedback-path jitter. A zero max
// always yields zeros.
type jitterSource struct {
	max float64
	rng *rand.Rand
	cur [2]float64
}

func newJitterSource(max float64, seed int64) *jitterSource {
	js := &jitterSource{max: max}
	if max > 0 {
		js.rng = rand.New(rand.NewSource(seed))
		js.resample()
	}
	return js
}

func (js *jitterSource) resample() {
	if js.rng != nil {
		js.cur[0] = js.rng.Float64() * js.max
		js.cur[1] = js.rng.Float64() * js.max
	}
}

// value returns the first jitter draw frozen for the current step.
func (js *jitterSource) value() float64 { return js.cur[0] }

// pair returns both per-step draws.
func (js *jitterSource) pair() (float64, float64) { return js.cur[0], js.cur[1] }
