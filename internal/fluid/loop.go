package fluid

import (
	"fmt"

	"ecndelay/internal/fixedpoint"
)

// This file provides the symmetric-flow loop reductions consumed by
// internal/stability (they satisfy stability.LoopModel structurally): one
// representative flow's dynamics, driven by delayed observations of the
// shared queue, with the queue integrator factored out.

// DCQCNLoop reduces the DCQCN fluid model to its per-flow rate subsystem
// for the §3.2 phase-margin analysis. State z = (α, R_T, R_C); single
// feedback lag τ*.
type DCQCNLoop struct {
	sys *DCQCNSystem
}

// NewDCQCNLoop builds the reduction for the given parameters.
func NewDCQCNLoop(params fixedpoint.DCQCNParams) (*DCQCNLoop, error) {
	sys, err := NewDCQCN(DCQCNConfig{Params: params})
	if err != nil {
		return nil, err
	}
	return &DCQCNLoop{sys: sys}, nil
}

// StateDim implements stability.LoopModel.
func (l *DCQCNLoop) StateDim() int { return 3 }

// Delays implements stability.LoopModel.
func (l *DCQCNLoop) Delays() []float64 { return []float64{l.sys.cfg.Params.TauStar} }

// RateIndex implements stability.LoopModel: R_C is z[2].
func (l *DCQCNLoop) RateIndex() int { return 2 }

// FlowCount implements stability.LoopModel.
func (l *DCQCNLoop) FlowCount() int { return l.sys.cfg.Params.N }

// Equilibrium implements stability.LoopModel via Theorem 1.
func (l *DCQCNLoop) Equilibrium() ([]float64, float64, error) {
	fp, err := fixedpoint.SolveDCQCN(l.sys.cfg.Params)
	if err != nil {
		return nil, 0, err
	}
	return []float64{fp.Alpha, fp.RT, fp.RC}, fp.Q, nil
}

// Derivs implements stability.LoopModel: the per-flow slice of Eq. 5-7 with
// the queue (and hence marking probability) supplied externally.
func (l *DCQCNLoop) Derivs(z []float64, zd [][]float64, qd []float64, dzdt []float64) {
	pr := l.sys.cfg.Params
	alpha, rt, rc := z[0], z[1], z[2]
	rcHat := zd[0][2]
	pHat := REDMarkExtended(qd[0], pr.Kmin, pr.Kmax, pr.Pmax)
	a, b, c, d, e := l.sys.abcde(pHat, rcHat)
	dzdt[0] = pr.G / pr.TauPrime * ((-fixedpoint.Expm1Pow(pHat, pr.TauPrime*rcHat)) - alpha)
	dzdt[1] = -(rt-rc)/pr.Tau*a + pr.RAI*rcHat*(c+e)
	dzdt[2] = -rc*alpha/(2*pr.Tau)*a + (rt-rc)/2*rcHat*(b+d)
}

// DCQCNIngressLoop is the DCQCN loop reduction with ingress marking
// (Figure 17): the marking feedback path carries the extra lag q*/C frozen
// at the fixed point, while the rate self-feedback keeps the lag τ*. The
// phase-margin gap between this and DCQCNLoop is the analytical content of
// §5.2's egress-marking argument.
type DCQCNIngressLoop struct {
	inner *DCQCNLoop
	tauMk float64 // τ* + q*/C
}

// NewDCQCNIngressLoop builds the reduction.
func NewDCQCNIngressLoop(params fixedpoint.DCQCNParams) (*DCQCNIngressLoop, error) {
	inner, err := NewDCQCNLoop(params)
	if err != nil {
		return nil, err
	}
	fp, err := fixedpoint.SolveDCQCN(params)
	if err != nil {
		return nil, err
	}
	return &DCQCNIngressLoop{inner: inner, tauMk: params.TauStar + fp.Q/params.C}, nil
}

// StateDim implements stability.LoopModel.
func (l *DCQCNIngressLoop) StateDim() int { return 3 }

// Delays implements stability.LoopModel: lag 0 is the rate self-feedback
// (τ*), lag 1 the marking path (τ* + q*/C).
func (l *DCQCNIngressLoop) Delays() []float64 {
	return []float64{l.inner.sys.cfg.Params.TauStar, l.tauMk}
}

// RateIndex implements stability.LoopModel.
func (l *DCQCNIngressLoop) RateIndex() int { return 2 }

// FlowCount implements stability.LoopModel.
func (l *DCQCNIngressLoop) FlowCount() int { return l.inner.sys.cfg.Params.N }

// Equilibrium implements stability.LoopModel.
func (l *DCQCNIngressLoop) Equilibrium() ([]float64, float64, error) {
	return l.inner.Equilibrium()
}

// Derivs implements stability.LoopModel: identical dynamics to DCQCNLoop
// except the marking probability reads the queue at the staler lag.
func (l *DCQCNIngressLoop) Derivs(z []float64, zd [][]float64, qd []float64, dzdt []float64) {
	pr := l.inner.sys.cfg.Params
	alpha, rt, rc := z[0], z[1], z[2]
	rcHat := zd[0][2] // rate self-feedback at τ*
	pHat := REDMarkExtended(qd[1], pr.Kmin, pr.Kmax, pr.Pmax)
	a, b, c, d, e := l.inner.sys.abcde(pHat, rcHat)
	dzdt[0] = pr.G / pr.TauPrime * ((-fixedpoint.Expm1Pow(pHat, pr.TauPrime*rcHat)) - alpha)
	dzdt[1] = -(rt-rc)/pr.Tau*a + pr.RAI*rcHat*(c+e)
	dzdt[2] = -rc*alpha/(2*pr.Tau)*a + (rt-rc)/2*rcHat*(b+d)
}

// PatchedTimelyLoop reduces the patched TIMELY model (Eq. 29) for the
// Figure 11 phase-margin analysis. State z = (R, g); two feedback lags:
// τ₁ = τ'(q*) and τ₂ = τ₁ + τ*, both frozen at the Eq. 31 fixed point.
type PatchedTimelyLoop struct {
	base  *timelyBase
	qStar float64
	tau1  float64
	tau2  float64
}

// NewPatchedTimelyLoop builds the reduction. It fails if the Eq. 31 fixed
// point falls outside the (C·T_low, C·T_high) gradient band, where the
// middle-branch linearisation would not apply.
func NewPatchedTimelyLoop(cfg TimelyConfig) (*PatchedTimelyLoop, error) {
	b, err := newTimelyBase(cfg, true)
	if err != nil {
		return nil, err
	}
	qStar := float64(cfg.N)*cfg.Delta*b.qref/(cfg.Beta*cfg.C) + b.qref
	if qStar <= cfg.C*cfg.TLow || qStar >= cfg.C*cfg.THigh {
		return nil, fmt.Errorf("fluid: patched TIMELY fixed point q*=%.0fB outside gradient band (%.0f, %.0f)",
			qStar, cfg.C*cfg.TLow, cfg.C*cfg.THigh)
	}
	l := &PatchedTimelyLoop{base: b, qStar: qStar}
	l.tau1 = b.feedbackDelay(qStar)
	l.tau2 = l.tau1 + b.tauStar(cfg.C/float64(cfg.N))
	return l, nil
}

// StateDim implements stability.LoopModel.
func (l *PatchedTimelyLoop) StateDim() int { return 2 }

// Delays implements stability.LoopModel.
func (l *PatchedTimelyLoop) Delays() []float64 { return []float64{l.tau1, l.tau2} }

// RateIndex implements stability.LoopModel: R is z[0].
func (l *PatchedTimelyLoop) RateIndex() int { return 0 }

// FlowCount implements stability.LoopModel.
func (l *PatchedTimelyLoop) FlowCount() int { return l.base.cfg.N }

// Equilibrium implements stability.LoopModel via Theorem 5 / Eq. 31.
func (l *PatchedTimelyLoop) Equilibrium() ([]float64, float64, error) {
	return []float64{l.base.cfg.C / float64(l.base.cfg.N), 0}, l.qStar, nil
}

// Derivs implements stability.LoopModel: the per-flow slice of Eq. 29 with
// qd[0] = q(t-τ₁) and qd[1] = q(t-τ₂).
func (l *PatchedTimelyLoop) Derivs(z []float64, zd [][]float64, qd []float64, dzdt []float64) {
	cfg := l.base.cfg
	r, g := z[0], z[1]
	ts := l.base.tauStar(r)
	dzdt[1] = cfg.EWMA / ts * (-g + (qd[0]-qd[1])/(cfg.C*cfg.DminRTT))
	w := PatchedWeight(g)
	dzdt[0] = (1-w)*cfg.Delta/ts - w*cfg.Beta*r/ts*(qd[0]-l.base.qref)/l.base.qref
}
