package fluid

import (
	"fmt"

	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/ode"
)

// DCQCNConfig configures the DCQCN fluid model of Figure 1. Params carries
// the Table 1 parameters (packets / packets-per-second units); the remaining
// fields control the simulated scenario.
type DCQCNConfig struct {
	Params fixedpoint.DCQCNParams
	// LineRate is the NIC line rate that clamps R_C and R_T. Zero means
	// Params.C (every sender has a bottleneck-speed NIC).
	LineRate float64
	// RMin is the protocol minimum rate, packets/s. Zero means 1/1000 of
	// the line rate.
	RMin float64
	// InitialRC holds per-flow initial rates. Nil means all flows start
	// at line rate, as the DCQCN spec requires.
	InitialRC []float64
	// JitterMax adds uniform [0, JitterMax) noise to the feedback delay
	// τ* each step (Figure 20). Zero disables jitter.
	JitterMax float64
	// Seed seeds the jitter generator.
	Seed int64
	// StrictRED clips the marking probability to 1 as soon as the queue
	// exceeds Kmax, exactly as Eq. 3 is written and as the packet-level
	// switch behaves. The default (false) extends the RED ramp past Kmax,
	// which is what the paper's own fixed point (Eq. 9, which admits
	// q* > Kmax) and its Figure 4 stability results assume.
	StrictRED bool
	// IngressMarking models the Figure 17 ablation analytically: the
	// mark encodes the queue at packet arrival and then waits out the
	// queueing delay before travelling back, so the marking feedback lag
	// becomes τ* + q/C instead of τ*. Egress marking (the default)
	// decouples the two (§5.2).
	IngressMarking bool
}

// DCQCNSystem is the DCQCN fluid model as an ode.System. State layout:
// y[0] = queue (packets); for flow i: y[1+3i] = α_i, y[2+3i] = R_T^i,
// y[3+3i] = R_C^i (packets/s).
type DCQCNSystem struct {
	cfg      DCQCNConfig
	lineRate float64
	rmin     float64
	jit      *jitterSource
}

// NewDCQCN validates cfg and builds the system.
func NewDCQCN(cfg DCQCNConfig) (*DCQCNSystem, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialRC != nil && len(cfg.InitialRC) != cfg.Params.N {
		return nil, fmt.Errorf("fluid: len(InitialRC)=%d, want N=%d", len(cfg.InitialRC), cfg.Params.N)
	}
	s := &DCQCNSystem{cfg: cfg}
	s.lineRate = cfg.LineRate
	if s.lineRate == 0 {
		s.lineRate = cfg.Params.C
	}
	s.rmin = cfg.RMin
	if s.rmin == 0 {
		s.rmin = s.lineRate / 1000
	}
	s.jit = newJitterSource(cfg.JitterMax, cfg.Seed)
	return s, nil
}

// Dim implements ode.System.
func (s *DCQCNSystem) Dim() int { return 1 + 3*s.cfg.Params.N }

// Initial returns the initial state vector: empty queue, α = 1 (the DCQCN
// initial value), R_T = R_C = line rate unless InitialRC overrides.
func (s *DCQCNSystem) Initial() []float64 {
	y := make([]float64, s.Dim())
	for i := 0; i < s.cfg.Params.N; i++ {
		r := s.lineRate
		if s.cfg.InitialRC != nil {
			r = s.cfg.InitialRC[i]
		}
		y[1+3*i] = 1 // α starts at 1 per the DCQCN spec
		y[2+3*i] = r
		y[3+3*i] = r
	}
	return y
}

// QIndex returns the state index of the queue.
func (s *DCQCNSystem) QIndex() int { return 0 }

// AlphaIndex returns the state index of flow i's α.
func (s *DCQCNSystem) AlphaIndex(i int) int { return 1 + 3*i }

// RTIndex returns the state index of flow i's target rate.
func (s *DCQCNSystem) RTIndex(i int) int { return 2 + 3*i }

// RCIndex returns the state index of flow i's current rate.
func (s *DCQCNSystem) RCIndex(i int) int { return 3 + 3*i }

// abcde evaluates the event-rate terms of Eq. 12 at marking probability p
// and (delayed) rate rc, taking the p→0 limits where the closed forms are
// 0/0: b,c → 1/B and d,e → 1/(T·rc).
func (s *DCQCNSystem) abcde(p, rc float64) (a, b, c, d, e float64) {
	pr := s.cfg.Params
	if rc < s.rmin {
		rc = s.rmin
	}
	if p < 1e-12 {
		a = pr.Tau * rc * p // → 0 with the right slope
		b = 1 / pr.B
		c = 1 / pr.B
		d = 1 / (pr.T * rc)
		e = d
		return
	}
	a = -fixedpoint.Expm1Pow(p, pr.Tau*rc)
	denB := fixedpoint.Expm1Pow(p, -pr.B)
	b = p / denB
	c = fixedpoint.Pow1mp(p, pr.F*pr.B) * p / denB
	denT := fixedpoint.Expm1Pow(p, -pr.T*rc)
	d = p / denT
	e = fixedpoint.Pow1mp(p, pr.F*pr.T*rc) * p / denT
	return
}

// Derivs implements ode.System with the Figure 1 equations.
func (s *DCQCNSystem) Derivs(t float64, y []float64, past ode.History, dydt []float64) {
	pr := s.cfg.Params
	delay := pr.TauStar + s.jit.value()
	tq := t - delay

	// Delayed marking probability: ECN is marked on egress, so the mark
	// reflects the queue at departure and reaches the sender one
	// propagation delay later (§5.2). Eq. 3 applied to q(t-τ*). With
	// ingress marking the mark rides the packet through the queue, so a
	// mark arriving now encodes the queue at its own enqueue instant s,
	// which satisfies the FIFO relation s + q(s)/C = t - τ*. That
	// equation is monotone in s (its left side grows at ΣR/C ≥ 0), so
	// the total lag L = t - s is found by bisection on
	// h(L) = L - τ* - q(t-L)/C.
	qDelayed := past.Value(tq, 0)
	if s.cfg.IngressMarking {
		maxLag := s.MaxDelay()
		lo, hi := delay, maxLag
		if hi-delay-past.Value(t-hi, 0)/pr.C < 0 {
			// Even the oldest history is too fresh (extreme transient):
			// saturate at the stalest available observation.
			lo = hi
		}
		for i := 0; i < 50 && hi-lo > 1e-9; i++ {
			mid := lo + (hi-lo)/2
			if mid-delay-past.Value(t-mid, 0)/pr.C < 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		qDelayed = past.Value(t-(lo+(hi-lo)/2), 0)
	}
	var pHat float64
	if s.cfg.StrictRED {
		pHat = REDMark(qDelayed, pr.Kmin, pr.Kmax, pr.Pmax)
	} else {
		pHat = REDMarkExtended(qDelayed, pr.Kmin, pr.Kmax, pr.Pmax)
	}

	sum := 0.0
	for i := 0; i < pr.N; i++ {
		sum += y[s.RCIndex(i)]
	}
	dq := sum - pr.C
	if y[0] <= 0 && dq < 0 {
		dq = 0
	}
	dydt[0] = dq

	for i := 0; i < pr.N; i++ {
		alpha := y[s.AlphaIndex(i)]
		rt := y[s.RTIndex(i)]
		rc := y[s.RCIndex(i)]
		rcHat := past.Value(tq, s.RCIndex(i))
		a, b, c, d, e := s.abcde(pHat, rcHat)

		// Eq. 5: α tracks the marked fraction over the τ' window.
		dydt[s.AlphaIndex(i)] = pr.G / pr.TauPrime * ((-fixedpoint.Expm1Pow(pHat, pr.TauPrime*rcHat)) - alpha)
		// Eq. 6: target rate resets on cuts, rises with the byte counter
		// and timer once past the F fast-recovery stages.
		dydt[s.RTIndex(i)] = -(rt-rc)/pr.Tau*a + pr.RAI*rcHat*(c+e)
		// Eq. 7: multiplicative decrease on CNPs, fast recovery toward
		// R_T on byte-counter and timer events.
		dydt[s.RCIndex(i)] = -rc*alpha/(2*pr.Tau)*a + (rt-rc)/2*rcHat*(b+d)
	}
}

// PostStep implements ode.PostStepper: clamp state to the physical domain
// and refresh the per-step feedback jitter.
func (s *DCQCNSystem) PostStep(_ float64, y []float64) {
	if y[0] < 0 {
		y[0] = 0
	}
	for i := 0; i < s.cfg.Params.N; i++ {
		y[s.AlphaIndex(i)] = clamp(y[s.AlphaIndex(i)], 0, 1)
		y[s.RTIndex(i)] = clamp(y[s.RTIndex(i)], s.rmin, s.lineRate)
		y[s.RCIndex(i)] = clamp(y[s.RCIndex(i)], s.rmin, s.lineRate)
	}
	s.jit.resample()
}

// MaxDelay reports the largest history lag the model requests, for sizing
// the solver's history buffer.
func (s *DCQCNSystem) MaxDelay() float64 {
	d := s.cfg.Params.TauStar + s.cfg.JitterMax
	if s.cfg.IngressMarking {
		// Ingress marks lag by the queueing delay of their own packet.
		// The line-rate start transient peaks near twice the queue at
		// which the extended RED ramp saturates (p = 1), so budget 2.5x
		// that queueing delay.
		pr := s.cfg.Params
		qCap := pr.Kmin + (pr.Kmax-pr.Kmin)/pr.Pmax
		d += 2.5 * qCap / pr.C
	}
	return d
}

// FixedPoint returns the unique Theorem 1 operating point for this
// configuration.
func (s *DCQCNSystem) FixedPoint() (fixedpoint.DCQCNFixedPoint, error) {
	return fixedpoint.SolveDCQCN(s.cfg.Params)
}
