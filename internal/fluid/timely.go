package fluid

import (
	"errors"
	"fmt"

	"ecndelay/internal/ode"
)

// TimelyConfig configures the TIMELY fluid model of Figure 7 (and, via
// NewPatchedTimely, the patched model of Eq. 29). Units: bytes and
// bytes/second, matching the paper's KB segments and Gb/s link rates.
//
// The paper's recommended values (footnote 4): C = 10 Gb/s, β = 0.8,
// EWMA α = 0.875, T_low = 50 µs, T_high = 500 µs, D_minRTT = 20 µs,
// δ = 10 Mb/s. Patched TIMELY changes β to 0.008 and Seg to 16 KB.
type TimelyConfig struct {
	N            int     // flows at the bottleneck
	C            float64 // bottleneck bandwidth, bytes/s
	EWMA         float64 // α in Algorithm 1 line 3
	Beta         float64 // multiplicative decrease factor β
	Delta        float64 // additive increase step δ, bytes/s
	TLow         float64 // low RTT threshold, s
	THigh        float64 // high RTT threshold, s
	DminRTT      float64 // normalisation / minimum update interval, s
	DProp        float64 // propagation delay, s
	MTU          float64 // bytes
	Seg          float64 // burst size per completion event, bytes
	LineRate     float64 // per-NIC clamp; zero means C
	InitialRates []float64
	// StartTimes staggers flow activation (Figure 9b). Nil means all
	// flows start at t=0. A flow contributes no traffic before its start.
	StartTimes []float64
	// StrictZeroIncrease selects the original Algorithm 1 line 9
	// (gradient <= 0 → additive increase), the convention under which
	// Theorem 3 shows the model has no fixed point. False selects the
	// Eq. 28 variant (gradient >= 0 → multiplicative decrease), which has
	// infinitely many fixed points (Theorem 4). The trajectories are
	// indistinguishable in practice; the flag exists so both theorems can
	// be exercised.
	StrictZeroIncrease bool
	// JitterMax adds uniform [0, JitterMax) noise to the feedback delay
	// τ' each step (Figure 20).
	JitterMax float64
	Seed      int64
	// RTTRef is the patched-TIMELY reference RTT (Algorithm 2 line 11)
	// expressed as the reference queue q' in bytes. Zero means C·T_low,
	// the paper's choice.
	QRef float64
}

// Validate reports configuration errors.
func (c TimelyConfig) Validate() error {
	switch {
	case c.N <= 0:
		return errors.New("timely config: N must be positive")
	case c.C <= 0, c.Delta <= 0:
		return errors.New("timely config: C and Delta must be positive")
	case c.EWMA <= 0 || c.EWMA > 1:
		return errors.New("timely config: EWMA must be in (0,1]")
	case c.Beta <= 0 || c.Beta >= 1:
		return errors.New("timely config: Beta must be in (0,1)")
	case c.TLow < 0 || c.THigh <= c.TLow:
		return errors.New("timely config: need 0 <= TLow < THigh")
	case c.DminRTT <= 0:
		return errors.New("timely config: DminRTT must be positive")
	case c.MTU <= 0 || c.Seg <= 0:
		return errors.New("timely config: MTU and Seg must be positive")
	case c.InitialRates != nil && len(c.InitialRates) != c.N:
		return fmt.Errorf("timely config: len(InitialRates)=%d, want N=%d", len(c.InitialRates), c.N)
	case c.StartTimes != nil && len(c.StartTimes) != c.N:
		return fmt.Errorf("timely config: len(StartTimes)=%d, want N=%d", len(c.StartTimes), c.N)
	}
	return nil
}

// DefaultTimelyConfig returns the footnote-4 parameters for n flows on a
// 10 Gb/s bottleneck with per-packet (MTU-sized segment) pacing.
func DefaultTimelyConfig(n int) TimelyConfig {
	c := 10e9 / 8.0 // bytes/s
	return TimelyConfig{
		N: n, C: c,
		EWMA:    0.875,
		Beta:    0.8,
		Delta:   10e6 / 8.0,
		TLow:    50e-6,
		THigh:   500e-6,
		DminRTT: 20e-6,
		DProp:   4e-6,
		MTU:     1000,
		Seg:     16000,
	}
}

// DefaultPatchedTimelyConfig returns the §4.3 parameters: identical to
// TIMELY except β = 0.008 and Seg = 16 KB.
func DefaultPatchedTimelyConfig(n int) TimelyConfig {
	c := DefaultTimelyConfig(n)
	c.Beta = 0.008
	c.Seg = 16000
	return c
}

// timelyBase holds the machinery shared by the original and patched models.
// State layout: y[0] = queue (bytes); flow i: y[1+2i] = R_i (bytes/s),
// y[2+2i] = g_i (dimensionless RTT gradient).
type timelyBase struct {
	cfg      TimelyConfig
	lineRate float64
	rmin     float64
	jit      *jitterSource
	started  []bool
	patched  bool
	qref     float64
}

func newTimelyBase(cfg TimelyConfig, patched bool) (*timelyBase, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &timelyBase{cfg: cfg, patched: patched}
	b.lineRate = cfg.LineRate
	if b.lineRate == 0 {
		b.lineRate = cfg.C
	}
	b.rmin = b.lineRate / 1e4
	b.jit = newJitterSource(cfg.JitterMax, cfg.Seed)
	b.started = make([]bool, cfg.N)
	b.qref = cfg.QRef
	if b.qref == 0 {
		b.qref = cfg.C * cfg.TLow
	}
	return b, nil
}

// Dim implements ode.System.
func (b *timelyBase) Dim() int { return 1 + 2*b.cfg.N }

// QIndex returns the state index of the queue.
func (b *timelyBase) QIndex() int { return 0 }

// RateIndex returns the state index of flow i's rate.
func (b *timelyBase) RateIndex(i int) int { return 1 + 2*i }

// GradIndex returns the state index of flow i's RTT gradient.
func (b *timelyBase) GradIndex(i int) int { return 2 + 2*i }

// Initial returns the initial state. Flows default to the C/N "new flow"
// start rate of [21] unless InitialRates overrides; flows with a future
// start time hold rate 0 until activation.
func (b *timelyBase) Initial() []float64 {
	y := make([]float64, b.Dim())
	for i := 0; i < b.cfg.N; i++ {
		r := b.cfg.C / float64(b.cfg.N)
		if b.cfg.InitialRates != nil {
			r = b.cfg.InitialRates[i]
		}
		if b.cfg.StartTimes != nil && b.cfg.StartTimes[i] > 0 {
			r = 0
		}
		y[b.RateIndex(i)] = r
		b.started[i] = !(b.cfg.StartTimes != nil && b.cfg.StartTimes[i] > 0)
	}
	return y
}

func (b *timelyBase) active(i int, t float64) bool {
	return b.cfg.StartTimes == nil || t >= b.cfg.StartTimes[i]
}

// tauStar is the per-flow rate-update interval of Eq. 23.
func (b *timelyBase) tauStar(r float64) float64 {
	if r < b.rmin {
		r = b.rmin
	}
	ts := b.cfg.Seg / r
	if ts < b.cfg.DminRTT {
		ts = b.cfg.DminRTT
	}
	return ts
}

// feedbackDelay is τ' of Eq. 24 evaluated at the current queue.
func (b *timelyBase) feedbackDelay(q float64) float64 {
	if q < 0 {
		q = 0
	}
	return q/b.cfg.C + b.cfg.MTU/b.cfg.C + b.cfg.DProp
}

// sampleQueues returns the two delayed queue observations the TIMELY
// gradient needs: q(t-τ') and q(t-τ'-τ*). Feedback jitter both delays each
// sample and — unlike for ECN — adds directly to the measured RTT, so each
// observation is inflated by jitter·C bytes of apparent queue (§5.2: "for
// delay based schemes you have delayed AND noisy feedback").
func (b *timelyBase) sampleQueues(t, q, ts float64, past ode.History) (qd, qd2 float64) {
	tauP := b.feedbackDelay(q)
	j1, j2 := b.jit.pair()
	qd = past.Value(t-tauP-j1, 0) + j1*b.cfg.C
	qd2 = past.Value(t-tauP-j2-ts, 0) + j2*b.cfg.C
	return
}

// Derivs implements the shared queue and gradient dynamics, dispatching the
// rate law to original (Eq. 21) or patched (Eq. 29) form.
func (b *timelyBase) Derivs(t float64, y []float64, past ode.History, dydt []float64) {
	cfg := b.cfg
	sum := 0.0
	for i := 0; i < cfg.N; i++ {
		if b.active(i, t) {
			sum += y[b.RateIndex(i)]
		}
	}
	dq := sum - cfg.C
	if y[0] <= 0 && dq < 0 {
		dq = 0
	}
	dydt[0] = dq

	for i := 0; i < cfg.N; i++ {
		ri := b.RateIndex(i)
		gi := b.GradIndex(i)
		if !b.active(i, t) {
			dydt[ri] = 0
			dydt[gi] = 0
			continue
		}
		r := y[ri]
		g := y[gi]
		ts := b.tauStar(r)

		// Eq. 22: EWMA of the normalised RTT difference. The RTT diff
		// between consecutive completion events (τ* apart) is the queue
		// change over that window divided by C, normalised by D_minRTT.
		qd, qd2 := b.sampleQueues(t, y[0], ts, past)
		dydt[gi] = cfg.EWMA / ts * (-g + (qd-qd2)/(cfg.C*cfg.DminRTT))

		switch {
		case qd < cfg.C*cfg.TLow:
			dydt[ri] = cfg.Delta / ts
		case qd > cfg.C*cfg.THigh:
			dydt[ri] = -cfg.Beta / ts * (1 - cfg.C*cfg.THigh/qd) * r
		default:
			if b.patched {
				// Eq. 29 middle branch with the Eq. 30 weight.
				w := PatchedWeight(g)
				dydt[ri] = (1-w)*cfg.Delta/ts - w*cfg.Beta*r/ts*(qd-b.qref)/b.qref
			} else {
				increase := g < 0 || (b.cfg.StrictZeroIncrease && g == 0)
				if increase {
					dydt[ri] = cfg.Delta / ts
				} else {
					dydt[ri] = -g * cfg.Beta / ts * r
				}
			}
		}
	}
}

// PostStep implements ode.PostStepper.
func (b *timelyBase) PostStep(t float64, y []float64) {
	if y[0] < 0 {
		y[0] = 0
	}
	for i := 0; i < b.cfg.N; i++ {
		if !b.active(i, t) {
			y[b.RateIndex(i)] = 0
			y[b.GradIndex(i)] = 0
			continue
		}
		if !b.started[i] {
			// Activation: late flows start at C/(N+1) per [21], or at
			// the configured initial rate.
			b.started[i] = true
			r := b.cfg.C / float64(b.cfg.N+1)
			if b.cfg.InitialRates != nil && b.cfg.InitialRates[i] > 0 {
				r = b.cfg.InitialRates[i]
			}
			y[b.RateIndex(i)] = r
		}
		y[b.RateIndex(i)] = clamp(y[b.RateIndex(i)], b.rmin, b.lineRate)
		y[b.GradIndex(i)] = clamp(y[b.GradIndex(i)], -100, 100)
	}
	b.jit.resample()
}

// MaxDelay bounds the history lag: the worst-case τ' for a queue of
// MaxQueue bytes plus one update interval at minimum rate.
func (b *timelyBase) MaxDelay() float64 {
	maxQ := 16e6 // 16 MB shared buffer ceiling, larger than any run here
	return b.feedbackDelay(maxQ) + b.cfg.Seg/b.rmin + b.cfg.JitterMax
}

// TimelySystem is the original TIMELY fluid model (Figure 7).
type TimelySystem struct{ timelyBase }

// NewTimely validates cfg and builds the original TIMELY model.
func NewTimely(cfg TimelyConfig) (*TimelySystem, error) {
	b, err := newTimelyBase(cfg, false)
	if err != nil {
		return nil, err
	}
	return &TimelySystem{*b}, nil
}

// PatchedTimelySystem is the patched TIMELY model (Eq. 29-30).
type PatchedTimelySystem struct{ timelyBase }

// NewPatchedTimely validates cfg and builds the patched model.
func NewPatchedTimely(cfg TimelyConfig) (*PatchedTimelySystem, error) {
	b, err := newTimelyBase(cfg, true)
	if err != nil {
		return nil, err
	}
	return &PatchedTimelySystem{*b}, nil
}

// FixedPointQueue returns the Eq. 31 steady-state queue for the patched
// model, in bytes.
func (p *PatchedTimelySystem) FixedPointQueue() float64 {
	n := float64(p.cfg.N)
	return n*p.cfg.Delta*p.qref/(p.cfg.Beta*p.cfg.C) + p.qref
}

// PatchedWeight is the Eq. 30 rate-decrease weight: a linear ramp from 0 to
// 1 over gradient in [-1/4, 1/4].
func PatchedWeight(g float64) float64 {
	switch {
	case g <= -0.25:
		return 0
	case g >= 0.25:
		return 1
	default:
		return 2*g + 0.5
	}
}
