package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"ecndelay/internal/fixedpoint"
)

// late computes mean/stddev/min/max of state component idx over t >= tFrom.
func late(samples []Sample, idx int, tFrom float64) (mean, sd, min, max float64) {
	n := 0
	min, max = math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		if s.T < tFrom {
			continue
		}
		v := s.Y[idx]
		mean += v
		n++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean /= float64(n)
	for _, s := range samples {
		if s.T < tFrom {
			continue
		}
		d := s.Y[idx] - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(n))
	return
}

func TestREDMark(t *testing.T) {
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 0}, {5, 0}, {102.5, 0.005}, {200, 0.01}, {201, 1}, {1e6, 1},
	}
	for _, c := range cases {
		if got := REDMark(c.q, 5, 200, 0.01); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("REDMark(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := REDMarkExtended(1155, 5, 200, 0.01); math.Abs(got-0.05897435897435897) > 1e-9 {
		t.Errorf("REDMarkExtended(1155) = %v, want ramp extension ~0.059", got)
	}
	if got := REDMarkExtended(1e9, 5, 200, 0.01); got != 1 {
		t.Errorf("REDMarkExtended cap = %v, want 1", got)
	}
}

// Property: both marking profiles are monotone in q and agree inside the ramp.
func TestPropertyREDMonotoneAndConsistent(t *testing.T) {
	f := func(a, b uint16) bool {
		q1 := float64(a) / 65535 * 400
		q2 := float64(b) / 65535 * 400
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if REDMark(q1, 5, 200, 0.01) > REDMark(q2, 5, 200, 0.01) {
			return false
		}
		if REDMarkExtended(q1, 5, 200, 0.01) > REDMarkExtended(q2, 5, 200, 0.01) {
			return false
		}
		if q1 <= 200 && REDMark(q1, 5, 200, 0.01) != REDMarkExtended(q1, 5, 200, 0.01) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPatchedWeight(t *testing.T) {
	cases := []struct{ g, want float64 }{
		{-1, 0}, {-0.25, 0}, {0, 0.5}, {0.25, 1}, {1, 1}, {-0.125, 0.25}, {0.125, 0.75},
	}
	for _, c := range cases {
		if got := PatchedWeight(c.g); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PatchedWeight(%v) = %v, want %v", c.g, got, c.want)
		}
	}
}

// Property: the Eq. 30 weight is monotone, bounded in [0,1], and continuous
// (Lipschitz with constant 2).
func TestPropertyPatchedWeight(t *testing.T) {
	f := func(a, b int16) bool {
		g1 := float64(a) / 1000
		g2 := float64(b) / 1000
		w1, w2 := PatchedWeight(g1), PatchedWeight(g2)
		if w1 < 0 || w1 > 1 {
			return false
		}
		if g1 <= g2 && w1 > w2 {
			return false
		}
		return math.Abs(w1-w2) <= 2*math.Abs(g1-g2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- DCQCN fluid model ---

// Figure 2 territory: the model must settle at the Theorem 1 fixed point.
func TestDCQCNConvergesToFixedPoint(t *testing.T) {
	for _, n := range []int{2, 10} {
		p := DefaultDCQCNParams(n)
		sys, err := NewDCQCN(DCQCNConfig{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.2, 1e-4)
		fp, err := sys.FixedPoint()
		if err != nil {
			t.Fatal(err)
		}
		qm, _, _, _ := late(sm, sys.QIndex(), 0.15)
		if math.Abs(qm-fp.Q)/fp.Q > 0.05 {
			t.Errorf("N=%d: queue settled at %v, fixed point %v", n, qm, fp.Q)
		}
		for i := 0; i < n; i++ {
			rm, _, _, _ := late(sm, sys.RCIndex(i), 0.15)
			if math.Abs(rm-fp.RC)/fp.RC > 0.05 {
				t.Errorf("N=%d flow %d: rate %v, want fair share %v", n, i, rm, fp.RC)
			}
		}
	}
}

// Flows starting at very different rates still converge to the same rate
// (Theorems 1-2: unique fixed point, exponential convergence).
func TestDCQCNFairnessFromUnequalStarts(t *testing.T) {
	p := DefaultDCQCNParams(2)
	sys, err := NewDCQCN(DCQCNConfig{Params: p, InitialRC: []float64{5e6, 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 0.3, 1e-4)
	r0, _, _, _ := late(sm, sys.RCIndex(0), 0.25)
	r1, _, _, _ := late(sm, sys.RCIndex(1), 0.25)
	if math.Abs(r0-r1)/(r0+r1) > 0.02 {
		t.Errorf("rates did not converge: R0=%v R1=%v", r0, r1)
	}
}

// Figure 4's non-monotonic stability: at τ* = 85 µs the model is stable for
// 2 and 64 flows but oscillates for 10; at τ* = 4 µs all are stable.
// Short mode keeps only the N=10 contrast (stable at low delay, unstable
// at high), dropping the N sweep that makes the pattern non-monotonic.
func TestDCQCNNonMonotonicStability(t *testing.T) {
	osc := func(n int, delay float64) float64 {
		p := DefaultDCQCNParams(n)
		p.TauStar = delay
		sys, err := NewDCQCN(DCQCNConfig{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.2, 1e-4)
		qm, qsd, _, _ := late(sm, sys.QIndex(), 0.1)
		return qsd / qm
	}
	if v := osc(10, 4e-6); v > 0.05 {
		t.Errorf("N=10 τ*=4µs: relative oscillation %v, want stable (<5%%)", v)
	}
	o10 := osc(10, 85e-6)
	if o10 < 0.3 {
		t.Errorf("N=10 τ*=85µs: oscillation %v, want unstable (>30%%)", o10)
	}
	if testing.Short() {
		return
	}
	for _, n := range []int{2, 64} {
		if v := osc(n, 4e-6); v > 0.05 {
			t.Errorf("N=%d τ*=4µs: relative oscillation %v, want stable (<5%%)", n, v)
		}
	}
	o2 := osc(2, 85e-6)
	o64 := osc(64, 85e-6)
	if o2 > 0.1 || o64 > 0.1 {
		t.Errorf("N=2/N=64 τ*=85µs: oscillation %v / %v, want stable (<10%%) — non-monotonicity lost", o2, o64)
	}
}

// Figure 3(b): smaller R_AI stabilises the unstable 10-flow/85µs case.
func TestDCQCNSmallerRAIStabilises(t *testing.T) {
	run := func(rai float64) float64 {
		p := DefaultDCQCNParams(10)
		p.TauStar = 85e-6
		p.RAI = rai
		sys, err := NewDCQCN(DCQCNConfig{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.25, 1e-4)
		qm, qsd, _, _ := late(sm, sys.QIndex(), 0.15)
		return qsd / qm
	}
	unstable := run(40e6 / 8 / 1000) // default 40 Mb/s
	stable := run(5e6 / 8 / 1000)    // 5 Mb/s
	if unstable < 0.3 {
		t.Errorf("default R_AI: oscillation %v, expected instability", unstable)
	}
	if stable > 0.1 {
		t.Errorf("small R_AI: oscillation %v, expected stability", stable)
	}
}

// Figure 3(c): a larger K_max (gentler marking slope) also stabilises it.
func TestDCQCNLargerKmaxStabilises(t *testing.T) {
	run := func(kmax float64) float64 {
		p := DefaultDCQCNParams(10)
		p.TauStar = 85e-6
		p.Kmax = kmax
		sys, err := NewDCQCN(DCQCNConfig{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.25, 1e-4)
		qm, qsd, _, _ := late(sm, sys.QIndex(), 0.15)
		return qsd / qm
	}
	unstable := run(200)
	stable := run(1600)
	if unstable < 0.3 {
		t.Errorf("Kmax=200: oscillation %v, expected instability", unstable)
	}
	if stable > 0.1 {
		t.Errorf("Kmax=1600: oscillation %v, expected stability", stable)
	}
}

// Figure 20, ECN side: 100 µs of uniform feedback jitter does not
// destabilise DCQCN.
func TestDCQCNJitterResilient(t *testing.T) {
	p := DefaultDCQCNParams(2)
	sys, err := NewDCQCN(DCQCNConfig{Params: p, JitterMax: 100e-6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 0.2, 1e-4)
	qm, qsd, _, _ := late(sm, sys.QIndex(), 0.1)
	if qsd/qm > 0.1 {
		t.Errorf("DCQCN with jitter: queue oscillation %v, want <10%%", qsd/qm)
	}
	r0, rsd, _, _ := late(sm, sys.RCIndex(0), 0.1)
	if rsd/r0 > 0.05 {
		t.Errorf("DCQCN with jitter: rate oscillation %v, want <5%%", rsd/r0)
	}
}

func TestDCQCNConfigValidation(t *testing.T) {
	p := DefaultDCQCNParams(2)
	if _, err := NewDCQCN(DCQCNConfig{Params: p, InitialRC: []float64{1}}); err == nil {
		t.Error("expected error for wrong InitialRC length")
	}
	p.N = 0
	if _, err := NewDCQCN(DCQCNConfig{Params: p}); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestDCQCNIndices(t *testing.T) {
	p := DefaultDCQCNParams(3)
	sys, err := NewDCQCN(DCQCNConfig{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dim() != 10 {
		t.Errorf("Dim = %d, want 10", sys.Dim())
	}
	seen := map[int]bool{sys.QIndex(): true}
	for i := 0; i < 3; i++ {
		for _, idx := range []int{sys.AlphaIndex(i), sys.RTIndex(i), sys.RCIndex(i)} {
			if idx < 0 || idx >= sys.Dim() || seen[idx] {
				t.Errorf("index %d invalid or duplicated", idx)
			}
			seen[idx] = true
		}
	}
	y0 := sys.Initial()
	if y0[sys.QIndex()] != 0 {
		t.Error("initial queue not zero")
	}
	for i := 0; i < 3; i++ {
		if y0[sys.AlphaIndex(i)] != 1 {
			t.Errorf("initial α[%d] = %v, want 1", i, y0[sys.AlphaIndex(i)])
		}
		if y0[sys.RCIndex(i)] != p.C {
			t.Errorf("initial R_C[%d] = %v, want line rate %v", i, y0[sys.RCIndex(i)], p.C)
		}
	}
}

// --- TIMELY fluid model ---

// Theorem 4 made visible: with different initial rates, TIMELY settles into
// an operating regime that preserves unfairness (Figure 9c), while the sum
// of rates still tracks capacity.
func TestTimelyArbitraryUnfairness(t *testing.T) {
	cfg := DefaultTimelyConfig(2)
	cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
	sys, err := NewTimely(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 1.0, 1e-3)
	r0, _, _, _ := late(sm, sys.RateIndex(0), 0.8)
	r1, _, _, _ := late(sm, sys.RateIndex(1), 0.8)
	if r0/r1 < 1.5 {
		t.Errorf("rate ratio %v, want persistent unfairness (>1.5)", r0/r1)
	}
	if util := (r0 + r1) / cfg.C; util < 0.85 {
		t.Errorf("utilisation %v, want >0.85", util)
	}
}

// Equal starting conditions stay fair: the unfairness is initial-condition
// dependence, not bias (Figure 9a vs 9c).
func TestTimelySymmetricStaysFair(t *testing.T) {
	cfg := DefaultTimelyConfig(2)
	sys, err := NewTimely(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 1.0, 1e-3)
	r0, _, _, _ := late(sm, sys.RateIndex(0), 0.8)
	r1, _, _, _ := late(sm, sys.RateIndex(1), 0.8)
	if math.Abs(r0-r1)/(r0+r1) > 0.01 {
		t.Errorf("symmetric flows diverged: R0=%v R1=%v", r0, r1)
	}
}

// Different start conditions land in different operating regimes (Figure 9):
// the end state is a function of history — the signature of infinitely many
// fixed points.
func TestTimelyEndStateDependsOnStart(t *testing.T) {
	endRatio := func(r0, r1 float64, stagger float64) float64 {
		cfg := DefaultTimelyConfig(2)
		cfg.InitialRates = []float64{r0, r1}
		if stagger > 0 {
			cfg.StartTimes = []float64{0, stagger}
		}
		sys, err := NewTimely(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 1.0, 1e-3)
		a, _, _, _ := late(sm, sys.RateIndex(0), 0.8)
		b, _, _, _ := late(sm, sys.RateIndex(1), 0.8)
		return a / b
	}
	even := endRatio(5e9/8, 5e9/8, 0)
	uneven := endRatio(7e9/8, 3e9/8, 0)
	staggered := endRatio(5e9/8, 5e9/8, 10e-3)
	if math.Abs(even-uneven) < 0.3 && math.Abs(even-staggered) < 0.3 {
		t.Errorf("end states identical across start conditions (%v, %v, %v); expected history dependence",
			even, uneven, staggered)
	}
}

// --- Patched TIMELY ---

// Theorem 5: patched TIMELY converges to the unique fair fixed point with
// the Eq. 31 queue, from unequal starts (Figure 12a).
func TestPatchedTimelyConvergesFair(t *testing.T) {
	cfg := DefaultPatchedTimelyConfig(2)
	cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
	sys, err := NewPatchedTimely(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 1.0, 1e-3)
	r0, s0, _, _ := late(sm, sys.RateIndex(0), 0.8)
	r1, _, _, _ := late(sm, sys.RateIndex(1), 0.8)
	if math.Abs(r0-r1)/(r0+r1) > 0.02 {
		t.Errorf("patched TIMELY unfair: R0=%v R1=%v", r0, r1)
	}
	if s0/r0 > 0.02 {
		t.Errorf("patched TIMELY oscillating: rate sd/mean = %v", s0/r0)
	}
	qm, _, _, _ := late(sm, sys.QIndex(), 0.8)
	if want := sys.FixedPointQueue(); math.Abs(qm-want)/want > 0.05 {
		t.Errorf("queue %v, want Eq. 31 fixed point %v", qm, want)
	}
}

// Eq. 31: the patched fixed-point queue grows with N (verified dynamically).
func TestPatchedTimelyQueueGrowsWithN(t *testing.T) {
	queueAt := func(n int) float64 {
		cfg := DefaultPatchedTimelyConfig(n)
		sys, err := NewPatchedTimely(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.6, 1e-3)
		qm, _, _, _ := late(sm, sys.QIndex(), 0.5)
		return qm
	}
	q2, q10 := queueAt(2), queueAt(10)
	if q10 <= q2 {
		t.Errorf("queue should grow with N: q(2)=%v q(10)=%v", q2, q10)
	}
	// And both match Eq. 31 within 10%.
	for _, c := range []struct {
		n int
		q float64
	}{{2, q2}, {10, q10}} {
		sys, _ := NewPatchedTimely(DefaultPatchedTimelyConfig(c.n))
		want := sys.FixedPointQueue()
		if math.Abs(c.q-want)/want > 0.1 {
			t.Errorf("N=%d: queue %v, Eq. 31 predicts %v", c.n, c.q, want)
		}
	}
}

// Figure 11/12c: patched TIMELY loses stability at large N (the growing
// queue lengthens the feedback delay). Short mode halves the horizon;
// the N=64 oscillation is already visible well before 0.5 s.
func TestPatchedTimelyUnstableAtLargeN(t *testing.T) {
	horizon, window := 1.0, 0.8
	if testing.Short() {
		horizon, window = 0.5, 0.4
	}
	osc := func(n int) float64 {
		cfg := DefaultPatchedTimelyConfig(n)
		sys, err := NewPatchedTimely(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, horizon, 1e-3)
		qm, qsd, _, _ := late(sm, sys.QIndex(), window)
		return qsd / qm
	}
	small := osc(10)
	big := osc(64)
	if small > 0.02 {
		t.Errorf("N=10: oscillation %v, want stable", small)
	}
	if big < 0.05 {
		t.Errorf("N=64: oscillation %v, want visible instability", big)
	}
}

// Figure 20, delay side: the same jitter that DCQCN shrugs off destabilises
// patched TIMELY, because jitter lands inside the RTT signal itself.
func TestPatchedTimelyJitterUnstable(t *testing.T) {
	run := func(jit float64) (qcv, rcv float64) {
		cfg := DefaultPatchedTimelyConfig(2)
		cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
		cfg.JitterMax = jit
		cfg.Seed = 7
		sys, err := NewPatchedTimely(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.8, 1e-3)
		qm, qsd, _, _ := late(sm, sys.QIndex(), 0.6)
		rm, rsd, _, _ := late(sm, sys.RateIndex(0), 0.6)
		return qsd / math.Max(qm, 1), rsd / rm
	}
	qCalm, rCalm := run(0)
	qJit, rJit := run(100e-6)
	if qCalm > 0.01 || rCalm > 0.01 {
		t.Errorf("no jitter: queue/rate oscillation %v/%v, want quiescent", qCalm, rCalm)
	}
	if qJit < 10*qCalm+0.2 {
		t.Errorf("jitter: queue oscillation %v (vs calm %v), want large increase", qJit, qCalm)
	}
	if rJit < 10*rCalm {
		t.Errorf("jitter: rate oscillation %v (vs calm %v), want large increase", rJit, rCalm)
	}
}

func TestTimelyConfigValidation(t *testing.T) {
	base := DefaultTimelyConfig(2)
	muts := []func(*TimelyConfig){
		func(c *TimelyConfig) { c.N = 0 },
		func(c *TimelyConfig) { c.C = 0 },
		func(c *TimelyConfig) { c.EWMA = 0 },
		func(c *TimelyConfig) { c.Beta = 1 },
		func(c *TimelyConfig) { c.Delta = 0 },
		func(c *TimelyConfig) { c.THigh = c.TLow },
		func(c *TimelyConfig) { c.DminRTT = 0 },
		func(c *TimelyConfig) { c.MTU = 0 },
		func(c *TimelyConfig) { c.Seg = 0 },
		func(c *TimelyConfig) { c.InitialRates = []float64{1} },
		func(c *TimelyConfig) { c.StartTimes = []float64{1, 2, 3} },
	}
	for i, mut := range muts {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

// --- PI controllers ---

// Figure 18: with PI marking at the switch, the DCQCN queue pins to the
// reference for any number of flows, and flows stay fair. Short mode
// drops N=64, which dominates the runtime; queue pinning and fairness
// are already exercised at N=2 and N=10.
func TestDCQCNPIQueueIndependentOfN(t *testing.T) {
	ns := []int{2, 10, 64}
	if testing.Short() {
		ns = []int{2, 10}
	}
	for _, n := range ns {
		p := DefaultDCQCNParams(n)
		p.TauStar = 85e-6
		sys, err := NewDCQCNPI(DCQCNPIConfig{DCQCN: DCQCNConfig{Params: p}})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.6, 1e-4)
		qm, qsd, _, _ := late(sm, sys.QIndex(), 0.45)
		if math.Abs(qm-sys.QRef())/sys.QRef() > 0.1 {
			t.Errorf("N=%d: queue %v, want pinned at reference %v", n, qm, sys.QRef())
		}
		if qsd/sys.QRef() > 0.1 {
			t.Errorf("N=%d: queue oscillation sd=%v", n, qsd)
		}
		r0, _, _, _ := late(sm, sys.RCIndex(0), 0.45)
		rN, _, _, _ := late(sm, sys.RCIndex(n-1), 0.45)
		fair := p.C / float64(n)
		if math.Abs(r0-fair)/fair > 0.05 || math.Abs(rN-fair)/fair > 0.05 {
			t.Errorf("N=%d: rates %v/%v, want fair %v", n, r0, rN, fair)
		}
	}
}

// Figure 19 / Theorem 6: host-side PI pins the delay but cannot restore
// fairness — flows with different histories keep different rates.
func TestTimelyPIFixedDelayButUnfair(t *testing.T) {
	cfg := DefaultPatchedTimelyConfig(2)
	cfg.StartTimes = []float64{0, 0.1}
	sys, err := NewTimelyPI(TimelyPIConfig{Timely: cfg})
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 1.2, 1e-3)
	qm, _, _, _ := late(sm, sys.QIndex(), 1.0)
	if math.Abs(qm-sys.QRef())/sys.QRef() > 0.1 {
		t.Errorf("queue %v, want pinned at %v", qm, sys.QRef())
	}
	r0, _, _, _ := late(sm, sys.RateIndex(0), 1.0)
	r1, _, _, _ := late(sm, sys.RateIndex(1), 1.0)
	if r0/r1 < 1.5 {
		t.Errorf("rate ratio %v, want persistent unfairness (>1.5) despite fixed delay", r0/r1)
	}
}

func TestPIConfigValidation(t *testing.T) {
	cfg := DefaultPatchedTimelyConfig(2)
	if _, err := NewTimelyPI(TimelyPIConfig{Timely: cfg, PI: PIConfig{QRef: 100e6}}); err == nil {
		t.Error("expected error for out-of-range QRef")
	}
	bad := cfg
	bad.N = 0
	if _, err := NewTimelyPI(TimelyPIConfig{Timely: bad}); err == nil {
		t.Error("expected error for invalid Timely config")
	}
	p := DefaultDCQCNParams(0)
	if _, err := NewDCQCNPI(DCQCNPIConfig{DCQCN: DCQCNConfig{Params: p}}); err == nil {
		t.Error("expected error for invalid DCQCN params")
	}
}

// Run's sampling contract: includes t=0 and the final time, stride honoured.
func TestRunSampling(t *testing.T) {
	p := DefaultDCQCNParams(2)
	sys, err := NewDCQCN(DCQCNConfig{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	sm := Run(sys, 1e-6, 1e-3, 1e-4)
	if sm[0].T != 0 {
		t.Errorf("first sample at %v, want 0", sm[0].T)
	}
	if lastT := sm[len(sm)-1].T; math.Abs(lastT-1e-3) > 1e-9 {
		t.Errorf("last sample at %v, want 1e-3", lastT)
	}
	if len(sm) != 11 {
		t.Errorf("got %d samples, want 11", len(sm))
	}
}

// Ingress marking adds the queueing delay q*/C to the marking feedback
// path. The loop reduction must expose exactly that lag, and the nonlinear
// model with ingress marking must still find the same Theorem 1 fixed
// point when the loop is stable.
func TestDCQCNIngressLoopLag(t *testing.T) {
	p := DefaultDCQCNParams(2)
	p.C = 10e9 / 8 / 1000
	loop, err := NewDCQCNIngressLoop(p)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fixedpoint.SolveDCQCN(p)
	if err != nil {
		t.Fatal(err)
	}
	delays := loop.Delays()
	if len(delays) != 2 {
		t.Fatalf("delays = %v, want [τ*, τ*+q*/C]", delays)
	}
	wantMark := p.TauStar + fp.Q/p.C
	if math.Abs(delays[1]-wantMark)/wantMark > 1e-9 {
		t.Errorf("marking lag %v, want %v", delays[1], wantMark)
	}
	if delays[0] != p.TauStar {
		t.Errorf("rate lag %v, want τ* = %v", delays[0], p.TauStar)
	}
}

func TestDCQCNIngressFluidSameFixedPoint(t *testing.T) {
	p := DefaultDCQCNParams(2)
	p.C = 10e9 / 8 / 1000
	for _, ingress := range []bool{false, true} {
		sys, err := NewDCQCN(DCQCNConfig{Params: p, IngressMarking: ingress})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, 0.3, 1e-3)
		fp, err := sys.FixedPoint()
		if err != nil {
			t.Fatal(err)
		}
		q, _, _, _ := late(sm, sys.QIndex(), 0.25)
		if math.Abs(q-fp.Q)/fp.Q > 0.05 {
			t.Errorf("ingress=%v: queue %v, fixed point %v", ingress, q, fp.Q)
		}
	}
}

// The strict Eq. 3 profile (marking cliff at Kmax) destabilises the N=64
// case whose Eq. 9 fixed point lies beyond Kmax, while the extended ramp
// the paper's fixed point implies keeps it stable — our own modelling
// decision, made testable. Short mode halves the horizon: the cliff
// oscillation starts immediately and the ramp settles within 60 ms.
func TestDCQCNStrictREDAblation(t *testing.T) {
	horizon, window := 0.2, 0.12
	if testing.Short() {
		horizon, window = 0.1, 0.06
	}
	run := func(strict bool) float64 {
		p := DefaultDCQCNParams(64)
		p.TauStar = 85e-6
		sys, err := NewDCQCN(DCQCNConfig{Params: p, StrictRED: strict})
		if err != nil {
			t.Fatal(err)
		}
		sm := Run(sys, 1e-6, horizon, 1e-4)
		q, sd, _, _ := late(sm, sys.QIndex(), window)
		return sd / q
	}
	extended := run(false)
	strict := run(true)
	if extended > 0.05 {
		t.Errorf("extended ramp: CV %v, want stable", extended)
	}
	if strict < 0.2 {
		t.Errorf("strict Eq.3: CV %v, want oscillation against the marking cliff", strict)
	}
}
