package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

// defaultParams mirrors the DCQCN defaults of [31] at 40 Gb/s with 1 KB
// packets: C = 5e6 pkt/s, R_AI = 40 Mb/s = 5e3 pkt/s, τ = 50 µs, τ' = T =
// 55 µs, B = 10 MB = 1e4 pkt, F = 5, K_min/K_max = 5/200 KB, P_max = 1%.
func defaultParams(n int) DCQCNParams {
	return DCQCNParams{
		N: n, C: 5e6, RAI: 5e3,
		Tau: 50e-6, TauPrime: 55e-6, T: 55e-6,
		B: 1e4, F: 5,
		Kmin: 5, Kmax: 200, Pmax: 0.01,
		G: 1.0 / 256, TauStar: 4e-6,
	}
}

func TestBisectKnownRoots(t *testing.T) {
	cases := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"linear", func(x float64) float64 { return x - 3 }, 0, 10, 3},
		{"quadratic", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"endpoint lo", func(x float64) float64 { return x }, 0, 1, 0},
		{"endpoint hi", func(x float64) float64 { return x - 1 }, 0, 1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Bisect(c.f, c.lo, c.hi, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-c.want) > 1e-10 {
				t.Errorf("root = %v, want %v", got, c.want)
			}
		})
	}
}

func TestBisectSwappedInterval(t *testing.T) {
	got, err := Bisect(func(x float64) float64 { return x - 3 }, 10, 0, 1e-12)
	if err != nil || math.Abs(got-3) > 1e-10 {
		t.Errorf("root = %v, err = %v; want 3, nil", got, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err == nil {
		t.Error("expected ErrNoBracket")
	}
}

func TestPow1mpAccuracy(t *testing.T) {
	// (1-p)^x for tiny p must not collapse to 1 due to float cancellation.
	p := 1e-12
	x := 1e6
	want := math.Exp(-p * x) // ≈ 1 - 1e-6
	if got := Pow1mp(p, x); math.Abs(got-want) > 1e-12 {
		t.Errorf("Pow1mp(%g,%g) = %v, want %v", p, x, got, want)
	}
	if got := Expm1Pow(p, -x); math.Abs(got-1e-6) > 1e-9 {
		t.Errorf("Expm1Pow = %v, want ~1e-6", got)
	}
}

func TestSolveDCQCNUnique(t *testing.T) {
	fp, err := SolveDCQCN(defaultParams(10))
	if err != nil {
		t.Fatal(err)
	}
	if fp.P <= 0 || fp.P >= 1 {
		t.Fatalf("p* = %v out of (0,1)", fp.P)
	}
	// Residual changes sign at p*.
	pr := defaultParams(10)
	if DCQCNResidual(pr, fp.P*0.9) >= 0 {
		t.Error("residual below p* should be negative")
	}
	if DCQCNResidual(pr, math.Min(fp.P*1.1, 0.999)) <= 0 {
		t.Error("residual above p* should be positive")
	}
	if fp.RC != pr.C/10 {
		t.Errorf("R_C* = %v, want fair share %v", fp.RC, pr.C/10)
	}
	if fp.RT <= fp.RC {
		t.Errorf("R_T* = %v should exceed R_C* = %v", fp.RT, fp.RC)
	}
	if fp.Q <= pr.Kmin || fp.Q >= pr.Kmax {
		t.Errorf("q* = %v packets, want within RED thresholds (%v, %v)", fp.Q, pr.Kmin, pr.Kmax)
	}
	if fp.Alpha <= 0 || fp.Alpha >= 1 {
		t.Errorf("α* = %v out of (0,1)", fp.Alpha)
	}
}

// Eq. 14's Taylor approximation should be close to the exact root where its
// premise holds (the paper notes p* is "typically very close to 0"); for
// large N, p* grows and the O(p⁴) truncation degrades, but it must stay the
// right order of magnitude and an over-estimate (the dropped (1-p)^{FB}
// attenuation makes the true p* smaller).
func TestEq14ApproxMatchesExact(t *testing.T) {
	for _, n := range []int{1, 2, 4, 10, 16, 64} {
		pr := defaultParams(n)
		fp, err := SolveDCQCN(pr)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		approx := DCQCNPStarApprox(pr)
		rel := math.Abs(approx-fp.P) / fp.P
		if n <= 4 && rel > 0.30 {
			t.Errorf("N=%d (small-p regime): approx p*=%v vs exact %v (rel err %.1f%%)", n, approx, fp.P, rel*100)
		}
		if ratio := approx / fp.P; ratio < 0.5 || ratio > 2 {
			t.Errorf("N=%d: approx p*=%v vs exact %v (ratio %.2f out of [0.5,2])", n, approx, fp.P, ratio)
		}
		if n >= 10 && approx < fp.P {
			t.Errorf("N=%d: Taylor approx %v should over-estimate exact %v", n, approx, fp.P)
		}
	}
}

// The steady-state queue grows with the number of flows — the q*-vs-N
// dependence that motivates the PI controller in §5.
func TestQStarGrowsWithN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		fp, err := SolveDCQCN(defaultParams(n))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if fp.Q <= prev {
			t.Errorf("q*(N=%d) = %v not greater than previous %v", n, fp.Q, prev)
		}
		prev = fp.Q
	}
}

func TestQFromPInverse(t *testing.T) {
	pr := defaultParams(2)
	q := pr.QFromP(pr.Pmax) // p = Pmax should land exactly on Kmax
	if math.Abs(q-pr.Kmax) > 1e-9 {
		t.Errorf("QFromP(Pmax) = %v, want Kmax = %v", q, pr.Kmax)
	}
	if q0 := pr.QFromP(0); math.Abs(q0-pr.Kmin) > 1e-9 {
		t.Errorf("QFromP(0) = %v, want Kmin = %v", q0, pr.Kmin)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := defaultParams(2)
	mutations := []func(*DCQCNParams){
		func(p *DCQCNParams) { p.N = 0 },
		func(p *DCQCNParams) { p.C = -1 },
		func(p *DCQCNParams) { p.RAI = 0 },
		func(p *DCQCNParams) { p.Tau = 0 },
		func(p *DCQCNParams) { p.TauPrime = -1 },
		func(p *DCQCNParams) { p.T = 0 },
		func(p *DCQCNParams) { p.B = 0 },
		func(p *DCQCNParams) { p.F = 0 },
		func(p *DCQCNParams) { p.Kmax = p.Kmin },
		func(p *DCQCNParams) { p.Pmax = 0 },
		func(p *DCQCNParams) { p.Pmax = 1.5 },
		func(p *DCQCNParams) { p.G = 1 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid params %+v", i, p)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("Validate rejected defaults: %v", err)
	}
}

func TestPatchedTimelyQStar(t *testing.T) {
	// 10 Gb/s = 1.25e9 B/s, T_low = 50 µs → q' = 62500 B; δ = 10 Mb/s =
	// 1.25e6 B/s; β = 0.008.
	c := 1.25e9
	qp := c * 50e-6
	delta := 1.25e6
	beta := 0.008
	q1 := PatchedTimelyQStar(1, delta, beta, c, qp)
	want := 1*delta*qp/(beta*c) + qp
	if math.Abs(q1-want) > 1e-6 {
		t.Errorf("q*(1) = %v, want %v", q1, want)
	}
	// Linear growth in N (Eq. 31): q*(2N) - q' = 2(q*(N) - q').
	q2 := PatchedTimelyQStar(2, delta, beta, c, qp)
	q4 := PatchedTimelyQStar(4, delta, beta, c, qp)
	if math.Abs((q4-qp)-2*(q2-qp)) > 1e-6 {
		t.Errorf("q* not linear in N: q2=%v q4=%v q'=%v", q2, q4, qp)
	}
}

// Property: Eq. 11's LHS is monotonically increasing in p on (0, 1), which
// is the core of the uniqueness proof in Theorem 1.
func TestPropertyResidualMonotonic(t *testing.T) {
	pr := defaultParams(8)
	f := func(a, b uint16) bool {
		p1 := 1e-6 + float64(a)/float64(math.MaxUint16)*0.5
		p2 := 1e-6 + float64(b)/float64(math.MaxUint16)*0.5
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if p2-p1 < 1e-9 {
			return true
		}
		return DCQCNResidual(pr, p1) <= DCQCNResidual(pr, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: SolveDCQCN satisfies Eq. 11 (residual ~ 0) across a parameter
// sweep, and p* stays in (0, Pmax·10) for sane configurations.
func TestPropertyFixedPointSatisfiesEq11(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 20, 50, 100} {
		for _, cGbps := range []float64{10, 40, 100} {
			pr := defaultParams(n)
			pr.C = cGbps * 1e9 / 8 / 1000
			fp, err := SolveDCQCN(pr)
			if err != nil {
				t.Fatalf("N=%d C=%g: %v", n, cGbps, err)
			}
			res := DCQCNResidual(pr, fp.P)
			scale := pr.Tau * pr.Tau * pr.RAI * fp.RC
			if math.Abs(res)/scale > 1e-6 {
				t.Errorf("N=%d C=%g: residual %v not ~0 (scale %v)", n, cGbps, res, scale)
			}
		}
	}
}

func BenchmarkSolveDCQCN(b *testing.B) {
	pr := defaultParams(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDCQCN(pr); err != nil {
			b.Fatal(err)
		}
	}
}
