// Package fixedpoint computes the steady-state operating points the paper
// derives: the unique DCQCN fixed point (Theorem 1, Eq. 9-14) and the patched
// TIMELY fixed point (Theorem 5, Eq. 31), plus the generic scalar
// root-finding they need.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when the supplied interval does not bracket a
// sign change.
var ErrNoBracket = errors.New("fixedpoint: interval does not bracket a root")

// Bisect finds a root of f within [lo, hi] to absolute tolerance tol on the
// argument. f(lo) and f(hi) must have opposite signs (zero endpoints are
// returned directly).
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break // float resolution reached
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Pow1mp computes (1-p)^x accurately for small p via exp(x*log1p(-p)).
func Pow1mp(p, x float64) float64 { return math.Exp(x * math.Log1p(-p)) }

// Expm1Pow computes (1-p)^x - 1 accurately for small p.
func Expm1Pow(p, x float64) float64 { return math.Expm1(x * math.Log1p(-p)) }

// DCQCNParams are the fluid-model parameters of Table 1. Rates are in
// packets/second and buffer quantities in packets, so the per-packet marking
// probability p composes directly with them.
type DCQCNParams struct {
	N        int     // flows sharing the bottleneck
	C        float64 // bottleneck capacity, packets/s
	RAI      float64 // additive increase step, packets/s
	Tau      float64 // CNP generation timer τ, s
	TauPrime float64 // α update interval τ', s
	T        float64 // rate-increase timer, s
	B        float64 // byte counter, packets
	F        float64 // fast recovery stages (5)
	Kmin     float64 // RED min threshold, packets
	Kmax     float64 // RED max threshold, packets
	Pmax     float64 // RED max marking probability
	G        float64 // DCTCP-style gain g
	TauStar  float64 // control loop (feedback) delay τ*, s
}

// Physical range limits Validate enforces. They are generous — orders of
// magnitude beyond any datacenter operating point — but finite: the Eq. 11
// residual and the Eq. 9/10 fixed-point algebra are only guaranteed
// NaN-free and overflow-free inside these bounds (subnormal timers can
// drive the residual to 0/0, and a Pmax below ~1e-6 with a Kmax near 1e12
// overflows q*; both found by FuzzDCQCNValidateSolve).
const (
	MaxFlows   = 1e9  // N
	MinRate    = 1e-3 // C, RAI, packets/s
	MaxRate    = 1e12 // C, RAI, packets/s (8 Pb/s at 1 KB packets)
	MinTimer   = 1e-9 // Tau, TauPrime, T, s
	MaxTimer   = 10.0 // Tau, TauPrime, T, TauStar, s
	MinPackets = 1e-6 // B
	MaxPackets = 1e12 // B, Kmin, Kmax
	MinPmax    = 1e-6
	MaxStages  = 1e3 // F
)

// Validate reports whether the parameters are physically meaningful. Every
// float must be finite: NaN compares false against any threshold, so without
// the explicit check a NaN capacity or timer would sail through the range
// tests below and poison the Eq. 11 bisection (found by FuzzDCQCNValidateSolve).
// The magnitude bounds guarantee SolveDCQCN neither panics nor returns a
// non-finite "fixed point" on any accepted input — the contract the fuzz
// test pins.
func (p DCQCNParams) Validate() error {
	for _, v := range []float64{p.C, p.RAI, p.Tau, p.TauPrime, p.T, p.B, p.F,
		p.Kmin, p.Kmax, p.Pmax, p.G, p.TauStar} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("dcqcn params: all parameters must be finite")
		}
	}
	switch {
	case p.N <= 0:
		return errors.New("dcqcn params: N must be positive")
	case float64(p.N) > MaxFlows:
		return errors.New("dcqcn params: N is beyond any physical fabric")
	case p.C <= 0, p.RAI <= 0:
		return errors.New("dcqcn params: rates must be positive")
	case p.C < MinRate, p.C > MaxRate, p.RAI < MinRate, p.RAI > MaxRate:
		return errors.New("dcqcn params: rates must be physical (packets/s)")
	case p.Tau <= 0, p.TauPrime <= 0, p.T <= 0:
		return errors.New("dcqcn params: timers must be positive")
	case p.Tau < MinTimer, p.Tau > MaxTimer,
		p.TauPrime < MinTimer, p.TauPrime > MaxTimer,
		p.T < MinTimer, p.T > MaxTimer:
		return errors.New("dcqcn params: timers must be physical (seconds)")
	case p.TauStar < 0 || p.TauStar > MaxTimer:
		return errors.New("dcqcn params: feedback delay must be in [0, MaxTimer]")
	case p.B <= 0, p.F <= 0:
		return errors.New("dcqcn params: byte counter and F must be positive")
	case p.B < MinPackets, p.B > MaxPackets, p.F > MaxStages:
		return errors.New("dcqcn params: byte counter or F beyond physical range")
	case p.Kmax <= p.Kmin, p.Kmin < 0:
		return errors.New("dcqcn params: need 0 <= Kmin < Kmax")
	case p.Kmax > MaxPackets:
		return errors.New("dcqcn params: Kmax beyond physical range")
	case p.Pmax <= 0 || p.Pmax > 1:
		return errors.New("dcqcn params: Pmax must be in (0,1]")
	case p.Pmax < MinPmax:
		return errors.New("dcqcn params: Pmax below the solvable range")
	case p.G <= 0 || p.G >= 1:
		return errors.New("dcqcn params: g must be in (0,1)")
	}
	return nil
}

// DCQCNFixedPoint is the unique operating point of Theorem 1.
type DCQCNFixedPoint struct {
	P     float64 // marking probability p*
	Q     float64 // queue length q*, packets (Eq. 9)
	Alpha float64 // α* (Eq. 10)
	RC    float64 // per-flow rate C/N, packets/s
	RT    float64 // target rate at the fixed point, packets/s
}

// dcqcnABCDE evaluates the a,b,c,d,e terms of Eq. 12 at marking
// probability p and per-flow rate rc.
func dcqcnABCDE(pr DCQCNParams, p, rc float64) (a, b, c, d, e float64) {
	a = -Expm1Pow(p, pr.Tau*rc) // 1-(1-p)^{τ rc}
	denB := Expm1Pow(p, -pr.B)  // (1-p)^{-B} - 1
	b = p / denB
	c = Pow1mp(p, pr.F*pr.B) * p / denB
	denT := Expm1Pow(p, -pr.T*rc) // (1-p)^{-T rc} - 1
	d = p / denT
	e = Pow1mp(p, pr.F*pr.T*rc) * p / denT
	return
}

// DCQCNResidual is the left-hand side minus right-hand side of Eq. 11 at
// marking probability p with per-flow rate rc = C/N. It is negative for
// p below the fixed point and positive above it.
func DCQCNResidual(pr DCQCNParams, p float64) float64 {
	rc := pr.C / float64(pr.N)
	a, b, c, d, e := dcqcnABCDE(pr, p, rc)
	alpha := -Expm1Pow(p, pr.TauPrime*rc)
	return a*a*alpha/((b+d)*(c+e)) - pr.Tau*pr.Tau*pr.RAI*rc
}

// SolveDCQCN finds the unique fixed point of Theorem 1 by bisection of
// Eq. 11 over p in (0, 1).
func SolveDCQCN(pr DCQCNParams) (DCQCNFixedPoint, error) {
	if err := pr.Validate(); err != nil {
		return DCQCNFixedPoint{}, err
	}
	rc := pr.C / float64(pr.N)
	f := func(p float64) float64 { return DCQCNResidual(pr, p) }
	p, err := Bisect(f, 1e-12, 1-1e-9, 1e-14)
	if err != nil {
		return DCQCNFixedPoint{}, fmt.Errorf("dcqcn fixed point: %w", err)
	}
	fp := DCQCNFixedPoint{
		P:     p,
		Q:     p/pr.Pmax*(pr.Kmax-pr.Kmin) + pr.Kmin, // Eq. 9
		Alpha: -Expm1Pow(p, pr.TauPrime*rc),          // Eq. 10
		RC:    rc,
	}
	// R_T* from dR_T/dt = 0 (see the derivation of Eq. 11):
	// (R_T - R_C) a/τ = R_AI R_C (c+e).
	a, _, c, _, e := dcqcnABCDE(pr, p, rc)
	fp.RT = rc + pr.Tau*pr.RAI*rc*(c+e)/a
	return fp, nil
}

// DCQCNPStarApprox is the closed-form Taylor approximation of p* (Eq. 14):
//
//	p* ≈ cbrt( R_AI N² / (τ' C²) · (1/B + N/(T C))² ).
func DCQCNPStarApprox(pr DCQCNParams) float64 {
	n := float64(pr.N)
	inner := 1/pr.B + n/(pr.T*pr.C)
	return math.Cbrt(pr.RAI * n * n / (pr.TauPrime * pr.C * pr.C) * inner * inner)
}

// QFromP maps a marking probability to the RED steady-state queue (Eq. 9).
func (pr DCQCNParams) QFromP(p float64) float64 {
	return p/pr.Pmax*(pr.Kmax-pr.Kmin) + pr.Kmin
}

// PatchedTimelyQStar is the patched-TIMELY fixed-point queue of Eq. 31:
//
//	q* = N δ q' / (β C) + q'
//
// with q' the reference queue (C·T_low in the paper), δ the additive step,
// β the decrease factor and C the bottleneck capacity. Any consistent unit
// system works (the paper uses bytes and bytes/second).
func PatchedTimelyQStar(n int, delta, beta, c, qPrime float64) float64 {
	return float64(n)*delta*qPrime/(beta*c) + qPrime
}
