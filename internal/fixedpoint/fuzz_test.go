package fixedpoint

import (
	"math"
	"testing"
)

// FuzzDCQCNValidateSolve drives SolveDCQCN with arbitrary Table 1
// parameters. The contract under test mirrors internal/fault's
// FuzzPlanValidateApply: Validate classifies every input as ok or error
// without panicking, SolveDCQCN never panics, it refuses exactly what
// Validate rejects, and on every accepted input it returns either a clean
// bracketing error or a finite, internally consistent fixed point — never
// a NaN/Inf "success". (This contract is why Validate carries magnitude
// bounds: subnormal timers drive the Eq. 11 residual to 0/0, and a Pmax
// below ~1e-6 with Kmax near 1e12 overflows the Eq. 9 queue.)
//
// Run the seed corpus with go test; explore with:
//
//	go test ./internal/fixedpoint -fuzz FuzzDCQCNValidateSolve -fuzztime 30s
func FuzzDCQCNValidateSolve(f *testing.F) {
	// Table 1 defaults for 2 and 10 flows (40 Gb/s, 1 KB packets).
	f.Add(2, 5e6, 40.0, 55e-6, 55e-6, 1.5e-3, 10e6/8e3, 5.0, 5.0, 200.0, 0.01, 1.0/256, 4e-6)
	f.Add(10, 5e6, 40.0, 55e-6, 55e-6, 1.5e-3, 10e6/8e3, 5.0, 5.0, 200.0, 0.01, 1.0/256, 4e-6)
	// Zero flows: must be rejected.
	f.Add(0, 5e6, 40.0, 55e-6, 55e-6, 1.5e-3, 1250.0, 5.0, 5.0, 200.0, 0.01, 1.0/256, 4e-6)
	// NaN capacity: must be rejected (NaN sails through range checks).
	f.Add(2, math.NaN(), 40.0, 55e-6, 55e-6, 1.5e-3, 1250.0, 5.0, 5.0, 200.0, 0.01, 1.0/256, 4e-6)
	// Infinite RAI: must be rejected.
	f.Add(2, 5e6, math.Inf(1), 55e-6, 55e-6, 1.5e-3, 1250.0, 5.0, 5.0, 200.0, 0.01, 1.0/256, 4e-6)
	// Subnormal CNP timer: residual goes 0/0 without the magnitude bounds.
	f.Add(2, 5e6, 40.0, 5e-324, 55e-6, 1.5e-3, 1250.0, 5.0, 5.0, 200.0, 0.01, 1.0/256, 4e-6)
	// Tiny Pmax with huge Kmax: Eq. 9 queue overflows without the bounds.
	f.Add(2, 5e6, 40.0, 55e-6, 55e-6, 1.5e-3, 1250.0, 5.0, 5.0, 1e12, 1e-300, 1.0/256, 4e-6)
	// Inverted RED thresholds: must be rejected.
	f.Add(2, 5e6, 40.0, 55e-6, 55e-6, 1.5e-3, 1250.0, 5.0, 200.0, 5.0, 0.01, 1.0/256, 4e-6)
	// Gain at the boundary: must be rejected.
	f.Add(2, 5e6, 40.0, 55e-6, 55e-6, 1.5e-3, 1250.0, 5.0, 5.0, 200.0, 0.01, 1.0, 4e-6)

	f.Fuzz(func(t *testing.T, n int, c, rai, tau, tauPrime, tt, b, ff,
		kmin, kmax, pmax, g, tauStar float64) {
		pr := DCQCNParams{
			N: n, C: c, RAI: rai, Tau: tau, TauPrime: tauPrime, T: tt,
			B: b, F: ff, Kmin: kmin, Kmax: kmax, Pmax: pmax, G: g,
			TauStar: tauStar,
		}

		verr := pr.Validate() // must classify, never panic

		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("SolveDCQCN panicked (Validate said %v) on %+v: %v", verr, pr, r)
			}
		}()
		fp, serr := SolveDCQCN(pr)

		if verr != nil {
			if serr == nil {
				t.Fatalf("SolveDCQCN accepted params Validate rejected (%v): %+v", verr, pr)
			}
			return
		}
		if serr != nil {
			return // clean refusal (no Eq. 11 bracket) is allowed on valid params
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"P", fp.P}, {"Q", fp.Q}, {"Alpha", fp.Alpha}, {"RC", fp.RC}, {"RT", fp.RT},
		} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				t.Fatalf("SolveDCQCN returned non-finite %s = %v for %+v", v.name, v.val, pr)
			}
		}
		switch {
		case fp.P <= 0 || fp.P >= 1:
			t.Fatalf("fixed-point p* = %v outside (0,1) for %+v", fp.P, pr)
		case fp.Alpha < 0 || fp.Alpha > 1:
			t.Fatalf("fixed-point α* = %v outside [0,1] for %+v", fp.Alpha, pr)
		case fp.RC != pr.C/float64(pr.N):
			t.Fatalf("fixed-point RC = %v, want C/N = %v", fp.RC, pr.C/float64(pr.N))
		case fp.Q < pr.Kmin:
			t.Fatalf("fixed-point q* = %v below Kmin %v for %+v", fp.Q, pr.Kmin, pr)
		case fp.RT < fp.RC:
			t.Fatalf("fixed-point RT = %v below RC = %v for %+v", fp.RT, fp.RC, pr)
		}
	})
}
