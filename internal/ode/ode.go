// Package ode integrates systems of ordinary and delay differential
// equations (DDEs) with a fixed-step classical Runge-Kutta (RK4) scheme.
//
// The fluid models of DCQCN and TIMELY are DDEs: their right-hand sides
// reference state at earlier times (the feedback delay τ* in DCQCN, the
// state-dependent RTT τ' in TIMELY). Go has no numerical DDE ecosystem, so
// this package provides one from scratch: a dense, uniformly-spaced history
// ring buffer with linear interpolation serves past-state lookups at
// arbitrary (possibly state-dependent) lags.
package ode

import (
	"fmt"
	"math"
)

// System is a differential system dy/dt = f(t, y, history). Implementations
// must not retain y, dydt, or the History beyond the call.
type System interface {
	// Dim returns the number of state variables.
	Dim() int
	// Derivs evaluates the right-hand side at time t with state y, writing
	// the derivative into dydt. past provides access to the state at any
	// earlier time; pure ODEs simply ignore it.
	Derivs(t float64, y []float64, past History, dydt []float64)
}

// PostStepper is an optional extension of System: after each accepted step
// the solver calls PostStep, which may clamp or otherwise adjust the state
// in place (e.g. queue length >= 0, rates within [Rmin, C]).
type PostStepper interface {
	PostStep(t float64, y []float64)
}

// History provides interpolated access to past solution values.
type History interface {
	// Value returns component idx of the state at time tq. Times at or
	// before the start of integration are served by the initial history;
	// times slightly past the newest stored point (as happens for delayed
	// lookups inside a Runge-Kutta stage) are linearly extrapolated.
	Value(tq float64, idx int) float64
}

// Solver integrates a System with fixed step H from an initial state Y0.
type Solver struct {
	Sys System
	// H is the integration step in the system's time unit (seconds for the
	// fluid models). Must be > 0.
	H float64
	// MaxDelay bounds the largest lag the system will ever request. The
	// history buffer keeps ceil(MaxDelay/H)+4 points. Zero is valid for
	// pure ODEs.
	MaxDelay float64
	// Y0 is the initial state at t0; it is copied, not aliased.
	Y0 []float64
	// InitHistory, if non-nil, supplies the pre-t0 history y(t), t <= t0.
	// When nil the history is the constant Y0.
	InitHistory func(t float64, out []float64)
	// LinearHistory falls back to linear interpolation between stored
	// history points. The default is cubic Hermite, which uses the exact
	// step-start derivatives the integrator computes anyway and keeps the
	// delayed lookups at RK4's own accuracy. Linear remains available for
	// systems whose PostStep clamping makes stored slopes inconsistent
	// with the clamped states.
	LinearHistory bool
}

// Observer receives the solution after every accepted step (and once for the
// initial condition). The slice is reused; copy what you keep.
type Observer func(t float64, y []float64)

type history struct {
	t0    float64 // time of ring[head]
	h     float64
	n     int // points stored
	capac int
	dim   int
	buf   []float64 // capac*dim ring of states
	slope []float64 // capac*dim ring of dy/dt at each point (Hermite mode)
	start int       // index of oldest point
	tcur  float64   // time of newest point
	init  func(t float64, out []float64)
	y0    []float64
	tmp   []float64
}

func newHistory(dim, capac int, h, t0 float64, y0 []float64, init func(float64, []float64), hermite bool) *history {
	hs := &history{h: h, capac: capac, dim: dim, init: init}
	hs.buf = make([]float64, capac*dim)
	if hermite {
		hs.slope = make([]float64, capac*dim)
	}
	hs.y0 = append([]float64(nil), y0...)
	hs.tmp = make([]float64, dim)
	hs.t0 = t0
	hs.tcur = t0
	copy(hs.buf[:dim], y0)
	hs.n = 1
	return hs
}

// push appends the state at time t (must be tcur + h). dy, if history runs
// in Hermite mode, is the derivative at the NEW point's predecessor — the
// k1 of the step that just completed, which is the exact f(t_prev, y_prev).
// The new point's own slope is provisionally dyEnd (the step's k4, an
// O(h²) endpoint estimate) until the next step overwrites it exactly.
func (hs *history) push(t float64, y, dyPrev, dyEnd []float64) {
	prevIdx := (hs.start + hs.n - 1) % hs.capac
	var idx int
	if hs.n < hs.capac {
		idx = (hs.start + hs.n) % hs.capac
		hs.n++
	} else {
		idx = hs.start
		hs.start = (hs.start + 1) % hs.capac
	}
	copy(hs.buf[idx*hs.dim:(idx+1)*hs.dim], y)
	if hs.slope != nil {
		if dyPrev != nil && prevIdx != idx {
			copy(hs.slope[prevIdx*hs.dim:(prevIdx+1)*hs.dim], dyPrev)
		}
		if dyEnd != nil {
			copy(hs.slope[idx*hs.dim:(idx+1)*hs.dim], dyEnd)
		}
	}
	hs.tcur = t
}

// at returns the i-th stored point (0 = oldest).
func (hs *history) point(i int) []float64 {
	idx := (hs.start + i) % hs.capac
	return hs.buf[idx*hs.dim : (idx+1)*hs.dim]
}

// slopeAt returns the stored derivative of the i-th point (Hermite mode).
func (hs *history) slopeAt(i int) []float64 {
	idx := (hs.start + i) % hs.capac
	return hs.slope[idx*hs.dim : (idx+1)*hs.dim]
}

func (hs *history) oldestTime() float64 { return hs.tcur - float64(hs.n-1)*hs.h }

func (hs *history) Value(tq float64, idx int) float64 {
	if tq <= hs.t0 {
		if hs.init != nil {
			hs.init(tq, hs.tmp)
			return hs.tmp[idx]
		}
		return hs.y0[idx]
	}
	oldest := hs.oldestTime()
	if tq < oldest {
		panic(fmt.Sprintf("ode: history lookup at t=%g before oldest stored %g; increase Solver.MaxDelay", tq, oldest))
	}
	// Fractional index into the uniformly spaced ring.
	f := (tq - oldest) / hs.h
	i := int(f)
	if i >= hs.n-1 {
		// At or beyond the newest point: linear extrapolation from the
		// last two points (constant if only one exists). Runge-Kutta
		// stages evaluate at t+h/2 and t+h, so a lag smaller than the
		// step lands here; the overshoot is at most one step.
		last := hs.point(hs.n - 1)
		if hs.n == 1 {
			return last[idx]
		}
		prev := hs.point(hs.n - 2)
		a := (tq - hs.tcur) / hs.h
		return last[idx] + a*(last[idx]-prev[idx])
	}
	a := f - float64(i)
	p0 := hs.point(i)
	p1 := hs.point(i + 1)
	if hs.slope == nil {
		return p0[idx] + a*(p1[idx]-p0[idx])
	}
	// Cubic Hermite: third-order accurate between stored points, versus
	// second-order for the linear form — the interpolation no longer
	// limits RK4's global order on delayed lookups.
	d0 := hs.slopeAt(i)[idx] * hs.h
	d1 := hs.slopeAt(i + 1)[idx] * hs.h
	a2 := a * a
	a3 := a2 * a
	return (2*a3-3*a2+1)*p0[idx] + (a3-2*a2+a)*d0 + (-2*a3+3*a2)*p1[idx] + (a3-a2)*d1
}

// Integrate advances the system from t0 to t1 (t1 > t0), invoking obs (if
// non-nil) at t0 and after every step. It returns the final state.
func (s *Solver) Integrate(t0, t1 float64, obs Observer) []float64 {
	if s.H <= 0 {
		panic("ode: step H must be positive")
	}
	if s.Sys == nil {
		panic("ode: nil system")
	}
	dim := s.Sys.Dim()
	if len(s.Y0) != dim {
		panic(fmt.Sprintf("ode: len(Y0)=%d but system dimension is %d", len(s.Y0), dim))
	}
	if math.IsNaN(s.MaxDelay) || s.MaxDelay < 0 {
		panic("ode: invalid MaxDelay")
	}
	capac := int(math.Ceil(s.MaxDelay/s.H)) + 4
	hist := newHistory(dim, capac, s.H, t0, s.Y0, s.InitHistory, !s.LinearHistory)

	y := append([]float64(nil), s.Y0...)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	yt := make([]float64, dim)

	ps, hasPost := s.Sys.(PostStepper)

	if obs != nil {
		obs(t0, y)
	}
	h := s.H
	steps := int(math.Round((t1 - t0) / h))
	t := t0
	for step := 0; step < steps; step++ {
		s.Sys.Derivs(t, y, hist, k1)
		for i := 0; i < dim; i++ {
			yt[i] = y[i] + 0.5*h*k1[i]
		}
		s.Sys.Derivs(t+0.5*h, yt, hist, k2)
		for i := 0; i < dim; i++ {
			yt[i] = y[i] + 0.5*h*k2[i]
		}
		s.Sys.Derivs(t+0.5*h, yt, hist, k3)
		for i := 0; i < dim; i++ {
			yt[i] = y[i] + h*k3[i]
		}
		s.Sys.Derivs(t+h, yt, hist, k4)
		for i := 0; i < dim; i++ {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t = t0 + float64(step+1)*h
		if hasPost {
			ps.PostStep(t, y)
		}
		hist.push(t, y, k1, k4)
		if obs != nil {
			obs(t, y)
		}
	}
	return y
}

// Func adapts a plain function to the System interface for pure ODEs.
type Func struct {
	N int
	F func(t float64, y, dydt []float64)
}

// Dim implements System.
func (f Func) Dim() int { return f.N }

// Derivs implements System.
func (f Func) Derivs(t float64, y []float64, _ History, dydt []float64) { f.F(t, y, dydt) }

// DelayFunc adapts a function with history access to the System interface.
type DelayFunc struct {
	N int
	F func(t float64, y []float64, past History, dydt []float64)
}

// Dim implements System.
func (f DelayFunc) Dim() int { return f.N }

// Derivs implements System.
func (f DelayFunc) Derivs(t float64, y []float64, past History, dydt []float64) {
	f.F(t, y, past, dydt)
}
