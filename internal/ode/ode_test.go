package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// dy/dt = -y, y(0)=1 → y(t) = e^{-t}.
func TestExponentialDecay(t *testing.T) {
	s := &Solver{
		Sys: Func{N: 1, F: func(_ float64, y, d []float64) { d[0] = -y[0] }},
		H:   1e-3, Y0: []float64{1},
	}
	y := s.Integrate(0, 2, nil)
	want := math.Exp(-2)
	if math.Abs(y[0]-want) > 1e-9 {
		t.Errorf("y(2) = %v, want %v", y[0], want)
	}
}

// Harmonic oscillator preserves energy to O(h^4) per step.
func TestHarmonicOscillator(t *testing.T) {
	s := &Solver{
		Sys: Func{N: 2, F: func(_ float64, y, d []float64) {
			d[0] = y[1]
			d[1] = -y[0]
		}},
		H: 1e-3, Y0: []float64{1, 0},
	}
	y := s.Integrate(0, 2*math.Pi, nil)
	// The horizon is rounded to a whole number of steps, so compare against
	// the exact solution at the realised end time and check that energy is
	// conserved to RK4 accuracy.
	steps := math.Round(2 * math.Pi / s.H)
	tEnd := steps * s.H
	if math.Abs(y[0]-math.Cos(tEnd)) > 1e-8 || math.Abs(y[1]-(-math.Sin(tEnd))) > 1e-8 {
		t.Errorf("y(%v) = %v, want [%v %v]", tEnd, y, math.Cos(tEnd), -math.Sin(tEnd))
	}
	if e := y[0]*y[0] + y[1]*y[1]; math.Abs(e-1) > 1e-10 {
		t.Errorf("energy = %v, want 1", e)
	}
}

// RK4 global error should shrink ~16x when h halves (4th order).
func TestConvergenceOrder(t *testing.T) {
	errAt := func(h float64) float64 {
		s := &Solver{
			Sys: Func{N: 1, F: func(tt float64, y, d []float64) { d[0] = math.Cos(tt) * y[0] }},
			H:   h, Y0: []float64{1},
		}
		y := s.Integrate(0, 1, nil)
		return math.Abs(y[0] - math.Exp(math.Sin(1)))
	}
	e1 := errAt(1e-2)
	e2 := errAt(5e-3)
	ratio := e1 / e2
	if ratio < 12 || ratio > 20 {
		t.Errorf("error ratio %v for halved step, want ~16 (4th order)", ratio)
	}
}

// Linear DDE dy/dt = -y(t-τ) with constant initial history y=1.
// For τ < π/2 the solution decays; for τ > π/2 it oscillates with growing
// amplitude. This is the classic stability boundary the DCQCN/TIMELY
// analysis revolves around, so the solver must reproduce it.
func TestDDEStabilityBoundary(t *testing.T) {
	run := func(tau float64) float64 {
		sys := DelayFunc{N: 1, F: func(tt float64, y []float64, past History, d []float64) {
			d[0] = -past.Value(tt-tau, 0)
		}}
		s := &Solver{Sys: sys, H: 1e-3, MaxDelay: tau, Y0: []float64{1}}
		maxLate := 0.0
		s.Integrate(0, 40, func(tt float64, y []float64) {
			if tt > 30 {
				if a := math.Abs(y[0]); a > maxLate {
					maxLate = a
				}
			}
		})
		return maxLate
	}
	if amp := run(1.0); amp > 0.05 {
		t.Errorf("τ=1.0 (< π/2): late amplitude %v, want decay toward 0", amp)
	}
	if amp := run(2.0); amp < 10 {
		t.Errorf("τ=2.0 (> π/2): late amplitude %v, want growth", amp)
	}
}

// DDE with known exact solution: dy/dt = y(t-1) with y(t)=1 on [-1,0] gives
// y(t) = 1 + t on [0,1], then y(t) = 1 + t + (t-1)^2/2 on [1,2].
func TestDDEMethodOfSteps(t *testing.T) {
	sys := DelayFunc{N: 1, F: func(tt float64, y []float64, past History, d []float64) {
		d[0] = past.Value(tt-1, 0)
	}}
	s := &Solver{Sys: sys, H: 1e-4, MaxDelay: 1, Y0: []float64{1}}
	y := s.Integrate(0, 2, nil)
	want := 1.0 + 2.0 + 0.5 // 1 + t + (t-1)^2/2 at t=2
	if math.Abs(y[0]-want) > 1e-5 {
		t.Errorf("y(2) = %v, want %v", y[0], want)
	}
}

func TestInitialHistoryFunction(t *testing.T) {
	// dy/dt = y(t-1) with y(t) = t for t<=0 → on [0,1], dy/dt = t-1,
	// y(t) = y0 + t^2/2 - t with y(0)=0 → y(1) = -0.5.
	sys := DelayFunc{N: 1, F: func(tt float64, y []float64, past History, d []float64) {
		d[0] = past.Value(tt-1, 0)
	}}
	s := &Solver{
		Sys: sys, H: 1e-4, MaxDelay: 1, Y0: []float64{0},
		InitHistory: func(tt float64, out []float64) { out[0] = tt },
	}
	y := s.Integrate(0, 1, nil)
	if math.Abs(y[0]-(-0.5)) > 1e-6 {
		t.Errorf("y(1) = %v, want -0.5", y[0])
	}
}

func TestObserverSeesEveryStep(t *testing.T) {
	s := &Solver{
		Sys: Func{N: 1, F: func(_ float64, y, d []float64) { d[0] = 1 }},
		H:   0.1, Y0: []float64{0},
	}
	var times []float64
	s.Integrate(0, 1, func(tt float64, y []float64) { times = append(times, tt) })
	if len(times) != 11 {
		t.Fatalf("observer called %d times, want 11", len(times))
	}
	if times[0] != 0 || math.Abs(times[10]-1) > 1e-12 {
		t.Errorf("observer times = [%v ... %v], want [0 ... 1]", times[0], times[10])
	}
}

type clampedSys struct{}

func (clampedSys) Dim() int { return 1 }
func (clampedSys) Derivs(_ float64, y []float64, _ History, d []float64) {
	d[0] = -10 // drive hard negative
}
func (clampedSys) PostStep(_ float64, y []float64) {
	if y[0] < 0 {
		y[0] = 0
	}
}

func TestPostStepClamping(t *testing.T) {
	s := &Solver{Sys: clampedSys{}, H: 0.01, Y0: []float64{0.05}}
	y := s.Integrate(0, 1, func(_ float64, yy []float64) {
		if yy[0] < 0 {
			t.Fatalf("observed negative state %v despite PostStep clamp", yy[0])
		}
	})
	if y[0] != 0 {
		t.Errorf("final state %v, want 0", y[0])
	}
}

func TestHistoryTooSmallPanics(t *testing.T) {
	sys := DelayFunc{N: 1, F: func(tt float64, y []float64, past History, d []float64) {
		d[0] = -past.Value(tt-1.0, 0) // lag 1.0 but MaxDelay says 0.1
	}}
	s := &Solver{Sys: sys, H: 1e-3, MaxDelay: 0.1, Y0: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for lookup beyond MaxDelay")
		}
	}()
	s.Integrate(0, 2, nil)
}

func TestBadConfigPanics(t *testing.T) {
	cases := []struct {
		name string
		s    *Solver
	}{
		{"zero step", &Solver{Sys: Func{N: 1, F: func(_ float64, y, d []float64) {}}, H: 0, Y0: []float64{1}}},
		{"nil system", &Solver{H: 1, Y0: []float64{1}}},
		{"dim mismatch", &Solver{Sys: Func{N: 2, F: func(_ float64, y, d []float64) {}}, H: 1, Y0: []float64{1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.s.Integrate(0, 1, nil)
		})
	}
}

// Property: for the linear system dy/dt = -k y the numeric solution is
// always positive, decreasing, and bounded by the initial value.
func TestPropertyLinearDecayInvariants(t *testing.T) {
	f := func(k8 uint8, y8 uint8) bool {
		k := 0.1 + float64(k8)/64.0
		y0 := 0.1 + float64(y8)/16.0
		s := &Solver{
			Sys: Func{N: 1, F: func(_ float64, y, d []float64) { d[0] = -k * y[0] }},
			H:   1e-3, Y0: []float64{y0},
		}
		prev := math.Inf(1)
		ok := true
		s.Integrate(0, 1, func(_ float64, y []float64) {
			if y[0] <= 0 || y[0] > y0*(1+1e-12) || y[0] >= prev+1e-15 {
				ok = false
			}
			prev = y[0]
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: history interpolation is exact for linear trajectories.
func TestPropertyHistoryLinearExact(t *testing.T) {
	f := func(slope8 int8) bool {
		slope := float64(slope8) / 16.0
		hist := newHistory(1, 100, 0.1, 0, []float64{0}, nil, false)
		for i := 1; i <= 50; i++ {
			tt := float64(i) * 0.1
			hist.push(tt, []float64{slope * tt}, nil, nil)
		}
		for _, tq := range []float64{0.05, 0.333, 1.77, 4.99, 5.0} {
			want := slope * tq
			if math.Abs(hist.Value(tq, 0)-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistoryRingWraparound(t *testing.T) {
	hist := newHistory(1, 10, 1.0, 0, []float64{0}, nil, false)
	for i := 1; i <= 100; i++ {
		hist.push(float64(i), []float64{float64(i) * 2}, nil, nil)
	}
	// Only the last 10 points are retained: t in [91, 100].
	if got := hist.Value(95.5, 0); math.Abs(got-191) > 1e-12 {
		t.Errorf("Value(95.5) = %v, want 191", got)
	}
	// Extrapolation just past the newest point.
	if got := hist.Value(100.4, 0); math.Abs(got-200.8) > 1e-12 {
		t.Errorf("Value(100.4) = %v, want 200.8 (extrapolated)", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for evicted history point")
		}
	}()
	hist.Value(50, 0)
}

func BenchmarkRK4DDE(b *testing.B) {
	sys := DelayFunc{N: 4, F: func(tt float64, y []float64, past History, d []float64) {
		for i := range d {
			d[i] = -past.Value(tt-0.01, i) * 0.5
		}
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := &Solver{Sys: sys, H: 1e-4, MaxDelay: 0.01, Y0: []float64{1, 2, 3, 4}}
		s.Integrate(0, 0.1, nil)
	}
}

// Hermite history interpolation must beat linear interpolation on a DDE
// whose history has curvature: the oscillatory dy/dt = -y(t-1), integrated
// with a coarse step and compared against a fine-step reference.
func TestHermiteBeatsLinearHistory(t *testing.T) {
	solve := func(h float64, linear bool) float64 {
		sys := DelayFunc{N: 1, F: func(tt float64, y []float64, past History, d []float64) {
			d[0] = -past.Value(tt-1, 0)
		}}
		s := &Solver{Sys: sys, H: h, MaxDelay: 1, Y0: []float64{1}, LinearHistory: linear}
		y := s.Integrate(0, 5, nil)
		return y[0]
	}
	ref := solve(1e-4, false)
	lin := math.Abs(solve(0.05, true) - ref)
	herm := math.Abs(solve(0.05, false) - ref)
	if herm >= lin/5 {
		t.Errorf("Hermite error %v not clearly better than linear %v", herm, lin)
	}
}

// Hermite interpolation is exact for cubics when the stored slopes are
// exact, and at least quadratic-exact through the solver pipeline.
func TestHermiteQuadraticExact(t *testing.T) {
	// dy/dt = 2t → y = t², slopes exact at step starts. A delayed lookup
	// of y(t-τ) must reproduce (t-τ)² essentially exactly.
	sys := DelayFunc{N: 2, F: func(tt float64, y []float64, past History, d []float64) {
		d[0] = 2 * tt
		d[1] = past.Value(tt-0.35, 0) // integrates y(t-0.35)
	}}
	s := &Solver{Sys: sys, H: 0.01, MaxDelay: 0.4, Y0: []float64{0, 0}}
	y := s.Integrate(0, 1, nil)
	// ∫₀¹ max(t-0.35,0)² dt with history y=0 before t=0.35... the delayed
	// argument (t-0.35)² applies for t ≥ 0.35; before that the initial
	// history (0) holds: integral = (1-0.35)³/3.
	want := math.Pow(0.65, 3) / 3
	if math.Abs(y[1]-want) > 1e-9 {
		t.Errorf("∫y(t-τ) = %v, want %v", y[1], want)
	}
}
