package convergence

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default(4).Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.C = 0 },
		func(c *Config) { c.RAI = -1 },
		func(c *Config) { c.G = 1 },
		func(c *Config) { c.QECN = 0 },
		func(c *Config) { c.TauPrime = 0 },
		func(c *Config) { c.InitialRates = []float64{1} },
	}
	for i, m := range muts {
		c := Default(4)
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunProducesCycles(t *testing.T) {
	cfg := Default(2)
	cycles, err := Run(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 20 {
		t.Fatalf("got %d cycles, want 20", len(cycles))
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i].Time <= cycles[i-1].Time {
			t.Errorf("cycle %d time %v not increasing", i, cycles[i].Time)
		}
		if cycles[i].DeltaT <= 0 {
			t.Errorf("cycle %d has non-positive ΔT", i)
		}
	}
	// Peaks happen just as the queue hits the threshold, i.e. the
	// aggregate rate there exceeds capacity.
	last := cycles[len(cycles)-1]
	sum := 0.0
	for _, r := range last.Rates {
		sum += r
	}
	if sum < cfg.C {
		t.Errorf("aggregate peak rate %v below capacity %v", sum, cfg.C)
	}
}

// Theorem 2: the peak-rate gap between flows decays exponentially.
func TestRateGapDecaysExponentially(t *testing.T) {
	cfg := Default(2)
	cfg.InitialRates = []float64{5e6, 5e5} // 10x apart
	cycles, err := Run(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	alphaStar, _, err := AlphaFixedPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 18: the gap contracts at least as fast as (1-α*/2) per cycle
	// (α_k ≥ α* throughout, Eq. 19), so after k cycles it is bounded by
	// gap₀·(1-α*/2)^k. Allow 20% slack on the exponent for the discrete
	// ΔT quantisation.
	first := cycles[0].MaxGap
	lastGap := cycles[len(cycles)-1].MaxGap
	bound := first * math.Pow(1-alphaStar/2, float64(len(cycles))*0.8)
	if lastGap > bound {
		t.Errorf("gap %v exceeds Theorem 2 bound %v (start %v, %d cycles)", lastGap, bound, first, len(cycles))
	}
	rate := GapDecayRate(cycles, 1)
	if rate <= 0 || rate > 1-alphaStar/4 {
		t.Errorf("per-cycle decay factor %v, want at most %v", rate, 1-alphaStar/4)
	}
}

// Eq. 17: the α gap between flows also decays exponentially (and faster
// than the rate gap need be, at (1-g)^{ΣΔT}).
func TestAlphaGapDecays(t *testing.T) {
	cfg := Default(2)
	cfg.InitialRates = []float64{5e6, 1e6}
	cycles, err := Run(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Give the flows different α by hand is not possible via config (both
	// start at 1), but unequal rates make ΔT windows identical for both
	// (synchronised), so α stays equal: check it remains so (Eq. 17 with
	// zero initial gap stays zero).
	for i, c := range cycles {
		if c.AlphaGap > 1e-12 {
			t.Errorf("cycle %d: synchronised flows developed α gap %v", i, c.AlphaGap)
		}
	}
}

// Eq. 19: the synchronised α sequence decreases monotonically toward a
// strictly positive fixed point α*.
func TestAlphaMonotoneToFixedPoint(t *testing.T) {
	cfg := Default(2)
	cycles, err := Run(cfg, 80)
	if err != nil {
		t.Fatal(err)
	}
	alphaStar, _, err := AlphaFixedPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alphaStar <= 0 || alphaStar >= 1 {
		t.Fatalf("α* = %v out of (0,1)", alphaStar)
	}
	// Strict monotonicity holds for the idealised recursion; the discrete
	// simulation dithers by O(g·α) around α* once it arrives because ΔT is
	// integer-quantised. Require monotone descent until near α*, then only
	// bounded dithering.
	prev := math.Inf(1)
	for i, c := range cycles {
		a := c.Alphas[0]
		if a > alphaStar*1.1 && a >= prev+1e-12 {
			t.Errorf("cycle %d: α %v did not decrease (prev %v)", i, a, prev)
		}
		if a <= alphaStar*1.1 && a >= prev+2*cfg.G {
			t.Errorf("cycle %d: α %v jumped beyond dither band (prev %v)", i, a, prev)
		}
		prev = a
	}
	last := cycles[len(cycles)-1].Alphas[0]
	if last < alphaStar*0.8 {
		t.Errorf("α descended to %v, below fixed point %v — Eq. 19 violated", last, alphaStar)
	}
	if last > alphaStar*3 {
		t.Errorf("α %v still far above fixed point %v after 80 cycles", last, alphaStar)
	}
}

// Fairness: from any starting rates, flows end at (near) equal rates, and
// the aggregate averages near capacity.
func TestConvergesToFairShare(t *testing.T) {
	cfg := Default(4)
	cfg.InitialRates = []float64{5e6, 3e6, 1e6, 2e5}
	cycles, err := Run(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	last := cycles[len(cycles)-1]
	mean := 0.0
	for _, r := range last.Rates {
		mean += r
	}
	mean /= 4
	for i, r := range last.Rates {
		if math.Abs(r-mean)/mean > 0.01 {
			t.Errorf("flow %d peak rate %v, mean %v — not converged", i, r, mean)
		}
	}
}

// Theorem 2's prediction is quantitative: gap(T_{k+1})/gap(T_k) ≈ 1-α_k/2
// once α has converged across flows. Check cycle-by-cycle agreement.
func TestPerCycleContraction(t *testing.T) {
	cfg := Default(2)
	cfg.InitialRates = []float64{4.5e6, 1.5e6}
	cycles, err := Run(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < len(cycles); i++ { // skip early transient
		prev, cur := cycles[i-1], cycles[i]
		if prev.MaxGap < 1 {
			break
		}
		got := cur.MaxGap / prev.MaxGap
		want := 1 - prev.Alphas[0]/2
		if math.Abs(got-want) > 0.15 {
			t.Errorf("cycle %d: contraction %v, theory %v", i, got, want)
		}
	}
}

func TestAlphaFixedPointSolvesEq42(t *testing.T) {
	cfg := Default(10)
	alphaStar, deltaT, err := AlphaFixedPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rhs := math.Pow(1-cfg.G, deltaT) * ((1-cfg.G)*alphaStar + cfg.G)
	if math.Abs(rhs-alphaStar) > 1e-9 {
		t.Errorf("α* = %v does not satisfy Eq. 42 (rhs %v)", alphaStar, rhs)
	}
	if deltaT < 2 {
		t.Errorf("ΔT* = %v, must be at least 2", deltaT)
	}
}

// Property: for random two-flow starting rates, the final gap is below the
// initial gap and the run always produces monotone peak times.
func TestPropertyAlwaysConverges(t *testing.T) {
	f := func(a, b uint16) bool {
		r0 := 1e5 + float64(a)/65535*4.9e6
		r1 := 1e5 + float64(b)/65535*4.9e6
		cfg := Default(2)
		cfg.InitialRates = []float64{r0, r1}
		cycles, err := Run(cfg, 40)
		if err != nil {
			return false
		}
		if cycles[0].MaxGap > 1 && cycles[len(cycles)-1].MaxGap > cycles[0].MaxGap*0.5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGapDecayRateEdgeCases(t *testing.T) {
	if r := GapDecayRate(nil, 1); r != 0 {
		t.Errorf("empty input: %v, want 0", r)
	}
	cycles := []Cycle{{MaxGap: 100}, {MaxGap: 50}, {MaxGap: 25}}
	if r := GapDecayRate(cycles, 1); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("decay rate %v, want 0.5", r)
	}
	// Gaps below the floor are excluded.
	cycles = append(cycles, Cycle{MaxGap: 1e-12})
	if r := GapDecayRate(cycles, 1); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("decay rate with floor %v, want 0.5", r)
	}
}

func BenchmarkRun(b *testing.B) {
	cfg := Default(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, 30); err != nil {
			b.Fatal(err)
		}
	}
}
