// Package convergence implements the discrete synchronised-AIMD model of
// §3.3 (Theorem 2, Appendix B): DCQCN rate updates in units of the timer
// τ', with all flows cutting together at queue-marking peaks (Figure 6/22).
//
// The model exposes the quantities the proof manipulates — the per-cycle
// peak rates, the α sequence and its fixed point α* (Eq. 42), and the
// pairwise rate gaps whose exponential decay is the theorem's content.
package convergence

import (
	"errors"
	"math"
)

// Config parameterises the discrete model. Rates are in packets per second;
// the model advances in steps of TauPrime (both the rate-increase timer T
// and the α-update interval, which the defaults of [31] set to the same
// 55 µs).
type Config struct {
	N            int
	C            float64 // bottleneck capacity, packets/s
	RAI          float64 // additive increase per time unit, packets/s
	G            float64 // DCTCP gain g
	QECN         float64 // queue level that triggers a synchronised mark, packets
	TauPrime     float64 // time unit, s
	InitialRates []float64
	// InitialAlpha defaults to 1 (the DCQCN initial value).
	InitialAlpha float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return errors.New("convergence: N must be positive")
	case c.C <= 0 || c.RAI <= 0:
		return errors.New("convergence: C and RAI must be positive")
	case c.G <= 0 || c.G >= 1:
		return errors.New("convergence: g must be in (0,1)")
	case c.QECN <= 0:
		return errors.New("convergence: QECN must be positive")
	case c.TauPrime <= 0:
		return errors.New("convergence: TauPrime must be positive")
	case c.InitialRates != nil && len(c.InitialRates) != c.N:
		return errors.New("convergence: len(InitialRates) != N")
	}
	return nil
}

// Default returns the model at the [31] defaults on a 40 Gb/s link with
// 1 KB packets and a 200-packet marking threshold.
func Default(n int) Config {
	return Config{
		N:        n,
		C:        5e6,
		RAI:      5e3,
		G:        1.0 / 256,
		QECN:     200,
		TauPrime: 55e-6,
	}
}

// Cycle records the state at one synchronised marking peak T_k.
type Cycle struct {
	// Time is the peak time in seconds.
	Time float64
	// DeltaT is the cycle length ΔT_k in τ' units.
	DeltaT int
	// Rates are the per-flow peak rates R_C(T_k).
	Rates []float64
	// Alphas are the per-flow α(T_k) just before the cut.
	Alphas []float64
	// MaxGap is max_{i,j} |R_C^i - R_C^j| at the peak.
	MaxGap float64
	// AlphaGap is max_{i,j} |α^i - α^j| at the peak.
	AlphaGap float64
}

// Run simulates the discrete model until the requested number of marking
// cycles have completed and returns one record per cycle.
func Run(cfg Config, cycles int) ([]Cycle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	rc := make([]float64, n)
	rt := make([]float64, n)
	alpha := make([]float64, n)
	a0 := cfg.InitialAlpha
	if a0 == 0 {
		a0 = 1
	}
	for i := range rc {
		r := cfg.C // line-rate start per the DCQCN spec
		if cfg.InitialRates != nil {
			r = cfg.InitialRates[i]
		}
		rc[i] = r
		rt[i] = r
		alpha[i] = a0
	}

	var out []Cycle
	q := 0.0
	step := 0
	sinceCut := 0
	maxSteps := cycles*100000 + 100000 // hard bound against degenerate configs
	for len(out) < cycles && step < maxSteps {
		sum := 0.0
		for i := range rc {
			sum += rc[i]
		}
		q += (sum - cfg.C) * cfg.TauPrime
		if q < 0 {
			q = 0
		}
		if q >= cfg.QECN {
			// Synchronised mark: record the peak, then every flow cuts
			// (Eq. 1 with the footnote-3 simplification R_T = R_C).
			cyc := Cycle{
				Time:   float64(step) * cfg.TauPrime,
				DeltaT: sinceCut,
				Rates:  append([]float64(nil), rc...),
				Alphas: append([]float64(nil), alpha...),
			}
			cyc.MaxGap = spread(rc)
			cyc.AlphaGap = spread(alpha)
			out = append(out, cyc)
			// Footnote 3 simplification: R_T is reset to the post-cut
			// R_C, so recovery does not reopen the pre-cut gap and
			// Eq. 15 holds: R_T(T_{k+1}) = (1-α/2)R_C(T_k) + (ΔT-1)R_AI.
			for i := range rc {
				rc[i] *= 1 - alpha[i]/2
				rt[i] = rc[i]
				alpha[i] = (1-cfg.G)*alpha[i] + cfg.G
			}
			q = 0
			sinceCut = 0
		} else {
			// One unit of additive increase (Eq. 35-36) and α decay
			// (Eq. 2: no feedback in this τ' interval).
			for i := range rc {
				rt[i] += cfg.RAI
				rc[i] = (rc[i] + rt[i]) / 2
				if rc[i] > cfg.C*float64(n) {
					rc[i] = cfg.C * float64(n)
				}
				alpha[i] *= 1 - cfg.G
			}
			sinceCut++
		}
		step++
	}
	if len(out) < cycles {
		return out, errors.New("convergence: model did not reach the requested number of cycles")
	}
	return out, nil
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

// AlphaFixedPoint solves Eq. 42, α* = (1-g)^{ΔT*}((1-g)α* + g), jointly
// with the cycle-length estimate of Eq. 40-41, by fixed-point iteration.
// It returns α* and the corresponding ΔT* (in τ' units).
func AlphaFixedPoint(cfg Config) (alphaStar float64, deltaTStar float64, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	// Eq. 41: t ≤ (−1 + sqrt(1 + 8·K/(N·R_AI·τ')))/2, the ramp time from
	// ΣR = C to the queue reaching the marking threshold.
	tRamp := (-1 + math.Sqrt(1+8*cfg.QECN/(float64(cfg.N)*cfg.RAI*cfg.TauPrime))) / 2
	alpha := 1.0
	for iter := 0; iter < 10000; iter++ {
		// Eq. 40: ΔT = 2 + (t/2 + C/(2N R_AI)) α.
		dt := 2 + (tRamp/2+cfg.C/(2*float64(cfg.N)*cfg.RAI))*alpha
		next := math.Pow(1-cfg.G, dt) * ((1-cfg.G)*alpha + cfg.G)
		if math.Abs(next-alpha) < 1e-14 {
			return next, 2 + (tRamp/2+cfg.C/(2*float64(cfg.N)*cfg.RAI))*next, nil
		}
		alpha = next
	}
	return 0, 0, errors.New("convergence: α* iteration did not converge")
}

// GapDecayRate fits the per-cycle geometric decay factor of the peak rate
// gap over the given cycles (ignoring cycles whose gap is already below
// floor, where float noise dominates). A value well below 1 demonstrates
// Theorem 2's exponential convergence.
func GapDecayRate(cycles []Cycle, floor float64) float64 {
	var ratios []float64
	for i := 1; i < len(cycles); i++ {
		prev, cur := cycles[i-1].MaxGap, cycles[i].MaxGap
		if prev <= floor || cur <= floor {
			continue
		}
		ratios = append(ratios, cur/prev)
	}
	if len(ratios) == 0 {
		return 0
	}
	// Geometric mean.
	s := 0.0
	for _, r := range ratios {
		s += math.Log(r)
	}
	return math.Exp(s / float64(len(ratios)))
}
