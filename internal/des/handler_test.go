package des

import (
	"testing"
)

// recorder is a test Handler that logs firing times and can chain itself.
type recorder struct {
	sim   *Simulator
	times []Time
	left  int      // remaining self-reschedules
	gap   Duration // reschedule gap
}

func (r *recorder) OnEvent(arg any) {
	r.times = append(r.times, r.sim.Now())
	if r.left > 0 {
		r.left--
		r.sim.ScheduleHandler(r.gap, r, arg)
	}
}

func TestScheduleHandlerOrdering(t *testing.T) {
	s := New()
	var order []int
	h := handlerFunc(func(arg any) { order = append(order, arg.(int)) })
	s.ScheduleHandler(30, h, 3)
	s.Schedule(10, func() { order = append(order, 1) }) // closure API interleaves
	s.ScheduleHandler(20, h, 2)
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(arg any)

func (f handlerFunc) OnEvent(arg any) { f(arg) }

func TestHandlerSelfReschedule(t *testing.T) {
	s := New()
	r := &recorder{sim: s, left: 4, gap: 10}
	s.ScheduleHandler(5, r, nil)
	s.Run()
	want := []Time{5, 15, 25, 35, 45}
	if len(r.times) != len(want) {
		t.Fatalf("fired %v, want %v", r.times, want)
	}
	for i := range want {
		if r.times[i] != want[i] {
			t.Fatalf("fired %v, want %v", r.times, want)
		}
	}
	if s.FreeEvents() == 0 {
		t.Error("no events returned to the free list after the run")
	}
}

func TestEventRefCancel(t *testing.T) {
	s := New()
	fired := 0
	h := handlerFunc(func(any) { fired++ })
	ref := s.ScheduleHandler(10, h, nil)
	if !ref.Pending() {
		t.Error("Pending() = false for a queued event")
	}
	ref.Cancel()
	if ref.Pending() {
		t.Error("Pending() = true after Cancel")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after Cancel, want 0 (eager removal)", s.Pending())
	}
	ref.Cancel() // double cancel must be a no-op
	s.Run()
	if fired != 0 {
		t.Error("cancelled handler event fired")
	}
}

func TestEventRefCancelAfterFire(t *testing.T) {
	s := New()
	fired := 0
	h := handlerFunc(func(any) { fired++ })
	ref := s.ScheduleHandler(10, h, nil)
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	ref.Cancel() // stale: must not touch the recycled event
	// The recycled struct now backs a new event; the stale ref must not
	// cancel it.
	ref2 := s.ScheduleHandler(10, h, nil)
	ref.Cancel()
	if !ref2.Pending() {
		t.Error("stale ref cancelled an unrelated recycled event")
	}
	s.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestEventRefZeroValue(t *testing.T) {
	var ref EventRef
	ref.Cancel() // must not panic
	if ref.Pending() {
		t.Error("zero EventRef reports Pending")
	}
}

// Cancelling the firing event from inside its own handler is a no-op: the
// ref went stale the moment the event was dispatched.
func TestCancelInsideOwnHandler(t *testing.T) {
	s := New()
	fired := 0
	var ref EventRef
	h := handlerFunc(func(any) {
		fired++
		ref.Cancel()
	})
	ref = s.ScheduleHandler(10, h, nil)
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

// An event cancelling a later handler event from inside a handler.
func TestCancelOtherFromHandler(t *testing.T) {
	s := New()
	fired := 0
	h := handlerFunc(func(any) { fired++ })
	victim := s.ScheduleHandler(20, h, nil)
	s.ScheduleHandler(10, handlerFunc(func(any) { victim.Cancel() }), nil)
	s.Run()
	if fired != 0 {
		t.Error("event fired despite being cancelled by an earlier handler event")
	}
}

// Satellite: closure-API Cancel removes the event from the heap immediately
// instead of letting it linger until its fire time.
func TestClosureCancelRemovesEagerly(t *testing.T) {
	s := New()
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, s.Schedule(Duration(1000+i), func() {}))
	}
	for _, e := range evs {
		e.Cancel()
		e.Cancel() // double Cancel is safe
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after cancelling all, want 0", s.Pending())
	}
	if n := s.RunUntil(10000); n != 0 {
		t.Errorf("fired %d cancelled events", n)
	}
}

func TestClosureCancelAfterFire(t *testing.T) {
	s := New()
	e := s.Schedule(10, func() {})
	s.Run()
	e.Cancel() // after fire: marks cancelled, no heap op, no panic
	if !e.Cancelled() {
		t.Error("Cancelled() = false after cancel-after-fire")
	}
	// The queue must still work.
	fired := false
	s.Schedule(10, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("follow-up event did not fire")
	}
}

// Stopping a ticker from within its own fire callback must stick even
// though the firing event is already being dispatched.
func TestTickerStopInsideFire(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.Every(5, 10, func() {
		count++
		tk.Stop()
	})
	s.Run()
	if count != 1 {
		t.Errorf("ticker fired %d times after Stop inside fire, want 1", count)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after ticker stop, want 0", s.Pending())
	}
}

// Mixing cancel and reschedule must keep the pool consistent: events fire
// exactly once, in order, for long cancel-heavy runs.
func TestPooledCancelRescheduleChurn(t *testing.T) {
	s := New()
	fired := 0
	h := handlerFunc(func(any) { fired++ })
	var live []EventRef
	for round := 0; round < 1000; round++ {
		live = append(live, s.ScheduleHandler(Duration(10+round%7), h, nil))
		if round%3 == 0 && len(live) > 0 {
			live[0].Cancel()
			live = live[1:]
		}
		if round%11 == 0 {
			s.RunUntil(s.Now() + 5)
		}
	}
	s.Run()
	// 1000 scheduled; ~334 cancelled (but some may have fired before their
	// cancel — Cancel is then a stale no-op). The invariant is no double
	// fire and no lost live event: fired + still-pending-cancels == 1000.
	if fired > 1000 || fired < 600 {
		t.Errorf("fired = %d, outside plausible [600,1000]", fired)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d at end, want 0", s.Pending())
	}
}

// Alloc-regression gate: the handler path must not allocate in steady state.
// Covers ScheduleHandler/fire/recycle, cancel/recycle, and ticker ticks.
func TestHandlerPathAllocFree(t *testing.T) {
	s := New()
	h := handlerFunc(func(any) {})
	drive := func() {
		for i := 0; i < 64; i++ {
			s.ScheduleHandler(Duration(i%9), h, i%4)
		}
		ref := s.ScheduleHandler(1000, h, nil)
		ref.Cancel()
		s.Run()
	}
	drive() // warm the free list
	if allocs := testing.AllocsPerRun(50, drive); allocs != 0 {
		t.Errorf("handler event path allocates %.1f allocs/run, want 0", allocs)
	}
}

func TestTickerAllocFree(t *testing.T) {
	s := New()
	ticks := 0
	tk := s.Every(0, 10, func() { ticks++ })
	s.RunUntil(1000) // warm up
	drive := func() { s.RunUntil(s.Now() + 1000) }
	if allocs := testing.AllocsPerRun(50, drive); allocs != 0 {
		t.Errorf("ticker path allocates %.1f allocs/run, want 0", allocs)
	}
	tk.Stop()
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// chainHandler self-reschedules until its budget runs out, counting fires.
type chainHandler struct {
	sim  *Simulator
	n    int
	left int
}

func (h *chainHandler) OnEvent(any) {
	h.n++
	if h.left > 0 {
		h.left--
		h.sim.ScheduleHandler(1, h, nil)
	}
}

// BenchmarkHandlerEvents measures raw DES throughput on the pooled handler
// path: one self-rescheduling event per iteration (events/sec = 1e9/ns_op).
func BenchmarkHandlerEvents(b *testing.B) {
	s := New()
	h := &chainHandler{sim: s, left: b.N - 1}
	s.ScheduleHandler(0, h, nil)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	if h.n != b.N {
		b.Fatalf("fired %d, want %d", h.n, b.N)
	}
}

// BenchmarkClosureEvents is the legacy closure path, for comparison.
func BenchmarkClosureEvents(b *testing.B) {
	s := New()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			s.Schedule(1, fn)
		}
	}
	s.Schedule(0, fn)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	if n != b.N {
		b.Fatalf("fired %d, want %d", n, b.N)
	}
}
