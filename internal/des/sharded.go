// Sharded parallel execution: one network simulated by N shard simulators
// plus a control simulator, synchronised with a conservative time-window
// scheme. The lookahead is the minimum propagation delay of any link that
// crosses a shard boundary: a shard that has processed everything before
// time T cannot receive a cross-shard event earlier than T+lookahead, so
// all shards may run the window [T, T+lookahead) concurrently without ever
// seeing an event in their past (the classic conservative bound of
// null-message / time-window parallel DES).
//
// The control simulator runs stop-the-world between windows: samplers,
// probe drivers, warmup/horizon hooks and workload arm chains observe the
// network only while every shard worker is parked at the barrier, so they
// need no locking and see exactly the state a serial run would show them.
package des

import (
	"sync"
	"time"
)

// maxTime is the largest representable simulation time.
const maxTime = Time(1<<63 - 1)

// ShardStats accumulates per-shard execution counters across one
// ShardedLoop's lifetime.
type ShardStats struct {
	Events  uint64        // events fired on this shard
	Busy    time.Duration // wall-clock spent executing windows
	Barrier time.Duration // wall-clock spent waiting for the slowest shard
}

// ShardedLoop coordinates N shard simulators and one control simulator.
// Shards advance in windows bounded by the lookahead; cross-shard traffic
// is queued in mailboxes by the owning netsim layer and injected by the
// Drain callback, which runs on the coordinator goroutine while all
// workers are parked.
type ShardedLoop struct {
	Control   *Simulator   // global events: samplers, hooks, arm chains
	Shards    []*Simulator // one per shard, disjoint sequence spaces
	Lookahead Duration     // min cross-shard link propagation delay, > 0
	Drain     func()       // inject queued mailbox items; may be nil

	windows uint64
	stats   []ShardStats

	workers []*shardWorker
	wg      sync.WaitGroup
}

// shardWorker is one persistent goroutine bound to a shard simulator.
type shardWorker struct {
	sim  *Simulator
	run  chan Time // next window end (inclusive); closed to terminate
	done chan windowResult
}

type windowResult struct {
	fired uint64
	busy  time.Duration
}

func (w *shardWorker) loop() {
	for end := range w.run {
		t0 := time.Now()
		fired := w.sim.RunUntil(end)
		w.done <- windowResult{fired: fired, busy: time.Since(t0)}
	}
}

// Windows reports how many synchronisation windows have been executed.
func (l *ShardedLoop) Windows() uint64 { return l.windows }

// Stats returns a snapshot of the per-shard counters.
func (l *ShardedLoop) Stats() []ShardStats {
	out := make([]ShardStats, len(l.stats))
	copy(out, l.stats)
	return out
}

// StatAt returns shard i's counters without allocating; zero before the
// first window.
func (l *ShardedLoop) StatAt(i int) ShardStats {
	if i >= len(l.stats) {
		return ShardStats{}
	}
	return l.stats[i]
}

func (l *ShardedLoop) start() {
	if l.workers != nil {
		return
	}
	if l.Lookahead <= 0 {
		panic("des: ShardedLoop requires a positive lookahead")
	}
	l.stats = make([]ShardStats, len(l.Shards))
	l.workers = make([]*shardWorker, len(l.Shards))
	for i, s := range l.Shards {
		w := &shardWorker{sim: s, run: make(chan Time, 1), done: make(chan windowResult, 1)}
		l.workers[i] = w
		go w.loop()
	}
}

// Close terminates the worker goroutines. The loop can be restarted by the
// next RunUntil; Close exists so short-lived networks do not leak parked
// goroutines.
func (l *ShardedLoop) Close() {
	for _, w := range l.workers {
		if w != nil {
			close(w.run)
		}
	}
	l.workers = nil
}

// RunUntil advances the whole sharded simulation to end (inclusive), then
// leaves every simulator's clock at end. The window protocol per round:
//
//  1. Drain mailboxes (coordinator only; all workers parked).
//  2. T = earliest shard event, G = earliest control event.
//  3. If min(T, G) > end, stop.
//  4. W = min(T+lookahead, G, end+1): the exclusive window bound. Shards
//     run RunUntil(W-1) in parallel — every event they fire is >= T, so any
//     cross-shard send it causes delivers at >= T+lookahead = beyond the
//     window; nothing a peer shard does this round can affect them.
//  5. If G == W <= end, fire control events at G stop-the-world. Control
//     runs before shard events at the same instant, matching the serial
//     engine where samplers (scheduled a full cadence earlier) carry lower
//     sequence numbers than same-instant datapath events.
func (l *ShardedLoop) RunUntil(end Time) {
	l.start()
	for {
		if l.Drain != nil {
			l.Drain()
		}
		T := maxTime
		for _, s := range l.Shards {
			if t, ok := s.NextEventTime(); ok && t < T {
				T = t
			}
		}
		G := maxTime
		if g, ok := l.Control.NextEventTime(); ok {
			G = g
		}
		if T > end && G > end {
			break
		}
		W := end + 1
		if T <= end {
			// w <= T only on int64 overflow of a huge lookahead; treat
			// that as "unbounded window".
			if w := T.Add(l.Lookahead); w > T && w < W {
				W = w
			}
		}
		if G <= end && G < W {
			W = G
		}
		l.runWindow(W - 1)
		l.windows++
		if G == W && G <= end {
			// Control events observe and drive shard-owned state (reading
			// port counters, starting flows); align every shard clock with
			// the control time first so anything they schedule or send is
			// stamped at G, not at a stale window boundary.
			for _, s := range l.Shards {
				s.AdvanceTo(G)
			}
			l.Control.RunUntil(G)
		}
	}
	// Converge every clock on end so post-run reads (watchdog totals,
	// monitors) see the same horizon a serial run would.
	for _, s := range l.Shards {
		s.RunUntil(end)
	}
	l.Control.RunUntil(end)
}

// runWindow executes one window on every shard that has work. Idle shards
// (no event <= upTo) are skipped — their state is already what running the
// window would produce, and their clock catches up lazily. When exactly one
// shard is active the window runs inline on the coordinator goroutine,
// avoiding a context switch for the common lopsided-partition case.
func (l *ShardedLoop) runWindow(upTo Time) {
	active := -1
	n := 0
	for i, s := range l.Shards {
		if t, ok := s.NextEventTime(); ok && t <= upTo {
			active = i
			n++
		}
	}
	switch n {
	case 0:
		return
	case 1:
		t0 := time.Now()
		fired := l.Shards[active].RunUntil(upTo)
		st := &l.stats[active]
		st.Events += fired
		st.Busy += time.Since(t0)
		return
	}
	t0 := time.Now()
	dispatched := make([]bool, len(l.workers))
	for i, s := range l.Shards {
		if t, ok := s.NextEventTime(); ok && t <= upTo {
			l.workers[i].run <- upTo
			dispatched[i] = true
		}
	}
	for i, w := range l.workers {
		if !dispatched[i] {
			continue
		}
		res := <-w.done
		st := &l.stats[i]
		st.Events += res.fired
		st.Busy += res.busy
		if wait := time.Since(t0) - res.busy; wait > 0 {
			st.Barrier += wait
		}
	}
}
