// Package des provides a deterministic discrete-event simulation engine.
//
// The engine is the foundation of the packet-level network simulator: it owns
// a virtual clock with nanosecond resolution and a priority queue of pending
// events. Events scheduled for the same instant fire in the order they were
// scheduled, which keeps runs bit-for-bit reproducible.
//
// Two scheduling APIs exist. The closure API (Schedule, At) allocates a fresh
// Event per call and returns a *Event handle that stays valid forever. The
// handler API (ScheduleHandler, AtHandler) is the hot path: it dispatches to a
// long-lived Handler with an opaque argument, recycles Event structs through a
// free list, and allocates nothing in steady state. Handler-path events are
// addressed through generation-checked EventRef values, so a stale ref held
// after the event fired (or was cancelled) is a safe no-op.
package des

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulation time in nanoseconds since the start of the
// run. The zero value is the beginning of the simulation.
type Time int64

// Duration is a span of simulation time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package but for simulation time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Seconds reports the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// DurationFromSeconds converts seconds to a Duration, rounding to the nearest
// nanosecond.
func DurationFromSeconds(s float64) Duration {
	if s < 0 {
		return Duration(s*1e9 - 0.5)
	}
	return Duration(s*1e9 + 0.5)
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string     { return fmt.Sprintf("%.6fms", float64(t)/1e6) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Handler is the allocation-free event callback: a long-lived object (port,
// sender, ticker) that receives the opaque argument it was scheduled with.
// Handlers with several periodic duties conventionally dispatch on a small
// integer argument; values 0-255 box without allocating.
type Handler interface {
	OnEvent(arg any)
}

// Event is a handle to a scheduled callback. Closure-API events can be
// cancelled before they fire; cancelling a fired or already-cancelled event
// is a no-op. Cancel removes the event from the queue immediately, so
// cancelled events cost nothing at drain time.
type Event struct {
	time Time
	sub  Time // schedule time: the clock value when the event was queued
	seq  uint64
	fn   func()  // closure path
	h    Handler // handler path
	arg  any

	sim       *Simulator
	index     int    // heap index, -1 once removed
	gen       uint32 // bumped when a pooled event is recycled
	pooled    bool   // owned by the simulator free list
	cancelled bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.time }

// Cancel prevents the event from firing. It is safe to call at any point,
// including twice or after the event fired. A still-queued event is removed
// from the heap eagerly via its stored index.
func (e *Event) Cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 && e.sim != nil {
		heap.Remove(&e.sim.queue, e.index)
	}
}

// Cancelled reports whether Cancel has been called.
func (e *Event) Cancelled() bool { return e.cancelled }

// EventRef is a generation-checked handle to a handler-path event. The zero
// value refers to nothing; Cancel and Pending on it are no-ops. A ref that
// outlives its event (fired, cancelled, or recycled) goes stale and is
// likewise inert, so callers may keep refs around without bookkeeping.
type EventRef struct {
	e   *Event
	gen uint32
}

// Pending reports whether the referenced event is still queued.
func (r EventRef) Pending() bool {
	return r.e != nil && r.e.gen == r.gen && r.e.index >= 0
}

// Cancel removes the referenced event from the queue and recycles it. Stale
// or zero refs are no-ops, so double-Cancel and cancel-after-fire are safe.
func (r EventRef) Cancel() {
	e := r.e
	if e == nil || e.gen != r.gen {
		return
	}
	if e.index >= 0 {
		heap.Remove(&e.sim.queue, e.index)
		e.sim.release(e)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

// Less orders by (time, sub, seq). In a single-simulator run sub (the
// clock value at schedule time) is non-decreasing in seq, so the order is
// exactly the historical (time, seq) order. The sub key exists for sharded
// runs: a cross-shard delivery injected with its producer-side send time
// slots into the consumer heap at the same position it would have held in
// a serial run, independent of when the mailbox was drained.
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].sub != h[j].sub {
		return h[i].sub < h[j].sub
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and event queue. The zero value is ready
// to use.
type Simulator struct {
	now       Time
	queue     eventHeap
	free      []*Event // recycled handler-path events
	seq       uint64
	processed uint64
	running   bool
	stopped   bool
}

// New returns a fresh simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are queued. Cancelled events are removed
// eagerly and never counted.
func (s *Simulator) Pending() int { return len(s.queue) }

// FreeEvents reports the size of the event free list (tests, monitoring).
func (s *Simulator) FreeEvents() int { return len(s.free) }

// alloc takes an Event from the free list, or mints one on a cold start.
func (s *Simulator) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &Event{sim: s, pooled: true}
}

// release recycles a pooled event, invalidating every outstanding EventRef
// to this incarnation.
func (s *Simulator) release(e *Event) {
	e.gen++
	e.fn, e.h, e.arg = nil, nil, nil
	e.cancelled = false
	s.free = append(s.free, e)
}

// Schedule runs fn after delay d. A negative delay is an error in the caller;
// it panics to surface the bug immediately.
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v at %v", d, s.now))
	}
	return s.At(s.now.Add(d), fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: schedule in the past: %v < %v", t, s.now))
	}
	e := &Event{time: t, sub: s.now, seq: s.seq, fn: fn, sim: s}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleHandler runs h.OnEvent(arg) after delay d through the pooled,
// allocation-free path. Negative delays panic, as with Schedule.
func (s *Simulator) ScheduleHandler(d Duration, h Handler, arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v at %v", d, s.now))
	}
	return s.AtHandler(s.now.Add(d), h, arg)
}

// AtHandler runs h.OnEvent(arg) at absolute time t through the pooled path.
func (s *Simulator) AtHandler(t Time, h Handler, arg any) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("des: schedule in the past: %v < %v", t, s.now))
	}
	if h == nil {
		panic("des: nil Handler")
	}
	e := s.alloc()
	e.time, e.sub, e.seq, e.h, e.arg = t, s.now, s.seq, h, arg
	s.seq++
	heap.Push(&s.queue, e)
	return EventRef{e: e, gen: e.gen}
}

// ScheduleHandlerSeq is ScheduleHandler with a caller-minted sequence key.
// Sharded runs mint keys per network node rather than per simulator, so two
// events scheduled by the same node sort identically whether the node runs
// on the serial engine or on any shard — tie order becomes a property of
// the network, not of the partition.
func (s *Simulator) ScheduleHandlerSeq(d Duration, seq uint64, h Handler, arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v at %v", d, s.now))
	}
	return s.AtHandlerSeq(s.now.Add(d), seq, h, arg)
}

// AtHandlerSeq is AtHandler with a caller-minted sequence key (see
// ScheduleHandlerSeq). The sub key is still the current clock value.
func (s *Simulator) AtHandlerSeq(t Time, seq uint64, h Handler, arg any) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("des: schedule in the past: %v < %v", t, s.now))
	}
	if h == nil {
		panic("des: nil Handler")
	}
	e := s.alloc()
	e.time, e.sub, e.seq, e.h, e.arg = t, s.now, seq, h, arg
	heap.Push(&s.queue, e)
	return EventRef{e: e, gen: e.gen}
}

// SetSeqBase offsets the simulator's sequence counter. Sharded runs give
// every shard simulator a disjoint sequence space so that event keys from
// different shards never collide and tie order across shards is fixed by
// the shard's position, not by scheduling races. Must be called before any
// event is scheduled.
func (s *Simulator) SetSeqBase(base uint64) {
	if s.seq != 0 || len(s.queue) > 0 {
		panic("des: SetSeqBase after events were scheduled")
	}
	s.seq = base
}

// NextEventTime reports the firing time of the earliest queued event.
// ok is false when the queue is empty.
func (s *Simulator) NextEventTime() (t Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].time, true
}

// NextSeq consumes and returns the next sequence number without scheduling
// anything. Sharded runs use it on the producer side of a cross-shard
// mailbox: the send keeps the (sub, seq) key it would have received had the
// delivery been scheduled locally, and InjectAt replays that key on the
// consumer simulator.
func (s *Simulator) NextSeq() uint64 {
	n := s.seq
	s.seq++
	return n
}

// InjectAt schedules h.OnEvent(arg) at absolute time t with an explicit
// (sub, seq) ordering key, on the pooled path. It is the consumer half of a
// cross-shard mailbox: the key was minted by the producer simulator, so the
// injected event sorts exactly where a locally scheduled one would have.
// The explicit seq is not drawn from this simulator's counter; disjoint
// per-shard sequence spaces (SetSeqBase) keep keys collision-free.
func (s *Simulator) InjectAt(t, sub Time, seq uint64, h Handler, arg any) {
	if t < s.now {
		panic(fmt.Sprintf("des: inject in the past: %v < %v", t, s.now))
	}
	if h == nil {
		panic("des: nil Handler")
	}
	e := s.alloc()
	e.time, e.sub, e.seq, e.h, e.arg = t, sub, seq, h, arg
	heap.Push(&s.queue, e)
}

// AdvanceTo moves the clock forward to t without firing anything. The
// sharded coordinator calls it on every shard simulator before running a
// control window at t, so code driven by control events (flow starts,
// samplers, fault flaps) that touches shard-owned ports reads clocks that
// agree with the control time instead of lagging one window behind. Events
// queued at exactly t stay queued — they fire in the next shard window,
// which is the documented control-before-shard tie order. Moving past a
// queued event would silently reorder the run, so that panics; a clock
// already at or beyond t is left untouched.
func (s *Simulator) AdvanceTo(t Time) {
	if t <= s.now {
		return
	}
	if len(s.queue) > 0 && s.queue[0].time < t {
		panic(fmt.Sprintf("des: AdvanceTo(%v) would skip event at %v", t, s.queue[0].time))
	}
	s.now = t
}

// Stop makes Run and RunUntil return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events until the queue is empty or Stop is called. The clock
// finishes at the time of the last fired event.
func (s *Simulator) Run() { s.run(Time(1<<63-1), false) }

// RunUntil processes events with time <= end, advancing the clock as it goes.
// The clock finishes at end (or at the last fired event if Stop was called).
// It returns the number of events fired by this call.
func (s *Simulator) RunUntil(end Time) uint64 { return s.run(end, true) }

func (s *Simulator) run(end Time, advance bool) uint64 {
	if s.running {
		panic("des: RunUntil re-entered from within an event")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	var fired uint64
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.time > end {
			break
		}
		heap.Pop(&s.queue)
		if e.cancelled {
			// Cancel removes events eagerly, so this only catches an event
			// cancelled through a stale *Event handle mid-pop; skip it.
			if e.pooled {
				s.release(e)
			}
			continue
		}
		s.now = e.time
		if e.h != nil {
			// Recycle before dispatch: the handler may reschedule and get
			// this struct back, and a ref to the firing incarnation held by
			// user code is already stale (cancel-inside-fn is a no-op).
			h, arg := e.h, e.arg
			if e.pooled {
				s.release(e)
			}
			h.OnEvent(arg)
		} else {
			e.fn()
		}
		s.processed++
		fired++
	}
	if advance && s.now < end && !s.stopped {
		// Advance the clock even if no event lands exactly at end, so a
		// subsequent Schedule(0, ...) happens at the requested horizon.
		if len(s.queue) == 0 || s.queue[0].time > end {
			s.now = end
		}
	}
	return fired
}

// Every schedules fn to run at t0 and then every period thereafter until the
// returned Ticker is stopped. fn runs before the next firing is scheduled, so
// it may safely stop the ticker. Ticker firings ride the pooled event path,
// so a steady-state ticker allocates nothing per tick.
func (s *Simulator) Every(t0 Time, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: non-positive ticker period")
	}
	tk := &Ticker{sim: s, period: period, fn: fn}
	tk.ev = s.AtHandler(t0, tk, nil)
	return tk
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	sim     *Simulator
	period  Duration
	fn      func()
	ev      EventRef
	stopped bool
}

// OnEvent implements Handler.
func (tk *Ticker) OnEvent(any) {
	if tk.stopped {
		return
	}
	tk.fn()
	if tk.stopped {
		return
	}
	tk.ev = tk.sim.ScheduleHandler(tk.period, tk, nil)
}

// Stop cancels all future firings.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.ev.Cancel()
}
