package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	if got := t0.Add(500); got != Time(1500) {
		t.Errorf("Add: got %d, want 1500", got)
	}
	if got := Time(1500).Sub(t0); got != Duration(500) {
		t.Errorf("Sub: got %d, want 500", got)
	}
	if got := (2 * Millisecond).Seconds(); got != 0.002 {
		t.Errorf("Seconds: got %g, want 0.002", got)
	}
	if got := DurationFromSeconds(1e-6); got != Microsecond {
		t.Errorf("DurationFromSeconds: got %d, want %d", got, Microsecond)
	}
	if got := DurationFromSeconds(-1e-6); got != -Microsecond {
		t.Errorf("DurationFromSeconds negative: got %d, want %d", got, -Microsecond)
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("final time = %v, want 30", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(10, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of order at %d: %v", i, order[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(5, func() {
		times = append(times, s.Now())
		s.Schedule(5, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 5 || times[1] != 10 {
		t.Fatalf("times = %v, want [5 10]", times)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(10, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Processed() != 0 {
		t.Errorf("Processed = %d, want 0", s.Processed())
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(20, func() { fired = true })
	s.Schedule(10, func() { e.Cancel() })
	s.Run()
	if fired {
		t.Error("event fired despite being cancelled by an earlier event")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		d := d
		s.Schedule(d, func() { fired = append(fired, s.Now()) })
	}
	n := s.RunUntil(25)
	if n != 2 {
		t.Errorf("fired %d events, want 2", n)
	}
	if s.Now() != 25 {
		t.Errorf("Now = %v, want 25 (clock advances to horizon)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("total fired %d, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(10, func() { count++; s.Stop() })
	s.Schedule(20, func() { count++ })
	s.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	// A fresh Run resumes.
	s.Run()
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("Schedule(-1) did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestTicker(t *testing.T) {
	s := New()
	var times []Time
	var tk *Ticker
	tk = s.Every(5, 10, func() {
		times = append(times, s.Now())
		if len(times) == 3 {
			tk.Stop()
		}
	})
	s.Run()
	want := []Time{5, 15, 25}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestTickerStopBeforeFirstFire(t *testing.T) {
	s := New()
	count := 0
	tk := s.Every(5, 10, func() { count++ })
	tk.Stop()
	s.Run()
	if count != 0 {
		t.Errorf("stopped ticker fired %d times", count)
	}
}

// Property: events always fire in non-decreasing time order regardless of the
// insertion order, including events inserted while the simulation runs.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New()
		var fired []Time
		for _, d := range delays {
			s.Schedule(Duration(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// The set of firing times must equal the set of requested delays.
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: two simulators fed the same pseudo-random schedule fire the same
// number of events at the same final clock (determinism).
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, Time) {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var recurse func()
		n := 0
		recurse = func() {
			n++
			if n < 500 {
				s.Schedule(Duration(rng.Intn(100)), recurse)
				if rng.Intn(3) == 0 {
					s.Schedule(Duration(rng.Intn(100)), func() {})
				}
			}
		}
		s.Schedule(0, recurse)
		s.Run()
		return s.Processed(), s.Now()
	}
	for seed := int64(0); seed < 5; seed++ {
		n1, t1 := run(seed)
		n2, t2 := run(seed)
		if n1 != n2 || t1 != t2 {
			t.Fatalf("seed %d: run1=(%d,%v) run2=(%d,%v)", seed, n1, t1, n2, t2)
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Duration(i%1000), func() {})
		if s.Pending() > 1024 {
			s.RunUntil(s.Now() + 500)
		}
	}
	s.Run()
}
