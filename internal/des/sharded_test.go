package des

import (
	"sync"
	"testing"
)

// recorder logs (label, time) pairs through closures; the order across
// simulators is what the window protocol promises.
type step struct {
	label string
	at    Time
}

func TestShardedLoopWindowProtocol(t *testing.T) {
	control := New()
	s0, s1 := New(), New()
	s0.SetSeqBase(1 << 56)
	s1.SetSeqBase(2 << 56)

	// Shards in the same window run concurrently, so the log needs a lock
	// and assertions stick to the protocol's partial order: everything
	// before the control time fires first, the control event runs at the
	// barrier, and later shard events follow it.
	var mu sync.Mutex
	var log []step
	rec := func(sim *Simulator, label string) func() {
		return func() {
			mu.Lock()
			log = append(log, step{label, sim.Now()})
			mu.Unlock()
		}
	}

	s0.At(5, rec(s0, "s0@5"))
	s0.At(30, rec(s0, "s0@30"))
	s1.At(12, rec(s1, "s1@12"))
	s1.At(25, rec(s1, "s1@25"))
	control.At(25, rec(control, "ctl@25"))

	l := &ShardedLoop{Control: control, Shards: []*Simulator{s0, s1}, Lookahead: 10}
	l.RunUntil(40)
	l.Close()

	if len(log) != 5 {
		t.Fatalf("fired %d events, want 5: %+v", len(log), log)
	}
	pos := map[string]int{}
	for i, s := range log {
		pos[s.label] = i
	}
	ctl := pos["ctl@25"]
	for _, early := range []string{"s0@5", "s1@12"} {
		if pos[early] > ctl {
			t.Errorf("%s fired after the control event: %+v", early, log)
		}
	}
	for _, late := range []string{"s1@25", "s0@30"} {
		if pos[late] < ctl {
			t.Errorf("%s fired before the control event at the same or earlier instant: %+v", late, log)
		}
	}
	// All clocks converge on the horizon.
	for i, sim := range []*Simulator{control, s0, s1} {
		if sim.Now() != 40 {
			t.Errorf("simulator %d clock %v, want 40", i, sim.Now())
		}
	}
	if l.Windows() == 0 {
		t.Error("no windows recorded")
	}
}

func TestShardedLoopStatsCountEvents(t *testing.T) {
	control := New()
	s0, s1 := New(), New()
	s0.SetSeqBase(1 << 56)
	s1.SetSeqBase(2 << 56)
	for i := Time(0); i < 10; i++ {
		s0.At(i, func() {})
	}
	s1.At(3, func() {})
	l := &ShardedLoop{Control: control, Shards: []*Simulator{s0, s1}, Lookahead: 2}
	l.RunUntil(20)
	l.Close()
	st := l.Stats()
	if st[0].Events != 10 || st[1].Events != 1 {
		t.Errorf("per-shard events = %d, %d; want 10, 1", st[0].Events, st[1].Events)
	}
	if got := l.StatAt(0).Events; got != 10 {
		t.Errorf("StatAt(0).Events = %d, want 10", got)
	}
	if got := l.StatAt(99); got != (ShardStats{}) {
		t.Errorf("StatAt out of range = %+v, want zero", got)
	}
}

// Cross-window causality: an event a shard schedules during a window for a
// time beyond the window fires in a later round, at the right clock.
func TestShardedLoopReschedulesAcrossWindows(t *testing.T) {
	control := New()
	s0 := New()
	s0.SetSeqBase(1 << 56)
	var fired []Time
	var chain func()
	chain = func() {
		fired = append(fired, s0.Now())
		if len(fired) < 5 {
			s0.Schedule(7, chain)
		}
	}
	s0.At(0, chain)
	l := &ShardedLoop{Control: control, Shards: []*Simulator{s0}, Lookahead: 3}
	l.RunUntil(100)
	l.Close()
	want := []Time{0, 7, 14, 21, 28}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestShardedLoopRequiresLookahead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive lookahead")
		}
	}()
	l := &ShardedLoop{Control: New(), Shards: []*Simulator{New()}}
	l.RunUntil(10)
}

func TestAdvanceTo(t *testing.T) {
	s := New()
	s.AdvanceTo(50)
	if s.Now() != 50 {
		t.Fatalf("clock %v, want 50", s.Now())
	}
	// Backwards or equal: no-op.
	s.AdvanceTo(10)
	if s.Now() != 50 {
		t.Fatalf("clock moved backwards to %v", s.Now())
	}
	// An event exactly at the target stays queued.
	s.At(60, func() {})
	s.AdvanceTo(60)
	if s.Pending() != 1 {
		t.Fatalf("event at the advance target was consumed")
	}
	// Skipping past a queued event is a bug, caught loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when skipping a queued event")
		}
	}()
	s.AdvanceTo(61)
}

// Caller-minted keys beat simulator-counter keys deterministically: at an
// equal (time, sub) instant, the explicit seq decides the order no matter
// which call was issued first.
func TestAtHandlerSeqOrdersTies(t *testing.T) {
	s := New()
	var got []int
	h := handlerFunc(func(arg any) { got = append(got, arg.(int)) })
	s.AtHandlerSeq(10, 500, h, 2)
	s.AtHandlerSeq(10, 100, h, 1)
	s.ScheduleHandlerSeq(10, 900, h, 3)
	s.RunUntil(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", got)
	}
}
