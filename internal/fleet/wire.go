// Package fleet distributes a sweep grid over worker processes with
// fault tolerance as the design center. A Coordinator partitions the
// grid into shards and hands them out under TTL leases renewed by
// heartbeat; a Worker pulls a lease, runs its jobs through the sweep
// engine, and streams checkpoint rows back. The failure model:
//
//   - a worker that goes silent (SIGKILL, network partition, hang)
//     loses its lease when the TTL lapses; the shard's unfinished jobs
//     re-queue and run elsewhere. Re-execution is safe because per-job
//     seeds are derived from the stable job index (sweep.DeriveSeed),
//     so a re-run produces the byte-identical row and the merged fleet
//     checkpoint equals a serial -workers 1 run;
//   - a worker that loses its coordinator keeps working: rows spill to
//     a local JSONL spool, reconnection retries with jittered
//     exponential backoff, and the spool is re-ingested on reattach
//     (duplicates are deduped — rows are deterministic, so whichever
//     copy arrives first is the row);
//   - a coordinator killed mid-run leaves an append-only JSONL
//     checkpoint; restarting it with resume re-queues only the missing
//     jobs.
//
// The coordinator's HTTP API rides on the telemetry server (obs.Server
// Handle), so one port serves leases, /metrics, the aggregated
// /progress fleet job board, and pprof.
package fleet

import (
	"fmt"
	"hash/fnv"

	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
)

// Wire shapes for the coordinator's HTTP API. All bodies are JSON.
// Endpoints (mounted under /fleet/ by Coordinator.Attach):
//
//	GET  grid       -> GridInfo
//	POST lease      LeaseRequest -> LeaseResponse
//	POST heartbeat  HeartbeatRequest -> 204, or 410 Gone on a lost lease
//	POST results    ResultsRequest -> ResultsResponse
//	POST obs        ObsRequest -> 204

// GridInfo describes the coordinator's grid to a connecting worker.
// The worker rebuilds the job list from Spec and refuses to serve a
// grid whose job-ID hash differs from its own build — a version or
// flag mismatch would otherwise silently corrupt the checkpoint.
type GridInfo struct {
	// Spec is the opaque grid description (the coordinator cmd's grid
	// flags, verbatim) the worker feeds to its job builder.
	Spec map[string]string `json:"spec"`
	// NumJobs and GridHash fingerprint the expanded grid.
	NumJobs  int    `json:"num_jobs"`
	GridHash string `json:"grid_hash"`
	// BaseSeed is the sweep base seed; per-job seeds derive from it and
	// the stable job index on whichever worker runs the job.
	BaseSeed int64 `json:"base_seed"`
	// LeaseTTLMS is the lease TTL workers must out-heartbeat.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// LeaseRequest asks for a shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a shard, asks the worker to poll later, or
// reports the grid finished.
type LeaseResponse struct {
	// Done: every job has a checkpointed row; the worker should exit.
	Done bool `json:"done,omitempty"`
	// RetryMS: no shard is available right now (all leased) but the
	// grid is not finished; poll again after this many milliseconds.
	RetryMS int64 `json:"retry_ms,omitempty"`
	// Shard and Indices identify the leased jobs by stable grid index.
	Shard   int   `json:"shard"`
	Indices []int `json:"indices,omitempty"`
	// TTLMS is the lease TTL; heartbeat well inside it.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
}

// ResultsRequest streams completed rows. Workers post rows as jobs
// finish; Spooled marks rows replayed from a disconnect spool rather
// than streamed live.
type ResultsRequest struct {
	Worker  string         `json:"worker"`
	Shard   int            `json:"shard"`
	Spooled bool           `json:"spooled,omitempty"`
	Rows    []sweep.Result `json:"rows"`
}

// ResultsResponse acknowledges streamed rows. Duplicates are rows for
// jobs that already had one (benign: deterministic re-execution after
// a lease expiry, or a spool replay).
type ResultsResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// ObsRequest ships a worker's per-shard observability state: counter
// totals and histogram buckets, both mergeable in any order. Gauges are
// last-write-wins and purely informational.
type ObsRequest struct {
	Worker  string          `json:"worker"`
	Metrics []obs.Metric    `json:"metrics,omitempty"`
	Hists   []obs.HistState `json:"hists,omitempty"`
}

// HashJobIDs fingerprints a job-ID list: FNV-1a over the IDs joined by
// newlines, order-sensitive. Coordinator and worker must agree on it
// before any job runs.
func HashJobIDs(ids []string) string {
	h := fnv.New64a()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
