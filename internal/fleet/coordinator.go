package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
)

// CoordinatorConfig parameterises NewCoordinator. JobIDs and Spec are
// required; everything else has a usable default.
type CoordinatorConfig struct {
	// JobIDs is the full grid in stable index order — the same order a
	// serial sweep would run, which fixes every job's seed.
	JobIDs []string
	// Spec is the opaque grid description served to workers; they
	// rebuild the identical job list from it and verify the hash.
	Spec map[string]string
	// BaseSeed is handed to workers for per-job seed derivation.
	BaseSeed int64
	// LeaseTTL is how long a silent worker keeps its shard. Default 10s.
	LeaseTTL time.Duration
	// ShardSize is the number of jobs per lease. Default 8.
	ShardSize int
	// Sink, when non-nil, receives each accepted row exactly once, in
	// arrival order — the crash-safe streaming checkpoint (normally a
	// sweep.JSONLSink). Finalize later rewrites the canonical ordering.
	Sink sweep.Sink
	// Preloaded rows from a resumed checkpoint. Rows with an empty Err
	// whose job is in the grid count as done and are not re-leased;
	// failed and stale rows are ignored (their jobs run again).
	Preloaded []sweep.Result
	// Metrics, when non-nil, carries the fleet.* gauges/counters and
	// receives merged worker counter state.
	Metrics *obs.Registry
	// Hists, when non-nil, receives merged worker histogram state.
	Hists *obs.HistSet
	// Logf, when non-nil, receives coordinator log lines.
	Logf func(format string, args ...any)
}

// shard is one leaseable block of job indices.
type shard struct {
	id      int
	indices []int // still includes done jobs; pruned at lease/requeue
	worker  string
	expiry  time.Time
	leased  bool
	done    bool
}

// workerView is the coordinator's book on one worker.
type workerView struct {
	lastSeen time.Time
	shard    int // -1 when none
	rows     int
	spooled  int
}

// Coordinator owns the fleet's source of truth: which jobs have rows,
// which shards are leased to whom, and when those leases expire. All
// state is guarded by one mutex; handlers do no blocking work under it
// except the sink append (a single buffered write).
type Coordinator struct {
	cfg      CoordinatorConfig
	ttl      time.Duration
	gridHash string

	mu        sync.Mutex
	idToIndex map[string]int
	rows      map[int]sweep.Result
	preloaded int
	failed    int
	shards    []*shard
	queue     []int // shard ids ready to lease, FIFO
	workers   map[string]*workerView
	expired   int
	requeued  int
	dups      int
	spooled   int
	accepted  int
	sinkErr   error
	finished  bool

	done chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// Snapshot is the aggregated fleet job board /progress serves.
type Snapshot struct {
	TotalJobs     int  `json:"total_jobs"`
	DoneJobs      int  `json:"done_jobs"`
	PreloadedJobs int  `json:"preloaded_jobs"`
	FailedJobs    int  `json:"failed_jobs"`
	ShardsTotal   int  `json:"shards_total"`
	ShardsDone    int  `json:"shards_done"`
	ShardsLeased  int  `json:"shards_leased"`
	ShardsQueued  int  `json:"shards_queued"`
	LeasesExpired int  `json:"leases_expired"`
	JobsRequeued  int  `json:"jobs_requeued"`
	DuplicateRows int  `json:"duplicate_rows"`
	SpooledRows   int  `json:"spooled_rows"`
	Done          bool `json:"done"`
	// Workers is sorted by ID; Live means heard from within one TTL.
	Workers []WorkerSnapshot `json:"workers"`
}

// WorkerSnapshot is one worker's liveness row on the job board.
type WorkerSnapshot struct {
	ID          string  `json:"id"`
	Shard       int     `json:"shard"`
	Rows        int     `json:"rows"`
	SpooledRows int     `json:"spooled_rows,omitempty"`
	LastSeenS   float64 `json:"last_seen_s"`
	Live        bool    `json:"live"`
}

// NewCoordinator validates the grid and builds the shard queue. It
// starts a background lease-expiry sweep; Close stops it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.JobIDs) == 0 {
		return nil, fmt.Errorf("fleet: empty grid")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 8
	}
	c := &Coordinator{
		cfg:       cfg,
		ttl:       cfg.LeaseTTL,
		gridHash:  HashJobIDs(cfg.JobIDs),
		idToIndex: make(map[string]int, len(cfg.JobIDs)),
		rows:      make(map[int]sweep.Result, len(cfg.JobIDs)),
		workers:   make(map[string]*workerView),
		done:      make(chan struct{}),
		stop:      make(chan struct{}),
	}
	for i, id := range cfg.JobIDs {
		if id == "" {
			return nil, fmt.Errorf("fleet: job %d has empty ID", i)
		}
		if _, dup := c.idToIndex[id]; dup {
			return nil, fmt.Errorf("fleet: duplicate job ID %q", id)
		}
		c.idToIndex[id] = i
	}
	for _, r := range cfg.Preloaded {
		i, ok := c.idToIndex[r.JobID]
		if !ok || r.Err != "" {
			continue // stale or failed checkpoint rows run again
		}
		if _, dup := c.rows[i]; dup {
			continue
		}
		c.rows[i] = r
		c.preloaded++
	}
	// Shard only the jobs still missing rows, in index order, so a
	// resumed fleet leases no completed work.
	var pending []int
	for i := range cfg.JobIDs {
		if _, ok := c.rows[i]; !ok {
			pending = append(pending, i)
		}
	}
	for len(pending) > 0 {
		n := cfg.ShardSize
		if n > len(pending) {
			n = len(pending)
		}
		s := &shard{id: len(c.shards), indices: append([]int(nil), pending[:n]...)}
		c.shards = append(c.shards, s)
		c.queue = append(c.queue, s.id)
		pending = pending[n:]
	}
	if len(c.rows) == len(cfg.JobIDs) {
		c.finished = true
		close(c.done)
	}
	c.updateGaugesLocked()

	c.wg.Add(1)
	go c.expiryLoop()
	return c, nil
}

// expiryLoop periodically reclaims leases of silent workers.
func (c *Coordinator) expiryLoop() {
	defer c.wg.Done()
	period := c.ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(time.Now())
			c.mu.Unlock()
		case <-c.stop:
			return
		}
	}
}

// expireLocked reclaims every lapsed lease: unfinished jobs go back on
// the queue as a (pruned) shard; finished shards just close.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, s := range c.shards {
		if !s.leased || s.done || now.Before(s.expiry) {
			continue
		}
		holder := s.worker
		s.leased = false
		s.worker = ""
		if w := c.workers[holder]; w != nil && w.shard == s.id {
			w.shard = -1
		}
		c.expired++
		remaining := c.pruneLocked(s)
		if s.done {
			c.logf("fleet: lease on shard %d (worker %s) expired with all jobs done", s.id, holder)
			continue
		}
		c.requeued += remaining
		c.queue = append(c.queue, s.id)
		c.logf("fleet: lease on shard %d (worker %s) expired, re-queued %d job(s)", s.id, holder, remaining)
	}
	c.updateGaugesLocked()
}

// pruneLocked drops completed jobs from a shard, marks it done when
// empty, and returns how many jobs remain.
func (c *Coordinator) pruneLocked(s *shard) int {
	var left []int
	for _, i := range s.indices {
		if _, ok := c.rows[i]; !ok {
			left = append(left, i)
		}
	}
	s.indices = left
	if len(left) == 0 {
		s.done = true
	}
	return len(left)
}

// Acquire leases the next available shard to worker.
func (c *Coordinator) Acquire(worker string) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker, now)
	c.expireLocked(now)
	if c.finished {
		return LeaseResponse{Done: true, Shard: -1}
	}
	for len(c.queue) > 0 {
		s := c.shards[c.queue[0]]
		c.queue = c.queue[1:]
		if s.done || s.leased {
			continue
		}
		if c.pruneLocked(s) == 0 {
			continue
		}
		s.leased = true
		s.worker = worker
		s.expiry = now.Add(c.ttl)
		c.workers[worker].shard = s.id
		c.updateGaugesLocked()
		c.logf("fleet: leased shard %d (%d jobs) to %s", s.id, len(s.indices), worker)
		return LeaseResponse{
			Shard:   s.id,
			Indices: append([]int(nil), s.indices...),
			TTLMS:   c.ttl.Milliseconds(),
		}
	}
	retry := c.ttl / 2
	if retry < 100*time.Millisecond {
		retry = 100 * time.Millisecond
	}
	return LeaseResponse{RetryMS: retry.Milliseconds(), Shard: -1}
}

// Heartbeat renews worker's lease on shard. It reports false when the
// lease is no longer held (expired and possibly re-leased) — the worker
// must stop dispatching that shard's jobs.
func (c *Coordinator) Heartbeat(worker string, shardID int) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker, now)
	if shardID < 0 || shardID >= len(c.shards) {
		return false
	}
	s := c.shards[shardID]
	if !s.leased || s.worker != worker || s.done {
		return false
	}
	s.expiry = now.Add(c.ttl)
	return true
}

// Results ingests streamed rows: unknown jobs are rejected, duplicate
// rows dropped (deterministic re-execution makes them byte-identical),
// and each first-seen row goes to the sink. Rows are accepted even from
// expired leases — the work is valid regardless of who still holds the
// shard.
func (c *Coordinator) Results(req ResultsRequest) (ResultsResponse, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.Worker, now)
	w := c.workers[req.Worker]
	var resp ResultsResponse
	for _, r := range req.Rows {
		i, ok := c.idToIndex[r.JobID]
		if !ok {
			return resp, fmt.Errorf("fleet: row for unknown job %q", r.JobID)
		}
		if _, dup := c.rows[i]; dup {
			resp.Duplicates++
			c.dups++
			continue
		}
		c.rows[i] = r
		resp.Accepted++
		c.accepted++
		if r.Err != "" {
			c.failed++
		}
		if req.Spooled {
			c.spooled++
			w.spooled++
		}
		w.rows++
		if c.cfg.Sink != nil && c.sinkErr == nil {
			if err := c.cfg.Sink.Write(r); err != nil {
				c.sinkErr = fmt.Errorf("fleet: sink write for job %q: %w", r.JobID, err)
				c.logf("%v", c.sinkErr)
			}
		}
	}
	// Close out any shard these rows completed (usually the posting
	// worker's, but a spool replay can finish someone else's too).
	for _, s := range c.shards {
		if !s.done && s.leased && c.pruneLocked(s) == 0 {
			s.leased = false
			if wv := c.workers[s.worker]; wv != nil && wv.shard == s.id {
				wv.shard = -1
			}
			s.worker = ""
		}
	}
	if !c.finished && len(c.rows) == len(c.cfg.JobIDs) {
		c.finished = true
		close(c.done)
		c.logf("fleet: grid complete: %d rows (%d failed, %d requeued, %d duplicate)",
			len(c.rows), c.failed, c.requeued, c.dups)
	}
	c.updateGaugesLocked()
	return resp, nil
}

// MergeObs folds a worker's per-shard observability state into the
// coordinator's registry and histogram set. Counters add, gauges are
// last-write-wins, histograms merge bucket-wise.
func (c *Coordinator) MergeObs(req ObsRequest) error {
	if c.cfg.Metrics != nil {
		for _, m := range req.Metrics {
			if m.Name == "" {
				return fmt.Errorf("fleet: metric with empty name from %q", req.Worker)
			}
			if m.Gauge {
				c.cfg.Metrics.Gauge(m.Name).Set(m.Value)
			} else {
				c.cfg.Metrics.Counter(m.Name).Add(m.Value)
			}
		}
	}
	if c.cfg.Hists != nil {
		if err := c.cfg.Hists.MergeStates(req.Hists); err != nil {
			return fmt.Errorf("fleet: merging hists from %q: %w", req.Worker, err)
		}
	}
	return nil
}

// touchLocked records a sighting of worker.
func (c *Coordinator) touchLocked(worker string, now time.Time) {
	w := c.workers[worker]
	if w == nil {
		w = &workerView{shard: -1}
		c.workers[worker] = w
	}
	w.lastSeen = now
}

// Grid describes the grid for connecting workers.
func (c *Coordinator) Grid() GridInfo {
	return GridInfo{
		Spec:       c.cfg.Spec,
		NumJobs:    len(c.cfg.JobIDs),
		GridHash:   c.gridHash,
		BaseSeed:   c.cfg.BaseSeed,
		LeaseTTLMS: c.ttl.Milliseconds(),
	}
}

// Done is closed once every job has a checkpointed row.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Failed reports how many accepted rows carry an error.
func (c *Coordinator) Failed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// SinkErr reports the first streaming-checkpoint write error, if any.
func (c *Coordinator) SinkErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// Close stops the expiry loop. It does not touch the sink.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
}

// Snapshot captures the fleet job board.
func (c *Coordinator) Snapshot() Snapshot {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{
		TotalJobs:     len(c.cfg.JobIDs),
		DoneJobs:      len(c.rows),
		PreloadedJobs: c.preloaded,
		FailedJobs:    c.failed,
		ShardsTotal:   len(c.shards),
		LeasesExpired: c.expired,
		JobsRequeued:  c.requeued,
		DuplicateRows: c.dups,
		SpooledRows:   c.spooled,
		Done:          c.finished,
	}
	for _, s := range c.shards {
		switch {
		case s.done:
			snap.ShardsDone++
		case s.leased:
			snap.ShardsLeased++
		default:
			snap.ShardsQueued++
		}
	}
	for id, w := range c.workers {
		age := now.Sub(w.lastSeen)
		snap.Workers = append(snap.Workers, WorkerSnapshot{
			ID:          id,
			Shard:       w.shard,
			Rows:        w.rows,
			SpooledRows: w.spooled,
			LastSeenS:   age.Seconds(),
			Live:        age < c.ttl,
		})
	}
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].ID < snap.Workers[j].ID })
	return snap
}

// updateGaugesLocked refreshes the fleet.* instruments.
func (c *Coordinator) updateGaugesLocked() {
	r := c.cfg.Metrics
	if r == nil {
		return
	}
	live := 0
	now := time.Now()
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) < c.ttl {
			live++
		}
	}
	var leased, queued int
	for _, s := range c.shards {
		if s.done {
			continue
		}
		if s.leased {
			leased++
		} else {
			queued++
		}
	}
	r.Gauge("fleet.workers.live").Set(int64(live))
	r.Gauge("fleet.shards.leased").Set(int64(leased))
	r.Gauge("fleet.shards.queued").Set(int64(queued))
	r.Gauge("fleet.jobs.done").Set(int64(len(c.rows)))
	setCounter(r.Counter("fleet.leases.expired_total"), int64(c.expired))
	setCounter(r.Counter("fleet.jobs.requeued_total"), int64(c.requeued))
	setCounter(r.Counter("fleet.rows.accepted_total"), int64(c.accepted))
	setCounter(r.Counter("fleet.rows.duplicate_total"), int64(c.dups))
	setCounter(r.Counter("fleet.rows.spooled_total"), int64(c.spooled))
}

// setCounter advances a counter to an absolute value (counters only
// expose Add; the coordinator's books are the source of truth).
func setCounter(ctr *obs.Counter, v int64) {
	if d := v - ctr.Value(); d > 0 {
		ctr.Add(d)
	}
}

// Rows returns a copy of every accepted row sorted by job index — the
// canonical serial order.
func (c *Coordinator) Rows() []sweep.Result {
	c.mu.Lock()
	out := make([]sweep.Result, 0, len(c.rows))
	for _, r := range c.rows {
		out = append(out, r)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Finalize writes the canonical checkpoint — one row per job in index
// order, byte-identical to a serial -workers 1 run of the same grid —
// to path via a temp-file rename, so a crash mid-finalize never
// truncates the streamed checkpoint. Call after Done (finalizing early
// writes only the rows gathered so far).
func (c *Coordinator) Finalize(path string) error {
	rows := c.Rows()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(append(b, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Attach mounts the coordinator's API under /fleet/ on a telemetry
// server and installs the aggregated job board as its /progress
// provider. Call before srv.Start.
func (c *Coordinator) Attach(srv *obs.Server) {
	srv.Handle("/fleet/grid", http.HandlerFunc(c.handleGrid))
	srv.Handle("/fleet/lease", http.HandlerFunc(c.handleLease))
	srv.Handle("/fleet/heartbeat", http.HandlerFunc(c.handleHeartbeat))
	srv.Handle("/fleet/results", http.HandlerFunc(c.handleResults))
	srv.Handle("/fleet/obs", http.HandlerFunc(c.handleObs))
	srv.SetProgress(func() any { return c.Snapshot() })
}

func (c *Coordinator) handleGrid(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Grid())
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "fleet: lease request without worker id", http.StatusBadRequest)
		return
	}
	writeJSON(w, c.Acquire(req.Worker))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !c.Heartbeat(req.Worker, req.Shard) {
		http.Error(w, "fleet: lease not held", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := c.Results(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleObs(w http.ResponseWriter, r *http.Request) {
	var req ObsRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.MergeObs(req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// readJSON decodes a POST body, writing the HTTP error itself on
// failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("fleet: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
