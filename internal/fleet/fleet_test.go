package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
)

// testJobs builds a deterministic grid: every job's metrics are a pure
// function of its seed, so any placement of any shard on any worker
// must reproduce the serial bytes.
func testJobs(n int, sleep time.Duration, o *obs.NetObserver) []sweep.Job {
	jobs := make([]sweep.Job, n)
	for i := range jobs {
		id := fmt.Sprintf("job-%03d", i)
		jobs[i] = sweep.Job{
			ID:   id,
			Meta: map[string]string{"cell": id},
			Run: func(seed int64) (map[string]float64, error) {
				if sleep > 0 {
					time.Sleep(sleep)
				}
				if o != nil {
					o.Metrics.Counter("jobs.executed_total").Inc()
					o.Hists.Hist("job.metric").Record(float64(uint64(seed) % 1000))
				}
				return map[string]float64{"m": float64(uint64(seed)%1_000_003) * 1e-6}, nil
			},
		}
	}
	return jobs
}

func jobIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%03d", i)
	}
	return ids
}

// testBuild is the worker-side grid builder: fresh observer per lease.
func testBuild(n int, sleep time.Duration) func(map[string]string) ([]sweep.Job, *obs.NetObserver, error) {
	return func(map[string]string) ([]sweep.Job, *obs.NetObserver, error) {
		o := &obs.NetObserver{Metrics: obs.NewRegistry(), Hists: obs.NewHistSet()}
		return testJobs(n, sleep, o), o, nil
	}
}

func serialRows(t *testing.T, n int, baseSeed int64) []sweep.Result {
	t.Helper()
	var ms sweep.MemorySink
	if _, err := sweep.Run(sweep.Config{Workers: 1, BaseSeed: baseSeed}, testJobs(n, 0, nil), &ms); err != nil {
		t.Fatal(err)
	}
	return ms.Results()
}

// startFleet brings up a coordinator with its API mounted on a real
// telemetry server, as production does.
func startFleet(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *obs.Server, string) {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := obs.NewServer(nil)
	coord.Attach(srv)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); coord.Close() })
	return coord, srv, "http://" + addr
}

func marshalRows(t *testing.T, rows []sweep.Result) []byte {
	t.Helper()
	b, err := sweep.MarshalResults(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetChaosKilledWorkerMatchesSerial is the headline gate at unit
// level: two workers split a grid, one is "SIGKILLed" mid-shard (it
// stops heartbeating, delivering and dispatching), and the merged fleet
// checkpoint must still be byte-identical to a serial -workers 1 run.
func TestFleetChaosKilledWorkerMatchesSerial(t *testing.T) {
	const n = 24
	base := int64(42)
	serial := serialRows(t, n, base)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.jsonl")
	sink, err := sweep.OpenJSONL(ckpt, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	coord, _, url := startFleet(t, CoordinatorConfig{
		JobIDs:    jobIDs(n),
		Spec:      map[string]string{"n": "24"},
		BaseSeed:  base,
		LeaseTTL:  250 * time.Millisecond,
		ShardSize: 4,
		Sink:      sink,
		Logf:      t.Logf,
	})

	victim, err := NewWorker(WorkerConfig{
		ID: "victim", BaseURL: url, Build: testBuild(n, 10*time.Millisecond),
		Workers: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim.testCrashAfterRows = 3
	survivor, err := NewWorker(WorkerConfig{
		ID: "survivor", BaseURL: url, Build: testBuild(n, 10*time.Millisecond),
		Workers: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	vErr := make(chan error, 1)
	sErr := make(chan error, 1)
	go func() { vErr <- victim.Run() }()
	go func() { sErr <- survivor.Run() }()

	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("fleet never finished: %+v", coord.Snapshot())
	}
	if err := <-vErr; !errors.Is(err, errCrashed) {
		t.Fatalf("victim returned %v, want simulated crash", err)
	}
	if err := <-sErr; err != nil {
		t.Fatalf("survivor failed: %v", err)
	}

	if got, want := marshalRows(t, coord.Rows()), marshalRows(t, serial); !bytes.Equal(got, want) {
		t.Fatalf("fleet rows differ from serial run:\nfleet:\n%s\nserial:\n%s", got, want)
	}

	// Finalize must write the serial file byte-for-byte: rows in index
	// order, one per job.
	final := filepath.Join(dir, "final.jsonl")
	if err := coord.Finalize(final); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range serial {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(b)
		want.WriteByte('\n')
	}
	got, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("finalized checkpoint differs from serial file")
	}

	snap := coord.Snapshot()
	if snap.LeasesExpired < 1 {
		t.Errorf("no lease expired despite a killed worker: %+v", snap)
	}
	if snap.JobsRequeued < 1 {
		t.Errorf("no job requeued despite a killed worker: %+v", snap)
	}
	if snap.DoneJobs != n || !snap.Done {
		t.Errorf("job board inconsistent at completion: %+v", snap)
	}
}

// TestLeaseExpiryRequeuesShard: a worker that takes a lease and falls
// silent loses it after the TTL; the shard re-queues intact and the
// dead worker's heartbeat is refused.
func TestLeaseExpiryRequeuesShard(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		JobIDs: jobIDs(8), ShardSize: 8, LeaseTTL: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lease := c.Acquire("a")
	if lease.Shard != 0 || len(lease.Indices) != 8 {
		t.Fatalf("unexpected first lease: %+v", lease)
	}
	if l2 := c.Acquire("b"); l2.Shard >= 0 || l2.Done || l2.RetryMS <= 0 {
		t.Fatalf("leased shard handed out twice: %+v", l2)
	}

	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().LeasesExpired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Heartbeat("a", lease.Shard) {
		t.Error("heartbeat on an expired lease succeeded")
	}
	l3 := c.Acquire("b")
	if l3.Shard != lease.Shard || len(l3.Indices) != 8 {
		t.Fatalf("expired shard not re-leased whole: %+v", l3)
	}
	if snap := c.Snapshot(); snap.JobsRequeued != 8 {
		t.Errorf("requeued %d jobs, want 8", snap.JobsRequeued)
	}
}

// TestHeartbeatKeepsLeaseAlive: renewals well inside the TTL hold the
// lease far past its nominal lifetime.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		JobIDs: jobIDs(4), ShardSize: 4, LeaseTTL: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lease := c.Acquire("a")
	for i := 0; i < 15; i++ { // 300ms total, ~4 TTLs
		time.Sleep(20 * time.Millisecond)
		if !c.Heartbeat("a", lease.Shard) {
			t.Fatalf("lease lost after %d renewals", i)
		}
	}
	if snap := c.Snapshot(); snap.LeasesExpired != 0 {
		t.Errorf("lease expired despite heartbeats: %+v", snap)
	}
}

// TestBackoffDelaySchedule pins the reconnect schedule: exponential
// doubling from base, capped at max, jittered within [0.5, 1.5).
func TestBackoffDelaySchedule(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	base, max := 100*time.Millisecond, 2*time.Second
	for attempt := 0; attempt < 12; attempt++ {
		nominal := base << uint(attempt)
		if nominal > max || nominal <= 0 {
			nominal = max
		}
		for trial := 0; trial < 50; trial++ {
			d := backoffDelay(attempt, base, max, rnd)
			if d < nominal/2 || d >= nominal+nominal/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, nominal/2, nominal+nominal/2)
			}
		}
	}
}

// TestWorkerSpoolsDuringDisconnectAndReplays forces transient delivery
// failures: rows must divert to the spool, replay on reconnect, and the
// merged output must still match serial.
func TestWorkerSpoolsDuringDisconnectAndReplays(t *testing.T) {
	const n = 12
	base := int64(7)
	serial := serialRows(t, n, base)
	coord, _, url := startFleet(t, CoordinatorConfig{
		JobIDs: jobIDs(n), BaseSeed: base, ShardSize: 4,
		LeaseTTL: 500 * time.Millisecond, Logf: t.Logf,
	})

	w, err := NewWorker(WorkerConfig{
		ID: "w", BaseURL: url, Build: testBuild(n, 2*time.Millisecond),
		Workers: 1, SpoolPath: filepath.Join(t.TempDir(), "spool.jsonl"),
		BackoffBase: 30 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	w.testDeliverErr = func() error {
		if calls.Add(1) <= 5 {
			return errors.New("synthetic network fault")
		}
		return nil
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("fleet never finished: %+v", coord.Snapshot())
	}
	if got, want := marshalRows(t, coord.Rows()), marshalRows(t, serial); !bytes.Equal(got, want) {
		t.Fatalf("rows diverged after a spool round-trip")
	}
	if snap := coord.Snapshot(); snap.SpooledRows == 0 {
		t.Errorf("no rows took the spool path: %+v", snap)
	}
}

// TestWorkerGivesUpThenSpoolReattaches is the full permanent-disconnect
// story: the coordinator dies mid-shard, the worker finishes the shard
// into its spool and gives up after GiveUpAfter; a fresh coordinator
// (resumed from the first one's rows) ingests the spool on reattach and
// the union is byte-identical to serial.
func TestWorkerGivesUpThenSpoolReattaches(t *testing.T) {
	const n = 6
	base := int64(11)
	serial := serialRows(t, n, base)
	spool := filepath.Join(t.TempDir(), "spool.jsonl")

	var live sweep.MemorySink
	coord1, srv1, url1 := startFleet(t, CoordinatorConfig{
		JobIDs: jobIDs(n), BaseSeed: base, ShardSize: n,
		LeaseTTL: 300 * time.Millisecond, Sink: &live, Logf: t.Logf,
	})
	w1, err := NewWorker(WorkerConfig{
		ID: "w1", BaseURL: url1, Build: testBuild(n, 20*time.Millisecond),
		Workers: 1, SpoolPath: spool,
		BackoffBase: 20 * time.Millisecond, BackoffMax: 80 * time.Millisecond,
		GiveUpAfter: 250 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the coordinator once the first row has landed.
	go func() {
		for len(live.Results()) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
		srv1.Close()
	}()
	runErr := w1.Run()
	if runErr == nil || !strings.Contains(runErr.Error(), "giving up") {
		t.Fatalf("want give-up error, got %v", runErr)
	}
	coord1.Close()
	if _, err := os.Stat(spool); err != nil {
		t.Fatalf("spool not retained across give-up: %v", err)
	}
	preloaded := live.Results()
	if len(preloaded) == 0 || len(preloaded) == n {
		t.Fatalf("need a partial first run to test reattach, got %d/%d rows", len(preloaded), n)
	}

	coord2, _, url2 := startFleet(t, CoordinatorConfig{
		JobIDs: jobIDs(n), BaseSeed: base, ShardSize: n,
		LeaseTTL: 300 * time.Millisecond, Preloaded: preloaded, Logf: t.Logf,
	})
	w2, err := NewWorker(WorkerConfig{
		ID: "w2", BaseURL: url2, Build: testBuild(n, 0),
		Workers: 1, SpoolPath: spool, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord2.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("resumed fleet never finished: %+v", coord2.Snapshot())
	}
	if got, want := marshalRows(t, coord2.Rows()), marshalRows(t, serial); !bytes.Equal(got, want) {
		t.Fatalf("reattached rows diverged from serial")
	}
	snap := coord2.Snapshot()
	if snap.SpooledRows == 0 {
		t.Errorf("spool replay left no trace on the job board: %+v", snap)
	}
	if snap.PreloadedJobs != len(preloaded) {
		t.Errorf("preloaded %d jobs, job board says %d", len(preloaded), snap.PreloadedJobs)
	}
	if _, err := os.Stat(spool); !os.IsNotExist(err) {
		t.Error("spool not deleted after successful replay")
	}
}

// TestWorkerRefusesMismatchedGrid: a worker whose flags expand to a
// different grid must refuse to run rather than corrupt the checkpoint.
func TestWorkerRefusesMismatchedGrid(t *testing.T) {
	_, _, url := startFleet(t, CoordinatorConfig{
		JobIDs: jobIDs(4), BaseSeed: 1, ShardSize: 4, LeaseTTL: time.Second,
	})
	w, err := NewWorker(WorkerConfig{
		ID: "skewed", BaseURL: url, Build: testBuild(5, 0), // 5 jobs != 4
	})
	if err != nil {
		t.Fatal(err)
	}
	runErr := w.Run()
	if runErr == nil || !strings.Contains(runErr.Error(), "grid mismatch") {
		t.Fatalf("mismatched grid not refused: %v", runErr)
	}
}

// TestResultsDedupeAndRejectUnknown: duplicate rows are dropped (the
// sink sees each job once), unknown jobs are rejected.
func TestResultsDedupeAndRejectUnknown(t *testing.T) {
	var ms sweep.MemorySink
	c, err := NewCoordinator(CoordinatorConfig{
		JobIDs: jobIDs(4), ShardSize: 2, LeaseTTL: time.Second, Sink: &ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows := serialRows(t, 4, 0)

	resp, err := c.Results(ResultsRequest{Worker: "a", Rows: rows[:2]})
	if err != nil || resp.Accepted != 2 || resp.Duplicates != 0 {
		t.Fatalf("first post: %+v err=%v", resp, err)
	}
	resp, err = c.Results(ResultsRequest{Worker: "b", Rows: rows[:2]})
	if err != nil || resp.Accepted != 0 || resp.Duplicates != 2 {
		t.Fatalf("duplicate post: %+v err=%v", resp, err)
	}
	if _, err := c.Results(ResultsRequest{Worker: "a", Rows: []sweep.Result{{JobID: "nope"}}}); err == nil {
		t.Error("row for unknown job accepted")
	}
	if _, err := c.Results(ResultsRequest{Worker: "a", Rows: rows[2:]}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Error("grid complete but Done not closed")
	}
	if got := len(ms.Results()); got != 4 {
		t.Errorf("sink saw %d rows, want 4 (duplicates must not reach it)", got)
	}
	if snap := c.Snapshot(); snap.DuplicateRows != 2 {
		t.Errorf("job board counts %d duplicates, want 2", snap.DuplicateRows)
	}
}

// TestMergeObsFoldsWorkerState: counters add across workers, gauges are
// last-write-wins, histograms merge bucket-wise.
func TestMergeObsFoldsWorkerState(t *testing.T) {
	reg, hs := obs.NewRegistry(), obs.NewHistSet()
	c, err := NewCoordinator(CoordinatorConfig{
		JobIDs: jobIDs(2), LeaseTTL: time.Second, Metrics: reg, Hists: hs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mk := func(counter, gauge int64, samples ...float64) ObsRequest {
		o := obs.NewHistSet()
		for _, s := range samples {
			o.Hist("rtt").Record(s)
		}
		return ObsRequest{
			Worker: "w",
			Metrics: []obs.Metric{
				{Name: "jobs.executed_total", Value: counter},
				{Name: "fleet.depth", Value: gauge, Gauge: true},
			},
			Hists: o.States(),
		}
	}
	if err := c.MergeObs(mk(3, 5, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.MergeObs(mk(4, 2, 9)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("jobs.executed_total").Value(); got != 7 {
		t.Errorf("counter = %d, want 7 (3+4)", got)
	}
	if got := reg.Gauge("fleet.depth").Value(); got != 2 {
		t.Errorf("gauge = %d, want 2 (last write)", got)
	}
	if got := hs.Hist("rtt").Count(); got != 3 {
		t.Errorf("hist count = %d, want 3", got)
	}
	if err := c.MergeObs(ObsRequest{Worker: "w", Metrics: []obs.Metric{{Value: 1}}}); err == nil {
		t.Error("nameless metric accepted")
	}
}
