package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
)

// WorkerConfig parameterises NewWorker. ID, BaseURL and Build are
// required.
type WorkerConfig struct {
	// ID names this worker on the fleet job board and in lease books.
	ID string
	// BaseURL is the coordinator's telemetry address, e.g.
	// "http://127.0.0.1:9090".
	BaseURL string
	// Build rebuilds the full job list from the coordinator's grid spec,
	// wired to a fresh observer whose metrics and histograms are shipped
	// to the coordinator when the shard completes. It is called once per
	// lease; the returned observer may be nil.
	Build func(spec map[string]string) ([]sweep.Job, *obs.NetObserver, error)
	// Workers, Timeout and Retries tune the local sweep engine per
	// shard; zero values mean engine defaults.
	Workers int
	Timeout time.Duration
	Retries int
	// SpoolPath is the local JSONL file rows spill to while the
	// coordinator is unreachable; it is replayed and deleted on
	// reconnect. Empty disables spooling (disconnect then loses rows,
	// which is safe — the lease lapses and the jobs re-run elsewhere).
	SpoolPath string
	// BackoffBase and BackoffMax bound the jittered exponential
	// reconnect schedule. Defaults 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// GiveUpAfter ends Run with an error once the coordinator has been
	// unreachable this long; the spool survives for the next attach.
	// Zero retries forever.
	GiveUpAfter time.Duration
	// Logf, when non-nil, receives worker log lines.
	Logf func(format string, args ...any)
}

// errCrashed marks a simulated in-process SIGKILL (tests only).
var errCrashed = errors.New("fleet: worker crashed (simulated)")

// Worker pulls shard leases from a coordinator, runs them through the
// sweep engine, and streams rows back. Its failure discipline:
//
//   - a failed row post spools the row locally and starts the jittered
//     backoff clock; the shard keeps computing (re-execution elsewhere
//     would only reproduce the same bytes, so finishing is never waste);
//   - only an explicit 410 from a heartbeat means the lease is gone —
//     a network error does not, because the coordinator may still be
//     counting down the TTL;
//   - every successful request replays and deletes the spool first, so
//     reattachment never reorders a row after fresher work.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	rnd    *rand.Rand

	mu         sync.Mutex
	down       bool
	downSince  time.Time
	consecErrs int
	nextRetry  time.Time

	crashed       atomic.Bool
	rowsDelivered atomic.Int64

	// testCrashAfterRows, when positive, freezes the worker (heartbeats,
	// row delivery, job dispatch) after that many rows have been
	// delivered — an in-process stand-in for SIGKILL in chaos tests.
	testCrashAfterRows int
	// testDeliverErr, when non-nil, is consulted before each live row
	// post; a non-nil return is treated as a transport failure (tests
	// use it to force the spool path without a real network fault).
	testDeliverErr func() error
}

// NewWorker validates cfg and returns a Worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an ID")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("fleet: worker %s needs a coordinator URL", cfg.ID)
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("fleet: worker %s needs a Build func", cfg.ID)
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	return &Worker{
		cfg:    cfg,
		client: &http.Client{Timeout: 30 * time.Second},
		rnd:    rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(cfg.ID)))),
	}, nil
}

// Run serves leases until the coordinator reports the grid done. It
// returns nil on a completed grid, or an error on a grid mismatch,
// build failure, or exhausted GiveUpAfter (with the spool retained).
func (w *Worker) Run() error {
	var grid GridInfo
	for {
		if err := w.getJSON("/fleet/grid", &grid); err != nil {
			if give := w.noteFailure(err); give != nil {
				return give
			}
			w.sleepUntilRetry()
			continue
		}
		w.noteSuccess()
		break
	}
	if err := w.flushSpool(); err != nil {
		w.logf("fleet: worker %s: spool replay failed (will retry): %v", w.cfg.ID, err)
	}

	for {
		if w.crashed.Load() {
			return errCrashed
		}
		var lease LeaseResponse
		code, err := w.postJSON("/fleet/lease", LeaseRequest{Worker: w.cfg.ID}, &lease)
		if err == nil && code != http.StatusOK {
			err = fmt.Errorf("fleet: lease request: HTTP %d", code)
		}
		if err != nil {
			if give := w.noteFailure(err); give != nil {
				return give
			}
			w.sleepUntilRetry()
			continue
		}
		w.noteSuccess()
		if err := w.flushSpool(); err != nil {
			w.logf("fleet: worker %s: spool replay failed (will retry): %v", w.cfg.ID, err)
		}
		switch {
		case lease.Done:
			w.logf("fleet: worker %s: grid complete, exiting", w.cfg.ID)
			return nil
		case lease.Shard < 0:
			time.Sleep(time.Duration(lease.RetryMS) * time.Millisecond)
		default:
			if err := w.runShard(grid, lease); err != nil {
				return err
			}
		}
	}
}

// runShard executes one leased shard: rebuild + verify the grid,
// heartbeat in the background, stream rows, then ship observability.
func (w *Worker) runShard(grid GridInfo, lease LeaseResponse) error {
	jobs, o, err := w.cfg.Build(grid.Spec)
	if err != nil {
		return fmt.Errorf("fleet: worker %s: building grid: %w", w.cfg.ID, err)
	}
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	if h := HashJobIDs(ids); len(jobs) != grid.NumJobs || h != grid.GridHash {
		return fmt.Errorf("fleet: worker %s: grid mismatch: local %d jobs hash %s, coordinator %d jobs hash %s — refusing to run (version or flag skew would corrupt the checkpoint)",
			w.cfg.ID, len(jobs), h, grid.NumJobs, grid.GridHash)
	}
	w.logf("fleet: worker %s: leased shard %d (%d jobs)", w.cfg.ID, lease.Shard, len(lease.Indices))

	var leaseLost atomic.Bool
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(lease, &leaseLost, hbStop)
	}()

	cfg := sweep.Config{
		Workers:  w.cfg.Workers,
		Timeout:  w.cfg.Timeout,
		Retries:  w.cfg.Retries,
		BaseSeed: grid.BaseSeed,
		Stop:     func() bool { return leaseLost.Load() || w.crashed.Load() },
	}
	sink := sweep.SinkFunc(func(r sweep.Result) error {
		w.deliver(lease.Shard, r)
		return nil // a delivery failure spools; it must not abort the shard
	})
	_, runErr := sweep.RunIndexed(cfg, jobs, lease.Indices, sink)
	close(hbStop)
	hbWG.Wait()
	if runErr != nil {
		return fmt.Errorf("fleet: worker %s: shard %d: %w", w.cfg.ID, lease.Shard, runErr)
	}
	if w.crashed.Load() {
		return errCrashed
	}
	if leaseLost.Load() {
		w.logf("fleet: worker %s: lease on shard %d was reassigned, abandoned remainder", w.cfg.ID, lease.Shard)
	}
	w.shipObs(o)
	return nil
}

// heartbeatLoop renews the lease at TTL/3 until stopped. Network errors
// are tolerated (the lease may still be live at the coordinator); only
// an explicit 410 Gone flips leaseLost.
func (w *Worker) heartbeatLoop(lease LeaseResponse, leaseLost *atomic.Bool, stop <-chan struct{}) {
	interval := time.Duration(lease.TTLMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if w.crashed.Load() {
				return // a "killed" worker falls silent
			}
			code, err := w.postJSON("/fleet/heartbeat", HeartbeatRequest{Worker: w.cfg.ID, Shard: lease.Shard}, nil)
			if err != nil {
				continue
			}
			if code == http.StatusGone {
				leaseLost.Store(true)
				return
			}
		}
	}
}

// deliver streams one row to the coordinator, spooling it locally when
// the coordinator is unreachable (or mid-backoff).
func (w *Worker) deliver(shard int, r sweep.Result) {
	if w.testCrashAfterRows > 0 && w.rowsDelivered.Load() >= int64(w.testCrashAfterRows) {
		w.crashed.Store(true)
	}
	if w.crashed.Load() {
		return // rows from a "killed" worker never arrive anywhere
	}
	w.rowsDelivered.Add(1)
	if w.inBackoff() {
		w.spool(r)
		return
	}
	if err := w.flushSpool(); err != nil {
		w.noteFailure(err)
		w.spool(r)
		return
	}
	var ferr error
	if w.testDeliverErr != nil {
		ferr = w.testDeliverErr()
	}
	if ferr == nil {
		var resp ResultsResponse
		code, err := w.postJSON("/fleet/results", ResultsRequest{
			Worker: w.cfg.ID, Shard: shard, Rows: []sweep.Result{r},
		}, &resp)
		ferr = err
		if err == nil && code != http.StatusOK {
			ferr = fmt.Errorf("fleet: results post: HTTP %d", code)
		}
	}
	if ferr != nil {
		w.noteFailure(ferr)
		w.spool(r)
		return
	}
	w.noteSuccess()
}

// spool appends one row to the local spool file (open-write-close per
// row: a kill mid-write tears at most one line, which replay skips).
func (w *Worker) spool(r sweep.Result) {
	if w.cfg.SpoolPath == "" {
		w.logf("fleet: worker %s: coordinator unreachable and no spool configured; dropping row %s (its job will re-run elsewhere)", w.cfg.ID, r.JobID)
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		w.logf("fleet: worker %s: spool marshal: %v", w.cfg.ID, err)
		return
	}
	f, err := os.OpenFile(w.cfg.SpoolPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.logf("fleet: worker %s: spool open: %v", w.cfg.ID, err)
		return
	}
	_, werr := f.Write(append(b, '\n'))
	cerr := f.Close()
	if werr != nil || cerr != nil {
		w.logf("fleet: worker %s: spool write: %v %v", w.cfg.ID, werr, cerr)
	}
}

// flushSpool replays the spool to the coordinator and deletes it. A nil
// return means the spool is gone (or was never there).
func (w *Worker) flushSpool() error {
	if w.cfg.SpoolPath == "" {
		return nil
	}
	rows, err := sweep.ReadResults(w.cfg.SpoolPath)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	var resp ResultsResponse
	code, err := w.postJSON("/fleet/results", ResultsRequest{
		Worker: w.cfg.ID, Shard: -1, Spooled: true, Rows: rows,
	}, &resp)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("fleet: spool replay: HTTP %d", code)
	}
	w.logf("fleet: worker %s: replayed %d spooled row(s): %d accepted, %d duplicate", w.cfg.ID, len(rows), resp.Accepted, resp.Duplicates)
	return os.Remove(w.cfg.SpoolPath)
}

// shipObs posts the shard observer's counters and histograms. Failures
// are logged, not fatal: observability is advisory, rows are the truth.
func (w *Worker) shipObs(o *obs.NetObserver) {
	if o == nil || (o.Metrics == nil && o.Hists == nil) {
		return
	}
	req := ObsRequest{Worker: w.cfg.ID}
	if o.Metrics != nil {
		req.Metrics = o.Metrics.Snapshot()
	}
	if o.Hists != nil {
		req.Hists = o.Hists.States()
	}
	if len(req.Metrics) == 0 && len(req.Hists) == 0 {
		return
	}
	if code, err := w.postJSON("/fleet/obs", req, nil); err != nil {
		w.logf("fleet: worker %s: obs post failed: %v", w.cfg.ID, err)
	} else if code != http.StatusNoContent && code != http.StatusOK {
		w.logf("fleet: worker %s: obs post: HTTP %d", w.cfg.ID, code)
	}
}

// noteFailure records a failed exchange, arms the backoff clock, and
// returns a terminal error once GiveUpAfter is exhausted.
func (w *Worker) noteFailure(cause error) error {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.down {
		w.down = true
		w.downSince = now
		w.logf("fleet: worker %s: coordinator unreachable (%v), backing off", w.cfg.ID, cause)
	}
	w.consecErrs++
	w.nextRetry = now.Add(backoffDelay(w.consecErrs-1, w.cfg.BackoffBase, w.cfg.BackoffMax, w.rnd))
	if w.cfg.GiveUpAfter > 0 && now.Sub(w.downSince) >= w.cfg.GiveUpAfter {
		return fmt.Errorf("fleet: worker %s: coordinator unreachable for %v (last error: %v); giving up with spool %s retained",
			w.cfg.ID, now.Sub(w.downSince).Round(time.Millisecond), cause, w.spoolName())
	}
	return nil
}

// noteSuccess clears the backoff state.
func (w *Worker) noteSuccess() {
	w.mu.Lock()
	if w.down {
		w.logf("fleet: worker %s: coordinator reachable again after %d attempt(s)", w.cfg.ID, w.consecErrs)
	}
	w.down = false
	w.consecErrs = 0
	w.nextRetry = time.Time{}
	w.mu.Unlock()
}

// inBackoff reports whether the worker is mid-backoff (deliveries spool
// rather than dial a coordinator known to be down).
func (w *Worker) inBackoff() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down && time.Now().Before(w.nextRetry)
}

// sleepUntilRetry blocks until the backoff clock allows another try.
func (w *Worker) sleepUntilRetry() {
	w.mu.Lock()
	d := time.Until(w.nextRetry)
	w.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (w *Worker) spoolName() string {
	if w.cfg.SpoolPath == "" {
		return "(none)"
	}
	return w.cfg.SpoolPath
}

// backoffDelay computes the nth (0-based) reconnect delay: base*2^n
// capped at max, then jittered by a uniform factor in [0.5, 1.5) so a
// fleet of workers that lost the same coordinator desynchronises
// instead of stampeding it on recovery.
func backoffDelay(attempt int, base, max time.Duration, rnd *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration((0.5 + rnd.Float64()) * float64(d))
}

// getJSON fetches BaseURL+path into v.
func (w *Worker) getJSON(path string, v any) error {
	resp, err := w.client.Get(w.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: GET %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// postJSON posts req to BaseURL+path, decoding the body into resp when
// non-nil and the status is 200. It returns the status code; transport
// errors come back as err.
func (w *Worker) postJSON(path string, req any, resp any) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	r, err := w.client.Post(w.url(path), "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			return r.StatusCode, err
		}
	}
	return r.StatusCode, nil
}

func (w *Worker) url(path string) string {
	base := strings.TrimSuffix(w.cfg.BaseURL, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return base + path
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
