package hybrid

import (
	"fmt"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/netsim"
)

// WarmStart is an analytic operating point translated to wire units, ready
// to be applied to packet-sim endpoints: per-flow rates and α, plus the
// steady-state bottleneck queue occupancy to prefill. Build one with
// DCQCNWarmStart or TimelyWarmStart.
type WarmStart struct {
	// RatesBytes / TargetsBytes are per-flow current and target rates in
	// bytes/s; Alphas the per-flow α (DCQCN only, 0 for TIMELY).
	RatesBytes   []float64
	TargetsBytes []float64
	Alphas       []float64
	// QueueBytes is the analytic steady-state bottleneck occupancy q* in
	// bytes, the amount Prefill injects.
	QueueBytes int
	// FP is the solved DCQCN fixed point (zero value for TIMELY).
	FP fixedpoint.DCQCNFixedPoint
}

// DCQCNWarmStart solves the Theorem 1 fixed point of pr (paper units:
// packets of MTU bytes) and translates it to wire units for pr.N flows.
func DCQCNWarmStart(pr fixedpoint.DCQCNParams) (*WarmStart, error) {
	fp, err := fixedpoint.SolveDCQCN(pr)
	if err != nil {
		return nil, err
	}
	w := &WarmStart{QueueBytes: int(fp.Q * MTU), FP: fp}
	for i := 0; i < pr.N; i++ {
		w.RatesBytes = append(w.RatesBytes, fp.RC*MTU)
		w.TargetsBytes = append(w.TargetsBytes, fp.RT*MTU)
		w.Alphas = append(w.Alphas, fp.Alpha)
	}
	return w, nil
}

// TimelyWarmStart builds the patched-TIMELY operating point for n flows on
// a c bytes/s bottleneck: fair-share rates and the Eq. 31 queue
//
//	q* = N δ q' / (β C) + q'
//
// with q' the reference queue (qPrime <= 0 selects the paper's C·T_low via
// tLow).
func TimelyWarmStart(n int, delta, beta, c, tLow, qPrime float64) (*WarmStart, error) {
	if n <= 0 || delta <= 0 || beta <= 0 || c <= 0 {
		return nil, fmt.Errorf("hybrid: timely warm start needs positive n, delta, beta, c")
	}
	if qPrime <= 0 {
		qPrime = c * tLow
	}
	w := &WarmStart{QueueBytes: int(fixedpoint.PatchedTimelyQStar(n, delta, beta, c, qPrime))}
	for i := 0; i < n; i++ {
		w.RatesBytes = append(w.RatesBytes, c/float64(n))
		w.TargetsBytes = append(w.TargetsBytes, c/float64(n))
		w.Alphas = append(w.Alphas, 0)
	}
	return w, nil
}

// ApplyDCQCN arms every sender to start at the warm operating point instead
// of the cold line-rate/α=1 default. Call before the flows' start times.
func (w *WarmStart) ApplyDCQCN(senders []*dcqcn.Sender) error {
	if len(senders) != len(w.RatesBytes) {
		return fmt.Errorf("hybrid: warm start has %d flows, got %d senders",
			len(w.RatesBytes), len(senders))
	}
	for i, s := range senders {
		s.WarmStart(w.RatesBytes[i], w.TargetsBytes[i], w.Alphas[i])
	}
	return nil
}

// PrefillFlow names one flow whose identity prefilled packets carry, so CE
// feedback on them reaches a live sender.
type PrefillFlow struct {
	Flow, Src, Dst int
}

// Prefill fills the port's egress queue to w.QueueBytes with MTU-sized data
// segments round-robined across flows, so the queue — and therefore the
// marking probability and queueing delay — starts at the analytic fixed
// point. It returns the bytes actually injected (less than w.QueueBytes
// only if a finite queue capacity tail-dropped the fill).
func (w *WarmStart) Prefill(port *netsim.Port, flows []PrefillFlow) int {
	if len(flows) == 0 || w.QueueBytes < MTU {
		return 0
	}
	filled := 0
	for i := 0; filled+MTU <= w.QueueBytes; i++ {
		f := flows[i%len(flows)]
		if !port.PrefillQueue(f.Flow, f.Src, f.Dst, MTU) {
			break
		}
		filled += MTU
	}
	return filled
}
