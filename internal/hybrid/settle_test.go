package hybrid

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// TestMeasureSettleWarmVsCold is the settle-measurement contract the
// hybridwarm experiment relies on: a warm-started run must enter the
// steady-state envelope earlier — in both simulated time and DES events —
// than the cold start, while both settle to the same tail mean.
func TestMeasureSettleWarmVsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("warm/cold settle runs take a few seconds")
	}
	const horizon = 0.05
	run := func(warm *WarmStart) Settle {
		sc := NewDCQCNScenario(10, 1)
		nw, star, _, err := sc.Star(warm)
		if err != nil {
			t.Fatal(err)
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
		evs := MonitorEvents(nw.Sim, 100*des.Microsecond)
		nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))
		return MeasureSettle(qs, evs, horizon)
	}
	warm, err := DCQCNWarmStart(NewDCQCNScenario(10, 1).Par)
	if err != nil {
		t.Fatal(err)
	}
	w, c := run(warm), run(nil)
	if w.Events >= c.Events {
		t.Errorf("warm settled after %d events, cold after %d — warm start saved nothing",
			w.Events, c.Events)
	}
	if w.Time > c.Time {
		t.Errorf("warm settle time %.4fs later than cold %.4fs", w.Time, c.Time)
	}
	if d := relErr(w.TailMean, c.TailMean); d > 0.25 {
		t.Errorf("warm tail mean %.0f vs cold %.0f bytes, rel %.3f > 0.25",
			w.TailMean, c.TailMean, d)
	}
	if c.Band <= 0 || w.Band <= 0 {
		t.Errorf("degenerate envelopes: warm %.3f cold %.3f", w.Band, c.Band)
	}
}

// TestFluidWarmStartInitialRates pins the warm branch of Fluid: the ODE
// system's initial state must carry the fixed-point per-flow rates in paper
// units instead of the cold-start line rate.
func TestFluidWarmStartInitialRates(t *testing.T) {
	sc := NewDCQCNScenario(4, 1)
	warm, err := DCQCNWarmStart(sc.Par)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sc.Fluid(warm)
	if err != nil {
		t.Fatal(err)
	}
	y := sys.Initial()
	for i := 0; i < sc.N; i++ {
		if got, want := y[sys.RCIndex(i)], warm.RatesBytes[i]/MTU; got != want {
			t.Errorf("flow %d: initial RC = %v packets/s, want warm-start %v", i, got, want)
		}
	}
	cold, err := sc.Fluid(nil)
	if err != nil {
		t.Fatal(err)
	}
	if yc := cold.Initial(); yc[cold.RCIndex(0)] == y[sys.RCIndex(0)] {
		t.Error("cold fluid start already at the warm rate — warm branch is a no-op")
	}
}

// TestTimelyStarWarm pins the warm branch of TimelyScenario.Star: senders
// start at the Eq. 31 fair share and the bottleneck queue is prefilled.
func TestTimelyStarWarm(t *testing.T) {
	sc := NewTimelyScenario(2, 1)
	warm, err := TimelyWarmStart(sc.N, sc.Cfg.Delta, sc.Cfg.Beta, sc.Cfg.C, sc.Cfg.TLow, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw, star, senders, err := sc.Star(warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(senders) != sc.N {
		t.Fatalf("built %d senders, want %d", len(senders), sc.N)
	}
	// The start rate is applied by the flow's t=0 start event, so step the
	// simulator one tick before sampling (no RTT completes that fast, so
	// TIMELY has not adjusted anything yet).
	nw.RunUntil(des.Time(des.Microsecond))
	for i, s := range senders {
		if got, want := s.Rate(), warm.RatesBytes[i]; got != want {
			t.Errorf("sender %d rate = %v, want warm-start %v", i, got, want)
		}
	}
	if got := star.Bottleneck.Queue().Bytes(); got <= 0 {
		t.Errorf("warm TIMELY star left the bottleneck queue empty (%d bytes)", got)
	}
}
