package hybrid

import (
	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
	"ecndelay/internal/topo"
)

// Settle quantifies how quickly a queue trajectory reaches its steady
// state, in both simulated time and DES events — the cost a warm start is
// supposed to eliminate.
type Settle struct {
	// TailMean is the steady-state queue mean (bytes) over the last 40%
	// of the run; Band the relative envelope derived from the steady
	// oscillation amplitude around it.
	TailMean float64
	Band     float64
	// Time is the first instant from which the trajectory stays inside
	// the envelope for the rest of the run; Events the DES events
	// processed by then.
	Time   float64
	Events uint64
}

// settleBucket is the averaging window MeasureSettle smooths the queue
// trajectory with before comparing against the steady-state envelope: the
// DCQCN/TIMELY control loops oscillate at sub-millisecond periods, so 2 ms
// means average out the limit cycle while still resolving the cold-start
// transient (tens of ms).
const settleBucket = 2e-3

// MeasureSettle derives the steady-state envelope from the tail of the
// queue series qs and finds when the trajectory permanently enters it.
// evs must be sampled on the same grid, carrying cumulative processed-event
// counts. The trajectory is smoothed into 2 ms bucket means first; the
// envelope is 1.5× the tail buckets' own worst deviation (plus a 5%
// floor), so the measurement self-calibrates to however noisy the
// operating point is.
func MeasureSettle(qs, evs *stats.Series, horizon float64) Settle {
	s := Settle{}
	if len(qs.T) == 0 {
		return s
	}
	tail := horizon * 0.6
	s.TailMean = qs.WindowSummary(tail, horizon).Mean

	nb := int(horizon/settleBucket + 0.5)
	if nb < 1 {
		nb = 1
	}
	means := make([]float64, 0, nb)
	first := make([]int, 0, nb) // first sample index of each bucket
	for b := 0; b < nb; b++ {
		t0, t1 := float64(b)*settleBucket, float64(b+1)*settleBucket
		sum, cnt, fi := 0.0, 0, -1
		for i, t := range qs.T {
			if t < t0 || t >= t1 {
				continue
			}
			if fi < 0 {
				fi = i
			}
			sum += qs.V[i]
			cnt++
		}
		if cnt == 0 {
			continue
		}
		means = append(means, sum/float64(cnt))
		first = append(first, fi)
	}
	band := 0.0
	for b, m := range means {
		if qs.T[first[b]] >= tail {
			if d := relErr(m, s.TailMean); d > band {
				band = d
			}
		}
	}
	s.Band = band*1.5 + 0.05
	// Walk backwards: the settle bucket is just past the last excursion.
	idx := 0
	for b := len(means) - 1; b >= 0; b-- {
		if relErr(means[b], s.TailMean) > s.Band {
			idx = b + 1
			break
		}
	}
	if idx >= len(means) {
		idx = len(means) - 1
	}
	si := first[idx]
	s.Time = qs.T[si]
	if si < len(evs.V) {
		s.Events = uint64(evs.V[si])
	}
	return s
}

// MonitorEvents samples the simulator's cumulative processed-event count on
// the same grid MonitorQueueBytes uses, for MeasureSettle.
func MonitorEvents(sim *des.Simulator, interval des.Duration) *stats.Series {
	s := &stats.Series{}
	sim.Every(sim.Now().Add(interval), interval, func() {
		s.Add(sim.Now().Seconds(), float64(sim.Processed()))
	})
	return s
}

// ClosIncast builds the Clos realisation of the scenario: sc.N senders on
// a 2-tier leaf-spine fabric all sending to host 0, whose leaf→host port
// is the bottleneck — same capacity and RED profile as the star, so the
// same analytic fixed point applies. A non-nil warm start is applied to
// the senders and the bottleneck queue.
func (sc DCQCNScenario) ClosIncast(warm *WarmStart) (*netsim.Network, *topo.Clos, []*dcqcn.Sender, error) {
	nw := netsim.New(sc.Seed)
	radix := 4
	for radix*radix/2 < sc.N+1 {
		radix += 2
	}
	kmax := sc.Par.Kmax * MTU
	if sc.MistuneKmax > 0 {
		kmax *= sc.MistuneKmax
	}
	cl, err := topo.NewClos(nw, topo.ClosConfig{
		Radix:    radix,
		Tiers:    2,
		HostLink: netsim.LinkConfig{Bandwidth: sc.BwBytes(), PropDelay: des.Microsecond},
		Mark: func() netsim.Marker {
			return &netsim.REDMarker{
				Kmin: int(sc.Par.Kmin * MTU),
				Kmax: int(kmax),
				Pmax: sc.Par.Pmax,
				Rng:  nw.Rng,
			}
		},
		ECMPSeed: sc.Seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	senders, err := attachDCQCNIncast(cl, sc.N)
	if err != nil {
		return nil, nil, nil, err
	}
	if warm != nil {
		if err := warm.ApplyDCQCN(senders); err != nil {
			return nil, nil, nil, err
		}
		flows := make([]PrefillFlow, sc.N)
		for i := 0; i < sc.N; i++ {
			flows[i] = PrefillFlow{Flow: i, Src: cl.Hosts[i+1].ID(), Dst: cl.Hosts[0].ID()}
		}
		warm.Prefill(cl.HostPorts[0], flows)
	}
	return nw, cl, senders, nil
}

// attachDCQCNIncast gives every host a DCQCN endpoint and starts flow i on
// host i+1 toward host 0, all long-lived.
func attachDCQCNIncast(cl *topo.Clos, n int) ([]*dcqcn.Sender, error) {
	eps := make([]*dcqcn.Endpoint, len(cl.Hosts))
	for i, h := range cl.Hosts {
		ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
		if err != nil {
			return nil, err
		}
		eps[i] = ep
	}
	senders := make([]*dcqcn.Sender, 0, n)
	for i := 0; i < n; i++ {
		s, err := eps[i+1].NewFlow(i, cl.Hosts[0].ID(), -1, 0)
		if err != nil {
			return nil, err
		}
		senders = append(senders, s)
	}
	return senders, nil
}
