package hybrid

import (
	"math"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
	"ecndelay/internal/stats"
)

func TestDCQCNWarmStartWireUnits(t *testing.T) {
	pr := fluid.DefaultDCQCNParams(10)
	fp, err := fixedpoint.SolveDCQCN(pr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := DCQCNWarmStart(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.RatesBytes) != 10 || len(w.TargetsBytes) != 10 || len(w.Alphas) != 10 {
		t.Fatalf("warm start sized %d/%d/%d, want 10 each",
			len(w.RatesBytes), len(w.TargetsBytes), len(w.Alphas))
	}
	if got, want := w.RatesBytes[0], fp.RC*MTU; got != want {
		t.Errorf("RatesBytes[0] = %v, want RC*MTU = %v", got, want)
	}
	if got, want := w.QueueBytes, int(fp.Q*MTU); got != want {
		t.Errorf("QueueBytes = %d, want q**MTU = %d", got, want)
	}
	if w.Alphas[0] != fp.Alpha || w.FP.P != fp.P {
		t.Error("warm start did not carry the solved fixed point through")
	}
}

func TestTimelyWarmStartDefaults(t *testing.T) {
	cfg := fluid.DefaultPatchedTimelyConfig(2)
	w, err := TimelyWarmStart(2, cfg.Delta, cfg.Beta, cfg.C, cfg.TLow, 0)
	if err != nil {
		t.Fatal(err)
	}
	qPrime := cfg.C * cfg.TLow
	want := int(fixedpoint.PatchedTimelyQStar(2, cfg.Delta, cfg.Beta, cfg.C, qPrime))
	if w.QueueBytes != want {
		t.Errorf("QueueBytes = %d, want Eq. 31 q* = %d", w.QueueBytes, want)
	}
	if w.RatesBytes[0] != cfg.C/2 {
		t.Errorf("RatesBytes[0] = %v, want fair share %v", w.RatesBytes[0], cfg.C/2)
	}
	if _, err := TimelyWarmStart(0, cfg.Delta, cfg.Beta, cfg.C, cfg.TLow, 0); err == nil {
		t.Error("TimelyWarmStart accepted n=0")
	}
}

func TestApplyDCQCNLengthMismatch(t *testing.T) {
	w, err := DCQCNWarmStart(fluid.DefaultDCQCNParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyDCQCN(nil); err == nil {
		t.Error("ApplyDCQCN accepted a sender count mismatch")
	}
}

func TestPrefillFillsQueue(t *testing.T) {
	sc := NewDCQCNScenario(2, 1)
	warm, err := DCQCNWarmStart(sc.Par)
	if err != nil {
		t.Fatal(err)
	}
	_, star, _, err := sc.Star(warm)
	if err != nil {
		t.Fatal(err)
	}
	got := star.Bottleneck.Queue().Bytes()
	// The fill is whole MTU segments, minus the one segment the port
	// immediately pulls into transmission.
	want := (warm.QueueBytes / MTU) * MTU
	if got < want-2*MTU || got > want {
		t.Errorf("prefilled queue = %d bytes, want about %d", got, want)
	}
	if w2 := (&WarmStart{QueueBytes: MTU}); w2.Prefill(star.Bottleneck, nil) != 0 {
		t.Error("Prefill with no flows injected bytes")
	}
}

// TestWarmTrajectoryStaysInBand is the tentpole's warm-start validation:
// an obs probe on the bottleneck queue shows the warm-started trajectory
// stays within a tolerance band of the analytic equilibrium from t=0,
// while the cold start spends its transient far outside it.
func TestWarmTrajectoryStaysInBand(t *testing.T) {
	if testing.Short() {
		t.Skip("warm/cold trajectory probes take a few seconds")
	}
	const horizon = 0.02
	run := func(warm *WarmStart) *obs.Probe {
		sc := NewDCQCNScenario(10, 1)
		nw, star, _, err := sc.Star(warm)
		if err != nil {
			t.Fatal(err)
		}
		p := obs.NewProbe("queue_bytes", 0)
		p.Drive(nw.Sim, 100*des.Microsecond, func() float64 {
			return float64(star.Bottleneck.Queue().Bytes())
		})
		nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))
		return p
	}
	warm, err := DCQCNWarmStart(NewDCQCNScenario(10, 1).Par)
	if err != nil {
		t.Fatal(err)
	}
	qStar := warm.FP.Q * MTU
	warmDev := run(warm).MaxRelDev(qStar, 0, horizon)
	coldDev := run(nil).MaxRelDev(qStar, 0, horizon)
	// The band reflects the DCQCN limit cycle's own amplitude around q*;
	// the cold start's line-rate overshoot exceeds it several-fold.
	if warmDev > 1.0 {
		t.Errorf("warm trajectory left the band from t=0: max rel dev %.2f > 1.0", warmDev)
	}
	if coldDev < 2*warmDev {
		t.Errorf("cold transient (%.2f) not clearly outside the warm band (%.2f)", coldDev, warmDev)
	}
}

// TestWarmColdSameSteadyState is the property-test satellite: a
// warm-started packet run and a cold-started packet run must converge to
// the same steady-state queue histogram percentiles, on the star and on
// the Clos incast.
func TestWarmColdSameSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("warm/cold steady-state comparison takes several seconds")
	}
	const (
		horizon = 0.1
		tol     = 0.25 // histogram-percentile tolerance, obsreport-style
	)
	type build func(warm *WarmStart) (*netsim.Network, *netsim.Port, error)
	sc := NewDCQCNScenario(10, 1)
	warm, err := DCQCNWarmStart(sc.Par)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		build build
	}{
		{"star", func(w *WarmStart) (*netsim.Network, *netsim.Port, error) {
			nw, star, _, err := sc.Star(w)
			if err != nil {
				return nil, nil, err
			}
			return nw, star.Bottleneck, nil
		}},
		{"clos", func(w *WarmStart) (*netsim.Network, *netsim.Port, error) {
			nw, cl, _, err := sc.ClosIncast(w)
			if err != nil {
				return nil, nil, err
			}
			return nw, cl.HostPorts[0], nil
		}},
	}
	percentiles := []float64{50, 90, 99}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tails := make(map[bool][]float64, 2)
			for _, warmRun := range []bool{false, true} {
				var w *WarmStart
				if warmRun {
					w = warm
				}
				nw, port, err := tc.build(w)
				if err != nil {
					t.Fatal(err)
				}
				qs := netsim.MonitorQueueBytes(nw.Sim, port, 100*des.Microsecond)
				nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))
				tails[warmRun] = qs.Window(horizon*0.6, horizon)
			}
			for _, pct := range percentiles {
				cold := percentile(t, tails[false], pct)
				warmv := percentile(t, tails[true], pct)
				if d := relErr(warmv, cold); d > tol {
					t.Errorf("p%.0f: warm %.0f vs cold %.0f bytes, rel %.3f > %.2f",
						pct, warmv, cold, d, tol)
				}
			}
		})
	}
}

func percentile(t *testing.T, vals []float64, pct float64) float64 {
	t.Helper()
	v, err := stats.Percentile(vals, pct)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRelErrDenominatorFloor(t *testing.T) {
	if d := relErr(1e-6, 0); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("relErr with zero want = %v", d)
	}
}
