package hybrid

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"ecndelay/internal/sweep"
)

var update = flag.Bool("update", false, "regenerate the golden crossval fixtures")

// goldenSeed pins the packet-sim seed the fixtures are rendered at.
const goldenSeed = 1

// TestCrossValOperatingPoints is the gate the crossval experiment wires
// into CI: every check at every canonical operating point must be inside
// its documented tolerance.
func TestCrossValOperatingPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("crossval operating points take a few seconds")
	}
	for _, op := range CIOperatingPoints() {
		op := op
		t.Run(op.Proto+"_n"+itoa(op.N), func(t *testing.T) {
			res, err := RunOp(op, goldenSeed)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Err(); err != nil {
				t.Error(err)
			}
			if len(res.Traj) == 0 {
				t.Error("crossval produced no shared trajectory")
			}
		})
	}
}

// TestCrossValMistunedFails is the negative control: a packet realisation
// whose RED Kmax is 4x what the analytic layer believes must land outside
// the queue tolerances — proving the gate actually fails on divergence
// rather than being vacuously wide.
func TestCrossValMistunedFails(t *testing.T) {
	if testing.Short() {
		t.Skip("mistuned crossval takes a few seconds")
	}
	sc := NewDCQCNScenario(10, goldenSeed)
	sc.MistuneKmax = 4
	res, err := CrossValDCQCN(sc, 0.1, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatalf("mistuned run (Kmax x4) passed every check: %+v", res.Checks)
	}
	// The mistuning must be caught by the packet-vs-oracle checks; the
	// fluid layer is untouched and must still match the fixed point.
	for _, c := range res.Checks {
		if c.Name == "fluid_q_vs_fixed_point" && !c.OK() {
			t.Errorf("mistuning the packet layer broke the fluid check: %+v", c)
		}
	}
}

// runGolden executes the four canonical operating points through the sweep
// engine at the given worker count and renders each result.
func runGolden(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	ops := CIOperatingPoints()
	rendered := make([][]byte, len(ops))
	var mu sync.Mutex
	jobs := make([]sweep.Job, len(ops))
	for i, op := range ops {
		i, op := i, op
		jobs[i] = sweep.Job{
			ID: "crossval/" + op.Proto + "/n" + itoa(op.N),
			Run: func(int64) (map[string]float64, error) {
				// The fixture seed is pinned; the engine's derived
				// per-job seed is ignored on purpose.
				res, err := RunOp(op, goldenSeed)
				if err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if err := res.Render(&buf); err != nil {
					return nil, err
				}
				mu.Lock()
				rendered[i] = buf.Bytes()
				mu.Unlock()
				return map[string]float64{"checks": float64(len(res.Checks))}, nil
			},
		}
	}
	sum, err := sweep.Run(sweep.Config{Workers: workers, BaseSeed: goldenSeed}, jobs, &sweep.MemorySink{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("%d golden jobs failed", sum.Failed)
	}
	out := make(map[string][]byte, len(ops))
	for i, op := range ops {
		out["crossval_"+op.Proto+"_n"+itoa(op.N)+".golden"] = rendered[i]
	}
	return out
}

// TestCrossValGolden pins the rendered fluid-vs-packet trajectory diffs as
// byte-identical fixtures: a rerun must reproduce them exactly, and a
// 4-worker sweep must produce the same bytes as the 1-worker sweep that
// wrote them. Regenerate with:
//
//	go test ./internal/hybrid -run TestCrossValGolden -update
func TestCrossValGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden crossval fixtures take several seconds")
	}
	serial := runGolden(t, 1)
	if *update {
		for name, data := range serial {
			if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range serial {
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("missing fixture %s (run with -update): %v", name, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s: rendered fixture differs from testdata (rerun with -update if intended)\ngot:\n%s\nwant:\n%s",
				name, data, want)
		}
	}
	parallel := runGolden(t, 4)
	for name, data := range serial {
		if !bytes.Equal(data, parallel[name]) {
			t.Errorf("%s: 4-worker sweep rendered different bytes than 1-worker", name)
		}
	}
}

// TestRunOpUnknownProto pins the error path.
func TestRunOpUnknownProto(t *testing.T) {
	if _, err := RunOp(OpPoint{Proto: "tcp", N: 2, Horizon: 0.01}, 1); err == nil {
		t.Fatal("RunOp accepted an unknown protocol")
	}
}

// TestCheckArithmetic pins RelErr/OK/Failures/Err on hand-built checks.
func TestCheckArithmetic(t *testing.T) {
	ok := Check{Name: "a", Want: 100, Got: 104, Tol: 0.05}
	bad := Check{Name: "b", Want: 100, Got: 120, Tol: 0.05}
	if !ok.OK() || ok.RelErr() != 0.04 {
		t.Errorf("ok check: OK=%t rel=%v", ok.OK(), ok.RelErr())
	}
	if bad.OK() {
		t.Error("bad check passed")
	}
	r := Result{Name: "x", Checks: []Check{ok, bad}}
	if n := len(r.Failures()); n != 1 {
		t.Errorf("Failures() = %d, want 1", n)
	}
	if err := r.Err(); err == nil {
		t.Error("Err() = nil with a failing check")
	}
	if err := (Result{Name: "y", Checks: []Check{ok}}).Err(); err != nil {
		t.Errorf("Err() = %v with all checks passing", err)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
