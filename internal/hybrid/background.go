package hybrid

import (
	"fmt"
	"math"

	"ecndelay/internal/des"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
)

// BackgroundConfig sizes a fluid background aggregate attached to one
// bottleneck port.
type BackgroundConfig struct {
	// Flows is the number of background DCQCN flows the aggregate stands
	// in for.
	Flows int
	// Par carries the Table 1 parameters in paper units (packets of MTU
	// bytes); Par.C must be the bottleneck capacity and Par.Kmin/Kmax/Pmax
	// must match the port's RED profile. Par.N is overridden with Flows.
	Par fixedpoint.DCQCNParams
	// Tick is the coupling cadence (default 10 µs): each tick the
	// aggregate reads the port's real occupancy and transmitted bytes,
	// advances the ODE, and writes its occupancy back via SetVirtualBytes.
	Tick des.Duration
	// ColdStart starts the aggregate at line rate with an empty fluid
	// queue (the DCQCN cold start). The default warm-starts it at its own
	// N=Flows fixed point, which is the right choice when the packet side
	// is warm-started too.
	ColdStart bool
}

// BackgroundAggregate models a population of DCQCN background flows as a
// symmetric fluid ODE co-simulated with the packet network: every tick it
// measures the foreground's service share, integrates the Figure 1
// dynamics against the combined (real + fluid) queue, and superimposes its
// occupancy on the port's marking view. Foreground packets keep priority
// on the wire — the aggregate absorbs leftover capacity — but both layers
// see one marking probability, so the coupled system settles at the
// (foreground + background)-flow fixed point. See DESIGN.md ("Hybrid
// fluid↔packet coupling") for the contract and error bounds.
type BackgroundAggregate struct {
	cfg  BackgroundConfig
	port *netsim.Port
	sim  *des.Simulator

	// Symmetric per-flow state in paper units (packets, packets/s).
	alpha, rt, rc float64
	qBg           float64 // aggregate fluid queue, packets
	lineRate      float64 // per-flow clamp, packets/s
	rmin          float64

	lastTx int64 // port TxBytes at the previous tick

	// pHist delays the marking probability by τ* in tick-sized steps.
	pHist []float64
	pPos  int
}

// AttachBackground creates the aggregate and registers its coupling tick
// on the port's simulator. Call before running the network.
func AttachBackground(port *netsim.Port, cfg BackgroundConfig) (*BackgroundAggregate, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("hybrid: background flows must be positive, got %d", cfg.Flows)
	}
	cfg.Par.N = cfg.Flows
	if err := cfg.Par.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tick == 0 {
		cfg.Tick = 10 * des.Microsecond
	}
	b := &BackgroundAggregate{
		cfg:      cfg,
		port:     port,
		sim:      port.Sim(),
		lineRate: cfg.Par.C,
		rmin:     cfg.Par.C / 1000,
	}
	if cfg.ColdStart {
		b.alpha, b.rt, b.rc = 1, b.lineRate, b.lineRate
	} else {
		fp, err := fixedpoint.SolveDCQCN(cfg.Par)
		if err != nil {
			return nil, err
		}
		b.alpha, b.rt, b.rc = fp.Alpha, fp.RT, fp.RC
		b.qBg = fp.Q
		port.Queue().SetVirtualBytes(int(b.qBg * MTU))
	}
	lags := int(math.Ceil(cfg.Par.TauStar / cfg.Tick.Seconds()))
	if lags < 1 {
		lags = 1
	}
	b.pHist = make([]float64, lags)
	p0 := b.markProb()
	for i := range b.pHist {
		b.pHist[i] = p0
	}
	b.sim.Every(b.sim.Now().Add(cfg.Tick), cfg.Tick, b.tick)
	return b, nil
}

// Rate reports the aggregate's current total offered rate in bytes/s.
func (b *BackgroundAggregate) Rate() float64 {
	return b.rc * float64(b.cfg.Flows) * MTU
}

// QueueBytes reports the aggregate's fluid queue occupancy in bytes.
func (b *BackgroundAggregate) QueueBytes() int { return int(b.qBg * MTU) }

// Alpha reports the aggregate's α.
func (b *BackgroundAggregate) Alpha() float64 { return b.alpha }

// markProb evaluates the extended RED profile on the combined occupancy.
func (b *BackgroundAggregate) markProb() float64 {
	pr := b.cfg.Par
	qTot := float64(b.port.Queue().Bytes())/MTU + b.qBg
	return fluid.REDMarkExtended(qTot, pr.Kmin, pr.Kmax, pr.Pmax)
}

// tick advances the aggregate by one coupling interval.
func (b *BackgroundAggregate) tick() {
	pr := b.cfg.Par
	dt := b.cfg.Tick.Seconds()

	// Foreground service share over the last tick, in packets/s. The
	// aggregate drains with whatever the foreground left unused.
	tx := b.port.TxBytes
	fg := float64(tx-b.lastTx) / MTU / dt
	b.lastTx = tx
	avail := pr.C - fg
	if avail < 0 {
		avail = 0
	}

	// Delayed marking probability: overwrite the slot τ* old with the
	// current observation and consume the displaced value.
	pNow := b.markProb()
	pDel := b.pHist[b.pPos]
	b.pHist[b.pPos] = pNow
	b.pPos = (b.pPos + 1) % len(b.pHist)

	// Integrate the symmetric Figure 1 dynamics with the delayed p frozen
	// across the tick. Euler substeps keep the stiff α/rate terms stable
	// at the 10 µs coupling cadence.
	sub := int(dt/1e-6 + 0.5)
	if sub < 1 {
		sub = 1
	}
	h := dt / float64(sub)
	n := float64(b.cfg.Flows)
	for s := 0; s < sub; s++ {
		a, bb, c, d, e := dcqcnABCDE(pr, pDel, b.rc, b.rmin)
		dAlpha := pr.G / pr.TauPrime * ((-fixedpoint.Expm1Pow(pDel, pr.TauPrime*b.rc)) - b.alpha)
		dRT := -(b.rt-b.rc)/pr.Tau*a + pr.RAI*b.rc*(c+e)
		dRC := -b.rc*b.alpha/(2*pr.Tau)*a + (b.rt-b.rc)/2*b.rc*(bb+d)
		dQ := n*b.rc - avail
		if b.qBg <= 0 && dQ < 0 {
			dQ = 0
		}
		b.alpha = clamp(b.alpha+h*dAlpha, 0, 1)
		b.rt = clamp(b.rt+h*dRT, b.rmin, b.lineRate)
		b.rc = clamp(b.rc+h*dRC, b.rmin, b.lineRate)
		b.qBg += h * dQ
		if b.qBg < 0 {
			b.qBg = 0
		}
	}
	b.port.Queue().SetVirtualBytes(int(b.qBg * MTU))
}

// dcqcnABCDE mirrors the fluid model's Eq. 12 event-rate terms, including
// the p→0 limits (fluid.DCQCNSystem.abcde).
func dcqcnABCDE(pr fixedpoint.DCQCNParams, p, rc, rmin float64) (a, b, c, d, e float64) {
	if rc < rmin {
		rc = rmin
	}
	if p < 1e-12 {
		a = pr.Tau * rc * p
		b = 1 / pr.B
		c = 1 / pr.B
		d = 1 / (pr.T * rc)
		e = d
		return
	}
	a = -fixedpoint.Expm1Pow(p, pr.Tau*rc)
	denB := fixedpoint.Expm1Pow(p, -pr.B)
	b = p / denB
	c = fixedpoint.Pow1mp(p, pr.F*pr.B) * p / denB
	denT := fixedpoint.Expm1Pow(p, -pr.T*rc)
	d = p / denT
	e = fixedpoint.Pow1mp(p, pr.F*pr.T*rc) * p / denT
	return
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
