// Package hybrid couples the repo's two validated models of the same
// protocols — the analytic layer (internal/fixedpoint, internal/fluid) and
// the packet-level simulator (internal/netsim + endpoint packages) — into a
// co-simulation and cross-validation toolkit:
//
//   - Equilibrium warm start: solve the paper's fixed point (Theorem 1 for
//     DCQCN, Eq. 31 for patched TIMELY) and start packet-sim endpoints at
//     the analytic operating point — rates, α, and a prefilled bottleneck
//     queue — so steady-state studies skip the cold-start transient.
//   - Fluid background aggregates: model a large background flow population
//     as a fluid ODE whose queue occupancy is superimposed on a real switch
//     queue each DES tick (Queue.SetVirtualBytes), while foreground flows
//     stay packet-accurate.
//   - Automatic cross-validation: run matched fluid and packet scenarios and
//     diff queue trajectories and tail percentiles against each other and
//     against the fixed-point predictions, with explicit tolerances — the
//     paper's own math as a standing regression oracle for the simulator.
//
// Unit convention: the analytic layer works in paper units (packets of
// netsim.DataMTU bytes, packets/second) for DCQCN and in bytes for TIMELY;
// the packet simulator always works in bytes. Conversions happen at this
// package's boundary and nowhere else.
package hybrid

import (
	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/timely"
)

// MTU is the data segment size shared by both layers: the fluid models
// count packets of this many bytes, the packet simulator sends them.
const MTU = netsim.DataMTU

// DCQCNScenario is a matched fluid/packet operating point: N long-lived
// DCQCN flows through one bottleneck star. Params is in paper units
// (packets of MTU bytes); the packet realisation scales it by MTU.
type DCQCNScenario struct {
	N    int
	Par  fixedpoint.DCQCNParams
	Seed int64
	// MistuneKmax multiplies the packet realisation's RED Kmax without
	// informing the analytic layer — a deliberate inconsistency for
	// negative-control tests proving the crossval gate fails when the
	// layers diverge. Zero or 1 means faithful.
	MistuneKmax float64
}

// NewDCQCNScenario returns the Table 1 default operating point for n flows
// on a 40 Gb/s bottleneck (the Figure 2 configuration).
func NewDCQCNScenario(n int, seed int64) DCQCNScenario {
	return DCQCNScenario{N: n, Par: fluid.DefaultDCQCNParams(n), Seed: seed}
}

// BwBytes is the bottleneck bandwidth in wire units.
func (sc DCQCNScenario) BwBytes() float64 { return sc.Par.C * MTU }

// Star builds the packet-level realisation: a star with sc.N senders, the
// RED profile of sc.Par scaled to bytes, and DCQCN default endpoints. A
// non-nil warm start is applied to the senders and the bottleneck queue
// before the run.
func (sc DCQCNScenario) Star(warm *WarmStart) (*netsim.Network, *netsim.Star, []*dcqcn.Sender, error) {
	nw := netsim.New(sc.Seed)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: sc.N,
		Link:    netsim.LinkConfig{Bandwidth: sc.BwBytes(), PropDelay: des.Microsecond},
		Mark: func() netsim.Marker {
			kmax := sc.Par.Kmax * MTU
			if sc.MistuneKmax > 0 {
				kmax *= sc.MistuneKmax
			}
			return &netsim.REDMarker{
				Kmin: int(sc.Par.Kmin * MTU),
				Kmax: int(kmax),
				Pmax: sc.Par.Pmax,
				Rng:  nw.Rng,
			}
		},
	})
	if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
		return nil, nil, nil, err
	}
	senders := make([]*dcqcn.Sender, 0, sc.N)
	for i, h := range star.Senders {
		ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
		if err != nil {
			return nil, nil, nil, err
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		senders = append(senders, s)
	}
	if warm != nil {
		if err := warm.ApplyDCQCN(senders); err != nil {
			return nil, nil, nil, err
		}
		warm.Prefill(star.Bottleneck, starFlows(star))
	}
	return nw, star, senders, nil
}

// Fluid builds the matched fluid model. A non-nil warm start sets the
// initial per-flow rates (the fluid model's queue and α warm-start
// implicitly: its Initial() starts at α=1 / empty queue, so warm fluid runs
// use InitialRC only — the ODE reaches its fixed point regardless).
func (sc DCQCNScenario) Fluid(warm *WarmStart) (*fluid.DCQCNSystem, error) {
	cfg := fluid.DCQCNConfig{Params: sc.Par}
	if warm != nil {
		rc := make([]float64, sc.N)
		for i := range rc {
			rc[i] = warm.RatesBytes[i] / MTU
		}
		cfg.InitialRC = rc
	}
	return fluid.NewDCQCN(cfg)
}

// TimelyScenario is a matched fluid/packet operating point for patched
// TIMELY: N long-lived flows through one 10 Gb/s star. Cfg (bytes units)
// drives the fluid model and the Eq. 31 prediction; Par configures the
// packet endpoints.
type TimelyScenario struct {
	N    int
	Cfg  fluid.TimelyConfig
	Par  timely.Params
	Seed int64
}

// NewTimelyScenario returns the §4.3 patched-TIMELY operating point for n
// flows (the Figure 12 configuration).
func NewTimelyScenario(n int, seed int64) TimelyScenario {
	return TimelyScenario{
		N:    n,
		Cfg:  fluid.DefaultPatchedTimelyConfig(n),
		Par:  timely.DefaultPatchedParams(),
		Seed: seed,
	}
}

// Star builds the packet-level realisation. A non-nil warm start sets the
// per-flow start rates and prefills the bottleneck queue.
func (sc TimelyScenario) Star(warm *WarmStart) (*netsim.Network, *netsim.Star, []*timely.Sender, error) {
	nw := netsim.New(sc.Seed)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: sc.N,
		Link:    netsim.LinkConfig{Bandwidth: sc.Cfg.C, PropDelay: des.Microsecond},
	})
	if _, err := timely.NewEndpoint(star.Receiver, sc.Par); err != nil {
		return nil, nil, nil, err
	}
	senders := make([]*timely.Sender, 0, sc.N)
	for i, h := range star.Senders {
		ep, err := timely.NewEndpoint(h, sc.Par)
		if err != nil {
			return nil, nil, nil, err
		}
		rate := 0.0
		if warm != nil {
			rate = warm.RatesBytes[i]
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0, rate)
		if err != nil {
			return nil, nil, nil, err
		}
		senders = append(senders, s)
	}
	if warm != nil {
		warm.Prefill(star.Bottleneck, starFlows(star))
	}
	return nw, star, senders, nil
}

// starFlows derives the prefill flow identities from a star: flow i runs
// sender i → receiver.
func starFlows(star *netsim.Star) []PrefillFlow {
	flows := make([]PrefillFlow, len(star.Senders))
	for i, h := range star.Senders {
		flows[i] = PrefillFlow{Flow: i, Src: h.ID(), Dst: star.Receiver.ID()}
	}
	return flows
}

func relErr(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	w := want
	if w < 0 {
		w = -w
	}
	if w < 1e-12 {
		w = 1e-12
	}
	return d / w
}
