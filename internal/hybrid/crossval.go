package hybrid

import (
	"fmt"
	"io"

	"ecndelay/internal/des"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
)

// Tolerance bounds the fluid↔packet disagreement a cross-validation run
// accepts, all as relative errors. The defaults are documented in
// DESIGN.md ("Hybrid fluid↔packet coupling"): the fluid model tracks the
// analytic fixed point tightly, while the packet layer adds burst noise,
// CNP/ack quantisation and timer discretisation around it.
type Tolerance struct {
	FluidVsFP  float64 // fluid tail queue mean vs analytic q*
	QueueMean  float64 // packet vs fluid tail queue mean
	QueueP50   float64 // packet vs fluid tail queue median
	FixedPoint float64 // packet tail queue mean vs analytic q*
	Rate       float64 // packet mean per-flow rate vs analytic fair share
}

// DefaultTolerance returns the bounds the CI gate enforces. Measured
// headroom at the canonical operating points (fixed seeds): the worst
// packet-vs-fluid queue mean is ~0.32 (DCQCN N=2, whose small q* ≈ 20 KB
// makes the packet layer's non-negativity bias largest), the worst median
// ~0.24, and rates agree to <0.1%. A mistuned run (e.g. the packet RED
// profile 4× off) lands far outside every queue bound.
func DefaultTolerance() Tolerance {
	return Tolerance{
		FluidVsFP:  0.05,
		QueueMean:  0.40,
		QueueP50:   0.35,
		FixedPoint: 0.40,
		Rate:       0.05,
	}
}

// OpPoint names one canonical cross-validation operating point.
type OpPoint struct {
	Proto   string // "dcqcn" or "timely"
	N       int
	Horizon float64
}

// CIOperatingPoints returns the operating points the crossval CI gate
// covers: two per protocol. Horizons are long enough for the fluid tail to
// settle onto its fixed point (DCQCN N=2 converges slowest).
func CIOperatingPoints() []OpPoint {
	return []OpPoint{
		{Proto: "dcqcn", N: 2, Horizon: 0.1},
		{Proto: "dcqcn", N: 10, Horizon: 0.1},
		{Proto: "timely", N: 2, Horizon: 0.25},
		{Proto: "timely", N: 4, Horizon: 0.25},
	}
}

// RunOp cross-validates one operating point with the default tolerances.
func RunOp(op OpPoint, seed int64) (Result, error) {
	switch op.Proto {
	case "dcqcn":
		return CrossValDCQCN(NewDCQCNScenario(op.N, seed), op.Horizon, DefaultTolerance())
	case "timely":
		return CrossValTimely(NewTimelyScenario(op.N, seed), op.Horizon, DefaultTolerance())
	}
	return Result{}, fmt.Errorf("hybrid: unknown protocol %q", op.Proto)
}

// Check is one scalar agreement test: an oracle value, a measurement, and
// the relative tolerance that separates pass from fail.
type Check struct {
	Name      string
	Want, Got float64
	Tol       float64
}

// RelErr is |got-want| / max(|want|, ε).
func (c Check) RelErr() float64 { return relErr(c.Got, c.Want) }

// OK reports whether the measurement is inside the tolerance.
func (c Check) OK() bool { return c.RelErr() <= c.Tol }

// TrajPoint is one instant of the matched queue trajectories, in KB.
type TrajPoint struct {
	T        float64
	FluidKB  float64
	PacketKB float64
}

// Result is the outcome of cross-validating one operating point.
type Result struct {
	Name   string
	Checks []Check
	// Traj is the fluid and packet queue trajectory on a shared 1 ms
	// grid, for reports and golden fixtures.
	Traj []TrajPoint
}

// Failures returns the checks outside tolerance.
func (r Result) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK() {
			out = append(out, c)
		}
	}
	return out
}

// Err summarises the failures, or nil if every check passed.
func (r Result) Err() error {
	fails := r.Failures()
	if len(fails) == 0 {
		return nil
	}
	msg := fmt.Sprintf("crossval %s: %d/%d checks failed:", r.Name, len(fails), len(r.Checks))
	for _, c := range fails {
		msg += fmt.Sprintf(" [%s want %.6g got %.6g rel %.3f > tol %.3f]",
			c.Name, c.Want, c.Got, c.RelErr(), c.Tol)
	}
	return fmt.Errorf("%s", msg)
}

// Render writes the result in a deterministic text form — the golden
// fixture format under internal/hybrid/testdata.
func (r Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# crossval %s\n", r.Name); err != nil {
		return err
	}
	for _, c := range r.Checks {
		if _, err := fmt.Fprintf(w, "check %s want=%.6g got=%.6g rel=%.4f tol=%.3f ok=%t\n",
			c.Name, c.Want, c.Got, c.RelErr(), c.Tol, c.OK()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "traj t_s fluid_kb packet_kb\n"); err != nil {
		return err
	}
	for _, p := range r.Traj {
		if _, err := fmt.Fprintf(w, "%.4f %.3f %.3f\n", p.T, p.FluidKB, p.PacketKB); err != nil {
			return err
		}
	}
	return nil
}

// trajGrid pairs fluid samples with the packet queue series on a 1 ms grid.
// Fluid samples land on exact multiples of the sample stride; the packet
// series is step-interpolated to the same instants.
func trajGrid(sm []fluid.Sample, qIdx int, scaleKB float64, qs *stats.Series, horizon float64) []TrajPoint {
	var out []TrajPoint
	pi := 0
	for _, s := range sm {
		// Keep ~1 ms resolution regardless of the fluid sample stride.
		if len(out) > 0 && s.T < out[len(out)-1].T+1e-3-1e-9 {
			continue
		}
		if s.T > horizon+1e-9 {
			break
		}
		for pi+1 < len(qs.T) && qs.T[pi+1] <= s.T+1e-9 {
			pi++
		}
		pkt := 0.0
		if len(qs.V) > 0 && qs.T[pi] <= s.T+1e-9 {
			pkt = qs.V[pi] / 1000
		}
		out = append(out, TrajPoint{T: s.T, FluidKB: s.Y[qIdx] * scaleKB, PacketKB: pkt})
	}
	return out
}

func tailVals(sm []fluid.Sample, idx int, tFrom float64) []float64 {
	var vals []float64
	for _, s := range sm {
		if s.T >= tFrom {
			vals = append(vals, s.Y[idx])
		}
	}
	return vals
}

func median(vals []float64) float64 {
	m, err := stats.Percentile(vals, 50)
	if err != nil {
		return 0
	}
	return m
}

// CrossValDCQCN runs the matched fluid and packet realisations of sc over
// the horizon and checks their queue trajectories and rates against each
// other and against the Theorem 1 fixed point. The returned Result carries
// every check (use Err for the verdict) and the shared trajectory.
func CrossValDCQCN(sc DCQCNScenario, horizon float64, tol Tolerance) (Result, error) {
	res := Result{Name: fmt.Sprintf("dcqcn_n%d", sc.N)}
	fp, err := fixedpoint.SolveDCQCN(sc.Par)
	if err != nil {
		return res, err
	}

	sys, err := sc.Fluid(nil)
	if err != nil {
		return res, err
	}
	sm := fluid.Run(sys, 1e-6, horizon, 1e-4)

	nw, star, senders, err := sc.Star(nil)
	if err != nil {
		return res, err
	}
	qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
	rs := &stats.Series{}
	nw.Sim.Every(0, 100*des.Microsecond, func() {
		sum := 0.0
		for _, s := range senders {
			sum += s.Rate()
		}
		rs.Add(nw.Sim.Now().Seconds(), sum/float64(len(senders)))
	})
	nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))

	tail := horizon * 0.6
	fq := tailVals(sm, sys.QIndex(), tail)
	fqMean := stats.Summarize(fq).Mean // packets ≡ KB
	pq := qs.Window(tail, horizon)
	pqMean := stats.Summarize(pq).Mean / 1000
	pqP50 := median(pq) / 1000
	prMean := stats.Summarize(rs.Window(tail, horizon)).Mean // bytes/s

	res.Checks = []Check{
		{Name: "fluid_q_vs_fixed_point", Want: fp.Q, Got: fqMean, Tol: tol.FluidVsFP},
		{Name: "packet_q_vs_fluid", Want: fqMean, Got: pqMean, Tol: tol.QueueMean},
		{Name: "packet_q_p50_vs_fluid", Want: median(fq), Got: pqP50, Tol: tol.QueueP50},
		{Name: "packet_q_vs_fixed_point", Want: fp.Q, Got: pqMean, Tol: tol.FixedPoint},
		{Name: "packet_rate_vs_fair_share", Want: fp.RC * MTU, Got: prMean, Tol: tol.Rate},
	}
	res.Traj = trajGrid(sm, sys.QIndex(), 1, qs, horizon)
	return res, nil
}

// CrossValTimely runs the matched fluid and packet realisations of the
// patched-TIMELY scenario and checks them against each other and the Eq. 31
// fixed point.
func CrossValTimely(sc TimelyScenario, horizon float64, tol Tolerance) (Result, error) {
	res := Result{Name: fmt.Sprintf("timely_n%d", sc.N)}
	sys, err := fluid.NewPatchedTimely(sc.Cfg)
	if err != nil {
		return res, err
	}
	qStar := sys.FixedPointQueue() // bytes
	sm := fluid.Run(sys, 1e-6, horizon, 1e-4)

	nw, star, senders, err := sc.Star(nil)
	if err != nil {
		return res, err
	}
	qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
	rs := &stats.Series{}
	nw.Sim.Every(0, 100*des.Microsecond, func() {
		sum := 0.0
		for _, s := range senders {
			sum += s.Rate()
		}
		rs.Add(nw.Sim.Now().Seconds(), sum/float64(len(senders)))
	})
	nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))

	tail := horizon * 0.6
	fq := tailVals(sm, sys.QIndex(), tail)
	fqMeanKB := stats.Summarize(fq).Mean / 1000
	pq := qs.Window(tail, horizon)
	pqMeanKB := stats.Summarize(pq).Mean / 1000
	pqP50KB := median(pq) / 1000
	prMean := stats.Summarize(rs.Window(tail, horizon)).Mean

	res.Checks = []Check{
		{Name: "fluid_q_vs_fixed_point", Want: qStar / 1000, Got: fqMeanKB, Tol: tol.FluidVsFP},
		{Name: "packet_q_vs_fluid", Want: fqMeanKB, Got: pqMeanKB, Tol: tol.QueueMean},
		{Name: "packet_q_p50_vs_fluid", Want: median(fq) / 1000, Got: pqP50KB, Tol: tol.QueueP50},
		{Name: "packet_q_vs_fixed_point", Want: qStar / 1000, Got: pqMeanKB, Tol: tol.FixedPoint},
		{Name: "packet_rate_vs_fair_share", Want: sc.Cfg.C / float64(sc.N), Got: prMean, Tol: tol.Rate},
	}
	res.Traj = trajGrid(sm, sys.QIndex(), 1.0/1000, qs, horizon)
	return res, nil
}
