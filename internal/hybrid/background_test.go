package hybrid

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
)

func TestAttachBackgroundValidation(t *testing.T) {
	sc := NewDCQCNScenario(2, 1)
	_, star, _, err := sc.Star(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachBackground(star.Bottleneck, BackgroundConfig{Flows: 0, Par: sc.Par}); err == nil {
		t.Error("AttachBackground accepted zero flows")
	}
	bad := sc.Par
	bad.Tau = -1
	if _, err := AttachBackground(star.Bottleneck, BackgroundConfig{Flows: 4, Par: bad}); err == nil {
		t.Error("AttachBackground accepted invalid params")
	}
}

func TestBackgroundWarmInit(t *testing.T) {
	sc := NewDCQCNScenario(2, 1)
	_, star, _, err := sc.Star(nil)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := AttachBackground(star.Bottleneck, BackgroundConfig{Flows: 6, Par: sc.Par})
	if err != nil {
		t.Fatal(err)
	}
	// Warm default: the aggregate starts at its own 6-flow fixed point and
	// its fluid queue is already superimposed on the marking view.
	if bg.QueueBytes() <= 0 {
		t.Error("warm aggregate started with an empty fluid queue")
	}
	if got := star.Bottleneck.Queue().MarkBytes(); got != bg.QueueBytes() {
		t.Errorf("MarkBytes = %d, want the aggregate's %d", got, bg.QueueBytes())
	}
	if a := bg.Alpha(); a <= 0 || a >= 1 {
		t.Errorf("warm aggregate alpha = %v, want interior of (0,1)", a)
	}
	if bg.Rate() <= 0 {
		t.Error("warm aggregate has zero rate")
	}
}

// TestBackgroundCoupledFixedPoint runs 2 packet + 6 fluid flows and checks
// the coupled marking queue settles near the 8-flow analytic fixed point —
// the property that makes the aggregate a faithful stand-in.
func TestBackgroundCoupledFixedPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled background run takes a few seconds")
	}
	const horizon = 0.1
	sc := NewDCQCNScenario(2, 1)
	nw, star, _, err := sc.Star(nil)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := AttachBackground(star.Bottleneck, BackgroundConfig{
		Flows: 6, Par: sc.Par, ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mark := &stats.Series{}
	nw.Sim.Every(des.Time(100*des.Microsecond), 100*des.Microsecond, func() {
		mark.Add(nw.Sim.Now().Seconds(), float64(star.Bottleneck.Queue().MarkBytes()))
	})
	nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))

	eight := NewDCQCNScenario(8, 1)
	warm, err := DCQCNWarmStart(eight.Par)
	if err != nil {
		t.Fatal(err)
	}
	qStar := warm.FP.Q * MTU
	got := stats.Summarize(mark.Window(horizon*0.6, horizon)).Mean
	if d := relErr(got, qStar); d > 0.30 {
		t.Errorf("coupled marking queue %.0f vs 8-flow q* %.0f bytes, rel %.3f > 0.30", got, qStar, d)
	}
	// The aggregate must carry roughly its population's share of capacity.
	fair := sc.Par.C * MTU * 6 / 8
	if d := relErr(bg.Rate(), fair); d > 0.5 {
		t.Errorf("aggregate rate %.3g vs 6/8 share %.3g, rel %.3f > 0.5", bg.Rate(), fair, d)
	}
}

// TestVirtualBytesDefaultZero pins the nil-by-default contract of the
// netsim hook: without an aggregate, the marking view equals the real
// queue, so every existing run is bit-identical.
func TestVirtualBytesDefaultZero(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	q := star.Bottleneck.Queue()
	if q.VirtualBytes() != 0 || q.MarkBytes() != q.Bytes() {
		t.Errorf("fresh queue: virtual=%d mark=%d real=%d", q.VirtualBytes(), q.MarkBytes(), q.Bytes())
	}
	q.SetVirtualBytes(5000)
	if q.MarkBytes() != q.Bytes()+5000 {
		t.Errorf("MarkBytes = %d, want real+5000", q.MarkBytes())
	}
	q.SetVirtualBytes(-1)
	if q.VirtualBytes() != 0 {
		t.Errorf("negative SetVirtualBytes clamped to %d, want 0", q.VirtualBytes())
	}
}

func TestMeasureSettleEmptySeries(t *testing.T) {
	s := MeasureSettle(&stats.Series{}, &stats.Series{}, 0.1)
	if s.TailMean != 0 || s.Events != 0 {
		t.Errorf("empty series settle = %+v, want zero value", s)
	}
}
