// Package dcqcn implements the DCQCN protocol endpoints of §3 for the
// packet-level simulator: the reaction point (RP, sender-side rate control
// with fast recovery, additive and hyper increase), and the notification
// point (NP, receiver-side CNP generation). The congestion point (CP) is
// the RED/ECN marking switch in internal/netsim.
package dcqcn

import (
	"errors"
	"fmt"
	"math"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

// Params are the DCQCN knobs of [31] (Table 1), in wire units: rates in
// bytes/second, the byte counter in bytes.
type Params struct {
	G           float64      // α gain (1/256)
	CNPInterval des.Duration // τ: minimum gap between CNPs per flow (50 µs)
	AlphaTimer  des.Duration // τ': α decay interval without feedback (55 µs)
	RateTimer   des.Duration // T: rate-increase timer (55 µs)
	ByteCounter int64        // B: rate-increase byte counter (10 MB)
	F           int          // fast recovery stages (5)
	RAI         float64      // additive increase step, bytes/s (40 Mb/s)
	RHAI        float64      // hyper increase step, bytes/s (200 Mb/s)
	MinRate     float64      // rate floor, bytes/s

	// Recovery enables go-back-N loss recovery: the NP acknowledges
	// in-order bytes cumulatively, NACKs sequence gaps, and the RP
	// retransmits from the last acknowledged offset, backstopped by an
	// RTO with exponential backoff. Off by default — RoCE assumes a
	// lossless fabric, and with Recovery false the wire behaviour is
	// bit-identical to builds that predate it.
	Recovery bool
	// RTO is the retransmission timeout (0: 1 ms when Recovery is on).
	RTO des.Duration
	// RTOMax caps the exponential backoff (0: 8×RTO).
	RTOMax des.Duration
	// AckBytes is the cumulative-ack spacing in in-order bytes (0: 64 KB).
	AckBytes int64
	// AckInterval also forces an ack when this much time passed since the
	// last signal, so slow flows keep their RTO quiet (0: 100 µs).
	AckInterval des.Duration
	// NackMinGap rate-limits NACKs and duplicate re-acks per flow (0: 50 µs).
	NackMinGap des.Duration
}

// withRecoveryDefaults fills zero-valued recovery knobs when Recovery is
// enabled; with Recovery off they stay zero and unused.
func (p Params) withRecoveryDefaults() Params {
	if !p.Recovery {
		return p
	}
	if p.RTO == 0 {
		p.RTO = des.Millisecond
	}
	if p.RTOMax == 0 {
		p.RTOMax = 8 * p.RTO
	}
	if p.AckBytes == 0 {
		p.AckBytes = 64000
	}
	if p.AckInterval == 0 {
		p.AckInterval = 100 * des.Microsecond
	}
	if p.NackMinGap == 0 {
		p.NackMinGap = 50 * des.Microsecond
	}
	return p
}

// DefaultParams returns the [31] defaults.
func DefaultParams() Params {
	return Params{
		G:           1.0 / 256,
		CNPInterval: 50 * des.Microsecond,
		AlphaTimer:  55 * des.Microsecond,
		RateTimer:   55 * des.Microsecond,
		ByteCounter: 10e6,
		F:           5,
		RAI:         40e6 / 8,
		RHAI:        200e6 / 8,
		MinRate:     1e6 / 8,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.G <= 0 || p.G >= 1:
		return errors.New("dcqcn: g must be in (0,1)")
	case p.CNPInterval <= 0 || p.AlphaTimer <= 0 || p.RateTimer <= 0:
		return errors.New("dcqcn: timers must be positive")
	case p.AlphaTimer <= p.CNPInterval:
		return errors.New("dcqcn: τ' must exceed the CNP generation timer τ")
	case p.ByteCounter <= 0 || p.F <= 0:
		return errors.New("dcqcn: byte counter and F must be positive")
	case p.RAI <= 0 || p.RHAI < p.RAI:
		return errors.New("dcqcn: need 0 < RAI <= RHAI")
	case p.MinRate <= 0:
		return errors.New("dcqcn: MinRate must be positive")
	case p.Recovery && (p.RTO <= 0 || p.RTOMax < p.RTO):
		return errors.New("dcqcn: recovery needs 0 < RTO <= RTOMax")
	case p.Recovery && (p.AckBytes <= 0 || p.AckInterval <= 0 || p.NackMinGap <= 0):
		return errors.New("dcqcn: recovery ack/nack knobs must be positive")
	}
	return nil
}

// Completion reports a finished flow at the receiver.
type Completion struct {
	Flow  int
	Bytes int64
	At    des.Time
}

// Endpoint is the per-host DCQCN engine: it owns the sending flows (RP
// role) and the receiving state (NP role) and attaches to a host as its
// Transport.
type Endpoint struct {
	host  *netsim.Host
	p     Params
	flows map[int]*Sender
	np    map[int]*npState
	rx    map[int]*rxState // go-back-N receive state (Recovery only)

	rxBytes map[int]int64
	// OnComplete, if set, fires when a flow's last packet arrives here.
	OnComplete func(Completion)

	// ctr is the endpoint's bound counter set; nil when the network has no
	// observer (or no metrics registry) attached.
	ctr *obs.EndpointCounters
	// cnpGapH/paceGapH are the endpoint's latency histograms (CNP
	// inter-arrival gaps at the RP, pacing gaps between data packets);
	// nil when the network has no observer (or no HistSet) attached.
	cnpGapH  *obs.Hist
	paceGapH *obs.Hist

	// Control-loop audit binding (nil without an attached trail): aud
	// receives one Decision per RP action, markCnpH/cnpCutH are the
	// mark→CNP-receipt and CNP-receipt→rate-cut legs of the feedback
	// latency, and audSeq numbers this endpoint's decisions for the
	// canonical audit sort order.
	aud      *obs.AuditTrail
	markCnpH *obs.Hist
	cnpCutH  *obs.Hist
	audSeq   uint64
}

type npState struct {
	lastCNP des.Time
	sent    bool
}

// NewEndpoint attaches a DCQCN engine to h.
func NewEndpoint(h *netsim.Host, p Params) (*Endpoint, error) {
	p = p.withRecoveryDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Endpoint{
		host: h, p: p,
		flows:   make(map[int]*Sender),
		np:      make(map[int]*npState),
		rx:      make(map[int]*rxState),
		rxBytes: make(map[int]int64),
	}
	e.bindObs()
	h.Transport = e
	return e, nil
}

// Host returns the attached host.
func (e *Endpoint) Host() *netsim.Host { return e.host }

// Handle implements netsim.Transport.
func (e *Endpoint) Handle(h *netsim.Host, pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.Data:
		e.handleData(pkt)
	case netsim.CNP:
		if s, ok := e.flows[pkt.Flow]; ok {
			if e.ctr != nil {
				e.ctr.CNPRx.Inc()
			}
			s.onCNP(pkt)
		}
	case netsim.Ack:
		if s, ok := e.flows[pkt.Flow]; ok {
			s.onAck(pkt.Seq)
		}
	case netsim.Nack:
		if s, ok := e.flows[pkt.Flow]; ok {
			s.onNack(pkt.Seq)
		}
	}
}

// handleData is the NP role plus completion tracking.
func (e *Endpoint) handleData(pkt *netsim.Packet) {
	if e.p.Recovery {
		e.recvData(pkt)
		return
	}
	e.rxBytes[pkt.Flow] += int64(pkt.Size)
	if e.ctr != nil {
		e.ctr.RxBytes.Add(int64(pkt.Size))
	}
	e.maybeCNP(pkt)
	if pkt.Last && e.OnComplete != nil {
		e.OnComplete(Completion{Flow: pkt.Flow, Bytes: e.rxBytes[pkt.Flow], At: e.host.Now()})
	}
}

// maybeCNP generates the NP's congestion notification for a CE-marked
// data packet, rate-limited to one per CNPInterval per flow.
func (e *Endpoint) maybeCNP(pkt *netsim.Packet) {
	if !pkt.CE {
		return
	}
	st := e.np[pkt.Flow]
	if st == nil {
		st = &npState{}
		e.np[pkt.Flow] = st
	}
	now := e.host.Now()
	if !st.sent || now.Sub(st.lastCNP) >= e.p.CNPInterval {
		st.sent = true
		st.lastCNP = now
		cnp := e.host.AllocPacket()
		cnp.Flow = pkt.Flow
		cnp.Dst = pkt.Src
		cnp.Size = netsim.CtrlSize
		cnp.Kind = netsim.CNP
		// Carry the mark-episode provenance back to the RP (zero when no
		// audit trail stamped the data packet).
		cnp.MarkEp = pkt.MarkEp
		cnp.MarkT = pkt.MarkT
		if e.ctr != nil {
			e.ctr.CNPTx.Inc()
		}
		e.host.Send(cnp)
	}
}

// Sender is the reaction point for one flow.
type Sender struct {
	e    *Endpoint
	id   int
	dst  int
	size int64 // total bytes to send; <0 means unbounded

	rc, rt float64
	alpha  float64

	bcStage, tStage int
	bcBytes         int64

	sent    int64
	done    bool
	started bool

	// Warm-start operating point (internal/hybrid); applied by start().
	warm                      bool
	warmRC, warmRT, warmAlpha float64

	// Go-back-N recovery state (Params.Recovery only).
	acked        int64 // cumulative acknowledged bytes
	maxSent      int64 // high-water mark of the send cursor
	retxBytes    int64
	rewinds      int64
	rtos         int64
	rtoShift     int // exponential backoff exponent
	recovering   bool
	recoverStart des.Time
	recoverTime  des.Duration

	alphaEv des.EventRef
	timerEv des.EventRef
	sendEv  des.EventRef
	rtoEv   des.EventRef

	// RateSeries, if non-nil, records (t, rc) on every rate change.
	RateHook func(t des.Time, rate float64)

	// Histogram state: previous data-send and CNP-arrival instants, so the
	// pacing-gap and CNP-gap histograms record inter-event spacing. Only
	// maintained when the matching histogram is bound.
	obsLastSend des.Time
	obsSent     bool
	obsLastCNP  des.Time
	obsSawCNP   bool
}

// Handler arguments: the sender is its own des.Handler, dispatching its
// three recurring duties on a small-int argument (boxes without allocating)
// so steady-state scheduling is allocation-free.
const (
	evStart = iota // flow start at its configured time
	evSend         // paced transmission of the next data packet
	evAlpha        // Eq. 2 α decay timer (τ')
	evRate         // rate-increase timer (T)
	evRTO          // retransmission timeout (Recovery only)
)

// OnEvent implements des.Handler.
func (s *Sender) OnEvent(arg any) {
	switch arg.(int) {
	case evStart:
		s.start()
	case evSend:
		s.sendNext()
	case evAlpha:
		// Eq. 2: no feedback for τ' → α decays.
		s.alpha *= 1 - s.e.p.G
		s.armAlphaTimer()
		if s.e.aud != nil {
			s.audit(obs.Decision{Type: obs.DecAlphaDecay, Alpha: s.alpha})
		}
	case evRate:
		s.tStage++
		s.increase()
		s.armRateTimer()
	case evRTO:
		s.onRTO()
	}
}

// NewFlow registers a sending flow of size bytes (size < 0: run forever)
// toward the host dst, starting at the given time. DCQCN flows start at
// line rate.
func (e *Endpoint) NewFlow(id int, dst int, size int64, start des.Time) (*Sender, error) {
	if _, dup := e.flows[id]; dup {
		return nil, fmt.Errorf("dcqcn: duplicate flow id %d", id)
	}
	s := &Sender{e: e, id: id, dst: dst, size: size}
	e.flows[id] = s
	e.host.AtHandler(start, s, evStart)
	return s, nil
}

// Rate returns the current sending rate in bytes/s.
func (s *Sender) Rate() float64 { return s.rc }

// TargetRate returns the current target rate in bytes/s.
func (s *Sender) TargetRate() float64 { return s.rt }

// Alpha returns the current α.
func (s *Sender) Alpha() float64 { return s.alpha }

// WarmStart arranges for the flow to begin at the given operating point —
// current rate rc, target rate rt (bytes/s) and α — instead of the cold
// line-rate/α=1 defaults. Call before the flow's start time; it has no
// effect on a flow that already started. Rates are clamped to
// [MinRate, line rate] and α to [0, 1] when the flow starts.
func (s *Sender) WarmStart(rc, rt, alpha float64) {
	s.warm = true
	s.warmRC, s.warmRT, s.warmAlpha = rc, rt, alpha
}

// Done reports whether all bytes have been handed to the NIC.
func (s *Sender) Done() bool { return s.done }

// SentBytes reports bytes handed to the NIC so far.
func (s *Sender) SentBytes() int64 { return s.sent }

func (s *Sender) start() {
	if s.started {
		return
	}
	s.started = true
	s.rc = s.e.host.LineRate()
	s.rt = s.rc
	s.alpha = 1
	if s.warm {
		line := s.e.host.LineRate()
		clamp := func(r float64) float64 {
			switch {
			case r < s.e.p.MinRate:
				return s.e.p.MinRate
			case r > line:
				return line
			}
			return r
		}
		s.rc = clamp(s.warmRC)
		s.rt = clamp(s.warmRT)
		s.alpha = math.Min(math.Max(s.warmAlpha, 0), 1)
	}
	s.armAlphaTimer()
	s.armRateTimer()
	s.sendNext()
}

func (s *Sender) noteRate() {
	if s.RateHook != nil {
		s.RateHook(s.e.host.Now(), s.rc)
	}
}

func (s *Sender) sendNext() {
	if s.done {
		return
	}
	size := int64(netsim.DataMTU)
	last := false
	if s.size >= 0 {
		remain := s.size - s.sent
		if remain <= 0 {
			s.finish()
			return
		}
		if remain <= size {
			size = remain
			last = true
		}
	}
	pkt := s.e.host.AllocPacket()
	pkt.Flow = s.id
	pkt.Dst = s.dst
	pkt.Size = int(size)
	pkt.Kind = netsim.Data
	pkt.ECT = true
	pkt.Seq = s.sent
	pkt.Last = last
	s.e.host.Send(pkt)
	s.obsPace()
	if s.e.p.Recovery {
		if s.sent < s.maxSent {
			s.retxBytes += size
			s.obsRetx(size, s.sent)
		}
	}
	s.sent += size
	if s.e.p.Recovery {
		if s.sent > s.maxSent {
			s.maxSent = s.sent
		}
		s.armRTO()
	}
	s.onBytesSent(size)
	if last {
		s.finish()
		return
	}
	gap := des.DurationFromSeconds(float64(size) / s.rc)
	s.sendEv = s.e.host.ScheduleHandler(gap, s, evSend)
}

func (s *Sender) finish() {
	if s.e.p.Recovery && s.size >= 0 && s.acked < s.size {
		// The cursor reached the end but unacked bytes may be lost:
		// pacing stops, the RTO (and incoming NACKs) drive retransmission
		// until the cumulative ack covers the flow.
		s.armRTO()
		return
	}
	s.done = true
	s.alphaEv.Cancel()
	s.timerEv.Cancel()
	s.rtoEv.Cancel()
}

// onBytesSent advances the rate-increase byte counter (stage events every
// ByteCounter bytes).
func (s *Sender) onBytesSent(n int64) {
	s.bcBytes += n
	for s.bcBytes >= s.e.p.ByteCounter {
		s.bcBytes -= s.e.p.ByteCounter
		s.bcStage++
		s.increase()
	}
}

func (s *Sender) armAlphaTimer() {
	s.alphaEv.Cancel()
	s.alphaEv = s.e.host.ScheduleHandler(s.e.p.AlphaTimer, s, evAlpha)
}

func (s *Sender) armRateTimer() {
	s.timerEv.Cancel()
	s.timerEv = s.e.host.ScheduleHandler(s.e.p.RateTimer, s, evRate)
}

// onCNP is the Eq. 1 multiplicative decrease plus state reset. The CNP
// packet carries the causing mark episode when an audit trail stamped it.
func (s *Sender) onCNP(pkt *netsim.Packet) {
	if s.done || !s.started {
		return
	}
	s.obsCNPGap()
	old := s.rc
	cutAlpha := s.alpha
	s.rt = s.rc
	s.rc *= 1 - s.alpha/2
	if s.rc < s.e.p.MinRate {
		s.rc = s.e.p.MinRate
	}
	s.alpha = (1-s.e.p.G)*s.alpha + s.e.p.G
	s.bcStage, s.tStage = 0, 0
	s.bcBytes = 0
	s.armAlphaTimer()
	s.armRateTimer()
	s.noteRate()
	if s.e.aud != nil {
		s.audCut(pkt, old, cutAlpha)
	}
}

// increase runs one QCN-style rate increase event: five stages of fast
// recovery toward R_T, then additive increase, then hyper increase once
// both counters are past F.
func (s *Sender) increase() {
	if s.done {
		return
	}
	old := s.rc
	dec := obs.DecFastRecovery
	switch {
	case s.bcStage <= s.e.p.F && s.tStage <= s.e.p.F:
		// Fast recovery: halve the gap to the target.
	case s.bcStage > s.e.p.F && s.tStage > s.e.p.F:
		s.rt += s.e.p.RHAI
		dec = obs.DecHyperInc
	default:
		s.rt += s.e.p.RAI
		dec = obs.DecAdditiveInc
	}
	line := s.e.host.LineRate()
	if s.rt > line {
		s.rt = line
	}
	s.rc = (s.rc + s.rt) / 2
	if s.rc > line {
		s.rc = line
	}
	s.noteRate()
	if s.e.aud != nil {
		s.audit(obs.Decision{
			Type: dec, OldRate: old, NewRate: s.rc, Target: s.rt, Alpha: s.alpha,
		})
	}
}
