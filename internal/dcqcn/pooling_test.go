package dcqcn_test

import (
	"testing"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
)

// The packet pool and the pooled event path must be invisible to the
// simulation: a same-seed DCQCN run (data, CNPs, α/rate timers, RED
// marking, PFC) with pooling disabled is the reference, and the pooled run
// must reproduce its rate trajectory and queue behaviour exactly.
func TestDCQCNPoolingDeterminism(t *testing.T) {
	type trace struct {
		rates     []float64
		processed uint64
		end       des.Time
		queuePeak int
	}
	run := func(pooling bool) trace {
		nw := netsim.New(5)
		nw.SetPooling(pooling)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 2,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			},
			PFC: netsim.PFCConfig{PauseBytes: 400000, ResumeBytes: 200000},
		})
		if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
			t.Fatal(err)
		}
		var tr trace
		for i, h := range star.Senders {
			ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.RateHook = func(_ des.Time, rate float64) {
				tr.rates = append(tr.rates, rate)
			}
		}
		peak := 0
		nw.Sim.Every(0, 50*des.Microsecond, func() {
			if b := star.Bottleneck.Queue().Bytes(); b > peak {
				peak = b
			}
		})
		nw.Sim.RunUntil(des.Time(20 * des.Millisecond))
		tr.processed = nw.Sim.Processed()
		tr.end = nw.Sim.Now()
		tr.queuePeak = peak
		return tr
	}
	pooled, plain := run(true), run(false)
	if pooled.processed != plain.processed || pooled.end != plain.end ||
		pooled.queuePeak != plain.queuePeak {
		t.Errorf("pooled (proc=%d end=%v peak=%d) != unpooled (proc=%d end=%v peak=%d)",
			pooled.processed, pooled.end, pooled.queuePeak,
			plain.processed, plain.end, plain.queuePeak)
	}
	if len(pooled.rates) != len(plain.rates) {
		t.Fatalf("rate trace lengths differ: %d vs %d", len(pooled.rates), len(plain.rates))
	}
	for i := range pooled.rates {
		if pooled.rates[i] != plain.rates[i] {
			t.Fatalf("rate trace diverges at update %d: %v vs %v",
				i, pooled.rates[i], plain.rates[i])
		}
	}
}

// The lossy variant: loss injection plus go-back-N recovery pushes
// recycled packets through every role — retransmitted data, cumulative
// acks, NACKs, CNPs — so any recovery field surviving FreePacket's zeroing
// would split the pooled and unpooled trajectories.
func TestDCQCNPoolingDeterminismLossy(t *testing.T) {
	run := func(pooling bool) (goodput, retx int64, processed uint64, end des.Time) {
		p := dcqcn.DefaultParams()
		p.Recovery = true
		p.RTO = 200 * des.Microsecond
		nw := netsim.New(5)
		nw.SetPooling(pooling)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 2,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			},
		})
		rx, err := dcqcn.NewEndpoint(star.Receiver, p)
		if err != nil {
			t.Fatal(err)
		}
		var senders []*dcqcn.Sender
		for i, h := range star.Senders {
			ep, err := dcqcn.NewEndpoint(h, p)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), 400000, 0)
			if err != nil {
				t.Fatal(err)
			}
			senders = append(senders, s)
		}
		(&fault.Plan{Seed: 17, Links: []fault.LinkFaults{
			{Port: star.Bottleneck, Loss: []fault.Loss{{Kinds: fault.SelData, Rate: 0.02}}},
			{Port: star.Receiver.Port(), Loss: []fault.Loss{{Kinds: fault.SelCtrl, Rate: 0.05}}},
		}}).Apply(nw)
		nw.Sim.RunUntil(des.Time(des.Second))
		for _, s := range senders {
			retx += s.Recovery().RetxBytes
		}
		return rx.TotalRxBytes(), retx, nw.Sim.Processed(), nw.Sim.Now()
	}
	g1, x1, p1, e1 := run(true)
	g2, x2, p2, e2 := run(false)
	if g1 != g2 || x1 != x2 || p1 != p2 || e1 != e2 {
		t.Errorf("pooled (good=%d retx=%d proc=%d end=%v) != unpooled (good=%d retx=%d proc=%d end=%v)",
			g1, x1, p1, e1, g2, x2, p2, e2)
	}
	if x1 == 0 {
		t.Error("lossy pooling test retransmitted nothing — not exercising recycle paths")
	}
}
