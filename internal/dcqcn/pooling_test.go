package dcqcn_test

import (
	"testing"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// The packet pool and the pooled event path must be invisible to the
// simulation: a same-seed DCQCN run (data, CNPs, α/rate timers, RED
// marking, PFC) with pooling disabled is the reference, and the pooled run
// must reproduce its rate trajectory and queue behaviour exactly.
func TestDCQCNPoolingDeterminism(t *testing.T) {
	type trace struct {
		rates     []float64
		processed uint64
		end       des.Time
		queuePeak int
	}
	run := func(pooling bool) trace {
		nw := netsim.New(5)
		nw.SetPooling(pooling)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 2,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			},
			PFC: netsim.PFCConfig{PauseBytes: 400000, ResumeBytes: 200000},
		})
		if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
			t.Fatal(err)
		}
		var tr trace
		for i, h := range star.Senders {
			ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.RateHook = func(_ des.Time, rate float64) {
				tr.rates = append(tr.rates, rate)
			}
		}
		peak := 0
		nw.Sim.Every(0, 50*des.Microsecond, func() {
			if b := star.Bottleneck.Queue().Bytes(); b > peak {
				peak = b
			}
		})
		nw.Sim.RunUntil(des.Time(20 * des.Millisecond))
		tr.processed = nw.Sim.Processed()
		tr.end = nw.Sim.Now()
		tr.queuePeak = peak
		return tr
	}
	pooled, plain := run(true), run(false)
	if pooled.processed != plain.processed || pooled.end != plain.end ||
		pooled.queuePeak != plain.queuePeak {
		t.Errorf("pooled (proc=%d end=%v peak=%d) != unpooled (proc=%d end=%v peak=%d)",
			pooled.processed, pooled.end, pooled.queuePeak,
			plain.processed, plain.end, plain.queuePeak)
	}
	if len(pooled.rates) != len(plain.rates) {
		t.Fatalf("rate trace lengths differ: %d vs %d", len(pooled.rates), len(plain.rates))
	}
	for i := range pooled.rates {
		if pooled.rates[i] != plain.rates[i] {
			t.Fatalf("rate trace diverges at update %d: %v vs %v",
				i, pooled.rates[i], plain.rates[i])
		}
	}
}
