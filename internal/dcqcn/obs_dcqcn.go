package dcqcn

import (
	"fmt"

	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

// Observability binding: the endpoint registers its counter set when it is
// created on a network that already has an observer attached (attach the
// observer first). Every hook site below is a nil check when observability
// is off, so unobserved runs are untouched.

// bindObs registers the endpoint's counters under "dcqcn.n<hostID>" and
// its latency histograms under the protocol-wide names "dcqcn.cnp_gap_s"
// and "dcqcn.pace_gap_s" (all senders on a run feed one distribution, as
// the paper's per-protocol behaviour plots do).
func (e *Endpoint) bindObs() {
	o := e.host.Net().Observer()
	if o == nil {
		return
	}
	if o.Metrics != nil {
		e.ctr = o.Metrics.EndpointCounters(fmt.Sprintf("dcqcn.n%d", e.host.ID()))
	}
	e.cnpGapH = o.Hist("dcqcn.cnp_gap_s")
	e.paceGapH = o.Hist("dcqcn.pace_gap_s")
}

// obsPace records the gap since this sender's previous data packet into
// the pacing-gap histogram; a single nil check when observability is off.
func (s *Sender) obsPace() {
	h := s.e.paceGapH
	if h == nil {
		return
	}
	now := s.e.host.Now()
	if s.obsSent {
		h.Record(now.Sub(s.obsLastSend).Seconds())
	}
	s.obsSent = true
	s.obsLastSend = now
}

// obsCNPGap records the gap since this sender's previous CNP arrival into
// the CNP inter-arrival histogram.
func (s *Sender) obsCNPGap() {
	h := s.e.cnpGapH
	if h == nil {
		return
	}
	now := s.e.host.Now()
	if s.obsSawCNP {
		h.Record(now.Sub(s.obsLastCNP).Seconds())
	}
	s.obsSawCNP = true
	s.obsLastCNP = now
}

// obsRetx records one retransmitted packet (counters plus a trace record).
func (s *Sender) obsRetx(size, seq int64) {
	e := s.e
	if e.ctr != nil {
		e.ctr.RetxPkts.Inc()
		e.ctr.RetxBytes.Add(size)
	}
	if o := e.host.Net().Observer(); o != nil {
		o.Emit(obs.Event{
			T:    e.host.Now(),
			Type: obs.Retx,
			Kind: uint8(netsim.Data),
			Node: int32(e.host.ID()),
			Peer: int32(s.dst),
			Flow: int32(s.id),
			Size: int32(size),
			Seq:  seq,
		})
	}
}
