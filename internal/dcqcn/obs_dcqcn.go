package dcqcn

import (
	"fmt"

	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

// Observability binding: the endpoint registers its counter set when it is
// created on a network that already has an observer attached (attach the
// observer first). Every hook site below is a nil check when observability
// is off, so unobserved runs are untouched.

// bindObs registers the endpoint's counters under "dcqcn.n<hostID>".
func (e *Endpoint) bindObs() {
	o := e.host.Net().Observer()
	if o == nil || o.Metrics == nil {
		return
	}
	e.ctr = o.Metrics.EndpointCounters(fmt.Sprintf("dcqcn.n%d", e.host.ID()))
}

// obsRetx records one retransmitted packet (counters plus a trace record).
func (s *Sender) obsRetx(size, seq int64) {
	e := s.e
	if e.ctr != nil {
		e.ctr.RetxPkts.Inc()
		e.ctr.RetxBytes.Add(size)
	}
	if o := e.host.Net().Observer(); o != nil {
		o.Emit(obs.Event{
			T:    e.host.Now(),
			Type: obs.Retx,
			Kind: uint8(netsim.Data),
			Node: int32(e.host.ID()),
			Peer: int32(s.dst),
			Flow: int32(s.id),
			Size: int32(size),
			Seq:  seq,
		})
	}
}
