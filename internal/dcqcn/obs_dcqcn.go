package dcqcn

import (
	"fmt"

	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

// Observability binding: the endpoint registers its counter set when it is
// created on a network that already has an observer attached (attach the
// observer first). Every hook site below is a nil check when observability
// is off, so unobserved runs are untouched.

// bindObs registers the endpoint's counters under "dcqcn.n<hostID>" and
// its latency histograms under the protocol-wide names "dcqcn.cnp_gap_s"
// and "dcqcn.pace_gap_s" (all senders on a run feed one distribution, as
// the paper's per-protocol behaviour plots do).
func (e *Endpoint) bindObs() {
	o := e.host.Net().Observer()
	if o == nil {
		return
	}
	if o.Metrics != nil {
		e.ctr = o.Metrics.EndpointCounters(fmt.Sprintf("dcqcn.n%d", e.host.ID()))
	}
	e.cnpGapH = o.Hist("dcqcn.cnp_gap_s")
	e.paceGapH = o.Hist("dcqcn.pace_gap_s")
	if o.Audit != nil {
		e.aud = o.Audit
		e.markCnpH = o.Hist("ctl.mark_to_cnprx_s")
		e.cnpCutH = o.Hist("ctl.cnprx_to_cut_s")
	}
}

// audit stamps the endpoint-invariant fields of a decision record and
// emits it. Callers have already checked s.e.aud != nil.
func (s *Sender) audit(d obs.Decision) {
	s.e.audSeq++
	d.T = s.e.host.Now()
	d.Node = int32(s.e.host.ID())
	d.Peer = int32(s.dst)
	d.Flow = int32(s.id)
	d.Seq = s.e.audSeq
	s.e.aud.Emit(d)
}

// audCut records a CNP-triggered rate cut: the cut decision attributed to
// the mark episode the CNP carries (0: unattributed — a CNP whose marked
// data packet predates audit attachment), the alpha feedback update that
// rides on the same CNP, and the last two feedback-latency legs
// (mark→CNP-receipt from the stamped mark time, CNP-receipt→cut measured
// here — zero in this model, where the RP reacts in the same instant).
func (s *Sender) audCut(pkt *netsim.Packet, oldRate, cutAlpha float64) {
	now := s.e.host.Now()
	lat := 0.0
	if pkt.MarkEp != 0 {
		lat = now.Sub(pkt.MarkT).Seconds()
		if h := s.e.markCnpH; h != nil {
			h.Record(lat)
		}
	}
	if h := s.e.cnpCutH; h != nil {
		h.Record(0)
	}
	s.audit(obs.Decision{
		Type: obs.DecRateCut, Episode: pkt.MarkEp,
		OldRate: oldRate, NewRate: s.rc, Target: s.rt, Alpha: cutAlpha,
		RTT: lat,
	})
	s.audit(obs.Decision{Type: obs.DecAlphaFeedback, Alpha: s.alpha})
}

// obsPace records the gap since this sender's previous data packet into
// the pacing-gap histogram; a single nil check when observability is off.
func (s *Sender) obsPace() {
	h := s.e.paceGapH
	if h == nil {
		return
	}
	now := s.e.host.Now()
	if s.obsSent {
		h.Record(now.Sub(s.obsLastSend).Seconds())
	}
	s.obsSent = true
	s.obsLastSend = now
}

// obsCNPGap records the gap since this sender's previous CNP arrival into
// the CNP inter-arrival histogram.
func (s *Sender) obsCNPGap() {
	h := s.e.cnpGapH
	if h == nil {
		return
	}
	now := s.e.host.Now()
	if s.obsSawCNP {
		h.Record(now.Sub(s.obsLastCNP).Seconds())
	}
	s.obsSawCNP = true
	s.obsLastCNP = now
}

// obsRetx records one retransmitted packet (counters plus a trace record).
func (s *Sender) obsRetx(size, seq int64) {
	e := s.e
	if e.ctr != nil {
		e.ctr.RetxPkts.Inc()
		e.ctr.RetxBytes.Add(size)
	}
	if o := e.host.Net().Observer(); o != nil {
		o.Emit(obs.Event{
			T:    e.host.Now(),
			Type: obs.Retx,
			Kind: uint8(netsim.Data),
			Node: int32(e.host.ID()),
			Peer: int32(s.dst),
			Flow: int32(s.id),
			Size: int32(size),
			Seq:  seq,
		})
	}
}
