package dcqcn

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	muts := []func(*Params){
		func(p *Params) { p.G = 0 },
		func(p *Params) { p.G = 1 },
		func(p *Params) { p.CNPInterval = 0 },
		func(p *Params) { p.AlphaTimer = p.CNPInterval },
		func(p *Params) { p.RateTimer = 0 },
		func(p *Params) { p.ByteCounter = 0 },
		func(p *Params) { p.F = 0 },
		func(p *Params) { p.RAI = 0 },
		func(p *Params) { p.RHAI = p.RAI / 2 },
		func(p *Params) { p.MinRate = 0 },
	}
	for i, m := range muts {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// star40G builds the §3.1 validation topology with DCQCN endpoints on all
// hosts and returns the senders.
func star40G(t *testing.T, nFlows int, extraFeedback des.Duration, ingressMark bool, bw float64) (*netsim.Network, *netsim.Star, []*Sender) {
	t.Helper()
	nw := netsim.New(7)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: nFlows,
		Link:    netsim.LinkConfig{Bandwidth: bw, PropDelay: des.Microsecond},
		Mark: func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Ingress: ingressMark, Rng: nw.Rng}
		},
		CtrlExtraDelay: extraFeedback,
	})
	if _, err := NewEndpoint(star.Receiver, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	var senders []*Sender
	for i, h := range star.Senders {
		ep, err := NewEndpoint(h, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		senders = append(senders, s)
	}
	return nw, star, senders
}

// Figure 2 territory: two long flows at 40 Gb/s converge to the fair share
// with full utilisation and a queue near the Theorem 1 fixed point.
func TestTwoFlowsConvergeFair(t *testing.T) {
	nw, star, senders := star40G(t, 2, 0, false, 5e9)
	qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
	thr := netsim.MonitorThroughput(nw.Sim, star.Bottleneck, des.Millisecond)
	nw.Sim.RunUntil(des.Time(50 * des.Millisecond))

	if u := thr.WindowSummary(0.03, 0.05).Mean / 5e9; u < 0.95 {
		t.Errorf("utilisation %v, want > 0.95", u)
	}
	fair := 2.5e9
	for i, s := range senders {
		if r := s.Rate(); r < fair*0.7 || r > fair*1.3 {
			t.Errorf("flow %d rate %v, want near fair share %v", i, r, fair)
		}
	}
	// The fluid fixed point for these parameters is ~20 KB; the packet
	// level oscillates around it.
	q := qs.WindowSummary(0.03, 0.05)
	if q.Mean < 5e3 || q.Mean > 80e3 {
		t.Errorf("queue mean %v B, want in the fixed-point neighbourhood (~20 KB)", q.Mean)
	}
}

// Figure 5: 10 flows with an 85 µs feedback delay oscillate hard; without
// the extra delay they hold the queue near the fixed point.
func TestTenFlowsUnstableAtHighDelay(t *testing.T) {
	cv := func(extra des.Duration) float64 {
		nw, star, _ := star40G(t, 10, extra, false, 5e9)
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
		nw.Sim.RunUntil(des.Time(60 * des.Millisecond))
		return qs.WindowSummary(0.04, 0.06).CV()
	}
	calm := cv(0)
	wild := cv(85 * des.Microsecond)
	if wild < 1.0 {
		t.Errorf("85µs feedback delay: queue CV %v, want > 1 (instability)", wild)
	}
	if calm > 0.5 {
		t.Errorf("no extra delay: queue CV %v, want < 0.5", calm)
	}
	if wild < 2*calm {
		t.Errorf("instability contrast too weak: %v vs %v", wild, calm)
	}
}

// Figure 17: at 10 Gb/s the steady queue is ~100 KB (~80 µs of queueing
// delay), so ingress marking — which inherits that delay into the control
// loop — destabilises a configuration that egress marking holds steady.
func TestIngressMarkingDestabilises(t *testing.T) {
	cv := func(ingress bool) float64 {
		nw, star, _ := star40G(t, 2, 0, ingress, 1.25e9)
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 50*des.Microsecond)
		nw.Sim.RunUntil(des.Time(150 * des.Millisecond))
		return qs.WindowSummary(0.1, 0.15).CV()
	}
	egress := cv(false)
	ingress := cv(true)
	if ingress < 2*egress {
		t.Errorf("ingress marking CV %v vs egress %v: expected at least 2x worse", ingress, egress)
	}
	if ingress < 1.0 {
		t.Errorf("ingress marking CV %v, want visible fluctuation (> 1)", ingress)
	}
}

// Unequal join times still converge to fairness (Theorem 2 at the packet
// level): a second flow joining late reaches the fair share.
func TestLateJoinerReachesFairShare(t *testing.T) {
	nw := netsim.New(3)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 2,
		Link:    netsim.LinkConfig{Bandwidth: 5e9, PropDelay: des.Microsecond},
		Mark: func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
		},
	})
	if _, err := NewEndpoint(star.Receiver, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	var senders []*Sender
	for i, h := range star.Senders {
		ep, err := NewEndpoint(h, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		start := des.Time(0)
		if i == 1 {
			start = des.Time(20 * des.Millisecond)
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, start)
		if err != nil {
			t.Fatal(err)
		}
		senders = append(senders, s)
	}
	rates := []*stats.Series{{}, {}}
	nw.Sim.Every(0, 100*des.Microsecond, func() {
		ts := nw.Sim.Now().Seconds()
		rates[0].Add(ts, senders[0].Rate())
		rates[1].Add(ts, senders[1].Rate())
	})
	nw.Sim.RunUntil(des.Time(120 * des.Millisecond))
	m0 := rates[0].WindowSummary(0.09, 0.12).Mean
	m1 := rates[1].WindowSummary(0.09, 0.12).Mean
	if ratio := m0 / m1; ratio > 1.4 || ratio < 0.7 {
		t.Errorf("late joiner stuck at ratio %v (R0=%v R1=%v)", ratio, m0, m1)
	}
}

// NP behaviour: at most one CNP per τ per flow, regardless of how many
// marked packets arrive.
func TestCNPRateLimit(t *testing.T) {
	nw := netsim.New(1)
	sender := nw.NewHost()
	receiver := nw.NewHost()
	cnps := 0
	sender.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
		if pkt.Kind == netsim.CNP {
			cnps++
		}
	})
	sender.Connect(receiver, 1.25e9, des.Microsecond, nil)
	receiver.Connect(sender, 1.25e9, des.Microsecond, nil)
	if _, err := NewEndpoint(receiver, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	// 100 marked packets over 100 µs: τ = 50 µs allows at most 3 CNPs.
	for i := 0; i < 100; i++ {
		i := i
		nw.Sim.At(des.Time(i)*des.Time(des.Microsecond), func() {
			sender.Send(&netsim.Packet{
				Flow: 1, Dst: receiver.ID(), Size: netsim.DataMTU,
				Kind: netsim.Data, ECT: true, CE: true,
			})
		})
	}
	nw.Sim.Run()
	if cnps == 0 || cnps > 3 {
		t.Errorf("got %d CNPs for 100 marked packets in 100µs, want 1-3 (τ=50µs)", cnps)
	}
}

// RP behaviour without any congestion: α decays to ~0 and the rate sits at
// line rate.
func TestNoCongestionStaysAtLineRate(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 5e9, PropDelay: des.Microsecond},
	})
	if _, err := NewEndpoint(star.Receiver, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ep.NewFlow(0, star.Receiver.ID(), -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.RunUntil(des.Time(100 * des.Millisecond))
	if s.Rate() < 5e9*0.999 {
		t.Errorf("rate %v, want line rate 5e9", s.Rate())
	}
	// α decays as (1-g)^(t/τ'): at 100 ms that is (255/256)^1818 ≈ 8e-4.
	if s.Alpha() > 0.01 {
		t.Errorf("α = %v after 100ms without feedback, want ~0", s.Alpha())
	}
}

// A finite flow delivers exactly its size and reports completion once.
func TestFlowCompletion(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	rx, err := NewEndpoint(star.Receiver, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var completions []Completion
	rx.OnComplete = func(c Completion) { completions = append(completions, c) }
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const size = 123456
	s, err := ep.NewFlow(42, star.Receiver.ID(), size, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.Run()
	if !s.Done() || s.SentBytes() != size {
		t.Errorf("sender done=%v sent=%d, want true/%d", s.Done(), s.SentBytes(), size)
	}
	if len(completions) != 1 {
		t.Fatalf("got %d completions, want 1", len(completions))
	}
	c := completions[0]
	if c.Flow != 42 || c.Bytes != size {
		t.Errorf("completion %+v, want flow 42, %d bytes", c, size)
	}
	// Lower bound: size/line-rate plus one propagation.
	if c.At < des.Time(des.DurationFromSeconds(float64(size)/1.25e9)) {
		t.Errorf("completion at %v is before the transmission time", c.At)
	}
}

func TestDuplicateFlowIDRejected(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.NewFlow(1, star.Receiver.ID(), 1000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.NewFlow(1, star.Receiver.ID(), 1000, 0); err == nil {
		t.Error("duplicate flow id accepted")
	}
}

// A CNP cuts the rate by α/2 and resets the increase machinery.
func TestCNPCutsRate(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ep.NewFlow(0, star.Receiver.ID(), -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.RunUntil(des.Time(100 * des.Microsecond))
	r0 := s.Rate()
	a0 := s.Alpha()
	// Deliver a CNP directly.
	star.Senders[0].Receive(&netsim.Packet{Flow: 0, Kind: netsim.CNP})
	want := r0 * (1 - a0/2)
	if got := s.Rate(); got != want {
		t.Errorf("rate after CNP = %v, want %v", got, want)
	}
	if s.TargetRate() != r0 {
		t.Errorf("target after CNP = %v, want pre-cut rate %v", s.TargetRate(), r0)
	}
	if s.Alpha() <= a0*(1-1.0/256) {
		t.Errorf("α after CNP = %v, should have moved toward 1", s.Alpha())
	}
}

// Hyper increase engages once both the byte counter and the timer are past
// F stages: recovery from a cut is then much faster than with R_AI alone.
// Shrinking the byte counter makes HI reachable quickly on a single
// uncongested flow.
func TestHyperIncreaseAcceleratesRecovery(t *testing.T) {
	recoveryTime := func(rhai float64) des.Time {
		nw := netsim.New(1)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 1,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
		})
		if _, err := NewEndpoint(star.Receiver, DefaultParams()); err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.ByteCounter = 100e3 // byte-counter events every 100 KB
		p.RAI = 1e6 / 8       // slow additive increase: 1 Mb/s
		p.RHAI = rhai
		ep, err := NewEndpoint(star.Senders[0], p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ep.NewFlow(0, star.Receiver.ID(), -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate a deep cut: repeated CNPs drive the rate down hard.
		nw.Sim.At(des.Time(des.Millisecond), func() {
			for i := 0; i < 10; i++ {
				s.onCNP(&netsim.Packet{Kind: netsim.CNP, Flow: 0})
			}
		})
		var recovered des.Time
		nw.Sim.Every(des.Time(des.Millisecond), 100*des.Microsecond, func() {
			if recovered == 0 && s.Rate() > 1.25e9*0.9 {
				recovered = nw.Sim.Now()
				nw.Sim.Stop()
			}
		})
		nw.Sim.RunUntil(des.Time(3 * des.Second))
		if recovered == 0 {
			t.Fatalf("RHAI=%v: never recovered to 90%% line rate", rhai)
		}
		return recovered
	}
	slow := recoveryTime(1e6 / 8) // HI step = AI step: no hyper phase
	fast := recoveryTime(200e6 / 8)
	if fast >= slow {
		t.Errorf("hyper increase did not accelerate recovery: %v vs %v", fast, slow)
	}
	if des.Duration(slow-fast) < 10*des.Millisecond {
		t.Errorf("recovery acceleration only %v, want clearly visible", des.Duration(slow-fast))
	}
}
