package dcqcn_test

import (
	"testing"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
)

func recoveryParams() dcqcn.Params {
	p := dcqcn.DefaultParams()
	p.Recovery = true
	p.RTO = 200 * des.Microsecond
	return p
}

// A clean path with recovery enabled: acks flow, nothing is retransmitted,
// and every flow completes at both ends.
func TestRecoveryCleanPathNoRetx(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 2,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	rx, err := dcqcn.NewEndpoint(star.Receiver, recoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	completed := map[int]int64{}
	rx.OnComplete = func(c dcqcn.Completion) { completed[c.Flow] = c.Bytes }
	const flowBytes = 200000
	var senders []*dcqcn.Sender
	for i, h := range star.Senders {
		ep, err := dcqcn.NewEndpoint(h, recoveryParams())
		if err != nil {
			t.Fatal(err)
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), flowBytes, 0)
		if err != nil {
			t.Fatal(err)
		}
		senders = append(senders, s)
	}
	nw.Sim.RunUntil(des.Time(des.Second))
	for i, s := range senders {
		if !s.Done() {
			t.Errorf("flow %d sender not done", i)
		}
		st := s.Recovery()
		if st.RetxBytes != 0 || st.Rewinds != 0 || st.RTOs != 0 {
			t.Errorf("flow %d retransmitted on a clean path: %+v", i, st)
		}
		if st.AckedBytes != flowBytes {
			t.Errorf("flow %d acked %d, want %d", i, st.AckedBytes, flowBytes)
		}
		if completed[i] != flowBytes {
			t.Errorf("flow %d completed %d bytes at receiver, want %d", i, completed[i], flowBytes)
		}
	}
	if rx.TotalRxBytes() != 2*flowBytes {
		t.Errorf("goodput %d, want %d", rx.TotalRxBytes(), 2*flowBytes)
	}
}

// Data and control loss on the path: go-back-N retransmits, every flow
// still completes with full in-order goodput, and the same seed reproduces
// the run exactly.
func TestRecoveryLossyFlowsComplete(t *testing.T) {
	type result struct {
		retx, rewinds, goodput int64
		processed              uint64
		end                    des.Time
	}
	const flowBytes = 500000
	run := func() result {
		nw := netsim.New(3)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 2,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			},
		})
		rx, err := dcqcn.NewEndpoint(star.Receiver, recoveryParams())
		if err != nil {
			t.Fatal(err)
		}
		completed := map[int]int64{}
		rx.OnComplete = func(c dcqcn.Completion) { completed[c.Flow] = c.Bytes }
		var senders []*dcqcn.Sender
		for i, h := range star.Senders {
			ep, err := dcqcn.NewEndpoint(h, recoveryParams())
			if err != nil {
				t.Fatal(err)
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), flowBytes, 0)
			if err != nil {
				t.Fatal(err)
			}
			senders = append(senders, s)
		}
		// 2% data loss toward the receiver, 10% feedback loss on the way
		// back (acks, nacks and CNPs all ride the receiver's NIC).
		plan := &fault.Plan{Seed: 11, Links: []fault.LinkFaults{
			{Port: star.Bottleneck, Loss: []fault.Loss{{Kinds: fault.SelData, Rate: 0.02}}},
			{Port: star.Receiver.Port(), Loss: []fault.Loss{{Kinds: fault.SelCtrl, Rate: 0.10}}},
		}}
		applied := plan.Apply(nw)
		nw.Sim.RunUntil(des.Time(des.Second))
		if applied.Drops() == 0 {
			t.Fatal("fault plan injected no losses")
		}
		var r result
		for i, s := range senders {
			if !s.Done() {
				t.Fatalf("flow %d sender never completed under loss", i)
			}
			if completed[i] != flowBytes {
				t.Fatalf("flow %d delivered %d bytes, want %d", i, completed[i], flowBytes)
			}
			st := s.Recovery()
			r.retx += st.RetxBytes
			r.rewinds += st.Rewinds
			if st.Recovering {
				t.Errorf("flow %d still marked recovering after completion", i)
			}
		}
		r.goodput = rx.TotalRxBytes()
		r.processed = nw.Sim.Processed()
		r.end = nw.Sim.Now()
		return r
	}
	a := run()
	if a.retx == 0 || a.rewinds == 0 {
		t.Errorf("expected retransmissions under 2%% loss, got retx=%d rewinds=%d", a.retx, a.rewinds)
	}
	if a.goodput != 2*flowBytes {
		t.Errorf("goodput %d, want exactly %d (in-order delivery only)", a.goodput, 2*flowBytes)
	}
	b := run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// dropFeedbackUntil loses every protocol feedback packet before a cutoff
// time, forcing the sender onto its RTO path.
type dropFeedbackUntil struct {
	nw    *netsim.Network
	until des.Time
}

func (d *dropFeedbackUntil) DropTx(pkt *netsim.Packet) bool {
	switch pkt.Kind {
	case netsim.Ack, netsim.Nack, netsim.CNP:
		return d.nw.Sim.Now() < d.until
	}
	return false
}

// Total feedback blackout: the RTO with exponential backoff must carry the
// flow until acks return, then the flow completes.
func TestRecoveryRTOBackstop(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	rx, err := dcqcn.NewEndpoint(star.Receiver, recoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	done := false
	rx.OnComplete = func(c dcqcn.Completion) { done = true }
	star.Receiver.Port().SetFaultHook(&dropFeedbackUntil{nw: nw, until: des.Time(2 * des.Millisecond)})
	ep, err := dcqcn.NewEndpoint(star.Senders[0], recoveryParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ep.NewFlow(0, star.Receiver.ID(), 50000, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.RunUntil(des.Time(100 * des.Millisecond))
	if !done {
		t.Fatal("receiver never completed the flow")
	}
	if !s.Done() {
		t.Fatal("sender still waiting for acks after the blackout lifted")
	}
	st := s.Recovery()
	if st.RTOs == 0 {
		t.Error("feedback blackout should have fired the RTO")
	}
	if st.RetxBytes == 0 {
		t.Error("RTO recovery should have retransmitted")
	}
	if st.AckedBytes != 50000 {
		t.Errorf("acked %d, want 50000", st.AckedBytes)
	}
}

// Recovery must not change Validate's view of bad parameters.
func TestRecoveryParamValidation(t *testing.T) {
	p := dcqcn.DefaultParams()
	p.Recovery = true
	p.RTO = des.Millisecond
	p.RTOMax = des.Microsecond // cap below RTO
	if p.Validate() == nil {
		t.Error("RTOMax < RTO accepted")
	}
	if _, err := dcqcn.NewEndpoint(netsim.New(1).NewHost(), recoveryParams()); err != nil {
		t.Errorf("defaulted recovery params rejected: %v", err)
	}
}
