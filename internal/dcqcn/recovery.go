package dcqcn

import (
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// Go-back-N loss recovery (Params.Recovery). RoCE NICs implement exactly
// this shape of recovery: the receiver delivers only in-order data,
// cumulative ACKs ride back every AckBytes (or AckInterval), a sequence
// gap triggers a rate-limited NACK naming the next expected offset, and
// the sender rewinds its cursor and resends everything from there. An RTO
// with exponential backoff backstops lost feedback. All of it is inert —
// zero extra events, zero wire changes — when Recovery is off.

// rxState is the receiver-side per-flow reassembly cursor.
type rxState struct {
	exp     int64 // next expected byte offset
	pending int64 // in-order bytes since the last cumulative ack
	lastSig des.Time
	sigged  bool
}

// recvData is handleData under Recovery: in-order payload is delivered
// and acknowledged cumulatively; gaps and duplicates are signalled. CE
// marks still generate CNPs regardless of ordering — congestion feedback
// must not wait for retransmissions.
func (e *Endpoint) recvData(pkt *netsim.Packet) {
	e.maybeCNP(pkt)
	st := e.rx[pkt.Flow]
	if st == nil {
		st = &rxState{}
		e.rx[pkt.Flow] = st
	}
	now := e.host.Now()
	switch {
	case pkt.Seq == st.exp:
		size := int64(pkt.Size)
		st.exp += size
		st.pending += size
		e.rxBytes[pkt.Flow] += size
		if e.ctr != nil {
			e.ctr.RxBytes.Add(size)
		}
		if pkt.Last || !st.sigged || st.pending >= e.p.AckBytes ||
			now.Sub(st.lastSig) >= e.p.AckInterval {
			e.signal(pkt, netsim.Ack, st, now)
			st.pending = 0
		}
		if pkt.Last && e.OnComplete != nil {
			e.OnComplete(Completion{Flow: pkt.Flow, Bytes: e.rxBytes[pkt.Flow], At: now})
		}
	case pkt.Seq > st.exp:
		// Gap: the payload is useless to go-back-N; ask for the missing
		// offset, rate-limited so a burst of out-of-order arrivals does
		// not stampede the sender.
		if !st.sigged || now.Sub(st.lastSig) >= e.p.NackMinGap {
			e.signal(pkt, netsim.Nack, st, now)
		}
	default:
		// Duplicate of delivered data (a rewind overshoot, or our ack
		// got lost). Re-ack so the sender cannot wedge waiting for an
		// acknowledgement that already died on the wire.
		if !st.sigged || now.Sub(st.lastSig) >= e.p.NackMinGap {
			e.signal(pkt, netsim.Ack, st, now)
			st.pending = 0
		}
	}
}

// signal emits a cumulative Ack or Nack carrying the next expected offset.
func (e *Endpoint) signal(data *netsim.Packet, kind netsim.Kind, st *rxState, now des.Time) {
	st.sigged = true
	st.lastSig = now
	if e.ctr != nil {
		if kind == netsim.Ack {
			e.ctr.AcksTx.Inc()
		} else {
			e.ctr.NacksTx.Inc()
		}
	}
	pkt := e.host.AllocPacket()
	pkt.Flow = data.Flow
	pkt.Dst = data.Src
	pkt.Size = netsim.CtrlSize
	pkt.Kind = kind
	pkt.Seq = st.exp
	e.host.Send(pkt)
}

// TotalRxBytes sums delivered payload across flows at this endpoint —
// under Recovery that is in-order bytes only, i.e. goodput.
func (e *Endpoint) TotalRxBytes() int64 {
	var n int64
	for _, b := range e.rxBytes {
		n += b
	}
	return n
}

// RecoveryStats summarises a sender's loss-recovery work.
type RecoveryStats struct {
	RetxBytes    int64        // bytes re-sent below the high-water mark
	Rewinds      int64        // go-back-N cursor rewinds
	RTOs         int64        // retransmission timeouts fired
	AckedBytes   int64        // cumulative acknowledged bytes
	Recovering   bool         // currently inside a recovery episode
	RecoveryTime des.Duration // total time spent recovering
}

// Recovery reports the sender's loss-recovery statistics.
func (s *Sender) Recovery() RecoveryStats {
	return RecoveryStats{
		RetxBytes:    s.retxBytes,
		Rewinds:      s.rewinds,
		RTOs:         s.rtos,
		AckedBytes:   s.acked,
		Recovering:   s.recovering,
		RecoveryTime: s.recoverTime,
	}
}

// onAck applies a cumulative acknowledgement.
func (s *Sender) onAck(seq int64) {
	if !s.e.p.Recovery || !s.started || s.done {
		return
	}
	if seq > s.acked {
		s.acked = seq
		s.rtoShift = 0 // feedback is flowing again
	}
	s.checkRecovered()
	if s.size >= 0 && s.acked >= s.size {
		s.complete()
		return
	}
	if s.acked >= s.sent {
		s.rtoEv.Cancel() // nothing outstanding
	} else {
		s.armRTO()
	}
}

// onNack rewinds to the receiver's next expected offset. The NACK's Seq
// is also a cumulative acknowledgement of everything before it.
func (s *Sender) onNack(seq int64) {
	if !s.e.p.Recovery || !s.started || s.done {
		return
	}
	if seq > s.acked {
		s.acked = seq
		s.rtoShift = 0
	}
	s.checkRecovered()
	if s.size >= 0 && s.acked >= s.size {
		s.complete()
		return
	}
	s.rewind(seq)
}

// onRTO fires when neither acks nor nacks arrived for a full timeout:
// assume everything outstanding is lost and go back to the last ack.
func (s *Sender) onRTO() {
	if s.done || !s.started {
		return
	}
	if s.acked >= s.sent {
		// Nothing outstanding (a stale timer): keep a quiet backstop.
		s.armRTO()
		return
	}
	s.rtos++
	if s.e.ctr != nil {
		s.e.ctr.RTOs.Inc()
	}
	if s.rtoShift < 16 {
		s.rtoShift++ // exponential backoff, capped by RTOMax in armRTO
	}
	s.rewind(s.acked)
}

// rewind moves the send cursor back to offset `to` and restarts pacing.
// The payload is synthetic, so go-back-N needs no retransmit buffer —
// rewinding the cursor regenerates identical packets.
func (s *Sender) rewind(to int64) {
	if to < s.acked {
		to = s.acked
	}
	if to >= s.sent {
		return // nothing to go back over
	}
	if !s.recovering {
		s.recovering = true
		s.recoverStart = s.e.host.Now()
	}
	s.rewinds++
	s.sent = to
	s.sendEv.Cancel()
	s.sendNext()
}

// checkRecovered closes a recovery episode once the cumulative ack has
// caught back up with the high-water mark.
func (s *Sender) checkRecovered() {
	if s.recovering && s.acked >= s.maxSent {
		s.recoverTime += s.e.host.Now().Sub(s.recoverStart)
		s.recovering = false
	}
}

// complete ends the flow once every byte is acknowledged.
func (s *Sender) complete() {
	if s.recovering {
		s.recoverTime += s.e.host.Now().Sub(s.recoverStart)
		s.recovering = false
	}
	s.done = true
	s.sendEv.Cancel()
	s.alphaEv.Cancel()
	s.timerEv.Cancel()
	s.rtoEv.Cancel()
}

// armRTO (re)starts the retransmission timer with the current backoff.
func (s *Sender) armRTO() {
	d := s.e.p.RTO << s.rtoShift
	if d > s.e.p.RTOMax {
		d = s.e.p.RTOMax
	}
	s.rtoEv.Cancel()
	s.rtoEv = s.e.host.ScheduleHandler(d, s, evRTO)
}
