// Package stats provides the small statistical toolkit the experiments
// need: percentiles, empirical CDFs, running summaries, time series, and
// Jain's fairness index.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: percentile of empty set")
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p), nil
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
}

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// CV is the coefficient of variation (stddev/mean); it reports 0 for a zero
// mean, where the ratio is meaningless.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / math.Abs(s.Mean)
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples <= X
}

// CDF builds the empirical CDF of xs, one point per distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var out []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// JainIndex is Jain's fairness index: (Σx)² / (n·Σx²), 1 for perfectly
// equal allocations and 1/n in the maximally unfair case.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Series is a time series of scalar observations.
type Series struct {
	T []float64
	V []float64
}

// Add appends an observation; times must be non-decreasing.
func (s *Series) Add(t, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic("stats: time series going backwards")
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.T) }

// Window returns the values observed in [t0, t1].
func (s *Series) Window(t0, t1 float64) []float64 {
	lo := sort.SearchFloat64s(s.T, t0)
	hi := sort.Search(len(s.T), func(i int) bool { return s.T[i] > t1 })
	return s.V[lo:hi]
}

// WindowSummary summarises the values observed in [t0, t1].
func (s *Series) WindowSummary(t0, t1 float64) Summary {
	return Summarize(s.Window(t0, t1))
}

// TimeAverage integrates the series by step interpolation (each value holds
// until the next sample) over [t0, t1] and divides by the span.
func (s *Series) TimeAverage(t0, t1 float64) float64 {
	if len(s.T) == 0 || t1 <= t0 {
		return 0
	}
	var acc float64
	for i := 0; i < len(s.T); i++ {
		start := s.T[i]
		if start < t0 {
			start = t0
		}
		end := t1
		if i+1 < len(s.T) && s.T[i+1] < end {
			end = s.T[i+1]
		}
		if end > start {
			acc += s.V[i] * (end - start)
		}
		if s.T[i] > t1 {
			break
		}
	}
	return acc / (t1 - t0)
}
