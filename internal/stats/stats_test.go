package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
	if v, err := Percentile([]float64{7}, 50); err != nil || v != 7 {
		t.Errorf("singleton percentile = %v, %v", v, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		p1 := float64(a) / 255 * 100
		p2 := float64(b) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, _ := Percentile(xs, 0)
		hi, _ := Percentile(xs, 100)
		return v1 <= v2+1e-12 && v1 >= lo-1e-12 && v2 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || math.Abs(s.Stddev-2) > 1e-12 {
		t.Errorf("summary %+v, want mean 5 sd 2", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max %v/%v, want 2/9", s.Min, s.Max)
	}
	if math.Abs(s.CV()-0.4) > 1e-12 {
		t.Errorf("CV = %v, want 0.4", s.CV())
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary N = %d", z.N)
	}
	if (Summary{}).CV() != 0 {
		t.Error("CV of zero-mean summary should be 0")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", pts, want)
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

// Property: any CDF is non-decreasing in both coordinates and ends at P=1.
func TestPropertyCDFShape(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		pts := CDF(vals)
		if len(vals) == 0 {
			return pts == nil
		}
		for i := range pts {
			if i > 0 && (pts[i].X <= pts[i-1].X || pts[i].P <= pts[i-1].P) {
				return false
			}
		}
		return math.Abs(pts[len(pts)-1].P-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal allocation index %v, want 1", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("max unfair index %v, want 0.25", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Errorf("empty index %v, want 0", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 0 {
		t.Errorf("all-zero index %v, want 0", j)
	}
}

// Property: Jain's index is scale-invariant and within [1/n, 1] for
// positive allocations.
func TestPropertyJainBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() + 0.01
			ys[i] = xs[i] * 7.5
		}
		j := JainIndex(xs)
		if j < 1/float64(n)-1e-12 || j > 1+1e-12 {
			return false
		}
		return math.Abs(j-JainIndex(ys)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	w := s.Window(2, 5)
	if len(w) != 4 || w[0] != 4 || w[3] != 25 {
		t.Errorf("window = %v", w)
	}
	sum := s.WindowSummary(0, 100)
	if sum.N != 10 {
		t.Errorf("full window N = %d", sum.N)
	}
	if got := s.Len(); got != 10 {
		t.Errorf("Len = %d", got)
	}
}

func TestSeriesBackwardsPanics(t *testing.T) {
	var s Series
	s.Add(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on backwards time")
		}
	}()
	s.Add(0.5, 0)
}

func TestTimeAverage(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 20)
	s.Add(3, 0)
	// [0,1): 10, [1,3): 20, [3,4]: 0 → over [0,4]: (10+40+0)/4 = 12.5.
	if got := s.TimeAverage(0, 4); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("TimeAverage = %v, want 12.5", got)
	}
	// Partial window [0.5, 1.5]: 0.5·10 + 0.5·20 = 15.
	if got := s.TimeAverage(0.5, 1.5); math.Abs(got-15) > 1e-12 {
		t.Errorf("partial TimeAverage = %v, want 15", got)
	}
	var empty Series
	if got := empty.TimeAverage(0, 1); got != 0 {
		t.Errorf("empty TimeAverage = %v", got)
	}
}

func TestPercentileMatchesSortedDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if med < sorted[498] || med > sorted[501] {
		t.Errorf("median %v outside the middle order statistics", med)
	}
}
