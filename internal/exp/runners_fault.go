package exp

// Fault scenarios: the robustness extension. The paper's evaluation
// assumes a lossless PFC fabric, so neither DCQCN nor TIMELY ever sees a
// lost packet. These experiments inject loss with internal/fault and
// measure what go-back-N recovery salvages — and what losing the
// congestion-feedback channel itself does to stability.

import (
	"fmt"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
)

func init() {
	register(Runner{
		ID: "faultloss", Title: "FCT and goodput under injected packet loss", Figure: "robustness extension",
		Run: runFaultLoss,
	})
	register(Runner{
		ID: "faultcnp", Title: "DCQCN queue stability when CNPs are lost", Figure: "robustness extension",
		Run: runFaultCNP,
	})
}

// runFaultLoss sweeps an i.i.d. loss rate applied to data on the forward
// trunk and to protocol feedback on the reverse trunk of the Figure 13
// dumbbell, with go-back-N recovery at every endpoint. Every flow must
// still finish; the price shows up as FCT inflation, retransmitted bytes
// and goodput efficiency (delivered / carried) below one.
func runFaultLoss(o Options) (*Report, error) {
	rep := &Report{ID: "faultloss", Title: "Loss sweep on the FCT dumbbell with go-back-N recovery"}
	rates := []float64{0, 1e-3, 1e-2}
	horizon, warmup, drain := 0.1, 0.02, 0.4
	if o.Scale == Full {
		rates = []float64{0, 1e-4, 1e-3, 1e-2}
		horizon, warmup, drain = 0.5, 0.1, 1.0
	}
	tbl := Table{Cols: []string{"loss", "protocol", "done/gen", "median ms", "p99 ms", "retx KB", "efficiency"}}
	for _, rate := range rates {
		for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
			r, err := RunFCT(FCTConfig{
				Protocol: proto, LoadFactor: 0.6,
				Horizon: horizon, Warmup: warmup, Drain: drain, Seed: o.Seed,
				DataLossRate: rate, CtrlLossRate: rate,
				FaultSeed:  o.Seed + 100,
				Recovery:   true,
				Observer:   o.Observer,
				ProbeName:  fmt.Sprintf("queue_bytes.loss%g.%s", rate, proto),
				HistPrefix: fmt.Sprintf("loss%g.%s.", rate, proto),
				Shards:     o.Shards,
			})
			if err != nil {
				return nil, err
			}
			med, err := stats.Percentile(r.AllFCT, 50)
			if err != nil {
				return nil, err
			}
			p99, _ := stats.Percentile(r.AllFCT, 99)
			eff := 1.0
			if r.RawTxBytes > 0 {
				eff = float64(r.Goodput) / float64(r.RawTxBytes)
			}
			tbl.Rows = append(tbl.Rows, []string{
				eng(rate), proto.String(),
				fmt.Sprintf("%d/%d", r.Completed, r.Generated),
				f3(med * 1e3), f3(p99 * 1e3),
				f1(float64(r.RetxBytes) / 1e3), f3(eff),
			})
			key := fmt.Sprintf("%s_loss%g", proto, rate)
			rep.AddMetric("unfinished_"+key, float64(r.Unfinished))
			rep.AddMetric("p99_ms_"+key, p99*1e3)
			rep.AddMetric("retx_kb_"+key, float64(r.RetxBytes)/1e3)
			rep.AddMetric("efficiency_"+key, eff)
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"recovery keeps every flow finishing at every loss rate; the damage is paid in tail FCT and in efficiency (goodput over carried bytes), which falls as retransmissions consume trunk capacity")
	return rep, nil
}

// runFaultCNP drops only CNPs — the congestion notifications DCQCN's rate
// control lives on — while data and everything else flow untouched. With
// feedback arriving late, senders cut rate late: the bottleneck queue
// grows and swings harder even though no payload was ever lost.
func runFaultCNP(o Options) (*Report, error) {
	rep := &Report{ID: "faultcnp", Title: "DCQCN bottleneck queue vs CNP loss rate (10 long flows)"}
	horizon := 0.08
	if o.Scale == Full {
		horizon = 0.3
	}
	rates := []float64{0, 0.5, 0.9}
	tbl := Table{Cols: []string{"CNP loss", "queue mean KB", "queue max KB", "queue CV"}}
	for _, rate := range rates {
		nw := netsim.New(o.Seed)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 10,
			Link:    netsim.LinkConfig{Bandwidth: 5e9, PropDelay: des.Microsecond},
			Mark: func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			},
		})
		if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
			return nil, err
		}
		for i, h := range star.Senders {
			ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
			if err != nil {
				return nil, err
			}
			if _, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0); err != nil {
				return nil, err
			}
		}
		if rate > 0 {
			(&fault.Plan{Seed: o.Seed + 7, Links: []fault.LinkFaults{{
				Port: star.Receiver.Port(),
				Loss: []fault.Loss{{Kinds: fault.SelCNP, Rate: rate}},
			}}}).Apply(nw)
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return nil, err
		}
		q := qs.WindowSummary(horizon*0.5, horizon)
		tbl.Rows = append(tbl.Rows, []string{
			eng(rate), f1(q.Mean / 1000), f1(q.Max / 1000), f2(q.CV()),
		})
		key := fmt.Sprintf("loss%g", rate)
		rep.AddMetric("q_mean_kb_"+key, q.Mean/1000)
		rep.AddMetric("q_max_kb_"+key, q.Max/1000)
		rep.AddMetric("q_cv_"+key, q.CV())
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"the feedback channel is part of the control loop: losing CNPs stretches the effective feedback delay, so the queue's operating point and excursions grow with the loss rate even though all data arrives — the same sensitivity Figure 4 shows for added feedback delay")
	return rep, nil
}
