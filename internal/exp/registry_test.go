package exp

import (
	"strings"
	"testing"
)

// Registration is append-only at init time; these tests pin its
// invariants: unique IDs, Get round-trips every runner, and duplicate
// or incomplete registrations panic before touching the registry.
func TestRegistryUniqueAndRoundTrips(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Runners() {
		if seen[r.ID] {
			t.Errorf("duplicate runner id %q", r.ID)
		}
		seen[r.ID] = true
		got, ok := Get(r.ID)
		if !ok {
			t.Errorf("Get(%q) not found", r.ID)
			continue
		}
		if got.ID != r.ID || got.Title != r.Title || got.Figure != r.Figure {
			t.Errorf("Get(%q) returned %q/%q, want %q/%q", r.ID, got.Title, got.Figure, r.Title, r.Figure)
		}
		if got.Run == nil {
			t.Errorf("Get(%q) has nil Run", r.ID)
		}
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	before := len(Runners())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("registering a duplicate id did not panic")
		}
		if !strings.Contains(r.(string), "duplicate runner id") {
			t.Fatalf("unexpected panic %v", r)
		}
		if len(Runners()) != before {
			t.Fatal("failed registration mutated the registry")
		}
	}()
	register(Runner{ID: "fig2", Title: "dup", Figure: "x",
		Run: func(Options) (*Report, error) { return &Report{}, nil }})
}

func TestRegisterPanicsOnIncomplete(t *testing.T) {
	for _, r := range []Runner{
		{ID: "", Run: func(Options) (*Report, error) { return nil, nil }},
		{ID: "newid"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %+v did not panic", r)
				}
			}()
			register(r)
		}()
	}
}

// Runners must return a copy: callers mutating the slice cannot corrupt
// the registry.
func TestRunnersReturnsCopy(t *testing.T) {
	rs := Runners()
	if len(rs) == 0 {
		t.Fatal("empty registry")
	}
	rs[0].ID = "clobbered"
	if _, ok := Get("clobbered"); ok {
		t.Fatal("mutating Runners() result leaked into the registry")
	}
}
