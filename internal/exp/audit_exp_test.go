package exp

import (
	"bytes"
	"testing"

	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
)

// The auditloop experiment is the tentpole's acceptance check: fault-free,
// every DCQCN rate cut is attributed to exactly one mark episode; under
// total CNP loss the episodes orphan because no sender ever hears about
// them.
func TestAuditLoopAttribution(t *testing.T) {
	rep, err := runAuditLoop(Options{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m["cuts_loss0"] == 0 {
		t.Fatal("fault-free run produced no rate cuts; scenario broken")
	}
	if m["attr_frac_loss0"] != 1 {
		t.Errorf("fault-free attribution fraction %g, want 1", m["attr_frac_loss0"])
	}
	if m["episodes_loss0"] < 2 {
		t.Errorf("fault-free run saw %g mark episodes, want several (queue should oscillate through Kmin)", m["episodes_loss0"])
	}
	if m["orphans_loss0"] != 0 {
		t.Errorf("fault-free run orphaned %g episodes, want 0", m["orphans_loss0"])
	}
	if m["markcut_p50_us_loss0"] <= 0 {
		t.Error("fault-free run measured no mark→cut latency")
	}
	// 85µs of injected feedback delay bounds the loop latency from below.
	if p50 := m["markcut_p50_us_loss0"]; p50 < 85 || p50 > 500 {
		t.Errorf("mark→cut p50 %.1fµs implausible for an 85µs feedback-delay loop", p50)
	}
	// Total CNP loss: congestion is flagged but never heard — the orphan
	// signature.
	if m["cuts_loss1"] != 0 {
		t.Errorf("run with all CNPs dropped still cut %g times", m["cuts_loss1"])
	}
	if m["orphans_loss1"] < 1 {
		t.Errorf("run with all CNPs dropped orphaned %g episodes, want at least 1", m["orphans_loss1"])
	}
}

// reduceAudit's attribution bookkeeping on a hand-built stream: two
// episodes, one cut attributed to the first, the second orphaned.
func TestReduceAudit(t *testing.T) {
	decs := []obs.Decision{
		{T: 100, Type: obs.DecMarkOpen, Episode: 7},
		{T: 150, Type: obs.DecMarkOpen, Episode: 9},
		{T: 300, Type: obs.DecRateCut, Episode: 7},
		{T: 400, Type: obs.DecRateCut, Episode: 7},
		{T: 500, Type: obs.DecRateCut}, // unattributed
	}
	st, err := reduceAudit(decs)
	if err != nil {
		t.Fatal(err)
	}
	if st.cuts != 3 || st.attributed != 2 || st.episodes != 2 || st.orphans != 1 {
		t.Errorf("got cuts=%d attributed=%d episodes=%d orphans=%d, want 3/2/2/1",
			st.cuts, st.attributed, st.episodes, st.orphans)
	}
	// Only the episode's FIRST cut measures the loop's feedback delay.
	if want := (300 - 100) * 1e-9; st.latP50 != want {
		t.Errorf("latP50 = %g, want %g (first cut only)", st.latP50, want)
	}
}

// One shared AuditJSONLSink across concurrent sweep jobs — the ecnbench
// -audit wiring — serialises to identical bytes for any worker count:
// the sink sorts by record content, so scheduling interleave is invisible.
func TestSharedAuditSinkDeterministicAcrossWorkers(t *testing.T) {
	protos := []Protocol{ProtoDCQCN, ProtoTimely}
	runAll := func(workers int) []byte {
		var buf bytes.Buffer
		sink := obs.NewAuditJSONLSink(&buf, 0)
		sink.SetHeader(obs.Header{Schema: "audit", Version: 1, Seed: 42})
		shared := &obs.NetObserver{Audit: obs.NewAuditTrail(sink), Hists: obs.NewHistSet()}
		jobs := make([]sweep.Job, len(protos))
		for i, proto := range protos {
			proto := proto
			jobs[i] = sweep.Job{
				ID: proto.String(),
				Run: func(int64) (map[string]float64, error) {
					cfg := goldenCfg(proto)
					cfg.Observer = shared
					if _, err := RunFCT(cfg); err != nil {
						return nil, err
					}
					return map[string]float64{"ok": 1}, nil
				},
			}
		}
		if _, err := sweep.Run(sweep.Config{Workers: workers}, jobs, &sweep.MemorySink{}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runAll(1)
	parallel := runAll(4)
	if !bytes.Equal(serial, parallel) {
		t.Error("shared audit export differs between 1 and 4 sweep workers")
	}
	for _, frag := range []string{`"dec":"cut"`, `"dec":"rtt"`, `"dec":"epopen"`} {
		if !bytes.Contains(serial, []byte(frag)) {
			t.Errorf("audit export is missing %s records", frag)
		}
	}
}
