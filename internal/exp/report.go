// Package exp contains one runnable experiment per table and figure in the
// paper's evaluation, producing the same rows/series the paper reports.
// Each experiment is registered in the Runners table so the cmd/ecnbench
// binary, the examples, and the top-level benchmarks can regenerate any of
// them by id.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ecndelay/internal/obs"
)

// Scale selects the experiment fidelity.
type Scale int

// Quick runs a down-scaled experiment (shorter horizons, fewer points) for
// tests and benchmarks; Full reproduces the paper-scale runs.
const (
	Quick Scale = iota
	Full
)

// Options configure a runner invocation.
type Options struct {
	Scale Scale
	Seed  int64
	// Observer, when non-nil, is attached to every network the runner
	// builds: counters, traces, probes and invariants accumulate there.
	// Nil — the default — leaves runs bit-identical to unobserved ones.
	Observer *obs.NetObserver
	// Shards requests sharded parallel execution of each packet-level
	// network: the node set is partitioned (netsim.DefaultAssign) across
	// this many shard simulators synchronised by conservative link
	// lookahead. 0 or 1 runs the historical serial engine byte-identically;
	// any N is metrics-identical to serial. Fluid-model experiments ignore
	// the setting (nothing to shard in an ODE).
	Shards int
}

// Table is a rendered block of experiment output.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// Report is the result of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []Table
	Notes  []string
	// Metrics carries the headline numbers for programmatic checks
	// (benchmarks report them; EXPERIMENTS.md quotes them).
	Metrics map[string]float64
}

// AddMetric records a headline number.
func (r *Report) AddMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Render writes the report as aligned text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "\n%s\n", t.Title)
		}
		widths := make([]int, len(t.Cols))
		for i, c := range t.Cols {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				w := 0
				if i < len(widths) {
					w = widths[i]
				}
				parts[i] = fmt.Sprintf("%-*s", w, c)
			}
			fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
		}
		line(t.Cols)
		sep := make([]string, len(t.Cols))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
		for _, row := range t.Rows {
			line(row)
		}
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w)
		for _, k := range keys {
			fmt.Fprintf(w, "  metric %-40s %g\n", k, r.Metrics[k])
		}
	}
	fmt.Fprintln(w)
}

// Runner is one registered experiment.
type Runner struct {
	ID     string
	Title  string
	Figure string // the paper table/figure this regenerates
	Run    func(Options) (*Report, error)
}

var registry []Runner

// register adds a runner at init time. Duplicate or incomplete
// registrations are programming errors, caught immediately rather than
// shadowing an existing experiment.
func register(r Runner) {
	if r.ID == "" || r.Run == nil {
		panic(fmt.Sprintf("exp: runner %q registered without id or Run", r.ID))
	}
	for _, ex := range registry {
		if ex.ID == r.ID {
			panic(fmt.Sprintf("exp: duplicate runner id %q", r.ID))
		}
	}
	registry = append(registry, r)
}

// Runners lists every registered experiment in registration order.
func Runners() []Runner { return append([]Runner(nil), registry...) }

// Get finds an experiment by id.
func Get(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func eng(v float64) string { return fmt.Sprintf("%.4g", v) }
