package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden testdata files")

// Fault injection under go-back-N recovery must not break any invariant:
// wire loss happens after the dequeue, so queue conservation, bounds, and
// the pool discipline all hold even while packets die and retransmit.
func TestFaultLossRunCleanInvariants(t *testing.T) {
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		t.Run(proto.String(), func(t *testing.T) {
			o := obs.Full()
			r, err := RunFCT(FCTConfig{
				Protocol: proto, LoadFactor: 0.6,
				Horizon: 0.02, Warmup: 0.004, Drain: 0.2, Seed: 7,
				DataLossRate: 1e-3, CtrlLossRate: 1e-2,
				FaultSeed: 42, Recovery: true,
				Observer: o,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.WireDrops == 0 {
				t.Fatal("no injected loss; scenario not exercising the fault path")
			}
			// RunFCT already ran the Finish closure; Err reports the verdict.
			if err := o.Check.Err(); err != nil {
				t.Errorf("invariants violated under injected loss: %v", err)
			}
			if o.Trace.Count(obs.WireDrop) != r.WireDrops {
				t.Errorf("trace wire drops %d, result reports %d",
					o.Trace.Count(obs.WireDrop), r.WireDrops)
			}
			if o.Trace.Count(obs.Retx) == 0 {
				t.Error("recovery retransmitted nothing despite loss")
			}
		})
	}
}

// A finite-buffer run (tail drops instead of lossless PFC) is also clean:
// the BufDrop path never enqueued, so the books still balance.
func TestFiniteBufferRunCleanInvariants(t *testing.T) {
	o := obs.Full()
	r, err := RunFCT(FCTConfig{
		Protocol: ProtoDCQCN, LoadFactor: 0.9,
		Horizon: 0.02, Warmup: 0.004, Drain: 0.2, Seed: 3,
		SwitchQueueCap: 30000, Recovery: true,
		Observer: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.BufferDrops == 0 {
		t.Skip("no tail drops at this load; nothing to verify")
	}
	if err := o.Check.Err(); err != nil {
		t.Errorf("invariants violated with finite buffers: %v", err)
	}
	if o.Trace.Count(obs.BufDrop) != r.BufferDrops {
		t.Errorf("trace buf drops %d, result reports %d",
			o.Trace.Count(obs.BufDrop), r.BufferDrops)
	}
}

// goldenCfg is the fixed-seed scenario behind the golden trajectories: small
// enough to run in CI, long enough for the queue to shape up.
func goldenCfg(proto Protocol) FCTConfig {
	return FCTConfig{
		Protocol: proto, LoadFactor: 1.5, // overdriven so the queue builds
		Horizon: 0.01, Warmup: 0.002, Drain: 0.1, Seed: 42,
	}
}

// goldenProbeJSONL runs the golden scenario with a fresh observer and
// returns the canonical probe export.
func goldenProbeJSONL(t *testing.T, proto Protocol) []byte {
	t.Helper()
	o := &obs.NetObserver{Probes: obs.NewProbeSet(), ProbeEvery: 100 * des.Microsecond}
	cfg := goldenCfg(proto)
	// The golden files carry the same self-describing header the cmd
	// front-ends prepend, so a fixture names the run that produced it.
	o.Probes.SetHeader(obs.Header{Schema: "probe", Version: 1, Seed: cfg.Seed, Proto: proto.String()})
	cfg.Observer = o
	if _, err := RunFCT(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Probes.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The probe trajectory of a fixed-seed run is a golden artifact: any drift
// in the simulator, the protocols, or the probe encoding shows up as a
// byte diff. Regenerate with: go test ./internal/exp -run Golden -update
func TestGoldenProbeTrajectories(t *testing.T) {
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		t.Run(proto.String(), func(t *testing.T) {
			got := goldenProbeJSONL(t, proto)
			if len(got) == 0 {
				t.Fatal("probe export is empty")
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden_probe_%s.jsonl", proto))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("probe trajectory drifted from %s (%d vs %d bytes); regenerate with -update only if the change is intended",
					path, len(got), len(want))
			}
			// And a second run in the same process is byte-identical.
			if again := goldenProbeJSONL(t, proto); !bytes.Equal(got, again) {
				t.Error("same-seed rerun produced a different trajectory")
			}
		})
	}
}

// One shared observer — invariant checker included — across concurrent
// sweep jobs whose networks all use identical node ids: run tags keep the
// per-port books apart, so a healthy parallel sweep reports zero
// violations for any worker count. Each job also runs two FCT configs back
// to back against the same checker, covering sequential network reuse
// inside one job (the fig14/15/16 pattern).
func TestSharedCheckerAcrossSweepWorkers(t *testing.T) {
	shared := obs.Full()
	protos := []Protocol{ProtoDCQCN, ProtoTimely}
	jobs := make([]sweep.Job, len(protos))
	for i, proto := range protos {
		proto := proto
		jobs[i] = sweep.Job{
			ID: proto.String(),
			Run: func(int64) (map[string]float64, error) {
				for run := 0; run < 2; run++ {
					cfg := goldenCfg(proto)
					cfg.Seed += int64(run)
					cfg.Observer = shared
					cfg.ProbeName = fmt.Sprintf("queue_bytes.run%d", run)
					if _, err := RunFCT(cfg); err != nil {
						return nil, err
					}
				}
				return map[string]float64{"ok": 1}, nil
			},
		}
	}
	if _, err := sweep.Run(sweep.Config{Workers: 4}, jobs, &sweep.MemorySink{}); err != nil {
		t.Fatal(err)
	}
	if err := shared.Check.Err(); err != nil {
		t.Errorf("shared checker flagged a healthy parallel sweep: %v", err)
	}
}

// A shared ProbeSet exports byte-identically for any worker count once
// each job qualifies its probe names — the JobObserver pattern the facade
// and the cmd front-ends apply — because export order depends only on
// names, never on job scheduling.
func TestSharedProbeSetDeterministicAcrossWorkers(t *testing.T) {
	protos := []Protocol{ProtoDCQCN, ProtoTimely}
	runAll := func(workers int) []byte {
		shared := &obs.NetObserver{Probes: obs.NewProbeSet(), ProbeEvery: 100 * des.Microsecond}
		jobs := make([]sweep.Job, len(protos))
		for i, proto := range protos {
			proto := proto
			jobs[i] = sweep.Job{
				ID: proto.String(),
				Run: func(int64) (map[string]float64, error) {
					jo := *shared
					jo.ProbePrefix = proto.String() + "."
					cfg := goldenCfg(proto)
					cfg.Observer = &jo
					if _, err := RunFCT(cfg); err != nil {
						return nil, err
					}
					return map[string]float64{"ok": 1}, nil
				},
			}
		}
		if _, err := sweep.Run(sweep.Config{Workers: workers}, jobs, &sweep.MemorySink{}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := shared.Probes.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runAll(1)
	parallel := runAll(4)
	if !bytes.Equal(serial, parallel) {
		t.Error("shared probe export differs between 1 and 4 sweep workers")
	}
	for _, proto := range protos {
		if !bytes.Contains(serial, []byte(fmt.Sprintf(`{"probe":"%s.queue_bytes"`, proto))) {
			t.Errorf("export is missing the %s-prefixed series", proto)
		}
	}
}

// The same trajectories through the sweep engine: each job owns a fresh
// observer, so the export is byte-identical whether jobs run on one worker
// or race across four.
func TestGoldenProbeAcrossSweepWorkers(t *testing.T) {
	protos := []Protocol{ProtoDCQCN, ProtoTimely}
	runAll := func(workers int) map[string][]byte {
		var mu sync.Mutex
		out := make(map[string][]byte)
		jobs := make([]sweep.Job, len(protos))
		for i, proto := range protos {
			proto := proto
			jobs[i] = sweep.Job{
				ID: proto.String(),
				Run: func(int64) (map[string]float64, error) {
					o := &obs.NetObserver{Probes: obs.NewProbeSet(), ProbeEvery: 100 * des.Microsecond}
					cfg := goldenCfg(proto)
					o.Probes.SetHeader(obs.Header{Schema: "probe", Version: 1, Seed: cfg.Seed, Proto: proto.String()})
					cfg.Observer = o
					if _, err := RunFCT(cfg); err != nil {
						return nil, err
					}
					var buf bytes.Buffer
					if err := o.Probes.WriteJSONL(&buf); err != nil {
						return nil, err
					}
					mu.Lock()
					out[proto.String()] = buf.Bytes()
					mu.Unlock()
					return map[string]float64{"ok": 1}, nil
				},
			}
		}
		if _, err := sweep.Run(sweep.Config{Workers: workers}, jobs, &sweep.MemorySink{}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := runAll(1)
	parallel := runAll(4)
	for _, proto := range protos {
		if !bytes.Equal(serial[proto.String()], parallel[proto.String()]) {
			t.Errorf("%s: trajectory differs between 1 and 4 sweep workers", proto)
		}
		want, err := os.ReadFile(filepath.Join("testdata", fmt.Sprintf("golden_probe_%s.jsonl", proto)))
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(serial[proto.String()], want) {
			t.Errorf("%s: sweep-engine trajectory differs from the golden file", proto)
		}
	}
}
