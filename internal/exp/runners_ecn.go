package exp

import (
	"fmt"

	"ecndelay/internal/des"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stability"
	"ecndelay/internal/stats"
)

func init() {
	register(Runner{
		ID: "fig14", Title: "Flow completion time of small flows vs load", Figure: "Figure 14",
		Run: runFig14,
	})
	register(Runner{
		ID: "fig15", Title: "FCT distribution at load 0.8", Figure: "Figure 15",
		Run: runFig15,
	})
	register(Runner{
		ID: "fig16", Title: "Bottleneck queue at load 0.8", Figure: "Figure 16",
		Run: runFig16,
	})
	register(Runner{
		ID: "fig17", Title: "ECN marking on egress vs ingress", Figure: "Figure 17",
		Run: runFig17,
	})
	register(Runner{
		ID: "fig18", Title: "DCQCN with a PI controller at the switch", Figure: "Figure 18",
		Run: runFig18,
	})
	register(Runner{
		ID: "fig19", Title: "Patched TIMELY with an end-host PI controller", Figure: "Figure 19",
		Run: runFig19,
	})
	register(Runner{
		ID: "fig20", Title: "Resilience to feedback jitter", Figure: "Figure 20",
		Run: runFig20,
	})
	register(Runner{
		ID: "thm6", Title: "Fairness/delay tradeoff for delay-based feedback", Figure: "Theorem 6",
		Run: runThm6,
	})
	register(Runner{
		ID: "fig21", Title: "Design choices and desirable properties", Figure: "Figure 21 / §5.3",
		Run: runFig21,
	})
}

func fctScale(o Options) (loads []float64, horizon, warmup, drain float64) {
	if o.Scale == Quick {
		return []float64{0.4, 0.8}, 0.4, 0.1, 0.4
	}
	return []float64{0.2, 0.4, 0.6, 0.8, 1.0}, 2.0, 0.25, 1.5
}

func runFig14(o Options) (*Report, error) {
	rep := &Report{ID: "fig14", Title: "Median and 90th percentile FCT of small flows (<100 KB)"}
	loads, horizon, warmup, drain := fctScale(o)
	tbl := Table{Cols: []string{"load", "protocol", "flows", "median ms", "p90 ms", "p99 ms"}}
	for _, load := range loads {
		for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely, ProtoPatchedTimely} {
			r, err := RunFCT(FCTConfig{
				Protocol: proto, LoadFactor: load,
				Horizon: horizon, Warmup: warmup, Drain: drain, Seed: o.Seed,
				Observer:   o.Observer,
				ProbeName:  fmt.Sprintf("queue_bytes.load%.1f.%s", load, proto),
				HistPrefix: fmt.Sprintf("load%.1f.%s.", load, proto),
				Shards:     o.Shards,
			})
			if err != nil {
				return nil, err
			}
			med, err := stats.Percentile(r.SmallFCT, 50)
			if err != nil {
				return nil, err
			}
			p90, _ := stats.Percentile(r.SmallFCT, 90)
			p99, _ := stats.Percentile(r.SmallFCT, 99)
			tbl.Rows = append(tbl.Rows, []string{
				f1(load), proto.String(), fmt.Sprint(len(r.SmallFCT)),
				f3(med * 1e3), f3(p90 * 1e3), f3(p99 * 1e3),
			})
			rep.AddMetric(fmt.Sprintf("p90_ms_load%.1f_%s", load, proto), p90*1e3)
			if load == 0.8 {
				rep.AddMetric(fmt.Sprintf("median_ms_%s", proto), med*1e3)
			}
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"shape target: DCQCN best at every load; patched TIMELY between DCQCN and TIMELY at the tail; gaps widen with load and percentile")
	return rep, nil
}

func runFig15(o Options) (*Report, error) {
	rep := &Report{ID: "fig15", Title: "CDF of small-flow FCT, load 0.8"}
	_, horizon, warmup, drain := fctScale(o)
	tbl := Table{Cols: []string{"percentile", "DCQCN ms", "TIMELY ms", "Patched ms"}}
	percentiles := []float64{10, 25, 50, 75, 90, 95, 99}
	cols := make(map[Protocol][]float64)
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely, ProtoPatchedTimely} {
		r, err := RunFCT(FCTConfig{
			Protocol: proto, LoadFactor: 0.8,
			Horizon: horizon, Warmup: warmup, Drain: drain, Seed: o.Seed,
			Observer:   o.Observer,
			ProbeName:  fmt.Sprintf("queue_bytes.%s", proto),
			HistPrefix: fmt.Sprintf("%s.", proto),
			Shards:     o.Shards,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range percentiles {
			v, err := stats.Percentile(r.SmallFCT, p)
			if err != nil {
				return nil, err
			}
			cols[proto] = append(cols[proto], v*1e3)
		}
	}
	for i, p := range percentiles {
		tbl.Rows = append(tbl.Rows, []string{
			f1(p), f3(cols[ProtoDCQCN][i]), f3(cols[ProtoTimely][i]), f3(cols[ProtoPatchedTimely][i]),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddMetric("p99_dcqcn_ms", cols[ProtoDCQCN][6])
	rep.AddMetric("p99_timely_ms", cols[ProtoTimely][6])
	rep.AddMetric("p99_patched_ms", cols[ProtoPatchedTimely][6])
	return rep, nil
}

func runFig16(o Options) (*Report, error) {
	rep := &Report{ID: "fig16", Title: "Bottleneck queue occupancy, load 0.8"}
	_, horizon, warmup, drain := fctScale(o)
	tbl := Table{Cols: []string{"protocol", "mean KB", "sd KB", "p99 KB", "max KB"}}
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely, ProtoPatchedTimely} {
		r, err := RunFCT(FCTConfig{
			Protocol: proto, LoadFactor: 0.8,
			Horizon: horizon, Warmup: warmup, Drain: drain, Seed: o.Seed,
			Observer:   o.Observer,
			ProbeName:  fmt.Sprintf("queue_bytes.%s", proto),
			HistPrefix: fmt.Sprintf("%s.", proto),
			Shards:     o.Shards,
		})
		if err != nil {
			return nil, err
		}
		vals := r.Queue.Window(warmup, horizon)
		sum := stats.Summarize(vals)
		p99, err := stats.Percentile(vals, 99)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			proto.String(), f1(sum.Mean / 1000), f1(sum.Stddev / 1000), f1(p99 / 1000), f1(sum.Max / 1000),
		})
		rep.AddMetric(fmt.Sprintf("qmax_kb_%s", proto), sum.Max/1000)
		rep.AddMetric(fmt.Sprintf("qsd_kb_%s", proto), sum.Stddev/1000)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"DCQCN's queue orbits the RED fixed point; the TIMELY variants trade between under-utilisation and multi-hundred-KB excursions")
	return rep, nil
}

func runFig17(o Options) (*Report, error) {
	rep := &Report{ID: "fig17", Title: "DCQCN stability: marking at egress vs ingress (10 Gb/s, 2 flows)"}
	horizon := 0.15
	if o.Scale == Quick {
		horizon = 0.08
	}

	// Analytical side first: the loop reductions quantify exactly how
	// much phase margin the queueing delay in the marking path costs.
	p10 := fluid.DefaultDCQCNParams(2)
	p10.C = 10e9 / 8 / 1000
	egLoop, err := fluid.NewDCQCNLoop(p10)
	if err != nil {
		return nil, err
	}
	egPM, err := stability.PhaseMargin(egLoop)
	if err != nil {
		return nil, err
	}
	inLoop, err := fluid.NewDCQCNIngressLoop(p10)
	if err != nil {
		return nil, err
	}
	inPM, err := stability.PhaseMargin(inLoop)
	if err != nil {
		return nil, err
	}
	anal := Table{Title: "linearised loop: phase margin cost of the marking point",
		Cols: []string{"marking point", "marking feedback lag µs", "phase margin deg"}}
	anal.Rows = append(anal.Rows,
		[]string{"egress", f1(egLoop.Delays()[0] * 1e6), f1(egPM.PhaseMarginDeg)},
		[]string{"ingress", f1(inLoop.Delays()[1] * 1e6), f1(inPM.PhaseMarginDeg)},
	)
	rep.Tables = append(rep.Tables, anal)
	rep.AddMetric("pm_egress", egPM.PhaseMarginDeg)
	rep.AddMetric("pm_ingress", inPM.PhaseMarginDeg)

	tbl := Table{Title: "packet level", Cols: []string{"marking point", "queue KB", "queue CV", "queue max KB"}}
	for _, ingress := range []bool{false, true} {
		nw, star, _, err := starDCQCN(2, 0, ingress, 1.25e9, o.Seed)
		if err != nil {
			return nil, err
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 50*des.Microsecond)
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return nil, err
		}
		q := qs.WindowSummary(horizon*0.6, horizon)
		name := "egress (at departure)"
		key := "egress"
		if ingress {
			name = "ingress (at arrival)"
			key = "ingress"
		}
		tbl.Rows = append(tbl.Rows, []string{name, f1(q.Mean / 1000), f2(q.CV()), f1(q.Max / 1000)})
		rep.AddMetric("queue_cv_"+key, q.CV())
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"at this operating point the standing queue is ~100 KB ≈ 80 µs of queueing delay; ingress marks carry that delay into the control loop and the system oscillates — egress marking decouples the two (§5.2)")
	return rep, nil
}

func runFig18(o Options) (*Report, error) {
	rep := &Report{ID: "fig18", Title: "DCQCN with PI marking: queue pinned regardless of N"}
	ns := []int{2, 10, 64}
	horizon := 0.6
	if o.Scale == Quick {
		ns = []int{2, 10}
		horizon = 0.3
	}
	tbl := Table{Cols: []string{"N", "queue KB (mean)", "reference KB", "Jain fairness"}}
	for _, n := range ns {
		p := fluid.DefaultDCQCNParams(n)
		p.TauStar = 85e-6
		sys, err := fluid.NewDCQCNPI(fluid.DCQCNPIConfig{DCQCN: fluid.DCQCNConfig{Params: p}})
		if err != nil {
			return nil, err
		}
		sm := fluid.Run(sys, 1e-6, horizon, 1e-4)
		q := lateStats(sm, sys.QIndex(), horizon*0.75)
		var rates []float64
		for i := 0; i < n; i++ {
			rates = append(rates, lateStats(sm, sys.RCIndex(i), horizon*0.75).Mean)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), f2(q.Mean), f2(sys.QRef()), f3(stats.JainIndex(rates)),
		})
		rep.AddMetric(fmt.Sprintf("q_over_ref_N%d", n), q.Mean/sys.QRef())
		rep.AddMetric(fmt.Sprintf("jain_N%d", n), stats.JainIndex(rates))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"ECN marking computed by a PI controller achieves fairness AND an N-independent queue — the combination Theorem 6 proves impossible for pure delay feedback")
	return rep, nil
}

func runFig19(o Options) (*Report, error) {
	rep := &Report{ID: "fig19", Title: "End-host PI on patched TIMELY: delay pinned, fairness lost"}
	horizon := 1.2
	if o.Scale == Quick {
		horizon = 0.6
	}
	cfg := fluid.DefaultPatchedTimelyConfig(2)
	cfg.StartTimes = []float64{0, horizon / 12}
	sys, err := fluid.NewTimelyPI(fluid.TimelyPIConfig{Timely: cfg})
	if err != nil {
		return nil, err
	}
	sm := fluid.Run(sys, 1e-6, horizon, 1e-3)
	q := lateStats(sm, sys.QIndex(), horizon*0.8)
	r0 := lateStats(sm, sys.RateIndex(0), horizon*0.8).Mean
	r1 := lateStats(sm, sys.RateIndex(1), horizon*0.8).Mean
	tbl := Table{Cols: []string{"queue KB", "reference KB", "R1 Gb/s", "R2 Gb/s", "ratio"}}
	tbl.Rows = append(tbl.Rows, []string{
		f1(q.Mean / 1000), f1(sys.QRef() / 1000),
		f2(r0 * 8 / 1e9), f2(r1 * 8 / 1e9), f2(r0 / r1),
	})
	rep.Tables = append(rep.Tables, tbl)
	rep.AddMetric("q_over_ref", q.Mean/sys.QRef())
	rep.AddMetric("rate_ratio", r0/r1)
	rep.Notes = append(rep.Notes,
		"the per-flow integrators settle wherever their histories left them: the queue (hence delay) is pinned at the reference, the rate split is arbitrary")
	return rep, nil
}

func runFig20(o Options) (*Report, error) {
	rep := &Report{ID: "fig20", Title: "Uniform [0,100µs] feedback jitter: DCQCN vs patched TIMELY"}
	horizon := 0.6
	if o.Scale == Quick {
		horizon = 0.3
	}
	tbl := Table{Cols: []string{"protocol", "jitter", "queue CV", "rate CV"}}
	// DCQCN fluid, with and without jitter.
	for _, jit := range []float64{0, 100e-6} {
		q, r, err := runDCQCNFluid(2, 4e-6, horizon*0.4, jit, o.Seed+3)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			"DCQCN", fmt.Sprintf("%.0fµs", jit*1e6), f3(q.CV()), f3(r.CV()),
		})
		rep.AddMetric(fmt.Sprintf("dcqcn_queue_cv_jit%.0f", jit*1e6), q.CV())
	}
	// Patched TIMELY fluid.
	for _, jit := range []float64{0, 100e-6} {
		cfg := fluid.DefaultPatchedTimelyConfig(2)
		cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
		cfg.JitterMax = jit
		cfg.Seed = o.Seed + 3
		sys, err := fluid.NewPatchedTimely(cfg)
		if err != nil {
			return nil, err
		}
		sm := fluid.Run(sys, 1e-6, horizon, 1e-3)
		q := lateStats(sm, sys.QIndex(), horizon*0.7)
		r := lateStats(sm, sys.RateIndex(0), horizon*0.7)
		qcv := q.Stddev / maxf(q.Mean, 1)
		tbl.Rows = append(tbl.Rows, []string{
			"patched TIMELY", fmt.Sprintf("%.0fµs", jit*1e6), f3(qcv), f3(r.CV()),
		})
		rep.AddMetric(fmt.Sprintf("timely_queue_cv_jit%.0f", jit*1e6), qcv)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"jitter only delays the ECN signal but lands inside the RTT signal: TIMELY gets delayed AND noisy feedback, DCQCN just delayed (§5.2)")
	return rep, nil
}

func runThm6(o Options) (*Report, error) {
	rep := &Report{ID: "thm6", Title: "Delay feedback: fixed delay XOR fairness"}
	horizon := 1.2
	if o.Scale == Quick {
		horizon = 0.6
	}
	tbl := Table{Cols: []string{"controller", "history", "queue/reference", "rate ratio"}}

	// Host-side PI (delay is the only feedback): different histories end
	// at the same queue but different splits.
	for i, stagger := range []float64{horizon / 12, horizon / 6} {
		cfg := fluid.DefaultPatchedTimelyConfig(2)
		cfg.StartTimes = []float64{0, stagger}
		sys, err := fluid.NewTimelyPI(fluid.TimelyPIConfig{Timely: cfg})
		if err != nil {
			return nil, err
		}
		sm := fluid.Run(sys, 1e-6, horizon, 1e-3)
		q := lateStats(sm, sys.QIndex(), horizon*0.85)
		r0 := lateStats(sm, sys.RateIndex(0), horizon*0.85).Mean
		r1 := lateStats(sm, sys.RateIndex(1), horizon*0.85).Mean
		tbl.Rows = append(tbl.Rows, []string{
			"PI at host (delay only)", fmt.Sprintf("stagger %.0f ms", stagger*1e3),
			f3(q.Mean / sys.QRef()), f2(r0 / r1),
		})
		rep.AddMetric(fmt.Sprintf("host_ratio_%d", i), r0/r1)
		rep.AddMetric(fmt.Sprintf("host_q_over_ref_%d", i), q.Mean/sys.QRef())
	}

	// Switch-side PI (common marking signal): same queue AND fair, for
	// any history.
	p := fluid.DefaultDCQCNParams(2)
	sys, err := fluid.NewDCQCNPI(fluid.DCQCNPIConfig{DCQCN: fluid.DCQCNConfig{
		Params: p, InitialRC: []float64{5e6, 1e6},
	}})
	if err != nil {
		return nil, err
	}
	sm := fluid.Run(sys, 1e-6, horizon*0.5, 1e-4)
	q := lateStats(sm, sys.QIndex(), horizon*0.4)
	r0 := lateStats(sm, sys.RCIndex(0), horizon*0.4).Mean
	r1 := lateStats(sm, sys.RCIndex(1), horizon*0.4).Mean
	tbl.Rows = append(tbl.Rows, []string{
		"PI at switch (ECN)", "5:1 initial rates", f3(q.Mean / sys.QRef()), f2(r0 / r1),
	})
	rep.AddMetric("switch_ratio", r0/r1)
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"R = f(d, p) with p derived purely from the common delay is underdetermined (N+1 equations, 2N unknowns): pinning d surrenders fairness; a common switch-computed p restores it")
	return rep, nil
}

func runFig21(o Options) (*Report, error) {
	rep := &Report{ID: "fig21", Title: "ECN vs delay as the congestion signal (§5.3 summary)"}
	tbl := Table{Cols: []string{"property", "ECN (DCQCN-style)", "delay (TIMELY-style)", "evidence"}}
	tbl.Rows = [][]string{
		{"feedback decoupled from queueing delay", "yes (egress marking)", "no (RTT carries it)", "fig17"},
		{"fairness at a unique fixed point", "yes (Thm 1)", "needs the §4.3 patch (Thm 3-5)", "fig9, fig12"},
		{"fairness AND bounded delay together", "yes with PI marking", "provably not (Thm 6)", "fig18, fig19, thm6"},
		{"resilience to feedback jitter", "delayed only", "delayed and noisy", "fig20"},
		{"small-flow FCT under load", "best", "worst (patch in between)", "fig14, fig15"},
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"run the referenced experiment ids for the quantitative backing of each row")
	_ = o
	return rep, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
