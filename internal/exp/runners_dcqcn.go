package exp

import (
	"fmt"

	"ecndelay/internal/convergence"
	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stability"
)

// starDCQCN wires an n-sender 40 Gb/s star with DCQCN everywhere and
// returns the network, the star, and the senders.
func starDCQCN(n int, extraFeedback des.Duration, ingress bool, bw float64, seed int64) (*netsim.Network, *netsim.Star, []*dcqcn.Sender, error) {
	nw := netsim.New(seed)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: n,
		Link:    netsim.LinkConfig{Bandwidth: bw, PropDelay: des.Microsecond},
		Mark: func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Ingress: ingress, Rng: nw.Rng}
		},
		CtrlExtraDelay: extraFeedback,
	})
	if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
		return nil, nil, nil, err
	}
	var senders []*dcqcn.Sender
	for i, h := range star.Senders {
		ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
		if err != nil {
			return nil, nil, nil, err
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		senders = append(senders, s)
	}
	return nw, star, senders, nil
}

func init() {
	register(Runner{
		ID: "fig2", Title: "DCQCN fluid model vs packet-level simulation", Figure: "Figure 2",
		Run: runFig2,
	})
	register(Runner{
		ID: "fig3", Title: "DCQCN phase margin vs flows, delay, R_AI, K_max", Figure: "Figure 3(a-c)",
		Run: runFig3,
	})
	register(Runner{
		ID: "fig4", Title: "DCQCN fluid stability vs delay and number of flows", Figure: "Figure 4",
		Run: runFig4,
	})
	register(Runner{
		ID: "fig5", Title: "DCQCN packet-level instability at high feedback delay", Figure: "Figure 5",
		Run: runFig5,
	})
	register(Runner{
		ID: "thm2", Title: "DCQCN exponential convergence (discrete model)", Figure: "Theorem 2 / Figure 6",
		Run: runThm2,
	})
	register(Runner{
		ID: "eq14", Title: "Fixed-point marking probability: Eq. 14 vs exact", Figure: "Equation 14",
		Run: runEq14,
	})
	register(Runner{
		ID: "params", Title: "Model parameters (Tables 1 and 2 defaults)", Figure: "Tables 1-2",
		Run: runParams,
	})
}

func runFig2(o Options) (*Report, error) {
	rep := &Report{ID: "fig2", Title: "DCQCN fluid model vs packet simulation (40 Gb/s star)"}
	ns := []int{2, 10}
	horizon := 0.05
	if o.Scale == Quick {
		ns = []int{2}
		horizon = 0.02
	}
	tbl := Table{
		Title: "Tail-window agreement (last 40% of the run)",
		Cols:  []string{"N", "source", "queue KB", "per-flow rate Gb/s"},
	}
	for _, n := range ns {
		qF, rF, err := runDCQCNFluid(n, 4e-6, horizon, 0, o.Seed)
		if err != nil {
			return nil, err
		}
		// Fluid units: packets of 1 KB and packets/s.
		fluidQKB := qF.Mean
		fluidRate := rF.Mean * 1000 * 8 / 1e9

		nw, star, senders, err := starDCQCN(n, 0, false, 5e9, o.Seed)
		if err != nil {
			return nil, err
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return nil, err
		}
		qP := qs.WindowSummary(horizon*0.6, horizon)
		var sumRate float64
		for _, s := range senders {
			sumRate += s.Rate()
		}
		pktRate := sumRate / float64(n) * 8 / 1e9

		tbl.Rows = append(tbl.Rows,
			[]string{fmt.Sprint(n), "fluid", f1(fluidQKB), f2(fluidRate)},
			[]string{fmt.Sprint(n), "packet", f1(qP.Mean / 1000), f2(pktRate)},
		)
		rep.AddMetric(fmt.Sprintf("queue_rel_diff_N%d", n),
			abs(qP.Mean/1000-fluidQKB)/fluidQKB)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"fluid and packet models should agree on the operating point; packet-level adds burst noise around it")
	return rep, nil
}

func runFig3(o Options) (*Report, error) {
	rep := &Report{ID: "fig3", Title: "DCQCN Bode phase margin (degrees)"}
	ns := []int{1, 2, 4, 8, 10, 16, 32, 64}
	delays := []float64{1e-6, 25e-6, 50e-6, 85e-6, 100e-6}
	if o.Scale == Quick {
		ns = []int{1, 8, 64}
		delays = []float64{1e-6, 85e-6}
	}

	pm := func(p fixedpoint.DCQCNParams) (float64, error) {
		loop, err := fluid.NewDCQCNLoop(p)
		if err != nil {
			return 0, err
		}
		res, err := stability.PhaseMargin(loop)
		if err != nil {
			return 0, err
		}
		return res.PhaseMarginDeg, nil
	}

	tblA := Table{Title: "(a) phase margin vs N and feedback delay τ*"}
	tblA.Cols = []string{"N"}
	for _, d := range delays {
		tblA.Cols = append(tblA.Cols, fmt.Sprintf("%.0fµs", d*1e6))
	}
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, d := range delays {
			p := fluid.DefaultDCQCNParams(n)
			p.TauStar = d
			v, err := pm(p)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(v))
			if d == 85e-6 {
				rep.AddMetric(fmt.Sprintf("pm_85us_N%d", n), v)
			}
		}
		tblA.Rows = append(tblA.Rows, row)
	}
	rep.Tables = append(rep.Tables, tblA)

	if o.Scale == Full {
		tblB := Table{Title: "(b) smaller R_AI stabilises (N=10, τ*=85µs)", Cols: []string{"R_AI Mb/s", "phase margin"}}
		for _, raiMbps := range []float64{40, 20, 10, 5} {
			p := fluid.DefaultDCQCNParams(10)
			p.TauStar = 85e-6
			p.RAI = raiMbps * 1e6 / 8 / 1000
			v, err := pm(p)
			if err != nil {
				return nil, err
			}
			tblB.Rows = append(tblB.Rows, []string{f1(raiMbps), f1(v)})
		}
		rep.Tables = append(rep.Tables, tblB)

		tblC := Table{Title: "(c) larger K_max stabilises (N=10, τ*=85µs)", Cols: []string{"K_max KB", "phase margin"}}
		for _, kmax := range []float64{200, 400, 800, 1600} {
			p := fluid.DefaultDCQCNParams(10)
			p.TauStar = 85e-6
			p.Kmax = kmax
			v, err := pm(p)
			if err != nil {
				return nil, err
			}
			tblC.Rows = append(tblC.Rows, []string{f1(kmax), f1(v)})
		}
		rep.Tables = append(rep.Tables, tblC)
	}
	rep.Notes = append(rep.Notes,
		"the relationship between flows and margin is non-monotonic: a dip below zero in the mid-N range at high delay, rising again for many flows")
	return rep, nil
}

func runFig4(o Options) (*Report, error) {
	rep := &Report{ID: "fig4", Title: "DCQCN fluid model: queue behaviour vs delay and N"}
	type c struct {
		n     int
		delay float64
	}
	cases := []c{{2, 4e-6}, {10, 4e-6}, {64, 4e-6}, {2, 85e-6}, {10, 85e-6}, {64, 85e-6}}
	horizon := 0.2
	if o.Scale == Quick {
		cases = []c{{2, 85e-6}, {10, 85e-6}, {64, 85e-6}}
		horizon = 0.1
	}
	tbl := Table{Cols: []string{"N", "τ*", "queue KB (mean)", "queue CV", "verdict"}}
	for _, cc := range cases {
		q, _, err := runDCQCNFluid(cc.n, cc.delay, horizon, 0, o.Seed)
		if err != nil {
			return nil, err
		}
		verdict := "stable"
		if q.CV() > 0.2 {
			verdict = "oscillating"
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(cc.n), fmt.Sprintf("%.0fµs", cc.delay*1e6),
			f1(q.Mean), f2(q.CV()), verdict,
		})
		rep.AddMetric(fmt.Sprintf("queue_cv_N%d_%.0fus", cc.n, cc.delay*1e6), q.CV())
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

func runFig5(o Options) (*Report, error) {
	rep := &Report{ID: "fig5", Title: "DCQCN packet-level: 10 flows, 85µs feedback delay"}
	horizon := 0.06
	if o.Scale == Quick {
		horizon = 0.03
	}
	tbl := Table{Cols: []string{"extra feedback delay", "queue KB (mean)", "queue CV", "queue max KB"}}
	for _, extra := range []des.Duration{0, 85 * des.Microsecond} {
		nw, star, _, err := starDCQCN(10, extra, false, 5e9, o.Seed)
		if err != nil {
			return nil, err
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return nil, err
		}
		q := qs.WindowSummary(horizon*0.5, horizon)
		tbl.Rows = append(tbl.Rows, []string{
			extra.String(), f1(q.Mean / 1000), f2(q.CV()), f1(q.Max / 1000),
		})
		rep.AddMetric(fmt.Sprintf("queue_cv_extra%dus", extra/des.Microsecond), q.CV())
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

func runThm2(o Options) (*Report, error) {
	rep := &Report{ID: "thm2", Title: "Discrete AIMD model: exponential rate-gap decay"}
	cfg := convergence.Default(2)
	cfg.InitialRates = []float64{4.5e6, 0.5e6}
	nCycles := 50
	if o.Scale == Quick {
		nCycles = 25
	}
	cycles, err := convergence.Run(cfg, nCycles)
	if err != nil {
		return nil, err
	}
	alphaStar, deltaT, err := convergence.AlphaFixedPoint(cfg)
	if err != nil {
		return nil, err
	}
	tbl := Table{Cols: []string{"cycle", "t ms", "max rate gap (pkt/s)", "α"}}
	for i := 0; i < len(cycles); i += 5 {
		c := cycles[i]
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(i), f2(c.Time * 1e3), eng(c.MaxGap), f3(c.Alphas[0]),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	rate := convergence.GapDecayRate(cycles, 1)
	rep.AddMetric("gap_decay_per_cycle", rate)
	rep.AddMetric("alpha_star", alphaStar)
	rep.AddMetric("deltaT_star_units", deltaT)
	rep.AddMetric("theory_bound", 1-alphaStar/2)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("measured per-cycle contraction %.3f vs Theorem 2 bound (1-α*/2) = %.3f", rate, 1-alphaStar/2))
	return rep, nil
}

func runEq14(o Options) (*Report, error) {
	rep := &Report{ID: "eq14", Title: "Marking probability p*: Taylor approximation vs exact root"}
	ns := []int{1, 2, 4, 10, 16, 32, 64}
	if o.Scale == Quick {
		ns = []int{2, 10, 64}
	}
	tbl := Table{Cols: []string{"N", "p* exact", "p* approx (Eq.14)", "rel err %", "q* KB (Eq.9)"}}
	for _, n := range ns {
		p := fluid.DefaultDCQCNParams(n)
		fp, err := fixedpoint.SolveDCQCN(p)
		if err != nil {
			return nil, err
		}
		approx := fixedpoint.DCQCNPStarApprox(p)
		rel := abs(approx-fp.P) / fp.P * 100
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), eng(fp.P), eng(approx), f1(rel), f1(fp.Q),
		})
		rep.AddMetric(fmt.Sprintf("relerr_N%d", n), rel)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"the approximation is tight where p* is small and degrades (as an over-estimate) once p* leaves the small-p regime",
		"q* grows with N — the dependence the §5 PI controller removes")
	return rep, nil
}

func runParams(Options) (*Report, error) {
	rep := &Report{ID: "params", Title: "Default model parameters"}
	p := fluid.DefaultDCQCNParams(2)
	t1 := Table{Title: "DCQCN (Table 1, [31] defaults; packet units, 1 KB MTU)",
		Cols: []string{"parameter", "value"}}
	t1.Rows = [][]string{
		{"C", "40 Gb/s (5e6 pkt/s)"},
		{"R_AI", "40 Mb/s"},
		{"τ (CNP timer)", fmt.Sprintf("%.0f µs", p.Tau*1e6)},
		{"τ' (α timer)", fmt.Sprintf("%.0f µs", p.TauPrime*1e6)},
		{"T (rate timer)", fmt.Sprintf("%.0f µs", p.T*1e6)},
		{"B (byte counter)", "10 MB"},
		{"F", fmt.Sprintf("%.0f", p.F)},
		{"K_min / K_max", fmt.Sprintf("%.0f / %.0f KB", p.Kmin, p.Kmax)},
		{"P_max", fmt.Sprintf("%.2f", p.Pmax)},
		{"g", "1/256"},
	}
	c := fluid.DefaultTimelyConfig(2)
	t2 := Table{Title: "TIMELY (Table 2, footnote-4 values)", Cols: []string{"parameter", "value"}}
	t2.Rows = [][]string{
		{"C", "10 Gb/s"},
		{"EWMA α", fmt.Sprintf("%.3f", c.EWMA)},
		{"β", fmt.Sprintf("%.3f", c.Beta)},
		{"δ", "10 Mb/s"},
		{"T_low / T_high", fmt.Sprintf("%.0f / %.0f µs", c.TLow*1e6, c.THigh*1e6)},
		{"D_minRTT", fmt.Sprintf("%.0f µs", c.DminRTT*1e6)},
		{"Seg", fmt.Sprintf("%.0f KB", c.Seg/1000)},
		{"patched β / Seg", "0.008 / 16 KB"},
	}
	rep.Tables = append(rep.Tables, t1, t2)
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
