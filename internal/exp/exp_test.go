package exp

import (
	"sort"
	"strings"
	"testing"

	"ecndelay/internal/stats"
)

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Title: "demo"}
	r.Tables = append(r.Tables, Table{
		Title: "numbers",
		Cols:  []string{"a", "long column"},
		Rows:  [][]string{{"1", "2"}, {"333", "4"}},
	})
	r.Notes = append(r.Notes, "a note")
	r.AddMetric("m", 1.5)
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"=== x — demo ===", "numbers", "long column", "333", "note: a note", "metric m"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure in the paper's evaluation must have a
	// registered regenerator.
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "thm2", "eq14", "params",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "thm6",
	}
	ids := map[string]bool{}
	for _, r := range Runners() {
		if ids[r.ID] {
			t.Errorf("duplicate runner id %q", r.ID)
		}
		ids[r.ID] = true
		if r.Title == "" || r.Figure == "" || r.Run == nil {
			t.Errorf("runner %q is missing metadata", r.ID)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := Get("fig14"); !ok {
		t.Error("Get(fig14) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}

func TestRunFCTValidation(t *testing.T) {
	if _, err := RunFCT(FCTConfig{Protocol: ProtoDCQCN, LoadFactor: 0, Horizon: 1}); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := RunFCT(FCTConfig{Protocol: ProtoDCQCN, LoadFactor: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RunFCT(FCTConfig{Protocol: Protocol(99), LoadFactor: 0.5, Horizon: 0.01}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// A short DCQCN FCT run: all flows complete, FCTs positive and ordered
// sensibly, utilisation positive.
func TestRunFCTSmoke(t *testing.T) {
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely, ProtoPatchedTimely} {
		r, err := RunFCT(FCTConfig{
			Protocol: proto, LoadFactor: 0.5,
			Horizon: 0.2, Warmup: 0.05, Drain: 0.3, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if r.Completed != r.Generated {
			t.Errorf("%v: %d/%d flows completed", proto, r.Completed, r.Generated)
		}
		if len(r.SmallFCT) == 0 || len(r.AllFCT) < len(r.SmallFCT) {
			t.Errorf("%v: FCT sample counts small=%d all=%d", proto, len(r.SmallFCT), len(r.AllFCT))
		}
		for _, v := range r.AllFCT {
			if v <= 0 {
				t.Fatalf("%v: non-positive FCT %v", proto, v)
			}
		}
		if r.Utilisation <= 0 || r.Utilisation > 1.01 {
			t.Errorf("%v: utilisation %v out of range", proto, r.Utilisation)
		}
		// Small flows should complete faster than the overall mix on
		// average (they carry fewer bytes).
		small := stats.Summarize(r.SmallFCT)
		all := stats.Summarize(r.AllFCT)
		if small.Mean > all.Mean {
			t.Errorf("%v: small-flow mean FCT %v above overall %v", proto, small.Mean, all.Mean)
		}
	}
}

// RunFCT must be deterministic for a fixed seed.
func TestRunFCTDeterministic(t *testing.T) {
	run := func() []float64 {
		r, err := RunFCT(FCTConfig{
			Protocol: ProtoDCQCN, LoadFactor: 0.5,
			Horizon: 0.1, Warmup: 0.02, Drain: 0.2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := append([]float64(nil), r.AllFCT...)
		sort.Float64s(out)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different flow counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FCT %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// The cheap analytical runners must succeed at Quick scale and deliver the
// paper's qualitative shapes through their metrics.
func TestQuickRunnersShapes(t *testing.T) {
	o := Options{Scale: Quick, Seed: 1}

	t.Run("fig3 non-monotonic", func(t *testing.T) {
		rep, err := mustRun(t, "fig3", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["pm_85us_N8"] >= 0 {
			t.Errorf("mid-N margin %v, want negative", rep.Metrics["pm_85us_N8"])
		}
		if rep.Metrics["pm_85us_N1"] <= 0 || rep.Metrics["pm_85us_N64"] <= 0 {
			t.Errorf("edge margins %v / %v, want positive",
				rep.Metrics["pm_85us_N1"], rep.Metrics["pm_85us_N64"])
		}
	})

	t.Run("fig11 collapse", func(t *testing.T) {
		rep, err := mustRun(t, "fig11", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["pm_N10"] <= 0 {
			t.Errorf("PM(N=10) = %v, want stable", rep.Metrics["pm_N10"])
		}
		if rep.Metrics["pm_N64"] >= 0 {
			t.Errorf("PM(N=64) = %v, want unstable", rep.Metrics["pm_N64"])
		}
	})

	t.Run("eq14 overestimates at large N", func(t *testing.T) {
		rep, err := mustRun(t, "eq14", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["relerr_N2"] > 40 {
			t.Errorf("rel err at N=2 is %v%%, too large", rep.Metrics["relerr_N2"])
		}
	})

	t.Run("thm2 contraction", func(t *testing.T) {
		rep, err := mustRun(t, "thm2", o)
		if err != nil {
			t.Fatal(err)
		}
		rate := rep.Metrics["gap_decay_per_cycle"]
		bound := rep.Metrics["theory_bound"]
		if rate <= 0 || rate > bound+0.02 {
			t.Errorf("decay %v vs bound %v", rate, bound)
		}
	})

	t.Run("params renders", func(t *testing.T) {
		if _, err := mustRun(t, "params", o); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("fig21 summary", func(t *testing.T) {
		rep, err := mustRun(t, "fig21", o)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) < 4 {
			t.Error("summary table incomplete")
		}
	})
}

// The simulation-heavy runners, still at Quick scale: verify the headline
// qualitative claims survive end to end.
func TestQuickSimulationRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runners skipped in -short mode")
	}
	o := Options{Scale: Quick, Seed: 1}

	t.Run("fig4", func(t *testing.T) {
		rep, err := mustRun(t, "fig4", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["queue_cv_N10_85us"] < 0.3 {
			t.Errorf("N=10 CV %v, want oscillation", rep.Metrics["queue_cv_N10_85us"])
		}
		if rep.Metrics["queue_cv_N2_85us"] > 0.1 || rep.Metrics["queue_cv_N64_85us"] > 0.1 {
			t.Errorf("edge CVs %v / %v, want stability",
				rep.Metrics["queue_cv_N2_85us"], rep.Metrics["queue_cv_N64_85us"])
		}
	})

	t.Run("fig5", func(t *testing.T) {
		rep, err := mustRun(t, "fig5", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["queue_cv_extra85us"] < 2*rep.Metrics["queue_cv_extra0us"] {
			t.Errorf("packet-level instability contrast too weak: %v vs %v",
				rep.Metrics["queue_cv_extra85us"], rep.Metrics["queue_cv_extra0us"])
		}
	})

	t.Run("fig9", func(t *testing.T) {
		rep, err := mustRun(t, "fig9", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["fluid_ratio_spread"] < 1 {
			t.Errorf("fluid end-state spread %v, want > 1", rep.Metrics["fluid_ratio_spread"])
		}
		if rep.Metrics["packet_ratio_spread"] < 0.5 {
			t.Errorf("packet end-state spread %v, want > 0.5", rep.Metrics["packet_ratio_spread"])
		}
	})

	t.Run("fig10", func(t *testing.T) {
		rep, err := mustRun(t, "fig10", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["min_agg_64KB bursts"] > 0.05 {
			t.Errorf("64KB bursts min aggregate %v, want collapse", rep.Metrics["min_agg_64KB bursts"])
		}
		if rep.Metrics["min_agg_per-packet"] < 0.3 {
			t.Errorf("per-packet min aggregate %v, want no collapse", rep.Metrics["min_agg_per-packet"])
		}
	})

	t.Run("fig12", func(t *testing.T) {
		rep, err := mustRun(t, "fig12", o)
		if err != nil {
			t.Fatal(err)
		}
		if r := rep.Metrics["fluid_ratio"]; r < 0.98 || r > 1.02 {
			t.Errorf("patched fluid ratio %v, want fair", r)
		}
		if r := rep.Metrics["fluid_q_vs_eq31"]; r < 0.95 || r > 1.05 {
			t.Errorf("queue/Eq.31 ratio %v", r)
		}
	})

	t.Run("fig17", func(t *testing.T) {
		rep, err := mustRun(t, "fig17", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["queue_cv_ingress"] < 1.5*rep.Metrics["queue_cv_egress"] {
			t.Errorf("ingress %v vs egress %v: contrast too weak",
				rep.Metrics["queue_cv_ingress"], rep.Metrics["queue_cv_egress"])
		}
	})

	t.Run("fig18", func(t *testing.T) {
		rep, err := mustRun(t, "fig18", o)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"2", "10"} {
			if r := rep.Metrics["q_over_ref_N"+n]; r < 0.85 || r > 1.15 {
				t.Errorf("N=%s queue/ref %v, want pinned", n, r)
			}
			if j := rep.Metrics["jain_N"+n]; j < 0.99 {
				t.Errorf("N=%s Jain %v, want fair", n, j)
			}
		}
	})

	t.Run("fig19+thm6", func(t *testing.T) {
		rep, err := mustRun(t, "fig19", o)
		if err != nil {
			t.Fatal(err)
		}
		if r := rep.Metrics["q_over_ref"]; r < 0.9 || r > 1.1 {
			t.Errorf("queue/ref %v, want pinned", r)
		}
		if r := rep.Metrics["rate_ratio"]; r < 1.3 {
			t.Errorf("rate ratio %v, want persistent unfairness", r)
		}
	})

	t.Run("fig20", func(t *testing.T) {
		rep, err := mustRun(t, "fig20", o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Metrics["dcqcn_queue_cv_jit100"] > 0.1 {
			t.Errorf("DCQCN jittered CV %v, want immune", rep.Metrics["dcqcn_queue_cv_jit100"])
		}
		if rep.Metrics["timely_queue_cv_jit100"] < 5*rep.Metrics["timely_queue_cv_jit0"]+0.05 {
			t.Errorf("TIMELY jitter contrast too weak: %v vs %v",
				rep.Metrics["timely_queue_cv_jit100"], rep.Metrics["timely_queue_cv_jit0"])
		}
	})

	t.Run("fig14 ordering", func(t *testing.T) {
		rep, err := mustRun(t, "fig14", o)
		if err != nil {
			t.Fatal(err)
		}
		d := rep.Metrics["p90_ms_load0.8_DCQCN"]
		ti := rep.Metrics["p90_ms_load0.8_TIMELY"]
		pa := rep.Metrics["p90_ms_load0.8_Patched TIMELY"]
		if !(d < ti && d < pa) {
			t.Errorf("p90 at load 0.8: DCQCN %v should beat TIMELY %v and patched %v", d, ti, pa)
		}
	})
}

func mustRun(t *testing.T, id string, o Options) (*Report, error) {
	t.Helper()
	r, ok := Get(id)
	if !ok {
		t.Fatalf("runner %q not found", id)
	}
	return r.Run(o)
}

// Extension experiments (§7 future work): shapes.
func TestExtensionRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sims skipped in -short mode")
	}
	o := Options{Scale: Quick, Seed: 1}

	t.Run("extmultihop", func(t *testing.T) {
		rep, err := mustRun(t, "extmultihop", o)
		if err != nil {
			t.Fatal(err)
		}
		// The long flow crosses two bottlenecks and must end below the
		// single-hop cross flows.
		if r := rep.Metrics["long_over_cross"]; r >= 0.95 {
			t.Errorf("long/cross ratio %v, want < 0.95 (multi-bottleneck penalty)", r)
		}
		if r := rep.Metrics["long_over_cross"]; r < 0.2 {
			t.Errorf("long/cross ratio %v, starvation would be wrong too", r)
		}
	})

	t.Run("extpfc", func(t *testing.T) {
		rep, err := mustRun(t, "extpfc", o)
		if err != nil {
			t.Fatal(err)
		}
		noPFC := rep.Metrics["victim_share_raw_nopfc"]
		pfc := rep.Metrics["victim_share_raw_pfc"]
		rescued := rep.Metrics["victim_share_dcqcn_pfc"]
		if noPFC < 0.95 {
			t.Errorf("victim without PFC %v, want ~1", noPFC)
		}
		if pfc > 0.7*noPFC {
			t.Errorf("victim with PFC %v vs %v: expected head-of-line damage", pfc, noPFC)
		}
		if rescued < 0.9 {
			t.Errorf("DCQCN-rescued victim %v, want ~1", rescued)
		}
	})

	t.Run("extpi", func(t *testing.T) {
		rep, err := mustRun(t, "extpi", o)
		if err != nil {
			t.Fatal(err)
		}
		ref := rep.Metrics["qref_kb"]
		for _, n := range []string{"2", "10"} {
			q := rep.Metrics["PI_q_kb_N"+n]
			if q < 0.7*ref || q > 1.3*ref {
				t.Errorf("PI mean queue at N=%s is %v KB, want near reference %v", n, q, ref)
			}
		}
		// RED queue must grow with N while PI stays put.
		if rep.Metrics["RED_q_kb_N10"] < 3*rep.Metrics["RED_q_kb_N2"] {
			t.Errorf("RED queue did not grow with N: %v vs %v",
				rep.Metrics["RED_q_kb_N10"], rep.Metrics["RED_q_kb_N2"])
		}
		spread := rep.Metrics["PI_q_kb_N10"] / rep.Metrics["PI_q_kb_N2"]
		if spread > 1.3 || spread < 0.7 {
			t.Errorf("PI queue varies with N by factor %v, want ~1", spread)
		}
	})
}
