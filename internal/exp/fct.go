package exp

import (
	"fmt"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
	"ecndelay/internal/timely"
	"ecndelay/internal/workload"
)

// Protocol selects the congestion control scheme for the FCT experiments.
type Protocol int

// The three schemes Figure 14-16 compare.
const (
	ProtoDCQCN Protocol = iota
	ProtoTimely
	ProtoPatchedTimely
)

func (p Protocol) String() string {
	switch p {
	case ProtoDCQCN:
		return "DCQCN"
	case ProtoTimely:
		return "TIMELY"
	case ProtoPatchedTimely:
		return "Patched TIMELY"
	}
	return "?"
}

// FCTConfig drives one §5.1 flow-completion-time run on the Figure 13
// dumbbell (10 senders, 10 receivers, all links 10 Gb/s with 1 µs latency).
type FCTConfig struct {
	Protocol   Protocol
	LoadFactor float64 // 1.0 = 8 Gb/s average on the bottleneck
	Horizon    float64 // seconds of workload generation
	Warmup     float64 // flows starting earlier are excluded from stats
	Drain      float64 // extra simulated seconds to let flows finish
	Seed       int64
	Senders    int   // default 10
	Receivers  int   // default 10
	SmallBytes int64 // small-flow threshold, default 100 KB
	// TimelyPerPacket switches TIMELY to idealised per-packet pacing;
	// the default (false) is the implementation's per-burst chunk pacing.
	TimelyPerPacket bool
	// TimelySeg overrides the TIMELY segment/chunk size in bytes.
	TimelySeg int
	// TimelyHAI enables hyper-active increase (part of Algorithm 1 in
	// [21]; the fluid analysis ignores it).
	TimelyHAI bool
	// TimelyGradClamp bounds the normalised gradient (see timely.Params).
	TimelyGradClamp float64
	// QueueSampleEvery controls bottleneck queue monitoring (default 100µs).
	QueueSampleEvery des.Duration
}

// FCTResult aggregates one run.
type FCTResult struct {
	SmallFCT  []float64 // seconds, flows < SmallBytes
	AllFCT    []float64
	Generated int
	Completed int
	Queue     *stats.Series // bottleneck occupancy, bytes
	// Utilisation is delivered bottleneck bytes over capacity×time in
	// [Warmup, Horizon].
	Utilisation float64
}

// RunFCT executes the experiment.
func RunFCT(cfg FCTConfig) (*FCTResult, error) {
	if cfg.Senders == 0 {
		cfg.Senders = 10
	}
	if cfg.Receivers == 0 {
		cfg.Receivers = 10
	}
	if cfg.SmallBytes == 0 {
		cfg.SmallBytes = 100e3
	}
	if cfg.QueueSampleEvery == 0 {
		cfg.QueueSampleEvery = 100 * des.Microsecond
	}
	if cfg.LoadFactor <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("exp: bad FCT config %+v", cfg)
	}

	const linkBW = 10e9 / 8 // bytes/s
	nw := netsim.New(cfg.Seed)
	var marker netsim.MarkerFactory
	if cfg.Protocol == ProtoDCQCN {
		marker = func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
		}
	}
	d := netsim.NewDumbbell(nw, netsim.DumbbellConfig{
		Senders: cfg.Senders, Receivers: cfg.Receivers,
		Link: netsim.LinkConfig{Bandwidth: linkBW, PropDelay: des.Microsecond},
		Mark: marker,
	})

	flows, err := workload.Generate(workload.Config{
		Load:    cfg.LoadFactor * 1e9, // load 1.0 = 8 Gb/s = 1e9 B/s
		Sizes:   workload.WebSearch(),
		Senders: cfg.Senders, Receivers: cfg.Receivers,
		Horizon: cfg.Horizon,
		Seed:    cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	res := &FCTResult{Generated: len(flows)}
	start := make(map[int]float64, len(flows))
	size := make(map[int]int64, len(flows))
	for _, f := range flows {
		start[f.ID] = f.Start
		size[f.ID] = f.Size
	}
	complete := func(flowID int, at des.Time) {
		s, ok := start[flowID]
		if !ok {
			return
		}
		res.Completed++
		if s < cfg.Warmup {
			return
		}
		fct := at.Seconds() - s
		res.AllFCT = append(res.AllFCT, fct)
		if size[flowID] < cfg.SmallBytes {
			res.SmallFCT = append(res.SmallFCT, fct)
		}
	}

	// Attach protocol endpoints and schedule the flows.
	switch cfg.Protocol {
	case ProtoDCQCN:
		params := dcqcn.DefaultParams()
		var eps []*dcqcn.Endpoint
		for _, h := range d.Senders {
			ep, err := dcqcn.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			eps = append(eps, ep)
		}
		for _, h := range d.Receivers {
			ep, err := dcqcn.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			ep.OnComplete = func(c dcqcn.Completion) { complete(c.Flow, c.At) }
		}
		for _, f := range flows {
			if _, err := eps[f.Sender].NewFlow(f.ID, d.Receivers[f.Recv].ID(),
				f.Size, des.Time(des.DurationFromSeconds(f.Start))); err != nil {
				return nil, err
			}
		}
	case ProtoTimely, ProtoPatchedTimely:
		// The TIMELY implementation paces 16-64 KB chunks at line rate
		// (§4.2); the FCT comparison runs it as deployed.
		params := timely.DefaultParams()
		if cfg.Protocol == ProtoPatchedTimely {
			params = timely.DefaultPatchedParams()
		}
		params.Burst = cfg.TimelyPerPacket == false
		if cfg.TimelySeg > 0 {
			params.Seg = cfg.TimelySeg
		}
		params.HAI = cfg.TimelyHAI
		params.GradClamp = cfg.TimelyGradClamp
		var eps []*timely.Endpoint
		for _, h := range d.Senders {
			ep, err := timely.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			eps = append(eps, ep)
		}
		for _, h := range d.Receivers {
			ep, err := timely.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			ep.OnComplete = func(c timely.Completion) { complete(c.Flow, c.At) }
		}
		for _, f := range flows {
			if _, err := eps[f.Sender].NewFlow(f.ID, d.Receivers[f.Recv].ID(),
				f.Size, des.Time(des.DurationFromSeconds(f.Start)), 0); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("exp: unknown protocol %v", cfg.Protocol)
	}

	res.Queue = netsim.MonitorQueueBytes(nw.Sim, d.Bottleneck, cfg.QueueSampleEvery)
	var txAtWarm, txAtEnd int64
	nw.Sim.At(des.Time(des.DurationFromSeconds(cfg.Warmup)), func() { txAtWarm = d.Bottleneck.TxBytes })
	nw.Sim.At(des.Time(des.DurationFromSeconds(cfg.Horizon)), func() { txAtEnd = d.Bottleneck.TxBytes })
	nw.Sim.RunUntil(des.Time(des.DurationFromSeconds(cfg.Horizon + cfg.Drain)))
	res.Utilisation = float64(txAtEnd-txAtWarm) / (linkBW * (cfg.Horizon - cfg.Warmup))
	return res, nil
}
