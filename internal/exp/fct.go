package exp

import (
	"fmt"
	"sync"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
	"ecndelay/internal/stats"
	"ecndelay/internal/timely"
	"ecndelay/internal/workload"
)

// Protocol selects the congestion control scheme for the FCT experiments.
type Protocol int

// The three schemes Figure 14-16 compare.
const (
	ProtoDCQCN Protocol = iota
	ProtoTimely
	ProtoPatchedTimely
)

func (p Protocol) String() string {
	switch p {
	case ProtoDCQCN:
		return "DCQCN"
	case ProtoTimely:
		return "TIMELY"
	case ProtoPatchedTimely:
		return "Patched TIMELY"
	}
	return "?"
}

// FCTConfig drives one §5.1 flow-completion-time run on the Figure 13
// dumbbell (10 senders, 10 receivers, all links 10 Gb/s with 1 µs latency).
type FCTConfig struct {
	Protocol   Protocol
	LoadFactor float64 // 1.0 = 8 Gb/s average on the bottleneck
	Horizon    float64 // seconds of workload generation
	Warmup     float64 // flows starting earlier are excluded from stats
	Drain      float64 // extra simulated seconds to let flows finish
	Seed       int64
	Senders    int   // default 10
	Receivers  int   // default 10
	SmallBytes int64 // small-flow threshold, default 100 KB
	// TimelyPerPacket switches TIMELY to idealised per-packet pacing;
	// the default (false) is the implementation's per-burst chunk pacing.
	TimelyPerPacket bool
	// TimelySeg overrides the TIMELY segment/chunk size in bytes.
	TimelySeg int
	// TimelyHAI enables hyper-active increase (part of Algorithm 1 in
	// [21]; the fluid analysis ignores it).
	TimelyHAI bool
	// TimelyGradClamp bounds the normalised gradient (see timely.Params).
	TimelyGradClamp float64
	// QueueSampleEvery controls bottleneck queue monitoring (default 100µs).
	QueueSampleEvery des.Duration

	// Fault injection and loss recovery. All-zero means a fault-free run
	// that is bit-identical to the pre-fault revision of this experiment.
	DataLossRate float64 // i.i.d. drop probability for data on the forward trunk
	CtrlLossRate float64 // i.i.d. drop probability for acks/NACKs/CNPs on the reverse trunk
	FaultSeed    int64   // seed for the loss draws, independent of Seed
	// Recovery enables go-back-N loss recovery at every endpoint; without
	// it a single lost data packet permanently wedges its flow.
	Recovery bool
	RTO      des.Duration // retransmission timeout under Recovery (0: protocol default)
	// SwitchQueueCap bounds every switch egress queue in bytes (0:
	// unbounded, the lossless default); overflow tail-drops.
	SwitchQueueCap int

	// Observer attaches the observability layer to the run's network. When
	// it carries a ProbeSet, the run registers a bottleneck-occupancy probe
	// at the observer's cadence; when it carries a Checker, the end-of-run
	// conservation closure is checked automatically. Nil — the default —
	// keeps the run bit-identical to an unobserved one.
	Observer *obs.NetObserver
	// ProbeName names the auto-registered bottleneck probe (default
	// "queue_bytes"), further qualified by the observer's ProbePrefix.
	// Callers running several observed FCT configs against one ProbeSet
	// (the fig14/15/16 load×protocol grids) set it per sub-run so the
	// exported series stay distinguishable.
	ProbeName string
	// HistPrefix prefixes the run's flow-completion-time histogram names
	// ("fct_all_s", "fct_small_s") before the observer's ProbeName
	// qualification, playing the same per-sub-run role as ProbeName for
	// the latency distributions.
	HistPrefix string

	// Shards runs the network partitioned across this many shard
	// simulators (see Options.Shards); ≤ 1 is the serial engine.
	Shards int
}

// FCTResult aggregates one run.
type FCTResult struct {
	SmallFCT  []float64 // seconds, flows < SmallBytes
	AllFCT    []float64
	Generated int
	Completed int
	Queue     *stats.Series // bottleneck occupancy, bytes
	// Utilisation is delivered bottleneck bytes over capacity×time in
	// [Warmup, Horizon].
	Utilisation float64

	// Degradation metrics — what the injected faults cost the run. All
	// zero on a fault-free, recovery-off run.
	WireDrops   int64 // packets destroyed by injected loss or downed links
	BufferDrops int64 // packets tail-dropped by finite switch buffers
	RetxBytes   int64 // bytes retransmitted by go-back-N
	Goodput     int64 // in-order payload bytes delivered at the receivers
	RawTxBytes  int64 // bytes the bottleneck trunk carried (retransmissions included)
	// RecoveryTime is total sender-seconds spent inside recovery episodes
	// (first rewind until the cumulative ack catches the high-water mark).
	RecoveryTime float64
	Unfinished   int // flows generated but never completed
}

// RunFCT executes the experiment.
func RunFCT(cfg FCTConfig) (*FCTResult, error) {
	if cfg.Senders == 0 {
		cfg.Senders = 10
	}
	if cfg.Receivers == 0 {
		cfg.Receivers = 10
	}
	if cfg.SmallBytes == 0 {
		cfg.SmallBytes = 100e3
	}
	if cfg.QueueSampleEvery == 0 {
		cfg.QueueSampleEvery = 100 * des.Microsecond
	}
	if cfg.LoadFactor <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("exp: bad FCT config %+v", cfg)
	}

	const linkBW = 10e9 / 8 // bytes/s
	nw := netsim.New(cfg.Seed)
	if cfg.Observer != nil {
		// Before the topology and endpoints exist, so ports and protocol
		// engines bind their counters as they are created.
		nw.SetObserver(cfg.Observer)
	}
	var marker netsim.MarkerFactory
	if cfg.Protocol == ProtoDCQCN {
		marker = func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
		}
	}
	d := netsim.NewDumbbell(nw, netsim.DumbbellConfig{
		Senders: cfg.Senders, Receivers: cfg.Receivers,
		Link:           netsim.LinkConfig{Bandwidth: linkBW, PropDelay: des.Microsecond},
		Mark:           marker,
		SwitchQueueCap: cfg.SwitchQueueCap,
	})

	// Loss on the trunk: data forward, protocol feedback on the way back.
	// A nil plan keeps the run byte-identical to a fault-free one.
	var applied *fault.Applied
	if cfg.DataLossRate > 0 || cfg.CtrlLossRate > 0 {
		plan := &fault.Plan{Seed: cfg.FaultSeed}
		if cfg.DataLossRate > 0 {
			plan.Links = append(plan.Links, fault.LinkFaults{
				Port: d.Bottleneck,
				Loss: []fault.Loss{{Kinds: fault.SelData, Rate: cfg.DataLossRate}},
			})
		}
		if cfg.CtrlLossRate > 0 {
			plan.Links = append(plan.Links, fault.LinkFaults{
				Port: d.Reverse,
				Loss: []fault.Loss{{Kinds: fault.SelCtrl, Rate: cfg.CtrlLossRate}},
			})
		}
		applied = plan.Apply(nw)
	}

	flows, err := workload.Generate(workload.Config{
		Load:    cfg.LoadFactor * 1e9, // load 1.0 = 8 Gb/s = 1e9 B/s
		Sizes:   workload.WebSearch(),
		Senders: cfg.Senders, Receivers: cfg.Receivers,
		Horizon: cfg.Horizon,
		Seed:    cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	res := &FCTResult{Generated: len(flows)}
	start := make(map[int]float64, len(flows))
	size := make(map[int]int64, len(flows))
	for _, f := range flows {
		start[f.ID] = f.Start
		size[f.ID] = f.Size
	}
	// fctAllH/fctSmallH stream the same completion times the slices above
	// collect into mergeable histograms (nil without an observer HistSet).
	fctAllH := cfg.Observer.Hist(cfg.HistPrefix + "fct_all_s")
	fctSmallH := cfg.Observer.Hist(cfg.HistPrefix + "fct_small_s")
	// Sharded runs fire completions on shard goroutines: the callback
	// serialises on a mutex and captures (at, flow) records instead of
	// appending to the result slices, which are rebuilt after the run in
	// serial completion order (see sortRecs). The serial path appends
	// directly, exactly as before sharding existed.
	var mu sync.Mutex
	var recs []fctRec
	complete := func(flowID int, at des.Time) {
		if cfg.Shards > 1 {
			mu.Lock()
			defer mu.Unlock()
		}
		s, ok := start[flowID]
		if !ok {
			return
		}
		res.Completed++
		if s < cfg.Warmup {
			return
		}
		fct := at.Seconds() - s
		if cfg.Shards > 1 {
			recs = append(recs, fctRec{at: at, flow: flowID, fct: fct})
		} else {
			res.AllFCT = append(res.AllFCT, fct)
			if size[flowID] < cfg.SmallBytes {
				res.SmallFCT = append(res.SmallFCT, fct)
			}
		}
		if fctAllH != nil {
			fctAllH.Record(fct)
		}
		if size[flowID] < cfg.SmallBytes && fctSmallH != nil {
			fctSmallH.Record(fct)
		}
	}

	// Attach protocol endpoints and schedule the flows. gatherFaultStats
	// is filled per protocol so the end of the run can sum goodput and
	// recovery work without holding protocol types here.
	var gatherFaultStats func()
	switch cfg.Protocol {
	case ProtoDCQCN:
		params := dcqcn.DefaultParams()
		params.Recovery = cfg.Recovery
		params.RTO = cfg.RTO
		var eps []*dcqcn.Endpoint
		for _, h := range d.Senders {
			ep, err := dcqcn.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			eps = append(eps, ep)
		}
		var rxEps []*dcqcn.Endpoint
		for _, h := range d.Receivers {
			ep, err := dcqcn.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			ep.OnComplete = func(c dcqcn.Completion) { complete(c.Flow, c.At) }
			rxEps = append(rxEps, ep)
		}
		var senders []*dcqcn.Sender
		for _, f := range flows {
			s, err := eps[f.Sender].NewFlow(f.ID, d.Receivers[f.Recv].ID(),
				f.Size, des.Time(des.DurationFromSeconds(f.Start)))
			if err != nil {
				return nil, err
			}
			senders = append(senders, s)
		}
		gatherFaultStats = func() {
			for _, ep := range rxEps {
				res.Goodput += ep.TotalRxBytes()
			}
			for _, s := range senders {
				st := s.Recovery()
				res.RetxBytes += st.RetxBytes
				res.RecoveryTime += st.RecoveryTime.Seconds()
			}
		}
	case ProtoTimely, ProtoPatchedTimely:
		// The TIMELY implementation paces 16-64 KB chunks at line rate
		// (§4.2); the FCT comparison runs it as deployed.
		params := timely.DefaultParams()
		if cfg.Protocol == ProtoPatchedTimely {
			params = timely.DefaultPatchedParams()
		}
		params.Burst = cfg.TimelyPerPacket == false
		if cfg.TimelySeg > 0 {
			params.Seg = cfg.TimelySeg
		}
		params.HAI = cfg.TimelyHAI
		params.GradClamp = cfg.TimelyGradClamp
		params.Recovery = cfg.Recovery
		params.RTO = cfg.RTO
		var eps []*timely.Endpoint
		for _, h := range d.Senders {
			ep, err := timely.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			eps = append(eps, ep)
		}
		var rxEps []*timely.Endpoint
		for _, h := range d.Receivers {
			ep, err := timely.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			ep.OnComplete = func(c timely.Completion) { complete(c.Flow, c.At) }
			rxEps = append(rxEps, ep)
		}
		var senders []*timely.Sender
		for _, f := range flows {
			s, err := eps[f.Sender].NewFlow(f.ID, d.Receivers[f.Recv].ID(),
				f.Size, des.Time(des.DurationFromSeconds(f.Start)), 0)
			if err != nil {
				return nil, err
			}
			senders = append(senders, s)
		}
		gatherFaultStats = func() {
			for _, ep := range rxEps {
				res.Goodput += ep.TotalRxBytes()
			}
			for _, s := range senders {
				st := s.Recovery()
				res.RetxBytes += st.RetxBytes
				res.RecoveryTime += st.RecoveryTime.Seconds()
			}
		}
	default:
		return nil, fmt.Errorf("exp: unknown protocol %v", cfg.Protocol)
	}

	res.Queue = netsim.MonitorQueueBytes(nw.Sim, d.Bottleneck, cfg.QueueSampleEvery)
	if o := cfg.Observer; o != nil && o.Probes != nil {
		name := cfg.ProbeName
		if name == "" {
			name = "queue_bytes"
		}
		q := d.Bottleneck.Queue()
		o.Probes.NewProbe(o.ProbeName(name), 0).Drive(nw.Sim, o.ProbeCadence(), func() float64 {
			return float64(q.Bytes())
		})
	}
	var txAtWarm, txAtEnd int64
	nw.Sim.At(des.Time(des.DurationFromSeconds(cfg.Warmup)), func() { txAtWarm = d.Bottleneck.TxBytes })
	nw.Sim.At(des.Time(des.DurationFromSeconds(cfg.Horizon)), func() { txAtEnd = d.Bottleneck.TxBytes })
	if err := runNet(nw, cfg.Shards, des.Time(des.DurationFromSeconds(cfg.Horizon+cfg.Drain))); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		sortRecs(recs)
		for _, r := range recs {
			res.AllFCT = append(res.AllFCT, r.fct)
			if size[r.flow] < cfg.SmallBytes {
				res.SmallFCT = append(res.SmallFCT, r.fct)
			}
		}
	}
	if o := cfg.Observer; o != nil && o.Check != nil {
		o.Check.Finish(nw.Sim.Now())
	}
	res.Utilisation = float64(txAtEnd-txAtWarm) / (linkBW * (cfg.Horizon - cfg.Warmup))
	res.Unfinished = res.Generated - res.Completed
	res.RawTxBytes = d.Bottleneck.TxBytes
	gatherFaultStats()
	if applied != nil {
		res.WireDrops = applied.Drops()
	}
	for _, sw := range []*netsim.Switch{d.SW1, d.SW2} {
		for _, p := range sw.Ports() {
			res.BufferDrops += p.Queue().Drops()
		}
	}
	return res, nil
}
