package exp

// Hybrid fluid↔packet co-simulation experiments (internal/hybrid): the
// analytic layer as a standing correctness oracle for the packet simulator
// (crossval), equilibrium warm starts that skip the cold-start transient
// (hybridwarm), and fluid background aggregates that stand in for large
// flow populations (hybridbg). These runners integrate ODEs coupled to a
// serial DES tick, so they ignore Options.Shards like the fluid-model
// experiments do.

import (
	"fmt"

	"ecndelay/internal/des"
	"ecndelay/internal/hybrid"
	"ecndelay/internal/netsim"
)

func init() {
	register(Runner{
		ID: "crossval", Title: "Cross-validate fluid vs packet vs fixed point at the canonical operating points",
		Figure: "hybrid oracle", Run: runCrossVal,
	})
	register(Runner{
		ID: "hybridwarm", Title: "Equilibrium warm start on a Clos incast: events to steady state vs cold start",
		Figure: "hybrid oracle", Run: runHybridWarm,
	})
	register(Runner{
		ID: "hybridbg", Title: "Fluid background aggregate vs all-packet run: operating point and event cost",
		Figure: "hybrid oracle", Run: runHybridBG,
	})
}

// runCrossVal is the CI gate: every check at every operating point must be
// inside its documented tolerance or the runner errors (and ecnbench exits
// non-zero).
func runCrossVal(o Options) (*Report, error) {
	rep := &Report{ID: "crossval", Title: "Fluid↔packet cross-validation against the paper's fixed points"}
	points := hybrid.CIOperatingPoints()
	if o.Scale == Quick {
		points = []hybrid.OpPoint{points[1], points[2]} // dcqcn N=10, timely N=2
	}
	tbl := Table{Cols: []string{"point", "check", "oracle", "measured", "rel err", "tol", "ok"}}
	var firstErr error
	for _, op := range points {
		res, err := hybrid.RunOp(op, o.Seed)
		if err != nil {
			return nil, err
		}
		for _, c := range res.Checks {
			tbl.Rows = append(tbl.Rows, []string{
				res.Name, c.Name, eng(c.Want), eng(c.Got), f3(c.RelErr()), f3(c.Tol),
				fmt.Sprint(c.OK()),
			})
			rep.AddMetric(res.Name+"."+c.Name, c.RelErr())
		}
		if err := res.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"every check must stay inside its tolerance: the paper's own math is the regression oracle for the packet simulator")
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

// runHybridWarm compares a warm-started Clos incast against the cold start:
// same steady state, far fewer events to reach it.
func runHybridWarm(o Options) (*Report, error) {
	rep := &Report{ID: "hybridwarm", Title: "Warm start at the Theorem 1 fixed point on a Clos incast (N=10, 40 Gb/s)"}
	const horizon = 0.1
	sc := hybrid.NewDCQCNScenario(10, o.Seed)
	warm, err := hybrid.DCQCNWarmStart(sc.Par)
	if err != nil {
		return nil, err
	}
	tbl := Table{Cols: []string{"start", "tail queue KB", "settle ms", "events at settle", "total events"}}
	var settles [2]hybrid.Settle
	for i, mode := range []string{"cold", "warm"} {
		var w *hybrid.WarmStart
		if mode == "warm" {
			w = warm
		}
		nw, cl, _, err := sc.ClosIncast(w)
		if err != nil {
			return nil, err
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, cl.HostPorts[0], 100*des.Microsecond)
		evs := hybrid.MonitorEvents(nw.Sim, 100*des.Microsecond)
		nw.RunUntil(des.Time(des.DurationFromSeconds(horizon)))
		st := hybrid.MeasureSettle(qs, evs, horizon)
		settles[i] = st
		tbl.Rows = append(tbl.Rows, []string{
			mode, f1(st.TailMean / 1000), f2(st.Time * 1000),
			fmt.Sprint(st.Events), fmt.Sprint(nw.Sim.Processed()),
		})
		rep.AddMetric("settle_events_"+mode, float64(st.Events))
		rep.AddMetric("tail_queue_kb_"+mode, st.TailMean/1000)
	}
	cold, warmS := settles[0], settles[1]
	tailDiff := relDiff(warmS.TailMean, cold.TailMean)
	rep.AddMetric("tail_rel_diff", tailDiff)
	ratio := float64(warmS.Events) / float64(cold.Events)
	rep.AddMetric("settle_event_ratio", ratio)
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"the warm start lands inside the steady-state envelope almost immediately; the cold start pays a line-rate overshoot transient first")
	if tailDiff > 0.15 {
		return nil, fmt.Errorf("hybridwarm: warm and cold steady states diverge: rel diff %.3f > 0.15", tailDiff)
	}
	if warmS.Events >= cold.Events {
		return nil, fmt.Errorf("hybridwarm: warm start took %d events to settle, cold %d — no saving",
			warmS.Events, cold.Events)
	}
	return rep, nil
}

// runHybridBG compares an 8-flow all-packet star against 2 packet
// foreground flows plus a 6-flow fluid background aggregate.
func runHybridBG(o Options) (*Report, error) {
	rep := &Report{ID: "hybridbg", Title: "Fluid background aggregate: 2 packet + 6 fluid flows vs 8 packet flows"}
	const horizon = 0.1
	end := des.Time(des.DurationFromSeconds(horizon))

	full := hybrid.NewDCQCNScenario(8, o.Seed)
	nwF, starF, _, err := full.Star(nil)
	if err != nil {
		return nil, err
	}
	qsF := netsim.MonitorQueueBytes(nwF.Sim, starF.Bottleneck, 100*des.Microsecond)
	nwF.RunUntil(end)
	evF := nwF.Sim.Processed()
	fullMean := qsF.WindowSummary(horizon*0.6, horizon).Mean

	sc := hybrid.NewDCQCNScenario(2, o.Seed)
	nwH, starH, senders, err := sc.Star(nil)
	if err != nil {
		return nil, err
	}
	bg, err := hybrid.AttachBackground(starH.Bottleneck, hybrid.BackgroundConfig{
		Flows: 6, Par: sc.Par, ColdStart: true,
	})
	if err != nil {
		return nil, err
	}
	// The marking view is the coupled occupancy: real + fluid bytes.
	qsH, rsH := &statsSeries{}, &statsSeries{}
	nwH.Sim.Every(des.Time(100*des.Microsecond), 100*des.Microsecond, func() {
		t := nwH.Sim.Now().Seconds()
		qsH.add(t, float64(starH.Bottleneck.Queue().MarkBytes()))
		sum := 0.0
		for _, s := range senders {
			sum += s.Rate()
		}
		rsH.add(t, sum/float64(len(senders)))
	})
	nwH.RunUntil(end)
	evH := nwH.Sim.Processed()
	hybMean := qsH.windowMean(horizon*0.6, horizon)
	fgRate := rsH.windowMean(horizon*0.6, horizon)

	fair := sc.Par.C / 8 * hybrid.MTU // bytes/s per flow at the 8-flow fixed point
	tbl := Table{Cols: []string{"run", "tail queue KB", "events", "per-flow Gb/s"}}
	tbl.Rows = append(tbl.Rows,
		[]string{"8 packet flows", f1(fullMean / 1000), fmt.Sprint(evF), f2(fair * 8 / 1e9)},
		[]string{"2 packet + 6 fluid", f1(hybMean / 1000), fmt.Sprint(evH), f2(fgRate * 8 / 1e9)},
	)
	rep.Tables = append(rep.Tables, tbl)
	qDiff := relDiff(hybMean, fullMean)
	evRatio := float64(evH) / float64(evF)
	rateDiff := relDiff(fgRate, fair)
	rep.AddMetric("queue_rel_diff", qDiff)
	rep.AddMetric("event_ratio", evRatio)
	rep.AddMetric("fg_rate_rel_diff", rateDiff)
	rep.AddMetric("bg_rate_gbps", bg.Rate()*8/1e9)
	rep.Notes = append(rep.Notes,
		"the aggregate absorbs leftover capacity while sharing one marking probability with the packet foreground, so the coupled system settles at the 8-flow fixed point at a fraction of the event cost",
		"the foreground/background split is only approximately fair: congestion-signal coupling fixes the total rate, not the division (see DESIGN.md)")
	if qDiff > 0.25 {
		return nil, fmt.Errorf("hybridbg: coupled queue diverges from the all-packet run: rel diff %.3f > 0.25", qDiff)
	}
	if evRatio > 0.6 {
		return nil, fmt.Errorf("hybridbg: event ratio %.3f — the aggregate saved too little", evRatio)
	}
	if rateDiff > 0.30 {
		return nil, fmt.Errorf("hybridbg: foreground rate %.3g off the 8-flow fair share %.3g (rel %.3f)",
			fgRate, fair, rateDiff)
	}
	return rep, nil
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	if b < 1e-12 {
		b = 1e-12
	}
	return d / b
}

// statsSeries is a minimal local series (stats.Series requires monotone
// time; this mirrors it for the MarkBytes sampling above).
type statsSeries struct {
	t, v []float64
}

func (s *statsSeries) add(t, v float64) { s.t = append(s.t, t); s.v = append(s.v, v) }

func (s *statsSeries) windowMean(t0, t1 float64) float64 {
	sum, cnt := 0.0, 0
	for i, t := range s.t {
		if t >= t0 && t <= t1 {
			sum += s.v[i]
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
