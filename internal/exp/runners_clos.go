package exp

// Datacenter-fabric scenarios: the paper's protocols on the topologies they
// actually deploy on. The dumbbell experiments isolate the control loops;
// these runs put DCQCN and TIMELY on generated Clos fabrics (internal/topo)
// under the traffic patterns that define datacenter congestion — N-to-1
// incast at a leaf's host port, all-to-all shuffle across the ECMP core,
// and sustained Poisson flow churn — and measure what the dumbbell cannot
// show: PFC pause trees climbing the tiers and multipath load balance.

import (
	"fmt"
	"math/rand"
	"sync"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
	"ecndelay/internal/stats"
	"ecndelay/internal/timely"
	"ecndelay/internal/topo"
	"ecndelay/internal/workload"
)

func init() {
	register(Runner{
		ID: "closincast", Title: "Incast degradation on a 3-tier Clos: FCT and PFC pause time vs fan-in",
		Figure: "fabric extension", Run: runClosIncast,
	})
	register(Runner{
		ID: "closshuffle", Title: "All-to-all shuffle on a leaf-spine fabric: completion, fairness, ECMP balance",
		Figure: "fabric extension", Run: runClosShuffle,
	})
	register(Runner{
		ID: "closload", Title: "Streaming Poisson flow churn on a 3-tier Clos (lazy arrival generation)",
		Figure: "fabric extension", Run: runClosLoad,
	})
}

// closRunConfig drives one protocol run on a generated fabric. Exactly one
// of Flows (pre-materialised pattern) or Stream (lazy arrivals, pulled as
// simulated time reaches each one) supplies the traffic; Sender/Recv
// indexes are host indexes into the fabric.
type closRunConfig struct {
	Protocol Protocol
	Fabric   topo.ClosConfig

	Flows      []workload.Flow
	Stream     *workload.PoissonStream
	StreamSeed int64 // rng seed driving Stream draws
	// RecvOf maps a flow to its receiving host index (nil: Flow.Recv
	// verbatim). closload uses it to keep uniform pairings off self-flows.
	RecvOf func(f workload.Flow) int

	Horizon float64 // last second in which flows may start
	Drain   float64 // extra simulated seconds to let flows finish
	Seed    int64

	// StormThreshold is the PFC watchdog's sustained-pause bar (default
	// 100 µs).
	StormThreshold des.Duration
	// ProbeHost selects whose leaf→host egress queue the auto-registered
	// probe watches when the observer carries a ProbeSet; -1 disables.
	ProbeHost int

	Observer   *obs.NetObserver
	ProbeName  string
	HistPrefix string

	// Shards runs the fabric partitioned across this many shard
	// simulators (see Options.Shards); ≤ 1 is the serial engine.
	Shards int
}

// closRunResult aggregates one fabric run.
type closRunResult struct {
	Clos      *topo.Clos
	AllFCT    []float64
	Generated int
	Completed int
	// PausedSec is cumulative PFC pause time summed over every fabric port
	// (the watchdog's PausedTotal) — the paper's "pause tree" cost.
	PausedSec float64
	// Storms counts pauses that persisted past StormThreshold.
	Storms int
	// PeakInFlight is the most flows simultaneously created-but-incomplete;
	// under a Stream it stays near the true concurrency instead of the
	// whole-horizon flow count.
	PeakInFlight int
}

// runClos builds the fabric, attaches one protocol endpoint per host, plays
// the traffic in and collects FCTs plus PFC accounting.
func runClos(cfg closRunConfig) (*closRunResult, error) {
	if (cfg.Flows == nil) == (cfg.Stream == nil) {
		return nil, fmt.Errorf("exp: clos run needs exactly one of Flows or Stream")
	}
	if cfg.StormThreshold == 0 {
		cfg.StormThreshold = 100 * des.Microsecond
	}
	nw := netsim.New(cfg.Seed)
	if cfg.Observer != nil {
		nw.SetObserver(cfg.Observer)
	}
	fabric := cfg.Fabric
	if cfg.Protocol == ProtoDCQCN {
		fabric.Mark = func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
		}
	}
	cl, err := topo.NewClos(nw, fabric)
	if err != nil {
		return nil, err
	}
	wd := netsim.NewPFCWatchdog(nw.Sim, cfg.StormThreshold)
	for _, sw := range cl.Switches() {
		wd.WatchSwitch(sw)
	}
	for _, h := range cl.Hosts {
		wd.WatchHost(h)
	}

	res := &closRunResult{Clos: cl}
	start := make(map[int]float64)
	inFlight := 0
	fctH := cfg.Observer.Hist(cfg.HistPrefix + "fct_all_s")
	// In a sharded run completions fire on shard goroutines while the
	// arm-chain arrivals run stop-the-world on the coordinator, so both
	// closures serialise on one mutex, and the FCT slice is rebuilt after
	// the run in serial completion order (see sortRecs).
	var mu sync.Mutex
	var recs []fctRec
	complete := func(flowID int, at des.Time) {
		if cfg.Shards > 1 {
			mu.Lock()
			defer mu.Unlock()
		}
		s, ok := start[flowID]
		if !ok {
			return
		}
		delete(start, flowID)
		res.Completed++
		inFlight--
		fct := at.Seconds() - s
		if cfg.Shards > 1 {
			recs = append(recs, fctRec{at: at, flow: flowID, fct: fct})
		} else {
			res.AllFCT = append(res.AllFCT, fct)
		}
		if fctH != nil {
			fctH.Record(fct)
		}
	}

	recvOf := cfg.RecvOf
	if recvOf == nil {
		recvOf = func(f workload.Flow) int { return f.Recv }
	}

	// One endpoint per host — every host can be sender and receiver, as on
	// a real fabric — and a protocol-erased flow starter for the traffic
	// loops below.
	var startFlow func(f workload.Flow) error
	switch cfg.Protocol {
	case ProtoDCQCN:
		eps := make([]*dcqcn.Endpoint, len(cl.Hosts))
		for i, h := range cl.Hosts {
			ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
			if err != nil {
				return nil, err
			}
			ep.OnComplete = func(c dcqcn.Completion) { complete(c.Flow, c.At) }
			eps[i] = ep
		}
		startFlow = func(f workload.Flow) error {
			dst := cl.Hosts[recvOf(f)].ID()
			_, err := eps[f.Sender].NewFlow(f.ID, dst, f.Size, des.Time(des.DurationFromSeconds(f.Start)))
			return err
		}
	case ProtoTimely, ProtoPatchedTimely:
		params := timely.DefaultParams()
		if cfg.Protocol == ProtoPatchedTimely {
			params = timely.DefaultPatchedParams()
		}
		eps := make([]*timely.Endpoint, len(cl.Hosts))
		for i, h := range cl.Hosts {
			ep, err := timely.NewEndpoint(h, params)
			if err != nil {
				return nil, err
			}
			ep.OnComplete = func(c timely.Completion) { complete(c.Flow, c.At) }
			eps[i] = ep
		}
		startFlow = func(f workload.Flow) error {
			dst := cl.Hosts[recvOf(f)].ID()
			_, err := eps[f.Sender].NewFlow(f.ID, dst, f.Size, des.Time(des.DurationFromSeconds(f.Start)), 0)
			return err
		}
	default:
		return nil, fmt.Errorf("exp: unknown protocol %v", cfg.Protocol)
	}

	track := func(f workload.Flow) error {
		if cfg.Shards > 1 {
			mu.Lock()
		}
		start[f.ID] = f.Start
		res.Generated++
		inFlight++
		if inFlight > res.PeakInFlight {
			res.PeakInFlight = inFlight
		}
		if cfg.Shards > 1 {
			mu.Unlock()
		}
		return startFlow(f)
	}
	if cfg.Flows != nil {
		for _, f := range cfg.Flows {
			if err := track(f); err != nil {
				return nil, err
			}
		}
	} else {
		// Lazy churn: each arrival event starts its flow and pulls the next
		// one from the stream, so memory holds the flows in flight — never
		// the horizon's worth. The first pull happens before the clock runs.
		rng := rand.New(rand.NewSource(cfg.StreamSeed))
		var failed error
		var arm func(f workload.Flow)
		arm = func(f workload.Flow) {
			nw.Sim.At(des.Time(des.DurationFromSeconds(f.Start)), func() {
				if err := track(f); err != nil {
					failed = err
					return
				}
				if next, ok := cfg.Stream.Next(rng); ok {
					arm(next)
				}
			})
		}
		if f, ok := cfg.Stream.Next(rng); ok {
			arm(f)
		}
		defer func() {
			if failed != nil {
				err = failed
			}
		}()
	}

	if o := cfg.Observer; o != nil && o.Probes != nil && cfg.ProbeHost >= 0 {
		name := cfg.ProbeName
		if name == "" {
			name = "clos_queue_bytes"
		}
		q := cl.HostPorts[cfg.ProbeHost].Queue()
		o.Probes.NewProbe(o.ProbeName(name), 0).Drive(nw.Sim, o.ProbeCadence(), func() float64 {
			return float64(q.Bytes())
		})
	}

	if rerr := runNet(nw, cfg.Shards, des.Time(des.DurationFromSeconds(cfg.Horizon+cfg.Drain))); rerr != nil {
		return nil, rerr
	}
	if cfg.Shards > 1 {
		sortRecs(recs)
		for _, r := range recs {
			res.AllFCT = append(res.AllFCT, r.fct)
		}
	}
	wd.Finish()
	if o := cfg.Observer; o != nil && o.Check != nil {
		o.Check.Finish(nw.Sim.Now())
	}
	res.PausedSec = wd.PausedTotal().Seconds()
	res.Storms = wd.Storms()
	return res, err
}

// closIncastFabric is the shared incast arena: the smallest 3-tier fat tree
// (k=4: 16 hosts, 8 leaves, 8 aggs, 4 spines), PFC thresholds low enough
// that a converging burst must push pauses up the tiers.
func closIncastFabric(link netsim.LinkConfig, seed int64) topo.ClosConfig {
	return topo.ClosConfig{
		Radix: 4, Tiers: 3,
		HostLink: link,
		PFC:      netsim.PFCConfig{PauseBytes: 50e3, ResumeBytes: 25e3},
		ECMPSeed: seed,
	}
}

var closLink = netsim.LinkConfig{Bandwidth: 10e9 / 8, PropDelay: des.Microsecond}

// runClosIncast sweeps the fan-in of a partition-aggregate incast converging
// on one host of a 3-tier Clos: every sender's shard crosses the ECMP core
// and funnels into a single leaf→host port. FCT degrades with fan-in for
// both protocols, but the PFC cost — pause seconds and sustained storms —
// is the fabric-level signature the paper's §3 PFC discussion predicts.
func runClosIncast(o Options) (*Report, error) {
	rep := &Report{ID: "closincast", Title: "Incast fan-in sweep on a k=4 fat tree (16 hosts, ECMP core)"}
	fanins := []int{4, 8, 15}
	size, rounds, interval := int64(64e3), 2, 2e-3
	drain := 0.05
	if o.Scale == Full {
		fanins = []int{2, 4, 8, 12, 15}
		size, rounds, interval = 256e3, 4, 5e-3
		drain = 0.3
	}
	tbl := Table{Cols: []string{"fan-in", "protocol", "p50 ms", "p99 ms", "pause ms", "storms"}}
	for _, n := range fanins {
		flows, err := workload.Incast(workload.IncastConfig{
			Fanin: n, Size: size, Start: 2e-4, Rounds: rounds, Interval: interval,
		})
		if err != nil {
			return nil, err
		}
		for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
			r, err := runClos(closRunConfig{
				Protocol: proto,
				Fabric:   closIncastFabric(closLink, o.Seed),
				Flows:    flows,
				// Senders are hosts 0..n-1; the aggregator sits in the last
				// pod so every shard crosses the spine tier.
				RecvOf:     func(workload.Flow) int { return 15 },
				Horizon:    2e-4 + float64(rounds)*interval,
				Drain:      drain,
				Seed:       o.Seed,
				ProbeHost:  15,
				Observer:   o.Observer,
				ProbeName:  fmt.Sprintf("clos_queue.N%d.%s", n, proto),
				HistPrefix: fmt.Sprintf("closincast.N%d.%s.", n, proto),
				Shards:     o.Shards,
			})
			if err != nil {
				return nil, err
			}
			p50, err := stats.Percentile(r.AllFCT, 50)
			if err != nil {
				return nil, err
			}
			p99, _ := stats.Percentile(r.AllFCT, 99)
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(n), proto.String(),
				f3(p50 * 1e3), f3(p99 * 1e3), f3(r.PausedSec * 1e3), fmt.Sprint(r.Storms),
			})
			key := fmt.Sprintf("%s_N%d", proto, n)
			rep.AddMetric("p99_ms_"+key, p99*1e3)
			rep.AddMetric("pause_ms_"+key, r.PausedSec*1e3)
			rep.AddMetric("storms_"+key, float64(r.Storms))
			rep.AddMetric("unfinished_"+key, float64(r.Generated-r.Completed))
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"the incast bottleneck is the last leaf→host port, so congestion control quality decides whether backpressure stays at the edge or PFC pause trees climb into the ECMP core; pause ms and storms are that climb, measured")
	return rep, nil
}

// runClosShuffle plays the map→reduce all-to-all exchange on a leaf-spine
// fabric: every host sends an equal partition to every other host, so the
// run measures fabric-wide fairness (Jain across per-flow rates) and how
// evenly flow-consistent ECMP spreads the pairs over the spine uplinks.
func runClosShuffle(o Options) (*Report, error) {
	rep := &Report{ID: "closshuffle", Title: "All-to-all shuffle on a k=4 leaf-spine (8 hosts, 56 flows)"}
	size := int64(128e3)
	drain := 0.1
	if o.Scale == Full {
		size = 1e6
		drain = 0.5
	}
	flows, err := workload.Shuffle(workload.ShuffleConfig{Hosts: 8, Size: size, Start: 1e-4})
	if err != nil {
		return nil, err
	}
	tbl := Table{Cols: []string{"protocol", "shuffle ms", "Jain (flows)", "Jain (uplinks)", "pause ms"}}
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		r, err := runClos(closRunConfig{
			Protocol: proto,
			Fabric: topo.ClosConfig{
				Radix: 4, Tiers: 2,
				HostLink: closLink,
				PFC:      netsim.PFCConfig{PauseBytes: 50e3, ResumeBytes: 25e3},
				ECMPSeed: o.Seed,
			},
			Flows:      flows,
			Horizon:    1e-4,
			Drain:      drain,
			Seed:       o.Seed,
			ProbeHost:  0,
			Observer:   o.Observer,
			ProbeName:  fmt.Sprintf("clos_queue.shuffle.%s", proto),
			HistPrefix: fmt.Sprintf("closshuffle.%s.", proto),
			Shards:     o.Shards,
		})
		if err != nil {
			return nil, err
		}
		if r.Completed != len(flows) {
			return nil, fmt.Errorf("exp: shuffle finished %d of %d flows; raise Drain", r.Completed, len(flows))
		}
		// Shuffle completion is the straggler; fairness is over realised
		// per-flow rates (equal sizes, so 1/FCT up to a constant).
		done := 0.0
		rates := make([]float64, len(r.AllFCT))
		for i, fct := range r.AllFCT {
			if fct > done {
				done = fct
			}
			rates[i] = float64(size) / fct
		}
		var uplinkTx []float64
		for _, ups := range r.Clos.LeafUplinks {
			for _, p := range ups {
				uplinkTx = append(uplinkTx, float64(p.TxBytes))
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			proto.String(), f3(done * 1e3),
			f3(stats.JainIndex(rates)), f3(stats.JainIndex(uplinkTx)),
			f3(r.PausedSec * 1e3),
		})
		key := proto.String()
		rep.AddMetric("shuffle_ms_"+key, done*1e3)
		rep.AddMetric("jain_flows_"+key, stats.JainIndex(rates))
		rep.AddMetric("jain_uplinks_"+key, stats.JainIndex(uplinkTx))
		rep.AddMetric("pause_ms_"+key, r.PausedSec*1e3)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"Jain (uplinks) is over TxBytes of every leaf uplink: flow-consistent ECMP with per-switch salts spreads the 56 pairs across the spine mesh without splitting any single flow across paths")
	return rep, nil
}

// runClosLoad drives sustained Poisson flow churn (the §5.1 web-search mix)
// through a 3-tier Clos with the lazy arrival stream: flows are generated
// one event ahead of the simulation clock, so the run's memory scales with
// flows in flight rather than flows in the horizon — the shape that lets
// million-flow churn runs fit in RAM.
func runClosLoad(o Options) (*Report, error) {
	rep := &Report{ID: "closload", Title: "Poisson churn on a k=4 fat tree via the streaming arrival generator"}
	const hosts = 16
	capacity := closLink.Bandwidth * hosts // aggregate host ingress
	loadFactor, horizon, drain := 0.3, 0.01, 0.1
	if o.Scale == Full {
		loadFactor, horizon, drain = 0.5, 0.05, 0.5
	}
	tbl := Table{Cols: []string{"protocol", "flows", "done", "peak in-flight", "p50 ms", "p99 ms", "pause ms"}}
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		stream, err := workload.NewPoissonStream(workload.Config{
			Load:     loadFactor * capacity,
			Capacity: capacity, // refuse configs past aggregate ingress
			Sizes:    workload.WebSearch(),
			Senders:  hosts, Receivers: hosts,
			Horizon: horizon,
			Seed:    o.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		r, err := runClos(closRunConfig{
			Protocol:   proto,
			Fabric:     closIncastFabric(closLink, o.Seed),
			Stream:     stream,
			StreamSeed: o.Seed + 1,
			// Uniform pairing may draw sender == receiver; shift those one
			// host over so every flow crosses the fabric.
			RecvOf: func(f workload.Flow) int {
				if f.Recv == f.Sender {
					return (f.Recv + 1) % hosts
				}
				return f.Recv
			},
			Horizon:    horizon,
			Drain:      drain,
			Seed:       o.Seed,
			ProbeHost:  0,
			Observer:   o.Observer,
			ProbeName:  fmt.Sprintf("clos_queue.load.%s", proto),
			HistPrefix: fmt.Sprintf("closload.%s.", proto),
			Shards:     o.Shards,
		})
		if err != nil {
			return nil, err
		}
		p50, err := stats.Percentile(r.AllFCT, 50)
		if err != nil {
			return nil, err
		}
		p99, _ := stats.Percentile(r.AllFCT, 99)
		tbl.Rows = append(tbl.Rows, []string{
			proto.String(), fmt.Sprint(r.Generated), fmt.Sprint(r.Completed),
			fmt.Sprint(r.PeakInFlight), f3(p50 * 1e3), f3(p99 * 1e3), f3(r.PausedSec * 1e3),
		})
		key := proto.String()
		rep.AddMetric("flows_"+key, float64(r.Generated))
		rep.AddMetric("peak_inflight_"+key, float64(r.PeakInFlight))
		rep.AddMetric("p99_ms_"+key, p99*1e3)
		rep.AddMetric("pause_ms_"+key, r.PausedSec*1e3)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"peak in-flight stays far below the generated flow count: the PoissonStream materialises one arrival ahead of the clock, so churn length costs simulated time, not memory")
	return rep, nil
}
