package exp

import (
	"ecndelay/internal/fluid"
	"ecndelay/internal/stats"
)

// lateStats summarises one state component of a fluid trajectory over the
// tail window t >= tFrom.
func lateStats(samples []fluid.Sample, idx int, tFrom float64) stats.Summary {
	var vals []float64
	for _, s := range samples {
		if s.T >= tFrom {
			vals = append(vals, s.Y[idx])
		}
	}
	return stats.Summarize(vals)
}

// runDCQCNFluid integrates the DCQCN fluid model and summarises the tail.
func runDCQCNFluid(n int, tauStar, horizon float64, jitter float64, seed int64) (q stats.Summary, r0 stats.Summary, err error) {
	p := fluid.DefaultDCQCNParams(n)
	p.TauStar = tauStar
	sys, err := fluid.NewDCQCN(fluid.DCQCNConfig{Params: p, JitterMax: jitter, Seed: seed})
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	sm := fluid.Run(sys, 1e-6, horizon, 1e-4)
	tail := horizon * 0.6
	return lateStats(sm, sys.QIndex(), tail), lateStats(sm, sys.RCIndex(0), tail), nil
}
