package exp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
	"ecndelay/internal/sweep"
	"ecndelay/internal/workload"
)

// closGoldenCfg is the fixed-seed fabric scenario behind the Clos golden
// trajectory: an 8:1 incast on the smallest 3-tier fat tree, small enough
// for CI but deep enough that the burst must cross the ECMP core and the
// probe sees the aggregator's queue build and drain.
func closGoldenCfg(proto Protocol) (closRunConfig, error) {
	flows, err := workload.Incast(workload.IncastConfig{
		Fanin: 8, Size: 64e3, Start: 2e-4, Rounds: 2, Interval: 2e-3,
	})
	if err != nil {
		return closRunConfig{}, err
	}
	return closRunConfig{
		Protocol:  proto,
		Fabric:    closIncastFabric(closLink, 42),
		Flows:     flows,
		RecvOf:    func(workload.Flow) int { return 15 },
		Horizon:   2e-4 + 2*2e-3,
		Drain:     0.05,
		Seed:      42,
		ProbeHost: 15,
	}, nil
}

func closGoldenProbeJSONL(t *testing.T, proto Protocol) []byte {
	t.Helper()
	o := &obs.NetObserver{Probes: obs.NewProbeSet(), ProbeEvery: 100 * des.Microsecond}
	cfg, err := closGoldenCfg(proto)
	if err != nil {
		t.Fatal(err)
	}
	// Same self-describing header the cmd front-ends prepend.
	o.Probes.SetHeader(obs.Header{Schema: "probe", Version: 1, Seed: cfg.Seed, Proto: proto.String()})
	cfg.Observer = o
	if _, err := runClos(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Probes.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The fixed-seed Clos incast trajectory is a golden artifact exactly like
// the dumbbell ones: any drift in the topology generator, ECMP hashing, or
// the protocols on a multipath fabric shows as a byte diff. Regenerate with:
// go test ./internal/exp -run GoldenClos -update
func TestGoldenClosProbeTrajectory(t *testing.T) {
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		t.Run(proto.String(), func(t *testing.T) {
			got := closGoldenProbeJSONL(t, proto)
			if len(got) == 0 {
				t.Fatal("probe export is empty")
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden_probe_closincast_%s.jsonl", proto))
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("Clos probe trajectory drifted from %s (%d vs %d bytes); regenerate with -update only if the change is intended",
					path, len(got), len(want))
			}
			if again := closGoldenProbeJSONL(t, proto); !bytes.Equal(got, again) {
				t.Error("same-seed rerun produced a different trajectory")
			}
		})
	}
}

// The same trajectories through the sweep engine: byte-identical whether
// the two protocol jobs share one worker or race across four, and equal to
// the golden files — the fabric runs compose with parallel sweeps exactly
// like the dumbbell ones.
func TestGoldenClosAcrossSweepWorkers(t *testing.T) {
	protos := []Protocol{ProtoDCQCN, ProtoTimely}
	runAll := func(workers int) map[string][]byte {
		var mu sync.Mutex
		out := make(map[string][]byte)
		jobs := make([]sweep.Job, len(protos))
		for i, proto := range protos {
			proto := proto
			jobs[i] = sweep.Job{
				ID: proto.String(),
				Run: func(int64) (map[string]float64, error) {
					got := closGoldenProbeJSONL(t, proto)
					mu.Lock()
					out[proto.String()] = got
					mu.Unlock()
					return map[string]float64{"ok": 1}, nil
				},
			}
		}
		if _, err := sweep.Run(sweep.Config{Workers: workers}, jobs, &sweep.MemorySink{}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := runAll(1)
	parallel := runAll(4)
	for _, proto := range protos {
		if !bytes.Equal(serial[proto.String()], parallel[proto.String()]) {
			t.Errorf("%s: Clos trajectory differs between 1 and 4 sweep workers", proto)
		}
		want, err := os.ReadFile(filepath.Join("testdata", fmt.Sprintf("golden_probe_closincast_%s.jsonl", proto)))
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(serial[proto.String()], want) {
			t.Errorf("%s: sweep-engine Clos trajectory differs from the golden file", proto)
		}
	}
}

// A full-observer Clos incast run — counters, tracing, histograms, and the
// invariant checker — stays clean: conservation holds through every fabric
// queue while PFC pauses climb tiers, and the run actually paused.
func TestClosIncastRunCleanInvariants(t *testing.T) {
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		t.Run(proto.String(), func(t *testing.T) {
			o := obs.Full()
			cfg, err := closGoldenCfg(proto)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Observer = o
			r, err := runClos(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Completed != r.Generated {
				t.Errorf("only %d of %d incast flows finished", r.Completed, r.Generated)
			}
			if o.Trace.Count(obs.Pause) == 0 {
				t.Error("incast at these PFC thresholds never paused; scenario too weak")
			}
			if err := o.Check.Err(); err != nil {
				t.Errorf("invariants violated on the Clos incast: %v", err)
			}
		})
	}
}

// The three registered fabric experiments run end to end at Quick scale and
// report their headline metrics.
func TestClosRunnersQuick(t *testing.T) {
	wantMetrics := map[string][]string{
		"closincast":  {"p99_ms_DCQCN_N8", "pause_ms_TIMELY_N15"},
		"closshuffle": {"jain_uplinks_DCQCN", "shuffle_ms_TIMELY"},
		"closload":    {"peak_inflight_DCQCN", "p99_ms_TIMELY"},
	}
	for id, keys := range wantMetrics {
		t.Run(id, func(t *testing.T) {
			r, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			rep, err := r.Run(Options{Scale: Quick, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if _, ok := rep.Metrics[k]; !ok {
					t.Errorf("report is missing metric %q (have %d metrics)", k, len(rep.Metrics))
				}
			}
			if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
				t.Error("report has no table rows")
			}
		})
	}
}

// The streaming arrival path generates exactly the flows Generate would,
// and peak in-flight stays well under the total — the laziness is real.
func TestClosLoadStreamingBounded(t *testing.T) {
	rep, err := runClosLoad(Options{Scale: Quick, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []Protocol{ProtoDCQCN, ProtoTimely} {
		flows := rep.Metrics["flows_"+proto.String()]
		peak := rep.Metrics["peak_inflight_"+proto.String()]
		if flows < 10 {
			t.Fatalf("%s: only %g flows generated; scenario too weak", proto, flows)
		}
		if peak >= flows {
			t.Errorf("%s: peak in-flight %g not below generated %g; stream not lazy", proto, peak, flows)
		}
	}
}
