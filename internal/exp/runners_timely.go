package exp

import (
	"fmt"

	"ecndelay/internal/des"
	"ecndelay/internal/fluid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stability"
	"ecndelay/internal/stats"
	"ecndelay/internal/timely"
)

func init() {
	register(Runner{
		ID: "fig8", Title: "TIMELY fluid model vs packet-level simulation", Figure: "Figure 8",
		Run: runFig8,
	})
	register(Runner{
		ID: "fig9", Title: "TIMELY end state depends on starting conditions", Figure: "Figure 9(a-c)",
		Run: runFig9,
	})
	register(Runner{
		ID: "fig10", Title: "Per-burst pacing: convergence and the 64KB incast drop", Figure: "Figure 10(a,b)",
		Run: runFig10,
	})
	register(Runner{
		ID: "fig11", Title: "Patched TIMELY phase margin vs number of flows", Figure: "Figure 11",
		Run: runFig11,
	})
	register(Runner{
		ID: "fig12", Title: "Patched TIMELY: convergence and stability", Figure: "Figure 12(a-c)",
		Run: runFig12,
	})
}

// starTimely wires an n-sender 10 Gb/s star with TIMELY endpoints and
// per-flow start configuration.
func starTimely(p timely.Params, starts []des.Time, startRates []float64, seed int64) (*netsim.Network, *netsim.Star, []*timely.Sender, error) {
	nw := netsim.New(seed)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: len(starts),
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	if _, err := timely.NewEndpoint(star.Receiver, p); err != nil {
		return nil, nil, nil, err
	}
	var senders []*timely.Sender
	for i, h := range star.Senders {
		ep, err := timely.NewEndpoint(h, p)
		if err != nil {
			return nil, nil, nil, err
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, starts[i], startRates[i])
		if err != nil {
			return nil, nil, nil, err
		}
		senders = append(senders, s)
	}
	return nw, star, senders, nil
}

// sampleRates records sender rates every 100 µs.
func sampleRates(nw *netsim.Network, senders []*timely.Sender) []*stats.Series {
	out := make([]*stats.Series, len(senders))
	for i := range out {
		out[i] = &stats.Series{}
	}
	nw.Sim.Every(0, 100*des.Microsecond, func() {
		t := nw.Sim.Now().Seconds()
		for i, s := range senders {
			out[i].Add(t, s.Rate())
		}
	})
	return out
}

func runFig8(o Options) (*Report, error) {
	rep := &Report{ID: "fig8", Title: "TIMELY fluid vs packet simulation (10 Gb/s, per-packet pacing)"}
	horizon := 0.5
	if o.Scale == Quick {
		horizon = 0.15
	}
	tbl := Table{Cols: []string{"N", "source", "queue KB (mean)", "queue KB (sd)", "aggregate Gb/s"}}
	for _, n := range []int{2} {
		cfg := fluid.DefaultTimelyConfig(n)
		sys, err := fluid.NewTimely(cfg)
		if err != nil {
			return nil, err
		}
		sm := fluid.Run(sys, 1e-6, horizon, 1e-3)
		qF := lateStats(sm, sys.QIndex(), horizon*0.6)
		var agg float64
		for i := 0; i < n; i++ {
			agg += lateStats(sm, sys.RateIndex(i), horizon*0.6).Mean
		}

		starts := make([]des.Time, n)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = cfg.C / float64(n)
		}
		nw, star, senders, err := starTimely(timely.DefaultParams(), starts, rates, o.Seed)
		if err != nil {
			return nil, err
		}
		qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
		rs := sampleRates(nw, senders)
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return nil, err
		}
		qP := qs.WindowSummary(horizon*0.6, horizon)
		var aggP float64
		for _, r := range rs {
			aggP += r.WindowSummary(horizon*0.6, horizon).Mean
		}

		tbl.Rows = append(tbl.Rows,
			[]string{fmt.Sprint(n), "fluid", f1(qF.Mean / 1000), f1(qF.Stddev / 1000), f2(agg * 8 / 1e9)},
			[]string{fmt.Sprint(n), "packet", f1(qP.Mean / 1000), f1(qP.Stddev / 1000), f2(aggP * 8 / 1e9)},
		)
		rep.AddMetric("fluid_q_kb", qF.Mean/1000)
		rep.AddMetric("packet_q_kb", qP.Mean/1000)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"both model and simulation operate in sub-T_low limit cycles; agreement is on the oscillation band, not a fixed point (Theorem 3: there is none)")
	return rep, nil
}

func runFig9(o Options) (*Report, error) {
	rep := &Report{ID: "fig9", Title: "TIMELY: infinitely many fixed points in practice"}
	horizonF := 1.0
	horizonP := 0.3
	if o.Scale == Quick {
		horizonF = 0.4
		horizonP = 0.15
	}

	// Fluid model: the three Figure 9 conditions.
	fl := Table{Title: "fluid model (late rate ratio R1/R2)",
		Cols: []string{"condition", "R1 Gb/s", "R2 Gb/s", "ratio"}}
	type fc struct {
		name    string
		rates   []float64
		stagger float64
	}
	fluidCases := []fc{
		{"(a) both 5 Gb/s at t=0", []float64{5e9 / 8, 5e9 / 8}, 0},
		{"(b) second starts 10 ms late", []float64{5e9 / 8, 5e9 / 8}, 10e-3},
		{"(c) 7 Gb/s and 3 Gb/s", []float64{7e9 / 8, 3e9 / 8}, 0},
	}
	var fluidRatios []float64
	for _, c := range fluidCases {
		cfg := fluid.DefaultTimelyConfig(2)
		cfg.InitialRates = c.rates
		if c.stagger > 0 {
			cfg.StartTimes = []float64{0, c.stagger}
		}
		sys, err := fluid.NewTimely(cfg)
		if err != nil {
			return nil, err
		}
		sm := fluid.Run(sys, 1e-6, horizonF, 1e-3)
		r1 := lateStats(sm, sys.RateIndex(0), horizonF*0.8).Mean
		r2 := lateStats(sm, sys.RateIndex(1), horizonF*0.8).Mean
		fl.Rows = append(fl.Rows, []string{c.name, f2(r1 * 8 / 1e9), f2(r2 * 8 / 1e9), f2(r1 / r2)})
		fluidRatios = append(fluidRatios, r1/r2)
	}
	rep.Tables = append(rep.Tables, fl)
	rep.AddMetric("fluid_ratio_spread", spreadOf(fluidRatios))

	// Packet level: equal start, microscopically staggered start, 7/3.
	pk := Table{Title: "packet level (late rate ratio R1/R2)",
		Cols: []string{"condition", "ratio", "utilisation"}}
	type pc struct {
		name    string
		rates   []float64
		stagger des.Duration
	}
	pktCases := []pc{
		{"both 5 Gb/s at t=0", []float64{5e9 / 8, 5e9 / 8}, 0},
		{"second starts 0.5 ms late", []float64{5e9 / 8, 5e9 / 8}, 500 * des.Microsecond},
		{"7 Gb/s and 3 Gb/s", []float64{7e9 / 8, 3e9 / 8}, 0},
	}
	var pktRatios []float64
	for _, c := range pktCases {
		nw, _, senders, err := starTimely(timely.DefaultParams(),
			[]des.Time{0, des.Time(c.stagger)}, c.rates, o.Seed)
		if err != nil {
			return nil, err
		}
		rs := sampleRates(nw, senders)
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizonP))); err != nil {
			return nil, err
		}
		m0 := rs[0].WindowSummary(horizonP*0.7, horizonP).Mean
		m1 := rs[1].WindowSummary(horizonP*0.7, horizonP).Mean
		pk.Rows = append(pk.Rows, []string{c.name, f2(m0 / m1), f2((m0 + m1) / 1.25e9)})
		pktRatios = append(pktRatios, m0/m1)
	}
	rep.Tables = append(rep.Tables, pk)
	rep.AddMetric("packet_ratio_spread", spreadOf(pktRatios))
	rep.Notes = append(rep.Notes,
		"the operating point TIMELY settles into is a function of history, not of the configuration — the practical face of Theorem 4")
	return rep, nil
}

func runFig10(o Options) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "TIMELY pacing granularity"}
	horizon := 0.4
	if o.Scale == Quick {
		horizon = 0.2
	}
	tbl := Table{Cols: []string{"pacing", "late ratio", "late util", "min aggregate / C"}}
	run := func(name string, p timely.Params) error {
		nw, _, senders, err := starTimely(p,
			[]des.Time{0, 0}, []float64{5e9 / 8, 5e9 / 8}, o.Seed)
		if err != nil {
			return err
		}
		rs := sampleRates(nw, senders)
		minAgg := 1e18
		nw.Sim.Every(des.Time(10*des.Millisecond), 100*des.Microsecond, func() {
			if agg := senders[0].Rate() + senders[1].Rate(); agg < minAgg {
				minAgg = agg
			}
		})
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return err
		}
		m0 := rs[0].WindowSummary(horizon*0.7, horizon).Mean
		m1 := rs[1].WindowSummary(horizon*0.7, horizon).Mean
		tbl.Rows = append(tbl.Rows, []string{
			name, f2(m0 / m1), f2((m0 + m1) / 1.25e9), f3(minAgg / 1.25e9),
		})
		rep.AddMetric("min_agg_"+name, minAgg/1.25e9)
		return nil
	}
	if err := run("per-packet", timely.DefaultParams()); err != nil {
		return nil, err
	}
	p16 := timely.DefaultParams()
	p16.Burst = true
	if err := run("16KB bursts", p16); err != nil {
		return nil, err
	}
	p64 := timely.DefaultParams()
	p64.Burst = true
	p64.Seg = 64000
	if err := run("64KB bursts", p64); err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"16 KB bursts add enough noise to land near a fair point (Fig 10a); 64 KB bursts collide at start and the huge RTT sample crushes both rates (Fig 10b)")
	return rep, nil
}

func runFig11(o Options) (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Patched TIMELY phase margin vs number of flows"}
	ns := []int{2, 5, 10, 20, 30, 40, 50, 64}
	if o.Scale == Quick {
		ns = []int{5, 10, 40, 64}
	}
	tbl := Table{Cols: []string{"N", "q* KB (Eq.31)", "phase margin deg", "stable"}}
	firstUnstable := 0
	for _, n := range ns {
		cfg := fluid.DefaultPatchedTimelyConfig(n)
		loop, err := fluid.NewPatchedTimelyLoop(cfg)
		if err != nil {
			return nil, err
		}
		res, err := stability.PhaseMargin(loop)
		if err != nil {
			return nil, err
		}
		sys, err := fluid.NewPatchedTimely(cfg)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), f1(sys.FixedPointQueue() / 1000),
			f1(res.PhaseMarginDeg), fmt.Sprint(res.Stable),
		})
		if !res.Stable && firstUnstable == 0 {
			firstUnstable = n
		}
		rep.AddMetric(fmt.Sprintf("pm_N%d", n), res.PhaseMarginDeg)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddMetric("first_unstable_N", float64(firstUnstable))
	rep.Notes = append(rep.Notes,
		"more flows → larger Eq.31 queue → larger feedback delay (Eq.24) → the margin collapses; the paper sees the cliff around N≈40, this reproduction slightly earlier (parameter sensitivity noted in EXPERIMENTS.md)")
	return rep, nil
}

func runFig12(o Options) (*Report, error) {
	rep := &Report{ID: "fig12", Title: "Patched TIMELY convergence and stability"}
	horizon := 1.0
	if o.Scale == Quick {
		horizon = 0.4
	}

	// (a) fluid: unequal starts converge to the fair fixed point.
	cfg := fluid.DefaultPatchedTimelyConfig(2)
	cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
	sys, err := fluid.NewPatchedTimely(cfg)
	if err != nil {
		return nil, err
	}
	sm := fluid.Run(sys, 1e-6, horizon, 1e-3)
	r0 := lateStats(sm, sys.RateIndex(0), horizon*0.8).Mean
	r1 := lateStats(sm, sys.RateIndex(1), horizon*0.8).Mean
	q := lateStats(sm, sys.QIndex(), horizon*0.8)
	ta := Table{Title: "(a) fluid, 7/3 Gb/s starts",
		Cols: []string{"R1 Gb/s", "R2 Gb/s", "queue KB", "Eq.31 q* KB"}}
	ta.Rows = append(ta.Rows, []string{
		f2(r0 * 8 / 1e9), f2(r1 * 8 / 1e9), f1(q.Mean / 1000), f1(sys.FixedPointQueue() / 1000),
	})
	rep.Tables = append(rep.Tables, ta)
	rep.AddMetric("fluid_ratio", r0/r1)
	rep.AddMetric("fluid_q_vs_eq31", q.Mean/sys.FixedPointQueue())

	// (b,c) fluid: stability across N.
	tb := Table{Title: "(b,c) fluid, queue oscillation vs N", Cols: []string{"N", "queue KB", "queue CV"}}
	ns := []int{10, 64}
	for _, n := range ns {
		c := fluid.DefaultPatchedTimelyConfig(n)
		s, err := fluid.NewPatchedTimely(c)
		if err != nil {
			return nil, err
		}
		smN := fluid.Run(s, 1e-6, horizon, 1e-3)
		qn := lateStats(smN, s.QIndex(), horizon*0.8)
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(n), f1(qn.Mean / 1000), f3(qn.CV())})
		rep.AddMetric(fmt.Sprintf("queue_cv_N%d", n), qn.CV())
	}
	rep.Tables = append(rep.Tables, tb)

	// Packet level: 7/3 starts converge fair.
	nw, star, senders, err := starTimely(timely.DefaultPatchedParams(),
		[]des.Time{0, 0}, []float64{7e9 / 8, 3e9 / 8}, o.Seed)
	if err != nil {
		return nil, err
	}
	rs := sampleRates(nw, senders)
	qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
	hp := horizon * 0.4
	if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(hp))); err != nil {
		return nil, err
	}
	m0 := rs[0].WindowSummary(hp*0.7, hp).Mean
	m1 := rs[1].WindowSummary(hp*0.7, hp).Mean
	qp := qs.WindowSummary(hp*0.7, hp)
	tc := Table{Title: "packet level, 7/3 Gb/s starts", Cols: []string{"ratio", "queue KB", "queue CV"}}
	tc.Rows = append(tc.Rows, []string{f3(m0 / m1), f1(qp.Mean / 1000), f3(qp.CV())})
	rep.Tables = append(rep.Tables, tc)
	rep.AddMetric("packet_ratio", m0/m1)
	return rep, nil
}

func spreadOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
