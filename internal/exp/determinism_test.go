package exp_test

// Determinism is the contract the sweep engine relies on: a runner at a
// fixed seed must produce identical metrics on every invocation, and a
// parallel sweep over runners must therefore be byte-identical to a
// serial one once rows are sorted by job ID.

import (
	"bytes"
	"testing"

	"ecndelay/internal/exp"
	"ecndelay/internal/sweep"
)

// cheapRunners are the analytic Quick-scale experiments, fast enough to
// run several times in the default test suite. The simulation-heavy
// runners share the same deterministic substrate (seeded netsim RNG)
// and are covered once each by TestQuickSimulationRunners.
var cheapRunners = []string{"fig3", "fig11", "eq14", "thm2", "params", "fig21"}

func TestQuickRunnersDeterministic(t *testing.T) {
	for _, id := range cheapRunners {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := exp.Get(id)
			if !ok {
				t.Fatalf("runner %q not registered", id)
			}
			o := exp.Options{Scale: exp.Quick, Seed: 11}
			first, err := r.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			second, err := r.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			// params and fig21 are pure tables with no headline metrics.
			if len(first.Metrics) == 0 && id != "params" && id != "fig21" {
				t.Fatalf("runner %q reports no metrics", id)
			}
			if len(first.Metrics) != len(second.Metrics) {
				t.Fatalf("metric counts differ: %d vs %d", len(first.Metrics), len(second.Metrics))
			}
			for k, v := range first.Metrics {
				if w, ok := second.Metrics[k]; !ok || w != v {
					t.Errorf("metric %q differs across runs: %v vs %v", k, v, w)
				}
			}
		})
	}
}

// The same job grid through the sweep engine with 1 and N workers must
// produce byte-identical sorted JSONL.
func TestSweepOverRunnersDeterministic(t *testing.T) {
	var jobs []sweep.Job
	for _, id := range cheapRunners {
		r, ok := exp.Get(id)
		if !ok {
			t.Fatalf("runner %q not registered", id)
		}
		for _, seed := range []int64{1, 2, 3} {
			r, seed := r, seed
			jobs = append(jobs, sweep.Job{
				ID:   r.ID + "/" + string(rune('0'+seed)),
				Meta: map[string]string{"exp": r.ID},
				Run: func(int64) (map[string]float64, error) {
					rep, err := r.Run(exp.Options{Scale: exp.Quick, Seed: seed})
					if err != nil {
						return nil, err
					}
					return rep.Metrics, nil
				},
			})
		}
	}
	if len(jobs) < 16 {
		t.Fatalf("grid has %d jobs, want >= 16", len(jobs))
	}
	run := func(workers int) []byte {
		sink := &sweep.MemorySink{}
		sum, err := sweep.Run(sweep.Config{Workers: workers, BaseSeed: 5}, jobs, sink)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 || sum.Executed != len(jobs) {
			t.Fatalf("workers=%d summary %+v", workers, sum)
		}
		b, err := sweep.MarshalResults(sink.Results())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	if parallel := run(4); !bytes.Equal(serial, parallel) {
		t.Errorf("parallel sweep output differs from serial:\n%s\nvs\n%s", parallel, serial)
	}
}
