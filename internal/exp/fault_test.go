package exp

import (
	"sort"
	"testing"
)

// The headline acceptance scenario: a DCQCN FCT run with 0.1% data loss
// and 1% feedback (CNP/ack/NACK) loss, go-back-N recovery on. Every flow
// must finish, goodput must be positive, losses must actually have been
// injected and repaired, and the same seeds must reproduce the run
// exactly.
func TestFCTLossyDCQCNAcceptance(t *testing.T) {
	run := func() *FCTResult {
		r, err := RunFCT(FCTConfig{
			Protocol: ProtoDCQCN, LoadFactor: 0.5,
			Horizon: 0.1, Warmup: 0, Drain: 0.4, Seed: 7,
			DataLossRate: 0.001, CtrlLossRate: 0.01, FaultSeed: 42,
			Recovery: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run()
	if r.Completed != r.Generated || r.Unfinished != 0 {
		t.Fatalf("%d/%d flows completed under loss (unfinished %d)",
			r.Completed, r.Generated, r.Unfinished)
	}
	if r.Goodput <= 0 {
		t.Fatalf("goodput %d, want > 0", r.Goodput)
	}
	if r.WireDrops == 0 {
		t.Fatal("fault plan injected no losses")
	}
	if r.RetxBytes == 0 {
		t.Fatal("losses were injected but nothing was retransmitted")
	}
	if r.Goodput > r.RawTxBytes {
		t.Fatalf("goodput %d exceeds carried bytes %d", r.Goodput, r.RawTxBytes)
	}

	s := run()
	if r.Goodput != s.Goodput || r.RetxBytes != s.RetxBytes ||
		r.WireDrops != s.WireDrops || r.Completed != s.Completed ||
		r.RecoveryTime != s.RecoveryTime {
		t.Fatalf("same seeds diverged:\n%+v\nvs\n%+v", headline(r), headline(s))
	}
	a, b := append([]float64(nil), r.AllFCT...), append([]float64(nil), s.AllFCT...)
	sort.Float64s(a)
	sort.Float64s(b)
	if len(a) != len(b) {
		t.Fatalf("FCT sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FCT %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func headline(r *FCTResult) map[string]int64 {
	return map[string]int64{
		"goodput": r.Goodput, "retx": r.RetxBytes, "drops": r.WireDrops,
		"completed": int64(r.Completed),
	}
}

// With every fault knob zero the new machinery must be inert: no drops,
// no retransmissions, and the FaultSeed must not leak into the run.
func TestFCTFaultFieldsInertWhenZero(t *testing.T) {
	run := func(faultSeed int64) *FCTResult {
		r, err := RunFCT(FCTConfig{
			Protocol: ProtoDCQCN, LoadFactor: 0.5,
			Horizon: 0.08, Warmup: 0, Drain: 0.3, Seed: 3,
			FaultSeed: faultSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run(1)
	if r.WireDrops != 0 || r.BufferDrops != 0 || r.RetxBytes != 0 || r.RecoveryTime != 0 {
		t.Fatalf("fault-free run reports fault work: %+v", headline(r))
	}
	if r.Completed != r.Generated {
		t.Fatalf("%d/%d flows completed", r.Completed, r.Generated)
	}
	s := run(99)
	if r.Goodput != s.Goodput || len(r.AllFCT) != len(s.AllFCT) {
		t.Fatal("FaultSeed changed a run with no faults configured")
	}
	for i := range r.AllFCT {
		if r.AllFCT[i] != s.AllFCT[i] {
			t.Fatalf("FCT %d differs with unused FaultSeed: %v vs %v", i, r.AllFCT[i], s.AllFCT[i])
		}
	}
}

// Finite switch buffers without PFC: overflow tail-drops must be counted
// and recovery must still finish every flow.
func TestFCTFiniteBufferTailDrops(t *testing.T) {
	r, err := RunFCT(FCTConfig{
		Protocol: ProtoDCQCN, LoadFactor: 0.8,
		Horizon: 0.08, Warmup: 0, Drain: 0.4, Seed: 5,
		Recovery:       true,
		SwitchQueueCap: 30000, // ~20 MTU — small enough that bursts overflow
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.BufferDrops == 0 {
		t.Fatal("30KB switch buffers at load 0.8 should tail-drop")
	}
	if r.Completed != r.Generated {
		t.Fatalf("%d/%d flows completed after tail drops", r.Completed, r.Generated)
	}
}

// The registered fault runners at Quick scale: recovery keeps everything
// finishing, and the degradation metrics move the right way.
func TestFaultRunnerShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sims skipped in -short mode")
	}
	o := Options{Scale: Quick, Seed: 1}

	t.Run("faultloss", func(t *testing.T) {
		rep, err := mustRun(t, "faultloss", o)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range []string{"DCQCN", "TIMELY"} {
			for _, loss := range []string{"0", "0.001", "0.01"} {
				key := proto + "_loss" + loss
				if n := rep.Metrics["unfinished_"+key]; n != 0 {
					t.Errorf("%s: %v flows unfinished, recovery should finish all", key, n)
				}
			}
			if rep.Metrics["retx_kb_"+proto+"_loss0"] != 0 {
				t.Errorf("%s retransmitted without loss", proto)
			}
			if rep.Metrics["retx_kb_"+proto+"_loss0.01"] == 0 {
				t.Errorf("%s: 1%% loss produced no retransmissions", proto)
			}
			if rep.Metrics["efficiency_"+proto+"_loss0.01"] >= rep.Metrics["efficiency_"+proto+"_loss0"] {
				t.Errorf("%s: efficiency did not fall with loss (%v vs %v)", proto,
					rep.Metrics["efficiency_"+proto+"_loss0.01"],
					rep.Metrics["efficiency_"+proto+"_loss0"])
			}
		}
	})

	t.Run("faultcnp", func(t *testing.T) {
		rep, err := mustRun(t, "faultcnp", o)
		if err != nil {
			t.Fatal(err)
		}
		// Starving the control loop of CNPs must push the queue's
		// operating point up; the precise factor is seed-dependent.
		clean, starved := rep.Metrics["q_mean_kb_loss0"], rep.Metrics["q_mean_kb_loss0.9"]
		if starved <= clean {
			t.Errorf("queue mean with 90%% CNP loss %v KB not above clean %v KB", starved, clean)
		}
		if rep.Metrics["q_max_kb_loss0.9"] <= rep.Metrics["q_max_kb_loss0"] {
			t.Errorf("queue max with 90%% CNP loss %v KB not above clean %v KB",
				rep.Metrics["q_max_kb_loss0.9"], rep.Metrics["q_max_kb_loss0"])
		}
	})
}
