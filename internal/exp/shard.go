package exp

import (
	"fmt"
	"sort"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// runNet drives nw to end on the engine the options ask for: the serial
// simulator for shards ≤ 1 (the historical nw.Sim.RunUntil call,
// byte-identical) or the sharded window loop. Partitioning happens here —
// after the caller finished building topology, fault plans and workload
// hooks — so every RNG-drawing port is visible to netsim.DefaultAssign's
// pinning pass. More shards than nodes is a configuration error, rejected
// before DefaultAssign's load-balancing clamp can paper over it.
func runNet(nw *netsim.Network, shards int, end des.Time) error {
	if shards > nw.NodeCount() {
		return fmt.Errorf("exp: %d shards exceed the network's %d nodes", shards, nw.NodeCount())
	}
	if shards > 1 {
		if err := nw.PartitionByNode(netsim.DefaultAssign(nw, shards)); err != nil {
			return err
		}
	}
	nw.RunUntil(end)
	return nil
}

// fctRec is one completion captured during a sharded run, replayed after
// the run in serial-equivalent order.
type fctRec struct {
	at   des.Time
	flow int
	fct  float64
}

// sortRecs orders captured completions the way the serial heap fires them:
// by completion instant, ties by flow id (symmetric same-instant
// completions are scheduled in flow creation order serially, so flow id
// reproduces the serial tie-break). Shard goroutines append completions in
// wall-clock race order; this replay makes the derived slices — and every
// float accumulation over them — independent of that order.
func sortRecs(recs []fctRec) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].at != recs[j].at {
			return recs[i].at < recs[j].at
		}
		return recs[i].flow < recs[j].flow
	})
}
