package exp

// Extensions: the §7 "future work" items the paper names — multiple
// bottlenecks, PFC-induced PAUSE effects, and the PI controller running in
// the switch datapath rather than only in the fluid model.

import (
	"fmt"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
)

func init() {
	register(Runner{
		ID: "extmultihop", Title: "Multi-bottleneck (parking lot) fairness", Figure: "§7 future work",
		Run: runExtMultihop,
	})
	register(Runner{
		ID: "extpfc", Title: "PFC-induced PAUSE: head-of-line blocking and the CC rescue", Figure: "§7 future work",
		Run: runExtPFC,
	})
	register(Runner{
		ID: "extpi", Title: "PI marking in the switch datapath (packet level)", Figure: "§7 future work",
		Run: runExtPI,
	})
}

// runExtMultihop puts one long DCQCN flow across every trunk of a 3-switch
// parking lot against a cross flow on each trunk, and reports the
// throughput split: the long flow is marked at two bottlenecks and ends
// below the per-trunk fair share — the multi-bottleneck behaviour the
// single-bottleneck fluid models cannot express.
func runExtMultihop(o Options) (*Report, error) {
	rep := &Report{ID: "extmultihop", Title: "DCQCN on the parking-lot chain"}
	horizon := 0.12
	if o.Scale == Quick {
		horizon = 0.06
	}
	nw := netsim.New(o.Seed)
	pl := netsim.NewParkingLot(nw, netsim.ParkingLotConfig{
		Hops: 3,
		Link: netsim.LinkConfig{Bandwidth: 5e9, PropDelay: des.Microsecond},
		Mark: func() netsim.Marker {
			return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
		},
	})
	params := dcqcn.DefaultParams()
	for _, r := range pl.Recvs {
		if _, err := dcqcn.NewEndpoint(r, params); err != nil {
			return nil, err
		}
	}
	// The long flow S0→R2 crosses trunks 0 and 1. Each trunk also gets
	// one single-hop cross flow, chosen so no flow shares a sender NIC
	// with another: R0→S1 loads trunk 0 (any host may send) and S1→R2
	// loads trunk 1.
	type flowDef struct {
		name string
		src  *netsim.Host
		dst  *netsim.Host
	}
	defs := []flowDef{
		{"long S0→R2 (2 trunks)", pl.Senders[0], pl.Recvs[2]},
		{"cross R0→S1 (trunk 0)", pl.Recvs[0], pl.Senders[1]},
		{"cross S1→R2 (trunk 1)", pl.Senders[1], pl.Recvs[2]},
	}
	// The cross destinations must also run endpoints (S1 receives).
	if _, err := dcqcn.NewEndpoint(pl.Senders[1], params); err != nil {
		return nil, err
	}
	var senders []*dcqcn.Sender
	for i, d := range defs {
		var ep *dcqcn.Endpoint
		var err error
		if d.src.Transport == nil {
			ep, err = dcqcn.NewEndpoint(d.src, params)
			if err != nil {
				return nil, err
			}
		} else {
			ep = d.src.Transport.(*dcqcn.Endpoint)
		}
		s, err := ep.NewFlow(i, d.dst.ID(), -1, 0)
		if err != nil {
			return nil, err
		}
		senders = append(senders, s)
	}
	rates := make([]*stats.Series, len(senders))
	for i := range rates {
		rates[i] = &stats.Series{}
	}
	nw.Sim.Every(0, 100*des.Microsecond, func() {
		ts := nw.Sim.Now().Seconds()
		for i, s := range senders {
			rates[i].Add(ts, s.Rate())
		}
	})
	if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
		return nil, err
	}

	tbl := Table{Cols: []string{"flow", "rate Gb/s", "share of 40G"}}
	var longRate, crossMean float64
	for i, d := range defs {
		m := rates[i].WindowSummary(horizon*0.6, horizon).Mean
		tbl.Rows = append(tbl.Rows, []string{d.name, f2(m * 8 / 1e9), f3(m * 8 / 40e9)})
		if i == 0 {
			longRate = m
		} else {
			crossMean += m / 2
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddMetric("long_over_cross", longRate/crossMean)
	rep.Notes = append(rep.Notes,
		"the long flow is marked at every bottleneck it crosses and settles below the single-hop cross flows — proportional-fair-like, not max-min, pressure")
	return rep, nil
}

// rawBlaster pumps MTU packets at a fixed rate with no congestion control,
// standing in for a misbehaving (or simply non-CC) RoCE sender.
type rawBlaster struct {
	h    *netsim.Host
	dst  int
	rate float64
}

func (r *rawBlaster) start() {
	var loop func()
	gap := des.DurationFromSeconds(netsim.DataMTU / r.rate)
	loop = func() {
		r.h.Send(&netsim.Packet{Flow: -1, Dst: r.dst, Size: netsim.DataMTU, Kind: netsim.Data, ECT: true})
		r.h.Sim().Schedule(gap, loop)
	}
	r.h.Sim().Schedule(0, loop)
}

// runExtPFC shows PFC's head-of-line blocking: two line-rate senders
// overload one receiver, and a victim flow toward a different, idle
// receiver collapses once PFC pauses the shared trunk — unless DCQCN keeps
// the queues below the PFC threshold in the first place.
func runExtPFC(o Options) (*Report, error) {
	rep := &Report{ID: "extpfc", Title: "PFC PAUSE propagation on the dumbbell"}
	horizon := 0.05
	if o.Scale == Quick {
		horizon = 0.02
	}
	const bw = 1.25e9 // 10 Gb/s

	run := func(pfc netsim.PFCConfig, useDCQCN bool) (victimShare float64, err error) {
		nw := netsim.New(o.Seed)
		var mark netsim.MarkerFactory
		if useDCQCN {
			mark = func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			}
		}
		// Host links 10 Gb/s, trunk 40 Gb/s: the overload forms at the
		// shared receiver's egress inside SW2, and PFC then pauses the
		// trunk that the victim's traffic also crosses.
		d := netsim.NewDumbbell(nw, netsim.DumbbellConfig{
			Senders: 3, Receivers: 2,
			Link:           netsim.LinkConfig{Bandwidth: bw, PropDelay: des.Microsecond},
			TrunkBandwidth: 4 * bw,
			Mark:           mark,
			PFC:            pfc,
		})
		victimRx := d.Receivers[1]
		victimBytes := int64(0)
		countVictim := func(pkt *netsim.Packet) {
			victimBytes += int64(pkt.Size)
		}
		if useDCQCN {
			params := dcqcn.DefaultParams()
			for _, r := range d.Receivers {
				ep, err := dcqcn.NewEndpoint(r, params)
				if err != nil {
					return 0, err
				}
				_ = ep
			}
			// Wrap the victim receiver to count bytes.
			inner := victimRx.Transport
			victimRx.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
				countVictim(pkt)
				inner.Handle(h, pkt)
			})
			for i, src := range d.Senders {
				ep, err := dcqcn.NewEndpoint(src, params)
				if err != nil {
					return 0, err
				}
				dst := d.Receivers[0]
				if i == 2 {
					dst = victimRx
				}
				if _, err := ep.NewFlow(i, dst.ID(), -1, 0); err != nil {
					return 0, err
				}
			}
		} else {
			victimRx.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
				countVictim(pkt)
			})
			for i, src := range d.Senders {
				dst := d.Receivers[0]
				if i == 2 {
					dst = victimRx
				}
				b := &rawBlaster{h: src, dst: dst.ID(), rate: bw}
				b.start()
			}
		}
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return 0, err
		}
		// The victim alone could use the full trunk share it asks for;
		// its fair entitlement here is ~bw/3 of the trunk (three flows),
		// but its own egress is idle, so anything far below bw/3 is HoL
		// damage.
		return float64(victimBytes) / horizon / bw, nil
	}

	tbl := Table{Cols: []string{"scenario", "victim throughput / line rate"}}
	cases := []struct {
		name  string
		pfc   netsim.PFCConfig
		dcqcn bool
		key   string
	}{
		{"raw senders, no PFC (infinite buffer)", netsim.PFCConfig{}, false, "raw_nopfc"},
		{"raw senders, PFC 300KB/150KB", netsim.PFCConfig{PauseBytes: 300e3, ResumeBytes: 150e3}, false, "raw_pfc"},
		{"DCQCN senders, PFC 300KB/150KB", netsim.PFCConfig{PauseBytes: 300e3, ResumeBytes: 150e3}, true, "dcqcn_pfc"},
	}
	for _, c := range cases {
		share, err := run(c.pfc, c.dcqcn)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{c.name, f3(share)})
		rep.AddMetric("victim_share_"+c.key, share)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"PFC pauses the whole trunk, so an innocent flow to an idle receiver is blocked behind the incast (head-of-line blocking);",
		"end-to-end congestion control keeps the switch queues below the PAUSE threshold and the victim recovers — the reason RoCEv2 needs DCQCN/TIMELY at all (§2)")
	return rep, nil
}

// runExtPI replaces RED with the Eq. 32 PI controller in the packet-level
// switch and shows the queue pinning at the reference for different flow
// counts — the fluid-model Figure 18 running in the datapath.
func runExtPI(o Options) (*Report, error) {
	rep := &Report{ID: "extpi", Title: "Packet-level DCQCN with PI AQM at the bottleneck"}
	horizon := 0.8
	ns := []int{2, 10}
	if o.Scale == Quick {
		horizon = 0.5
	}
	const qref = 50e3 // bytes
	tbl := Table{Cols: []string{"marking", "N", "queue KB (mean)", "queue CV"}}
	for _, usePI := range []bool{false, true} {
		for _, n := range ns {
			nw := netsim.New(o.Seed)
			star := netsim.NewStar(nw, netsim.StarConfig{
				Senders: n,
				Link:    netsim.LinkConfig{Bandwidth: 5e9, PropDelay: des.Microsecond},
				Mark: func() netsim.Marker {
					if usePI {
						// Gains mirror the fluid Figure 18 controller (per byte);
						// PMax is the anti-windup cap sized just above the
						// largest equilibrium marking probability in the sweep.
						return &netsim.PIMarker{K1: 2e-8, K2: 1e-6, QRef: qref, PMax: 0.02, Rng: nw.Rng}
					}
					return &netsim.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
				},
			})
			if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
				return nil, err
			}
			for i, h := range star.Senders {
				ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
				if err != nil {
					return nil, err
				}
				if _, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0); err != nil {
					return nil, err
				}
			}
			qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
			if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
				return nil, err
			}
			q := qs.WindowSummary(horizon*0.6, horizon)
			name := "RED"
			if usePI {
				name = "PI"
			}
			tbl.Rows = append(tbl.Rows, []string{name, fmt.Sprint(n), f1(q.Mean / 1000), f2(q.CV())})
			rep.AddMetric(fmt.Sprintf("%s_q_kb_N%d", name, n), q.Mean/1000)
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.AddMetric("qref_kb", qref/1000)
	rep.Notes = append(rep.Notes,
		"RED's operating queue grows with N (Eq. 9/14); the PI controller holds the MEAN at the reference independent of N — §7's 'full exploration of PI like controllers' running on packets",
		"the packet-level PI orbit is noisier than the fluid one (Fig. 18): marking is Bernoulli and DCQCN's line-rate starts slam the integrator against its anti-windup cap")
	return rep, nil
}
