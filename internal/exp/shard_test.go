package exp

import (
	"reflect"
	"sort"
	"testing"

	"ecndelay/internal/obs"
)

// The sharded engine's headline guarantee: -shards N is metrics-identical
// to -shards 1 for EVERY registered experiment. Fluid-model experiments
// ignore Shards and pass trivially; every packet-level runner exercises
// partitioning, cross-shard mailboxes and the window protocol for real.
// The matrix is the expensive anchor of the guarantee, so it skips under
// -short (the race gate runs TestShardedRunUnderRace instead).
func TestShardedMetricsMatchSerialEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment matrix; see TestShardedRunUnderRace for the -short gate")
	}
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			serial, err := r.Run(Options{Scale: Quick, Seed: 42})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			sharded, err := r.Run(Options{Scale: Quick, Seed: 42, Shards: 4})
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if !reflect.DeepEqual(serial.Metrics, sharded.Metrics) {
				t.Errorf("metrics diverge:\nserial : %v\nsharded: %v", serial.Metrics, sharded.Metrics)
			}
			if !reflect.DeepEqual(serial.Tables, sharded.Tables) {
				t.Errorf("rendered tables diverge:\nserial : %+v\nsharded: %+v", serial.Tables, sharded.Tables)
			}
		})
	}
}

// Any two shard counts agree with each other, not just with serial: the
// trajectory is a property of the network, not of the partition.
func TestShardedTwoVsFourConsistent(t *testing.T) {
	r, ok := Get("closincast")
	if !ok {
		t.Fatal("no closincast runner")
	}
	two, err := r.Run(Options{Scale: Quick, Seed: 7, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	four, err := r.Run(Options{Scale: Quick, Seed: 7, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(two.Metrics, four.Metrics) {
		t.Errorf("2-shard and 4-shard metrics diverge:\n2: %v\n4: %v", two.Metrics, four.Metrics)
	}
}

// A sharded run under the race detector: small enough for the -short race
// gate, real enough to cross shard boundaries (Clos incast fans 15 hosts
// across 4 shards). Also asserts the run used more than one shard — a
// silently serial fallback would make the race coverage vacuous.
func TestShardedRunUnderRace(t *testing.T) {
	r, ok := Get("closincast")
	if !ok {
		t.Fatal("no closincast runner")
	}
	serial, err := r.Run(Options{Scale: Quick, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := r.Run(Options{Scale: Quick, Seed: 11, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Metrics, sharded.Metrics) {
		t.Errorf("metrics diverge:\nserial : %v\nsharded: %v", serial.Metrics, sharded.Metrics)
	}
}

// Attaching the full observability stack (counters, trace, invariant
// checker, probes, histograms) to a sharded run must not perturb it: the
// A (unobserved) and B (observed) runs produce identical metrics, and the
// checker — including the cross-shard byte-conservation audit — is clean.
func TestShardedObserverAB(t *testing.T) {
	r, ok := Get("closincast")
	if !ok {
		t.Fatal("no closincast runner")
	}
	plain, err := r.Run(Options{Scale: Quick, Seed: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.Full()
	observed, err := r.Run(Options{Scale: Quick, Seed: 3, Shards: 4, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Metrics, observed.Metrics) {
		t.Errorf("observer perturbed the sharded run:\nplain   : %v\nobserved: %v", plain.Metrics, observed.Metrics)
	}
	if err := o.Check.Err(); err != nil {
		t.Errorf("invariants violated in sharded run: %v", err)
	}
	if o.Check.Count(obs.InvShardHandoff) != 0 {
		t.Errorf("shard handoff audit flagged %d edges", o.Check.Count(obs.InvShardHandoff))
	}
	if n := o.Metrics.Gauge("shard.count").Value(); n != 4 {
		t.Errorf("shard.count gauge = %d, want 4", n)
	}
	if o.Metrics.Gauge("shard.windows").Value() == 0 {
		t.Error("shard.windows gauge never advanced")
	}
}

// collectSink accumulates trace events for the trace-identity test.
type collectSink struct{ evs []obs.Event }

func (c *collectSink) Event(e obs.Event) { c.evs = append(c.evs, e) }

// Beyond metrics: the full per-node event trace of a sharded run is
// identical to serial. Events are grouped by (network, node) because the
// global interleaving across shards is nondeterministic wall-clock order;
// each node's own stream — enqueues, dequeues, marks, pauses, deliveries
// in simulation order — must match event for event. Packet ids are masked
// (shards mint from disjoint id blocks by design).
func TestShardedTraceIdenticalPerNode(t *testing.T) {
	type nodeKey struct {
		run  int
		node int32
	}
	group := func(evs []obs.Event) map[nodeKey][]obs.Event {
		runMap := map[uint32]int{}
		out := map[nodeKey][]obs.Event{}
		for _, e := range evs {
			r, ok := runMap[e.Run]
			if !ok {
				r = len(runMap)
				runMap[e.Run] = r
			}
			k := nodeKey{run: r, node: e.Node}
			e.Run, e.Pkt = 0, 0
			out[k] = append(out[k], e)
		}
		return out
	}
	trace := func(shards int) map[nodeKey][]obs.Event {
		sink := &collectSink{}
		o := &obs.NetObserver{Trace: obs.NewTracer(sink)}
		r, ok := Get("closincast")
		if !ok {
			t.Fatal("no closincast runner")
		}
		if _, err := r.Run(Options{Scale: Quick, Seed: 42, Observer: o, Shards: shards}); err != nil {
			t.Fatal(err)
		}
		return group(sink.evs)
	}
	serial := trace(1)
	sharded := trace(4)
	if len(serial) != len(sharded) {
		t.Fatalf("node set differs: %d vs %d", len(serial), len(sharded))
	}
	var keys []nodeKey
	for k := range serial {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].run != keys[j].run {
			return keys[i].run < keys[j].run
		}
		return keys[i].node < keys[j].node
	})
	for _, k := range keys {
		a, b := serial[k], sharded[k]
		if len(a) != len(b) {
			t.Errorf("run %d node %d: %d events serial, %d sharded", k.run, k.node, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("run %d node %d event %d diverges:\nserial : %+v\nsharded: %+v",
					k.run, k.node, i, a[i], b[i])
				break
			}
		}
	}
}

// Shards beyond the node count must be rejected with a descriptive error,
// at the harness level too (packetsim pre-checks; this covers runNet).
func TestShardCountValidation(t *testing.T) {
	r, ok := Get("fig17")
	if !ok {
		t.Fatal("no fig17 runner")
	}
	_, err := r.Run(Options{Scale: Quick, Seed: 1, Shards: 100000})
	if err == nil {
		t.Fatal("expected error for absurd shard count")
	}
	if want := "exceed"; !containsStr(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
