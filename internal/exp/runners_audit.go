package exp

// Control-loop audit scenario: the observability extension. The paper's
// lesson is that DCQCN behaviour is governed by the feedback loop — how
// fast a queue excursion becomes a CE mark, a CNP, and finally a rate
// cut. This runner attaches the control-loop audit trail to the Figure 5
// style incast and measures that chain end to end: every rate cut is
// attributed to the mark episode that caused it, and the mark→cut
// latency distribution is reported directly. The faultcnp variant drops
// CNPs on the reverse path, so mark episodes whose notifications all die
// show up as orphans — congestion the senders never heard about.

import (
	"fmt"

	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
	"ecndelay/internal/stats"
)

func init() {
	register(Runner{
		ID: "auditloop", Title: "Causal mark→CNP→rate-cut audit of the DCQCN control loop", Figure: "observability extension",
		Run: runAuditLoop,
	})
}

// auditLoopStats is the offline reduction of one audited run.
type auditLoopStats struct {
	cuts       int
	attributed int
	episodes   int
	orphans    int
	latP50     float64 // mark-episode open → rate cut, seconds
	latP99     float64
}

// reduceAudit reconstructs attribution from the decision stream: each
// DCQCN rate cut names the episode stamped on its CNP, each episode-open
// record carries the episode's start time, and an episode no cut ever
// names is an orphan — its feedback was lost before any sender reacted.
func reduceAudit(decs []obs.Decision) (auditLoopStats, error) {
	var st auditLoopStats
	openT := make(map[uint64]des.Time)
	cutBy := make(map[uint64]int)
	var lats []float64
	for _, d := range decs {
		switch d.Type {
		case obs.DecMarkOpen:
			st.episodes++
			openT[d.Episode] = d.T
		case obs.DecRateCut:
			st.cuts++
			if d.Episode != 0 {
				st.attributed++
				cutBy[d.Episode]++
				if t0, ok := openT[d.Episode]; ok && cutBy[d.Episode] == 1 {
					// The episode's first cut: the end-to-end feedback
					// delay from the switch flagging congestion to the
					// first sender reacting. Later cuts of the same
					// episode measure the CNP cadence, not the loop.
					lats = append(lats, d.T.Sub(t0).Seconds())
				}
			}
		}
	}
	for ep := range openT {
		if cutBy[ep] == 0 {
			st.orphans++
		}
	}
	if len(lats) > 0 {
		var err error
		if st.latP50, err = stats.Percentile(lats, 50); err != nil {
			return st, err
		}
		if st.latP99, err = stats.Percentile(lats, 99); err != nil {
			return st, err
		}
	}
	return st, nil
}

// runAuditLoop runs the 10-sender DCQCN incast with the audit trail
// attached, fault-free and with 90% CNP loss. Fault-free, every cut must
// be attributed to exactly one mark episode; under CNP loss the orphaned
// episodes are the audit-level signature of a broken feedback channel.
func runAuditLoop(o Options) (*Report, error) {
	rep := &Report{ID: "auditloop", Title: "DCQCN control-loop audit: episode attribution and feedback latency"}
	horizon := 0.05
	if o.Scale == Full {
		horizon = 0.2
	}
	tbl := Table{Cols: []string{"CNP loss", "cuts", "attributed", "episodes", "orphans", "mark→cut p50 µs", "p99 µs"}}
	for _, rate := range []float64{0, 0.9, 1} {
		mem := obs.NewAuditMemorySink(1 << 16)
		sinks := []obs.DecisionSink{mem}
		var ob *obs.NetObserver
		if o.Observer != nil {
			cp := *o.Observer
			if cp.Audit != nil {
				// Keep the run-wide trail (e.g. ecnbench -audit) attached:
				// it chains as a sink behind the private in-memory view.
				sinks = append(sinks, cp.Audit)
			}
			cp.Audit = obs.NewAuditTrail(sinks...)
			ob = &cp
		} else {
			ob = &obs.NetObserver{Audit: obs.NewAuditTrail(sinks...), Hists: obs.NewHistSet()}
		}
		nw := netsim.New(o.Seed)
		nw.SetObserver(ob)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 10,
			Link:    netsim.LinkConfig{Bandwidth: 5e9, PropDelay: des.Microsecond},
			// The Figure 5 operating point: 85 µs of extra feedback delay
			// makes the loop visibly oscillatory, so the queue swings
			// through Kmin and mark episodes open and close repeatedly.
			CtrlExtraDelay: 85 * des.Microsecond,
			Mark: func() netsim.Marker {
				// Kmin sits near the loop's operating queue depth, so
				// episodes open and close as the queue oscillates through
				// it — each excursion is one episode, not one run-long one.
				return &netsim.REDMarker{Kmin: 50000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
			},
		})
		if _, err := dcqcn.NewEndpoint(star.Receiver, dcqcn.DefaultParams()); err != nil {
			return nil, err
		}
		for i, h := range star.Senders {
			ep, err := dcqcn.NewEndpoint(h, dcqcn.DefaultParams())
			if err != nil {
				return nil, err
			}
			if _, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0); err != nil {
				return nil, err
			}
		}
		if rate > 0 {
			(&fault.Plan{Seed: o.Seed + 7, Links: []fault.LinkFaults{{
				Port: star.Receiver.Port(),
				Loss: []fault.Loss{{Kinds: fault.SelCNP, Rate: rate}},
			}}}).Apply(nw)
		}
		if err := runNet(nw, o.Shards, des.Time(des.DurationFromSeconds(horizon))); err != nil {
			return nil, err
		}
		st, err := reduceAudit(mem.Decisions())
		if err != nil {
			return nil, err
		}
		if rate == 0 && st.attributed != st.cuts {
			return nil, fmt.Errorf("auditloop: %d of %d fault-free rate cuts unattributed", st.cuts-st.attributed, st.cuts)
		}
		attrFrac := 1.0
		if st.cuts > 0 {
			attrFrac = float64(st.attributed) / float64(st.cuts)
		}
		tbl.Rows = append(tbl.Rows, []string{
			eng(rate), fmt.Sprint(st.cuts), fmt.Sprint(st.attributed),
			fmt.Sprint(st.episodes), fmt.Sprint(st.orphans),
			f1(st.latP50 * 1e6), f1(st.latP99 * 1e6),
		})
		key := fmt.Sprintf("loss%g", rate)
		rep.AddMetric("cuts_"+key, float64(st.cuts))
		rep.AddMetric("attr_frac_"+key, attrFrac)
		rep.AddMetric("episodes_"+key, float64(st.episodes))
		rep.AddMetric("orphans_"+key, float64(st.orphans))
		rep.AddMetric("markcut_p50_us_"+key, st.latP50*1e6)
		rep.AddMetric("markcut_p99_us_"+key, st.latP99*1e6)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"fault-free, every rate cut traces back to exactly one mark episode and the mark→cut latency is the loop's feedback delay; under CNP loss, orphaned episodes — congestion the switch flagged but no sender ever heard about — are the audit-level signature Figure 4's delay sensitivity predicts")
	return rep, nil
}
