package fault

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// FuzzPlanValidateApply drives Plan construction with arbitrary parameters.
// The contract under test: Validate classifies every input as ok or error
// without panicking, Apply succeeds on everything Validate accepts (and a
// short simulation survives the installed hooks), and Apply panics — by
// documented contract — on exactly what Validate rejects.
//
// Run the seed corpus with go test; explore with:
//
//	go test ./internal/fault -fuzz FuzzPlanValidateApply -fuzztime 30s
func FuzzPlanValidateApply(f *testing.F) {
	// Valid i.i.d. rule.
	f.Add(uint8(SelData), 0.01, 0.0, 0.0, 0.0, 0.0, false, int64(0), int64(0), true, int64(1))
	// Valid burst rule.
	f.Add(uint8(SelCtrl), 0.0, 0.001, 0.2, 0.0, 1.0, true, int64(0), int64(0), true, int64(7))
	// Valid flap (down 1µs, up 2µs).
	f.Add(uint8(SelAll), 0.0, 0.0, 0.0, 0.0, 0.0, false, int64(1000), int64(2000), true, int64(3))
	// Empty selector: must be rejected.
	f.Add(uint8(0), 0.5, 0.0, 0.0, 0.0, 0.0, false, int64(0), int64(0), true, int64(1))
	// Rate outside [0,1]: must be rejected.
	f.Add(uint8(SelData), 1.5, 0.0, 0.0, 0.0, 0.0, false, int64(0), int64(0), true, int64(1))
	f.Add(uint8(SelData), -0.1, 0.0, 0.0, 0.0, 0.0, false, int64(0), int64(0), true, int64(1))
	// Burst probability outside [0,1]: must be rejected.
	f.Add(uint8(SelData), 0.0, 2.0, 0.5, 0.0, 1.0, true, int64(0), int64(0), true, int64(1))
	// Backwards flap (up before down): must be rejected.
	f.Add(uint8(SelData), 0.01, 0.0, 0.0, 0.0, 0.0, false, int64(2000), int64(1000), true, int64(1))
	// Missing port: must be rejected.
	f.Add(uint8(SelData), 0.01, 0.0, 0.0, 0.0, 0.0, false, int64(0), int64(0), false, int64(1))
	// NaN-adjacent extremes.
	f.Add(uint8(SelPFC), 1.0, 1.0, 1.0, 1.0, 1.0, true, int64(-5), int64(-1), true, int64(-1))

	f.Fuzz(func(t *testing.T, sel uint8, rate, pgb, pbg, lossGood, lossBad float64,
		useBurst bool, downAt, upAt int64, withPort bool, seed int64) {
		nw := netsim.New(1)
		rx := nw.NewHost()
		tx := nw.NewHost()
		port := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
		rx.Connect(tx, 1.25e8, des.Microsecond, nil)
		rx.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {})

		loss := Loss{Kinds: Selector(sel), Rate: rate}
		if useBurst {
			loss.Burst = &GilbertElliott{PGB: pgb, PBG: pbg, LossGood: lossGood, LossBad: lossBad}
		}
		lf := LinkFaults{Loss: []Loss{loss}}
		if withPort {
			lf.Port = port
		}
		if downAt != 0 || upAt != 0 {
			lf.Flaps = []Flap{{DownAt: des.Time(downAt), UpAt: des.Time(upAt)}}
		}
		plan := &Plan{Seed: seed, Links: []LinkFaults{lf}}

		err := plan.Validate() // must classify, never panic
		defer func() {
			r := recover()
			if err == nil && r != nil {
				t.Fatalf("Apply panicked on a plan Validate accepted: %v", r)
			}
			if err != nil && r == nil {
				t.Fatalf("Apply did not panic on a plan Validate rejected: %v", err)
			}
		}()
		a := plan.Apply(nw)
		// The installed hooks must survive real traffic and teardown.
		for i := 0; i < 20; i++ {
			tx.Send(&netsim.Packet{Dst: rx.ID(), Size: netsim.DataMTU, Kind: netsim.Data})
		}
		nw.Sim.RunUntil(des.Time(5 * des.Millisecond))
		_ = a.Drops()
		_ = a.LinkDrops(0)
		a.Remove()
	})
}

// FuzzSelectorMatches pins that Matches is total over arbitrary selector
// bytes and every wire kind — no combination may panic or report a kind
// outside the selector's bit set.
func FuzzSelectorMatches(f *testing.F) {
	f.Add(uint8(SelData))
	f.Add(uint8(SelCtrl))
	f.Add(uint8(SelAll))
	f.Add(uint8(0))
	f.Add(uint8(0xFF))
	kinds := []netsim.Kind{netsim.Data, netsim.Ack, netsim.CNP, netsim.Pause, netsim.Resume, netsim.Nack}
	f.Fuzz(func(t *testing.T, raw uint8) {
		s := Selector(raw)
		any := false
		for _, k := range kinds {
			if s.Matches(k) {
				any = true
			}
		}
		if s&SelAll != 0 && !any {
			t.Errorf("selector %08b covers wire kinds but matched none", raw)
		}
		if s&SelAll == 0 && any {
			t.Errorf("selector %08b covers no wire kinds but matched one", raw)
		}
	})
}
