// Package fault injects failures into netsim networks: random and bursty
// packet loss, and link flaps. RoCE deployments assume a lossless fabric —
// the paper's protocols were designed with PFC underneath them — so the
// interesting robustness questions are exactly what happens when that
// assumption breaks: a flaky optic dropping data packets, a congested
// management path losing CNPs, a link that bounces.
//
// Everything is declarative and seeded: a Plan lists per-link loss rules
// and flap schedules, Apply installs them, and the injector draws from its
// own splitmix64-derived RNG — never the network's — so two runs of the
// same plan drop the same packets, and a run with no plan (or an empty
// one) is bit-identical to a build where this package does not exist.
package fault

import (
	"fmt"
	"math/rand"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// Selector is a bitmask choosing which packet kinds a loss rule applies
// to. Separating data from feedback matters: the paper's control loops
// react very differently to losing payload (retransmit, stall) than to
// losing the CNP/ACK signal that drives the rate computation.
type Selector uint8

// Selector bits, one per wire kind, plus the common unions.
const (
	SelData Selector = 1 << iota
	SelAck
	SelCNP
	SelNack
	SelPFC // PAUSE and RESUME frames

	SelCtrl = SelAck | SelCNP | SelNack // protocol feedback
	SelAll  = SelData | SelCtrl | SelPFC
)

// Matches reports whether the selector covers the packet kind.
func (s Selector) Matches(k netsim.Kind) bool {
	switch k {
	case netsim.Data:
		return s&SelData != 0
	case netsim.Ack:
		return s&SelAck != 0
	case netsim.CNP:
		return s&SelCNP != 0
	case netsim.Nack:
		return s&SelNack != 0
	case netsim.Pause, netsim.Resume:
		return s&SelPFC != 0
	}
	return false
}

// GilbertElliott parameterises the classic two-state burst-loss channel: a
// Good and a Bad state with per-packet transition probabilities and a loss
// probability in each state. Bursty loss is the realistic regime for
// optics and marginal cables — and it stresses go-back-N far harder than
// the same average rate spread i.i.d.
type GilbertElliott struct {
	PGB      float64 // P(Good → Bad) per packet
	PBG      float64 // P(Bad → Good) per packet
	LossGood float64 // loss probability in Good (often 0)
	LossBad  float64 // loss probability in Bad (often 1)
}

// Loss is one loss rule on a link: the kinds it applies to and either an
// i.i.d. rate or a Gilbert–Elliott burst model (Burst non-nil wins). The
// first rule on a link that matches a packet's kind decides its fate.
type Loss struct {
	Kinds Selector
	Rate  float64
	Burst *GilbertElliott
}

// Flap takes a link down at DownAt and back up at UpAt. UpAt of zero means
// the link never recovers. While down the port refuses to transmit and
// in-flight packets are lost (netsim.Port.SetLinkDown semantics).
type Flap struct {
	DownAt des.Time
	UpAt   des.Time
}

// LinkFaults attaches loss rules and a flap schedule to one port (one
// direction of a link — fault both ports for a symmetric failure).
type LinkFaults struct {
	Port  *netsim.Port
	Loss  []Loss
	Flaps []Flap
}

// Plan is a complete fault scenario. The zero value (or a nil pointer) is
// the healthy network; Apply of such a plan installs nothing.
type Plan struct {
	// Seed drives every loss draw. Each link's injector gets an
	// independent stream derived from (Seed, link index), so adding a
	// faulty link never reshuffles the losses on another.
	Seed  int64
	Links []LinkFaults
}

// Validate reports the first configuration error, or nil.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, lf := range p.Links {
		if lf.Port == nil {
			return fmt.Errorf("fault: link %d has no port", i)
		}
		for j, l := range lf.Loss {
			if l.Kinds == 0 {
				return fmt.Errorf("fault: link %d loss %d selects no kinds", i, j)
			}
			if l.Burst != nil {
				for _, v := range []float64{l.Burst.PGB, l.Burst.PBG, l.Burst.LossGood, l.Burst.LossBad} {
					if v < 0 || v > 1 {
						return fmt.Errorf("fault: link %d loss %d burst probability %v outside [0,1]", i, j, v)
					}
				}
			} else if l.Rate < 0 || l.Rate > 1 {
				return fmt.Errorf("fault: link %d loss %d rate %v outside [0,1]", i, j, l.Rate)
			}
		}
		for j, f := range lf.Flaps {
			if f.DownAt < 0 || f.UpAt < 0 {
				return fmt.Errorf("fault: link %d flap %d has a negative time (down %v, up %v)",
					i, j, f.DownAt, f.UpAt)
			}
			if f.UpAt != 0 && f.UpAt <= f.DownAt {
				return fmt.Errorf("fault: link %d flap %d comes up at %v, not after down at %v",
					i, j, f.UpAt, f.DownAt)
			}
		}
	}
	return nil
}

// Applied is a live fault scenario: it exposes injection counters and can
// tear the hooks back down.
type Applied struct {
	plan      *Plan
	injectors []*injector // parallel to plan.Links; nil where no loss rules
}

// Apply installs the plan on the network: loss hooks on each faulted port
// and flap transitions on the simulator clock. It panics on an invalid
// plan (a programming error, like a bad topology). Applying a nil or empty
// plan is a no-op that leaves the network untouched.
func (p *Plan) Apply(nw *netsim.Network) *Applied {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &Applied{plan: p}
	if p == nil {
		return a
	}
	a.injectors = make([]*injector, len(p.Links))
	for i, lf := range p.Links {
		if len(lf.Loss) > 0 {
			in := newInjector(deriveSeed(p.Seed, i), lf.Loss)
			lf.Port.SetFaultHook(in)
			a.injectors[i] = in
		}
		for _, f := range lf.Flaps {
			port := lf.Port
			nw.Sim.At(f.DownAt, func() { port.SetLinkDown(true) })
			if f.UpAt != 0 {
				nw.Sim.At(f.UpAt, func() { port.SetLinkDown(false) })
			}
		}
	}
	return a
}

// Remove uninstalls the loss hooks (already-scheduled flaps still fire;
// cancel them by not running the simulator past their times).
func (a *Applied) Remove() {
	for i, in := range a.injectors {
		if in != nil {
			a.plan.Links[i].Port.SetFaultHook(nil)
		}
	}
}

// Drops reports the total packets dropped by loss injection across all
// links (flap losses are counted by each port's WireDrops instead).
func (a *Applied) Drops() int64 {
	var n int64
	for _, in := range a.injectors {
		if in != nil {
			n += in.total
		}
	}
	return n
}

// LinkDrops reports injected losses on link i of the plan.
func (a *Applied) LinkDrops(i int) int64 {
	if in := a.injectors[i]; in != nil {
		return in.total
	}
	return 0
}

// deriveSeed maps (base, index) to a well-mixed per-link seed via the
// splitmix64 finalizer (same construction as sweep.DeriveSeed, copied to
// keep the dependency arrow pointing one way).
func deriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// injector implements netsim.FaultHook for one port. It owns a private
// RNG: loss draws must not advance the network RNG, or enabling faults
// would perturb ECN marking and jitter in otherwise-identical runs.
type injector struct {
	rng   *rand.Rand
	rules []lossRule
	total int64
}

type lossRule struct {
	sel   Selector
	rate  float64
	ge    *geState
	drops int64
}

// geState is the running Gilbert–Elliott channel state for one rule.
type geState struct {
	GilbertElliott
	bad bool
}

func newInjector(seed int64, rules []Loss) *injector {
	in := &injector{rng: rand.New(rand.NewSource(seed))}
	for _, l := range rules {
		r := lossRule{sel: l.Kinds, rate: l.Rate}
		if l.Burst != nil {
			r.ge = &geState{GilbertElliott: *l.Burst}
		}
		in.rules = append(in.rules, r)
	}
	return in
}

// DropTx implements netsim.FaultHook: the first rule matching the packet's
// kind decides. Burst rules advance their channel state on every matching
// packet — dropped or not — so the burst structure is a property of the
// channel, not of what happens to ride over it.
func (in *injector) DropTx(pkt *netsim.Packet) bool {
	for i := range in.rules {
		r := &in.rules[i]
		if !r.sel.Matches(pkt.Kind) {
			continue
		}
		p := r.rate
		if r.ge != nil {
			g := r.ge
			if g.bad {
				if in.rng.Float64() < g.PBG {
					g.bad = false
				}
			} else {
				if in.rng.Float64() < g.PGB {
					g.bad = true
				}
			}
			if g.bad {
				p = g.LossBad
			} else {
				p = g.LossGood
			}
		}
		if p >= 1 || (p > 0 && in.rng.Float64() < p) {
			r.drops++
			in.total++
			return true
		}
		return false
	}
	return false
}
