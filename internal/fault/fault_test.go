package fault

import (
	"math"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

func TestSelectorMatches(t *testing.T) {
	cases := []struct {
		sel  Selector
		kind netsim.Kind
		want bool
	}{
		{SelData, netsim.Data, true},
		{SelData, netsim.Ack, false},
		{SelAck, netsim.Ack, true},
		{SelCNP, netsim.CNP, true},
		{SelNack, netsim.Nack, true},
		{SelPFC, netsim.Pause, true},
		{SelPFC, netsim.Resume, true},
		{SelPFC, netsim.Data, false},
		{SelCtrl, netsim.Ack, true},
		{SelCtrl, netsim.CNP, true},
		{SelCtrl, netsim.Nack, true},
		{SelCtrl, netsim.Data, false},
		{SelCtrl, netsim.Pause, false},
		{SelAll, netsim.Data, true},
		{SelAll, netsim.Pause, true},
		{SelAll, netsim.CNP, true},
	}
	for _, c := range cases {
		if got := c.sel.Matches(c.kind); got != c.want {
			t.Errorf("Selector %b Matches(%v) = %v, want %v", c.sel, c.kind, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	nw := netsim.New(1)
	rx := nw.NewHost()
	tx := nw.NewHost()
	p := tx.Connect(rx, 1e9, des.Microsecond, nil)

	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan must validate: %v", err)
	}
	bad := []Plan{
		{Links: []LinkFaults{{Port: nil}}},
		{Links: []LinkFaults{{Port: p, Loss: []Loss{{Kinds: 0, Rate: 0.1}}}}},
		{Links: []LinkFaults{{Port: p, Loss: []Loss{{Kinds: SelData, Rate: 1.5}}}}},
		{Links: []LinkFaults{{Port: p, Loss: []Loss{{Kinds: SelData, Burst: &GilbertElliott{PGB: 2}}}}}},
		{Links: []LinkFaults{{Port: p, Flaps: []Flap{{DownAt: 100, UpAt: 50}}}}},
	}
	for i := range bad {
		if bad[i].Validate() == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
	good := Plan{Seed: 7, Links: []LinkFaults{{
		Port:  p,
		Loss:  []Loss{{Kinds: SelData, Rate: 0.01}, {Kinds: SelCtrl, Burst: &GilbertElliott{PGB: 0.1, PBG: 0.5, LossBad: 1}}},
		Flaps: []Flap{{DownAt: 100, UpAt: 200}, {DownAt: 300}},
	}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

// The injector's i.i.d. loss converges on the configured rate.
func TestInjectorIIDRate(t *testing.T) {
	in := newInjector(1, []Loss{{Kinds: SelData, Rate: 0.1}})
	pkt := &netsim.Packet{Kind: netsim.Data}
	const n = 100000
	drops := 0
	for i := 0; i < n; i++ {
		if in.DropTx(pkt) {
			drops++
		}
	}
	frac := float64(drops) / n
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("drop fraction %v, want ~0.1", frac)
	}
	if in.total != int64(drops) {
		t.Errorf("total %d != counted %d", in.total, drops)
	}
}

// Gilbert–Elliott losses must cluster: same average rate as i.i.d. but
// with much longer runs of consecutive drops.
func TestInjectorBurstClusters(t *testing.T) {
	// Stationary bad fraction = PGB/(PGB+PBG) = 0.1/(0.1+0.9)... pick
	// PGB=0.02, PBG=0.18 → 10% of packets in Bad, LossBad=1 → ~10% loss,
	// mean burst length 1/PBG ≈ 5.6.
	in := newInjector(2, []Loss{{Kinds: SelData, Burst: &GilbertElliott{PGB: 0.02, PBG: 0.18, LossBad: 1}}})
	pkt := &netsim.Packet{Kind: netsim.Data}
	const n = 100000
	drops, runs, runLen := 0, 0, 0
	inRun := false
	for i := 0; i < n; i++ {
		if in.DropTx(pkt) {
			drops++
			runLen++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	frac := float64(drops) / n
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("burst loss fraction %v, want ~0.1", frac)
	}
	meanRun := float64(drops) / float64(runs)
	if meanRun < 3 {
		t.Errorf("mean burst length %v, want clustered (≥3); i.i.d. would be ~1.1", meanRun)
	}
}

// First matching rule decides: a rate-0 Data rule ahead of a rate-1 Data
// rule means no drops; swapping the order drops everything.
func TestInjectorFirstMatchWins(t *testing.T) {
	pkt := &netsim.Packet{Kind: netsim.Data}
	in := newInjector(1, []Loss{{Kinds: SelData, Rate: 0}, {Kinds: SelAll, Rate: 1}})
	for i := 0; i < 100; i++ {
		if in.DropTx(pkt) {
			t.Fatal("shadowed rate-1 rule fired")
		}
	}
	in = newInjector(1, []Loss{{Kinds: SelAll, Rate: 1}, {Kinds: SelData, Rate: 0}})
	if !in.DropTx(pkt) {
		t.Fatal("first rate-1 rule did not fire")
	}
	// A non-matching kind falls through to later rules.
	in = newInjector(1, []Loss{{Kinds: SelCNP, Rate: 1}, {Kinds: SelData, Rate: 1}})
	if !in.DropTx(pkt) {
		t.Fatal("Data packet must fall through the CNP rule to the Data rule")
	}
}

// End-to-end conservation through a lossy star: delivered + injected
// drops equals sent, and the same seed loses the very same packets.
func TestApplyLossConservesAndRepeats(t *testing.T) {
	run := func() (received int, drops int64, processed uint64, end des.Time) {
		nw := netsim.New(1)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 2,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		})
		star.Receiver.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) { received++ })
		plan := &Plan{Seed: 42, Links: []LinkFaults{{
			Port: star.Bottleneck,
			Loss: []Loss{{Kinds: SelData, Rate: 0.3}},
		}}}
		a := plan.Apply(nw)
		const n = 400
		for i := 0; i < n/2; i++ {
			star.Senders[0].Send(&netsim.Packet{Dst: star.Receiver.ID(), Size: netsim.DataMTU, Kind: netsim.Data})
			star.Senders[1].Send(&netsim.Packet{Dst: star.Receiver.ID(), Size: netsim.DataMTU, Kind: netsim.Data})
		}
		nw.Sim.Run()
		if got := star.Bottleneck.WireDrops(); got != a.Drops() {
			t.Errorf("port wire drops %d != injector drops %d", got, a.Drops())
		}
		if a.LinkDrops(0) != a.Drops() {
			t.Errorf("per-link drops %d != total %d", a.LinkDrops(0), a.Drops())
		}
		return received, a.Drops(), nw.Sim.Processed(), nw.Sim.Now()
	}
	r1, d1, p1, e1 := run()
	if d1 == 0 || r1 == 0 {
		t.Fatalf("expected both deliveries and drops, got %d/%d", r1, d1)
	}
	if r1+int(d1) != 400 {
		t.Errorf("received %d + drops %d != sent 400", r1, d1)
	}
	r2, d2, p2, e2 := run()
	if r1 != r2 || d1 != d2 || p1 != p2 || e1 != e2 {
		t.Errorf("same seed diverged: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
			r1, d1, p1, e1, r2, d2, p2, e2)
	}
}

// Flaps in a plan take the link down and bring it back on schedule.
func TestApplyFlapSchedule(t *testing.T) {
	nw := netsim.New(1)
	received := 0
	rx := nw.NewHost()
	rx.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) { received++ })
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	plan := &Plan{Links: []LinkFaults{{
		Port:  p,
		Flaps: []Flap{{DownAt: des.Time(100 * des.Microsecond), UpAt: des.Time(300 * des.Microsecond)}},
	}}}
	plan.Apply(nw)
	const n = 100
	for i := 0; i < n; i++ {
		tx.Send(&netsim.Packet{Dst: rx.ID(), Size: netsim.DataMTU, Kind: netsim.Data})
	}
	nw.Sim.At(des.Time(200*des.Microsecond), func() {
		if !p.LinkDown() {
			t.Error("link not down mid-flap")
		}
	})
	nw.Sim.Run()
	if p.LinkDown() {
		t.Error("link still down after UpAt")
	}
	if received+int(p.WireDrops()) != n {
		t.Errorf("received %d + wire drops %d != %d", received, p.WireDrops(), n)
	}
}

// The A/B guarantee: a run with no plan, an empty plan, or a plan applied
// and removed before traffic behaves bit-identically to a plain run.
func TestDisabledPlanIsBitIdentical(t *testing.T) {
	run := func(mode int) (uint64, des.Time, int) {
		nw := netsim.New(7)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 3,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
			Mark: func() netsim.Marker {
				return &netsim.REDMarker{Kmin: 1000, Kmax: 5000, Pmax: 0.5, Rng: nw.Rng}
			},
		})
		marked := 0
		star.Receiver.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
			if pkt.CE {
				marked++
			}
		})
		switch mode {
		case 1:
			(&Plan{}).Apply(nw)
		case 2:
			a := (&Plan{Seed: 3, Links: []LinkFaults{{
				Port: star.Bottleneck,
				Loss: []Loss{{Kinds: SelData, Rate: 0.5}},
			}}}).Apply(nw)
			a.Remove()
		}
		for _, s := range star.Senders {
			for i := 0; i < 100; i++ {
				s.Send(&netsim.Packet{Dst: star.Receiver.ID(), Size: netsim.DataMTU, Kind: netsim.Data, ECT: true})
			}
		}
		nw.Sim.Run()
		return nw.Sim.Processed(), nw.Sim.Now(), marked
	}
	p0, e0, m0 := run(0)
	for mode := 1; mode <= 2; mode++ {
		p, e, m := run(mode)
		if p != p0 || e != e0 || m != m0 {
			t.Errorf("mode %d diverged from plain run: (%d,%v,%d) vs (%d,%v,%d)",
				mode, p, e, m, p0, e0, m0)
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := deriveSeed(9, i)
		if seen[s] {
			t.Fatalf("seed collision at link %d", i)
		}
		seen[s] = true
	}
	if deriveSeed(1, 0) == deriveSeed(2, 0) {
		t.Error("base seed ignored")
	}
}
