// Package stability implements the control-theoretic analysis of §3.2 and
// §4.3: linearise the fluid model around its fixed point, form the loop
// transfer function in the Laplace domain, and read the Bode phase margin
// off the gain crossover.
//
// Where the paper derives the linearisation by hand (Appendix A), this
// package computes the Jacobians numerically from the nonlinear model —
// same characteristic equation, machine-differentiated. The congestion
// loop of every single-bottleneck model analysed here has the shape
//
//	rate subsystem:  dz/dt = F(z(t), z(t-τ_1..τ_K), q(t-τ_1..τ_K))
//	queue:           dq/dt = N · (z_rate - fair share)
//
// Breaking the loop at the queue gives the open-loop transfer function
//
//	L(s) = -N/s · Cᵀ (sI - A - Σ_k B_k e^{-sτ_k})⁻¹ (Σ_k E_k e^{-sτ_k})
//
// with A, B_k, E_k the Jacobians of F with respect to current state, delayed
// state, and delayed queue, and C selecting the rate component. The phase
// margin is 180° plus the unwrapped phase of L at the |L| = 1 crossover.
package stability

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// LoopModel is the symmetric-flow reduction of a fluid model: one
// representative flow's dynamics driven by delayed observations of the
// shared queue. Implementations live next to their fluid models.
type LoopModel interface {
	// StateDim is the dimension of the per-flow state z.
	StateDim() int
	// Delays returns the distinct feedback lags (seconds), frozen at
	// their fixed-point values for state-dependent delays.
	Delays() []float64
	// Derivs evaluates dz/dt at current state z, with zd[k] the state and
	// qd[k] the queue at lag Delays()[k].
	Derivs(z []float64, zd [][]float64, qd []float64, dzdt []float64)
	// RateIndex identifies the component of z that feeds the queue
	// integrator.
	RateIndex() int
	// FlowCount is the number of symmetric flows N.
	FlowCount() int
	// Equilibrium returns the per-flow fixed point z* and queue q*.
	Equilibrium() (z []float64, q float64, err error)
}

// Result summarises a phase-margin analysis.
type Result struct {
	// PhaseMarginDeg is the margin at the critical gain crossover, in
	// degrees. Positive means stable. math.Inf(1) means the loop gain
	// never reaches 1 (unconditionally stable in this analysis).
	PhaseMarginDeg float64
	// CrossoverRadPerSec is the gain-crossover frequency, 0 if none.
	CrossoverRadPerSec float64
	// Stable is PhaseMarginDeg > 0.
	Stable bool
}

// jacobians holds the linearisation of a LoopModel at its fixed point.
type jacobians struct {
	n      int // state dim
	k      int // number of delays
	delays []float64
	a      []float64   // n×n ∂F/∂z
	b      [][]float64 // per delay, n×n ∂F/∂zd_k
	e      [][]float64 // per delay, n ∂F/∂qd_k
	cIdx   int
	flows  int
}

// linearise computes centred-difference Jacobians of m at its equilibrium.
func linearise(m LoopModel) (*jacobians, error) {
	zStar, qStar, err := m.Equilibrium()
	if err != nil {
		return nil, err
	}
	n := m.StateDim()
	if len(zStar) != n {
		return nil, fmt.Errorf("stability: equilibrium dim %d, want %d", len(zStar), n)
	}
	delays := m.Delays()
	k := len(delays)
	if k == 0 {
		return nil, errors.New("stability: model declares no delays")
	}
	j := &jacobians{
		n: n, k: k, delays: delays,
		a:     make([]float64, n*n),
		cIdx:  m.RateIndex(),
		flows: m.FlowCount(),
	}
	for kk := 0; kk < k; kk++ {
		j.b = append(j.b, make([]float64, n*n))
		j.e = append(j.e, make([]float64, n))
	}

	// Working copies: evaluate F with all arguments at equilibrium, then
	// perturb one coordinate at a time.
	eval := func(z []float64, zd [][]float64, qd []float64, out []float64) {
		m.Derivs(z, zd, qd, out)
	}
	mkState := func() ([]float64, [][]float64, []float64) {
		z := append([]float64(nil), zStar...)
		zd := make([][]float64, k)
		qd := make([]float64, k)
		for kk := 0; kk < k; kk++ {
			zd[kk] = append([]float64(nil), zStar...)
			qd[kk] = qStar
		}
		return z, zd, qd
	}
	plus := make([]float64, n)
	minus := make([]float64, n)
	eps := func(x float64) float64 {
		e := 1e-6 * math.Abs(x)
		if e < 1e-9 {
			e = 1e-9
		}
		return e
	}

	// ∂F/∂z.
	for col := 0; col < n; col++ {
		z, zd, qd := mkState()
		h := eps(zStar[col])
		z[col] = zStar[col] + h
		eval(z, zd, qd, plus)
		z[col] = zStar[col] - h
		eval(z, zd, qd, minus)
		for row := 0; row < n; row++ {
			j.a[row*n+col] = (plus[row] - minus[row]) / (2 * h)
		}
	}
	// ∂F/∂zd_k and ∂F/∂qd_k.
	for kk := 0; kk < k; kk++ {
		for col := 0; col < n; col++ {
			z, zd, qd := mkState()
			h := eps(zStar[col])
			zd[kk][col] = zStar[col] + h
			eval(z, zd, qd, plus)
			zd[kk][col] = zStar[col] - h
			eval(z, zd, qd, minus)
			for row := 0; row < n; row++ {
				j.b[kk][row*n+col] = (plus[row] - minus[row]) / (2 * h)
			}
		}
		z, zd, qd := mkState()
		h := eps(qStar)
		qd[kk] = qStar + h
		eval(z, zd, qd, plus)
		qd[kk] = qStar - h
		eval(z, zd, qd, minus)
		for row := 0; row < n; row++ {
			j.e[kk][row] = (plus[row] - minus[row]) / (2 * h)
		}
	}
	return j, nil
}

// loopGain evaluates L(jω).
func (j *jacobians) loopGain(omega float64) (complex128, error) {
	s := complex(0, omega)
	n := j.n
	m := make([]complex128, n*n)
	rhs := make([]complex128, n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			v := complex(-j.a[row*n+col], 0)
			for kk := 0; kk < j.k; kk++ {
				v -= complex(j.b[kk][row*n+col], 0) * cmplx.Exp(-s*complex(j.delays[kk], 0))
			}
			if row == col {
				v += s
			}
			m[row*n+col] = v
		}
		var e complex128
		for kk := 0; kk < j.k; kk++ {
			e += complex(j.e[kk][row], 0) * cmplx.Exp(-s*complex(j.delays[kk], 0))
		}
		rhs[row] = e
	}
	if err := solveComplex(n, m, rhs); err != nil {
		return 0, err
	}
	h := rhs[j.cIdx]
	return -complex(float64(j.flows), 0) * h / s, nil
}

// LoopGain exposes L(jω) for a model, mostly for tests and plotting.
func LoopGain(m LoopModel, omega float64) (complex128, error) {
	j, err := linearise(m)
	if err != nil {
		return 0, err
	}
	return j.loopGain(omega)
}

// PhaseMargin runs the Bode analysis of §3.2: sweep ω, unwrap the phase,
// locate every |L| = 1 crossing, and report the smallest margin.
func PhaseMargin(m LoopModel) (Result, error) {
	j, err := linearise(m)
	if err != nil {
		return Result{}, err
	}
	return j.phaseMargin()
}

func (j *jacobians) phaseMargin() (Result, error) {
	const (
		omegaLo = 1.0 // rad/s; loop gain is enormous here (integrator)
		omegaHi = 1e9 // far above any dynamics at data-centre timescales
		points  = 2000
	)
	// Stage 1: coarse magnitude-only sweep to bracket |L| = 1 crossings.
	// Magnitude needs no unwrapping, so the grid can be coarse.
	lf := math.Log(omegaLo)
	step := (math.Log(omegaHi) - lf) / (points - 1)
	mags := make([]float64, points)
	omegas := make([]float64, points)
	for i := 0; i < points; i++ {
		w := math.Exp(lf + float64(i)*step)
		l, err := j.loopGain(w)
		if err != nil {
			return Result{}, err
		}
		omegas[i] = w
		mags[i] = cmplx.Abs(l)
	}

	var crossovers []float64
	for i := 1; i < points; i++ {
		if (mags[i-1]-1)*(mags[i]-1) > 0 {
			continue
		}
		// Bisect |L(jω)| = 1 within [ω_{i-1}, ω_i].
		lo, hi := omegas[i-1], omegas[i]
		flo := mags[i-1] - 1
		for iter := 0; iter < 60 && hi-lo > 1e-9*hi; iter++ {
			mid := math.Sqrt(lo * hi)
			l, err := j.loopGain(mid)
			if err != nil {
				return Result{}, err
			}
			fm := cmplx.Abs(l) - 1
			if (fm < 0) == (flo < 0) {
				lo, flo = mid, fm
			} else {
				hi = mid
			}
		}
		crossovers = append(crossovers, math.Sqrt(lo*hi))
	}

	if len(crossovers) == 0 {
		if mags[0] >= 1 {
			return Result{}, fmt.Errorf("stability: loop gain %g at ω=%g never crosses 1 within sweep",
				mags[0], omegas[0])
		}
		return Result{PhaseMarginDeg: math.Inf(1), Stable: true}, nil
	}

	// Stage 2: unwrap the phase from ω_lo to each crossover with a grid
	// dense enough that neither the e^{-jωτ} rotation nor the rational
	// part can jump by more than π between samples.
	maxDelay := 0.0
	for _, d := range j.delays {
		if d > maxDelay {
			maxDelay = d
		}
	}
	res := Result{PhaseMarginDeg: math.Inf(1)}
	for _, wc := range crossovers {
		n := 500 + int(20*wc*maxDelay)
		phase, err := j.unwrappedPhase(omegaLo, wc, n)
		if err != nil {
			return Result{}, err
		}
		pm := 180 + phase*180/math.Pi
		if pm < res.PhaseMarginDeg {
			res.PhaseMarginDeg = pm
			res.CrossoverRadPerSec = wc
		}
	}
	res.Stable = res.PhaseMarginDeg > 0
	return res, nil
}

// unwrappedPhase tracks arg L(jω) continuously from wLo (where the
// integrator pins the principal value to the true phase) up to wHi, using n
// log-spaced samples.
func (j *jacobians) unwrappedPhase(wLo, wHi float64, n int) (float64, error) {
	if n < 2 {
		n = 2
	}
	lf := math.Log(wLo)
	step := (math.Log(wHi) - lf) / float64(n-1)
	var unwrapped, prev float64
	for i := 0; i < n; i++ {
		w := math.Exp(lf + float64(i)*step)
		l, err := j.loopGain(w)
		if err != nil {
			return 0, err
		}
		arg := cmplx.Phase(l)
		if i == 0 {
			unwrapped = arg
		} else {
			d := arg - prev
			for d > math.Pi {
				d -= 2 * math.Pi
			}
			for d < -math.Pi {
				d += 2 * math.Pi
			}
			unwrapped += d
		}
		prev = arg
	}
	return unwrapped, nil
}
