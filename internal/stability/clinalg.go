package stability

import (
	"fmt"
	"math/cmplx"
)

// solveComplex solves the dense complex linear system M x = b in place via
// Gaussian elimination with partial pivoting. M is row-major n×n and is
// destroyed; b is overwritten with the solution. The matrices here are the
// 2×2 or 3×3 linearised rate subsystems, so no fancier factorisation is
// warranted.
func solveComplex(n int, m []complex128, b []complex128) error {
	if len(m) != n*n || len(b) != n {
		return fmt.Errorf("stability: bad system shape n=%d len(m)=%d len(b)=%d", n, len(m), len(b))
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := cmplx.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := cmplx.Abs(m[r*n+col]); a > best {
				best = a
				pivot = r
			}
		}
		if best == 0 {
			return fmt.Errorf("stability: singular matrix at column %d", col)
		}
		if pivot != col {
			for k := col; k < n; k++ {
				m[col*n+k], m[pivot*n+k] = m[pivot*n+k], m[col*n+k]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			m[r*n+col] = 0
			for k := col + 1; k < n; k++ {
				m[r*n+k] -= f * m[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= m[r*n+k] * b[k]
		}
		b[r] = sum / m[r*n+r]
	}
	return nil
}
