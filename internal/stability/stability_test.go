package stability

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ecndelay/internal/fluid"
	"ecndelay/internal/ode"
)

func TestSolveComplexKnown(t *testing.T) {
	// [1 2; 3 4] x = [5; 11] → x = [1; 2].
	m := []complex128{1, 2, 3, 4}
	b := []complex128{5, 11}
	if err := solveComplex(2, m, b); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(b[0]-1) > 1e-12 || cmplx.Abs(b[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [1 2]", b)
	}
}

func TestSolveComplexImaginary(t *testing.T) {
	// (jI) x = b → x = -j b.
	m := []complex128{1i, 0, 0, 1i}
	b := []complex128{2, 3i}
	if err := solveComplex(2, m, b); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(b[0]-(-2i)) > 1e-12 || cmplx.Abs(b[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [-2i 3]", b)
	}
}

func TestSolveComplexNeedsPivot(t *testing.T) {
	// Zero in the (0,0) position requires a row swap.
	m := []complex128{0, 1, 1, 0}
	b := []complex128{7, 9}
	if err := solveComplex(2, m, b); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(b[0]-9) > 1e-12 || cmplx.Abs(b[1]-7) > 1e-12 {
		t.Errorf("x = %v, want [9 7]", b)
	}
}

func TestSolveComplexSingular(t *testing.T) {
	m := []complex128{1, 2, 2, 4}
	b := []complex128{1, 2}
	if err := solveComplex(2, m, b); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestSolveComplexBadShape(t *testing.T) {
	if err := solveComplex(2, make([]complex128, 3), make([]complex128, 2)); err == nil {
		t.Error("expected shape error")
	}
}

// Property: solving a random well-conditioned system then multiplying back
// reproduces the right-hand side.
func TestPropertySolveComplexResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := make([]complex128, n*n)
		for i := range m {
			m[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := 0; i < n; i++ { // diagonal dominance for conditioning
			m[i*n+i] += complex(float64(3*n), 0)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		mCopy := append([]complex128(nil), m...)
		bCopy := append([]complex128(nil), b...)
		if err := solveComplex(n, m, b); err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			var sum complex128
			for c := 0; c < n; c++ {
				sum += mCopy[r*n+c] * b[c]
			}
			if cmplx.Abs(sum-bCopy[r]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// toyLoop is the analytically tractable loop dR/dt = -k·q(t-τ) - d·R with
// dq/dt = N·R, whose open-loop transfer function is
// L(s) = N·k·e^{-sτ} / (s(s+d)).
type toyLoop struct {
	k, d, tau float64
	n         int
}

func (l toyLoop) StateDim() int     { return 1 }
func (l toyLoop) Delays() []float64 { return []float64{l.tau} }
func (l toyLoop) RateIndex() int    { return 0 }
func (l toyLoop) FlowCount() int    { return l.n }
func (l toyLoop) Equilibrium() ([]float64, float64, error) {
	return []float64{0}, 0, nil
}
func (l toyLoop) Derivs(z []float64, zd [][]float64, qd []float64, dzdt []float64) {
	dzdt[0] = -l.k*qd[0] - l.d*z[0]
}

func (l toyLoop) analytic(omega float64) complex128 {
	s := complex(0, omega)
	return complex(float64(l.n)*l.k, 0) * cmplx.Exp(-s*complex(l.tau, 0)) /
		(s * (s + complex(l.d, 0)))
}

func TestLoopGainMatchesAnalytic(t *testing.T) {
	l := toyLoop{k: 100, d: 20, tau: 0.01, n: 3}
	for _, w := range []float64{1, 5, 17, 100, 1000} {
		got, err := LoopGain(l, w)
		if err != nil {
			t.Fatal(err)
		}
		want := l.analytic(w)
		if cmplx.Abs(got-want)/cmplx.Abs(want) > 1e-5 {
			t.Errorf("ω=%v: L=%v, analytic %v", w, got, want)
		}
	}
}

func TestPhaseMarginMatchesAnalytic(t *testing.T) {
	l := toyLoop{k: 100, d: 20, tau: 0.005, n: 1}
	res, err := PhaseMargin(l)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic crossover: |L| = k/(ω√(ω²+d²)) = 1.
	wc := res.CrossoverRadPerSec
	if math.Abs(l.k/(wc*math.Hypot(wc, l.d))-1) > 1e-3 {
		t.Errorf("crossover %v does not satisfy |L|=1", wc)
	}
	// Analytic phase: -90° - atan(ω/d) - ωτ.
	want := 180 + (-90 - math.Atan2(wc, l.d)*180/math.Pi - wc*l.tau*180/math.Pi)
	if math.Abs(res.PhaseMarginDeg-want) > 0.5 {
		t.Errorf("PM = %v, analytic %v", res.PhaseMarginDeg, want)
	}
}

// The verdict must agree with direct integration of the same DDE: positive
// margin ⇒ perturbations decay; negative margin ⇒ they grow.
func TestPhaseMarginAgreesWithSimulation(t *testing.T) {
	simulateGrowth := func(l toyLoop) float64 {
		// State: [R, q]; dR/dt = -k q(t-τ) - dR; dq/dt = N R.
		sys := ode.DelayFunc{N: 2, F: func(tt float64, y []float64, past ode.History, dydt []float64) {
			dydt[0] = -l.k*past.Value(tt-l.tau, 1) - l.d*y[0]
			dydt[1] = float64(l.n) * y[0]
		}}
		s := &ode.Solver{Sys: sys, H: 1e-4, MaxDelay: l.tau, Y0: []float64{0, 1}}
		early, lateMax := 0.0, 0.0
		s.Integrate(0, 20, func(tt float64, y []float64) {
			a := math.Abs(y[1])
			if tt < 2 && a > early {
				early = a
			}
			if tt > 18 && a > lateMax {
				lateMax = a
			}
		})
		return lateMax / early
	}
	for _, c := range []struct {
		l    toyLoop
		want bool
	}{
		{toyLoop{k: 100, d: 20, tau: 0.001, n: 1}, true},
		{toyLoop{k: 100, d: 20, tau: 0.5, n: 1}, false},
		{toyLoop{k: 400, d: 40, tau: 0.01, n: 2}, true},
		{toyLoop{k: 4000, d: 10, tau: 0.05, n: 4}, false},
	} {
		res, err := PhaseMargin(c.l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stable != c.want {
			t.Errorf("%+v: analysis says stable=%v want %v (PM=%v)", c.l, res.Stable, c.want, res.PhaseMarginDeg)
		}
		growth := simulateGrowth(c.l)
		if c.want && growth > 0.5 {
			t.Errorf("%+v: predicted stable but simulation grows (growth=%v)", c.l, growth)
		}
		if !c.want && growth < 2 {
			t.Errorf("%+v: predicted unstable but simulation decays (growth=%v)", c.l, growth)
		}
	}
}

type noDelayModel struct{ toyLoop }

func (noDelayModel) Delays() []float64 { return nil }

func TestNoDelaysRejected(t *testing.T) {
	if _, err := PhaseMargin(noDelayModel{}); err == nil {
		t.Error("expected error for model without delays")
	}
}

type badEquilibrium struct{ toyLoop }

func (badEquilibrium) Equilibrium() ([]float64, float64, error) {
	return nil, 0, errors.New("no equilibrium")
}

func TestEquilibriumErrorPropagates(t *testing.T) {
	if _, err := PhaseMargin(badEquilibrium{}); err == nil {
		t.Error("expected equilibrium error to propagate")
	}
}

// --- Figure 3(a): DCQCN non-monotonic stability in N ---

func dcqcnPM(t *testing.T, n int, tauStar float64, mutate func(*fluid.DCQCNLoop)) float64 {
	t.Helper()
	p := fluid.DefaultDCQCNParams(n)
	p.TauStar = tauStar
	loop, err := fluid.NewDCQCNLoop(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PhaseMargin(loop)
	if err != nil {
		t.Fatal(err)
	}
	return res.PhaseMarginDeg
}

func TestDCQCNNonMonotonicPhaseMargin(t *testing.T) {
	// At τ* = 85 µs: stable for very few flows, unstable in the middle,
	// stable again for many flows — the paper's headline DCQCN finding.
	pm1 := dcqcnPM(t, 1, 85e-6, nil)
	pm8 := dcqcnPM(t, 8, 85e-6, nil)
	pm64 := dcqcnPM(t, 64, 85e-6, nil)
	if pm1 <= 0 {
		t.Errorf("PM(N=1, 85µs) = %v, want > 0", pm1)
	}
	if pm8 >= 0 {
		t.Errorf("PM(N=8, 85µs) = %v, want < 0 (the mid-N dip)", pm8)
	}
	if pm64 <= 0 || pm64 <= pm1 {
		t.Errorf("PM(N=64, 85µs) = %v, want > 0 and > PM(N=1)=%v", pm64, pm1)
	}
}

func TestDCQCNPhaseMarginDecreasesWithDelay(t *testing.T) {
	for _, n := range []int{2, 10, 64} {
		prev := math.Inf(1)
		for _, d := range []float64{1e-6, 25e-6, 50e-6, 85e-6, 100e-6} {
			pm := dcqcnPM(t, n, d, nil)
			if pm >= prev {
				t.Errorf("N=%d: PM(%vs) = %v not below PM at smaller delay %v", n, d, pm, prev)
			}
			prev = pm
		}
	}
}

func TestDCQCNLowDelayAlwaysStable(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 10, 16, 32, 64} {
		if pm := dcqcnPM(t, n, 4e-6, nil); pm <= 0 {
			t.Errorf("PM(N=%d, 4µs) = %v, want stable", n, pm)
		}
	}
}

// Figure 3(b): reducing R_AI rescues the unstable mid-N region.
func TestDCQCNSmallerRAIRaisesMargin(t *testing.T) {
	p := fluid.DefaultDCQCNParams(10)
	p.TauStar = 85e-6
	loopDefault, err := fluid.NewDCQCNLoop(p)
	if err != nil {
		t.Fatal(err)
	}
	resDefault, err := PhaseMargin(loopDefault)
	if err != nil {
		t.Fatal(err)
	}
	p.RAI = 5e6 / 8 / 1000 // 5 Mb/s
	loopSmall, err := fluid.NewDCQCNLoop(p)
	if err != nil {
		t.Fatal(err)
	}
	resSmall, err := PhaseMargin(loopSmall)
	if err != nil {
		t.Fatal(err)
	}
	if resDefault.Stable {
		t.Errorf("default R_AI at N=10/85µs: PM=%v, expected unstable", resDefault.PhaseMarginDeg)
	}
	if !resSmall.Stable {
		t.Errorf("small R_AI: PM=%v, expected stable", resSmall.PhaseMarginDeg)
	}
	if resSmall.PhaseMarginDeg <= resDefault.PhaseMarginDeg {
		t.Errorf("small R_AI margin %v not above default %v", resSmall.PhaseMarginDeg, resDefault.PhaseMarginDeg)
	}
}

// Figure 3(c): enlarging K_max (gentler marking slope) raises the margin.
func TestDCQCNLargerKmaxRaisesMargin(t *testing.T) {
	margin := func(kmax float64) float64 {
		p := fluid.DefaultDCQCNParams(10)
		p.TauStar = 85e-6
		p.Kmax = kmax
		loop, err := fluid.NewDCQCNLoop(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PhaseMargin(loop)
		if err != nil {
			t.Fatal(err)
		}
		return res.PhaseMarginDeg
	}
	pm200 := margin(200)
	pm1600 := margin(1600)
	if pm200 >= 0 {
		t.Errorf("Kmax=200: PM=%v, expected unstable", pm200)
	}
	if pm1600 <= 0 {
		t.Errorf("Kmax=1600: PM=%v, expected stable", pm1600)
	}
}

// --- Figure 11: patched TIMELY loses stability at large N ---

func TestPatchedTimelyPhaseMarginCollapse(t *testing.T) {
	margin := func(n int) float64 {
		cfg := fluid.DefaultPatchedTimelyConfig(n)
		loop, err := fluid.NewPatchedTimelyLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PhaseMargin(loop)
		if err != nil {
			t.Fatal(err)
		}
		return res.PhaseMarginDeg
	}
	pm10 := margin(10)
	pm40 := margin(40)
	pm64 := margin(64)
	if pm10 <= 0 {
		t.Errorf("PM(N=10) = %v, want stable", pm10)
	}
	if pm40 >= pm10 {
		t.Errorf("PM(N=40) = %v not below PM(N=10) = %v", pm40, pm10)
	}
	if pm64 >= 0 {
		t.Errorf("PM(N=64) = %v, want unstable at large N", pm64)
	}
	// Past the collapse the margin keeps falling.
	if pm64 >= pm40 {
		t.Errorf("PM(N=64) = %v not below PM(N=40) = %v", pm64, pm40)
	}
}

// The patched loop refuses configurations whose fixed point leaves the
// gradient band (the linearisation would be invalid).
func TestPatchedTimelyLoopBandCheck(t *testing.T) {
	cfg := fluid.DefaultPatchedTimelyConfig(1000) // q* far above C·T_high
	if _, err := fluid.NewPatchedTimelyLoop(cfg); err == nil {
		t.Error("expected band-violation error for N=1000")
	}
}

func BenchmarkPhaseMarginDCQCN(b *testing.B) {
	p := fluid.DefaultDCQCNParams(10)
	p.TauStar = 85e-6
	loop, err := fluid.NewDCQCNLoop(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PhaseMargin(loop); err != nil {
			b.Fatal(err)
		}
	}
}

// §5.2 made quantitative: moving the marking point from egress to ingress
// adds the queueing delay q*/C to the marking feedback path and costs
// phase margin at every operating point.
func TestIngressMarkingCostsMargin(t *testing.T) {
	for _, n := range []int{2, 4, 10} {
		p := fluid.DefaultDCQCNParams(n)
		p.C = 10e9 / 8 / 1000 // 10 Gb/s: queueing delay dominates
		eg, err := fluid.NewDCQCNLoop(p)
		if err != nil {
			t.Fatal(err)
		}
		egPM, err := PhaseMargin(eg)
		if err != nil {
			t.Fatal(err)
		}
		in, err := fluid.NewDCQCNIngressLoop(p)
		if err != nil {
			t.Fatal(err)
		}
		inPM, err := PhaseMargin(in)
		if err != nil {
			t.Fatal(err)
		}
		if inPM.PhaseMarginDeg >= egPM.PhaseMarginDeg-2 {
			t.Errorf("N=%d: ingress PM %v not clearly below egress PM %v",
				n, inPM.PhaseMarginDeg, egPM.PhaseMarginDeg)
		}
	}
}
