package topo

import (
	"fmt"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

func testLink() netsim.LinkConfig {
	return netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond}
}

func TestClosConfigValidate(t *testing.T) {
	bad := []ClosConfig{
		{Radix: 3, Tiers: 2, HostLink: testLink()},               // odd radix
		{Radix: 0, Tiers: 2, HostLink: testLink()},               // no radix
		{Radix: 4, Tiers: 4, HostLink: testLink()},               // unsupported depth
		{Radix: 2, Tiers: 3, HostLink: testLink()},               // fat tree too small
		{Radix: 4, Tiers: 2},                                     // no bandwidth
		{Radix: 4, Tiers: 2, Oversub: 0.5, HostLink: testLink()}, // undersub
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated despite being invalid: %+v", i, cfg)
		}
	}
	good := ClosConfig{Radix: 4, Tiers: 3, Oversub: 2, HostLink: testLink()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// The standard k-ary counts: hosts, switches per tier, uplinks per leaf.
func TestClosShape(t *testing.T) {
	cases := []struct {
		radix, tiers                       int
		hosts, leaves, aggs, spines, upPer int
	}{
		{4, 2, 8, 4, 0, 2, 2},
		{6, 2, 18, 6, 0, 3, 3},
		{4, 3, 16, 8, 8, 4, 2},
		{6, 3, 54, 18, 18, 9, 3},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("k%d_t%d", c.radix, c.tiers), func(t *testing.T) {
			nw := netsim.New(1)
			cl, err := NewClos(nw, ClosConfig{Radix: c.radix, Tiers: c.tiers, HostLink: testLink()})
			if err != nil {
				t.Fatal(err)
			}
			if got := cl.Cfg.Hosts(); got != c.hosts {
				t.Errorf("Hosts() = %d, want %d", got, c.hosts)
			}
			if len(cl.Hosts) != c.hosts {
				t.Errorf("built %d hosts, want %d", len(cl.Hosts), c.hosts)
			}
			if len(cl.HostPorts) != c.hosts {
				t.Errorf("%d host ports, want %d", len(cl.HostPorts), c.hosts)
			}
			if len(cl.Leaves) != c.leaves || len(cl.Aggs) != c.aggs || len(cl.Spines) != c.spines {
				t.Errorf("tiers %d/%d/%d, want %d/%d/%d",
					len(cl.Leaves), len(cl.Aggs), len(cl.Spines), c.leaves, c.aggs, c.spines)
			}
			for l, ups := range cl.LeafUplinks {
				if len(ups) != c.upPer {
					t.Errorf("leaf %d has %d uplinks, want %d", l, len(ups), c.upPer)
				}
			}
			if want := c.leaves + c.aggs + c.spines; len(cl.Switches()) != want {
				t.Errorf("Switches() = %d, want %d", len(cl.Switches()), want)
			}
		})
	}
}

// Oversubscription scales only the leaf uplinks; host links and (3-tier)
// agg↔spine links keep their configured speed.
func TestClosOversubscription(t *testing.T) {
	nw := netsim.New(1)
	cl, err := NewClos(nw, ClosConfig{Radix: 4, Tiers: 3, Oversub: 4, HostLink: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	want := testLink().Bandwidth / 4
	for l, ups := range cl.LeafUplinks {
		for _, p := range ups {
			if p.Bandwidth != want {
				t.Errorf("leaf %d uplink bandwidth %g, want %g", l, p.Bandwidth, want)
			}
		}
	}
	for h, p := range cl.HostPorts {
		if p.Bandwidth != testLink().Bandwidth {
			t.Errorf("host %d link bandwidth %g, want full rate", h, p.Bandwidth)
		}
	}
	// Agg → spine ports run at full fabric rate: every agg port beyond the
	// k/2 leaf-facing ones is an uplink.
	for a, agg := range cl.Aggs {
		for i := 2; i < 4; i++ {
			if agg.Port(i).Bandwidth != testLink().Bandwidth {
				t.Errorf("agg %d port %d bandwidth %g, want full rate", a, i, agg.Port(i).Bandwidth)
			}
		}
	}
}

// Every ordered host pair can exchange a packet — all routes resolve and
// all bytes arrive, on both supported depths, with PFC on.
func TestClosAllPairsConnectivity(t *testing.T) {
	for _, tiers := range []int{2, 3} {
		t.Run(fmt.Sprintf("tiers%d", tiers), func(t *testing.T) {
			nw := netsim.New(1)
			cl, err := NewClos(nw, ClosConfig{
				Radix: 4, Tiers: tiers, HostLink: testLink(),
				PFC: netsim.PFCConfig{PauseBytes: 100e3, ResumeBytes: 50e3},
			})
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int]int) // receiving host id → packets
			for _, h := range cl.Hosts {
				id := h.ID()
				h.Transport = netsim.TransportFunc(func(_ *netsim.Host, pkt *netsim.Packet) {
					got[id]++
				})
			}
			sent := 0
			for i, src := range cl.Hosts {
				for j, dst := range cl.Hosts {
					if i == j {
						continue
					}
					src.Send(&netsim.Packet{
						Flow: i*len(cl.Hosts) + j, Dst: dst.ID(),
						Size: netsim.DataMTU, Kind: netsim.Data,
					})
					sent++
				}
			}
			nw.Sim.Run()
			total := 0
			for _, n := range got {
				total += n
			}
			if total != sent {
				t.Errorf("delivered %d of %d packets", total, sent)
			}
			for _, h := range cl.Hosts {
				if got[h.ID()] != len(cl.Hosts)-1 {
					t.Errorf("host %d received %d, want %d", h.ID(), got[h.ID()], len(cl.Hosts)-1)
				}
			}
		})
	}
}

// Distinct flows between the same host pair spread across the leaf's
// equal-cost uplinks, and the spread is identical when the same fabric is
// built twice (seeded hashing, deterministic wiring).
func TestClosECMPSpreadAndDeterminism(t *testing.T) {
	build := func() (*netsim.Network, *Clos) {
		nw := netsim.New(1)
		cl, err := NewClos(nw, ClosConfig{Radix: 4, Tiers: 3, HostLink: testLink(), ECMPSeed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return nw, cl
	}
	run := func() (perUplink []int64) {
		nw, cl := build()
		src, dst := cl.Hosts[0], cl.Hosts[len(cl.Hosts)-1]
		for flow := 0; flow < 64; flow++ {
			for p := 0; p < 4; p++ {
				src.Send(&netsim.Packet{Flow: flow, Dst: dst.ID(), Size: netsim.DataMTU, Kind: netsim.Data})
			}
		}
		nw.Sim.Run()
		for _, p := range cl.LeafUplinks[0] {
			perUplink = append(perUplink, p.TxBytes)
		}
		return perUplink
	}
	a := run()
	b := run()
	var used, total int64
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("uplink %d carried %d then %d bytes across identical builds", i, a[i], b[i])
		}
		if a[i] > 0 {
			used++
		}
		total += a[i]
	}
	if used < 2 {
		t.Errorf("64 flows used %d of %d equal-cost uplinks", used, len(a))
	}
	if total != 64*4*netsim.DataMTU {
		t.Errorf("uplinks carried %d bytes, want %d", total, int64(64*4*netsim.DataMTU))
	}
}

// An incast at one host port under PFC keeps every invariant the checker
// knows: byte conservation through every fabric queue, pause/resume
// pairing up the tiers, pool discipline.
func TestClosIncastInvariantsClean(t *testing.T) {
	o := obs.Full()
	nw := netsim.New(1)
	nw.SetObserver(o)
	cl, err := NewClos(nw, ClosConfig{
		Radix: 4, Tiers: 3, HostLink: testLink(),
		PFC: netsim.PFCConfig{PauseBytes: 20e3, ResumeBytes: 10e3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rx := cl.Hosts[len(cl.Hosts)-1]
	var got int64
	rx.Transport = netsim.TransportFunc(func(_ *netsim.Host, pkt *netsim.Packet) { got += int64(pkt.Size) })
	const per = 100
	var sent int64
	for i := 0; i < 8; i++ {
		for j := 0; j < per; j++ {
			cl.Hosts[i].Send(&netsim.Packet{Flow: i, Dst: rx.ID(), Size: netsim.DataMTU, Kind: netsim.Data})
			sent += netsim.DataMTU
		}
	}
	nw.Sim.Run()
	if got != sent {
		t.Errorf("delivered %d of %d incast bytes", got, sent)
	}
	if o.Trace.Count(obs.Pause) == 0 {
		t.Error("an 8:1 incast at a 20 KB PFC threshold never paused")
	}
	o.Check.Finish(nw.Sim.Now())
	if err := o.Check.Err(); err != nil {
		t.Errorf("invariants violated on the incast fabric: %v", err)
	}
}
