// Package topo generates datacenter-scale fabrics for the packet
// simulator: k-ary fat trees (3 tiers) and leaf–spine networks (2 tiers),
// wired onto netsim switches with seeded flow-consistent ECMP across the
// equal-cost up paths and deterministic single-path routing downward.
//
// The paper's evaluation runs on a dumbbell; the deployments it targets run
// on exactly these fabrics, where N-to-1 incast at a leaf's host port and
// PFC pause trees climbing the tiers are the defining failure modes. A
// generated fabric is a plain netsim network, so every existing layer —
// protocol endpoints, fault plans, the observability and invariant
// machinery, the sweep engine — composes with it unchanged.
//
// Everything is deterministic in (configuration, ECMPSeed): wiring order,
// node ids, and every per-switch hash salt derive from the config alone, so
// two processes building the same ClosConfig get byte-identical simulations.
package topo

import (
	"fmt"

	"ecndelay/internal/netsim"
)

// ClosConfig parameterises NewClos.
type ClosConfig struct {
	// Radix is k, the port count per switch. Must be even and >= 2
	// (>= 4 tells the 3-tier fat tree apart from a straight line). The
	// fabric shape follows the standard k-ary construction:
	//
	//	Tiers == 2: k leaves × k/2 spines, k/2 hosts per leaf
	//	            (k²/2 hosts, full bipartite leaf↔spine mesh)
	//	Tiers == 3: k pods × (k/2 leaves + k/2 aggs), (k/2)² spines,
	//	            k/2 hosts per leaf (k³/4 hosts)
	Radix int
	// Tiers selects the fabric depth: 2 (leaf–spine) or 3 (fat tree).
	Tiers int
	// Oversub is the leaf oversubscription ratio: leaf uplinks run at
	// FabricLink.Bandwidth / Oversub, so host-facing capacity exceeds
	// uplink capacity by this factor when host and fabric links are equal.
	// 1 (or 0, the default) is a non-blocking fabric.
	Oversub float64
	// HostLink is the host ↔ leaf link (both directions).
	HostLink netsim.LinkConfig
	// FabricLink is the switch ↔ switch link before oversubscription; a
	// zero value copies HostLink.
	FabricLink netsim.LinkConfig
	// Mark builds the ECN marking policy per switch egress queue (nil:
	// none). Host NIC queues are never marked, as everywhere else.
	Mark netsim.MarkerFactory
	// PFC applies to every switch in the fabric.
	PFC netsim.PFCConfig
	// SwitchQueueCap bounds every switch egress queue in bytes (0:
	// unbounded, the lossless default).
	SwitchQueueCap int
	// ECMPSeed salts the per-switch flow hashes. Every switch gets a
	// distinct salt derived deterministically from this one seed.
	ECMPSeed int64
}

// withDefaults fills derived defaults without mutating the caller's copy.
func (cfg ClosConfig) withDefaults() ClosConfig {
	if cfg.Oversub == 0 {
		cfg.Oversub = 1
	}
	if cfg.FabricLink == (netsim.LinkConfig{}) {
		cfg.FabricLink = cfg.HostLink
	}
	return cfg
}

// Validate reports whether the configuration describes a buildable fabric.
func (cfg ClosConfig) Validate() error {
	switch {
	case cfg.Radix < 2 || cfg.Radix%2 != 0:
		return fmt.Errorf("topo: radix must be even and >= 2, got %d", cfg.Radix)
	case cfg.Tiers != 2 && cfg.Tiers != 3:
		return fmt.Errorf("topo: tiers must be 2 or 3, got %d", cfg.Tiers)
	case cfg.Tiers == 3 && cfg.Radix < 4:
		return fmt.Errorf("topo: a 3-tier fat tree needs radix >= 4, got %d", cfg.Radix)
	case cfg.Oversub < 0 || (cfg.Oversub > 0 && cfg.Oversub < 1):
		return fmt.Errorf("topo: oversubscription must be >= 1, got %g", cfg.Oversub)
	case cfg.HostLink.Bandwidth <= 0:
		return fmt.Errorf("topo: host link bandwidth must be positive, got %g", cfg.HostLink.Bandwidth)
	}
	return nil
}

// Hosts reports how many hosts the configuration yields without building it
// (experiment harnesses size workloads from this).
func (cfg ClosConfig) Hosts() int {
	k := cfg.Radix
	if cfg.Tiers == 2 {
		return k * k / 2
	}
	return k * k * k / 4
}

// Clos is a wired fabric. Slices are in deterministic construction order;
// treat them as read-only.
type Clos struct {
	Net *netsim.Network
	Cfg ClosConfig

	// Hosts in global order: host h sits under leaf h / (k/2).
	Hosts []*netsim.Host
	// Leaves, Aggs (3-tier only, in-pod order), Spines.
	Leaves []*netsim.Switch
	Aggs   []*netsim.Switch
	Spines []*netsim.Switch

	// HostPorts[h] is leaf-of-h's egress port toward host h — the incast
	// bottleneck when h is a fan-in receiver.
	HostPorts []*netsim.Port
	// LeafUplinks[l] are leaf l's ports up the fabric (toward spines on 2
	// tiers, toward the pod aggs on 3), the ECMP spread measurement points.
	LeafUplinks [][]*netsim.Port
}

// saltFor derives the per-switch ECMP hash salt: distinct and deterministic
// per construction index.
func saltFor(seed int64, idx int) uint64 {
	return uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
}

// NewClos builds the fabric on nw. Hosts, switches and links are created in
// a fixed order, so node ids and the network's event schedule depend only
// on the configuration.
func NewClos(nw *netsim.Network, cfg ClosConfig) (*Clos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Clos{Net: nw, Cfg: cfg}
	if cfg.Tiers == 2 {
		c.buildLeafSpine()
	} else {
		c.buildFatTree()
	}
	return c, nil
}

// mark returns a fresh marker, or nil without a factory.
func (c *Clos) mark() netsim.Marker {
	if c.Cfg.Mark == nil {
		return nil
	}
	return c.Cfg.Mark()
}

// switchPort adds one egress port on sw with fabric-wide queue policy.
func (c *Clos) switchPort(sw *netsim.Switch, peer netsim.Node, link netsim.LinkConfig) int {
	idx := sw.AddPort(peer, link.Bandwidth, link.PropDelay, c.mark())
	sw.Port(idx).Queue().SetCapBytes(c.Cfg.SwitchQueueCap)
	return idx
}

// newSwitch creates a fabric switch with its deterministic hash salt; salts
// follow switch creation order.
func (c *Clos) newSwitch(order *int) *netsim.Switch {
	sw := c.Net.NewSwitch(c.Cfg.PFC)
	sw.SetECMPSeed(saltFor(c.Cfg.ECMPSeed, *order))
	*order++
	return sw
}

// attachHost creates host h under leaf, wiring both directions and the
// leaf's down route.
func (c *Clos) attachHost(leaf *netsim.Switch) {
	h := c.Net.NewHost()
	h.Connect(leaf, c.Cfg.HostLink.Bandwidth, c.Cfg.HostLink.PropDelay, nil)
	idx := c.switchPort(leaf, h, c.Cfg.HostLink)
	leaf.SetRoute(h.ID(), idx)
	c.Hosts = append(c.Hosts, h)
	c.HostPorts = append(c.HostPorts, leaf.Port(idx))
}

// uplink is the oversubscribed fabric link used above the leaf tier's
// host-facing ports.
func (c *Clos) uplink() netsim.LinkConfig {
	l := c.Cfg.FabricLink
	l.Bandwidth /= c.Cfg.Oversub
	return l
}

// buildLeafSpine wires the 2-tier fabric: k leaves, k/2 spines, full
// bipartite mesh, k/2 hosts per leaf.
func (c *Clos) buildLeafSpine() {
	k := c.Cfg.Radix
	half := k / 2
	order := 0
	for l := 0; l < k; l++ {
		c.Leaves = append(c.Leaves, c.newSwitch(&order))
	}
	for s := 0; s < half; s++ {
		c.Spines = append(c.Spines, c.newSwitch(&order))
	}
	up := c.uplink()
	for l, leaf := range c.Leaves {
		for i := 0; i < half; i++ {
			c.attachHost(leaf)
		}
		var ups []*netsim.Port
		for _, sp := range c.Spines {
			ui := c.switchPort(leaf, sp, up)
			c.switchPort(sp, leaf, up)
			ups = append(ups, leaf.Port(ui))
		}
		c.LeafUplinks = append(c.LeafUplinks, ups)
		_ = l
	}
	// Routes: spines reach every host through its leaf (the port order
	// above means spine's port l faces leaf l); leaves pin their own
	// hosts (done in attachHost) and ECMP everything else over all
	// uplinks.
	for hid, h := range c.Hosts {
		leaf := hid / half
		for _, sp := range c.Spines {
			sp.SetRoute(h.ID(), leaf)
		}
	}
	for l, leaf := range c.Leaves {
		group := make([]int, len(c.LeafUplinks[l]))
		for i := range group {
			group[i] = half + i // ports 0..half-1 are hosts, then uplinks
		}
		for hid, h := range c.Hosts {
			if hid/half != l {
				leaf.SetECMPRoutes(h.ID(), group)
			}
		}
	}
}

// buildFatTree wires the 3-tier k-ary fat tree: k pods of k/2 leaves and
// k/2 aggs, (k/2)² spines in k/2 groups, k/2 hosts per leaf.
func (c *Clos) buildFatTree() {
	k := c.Cfg.Radix
	half := k / 2
	order := 0
	// Creation order: per pod leaves then aggs, then spines — hosts are
	// attached pod by pod afterwards so ids group naturally.
	for p := 0; p < k; p++ {
		for l := 0; l < half; l++ {
			c.Leaves = append(c.Leaves, c.newSwitch(&order))
		}
		for a := 0; a < half; a++ {
			c.Aggs = append(c.Aggs, c.newSwitch(&order))
		}
	}
	for s := 0; s < half*half; s++ {
		c.Spines = append(c.Spines, c.newSwitch(&order))
	}

	up := c.uplink()
	core := c.Cfg.FabricLink
	leafUpIdx := make([][]int, len(c.Leaves)) // leaf → its agg-facing port indexes
	aggDownIdx := make([][]int, len(c.Aggs))  // agg → its leaf-facing port indexes
	aggUpIdx := make([][]int, len(c.Aggs))    // agg → its spine-facing port indexes
	for p := 0; p < k; p++ {
		// Hosts and leaf↔agg mesh inside the pod.
		for l := 0; l < half; l++ {
			leaf := c.Leaves[p*half+l]
			for i := 0; i < half; i++ {
				c.attachHost(leaf)
			}
			for a := 0; a < half; a++ {
				agg := c.Aggs[p*half+a]
				ui := c.switchPort(leaf, agg, up)
				di := c.switchPort(agg, leaf, up)
				leafUpIdx[p*half+l] = append(leafUpIdx[p*half+l], ui)
				aggDownIdx[p*half+a] = append(aggDownIdx[p*half+a], di)
			}
		}
		// Agg ↔ spine: agg a of every pod connects to spine group a.
		for a := 0; a < half; a++ {
			agg := c.Aggs[p*half+a]
			for j := 0; j < half; j++ {
				sp := c.Spines[a*half+j]
				ui := c.switchPort(agg, sp, core)
				c.switchPort(sp, agg, core)
				aggUpIdx[p*half+a] = append(aggUpIdx[p*half+a], ui)
			}
		}
	}
	for l, leaf := range c.Leaves {
		var ups []*netsim.Port
		for _, ui := range leafUpIdx[l] {
			ups = append(ups, leaf.Port(ui))
		}
		c.LeafUplinks = append(c.LeafUplinks, ups)
	}

	// Routes. Down paths are unique and pinned; up paths are ECMP groups.
	hostsPerPod := half * half
	podOf := func(hid int) int { return hid / hostsPerPod }
	leafOf := func(hid int) int { return hid / half }
	for hid, h := range c.Hosts {
		p, l := podOf(hid), leafOf(hid)
		// Aggs in the host's pod pin the down leg to its leaf.
		for a := 0; a < half; a++ {
			agg := c.Aggs[p*half+a]
			agg.SetRoute(h.ID(), aggDownIdx[p*half+a][l%half])
		}
		// Spines pin the down leg to the host's pod: spine s in group a
		// wired its pod ports in pod order, so port p faces pod p's agg.
		for _, sp := range c.Spines {
			sp.SetRoute(h.ID(), p)
		}
	}
	for l, leaf := range c.Leaves {
		for hid, h := range c.Hosts {
			if leafOf(hid) != l {
				leaf.SetECMPRoutes(h.ID(), leafUpIdx[l])
			}
		}
	}
	for a, agg := range c.Aggs {
		p := a / half
		for hid, h := range c.Hosts {
			if podOf(hid) != p {
				agg.SetECMPRoutes(h.ID(), aggUpIdx[a])
			}
		}
	}
}

// Switches returns every fabric switch (leaves, aggs, spines) in
// construction order — convenient for wiring watchdogs or summing drops.
func (c *Clos) Switches() []*netsim.Switch {
	out := make([]*netsim.Switch, 0, len(c.Leaves)+len(c.Aggs)+len(c.Spines))
	out = append(out, c.Leaves...)
	out = append(out, c.Aggs...)
	return append(out, c.Spines...)
}

// LeafOf returns the leaf switch host h hangs off.
func (c *Clos) LeafOf(h int) *netsim.Switch {
	return c.Leaves[h/(c.Cfg.Radix/2)]
}

// PodOf returns the pod index of host h (always 0 on a 2-tier fabric,
// where pods degenerate to leaves' shared spine mesh).
func (c *Clos) PodOf(h int) int {
	if c.Cfg.Tiers == 2 {
		return 0
	}
	half := c.Cfg.Radix / 2
	return h / (half * half)
}

// ShardAssign returns a node→shard map that cuts the fabric along its
// natural seams for up to n shards: on a 2-tier fabric each leaf and its
// hosts form a group, on a 3-tier fabric each pod (its leaves, aggs and
// hosts) does, and the spine tier rides with shard 0. Groups are split
// into contiguous blocks over the shards in construction order, so the cut
// edges are exactly the leaf↔spine (2-tier) or agg↔spine (3-tier) links —
// whose propagation delay becomes the conservative lookahead. n is clamped
// to the group count; n ≤ 1 returns the all-zero (serial) map.
//
// The map is only valid for fabrics whose datapath does not draw the
// shared network RNG across groups: with a marker factory configured every
// switch carries RNG-drawing queues, and netsim.PartitionByNode will
// reject the assignment — use netsim.DefaultAssign (which pins RNG-bound
// nodes together) for those runs.
func (c *Clos) ShardAssign(n int) []int {
	assign := make([]int, c.Net.NodeCount())
	if n <= 1 {
		return assign
	}
	half := c.Cfg.Radix / 2
	groups := len(c.Leaves) // 2-tier: one group per leaf
	if c.Cfg.Tiers == 3 {
		groups = c.Cfg.Radix // one group per pod
	}
	if n > groups {
		n = groups
	}
	shardOf := func(g int) int { return g * n / groups }
	for l, sw := range c.Leaves {
		g := l
		if c.Cfg.Tiers == 3 {
			g = l / half
		}
		assign[sw.ID()] = shardOf(g)
	}
	for a, sw := range c.Aggs {
		assign[sw.ID()] = shardOf(a / half)
	}
	for _, sw := range c.Spines {
		assign[sw.ID()] = 0
	}
	for hid, h := range c.Hosts {
		g := hid / half // 2-tier: the host's leaf
		if c.Cfg.Tiers == 3 {
			g = hid / (half * half) // the host's pod
		}
		assign[h.ID()] = shardOf(g)
	}
	return assign
}
