package timely

import (
	"math"
	"testing"
	"testing/quick"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := DefaultPatchedParams().Validate(); err != nil {
		t.Fatalf("patched defaults rejected: %v", err)
	}
	muts := []func(*Params){
		func(p *Params) { p.EWMA = 0 },
		func(p *Params) { p.Beta = 1 },
		func(p *Params) { p.Delta = 0 },
		func(p *Params) { p.THigh = p.TLow },
		func(p *Params) { p.MinRTT = 0 },
		func(p *Params) { p.Seg = 10 },
		func(p *Params) { p.MinRate = 0 },
		func(p *Params) { p.Patched = true; p.RTTRef = 0 },
	}
	for i, m := range muts {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWeight(t *testing.T) {
	cases := []struct{ g, want float64 }{
		{-1, 0}, {-0.25, 0}, {0, 0.5}, {0.25, 1}, {2, 1}, {0.125, 0.75},
	}
	for _, c := range cases {
		if got := Weight(c.g); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Weight(%v) = %v, want %v", c.g, got, c.want)
		}
	}
}

func TestPropertyWeightMonotoneBounded(t *testing.T) {
	f := func(a, b int16) bool {
		g1, g2 := float64(a)/1000, float64(b)/1000
		w1, w2 := Weight(g1), Weight(g2)
		if w1 < 0 || w1 > 1 || w2 < 0 || w2 > 1 {
			return false
		}
		if g1 <= g2 {
			return w1 <= w2
		}
		return w2 <= w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// star10G wires N TIMELY senders through a 10 Gb/s star.
func star10G(t *testing.T, p Params, starts []des.Time, startRates []float64, seed int64) (*netsim.Network, *netsim.Star, []*Sender) {
	t.Helper()
	nw := netsim.New(seed)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: len(starts),
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	if _, err := NewEndpoint(star.Receiver, p); err != nil {
		t.Fatal(err)
	}
	var senders []*Sender
	for i, h := range star.Senders {
		ep, err := NewEndpoint(h, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, starts[i], startRates[i])
		if err != nil {
			t.Fatal(err)
		}
		senders = append(senders, s)
	}
	return nw, star, senders
}

func rateSeries(nw *netsim.Network, senders []*Sender) []*stats.Series {
	out := make([]*stats.Series, len(senders))
	for i := range out {
		out[i] = &stats.Series{}
	}
	nw.Sim.Every(0, 100*des.Microsecond, func() {
		ts := nw.Sim.Now().Seconds()
		for i, s := range senders {
			out[i].Add(ts, s.Rate())
		}
	})
	return out
}

// Theorem 4 at the packet level: TIMELY settles into an unfair split even
// from symmetric starts, keeps utilisation high, and the split depends on
// microscopic start phasing (Figure 9's history dependence).
func TestUnfairnessAndHistoryDependence(t *testing.T) {
	endRatio := func(stagger des.Duration) (float64, float64) {
		nw, _, senders := star10G(t, DefaultParams(),
			[]des.Time{0, des.Time(stagger)}, []float64{5e9 / 8, 5e9 / 8}, 1)
		rs := rateSeries(nw, senders)
		nw.Sim.RunUntil(des.Time(300 * des.Millisecond))
		m0 := rs[0].WindowSummary(0.2, 0.3).Mean
		m1 := rs[1].WindowSummary(0.2, 0.3).Mean
		return m0 / m1, (m0 + m1) / 1.25e9
	}
	r1, util1 := endRatio(0)
	r2, util2 := endRatio(400 * des.Microsecond)
	for _, u := range []float64{util1, util2} {
		if u < 0.85 {
			t.Errorf("utilisation %v, want > 0.85", u)
		}
	}
	if math.Abs(math.Log(r1)) < math.Log(1.3) {
		t.Errorf("ratio %v from equal starts: expected persistent unfairness", r1)
	}
	// A sub-millisecond phase shift lands in a different operating
	// regime (here it flips which flow wins).
	if math.Abs(math.Log(r1)-math.Log(r2)) < math.Log(1.5) {
		t.Errorf("end states %v and %v too similar; expected history dependence", r1, r2)
	}
}

// §4.3 at the packet level: patched TIMELY converges to the fair share and
// holds the queue near the Eq. 31 fixed point.
func TestPatchedConvergesFair(t *testing.T) {
	nw, star, senders := star10G(t, DefaultPatchedParams(),
		[]des.Time{0, 0}, []float64{7e9 / 8, 3e9 / 8}, 1)
	rs := rateSeries(nw, senders)
	qs := netsim.MonitorQueueBytes(nw.Sim, star.Bottleneck, 100*des.Microsecond)
	nw.Sim.RunUntil(des.Time(300 * des.Millisecond))
	m0 := rs[0].WindowSummary(0.2, 0.3).Mean
	m1 := rs[1].WindowSummary(0.2, 0.3).Mean
	if ratio := m0 / m1; ratio > 1.05 || ratio < 0.95 {
		t.Errorf("patched ratio %v, want ~1 (fair)", ratio)
	}
	// Eq. 31 with q' = C·T_low = 62.5 KB, N=2, β=0.008, δ=1.25e6:
	// q* = 78.1 KB; the packet-level queue also carries ~1 segment of
	// burstiness.
	q := qs.WindowSummary(0.2, 0.3)
	if q.Mean < 60e3 || q.Mean > 110e3 {
		t.Errorf("queue %v B, want near the Eq. 31 fixed point (~78 KB)", q.Mean)
	}
	if q.CV() > 0.1 {
		t.Errorf("queue CV %v, want stable (< 0.1)", q.CV())
	}
}

// Figure 10(a): 16 KB per-burst pacing decorrelates the flows enough to
// reach a stable, near-fair operating point.
func TestBurst16KBConverges(t *testing.T) {
	p := DefaultParams()
	p.Burst = true
	nw, _, senders := star10G(t, p, []des.Time{0, 0}, []float64{5e9 / 8, 5e9 / 8}, 1)
	rs := rateSeries(nw, senders)
	nw.Sim.RunUntil(des.Time(300 * des.Millisecond))
	m0 := rs[0].WindowSummary(0.2, 0.3).Mean
	m1 := rs[1].WindowSummary(0.2, 0.3).Mean
	if ratio := m0 / m1; ratio > 1.4 || ratio < 0.7 {
		t.Errorf("burst-paced ratio %v, want near fair", ratio)
	}
	if util := (m0 + m1) / 1.25e9; util < 0.85 {
		t.Errorf("utilisation %v, want > 0.85", util)
	}
}

// Figure 10(b): 64 KB chunks collide at start (incast), the huge RTT sample
// crushes both rates, and recovery is slow because updates are
// completion-gated.
func TestBurst64KBIncastCollapse(t *testing.T) {
	p := DefaultParams()
	p.Burst = true
	p.Seg = 64000
	nw, _, senders := star10G(t, p, []des.Time{0, 0}, []float64{5e9 / 8, 5e9 / 8}, 1)
	minAgg := math.Inf(1)
	nw.Sim.Every(des.Time(10*des.Millisecond), 100*des.Microsecond, func() {
		if agg := senders[0].Rate() + senders[1].Rate(); agg < minAgg {
			minAgg = agg
		}
	})
	nw.Sim.RunUntil(des.Time(400 * des.Millisecond))
	if minAgg > 0.05*1.25e9 {
		t.Errorf("aggregate rate never collapsed (min %v); expected the Figure 10b incast drop", minAgg)
	}
}

// Per-packet pacing with the same parameters never collapses like that.
func TestPerPacketNoCollapse(t *testing.T) {
	nw, _, senders := star10G(t, DefaultParams(), []des.Time{0, 0}, []float64{5e9 / 8, 5e9 / 8}, 1)
	minAgg := math.Inf(1)
	nw.Sim.Every(des.Time(10*des.Millisecond), 100*des.Microsecond, func() {
		if agg := senders[0].Rate() + senders[1].Rate(); agg < minAgg {
			minAgg = agg
		}
	})
	nw.Sim.RunUntil(des.Time(400 * des.Millisecond))
	if minAgg < 0.3*1.25e9 {
		t.Errorf("per-packet pacing collapsed to %v; expected sustained utilisation", minAgg)
	}
}

// New flows without an explicit start rate begin at C/(N+1), per [21].
func TestStartRateDefault(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	if _, err := NewEndpoint(star.Receiver, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ep.NewFlow(1, star.Receiver.ID(), -1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ep.NewFlow(2, star.Receiver.ID(), -1, des.Time(des.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.RunUntil(1)
	if want := 1.25e9 / 2; s1.Rate() != want {
		t.Errorf("first flow start rate %v, want C/2 = %v", s1.Rate(), want)
	}
	nw.Sim.RunUntil(des.Time(des.Millisecond) + 1)
	if want := 1.25e9 / 3; s2.Rate() != want {
		t.Errorf("second flow start rate %v, want C/3 = %v", s2.Rate(), want)
	}
}

// Receiver generates one completion event per segment and reports flow
// completion with the right byte count.
func TestSegmentAcksAndCompletion(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	rx, err := NewEndpoint(star.Receiver, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var completions []Completion
	rx.OnComplete = func(c Completion) { completions = append(completions, c) }
	acks := 0
	origTransport := star.Senders[0].Transport
	_ = origTransport
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	inner := star.Senders[0].Transport
	star.Senders[0].Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
		if pkt.Kind == netsim.Ack {
			acks++
		}
		inner.Handle(h, pkt)
	})
	const size = 80000 // 5 segments of 16 KB
	s, err := ep.NewFlow(9, star.Receiver.ID(), size, 0, 5e8)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.Run()
	if !s.Done() || s.SentBytes() != size {
		t.Errorf("done=%v sent=%d, want true/%d", s.Done(), s.SentBytes(), size)
	}
	if acks != 5 {
		t.Errorf("got %d completion events, want 5 (one per 16 KB segment)", acks)
	}
	if len(completions) != 1 || completions[0].Bytes != size || completions[0].Flow != 9 {
		t.Errorf("completions = %+v, want one with %d bytes for flow 9", completions, size)
	}
}

func TestDuplicateFlowIDRejected(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.NewFlow(1, star.Receiver.ID(), 1000, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.NewFlow(1, star.Receiver.ID(), 1000, 0, 0); err == nil {
		t.Error("duplicate flow id accepted")
	}
}

// The MinRTT gate: completion events arriving faster than D_minRTT do not
// trigger extra rate updates.
func TestUpdateGate(t *testing.T) {
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	if _, err := NewEndpoint(star.Receiver, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	ep, err := NewEndpoint(star.Senders[0], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ep.NewFlow(0, star.Receiver.ID(), -1, 0, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	updates := 0
	s.RateHook = func(des.Time, float64) { updates++ }
	nw.Sim.RunUntil(des.Time(10 * des.Millisecond))
	// At line rate a 16 KB segment takes 12.8 µs < MinRTT = 20 µs, so
	// updates are gated to at most one per 20 µs: <= 500 in 10 ms.
	if updates > 520 {
		t.Errorf("%d rate updates in 10ms, gate to ~500 expected", updates)
	}
	if updates < 100 {
		t.Errorf("only %d rate updates in 10ms; the control loop looks dead", updates)
	}
}
