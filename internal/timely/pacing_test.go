package timely

// Wire-level pacing tests: the two disciplines of §4.2 must shape traffic
// exactly as described — per-packet pacing spaces every MTU by size/rate,
// per-burst pacing emits whole segments back-to-back at line rate with the
// average rate set by the inter-burst gap.

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// recordArrivals runs one sender at a fixed rate toward a recording
// receiver and returns the arrival times of the first n data packets.
func recordArrivals(t *testing.T, p Params, rate float64, n int) []des.Time {
	t.Helper()
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	var arrivals []des.Time
	star.Receiver.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
		if pkt.Kind == netsim.Data {
			arrivals = append(arrivals, h.Now())
		}
	})
	ep, err := NewEndpoint(star.Senders[0], p)
	if err != nil {
		t.Fatal(err)
	}
	// Re-point the transport at the recorder (NewEndpoint installed the
	// TIMELY engine; the sender host never receives data anyway).
	_ = ep
	if _, err := ep.NewFlow(0, star.Receiver.ID(), -1, 0, rate); err != nil {
		t.Fatal(err)
	}
	for len(arrivals) < n && nw.Sim.Pending() > 0 {
		nw.Sim.RunUntil(nw.Sim.Now() + des.Time(des.Millisecond))
	}
	if len(arrivals) < n {
		t.Fatalf("only %d arrivals", len(arrivals))
	}
	return arrivals[:n]
}

func TestPerPacketPacingGaps(t *testing.T) {
	p := DefaultParams()
	rate := 1.25e8 // 1 Gb/s on a 10 Gb/s link: gaps dominated by pacing
	arr := recordArrivals(t, p, rate, 10)
	wantGap := des.DurationFromSeconds(netsim.DataMTU / rate) // 8 µs
	for i := 1; i < len(arr); i++ {
		gap := arr[i].Sub(arr[i-1])
		if gap < wantGap-des.Microsecond || gap > wantGap+des.Microsecond {
			t.Errorf("gap %d = %v, want ~%v (per-packet pacing)", i, gap, wantGap)
		}
	}
}

func TestBurstPacingShape(t *testing.T) {
	p := DefaultParams()
	p.Burst = true // 16 KB chunks
	rate := 1.25e8
	arr := recordArrivals(t, p, rate, 32)                       // two full bursts
	lineGap := des.DurationFromSeconds(netsim.DataMTU / 1.25e9) // 0.8 µs at line rate
	// Within the first burst (packets 0..15): arrivals back-to-back at
	// line rate.
	for i := 1; i < 16; i++ {
		gap := arr[i].Sub(arr[i-1])
		if gap > lineGap+des.Microsecond/2 {
			t.Errorf("intra-burst gap %d = %v, want line-rate %v", i, gap, lineGap)
		}
	}
	// Between bursts: the gap sets the average rate — Seg/rate = 128 µs
	// from burst start to burst start, so arr[16]-arr[0] ≈ 128 µs.
	cycle := arr[16].Sub(arr[0])
	want := des.DurationFromSeconds(float64(p.Seg) / rate)
	if cycle < want-5*des.Microsecond || cycle > want+5*des.Microsecond {
		t.Errorf("burst cycle %v, want ~%v (Seg/rate)", cycle, want)
	}
}

func TestBurstAverageRateMatchesTarget(t *testing.T) {
	p := DefaultParams()
	p.Burst = true
	nw := netsim.New(1)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	var bytes int64
	star.Receiver.Transport = netsim.TransportFunc(func(h *netsim.Host, pkt *netsim.Packet) {
		if pkt.Kind == netsim.Data {
			bytes += int64(pkt.Size)
		}
	})
	ep, err := NewEndpoint(star.Senders[0], p)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 2.5e8
	if _, err := ep.NewFlow(0, star.Receiver.ID(), -1, 0, rate); err != nil {
		t.Fatal(err)
	}
	const horizon = 20 * des.Millisecond
	nw.Sim.RunUntil(des.Time(horizon))
	got := float64(bytes) / horizon.Seconds()
	if got < rate*0.95 || got > rate*1.05 {
		t.Errorf("delivered %v B/s, want ~%v (burst gap sets the average)", got, rate)
	}
}
