// Package timely implements the TIMELY (Algorithm 1) and patched TIMELY
// (Algorithm 2) endpoints of §4 for the packet-level simulator: RTT
// measurement once per completion event, the EWMA RTT-gradient engine, and
// both pacing disciplines — per-packet pacing and the per-burst chunk
// pacing the TIMELY implementation uses (§4.2, Figure 10).
package timely

import (
	"errors"
	"fmt"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

// Params are the TIMELY knobs of [21], in wire units (bytes, bytes/s).
type Params struct {
	EWMA    float64      // α: weight of the newest RTT difference (0.875)
	Beta    float64      // β: multiplicative decrease factor
	Delta   float64      // δ: additive increase step, bytes/s
	TLow    des.Duration // additive-increase RTT threshold
	THigh   des.Duration // multiplicative-decrease RTT threshold
	MinRTT  des.Duration // D_minRTT: gradient normalisation & update gate
	Seg     int          // completion-event segment size, bytes
	Burst   bool         // per-burst pacing (chunks at line rate) vs per-packet
	MinRate float64      // rate floor, bytes/s

	// BetaHigh is the decrease factor for the newRTT > THigh emergency
	// branch. Zero means Beta. Patched TIMELY shrinks Beta to 0.008 for
	// the in-band term while the THigh brake keeps the original 0.8 —
	// the §4.3 fix targets the fixed-point structure, "without changing
	// the dynamics of TIMELY's queue build up" (§5.1).
	BetaHigh float64

	// Patched selects Algorithm 2 (the §4.3 fix).
	Patched bool
	// RTTRef is Algorithm 2's reference RTT; rate decrease scales with
	// (newRTT-RTTRef)/RTTRef. The paper's q' = C·T_low corresponds to
	// RTTRef ≈ T_low plus the topology's base RTT.
	RTTRef des.Duration

	// HAI enables hyper-active increase after five consecutive additive
	// increases (present in [21], ignored by the paper's models; off by
	// default).
	HAI bool

	// GradClamp bounds the normalised RTT gradient to ±GradClamp before
	// the multiplicative decrease (0: unbounded, the Algorithm 1
	// literal). A bound of 1 caps the per-update decrease at β, which is
	// how a hardware implementation keeps one noisy sample from zeroing
	// the rate.
	GradClamp float64

	// Recovery enables go-back-N loss recovery: acks become cumulative
	// (Seq carries the receiver's next expected offset), gaps trigger
	// rate-limited NACKs, and the sender rewinds and retransmits with an
	// RTO backstop. Off by default; with Recovery false the wire
	// behaviour is bit-identical to builds that predate it.
	Recovery bool
	// RTO is the retransmission timeout (0: 1 ms when Recovery is on).
	RTO des.Duration
	// RTOMax caps the exponential backoff (0: 8×RTO).
	RTOMax des.Duration
	// NackMinGap rate-limits NACKs and duplicate re-acks per flow (0: 50 µs).
	NackMinGap des.Duration
}

// withRecoveryDefaults fills zero-valued recovery knobs when Recovery is
// enabled; with Recovery off they stay zero and unused.
func (p Params) withRecoveryDefaults() Params {
	if !p.Recovery {
		return p
	}
	if p.RTO == 0 {
		p.RTO = des.Millisecond
	}
	if p.RTOMax == 0 {
		p.RTOMax = 8 * p.RTO
	}
	if p.NackMinGap == 0 {
		p.NackMinGap = 50 * des.Microsecond
	}
	return p
}

// DefaultParams returns the footnote-4 parameters with 16 KB segments and
// per-packet pacing.
func DefaultParams() Params {
	return Params{
		EWMA:    0.875,
		Beta:    0.8,
		Delta:   10e6 / 8,
		TLow:    50 * des.Microsecond,
		THigh:   500 * des.Microsecond,
		MinRTT:  20 * des.Microsecond,
		Seg:     16000,
		MinRate: 1e6 / 8,
	}
}

// DefaultPatchedParams returns the §4.3 patched parameters: β = 0.008,
// Seg = 16 KB, RTTRef = T_low + 10 µs of base RTT.
func DefaultPatchedParams() Params {
	p := DefaultParams()
	p.Patched = true
	p.BetaHigh = p.Beta // keep the original 0.8 emergency brake
	p.Beta = 0.008
	p.RTTRef = p.TLow + 10*des.Microsecond
	return p
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.EWMA <= 0 || p.EWMA > 1:
		return errors.New("timely: EWMA must be in (0,1]")
	case p.Beta <= 0 || p.Beta >= 1:
		return errors.New("timely: Beta must be in (0,1)")
	case p.Delta <= 0:
		return errors.New("timely: Delta must be positive")
	case p.TLow < 0 || p.THigh <= p.TLow:
		return errors.New("timely: need 0 <= TLow < THigh")
	case p.MinRTT <= 0:
		return errors.New("timely: MinRTT must be positive")
	case p.Seg < netsim.DataMTU:
		return errors.New("timely: Seg must be at least one MTU")
	case p.MinRate <= 0:
		return errors.New("timely: MinRate must be positive")
	case p.Patched && p.RTTRef <= 0:
		return errors.New("timely: patched mode needs RTTRef")
	case p.Recovery && (p.RTO <= 0 || p.RTOMax < p.RTO || p.NackMinGap <= 0):
		return errors.New("timely: recovery needs 0 < RTO <= RTOMax and a positive NackMinGap")
	}
	return nil
}

// Completion reports a finished flow at the receiver.
type Completion struct {
	Flow  int
	Bytes int64
	At    des.Time
}

// Endpoint is the per-host TIMELY engine (both sender and receiver roles).
type Endpoint struct {
	host  *netsim.Host
	p     Params
	flows map[int]*Sender
	rx    map[int]*rxState // go-back-N receive state (Recovery only)

	rxBytes map[int]int64
	// OnComplete fires when a flow's last packet arrives here.
	OnComplete func(Completion)

	// ctr is the endpoint's bound counter set; nil when the network has no
	// observer (or no metrics registry) attached.
	ctr *obs.EndpointCounters
	// rttH/paceGapH are the endpoint's latency histograms (per-flow RTT
	// samples, pacing gaps between data emissions); nil when the network
	// has no observer (or no HistSet) attached.
	rttH     *obs.Hist
	paceGapH *obs.Hist

	// Control-loop audit binding (nil without an attached trail): aud
	// receives one Decision per RTT sample, gradient computation and rate
	// action; audSeq numbers this endpoint's decisions for the canonical
	// audit sort order.
	aud    *obs.AuditTrail
	audSeq uint64
}

// NewEndpoint attaches a TIMELY engine to h.
func NewEndpoint(h *netsim.Host, p Params) (*Endpoint, error) {
	p = p.withRecoveryDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Endpoint{
		host: h, p: p,
		flows:   make(map[int]*Sender),
		rx:      make(map[int]*rxState),
		rxBytes: make(map[int]int64),
	}
	e.bindObs()
	h.Transport = e
	return e, nil
}

// Host returns the attached host.
func (e *Endpoint) Host() *netsim.Host { return e.host }

// ActiveFlows counts flows currently sending from this host.
func (e *Endpoint) ActiveFlows() int {
	n := 0
	for _, s := range e.flows {
		if s.started && !s.done {
			n++
		}
	}
	return n
}

// Handle implements netsim.Transport.
func (e *Endpoint) Handle(h *netsim.Host, pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.Data:
		e.handleData(pkt)
	case netsim.Ack:
		if s, ok := e.flows[pkt.Flow]; ok {
			s.onAck(pkt)
		}
	case netsim.Nack:
		if s, ok := e.flows[pkt.Flow]; ok {
			s.onNack(pkt.Seq)
		}
	}
}

func (e *Endpoint) handleData(pkt *netsim.Packet) {
	if e.p.Recovery {
		e.recvData(pkt)
		return
	}
	e.rxBytes[pkt.Flow] += int64(pkt.Size)
	if e.ctr != nil {
		e.ctr.RxBytes.Add(int64(pkt.Size))
	}
	if pkt.AckReq || pkt.Last {
		ack := e.host.AllocPacket()
		ack.Flow = pkt.Flow
		ack.Dst = pkt.Src
		ack.Size = netsim.CtrlSize
		ack.Kind = netsim.Ack
		ack.EchoT = pkt.SentAt
		ack.Bytes = pkt.Size
		if e.ctr != nil {
			e.ctr.AcksTx.Inc()
		}
		e.host.Send(ack)
	}
	if pkt.Last && e.OnComplete != nil {
		e.OnComplete(Completion{Flow: pkt.Flow, Bytes: e.rxBytes[pkt.Flow], At: e.host.Now()})
	}
}

// Sender runs Algorithm 1 (or 2) for one flow.
type Sender struct {
	e    *Endpoint
	id   int
	dst  int
	size int64 // <0: unbounded

	rate      float64
	startRate float64

	prevRTT    des.Duration
	rttDiff    float64 // seconds
	haveRTT    bool
	lastUpdate des.Time
	aiStreak   int // consecutive additive increases (HAI)

	segBytes int64 // bytes sent in the current segment
	sent     int64
	started  bool
	done     bool

	// Go-back-N recovery state (Params.Recovery only).
	acked        int64 // cumulative acknowledged bytes
	maxSent      int64 // high-water mark of the send cursor
	retxBytes    int64
	rewinds      int64
	rtos         int64
	rtoShift     int // exponential backoff exponent
	recovering   bool
	recoverStart des.Time
	recoverTime  des.Duration
	paceEv       des.EventRef // pending pacing tick (cancelled on rewind)
	rtoEv        des.EventRef

	// RateHook, if non-nil, observes every rate change.
	RateHook func(t des.Time, rate float64)

	// Histogram state: previous data-send instant, so the pacing-gap
	// histogram records inter-emission spacing. Only maintained when the
	// pacing histogram is bound.
	obsLastSend des.Time
	obsSent     bool
}

// Handler arguments: the sender is its own des.Handler, dispatching the
// pacing events on a small-int argument (boxes without allocating) so
// steady-state scheduling is allocation-free.
const (
	evStart  = iota // flow start at its configured time
	evPacket        // per-packet pacing tick
	evBurst         // per-burst pacing tick
	evRTO           // retransmission timeout (Recovery only)
)

// OnEvent implements des.Handler.
func (s *Sender) OnEvent(arg any) {
	switch arg.(int) {
	case evStart:
		s.start()
	case evPacket:
		s.sendNextPacket()
	case evBurst:
		s.sendBurst()
	case evRTO:
		s.onRTO()
	}
}

// NewFlow registers a flow of size bytes (size < 0: unbounded) toward host
// dst, starting at the given time. startRate <= 0 selects the [21] default
// of C/(N+1), computed at start time from the flows active on this host.
func (e *Endpoint) NewFlow(id int, dst int, size int64, start des.Time, startRate float64) (*Sender, error) {
	if _, dup := e.flows[id]; dup {
		return nil, fmt.Errorf("timely: duplicate flow id %d", id)
	}
	s := &Sender{e: e, id: id, dst: dst, size: size, startRate: startRate}
	e.flows[id] = s
	e.host.AtHandler(start, s, evStart)
	return s, nil
}

// Rate returns the current rate in bytes/s.
func (s *Sender) Rate() float64 { return s.rate }

// Gradient returns the current normalised RTT gradient.
func (s *Sender) Gradient() float64 { return s.rttDiff / s.e.p.MinRTT.Seconds() }

// RTT returns the most recent RTT sample (zero before the first
// completion event) — the signal the probe layer samples.
func (s *Sender) RTT() des.Duration { return s.prevRTT }

// Done reports whether all bytes were handed to the NIC.
func (s *Sender) Done() bool { return s.done }

// SentBytes reports bytes handed to the NIC so far.
func (s *Sender) SentBytes() int64 { return s.sent }

func (s *Sender) start() {
	if s.started {
		return
	}
	s.started = true
	if s.startRate > 0 {
		s.rate = s.startRate
	} else {
		n := s.e.ActiveFlows() // this flow already counts as active
		s.rate = s.e.host.LineRate() / float64(n+1)
	}
	s.clampRate()
	if s.e.p.Burst {
		s.sendBurst()
	} else {
		s.sendNextPacket()
	}
}

func (s *Sender) clampRate() {
	line := s.e.host.LineRate()
	if s.rate > line {
		s.rate = line
	}
	if s.rate < s.e.p.MinRate {
		s.rate = s.e.p.MinRate
	}
}

// nextPacket builds the next data packet, flagging segment boundaries
// (AckReq) and flow completion (Last). Returns nil when the flow is done.
func (s *Sender) nextPacket() *netsim.Packet {
	size := int64(netsim.DataMTU)
	last := false
	if s.size >= 0 {
		remain := s.size - s.sent
		if remain <= 0 {
			return nil
		}
		if remain <= size {
			size = remain
			last = true
		}
	}
	s.segBytes += size
	ackReq := last
	if s.segBytes >= int64(s.e.p.Seg) {
		ackReq = true
		s.segBytes = 0
	}
	pkt := s.e.host.AllocPacket()
	pkt.Flow = s.id
	pkt.Dst = s.dst
	pkt.Size = int(size)
	pkt.Kind = netsim.Data
	pkt.ECT = true
	pkt.Seq = s.sent
	pkt.Last = last
	pkt.AckReq = ackReq
	if s.e.p.Recovery && s.sent < s.maxSent {
		s.retxBytes += size
		s.obsRetx(size, s.sent)
	}
	s.sent += size
	if s.e.p.Recovery && s.sent > s.maxSent {
		s.maxSent = s.sent
	}
	return pkt
}

// sendNextPacket implements per-packet pacing: every packet is spaced by
// size/rate.
func (s *Sender) sendNextPacket() {
	if s.done {
		return
	}
	pkt := s.nextPacket()
	if pkt == nil {
		s.cursorDone()
		return
	}
	// Ownership of pkt transfers to the network at Send; read its fields
	// before handing it over.
	size, last := pkt.Size, pkt.Last
	s.e.host.Send(pkt)
	s.obsPace()
	if s.e.p.Recovery {
		s.armRTO()
	}
	if last {
		s.cursorDone()
		return
	}
	gap := des.DurationFromSeconds(float64(size) / s.rate)
	s.paceEv = s.e.host.ScheduleHandler(gap, s, evPacket)
}

// sendBurst implements per-burst pacing: a whole segment is handed to the
// NIC at once (it drains at line rate), and the next burst is scheduled so
// the average rate equals the target rate (§4.2).
func (s *Sender) sendBurst() {
	if s.done {
		return
	}
	burstBytes := int64(0)
	ended := false
	for burstBytes < int64(s.e.p.Seg) {
		pkt := s.nextPacket()
		if pkt == nil {
			ended = true
			break
		}
		size, last, ackReq := pkt.Size, pkt.Last, pkt.AckReq
		s.e.host.Send(pkt)
		s.obsPace()
		burstBytes += int64(size)
		if last {
			ended = true
			break
		}
		if ackReq {
			break // segment boundary
		}
	}
	if s.e.p.Recovery && burstBytes > 0 {
		s.armRTO()
	}
	if ended {
		s.cursorDone()
		return
	}
	gap := des.DurationFromSeconds(float64(burstBytes) / s.rate)
	s.paceEv = s.e.host.ScheduleHandler(gap, s, evBurst)
}

// onAck is the completion event: compute the RTT sample and run the rate
// update, gated to once per MinRTT as in [21] §5. Under Recovery the ack
// is also cumulative; the acknowledgement state advances even when the
// RTT update is gated away.
func (s *Sender) onAck(pkt *netsim.Packet) {
	if !s.started {
		return
	}
	if s.e.p.Recovery {
		s.onCumAck(pkt.Seq)
		if s.done {
			return
		}
	}
	now := s.e.host.Now()
	newRTT := now.Sub(pkt.EchoT)
	if h := s.e.rttH; h != nil {
		// Every completion-event RTT sample lands in the distribution,
		// including the ones the MinRTT gate below keeps away from the
		// rate computation — the spread is what the paper plots.
		h.Record(newRTT.Seconds())
	}
	if s.e.aud != nil {
		// Likewise every sample is audited, gated or not, so the offline
		// analysis sees the same signal the engine saw.
		s.audit(obs.Decision{Type: obs.DecRTTSample, RTT: newRTT.Seconds()})
	}
	if s.haveRTT && now.Sub(s.lastUpdate) < s.e.p.MinRTT {
		return
	}
	s.update(newRTT)
	s.lastUpdate = now
	if s.RateHook != nil {
		s.RateHook(now, s.rate)
	}
}

// update is Algorithm 1 (or Algorithm 2 when Patched).
func (s *Sender) update(newRTT des.Duration) {
	p := s.e.p
	if !s.haveRTT {
		s.haveRTT = true
		s.prevRTT = newRTT
		return
	}
	newDiff := (newRTT - s.prevRTT).Seconds()
	s.prevRTT = newRTT
	s.rttDiff = (1-p.EWMA)*s.rttDiff + p.EWMA*newDiff
	gradient := s.rttDiff / p.MinRTT.Seconds()
	oldRate := s.rate
	dec := obs.DecTimelyAdd
	if s.e.aud != nil {
		s.audit(obs.Decision{Type: obs.DecGradient, Grad: gradient, RTT: newRTT.Seconds()})
	}

	switch {
	case newRTT < p.TLow:
		s.additive()
	case newRTT > p.THigh:
		s.aiStreak = 0
		bh := p.BetaHigh
		if bh == 0 {
			bh = p.Beta
		}
		s.rate *= 1 - bh*(1-p.THigh.Seconds()/newRTT.Seconds())
		dec = obs.DecTimelyBrake
	default:
		if p.Patched {
			// Algorithm 2 lines 9-12.
			w := Weight(gradient)
			errTerm := (newRTT - p.RTTRef).Seconds() / p.RTTRef.Seconds()
			s.rate = p.Delta*(1-w) + s.rate*(1-p.Beta*w*errTerm)
			s.aiStreak = 0
			dec = obs.DecTimelyPatched
		} else if gradient <= 0 {
			s.additive()
		} else {
			s.aiStreak = 0
			g := gradient
			if p.GradClamp > 0 && g > p.GradClamp {
				g = p.GradClamp
			}
			s.rate *= 1 - p.Beta*g
			dec = obs.DecTimelyMD
		}
	}
	s.clampRate()
	if s.e.aud != nil {
		s.audit(obs.Decision{
			Type: dec, OldRate: oldRate, NewRate: s.rate,
			RTT: newRTT.Seconds(), Grad: gradient,
		})
	}
}

func (s *Sender) additive() {
	s.aiStreak++
	step := s.e.p.Delta
	if s.e.p.HAI && s.aiStreak >= 5 {
		step *= 5
	}
	s.rate += step
}

// Weight is the Eq. 30 linear rate-decrease weight used by Algorithm 2.
func Weight(g float64) float64 {
	switch {
	case g <= -0.25:
		return 0
	case g >= 0.25:
		return 1
	default:
		return 2*g + 0.5
	}
}
