package timely

import (
	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// Go-back-N loss recovery (Params.Recovery). TIMELY already acks at
// segment boundaries for RTT measurement; under Recovery those same acks
// become cumulative (Seq carries the next expected byte offset), sequence
// gaps produce rate-limited NACKs, and the sender rewinds its cursor and
// regenerates the lost tail. An RTO with exponential backoff covers lost
// feedback. With Recovery off none of this code runs and the wire
// behaviour is unchanged.

// rxState is the receiver-side per-flow reassembly cursor.
type rxState struct {
	exp     int64 // next expected byte offset
	lastSig des.Time
	sigged  bool
}

// recvData is handleData under Recovery.
func (e *Endpoint) recvData(pkt *netsim.Packet) {
	st := e.rx[pkt.Flow]
	if st == nil {
		st = &rxState{}
		e.rx[pkt.Flow] = st
	}
	now := e.host.Now()
	switch {
	case pkt.Seq == st.exp:
		size := int64(pkt.Size)
		st.exp += size
		e.rxBytes[pkt.Flow] += size
		if e.ctr != nil {
			e.ctr.RxBytes.Add(size)
		}
		if pkt.AckReq || pkt.Last {
			e.signal(pkt, netsim.Ack, st, now)
		}
		if pkt.Last && e.OnComplete != nil {
			e.OnComplete(Completion{Flow: pkt.Flow, Bytes: e.rxBytes[pkt.Flow], At: now})
		}
	case pkt.Seq > st.exp:
		// Gap: rate-limited NACK naming the missing offset.
		if !st.sigged || now.Sub(st.lastSig) >= e.p.NackMinGap {
			e.signal(pkt, netsim.Nack, st, now)
		}
	default:
		// Duplicate (rewind overshoot or a lost ack): re-ack, rate
		// limited. The echo still yields a valid RTT sample.
		if !st.sigged || now.Sub(st.lastSig) >= e.p.NackMinGap {
			e.signal(pkt, netsim.Ack, st, now)
		}
	}
}

// signal emits a cumulative Ack or Nack; acks echo the data packet's send
// timestamp so the RTT engine keeps its completion events.
func (e *Endpoint) signal(data *netsim.Packet, kind netsim.Kind, st *rxState, now des.Time) {
	st.sigged = true
	st.lastSig = now
	if e.ctr != nil {
		if kind == netsim.Ack {
			e.ctr.AcksTx.Inc()
		} else {
			e.ctr.NacksTx.Inc()
		}
	}
	pkt := e.host.AllocPacket()
	pkt.Flow = data.Flow
	pkt.Dst = data.Src
	pkt.Size = netsim.CtrlSize
	pkt.Kind = kind
	pkt.Seq = st.exp
	if kind == netsim.Ack {
		pkt.EchoT = data.SentAt
		pkt.Bytes = data.Size
	}
	e.host.Send(pkt)
}

// TotalRxBytes sums delivered payload across flows at this endpoint —
// under Recovery that is in-order bytes only, i.e. goodput.
func (e *Endpoint) TotalRxBytes() int64 {
	var n int64
	for _, b := range e.rxBytes {
		n += b
	}
	return n
}

// RecoveryStats summarises a sender's loss-recovery work.
type RecoveryStats struct {
	RetxBytes    int64        // bytes re-sent below the high-water mark
	Rewinds      int64        // go-back-N cursor rewinds
	RTOs         int64        // retransmission timeouts fired
	AckedBytes   int64        // cumulative acknowledged bytes
	Recovering   bool         // currently inside a recovery episode
	RecoveryTime des.Duration // total time spent recovering
}

// Recovery reports the sender's loss-recovery statistics.
func (s *Sender) Recovery() RecoveryStats {
	return RecoveryStats{
		RetxBytes:    s.retxBytes,
		Rewinds:      s.rewinds,
		RTOs:         s.rtos,
		AckedBytes:   s.acked,
		Recovering:   s.recovering,
		RecoveryTime: s.recoverTime,
	}
}

// cursorDone handles the send cursor reaching the end of the flow: with
// recovery pending acks, pacing stops but the RTO stays armed; otherwise
// the flow is done.
func (s *Sender) cursorDone() {
	if s.e.p.Recovery && s.size >= 0 && s.acked < s.size {
		s.armRTO()
		return
	}
	s.done = true
	s.rtoEv.Cancel()
}

// onCumAck applies the cumulative part of an acknowledgement.
func (s *Sender) onCumAck(seq int64) {
	if s.done {
		return
	}
	if seq > s.acked {
		s.acked = seq
		s.rtoShift = 0 // feedback is flowing again
	}
	s.checkRecovered()
	if s.size >= 0 && s.acked >= s.size {
		s.complete()
		return
	}
	if s.acked >= s.sent {
		s.rtoEv.Cancel() // nothing outstanding
	} else {
		s.armRTO()
	}
}

// onNack rewinds to the receiver's next expected offset; the NACK's Seq
// also acknowledges everything before it.
func (s *Sender) onNack(seq int64) {
	if !s.e.p.Recovery || !s.started || s.done {
		return
	}
	if seq > s.acked {
		s.acked = seq
		s.rtoShift = 0
	}
	s.checkRecovered()
	if s.size >= 0 && s.acked >= s.size {
		s.complete()
		return
	}
	s.rewind(seq)
}

// onRTO assumes everything outstanding was lost and goes back to the
// last acknowledged offset.
func (s *Sender) onRTO() {
	if s.done || !s.started {
		return
	}
	if s.acked >= s.sent {
		s.armRTO() // stale timer; keep a quiet backstop
		return
	}
	s.rtos++
	if s.e.ctr != nil {
		s.e.ctr.RTOs.Inc()
	}
	if s.rtoShift < 16 {
		s.rtoShift++ // exponential backoff, capped by RTOMax in armRTO
	}
	s.rewind(s.acked)
}

// rewind moves the send cursor back to offset `to` and restarts pacing;
// the payload is synthetic, so the cursor regenerates identical packets
// and no retransmit buffer is needed. The segment accumulator restarts so
// ack-request boundaries stay aligned with the retransmitted stream.
func (s *Sender) rewind(to int64) {
	if to < s.acked {
		to = s.acked
	}
	if to >= s.sent {
		return // nothing to go back over
	}
	if !s.recovering {
		s.recovering = true
		s.recoverStart = s.e.host.Now()
	}
	s.rewinds++
	s.sent = to
	s.segBytes = 0
	s.paceEv.Cancel()
	if s.e.p.Burst {
		s.sendBurst()
	} else {
		s.sendNextPacket()
	}
}

// checkRecovered closes a recovery episode once the cumulative ack has
// caught back up with the high-water mark.
func (s *Sender) checkRecovered() {
	if s.recovering && s.acked >= s.maxSent {
		s.recoverTime += s.e.host.Now().Sub(s.recoverStart)
		s.recovering = false
	}
}

// complete ends the flow once every byte is acknowledged.
func (s *Sender) complete() {
	if s.recovering {
		s.recoverTime += s.e.host.Now().Sub(s.recoverStart)
		s.recovering = false
	}
	s.done = true
	s.paceEv.Cancel()
	s.rtoEv.Cancel()
}

// armRTO (re)starts the retransmission timer with the current backoff.
func (s *Sender) armRTO() {
	d := s.e.p.RTO << s.rtoShift
	if d > s.e.p.RTOMax {
		d = s.e.p.RTOMax
	}
	s.rtoEv.Cancel()
	s.rtoEv = s.e.host.ScheduleHandler(d, s, evRTO)
}
