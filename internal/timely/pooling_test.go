package timely_test

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
	"ecndelay/internal/timely"
)

// Pooled and unpooled TIMELY runs (data, acks, RTT-gradient updates, burst
// pacing) must be bit-identical for the same seed: the pool changes memory
// reuse only, never a simulated result.
func TestTimelyPoolingDeterminism(t *testing.T) {
	for _, burst := range []bool{false, true} {
		run := func(pooling bool) (rates []float64, processed uint64, end des.Time) {
			p := timely.DefaultParams()
			p.Burst = burst
			nw := netsim.New(9)
			nw.SetPooling(pooling)
			star := netsim.NewStar(nw, netsim.StarConfig{
				Senders: 2,
				Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			})
			if _, err := timely.NewEndpoint(star.Receiver, p); err != nil {
				t.Fatal(err)
			}
			for i, h := range star.Senders {
				ep, err := timely.NewEndpoint(h, p)
				if err != nil {
					t.Fatal(err)
				}
				s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0, 5e9/8)
				if err != nil {
					t.Fatal(err)
				}
				s.RateHook = func(_ des.Time, rate float64) {
					rates = append(rates, rate)
				}
			}
			nw.Sim.RunUntil(des.Time(20 * des.Millisecond))
			return rates, nw.Sim.Processed(), nw.Sim.Now()
		}
		r1, p1, e1 := run(true)
		r2, p2, e2 := run(false)
		if p1 != p2 || e1 != e2 {
			t.Errorf("burst=%v: pooled (proc=%d end=%v) != unpooled (proc=%d end=%v)",
				burst, p1, e1, p2, e2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("burst=%v: rate trace lengths differ: %d vs %d", burst, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("burst=%v: rate trace diverges at update %d: %v vs %v",
					burst, i, r1[i], r2[i])
			}
		}
	}
}

// The lossy variant: packet loss plus go-back-N recovery exercises the
// recycle path hard (retransmitted data, NACKs, duplicate re-acks all ride
// recycled packets whose Seq/EchoT state must be zeroed between lives).
// Pooled and unpooled runs must still be bit-identical.
func TestTimelyPoolingDeterminismLossy(t *testing.T) {
	for _, burst := range []bool{false, true} {
		run := func(pooling bool) (goodput int64, retx int64, processed uint64, end des.Time) {
			p := timely.DefaultParams()
			p.Burst = burst
			p.Recovery = true
			p.RTO = 200 * des.Microsecond
			nw := netsim.New(9)
			nw.SetPooling(pooling)
			star := netsim.NewStar(nw, netsim.StarConfig{
				Senders: 2,
				Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			})
			rx, err := timely.NewEndpoint(star.Receiver, p)
			if err != nil {
				t.Fatal(err)
			}
			var senders []*timely.Sender
			for i, h := range star.Senders {
				ep, err := timely.NewEndpoint(h, p)
				if err != nil {
					t.Fatal(err)
				}
				s, err := ep.NewFlow(i, star.Receiver.ID(), 400000, 0, 5e9/8)
				if err != nil {
					t.Fatal(err)
				}
				senders = append(senders, s)
			}
			(&fault.Plan{Seed: 21, Links: []fault.LinkFaults{
				{Port: star.Bottleneck, Loss: []fault.Loss{{Kinds: fault.SelData, Rate: 0.02}}},
				{Port: star.Receiver.Port(), Loss: []fault.Loss{{Kinds: fault.SelCtrl, Rate: 0.05}}},
			}}).Apply(nw)
			nw.Sim.RunUntil(des.Time(des.Second))
			for _, s := range senders {
				retx += s.Recovery().RetxBytes
			}
			return rx.TotalRxBytes(), retx, nw.Sim.Processed(), nw.Sim.Now()
		}
		g1, x1, p1, e1 := run(true)
		g2, x2, p2, e2 := run(false)
		if g1 != g2 || x1 != x2 || p1 != p2 || e1 != e2 {
			t.Errorf("burst=%v: pooled (good=%d retx=%d proc=%d end=%v) != unpooled (good=%d retx=%d proc=%d end=%v)",
				burst, g1, x1, p1, e1, g2, x2, p2, e2)
		}
		if x1 == 0 {
			t.Errorf("burst=%v: lossy pooling test retransmitted nothing — not exercising recycle paths", burst)
		}
	}
}
