package timely

import (
	"fmt"

	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
)

// Observability binding: the endpoint registers its counter set when it is
// created on a network that already has an observer attached (attach the
// observer first). Every hook site below is a nil check when observability
// is off, so unobserved runs are untouched. TIMELY never touches the CNP
// counters — they exist so DCQCN and TIMELY runs export the same schema.

// bindObs registers the endpoint's counters under "timely.n<hostID>" and
// its latency histograms under the protocol-wide names "timely.rtt_s" and
// "timely.pace_gap_s" (all senders on a run feed one distribution, as the
// paper's per-protocol behaviour plots do).
func (e *Endpoint) bindObs() {
	o := e.host.Net().Observer()
	if o == nil {
		return
	}
	if o.Metrics != nil {
		e.ctr = o.Metrics.EndpointCounters(fmt.Sprintf("timely.n%d", e.host.ID()))
	}
	e.rttH = o.Hist("timely.rtt_s")
	e.paceGapH = o.Hist("timely.pace_gap_s")
	e.aud = o.Audit
}

// audit stamps the endpoint-invariant fields of a decision record and
// emits it. Callers have already checked s.e.aud != nil.
func (s *Sender) audit(d obs.Decision) {
	s.e.audSeq++
	d.T = s.e.host.Now()
	d.Node = int32(s.e.host.ID())
	d.Peer = int32(s.dst)
	d.Flow = int32(s.id)
	d.Seq = s.e.audSeq
	s.e.aud.Emit(d)
}

// obsPace records the gap since this sender's previous data emission into
// the pacing-gap histogram; a single nil check when observability is off.
func (s *Sender) obsPace() {
	h := s.e.paceGapH
	if h == nil {
		return
	}
	now := s.e.host.Now()
	if s.obsSent {
		h.Record(now.Sub(s.obsLastSend).Seconds())
	}
	s.obsSent = true
	s.obsLastSend = now
}

// obsRetx records one retransmitted packet (counters plus a trace record).
func (s *Sender) obsRetx(size, seq int64) {
	e := s.e
	if e.ctr != nil {
		e.ctr.RetxPkts.Inc()
		e.ctr.RetxBytes.Add(size)
	}
	if o := e.host.Net().Observer(); o != nil {
		o.Emit(obs.Event{
			T:    e.host.Now(),
			Type: obs.Retx,
			Kind: uint8(netsim.Data),
			Node: int32(e.host.ID()),
			Peer: int32(s.dst),
			Flow: int32(s.id),
			Size: int32(size),
			Seq:  seq,
		})
	}
}
