package timely_test

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/fault"
	"ecndelay/internal/netsim"
	"ecndelay/internal/timely"
)

func recoveryParams(burst bool) timely.Params {
	p := timely.DefaultParams()
	p.Recovery = true
	p.RTO = 200 * des.Microsecond
	p.Burst = burst
	return p
}

// Clean path, recovery enabled, both pacing modes: no retransmissions,
// full completion, full goodput.
func TestTimelyRecoveryCleanPath(t *testing.T) {
	for _, burst := range []bool{false, true} {
		nw := netsim.New(1)
		star := netsim.NewStar(nw, netsim.StarConfig{
			Senders: 2,
			Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
		})
		rx, err := timely.NewEndpoint(star.Receiver, recoveryParams(burst))
		if err != nil {
			t.Fatal(err)
		}
		completed := map[int]int64{}
		rx.OnComplete = func(c timely.Completion) { completed[c.Flow] = c.Bytes }
		const flowBytes = 200000
		var senders []*timely.Sender
		for i, h := range star.Senders {
			ep, err := timely.NewEndpoint(h, recoveryParams(burst))
			if err != nil {
				t.Fatal(err)
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), flowBytes, 0, 1.25e9)
			if err != nil {
				t.Fatal(err)
			}
			senders = append(senders, s)
		}
		nw.Sim.RunUntil(des.Time(des.Second))
		for i, s := range senders {
			if !s.Done() {
				t.Errorf("burst=%v flow %d not done", burst, i)
			}
			st := s.Recovery()
			if st.RetxBytes != 0 || st.RTOs != 0 {
				t.Errorf("burst=%v flow %d retransmitted on clean path: %+v", burst, i, st)
			}
			if completed[i] != flowBytes {
				t.Errorf("burst=%v flow %d delivered %d, want %d", burst, i, completed[i], flowBytes)
			}
		}
		if rx.TotalRxBytes() != 2*flowBytes {
			t.Errorf("burst=%v goodput %d, want %d", burst, rx.TotalRxBytes(), 2*flowBytes)
		}
	}
}

// Lossy path in both pacing modes: flows complete with exact goodput,
// retransmissions happen, and the run is seed-reproducible.
func TestTimelyRecoveryLossyFlowsComplete(t *testing.T) {
	const flowBytes = 500000
	for _, burst := range []bool{false, true} {
		type result struct {
			retx, goodput int64
			processed     uint64
			end           des.Time
		}
		run := func() result {
			nw := netsim.New(4)
			star := netsim.NewStar(nw, netsim.StarConfig{
				Senders: 2,
				Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			})
			rx, err := timely.NewEndpoint(star.Receiver, recoveryParams(burst))
			if err != nil {
				t.Fatal(err)
			}
			completed := map[int]int64{}
			rx.OnComplete = func(c timely.Completion) { completed[c.Flow] = c.Bytes }
			var senders []*timely.Sender
			for i, h := range star.Senders {
				ep, err := timely.NewEndpoint(h, recoveryParams(burst))
				if err != nil {
					t.Fatal(err)
				}
				s, err := ep.NewFlow(i, star.Receiver.ID(), flowBytes, 0, 1.25e9)
				if err != nil {
					t.Fatal(err)
				}
				senders = append(senders, s)
			}
			plan := &fault.Plan{Seed: 13, Links: []fault.LinkFaults{
				{Port: star.Bottleneck, Loss: []fault.Loss{{Kinds: fault.SelData, Rate: 0.02}}},
				{Port: star.Receiver.Port(), Loss: []fault.Loss{{Kinds: fault.SelCtrl, Rate: 0.10}}},
			}}
			applied := plan.Apply(nw)
			nw.Sim.RunUntil(des.Time(des.Second))
			if applied.Drops() == 0 {
				t.Fatal("fault plan injected no losses")
			}
			var r result
			for i, s := range senders {
				if !s.Done() {
					t.Fatalf("burst=%v flow %d never completed under loss", burst, i)
				}
				if completed[i] != flowBytes {
					t.Fatalf("burst=%v flow %d delivered %d, want %d", burst, i, completed[i], flowBytes)
				}
				r.retx += s.Recovery().RetxBytes
			}
			r.goodput = rx.TotalRxBytes()
			r.processed = nw.Sim.Processed()
			r.end = nw.Sim.Now()
			return r
		}
		a := run()
		if a.retx == 0 {
			t.Errorf("burst=%v: expected retransmissions under 2%% loss", burst)
		}
		if a.goodput != 2*flowBytes {
			t.Errorf("burst=%v goodput %d, want %d", burst, a.goodput, 2*flowBytes)
		}
		if b := run(); a != b {
			t.Errorf("burst=%v same seed diverged: %+v vs %+v", burst, a, b)
		}
	}
}

// Bursty (Gilbert–Elliott) loss hitting a whole segment: go-back-N must
// recover stretches of consecutive losses, not just single drops.
func TestTimelyRecoveryBurstLoss(t *testing.T) {
	nw := netsim.New(2)
	star := netsim.NewStar(nw, netsim.StarConfig{
		Senders: 1,
		Link:    netsim.LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	rx, err := timely.NewEndpoint(star.Receiver, recoveryParams(false))
	if err != nil {
		t.Fatal(err)
	}
	done := false
	rx.OnComplete = func(c timely.Completion) { done = true }
	ep, err := timely.NewEndpoint(star.Senders[0], recoveryParams(false))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ep.NewFlow(0, star.Receiver.ID(), 300000, 0, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	(&fault.Plan{Seed: 5, Links: []fault.LinkFaults{{
		Port: star.Bottleneck,
		Loss: []fault.Loss{{Kinds: fault.SelData,
			Burst: &fault.GilbertElliott{PGB: 0.01, PBG: 0.2, LossBad: 1}}},
	}}}).Apply(nw)
	nw.Sim.RunUntil(des.Time(des.Second))
	if !done || !s.Done() {
		t.Fatalf("flow did not complete under burst loss (rx=%v tx=%v)", done, s.Done())
	}
	st := s.Recovery()
	if st.RetxBytes == 0 || st.Rewinds == 0 {
		t.Errorf("burst loss recovered without retransmission? %+v", st)
	}
	if rx.TotalRxBytes() != 300000 {
		t.Errorf("goodput %d, want 300000", rx.TotalRxBytes())
	}
}

func TestTimelyRecoveryParamValidation(t *testing.T) {
	p := timely.DefaultParams()
	p.Recovery = true
	p.RTO = des.Millisecond
	p.RTOMax = des.Microsecond
	if p.Validate() == nil {
		t.Error("RTOMax < RTO accepted")
	}
	if _, err := timely.NewEndpoint(netsim.New(1).NewHost(), recoveryParams(false)); err != nil {
		t.Errorf("defaulted recovery params rejected: %v", err)
	}
}
