package timely

// Arithmetic-level tests of Algorithm 1 and Algorithm 2: a sender is driven
// with hand-crafted ACKs whose EchoT encodes an exact RTT, and the
// resulting rate updates are checked against the algorithm lines.

import (
	"math"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/netsim"
)

// algoHarness wires a sender whose data packets go to a sink, so the test
// fully controls the completion events it sees.
type algoHarness struct {
	nw     *netsim.Network
	host   *netsim.Host
	sender *Sender
}

func newAlgoHarness(t *testing.T, p Params, startRate float64) *algoHarness {
	t.Helper()
	nw := netsim.New(1)
	sink := nw.NewHost() // no transport: swallows data packets
	host := nw.NewHost()
	host.Connect(sink, 1.25e9, des.Microsecond, nil)
	sink.Connect(host, 1.25e9, des.Microsecond, nil)
	ep, err := NewEndpoint(host, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ep.NewFlow(1, sink.ID(), -1, 0, startRate)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sim.RunUntil(1) // start the flow
	return &algoHarness{nw: nw, host: host, sender: s}
}

// ack advances simulated time past the MinRTT gate and delivers a
// completion event whose sample is exactly rtt.
func (h *algoHarness) ack(rtt des.Duration) {
	h.nw.Sim.RunUntil(h.nw.Sim.Now() + des.Time(25*des.Microsecond))
	now := h.nw.Sim.Now()
	h.host.Receive(&netsim.Packet{Kind: netsim.Ack, Flow: 1, EchoT: now - des.Time(rtt)})
}

func TestFirstSampleOnlyPrimes(t *testing.T) {
	h := newAlgoHarness(t, DefaultParams(), 1e8)
	r0 := h.sender.Rate()
	h.ack(100 * des.Microsecond)
	if h.sender.Rate() != r0 {
		t.Errorf("rate changed on the first RTT sample: %v -> %v", r0, h.sender.Rate())
	}
}

func TestLowRTTAdditiveIncrease(t *testing.T) {
	p := DefaultParams()
	h := newAlgoHarness(t, p, 1e8)
	h.ack(30 * des.Microsecond) // prime
	r := h.sender.Rate()
	h.ack(30 * des.Microsecond) // < TLow=50µs → rate += δ
	want := r + p.Delta
	if math.Abs(h.sender.Rate()-want) > 1e-6 {
		t.Errorf("rate = %v, want %v (additive increase)", h.sender.Rate(), want)
	}
}

func TestHighRTTMultiplicativeDecrease(t *testing.T) {
	p := DefaultParams()
	h := newAlgoHarness(t, p, 1e9)
	h.ack(400 * des.Microsecond) // prime
	r := h.sender.Rate()
	rtt := 1000 * des.Microsecond // > THigh=500µs
	h.ack(rtt)
	want := r * (1 - p.Beta*(1-p.THigh.Seconds()/rtt.Seconds()))
	if math.Abs(h.sender.Rate()-want)/want > 1e-9 {
		t.Errorf("rate = %v, want %v (THigh branch)", h.sender.Rate(), want)
	}
}

func TestBetaHighOverridesTHighBranch(t *testing.T) {
	p := DefaultParams()
	p.Beta = 0.008
	p.BetaHigh = 0.8
	h := newAlgoHarness(t, p, 1e9)
	h.ack(400 * des.Microsecond)
	r := h.sender.Rate()
	rtt := 1000 * des.Microsecond
	h.ack(rtt)
	want := r * (1 - 0.8*(1-p.THigh.Seconds()/rtt.Seconds()))
	if math.Abs(h.sender.Rate()-want)/want > 1e-9 {
		t.Errorf("rate = %v, want %v (BetaHigh brake)", h.sender.Rate(), want)
	}
}

func TestGradientDecreaseMatchesAlgorithm1(t *testing.T) {
	p := DefaultParams()
	h := newAlgoHarness(t, p, 1e9)
	h.ack(100 * des.Microsecond) // prime: prevRTT=100µs
	r := h.sender.Rate()
	// Next sample 140µs: newDiff=40µs; rttDiff = 0.875·40µs = 35µs;
	// gradient = 35/20 = 1.75; in band (50..500µs) → rate *= 1-β·1.75.
	h.ack(140 * des.Microsecond)
	gradient := 0.875 * 40e-6 / 20e-6
	want := r * (1 - p.Beta*gradient)
	if want < p.MinRate {
		want = p.MinRate
	}
	if math.Abs(h.sender.Rate()-want)/want > 1e-9 {
		t.Errorf("rate = %v, want %v (gradient branch)", h.sender.Rate(), want)
	}
	if g := h.sender.Gradient(); math.Abs(g-gradient) > 1e-9 {
		t.Errorf("Gradient() = %v, want %v", g, gradient)
	}
}

func TestGradClampBoundsTheCut(t *testing.T) {
	p := DefaultParams()
	p.GradClamp = 1
	h := newAlgoHarness(t, p, 1e9)
	h.ack(100 * des.Microsecond)
	r := h.sender.Rate()
	// A violent +200µs jump: unclamped gradient would be 8.75 and the
	// multiplier negative; the clamp caps the cut at β·1.
	h.ack(300 * des.Microsecond)
	want := r * (1 - p.Beta*1)
	if math.Abs(h.sender.Rate()-want)/want > 1e-9 {
		t.Errorf("rate = %v, want %v (clamped cut)", h.sender.Rate(), want)
	}
}

func TestUnclampedGradientFloorsAtMinRate(t *testing.T) {
	p := DefaultParams() // GradClamp = 0: literal Algorithm 1
	h := newAlgoHarness(t, p, 1e9)
	h.ack(100 * des.Microsecond)
	h.ack(300 * des.Microsecond) // multiplier goes negative → clamped to floor
	if h.sender.Rate() != p.MinRate {
		t.Errorf("rate = %v, want the MinRate floor %v", h.sender.Rate(), p.MinRate)
	}
}

func TestNegativeGradientIncreases(t *testing.T) {
	p := DefaultParams()
	h := newAlgoHarness(t, p, 1e8)
	h.ack(200 * des.Microsecond)
	r := h.sender.Rate()
	h.ack(150 * des.Microsecond) // falling RTT, in band → additive increase
	want := r + p.Delta
	if math.Abs(h.sender.Rate()-want) > 1e-6 {
		t.Errorf("rate = %v, want %v (negative gradient → AI)", h.sender.Rate(), want)
	}
}

func TestHAIAcceleratesAfterFiveIncreases(t *testing.T) {
	p := DefaultParams()
	p.HAI = true
	h := newAlgoHarness(t, p, 1e8)
	h.ack(30 * des.Microsecond) // prime
	r := h.sender.Rate()
	// Five consecutive low-RTT samples: the first four add δ, the fifth
	// (streak = 5) adds 5δ.
	for i := 0; i < 5; i++ {
		h.ack(30 * des.Microsecond)
	}
	want := r + 4*p.Delta + 5*p.Delta
	if math.Abs(h.sender.Rate()-want) > 1e-6 {
		t.Errorf("rate = %v, want %v (HAI kick at the 5th increase)", h.sender.Rate(), want)
	}
}

func TestPatchedAlgorithm2Arithmetic(t *testing.T) {
	p := DefaultPatchedParams() // β=0.008, RTTRef=60µs
	h := newAlgoHarness(t, p, 1e9)
	h.ack(100 * des.Microsecond) // prime
	r := h.sender.Rate()
	// Sample 120µs: newDiff=20µs, rttDiff=17.5µs, gradient=0.875 → w=1;
	// error=(120-60)/60=1 → rate = δ(1-1) + rate(1-β·1·1).
	h.ack(120 * des.Microsecond)
	want := r * (1 - 0.008)
	if math.Abs(h.sender.Rate()-want)/want > 1e-9 {
		t.Errorf("rate = %v, want %v (Algorithm 2 line 12)", h.sender.Rate(), want)
	}
}

func TestPatchedWeightBlendsIncreaseAndDecrease(t *testing.T) {
	p := DefaultPatchedParams()
	h := newAlgoHarness(t, p, 1e9)
	h.ack(100 * des.Microsecond)
	r := h.sender.Rate()
	// Flat RTT: newDiff=0, gradient=0 → w=1/2;
	// error=(100-60)/60=2/3 → rate = δ/2 + rate(1-β/2·2/3).
	h.ack(100 * des.Microsecond)
	want := p.Delta*0.5 + r*(1-0.008*0.5*(2.0/3.0))
	if math.Abs(h.sender.Rate()-want)/want > 1e-9 {
		t.Errorf("rate = %v, want %v (blended update)", h.sender.Rate(), want)
	}
}

func TestUpdateGateSwallowsFastAcks(t *testing.T) {
	p := DefaultParams()
	h := newAlgoHarness(t, p, 1e8)
	h.ack(30 * des.Microsecond) // prime
	r := h.sender.Rate()
	// Deliver a second ACK immediately (within MinRTT of the first): the
	// gate must ignore it.
	h.host.Receive(&netsim.Packet{Kind: netsim.Ack, Flow: 1, EchoT: h.nw.Sim.Now() - des.Time(30*des.Microsecond)})
	if h.sender.Rate() != r {
		t.Errorf("gated ACK changed the rate: %v -> %v", r, h.sender.Rate())
	}
}

func TestRateNeverExceedsLineRate(t *testing.T) {
	p := DefaultParams()
	h := newAlgoHarness(t, p, 1.25e9) // already at line rate
	h.ack(30 * des.Microsecond)
	for i := 0; i < 10; i++ {
		h.ack(30 * des.Microsecond) // additive increases
	}
	if h.sender.Rate() > 1.25e9 {
		t.Errorf("rate %v above line rate", h.sender.Rate())
	}
}
