package netsim

import (
	"testing"

	"ecndelay/internal/des"
)

// ecmpFixture wires a 4-port switch with an ECMP group over all ports
// toward one destination id. Hosts are real so port peers resolve.
func ecmpFixture(t *testing.T, seed uint64) *Switch {
	t.Helper()
	nw := New(1)
	sw := nw.NewSwitch(PFCConfig{})
	var hosts []*Host
	for i := 0; i < 4; i++ {
		h := nw.NewHost()
		h.Connect(sw, 1e9, des.Microsecond, nil)
		sw.AddPort(h, 1e9, des.Microsecond, nil)
		hosts = append(hosts, h)
	}
	sw.SetECMPSeed(seed)
	sw.SetECMPRoutes(99, []int{0, 1, 2, 3})
	return sw
}

// A flow key maps to exactly one port, stably: the property that keeps a
// flow's packets in order on one path.
func TestECMPSameKeySamePath(t *testing.T) {
	sw := ecmpFixture(t, 42)
	for flow := 0; flow < 200; flow++ {
		first := sw.EgressIndex(7, 99, flow)
		for rep := 0; rep < 10; rep++ {
			if got := sw.EgressIndex(7, 99, flow); got != first {
				t.Fatalf("flow %d: pick changed %d → %d on repeat", flow, first, got)
			}
		}
	}
	// And the mapping is a pure function of (seed, key): a freshly wired
	// identical switch agrees on every key.
	again := ecmpFixture(t, 42)
	for flow := 0; flow < 200; flow++ {
		if sw.EgressIndex(7, 99, flow) != again.EgressIndex(7, 99, flow) {
			t.Fatalf("flow %d: identically-seeded switches disagree", flow)
		}
	}
}

// Distinct flows spread across the group roughly uniformly: no port is
// starved or overloaded beyond sampling noise.
func TestECMPSpreadIsBalanced(t *testing.T) {
	sw := ecmpFixture(t, 7)
	const flows = 8000
	counts := make([]int, 4)
	for flow := 0; flow < flows; flow++ {
		idx := sw.EgressIndex(flow%13, 99, flow)
		if idx < 0 || idx > 3 {
			t.Fatalf("flow %d: pick %d outside the group", flow, idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		share := float64(c) / flows
		if share < 0.20 || share > 0.30 {
			t.Errorf("port %d got %.1f%% of %d flows, want 25%% ± 5", i, 100*share, flows)
		}
	}
}

// Different hash seeds produce different flow→path mappings (the per-switch
// salt real fabrics use so one flow doesn't collide on every tier).
func TestECMPSeedChangesMapping(t *testing.T) {
	a := ecmpFixture(t, 1)
	b := ecmpFixture(t, 2)
	diff := 0
	for flow := 0; flow < 256; flow++ {
		if a.EgressIndex(7, 99, flow) != b.EgressIndex(7, 99, flow) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("256 flow keys mapped identically under different seeds")
	}
}

// A pinned SetRoute wins over an ECMP group for the same destination: the
// deterministic down path stays deterministic.
func TestECMPRoutePrecedence(t *testing.T) {
	sw := ecmpFixture(t, 3)
	sw.SetRoute(99, 2)
	for flow := 0; flow < 64; flow++ {
		if got := sw.EgressIndex(0, 99, flow); got != 2 {
			t.Fatalf("flow %d: ECMP overrode the pinned route (got %d)", flow, got)
		}
	}
}

// diamond wires the minimal multipath fabric: a ↔ swA ↔ {sp0, sp1} ↔ swB ↔ b
// with ECMP over the two spines in both directions.
type diamond struct {
	nw       *Network
	a, b     *Host
	swA, swB *Switch
	sp       []*Switch
	// upA[i] is swA's port toward spine i (the spread measurement point).
	upA []*Port
}

func newDiamond(seed int64, pfc PFCConfig) *diamond {
	nw := New(seed)
	d := &diamond{nw: nw}
	d.swA = nw.NewSwitch(pfc)
	d.swB = nw.NewSwitch(pfc)
	d.sp = []*Switch{nw.NewSwitch(pfc), nw.NewSwitch(pfc)}
	d.a = nw.NewHost()
	d.b = nw.NewHost()
	const bw = 1.25e9
	link := func(sw *Switch, peer Node) int { return sw.AddPort(peer, bw, des.Microsecond, nil) }
	d.a.Connect(d.swA, bw, des.Microsecond, nil)
	d.b.Connect(d.swB, bw, des.Microsecond, nil)
	aPort := link(d.swA, d.a)
	bPort := link(d.swB, d.b)
	var upB []int
	for i, sp := range d.sp {
		ua := link(d.swA, sp)
		ub := link(d.swB, sp)
		d.upA = append(d.upA, d.swA.Port(ua))
		upB = append(upB, ub)
		link(sp, d.swA)
		link(sp, d.swB)
		sp.SetECMPSeed(uint64(100 + i))
		sp.SetRoute(d.a.ID(), 0)
		sp.SetRoute(d.b.ID(), 1)
		_ = ua
	}
	d.swA.SetECMPSeed(1)
	d.swB.SetECMPSeed(2)
	d.swA.SetRoute(d.a.ID(), aPort)
	d.swA.SetECMPRoutes(d.b.ID(), []int{1, 2})
	d.swB.SetRoute(d.b.ID(), bPort)
	d.swB.SetECMPRoutes(d.a.ID(), []int{1, 2})
	return d
}

// End to end: every packet of one flow crosses exactly one spine, distinct
// flows use both spines, and all bytes arrive — with PFC accounting intact
// even though the reverse route of the source is a multipath group.
func TestECMPDeliveryFlowSticksToOnePath(t *testing.T) {
	d := newDiamond(1, PFCConfig{PauseBytes: 3000, ResumeBytes: 1000})
	var got int64
	d.b.Transport = TransportFunc(func(h *Host, pkt *Packet) { got += int64(pkt.Size) })

	perFlowSpine := func(flow int) int {
		before := []int64{d.upA[0].TxBytes, d.upA[1].TxBytes}
		const n = 20
		for i := 0; i < n; i++ {
			d.a.Send(&Packet{Flow: flow, Dst: d.b.ID(), Size: DataMTU, Kind: Data})
		}
		d.nw.Sim.Run()
		used := -1
		for i, p := range d.upA {
			if p.TxBytes != before[i] {
				carried := p.TxBytes - before[i]
				if carried != n*DataMTU {
					t.Fatalf("flow %d: spine %d carried %d bytes, want all %d or none",
						flow, i, carried, n*DataMTU)
				}
				if used >= 0 {
					t.Fatalf("flow %d: packets split across spines %d and %d", flow, used, i)
				}
				used = i
			}
		}
		if used < 0 {
			t.Fatalf("flow %d: no spine carried its packets", flow)
		}
		return used
	}

	spinesUsed := map[int]bool{}
	const flows = 16
	for flow := 0; flow < flows; flow++ {
		spinesUsed[perFlowSpine(flow)] = true
	}
	if len(spinesUsed) != 2 {
		t.Errorf("%d flows all hashed to one spine", flows)
	}
	if want := int64(flows * 20 * DataMTU); got != want {
		t.Errorf("delivered %d bytes, want %d (drop-free)", got, want)
	}
}
