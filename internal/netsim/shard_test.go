package netsim

import (
	"strings"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// shardStar builds the shared fixture: a 4-sender star preloaded with a
// burst of distinguishable packets, and a receiver transport that logs
// every delivery as (time, src, seq). The log is the full delivery
// trajectory — two runs agree iff the engine processed the same events in
// the same simulated order.
type delivery struct {
	at  des.Time
	src int
	seq int64
}

func shardStar(t *testing.T) (*Network, *Star, *[]delivery) {
	t.Helper()
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 4,
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	log := &[]delivery{}
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		*log = append(*log, delivery{at: h.Now(), src: pkt.Src, seq: pkt.Seq})
	})
	for _, s := range star.Senders {
		for i := 0; i < 20; i++ {
			s.Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data, Seq: int64(i)})
		}
	}
	return nw, star, log
}

// The sharded engine replays the serial delivery trajectory exactly, for
// every cut of the node set — including cuts that split the bottleneck
// switch from every host.
func TestShardedStarMatchesSerial(t *testing.T) {
	run := func(assign func(*Network, *Star) []int) []delivery {
		nw, star, log := shardStar(t)
		if assign != nil {
			if err := nw.PartitionByNode(assign(nw, star)); err != nil {
				t.Fatal(err)
			}
		}
		nw.RunUntil(des.Time(10 * des.Millisecond))
		return *log
	}
	serial := run(nil)
	if len(serial) != 80 {
		t.Fatalf("serial run delivered %d packets, want 80", len(serial))
	}
	cuts := map[string]func(*Network, *Star) []int{
		"hosts-split": func(nw *Network, star *Star) []int {
			// Switch and receiver on shard 0, senders fanned over 0..3.
			assign := make([]int, nw.NodeCount())
			for i, s := range star.Senders {
				assign[s.ID()] = i % 4
			}
			return assign
		},
		"switch-alone": func(nw *Network, star *Star) []int {
			assign := make([]int, nw.NodeCount())
			for _, s := range star.Senders {
				assign[s.ID()] = 1
			}
			assign[star.Receiver.ID()] = 1
			return assign
		},
		"default": func(nw *Network, star *Star) []int {
			return DefaultAssign(nw, 3)
		},
	}
	for name, cut := range cuts {
		got := run(cut)
		if len(got) != len(serial) {
			t.Errorf("%s: %d deliveries, serial had %d", name, len(got), len(serial))
			continue
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("%s: delivery %d = %+v, serial %+v", name, i, got[i], serial[i])
				break
			}
		}
	}
}

func TestPartitionByNodeValidation(t *testing.T) {
	build := func() (*Network, *Star) {
		nw := New(1)
		star := NewStar(nw, StarConfig{
			Senders: 2,
			Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
		})
		return nw, star
	}

	t.Run("length-mismatch", func(t *testing.T) {
		nw, _ := build()
		if err := nw.PartitionByNode([]int{0, 1}); err == nil || !strings.Contains(err.Error(), "covers") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("negative-shard", func(t *testing.T) {
		nw, _ := build()
		if err := nw.PartitionByNode([]int{0, -1, 0, 0}); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("empty-shard", func(t *testing.T) {
		nw, _ := build()
		if err := nw.PartitionByNode([]int{0, 2, 0, 0}); err == nil || !strings.Contains(err.Error(), "owns no nodes") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("single-shard-noop", func(t *testing.T) {
		nw, _ := build()
		if err := nw.PartitionByNode([]int{0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if nw.Shards() != 1 {
			t.Fatalf("Shards() = %d after no-op partition", nw.Shards())
		}
	})
	t.Run("double-partition", func(t *testing.T) {
		nw, _ := build()
		if err := nw.PartitionByNode([]int{0, 1, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if err := nw.PartitionByNode([]int{0, 1, 0, 0}); err == nil || !strings.Contains(err.Error(), "already partitioned") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("zero-prop-cross-shard", func(t *testing.T) {
		nw := New(1)
		star := NewStar(nw, StarConfig{
			Senders: 2,
			Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: 0},
		})
		assign := make([]int, nw.NodeCount())
		assign[star.Senders[0].ID()] = 1
		if err := nw.PartitionByNode(assign); err == nil || !strings.Contains(err.Error(), "propagation") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("rng-span", func(t *testing.T) {
		nw, star := build()
		star.Senders[0].Port().CtrlJitterMax = des.Microsecond
		star.Senders[1].Port().CtrlJitterMax = des.Microsecond
		assign := make([]int, nw.NodeCount())
		assign[star.Senders[0].ID()] = 0
		assign[star.Senders[1].ID()] = 1
		if err := nw.PartitionByNode(assign); err == nil || !strings.Contains(err.Error(), "RNG") {
			t.Fatalf("err = %v", err)
		}
	})
}

// DefaultAssign respects RNG pinning and never leaves a shard empty.
func TestDefaultAssignPinsRNGNodes(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 4,
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
		Mark: func() Marker {
			return &REDMarker{Kmin: 5 * 1024, Kmax: 200 * 1024, Pmax: 0.01, Rng: nw.Rng}
		},
	})
	_ = star
	assign := DefaultAssign(nw, 3)
	rngShard := -1
	for id, node := range nw.nodes {
		if rngBound(node) {
			if rngShard == -1 {
				rngShard = assign[id]
			} else if assign[id] != rngShard {
				t.Fatalf("RNG-bound nodes split across shards %d and %d", rngShard, assign[id])
			}
		}
	}
	if err := nw.PartitionByNode(assign); err != nil {
		t.Fatal(err)
	}
}

// Lookahead is the minimum propagation delay over cross-shard links only.
func TestLookaheadIsMinCrossShardProp(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: 2 * des.Microsecond},
	})
	// Receiver link is faster; keep it intra-shard so it must not bound
	// the lookahead.
	star.Receiver.Port().PropDelay = des.Microsecond
	star.Switch.portToward(star.Receiver.ID()).PropDelay = des.Microsecond
	assign := make([]int, nw.NodeCount())
	assign[star.Senders[0].ID()] = 1
	assign[star.Senders[1].ID()] = 1
	if err := nw.PartitionByNode(assign); err != nil {
		t.Fatal(err)
	}
	if got := nw.Lookahead(); got != 2*des.Microsecond {
		t.Fatalf("lookahead %v, want 2µs (cross-shard links only)", got)
	}
}

// A mailbox whose books do not balance is a lost or duplicated packet —
// something the serial engine cannot do. The audit must trip the
// shard-handoff invariant. The fixture breaks the counters directly: the
// real push/drain paths are exercised (and must stay clean) in every
// sharded run above.
func TestBrokenMailboxTripsInvariant(t *testing.T) {
	nw := New(1)
	o := obs.Full()
	nw.SetObserver(o)
	star := NewStar(nw, StarConfig{
		Senders: 4,
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	for _, s := range star.Senders {
		for i := 0; i < 20; i++ {
			s.Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data, Seq: int64(i)})
		}
	}
	assign := make([]int, nw.NodeCount())
	for i, s := range star.Senders {
		assign[s.ID()] = 1 + i%2
	}
	if err := nw.PartitionByNode(assign); err != nil {
		t.Fatal(err)
	}
	end := des.Time(10 * des.Millisecond)
	nw.RunUntil(end)
	if err := o.Check.Err(); err != nil {
		t.Fatalf("clean sharded run violated invariants: %v", err)
	}
	if len(nw.shard.mailboxes) == 0 {
		t.Fatal("no cross-shard mailboxes in fixture")
	}
	mb := nw.shard.mailboxes[0]
	mb.pushedPkts++
	mb.pushedBytes += int64(DataMTU)
	nw.shard.audit(end)
	if o.Check.Count(obs.InvShardHandoff) == 0 {
		t.Fatal("imbalanced mailbox did not trip the shard-handoff invariant")
	}
	if err := o.Check.Err(); err == nil {
		t.Fatal("checker reports no error despite handoff violation")
	}
}
