package netsim

// Sharded execution of one network: PartitionByNode splits the node set
// across N shard simulators that run concurrently under the conservative
// window protocol of des.ShardedLoop. Each shard owns its nodes, their
// egress ports, its own packet free list and packet-id space; the only
// cross-shard interaction is packet handoff through per-edge SPSC
// mailboxes, drained by the barrier coordinator between windows.
//
// Determinism: every event carries a (time, sub, seq) key, where sub is
// the producer-side schedule time and seq is minted per network NODE
// ((node+1)<<nodeSeqBits | counter), not per simulator. Per-node minting
// makes tie order at equal (time, sub) a property of the network — smaller
// node id first, program order within a node — so it cannot depend on how
// nodes are packed onto shards. A cross-shard delivery keeps the key it
// would have had if scheduled locally, so each shard's heap fires in an
// order independent of window placement and of how many shards exist —
// the foundation of the "-shards N metrics-identical to -shards 1"
// guarantee. Control events (samplers, arm chains, anything on
// Network.Sim) keep the simulator counter from base 0: at equal (time,
// sub) they sort before every node-minted event, which is exactly the
// stop-the-world order the window protocol gives them. The unsharded
// network keeps using Network.Sim directly, with packet ids 1,2,3,… as
// before.
//
// The shared Network.Rng (RED/PI markers, control-packet jitter) is the
// one piece of state a partition cannot split: every node that can draw
// from it on the datapath must live on a single shard. PartitionByNode
// enforces that, and DefaultAssign pins all such nodes to shard 0.

import (
	"fmt"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// seqSpaceBits positions each shard's packet-id space (and its simulator's
// fallback sequence counter): shard i uses base (i+1)<<56. Node-minted
// event keys live below 1<<56 for any node id under 2^16, so the spaces
// never collide. Base 0 belongs to the serial/default context.
const seqSpaceBits = 56

// nodeSeqBits sizes the per-node event counter: node n mints keys
// (n+1)<<40 | counter, giving every node ≈10^12 events and keeping all
// node keys above the control simulator's 0-based counter — control events
// win equal-(time, sub) ties, matching the sharded loop's control-first
// window order.
const nodeSeqBits = 40

// nodeSeq mints the per-node event sequence keys described above. One
// lives in every Host and Switch; its owner's goroutine is the only
// writer, whether that is the serial loop or the node's shard worker.
type nodeSeq struct {
	next uint64
}

func (n *nodeSeq) init(id int) {
	n.next = (uint64(id) + 1) << nodeSeqBits
}

func (n *nodeSeq) mint() uint64 {
	v := n.next
	n.next++
	return v
}

// shardCtx is the execution context one shard's nodes share: the shard's
// simulator, packet free list and packet-id counter. Every node and port
// points at one; an unpartitioned network has a single context whose
// simulator is Network.Sim.
type shardCtx struct {
	nw  *Network
	sim *des.Simulator
	idx int

	pktFree []*Packet
	pktID   uint64
}

// newPacket returns a zeroed packet from this shard's free list. Pools are
// per shard, so no locking: a packet allocated here may be freed on the
// receiving shard's pool after a cross-shard hop (ownership transfers at
// the mailbox), which only migrates structs between free lists.
func (c *shardCtx) newPacket() *Packet {
	if n := len(c.pktFree); n > 0 {
		pkt := c.pktFree[n-1]
		c.pktFree[n-1] = nil
		c.pktFree = c.pktFree[:n-1]
		pkt.inPool = false
		return pkt
	}
	return &Packet{}
}

// freePacket recycles a packet into this shard's free list. See
// Network.FreePacket for the double-free contract.
func (c *shardCtx) freePacket(pkt *Packet) {
	if !c.nw.pooling {
		return
	}
	if pkt.inPool {
		if c.nw.obs != nil {
			c.nw.obsDoubleFreeAt(c.sim.Now(), pkt)
		}
		return
	}
	*pkt = Packet{}
	pkt.inPool = true
	c.pktFree = append(c.pktFree, pkt)
}

// nextPacketID hands out ids unique across the whole network: each shard
// counts within its own (shard+1)<<48 block; the default context counts
// from zero, so serial runs keep the historical 1,2,3,… sequence.
func (c *shardCtx) nextPacketID() uint64 {
	c.pktID++
	return c.pktID
}

// mailItem is one cross-shard packet in flight, carrying the full event
// key minted on the producer shard.
type mailItem struct {
	t   des.Time // delivery time at the consumer
	sub des.Time // producer-side send time
	seq uint64   // producer-shard sequence number
	pkt *Packet
}

// mailbox is the SPSC handoff buffer of one cross-shard directed port:
// the owner shard's goroutine appends during a window, the coordinator
// drains between windows (the barrier provides the happens-before edge,
// so no lock is needed). The item slice is reused across windows, so a
// warm mailbox allocates nothing. The pushed/drained counters feed the
// cross-shard byte-conservation invariant.
type mailbox struct {
	port *Port // producer edge; delivery handler and audit identity

	items []mailItem

	pushedPkts, drainedPkts   int64
	pushedBytes, drainedBytes int64
}

func (mb *mailbox) push(t, sub des.Time, seq uint64, pkt *Packet) {
	mb.items = append(mb.items, mailItem{t: t, sub: sub, seq: seq, pkt: pkt})
	mb.pushedPkts++
	mb.pushedBytes += int64(pkt.Size)
}

// drain injects every queued item into the consumer shard's heap with its
// producer-minted key. Runs on the coordinator with all workers parked.
func (mb *mailbox) drain() {
	to := mb.port.peerCtx.sim
	for i := range mb.items {
		it := &mb.items[i]
		mb.drainedPkts++
		mb.drainedBytes += int64(it.pkt.Size)
		to.InjectAt(it.t, it.sub, it.seq, mb.port, it.pkt)
		mb.items[i] = mailItem{}
	}
	mb.items = mb.items[:0]
}

// sharding is the per-network state of a partitioned run.
type sharding struct {
	nw        *Network
	loop      *des.ShardedLoop
	ctxs      []*shardCtx
	assign    []int // node id → shard
	mailboxes []*mailbox
	lookahead des.Duration

	// Telemetry gauges, bound when a metrics registry is attached.
	gWindows *obs.Gauge
	gEvents  []*obs.Gauge
	gBusy    []*obs.Gauge
	gBarrier []*obs.Gauge
}

// Shards reports the shard count: 1 for an unpartitioned network.
func (nw *Network) Shards() int {
	if nw.shard == nil {
		return 1
	}
	return len(nw.shard.ctxs)
}

// ShardSizes reports how many nodes each shard owns; nil when serial.
func (nw *Network) ShardSizes() []int {
	if nw.shard == nil {
		return nil
	}
	sizes := make([]int, len(nw.shard.ctxs))
	for _, s := range nw.shard.assign {
		sizes[s]++
	}
	return sizes
}

// rngBound reports whether the node must stay on the shared-RNG shard:
// owners of marked queues (RED/PI draws at enqueue/dequeue), of ports with
// control-jitter draws, and of ports with a fault hook attached (fault
// plans draw from a plan-private RNG, which the same confinement argument
// covers) all draw on the datapath.
func rngBound(n Node) bool {
	var ports []*Port
	switch v := n.(type) {
	case *Host:
		if v.port != nil {
			ports = []*Port{v.port}
		}
	case *Switch:
		ports = v.ports
	}
	for _, p := range ports {
		if p.queue.mark != nil || p.CtrlJitterMax > 0 || p.hook != nil {
			return true
		}
	}
	return false
}

// DefaultAssign computes a node→shard map for the given shard count:
// every RNG-bound node (see rngBound) is pinned to shard 0, and the rest
// are ceil-split into contiguous node-id blocks. Per-node event keys make
// the simulated trajectory independent of the cut, so the split only
// affects load balance; contiguous blocks keep topology neighbours (and
// their cache lines) together. Topology-aware cuts (topo.Clos.ShardAssign)
// minimise cross-shard edges instead and are equally deterministic.
func DefaultAssign(nw *Network, shards int) []int {
	n := len(nw.nodes)
	assign := make([]int, n)
	free := 0
	for id, node := range nw.nodes {
		if rngBound(node) {
			assign[id] = -1 // pinned marker, resolved to 0 below
		} else {
			free++
		}
	}
	if shards > free {
		shards = free
	}
	if shards < 1 {
		shards = 1
	}
	// Ceil-split the unpinned nodes into contiguous blocks.
	per := (free + shards - 1) / shards
	if per < 1 {
		per = 1
	}
	i := 0
	for id := range assign {
		if assign[id] == -1 {
			assign[id] = 0
			continue
		}
		assign[id] = i / per
		i++
	}
	return assign
}

// PartitionByNode splits the network across shard simulators according to
// assign (node id → shard index). Call it after the topology is built and
// any fault plan is applied, and before the run starts. Shard indexes must
// cover 0..max contiguously; a single-shard assignment is a no-op that
// leaves the network on the serial engine. Constraints checked here:
//
//   - every cross-shard link must have a positive propagation delay (the
//     minimum over them is the conservative lookahead);
//   - every RNG-bound node must map to one common shard, because marker
//     and jitter draws consume the shared Network.Rng in event order.
func (nw *Network) PartitionByNode(assign []int) error {
	if nw.shard != nil {
		return fmt.Errorf("netsim: network is already partitioned")
	}
	if len(assign) != len(nw.nodes) {
		return fmt.Errorf("netsim: partition covers %d nodes, network has %d", len(assign), len(nw.nodes))
	}
	shards := 0
	for id, s := range assign {
		if s < 0 {
			return fmt.Errorf("netsim: node %d assigned to negative shard %d", id, s)
		}
		if s+1 > shards {
			shards = s + 1
		}
	}
	if shards > len(nw.nodes) {
		return fmt.Errorf("netsim: %d shards exceed %d nodes", shards, len(nw.nodes))
	}
	if shards <= 1 {
		return nil // serial: keep the byte-identical single-simulator engine
	}
	seen := make([]bool, shards)
	for _, s := range assign {
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("netsim: shard %d owns no nodes", s)
		}
	}
	rngShard := -1
	for id, node := range nw.nodes {
		if rngBound(node) {
			if rngShard == -1 {
				rngShard = assign[id]
			} else if assign[id] != rngShard {
				return fmt.Errorf("netsim: nodes drawing the shared RNG span shards %d and %d; pin them together (see DefaultAssign)", rngShard, assign[id])
			}
		}
	}

	s := &sharding{nw: nw, assign: append([]int(nil), assign...)}
	s.ctxs = make([]*shardCtx, shards)
	for i := range s.ctxs {
		sim := des.New()
		sim.SetSeqBase(uint64(i+1) << seqSpaceBits)
		s.ctxs[i] = &shardCtx{nw: nw, sim: sim, idx: i, pktID: uint64(i+1) << seqSpaceBits}
	}
	ctxOf := func(n Node) *shardCtx { return s.ctxs[assign[n.ID()]] }
	for _, node := range nw.nodes {
		switch v := node.(type) {
		case *Host:
			v.ctx = ctxOf(v)
		case *Switch:
			v.ctx = ctxOf(v)
		default:
			return fmt.Errorf("netsim: node %d (%T) cannot be sharded", node.ID(), node)
		}
	}
	s.lookahead = 0
	for _, p := range nw.ports {
		p.ctx = ctxOf(p.owner)
		p.peerCtx = ctxOf(p.peer)
		if p.ctx == p.peerCtx {
			continue
		}
		if p.PropDelay <= 0 {
			return fmt.Errorf("netsim: cross-shard link n%d→n%d has no propagation delay (zero lookahead)", p.owner.ID(), p.peer.ID())
		}
		if s.lookahead == 0 || p.PropDelay < s.lookahead {
			s.lookahead = p.PropDelay
		}
		mb := &mailbox{port: p}
		p.out = mb
		s.mailboxes = append(s.mailboxes, mb)
	}
	if s.lookahead == 0 {
		// Partitioned but no cross-shard edge: windows are unbounded by
		// handoff, any large lookahead works.
		s.lookahead = des.Duration(1) << 60
	}
	sims := make([]*des.Simulator, shards)
	for i, c := range s.ctxs {
		sims[i] = c.sim
	}
	s.loop = &des.ShardedLoop{
		Control:   nw.Sim,
		Shards:    sims,
		Lookahead: s.lookahead,
		Drain:     s.drainAll,
	}
	s.bindObs()
	nw.shard = s
	return nil
}

// Lookahead reports the conservative window bound; 0 when serial.
func (nw *Network) Lookahead() des.Duration {
	if nw.shard == nil {
		return 0
	}
	return nw.shard.lookahead
}

// drainAll moves every queued mailbox item into its consumer heap, in
// (edge, send-time, seq) order — edges in creation order, items in the
// order the producer pushed them. The per-event key makes heap order
// independent of drain order; draining canonically anyway keeps the
// protocol's stated contract inspectable.
func (s *sharding) drainAll() {
	for _, mb := range s.mailboxes {
		if len(mb.items) > 0 {
			mb.drain()
		}
	}
	s.updateGauges()
}

// bindObs registers the shard telemetry instruments when the attached
// observer carries a metrics registry.
func (s *sharding) bindObs() {
	o := s.nw.obs
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge("shard.count").Set(int64(len(s.ctxs)))
	s.gWindows = o.Metrics.Gauge("shard.windows")
	for i := range s.ctxs {
		s.gEvents = append(s.gEvents, o.Metrics.Gauge(fmt.Sprintf("shard.s%d.events", i)))
		s.gBusy = append(s.gBusy, o.Metrics.Gauge(fmt.Sprintf("shard.s%d.busy_ns", i)))
		s.gBarrier = append(s.gBarrier, o.Metrics.Gauge(fmt.Sprintf("shard.s%d.barrier_wait_ns", i)))
	}
}

// updateGauges publishes the loop's counters; called between windows (live
// telemetry scrapes see shard imbalance mid-run) and after the run.
func (s *sharding) updateGauges() {
	if s.gWindows == nil {
		return
	}
	s.gWindows.Set(int64(s.loop.Windows()))
	for i := range s.ctxs {
		st := s.loop.StatAt(i)
		s.gEvents[i].Set(int64(st.Events))
		s.gBusy[i].Set(int64(st.Busy))
		s.gBarrier[i].Set(int64(st.Barrier))
	}
}

// ShardStats returns the per-shard execution counters; nil when serial.
func (nw *Network) ShardStats() []des.ShardStats {
	if nw.shard == nil {
		return nil
	}
	return nw.shard.loop.Stats()
}

// ShardWindows reports how many synchronisation windows have run.
func (nw *Network) ShardWindows() uint64 {
	if nw.shard == nil {
		return 0
	}
	return nw.shard.loop.Windows()
}

// RunUntil advances the simulation to end: the serial engine when the
// network is unpartitioned (identical to nw.Sim.RunUntil), the sharded
// window loop otherwise. After a sharded run the cross-shard handoff audit
// feeds the invariant checker, worker goroutines are released, and every
// simulator clock sits at end.
func (nw *Network) RunUntil(end des.Time) {
	if nw.shard == nil {
		nw.Sim.RunUntil(end)
		return
	}
	s := nw.shard
	s.loop.RunUntil(end)
	s.loop.Close()
	s.updateGauges()
	s.audit(end)
}

// audit verifies per-edge byte conservation across every mailbox: all
// packets pushed by producer shards must have been drained into consumer
// heaps. An imbalance means the handoff lost or duplicated traffic, which
// the serial engine cannot do — reported through the invariant checker
// when one is attached.
func (s *sharding) audit(now des.Time) {
	o := s.nw.obs
	if o == nil || o.Check == nil {
		return
	}
	for _, mb := range s.mailboxes {
		o.Check.CheckShardEdge(now, s.nw.obsRun,
			mb.port.owner.ID(), mb.port.peer.ID(),
			mb.pushedPkts, mb.drainedPkts, mb.pushedBytes, mb.drainedBytes)
	}
}
