package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecndelay/internal/des"
)

func TestQueueFIFOAndBytes(t *testing.T) {
	q := NewQueue(nil)
	for i := 0; i < 5; i++ {
		q.Push(&Packet{ID: uint64(i), Size: 100 * (i + 1)})
	}
	if q.Len() != 5 || q.Bytes() != 1500 {
		t.Fatalf("len/bytes = %d/%d, want 5/1500", q.Len(), q.Bytes())
	}
	for i := 0; i < 5; i++ {
		pkt := q.Pop()
		if pkt.ID != uint64(i) {
			t.Fatalf("pop %d: got id %d", i, pkt.ID)
		}
	}
	if q.Pop() != nil {
		t.Error("pop of empty queue should be nil")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Errorf("drained queue len/bytes = %d/%d", q.Len(), q.Bytes())
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue(nil)
	// Interleave pushes and pops so head grows large, forcing compaction.
	for i := 0; i < 10000; i++ {
		q.Push(&Packet{ID: uint64(i), Size: 1})
		if i%2 == 1 {
			q.Pop()
		}
	}
	if q.Len() != 5000 {
		t.Fatalf("len = %d, want 5000", q.Len())
	}
	// Order must survive compaction.
	first := q.Pop()
	second := q.Pop()
	if second.ID != first.ID+1 {
		t.Errorf("order broken after compaction: %d then %d", first.ID, second.ID)
	}
}

func TestREDMarkerThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &REDMarker{Kmin: 1000, Kmax: 2000, Pmax: 0.5, Rng: rng}
	q := NewQueue(m)
	// Below Kmin: never marked.
	for i := 0; i < 50; i++ {
		q.Push(&Packet{Size: 10, ECT: true})
	}
	for q.Len() > 0 {
		if q.Pop().CE {
			t.Fatal("marked below Kmin")
		}
	}
	// Far above Kmax: always marked (p = 1).
	for i := 0; i < 30; i++ {
		q.Push(&Packet{Size: 100, ECT: true})
	}
	pkt := q.Pop() // queue bytes = 2900 > Kmax at pop time
	if !pkt.CE {
		t.Error("not marked above Kmax")
	}
	// Non-ECT packets are never marked.
	q2 := NewQueue(&REDMarker{Kmin: 0, Kmax: 1, Pmax: 1, Rng: rng})
	q2.Push(&Packet{Size: 100, ECT: false})
	q2.Push(&Packet{Size: 100, ECT: false})
	if q2.Pop().CE {
		t.Error("non-ECT packet marked")
	}
}

func TestREDMarkerRampProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &REDMarker{Kmin: 0, Kmax: 2000, Pmax: 1.0, Rng: rng}
	q := NewQueue(m)
	marked, total := 0, 20000
	for i := 0; i < total; i++ {
		q.Push(&Packet{Size: 1000, ECT: true})
		pkt := q.Pop() // queue holds 1000 bytes at pop → p = 0.5
		if pkt.CE {
			marked++
		}
	}
	frac := float64(marked) / float64(total)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("marking fraction %v, want ~0.5", frac)
	}
}

// Ingress marking stamps the queue state at arrival; egress marking at
// departure. Build a deep queue, then drain: egress marks reflect the
// shrinking queue, ingress marks the queue seen on arrival.
func TestIngressVsEgressMarking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	egress := NewQueue(&REDMarker{Kmin: 5000, Kmax: 5001, Pmax: 1, Rng: rng})
	ingress := NewQueue(&REDMarker{Kmin: 5000, Kmax: 5001, Pmax: 1, Ingress: true, Rng: rng})
	for i := 0; i < 10; i++ {
		egress.Push(&Packet{Size: 1000, ECT: true})
		ingress.Push(&Packet{Size: 1000, ECT: true})
	}
	// Ingress: packets 6..10 saw >5000B at arrival → marked; 1..5 not.
	var ingressMarks []bool
	for ingress.Len() > 0 {
		ingressMarks = append(ingressMarks, ingress.Pop().CE)
	}
	for i, m := range ingressMarks {
		want := i >= 5 // arrived when queue already > 5000B
		if m != want {
			t.Errorf("ingress pkt %d marked=%v, want %v", i, m, want)
		}
	}
	// Egress: first packets depart while queue still deep → marked; the
	// tail departs from a shallow queue → unmarked.
	var egressMarks []bool
	for egress.Len() > 0 {
		egressMarks = append(egressMarks, egress.Pop().CE)
	}
	for i, m := range egressMarks {
		want := i < 5 // queue at departure was 9000,8000,...
		if m != want {
			t.Errorf("egress pkt %d marked=%v, want %v", i, m, want)
		}
	}
}

func TestPIMarkerTracksReference(t *testing.T) {
	sim := des.New()
	rng := rand.New(rand.NewSource(4))
	m := &PIMarker{K1: 1e-6, K2: 1e-2, QRef: 5000, Rng: rng}
	q := NewQueue(m)
	m.Start(sim, q)
	// Hold the queue above the reference: p must rise.
	for i := 0; i < 10; i++ {
		q.Push(&Packet{Size: 1000, ECT: true})
	}
	sim.RunUntil(des.Time(5 * des.Millisecond))
	if m.P() <= 0 {
		t.Errorf("p = %v after sustained overshoot, want > 0", m.P())
	}
	pHigh := m.P()
	// Drain below the reference: p must fall back.
	for q.Len() > 0 {
		q.Pop()
	}
	sim.RunUntil(des.Time(100 * des.Millisecond))
	if m.P() >= pHigh {
		t.Errorf("p = %v did not decrease after drain (was %v)", m.P(), pHigh)
	}
}

// One packet through one port: arrival = serialisation + propagation.
func TestPortTiming(t *testing.T) {
	nw := New(1)
	var arrived []des.Time
	rx := nw.NewHost()
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		arrived = append(arrived, h.Now())
	})
	tx := nw.NewHost()
	tx.Connect(rx, 1.25e8, des.Microsecond, nil) // 1 Gb/s, 1 µs
	tx.Send(&Packet{Dst: rx.ID(), Size: 1000, Kind: Data})
	tx.Send(&Packet{Dst: rx.ID(), Size: 1000, Kind: Data})
	nw.Sim.Run()
	// 1000 B at 1.25e8 B/s = 8 µs serialisation; +1 µs propagation.
	if len(arrived) != 2 {
		t.Fatalf("arrived %d packets, want 2", len(arrived))
	}
	if arrived[0] != des.Time(9*des.Microsecond) {
		t.Errorf("first arrival at %v, want 9µs", arrived[0])
	}
	if arrived[1] != des.Time(17*des.Microsecond) {
		t.Errorf("second arrival at %v, want 17µs (queued behind first)", arrived[1])
	}
}

// Control packets get the extra feedback delay and jitter; data does not.
func TestControlDelayOnlyAffectsControl(t *testing.T) {
	nw := New(1)
	arrivals := map[Kind]des.Time{}
	rx := nw.NewHost()
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		arrivals[pkt.Kind] = h.Now()
	})
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	p.CtrlExtraDelay = 50 * des.Microsecond
	tx.Send(&Packet{Dst: rx.ID(), Size: 1000, Kind: Data})
	nw.Sim.Run()
	tx.Send(&Packet{Dst: rx.ID(), Size: CtrlSize, Kind: CNP})
	nw.Sim.Run()
	if arrivals[Data] != des.Time(9*des.Microsecond) {
		t.Errorf("data at %v, want 9µs (no control delay)", arrivals[Data])
	}
	wantCNP := arrivals[Data] + des.Time(CtrlSize*8)/des.Time(1) // rough lower bound check below
	_ = wantCNP
	// CNP: sent at 9µs... serialisation 64B = 0.512µs + 1µs prop + 50µs extra.
	got := arrivals[CNP]
	want := des.Time(9*des.Microsecond) + des.Time(512) + des.Time(51*des.Microsecond)
	if got != want {
		t.Errorf("CNP at %v, want %v", got, want)
	}
}

func TestStarTopologyDelivery(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 3,
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	received := map[int]int{}
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		received[pkt.Src]++
	})
	for _, s := range star.Senders {
		for i := 0; i < 10; i++ {
			s.Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
		}
	}
	nw.Sim.Run()
	for _, s := range star.Senders {
		if received[s.ID()] != 10 {
			t.Errorf("sender %d: receiver got %d packets, want 10", s.ID(), received[s.ID()])
		}
	}
}

func TestDumbbellTopologyDelivery(t *testing.T) {
	nw := New(1)
	d := NewDumbbell(nw, DumbbellConfig{
		Senders: 4, Receivers: 4,
		Link: LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	got := 0
	for _, r := range d.Receivers {
		r.Transport = TransportFunc(func(h *Host, pkt *Packet) { got++ })
	}
	// Every sender sends to every receiver, plus reverse-direction acks.
	want := 0
	for _, s := range d.Senders {
		for _, r := range d.Receivers {
			s.Send(&Packet{Dst: r.ID(), Size: DataMTU, Kind: Data})
			want++
		}
	}
	nw.Sim.Run()
	if got != want {
		t.Errorf("delivered %d, want %d", got, want)
	}
	if d.Bottleneck.TxBytes != int64(want*DataMTU) {
		t.Errorf("bottleneck carried %d bytes, want %d", d.Bottleneck.TxBytes, want*DataMTU)
	}
}

func TestUnknownRoutePanics(t *testing.T) {
	nw := New(1)
	sw := nw.NewSwitch(PFCConfig{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing route")
		}
	}()
	sw.Receive(&Packet{Dst: 99, Kind: Data})
}

// PFC: a slow egress and a tiny pause threshold must pause the upstream
// host, and every packet still arrives (drop-free network).
func TestPFCPausesAndConserves(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		PFC:     PFCConfig{PauseBytes: 3000, ResumeBytes: 1000},
	})
	received := 0
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	sender := star.Senders[0]
	const n = 200 // 100 per sender; two senders overdrive the egress 2:1
	for i := 0; i < n/2; i++ {
		star.Senders[0].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
		star.Senders[1].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
	}
	sawPause := false
	nw.Sim.Every(0, des.Microsecond, func() {
		if sender.Port().Paused() {
			sawPause = true
		}
		if nw.Sim.Now() > des.Time(100*des.Millisecond) {
			nw.Sim.Stop()
		}
	})
	nw.Sim.Run()
	if !sawPause {
		t.Error("PFC never paused the sender despite a 3 KB threshold")
	}
	if received != n {
		t.Errorf("received %d packets, want %d (drop-free)", received, n)
	}
	if sender.Port().Paused() {
		t.Error("sender still paused after the queue drained")
	}
}

func TestMonitorQueueBytes(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
	})
	series := MonitorQueueBytes(nw.Sim, star.Bottleneck, 10*des.Microsecond)
	for _, s := range star.Senders {
		for i := 0; i < 50; i++ {
			s.Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
		}
	}
	nw.Sim.RunUntil(des.Time(2 * des.Millisecond))
	if series.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	peak := series.WindowSummary(0, 1).Max
	if peak < DataMTU {
		t.Errorf("peak queue %v bytes, expected visible buildup", peak)
	}
}

func TestMonitorThroughput(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 1,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
	})
	thr := MonitorThroughput(nw.Sim, star.Bottleneck, 100*des.Microsecond)
	// Saturate for 2 ms.
	var sendLoop func()
	sent := 0
	sendLoop = func() {
		if nw.Sim.Now() > des.Time(2*des.Millisecond) {
			return
		}
		star.Senders[0].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
		sent++
		nw.Sim.Schedule(des.Duration(float64(DataMTU)/1.25e8*1e9), sendLoop)
	}
	nw.Sim.Schedule(0, sendLoop)
	nw.Sim.RunUntil(des.Time(2 * des.Millisecond))
	s := thr.WindowSummary(0.0005, 0.002)
	if s.Mean < 1.2e8*0.9 {
		t.Errorf("bottleneck throughput %v B/s, want near line rate 1.25e8", s.Mean)
	}
}

// Determinism: identical seeds give identical event counts and clocks.
func TestPropertyDeterministicRuns(t *testing.T) {
	run := func(seed int64) (uint64, des.Time, int) {
		nw := New(seed)
		star := NewStar(nw, StarConfig{
			Senders: 3,
			Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() Marker {
				return &REDMarker{Kmin: 1000, Kmax: 5000, Pmax: 0.5, Rng: nw.Rng}
			},
		})
		marked := 0
		star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
			if pkt.CE {
				marked++
			}
		})
		for _, s := range star.Senders {
			for i := 0; i < 200; i++ {
				s.Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data, ECT: true})
			}
		}
		nw.Sim.Run()
		return nw.Sim.Processed(), nw.Sim.Now(), marked
	}
	f := func(seed int64) bool {
		a1, b1, c1 := run(seed)
		a2, b2, c2 := run(seed)
		return a1 == a2 && b1 == b2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: bytes are conserved through arbitrary dumbbell configurations —
// every data byte a sender emits is eventually delivered, with or without
// PFC, for random packet mixes.
func TestPropertyByteConservation(t *testing.T) {
	f := func(seed int64, pfcSmall bool, burst8 uint8) bool {
		nw := New(seed)
		pfc := PFCConfig{}
		if pfcSmall {
			pfc = PFCConfig{PauseBytes: 4000, ResumeBytes: 2000}
		}
		d := NewDumbbell(nw, DumbbellConfig{
			Senders: 3, Receivers: 3,
			Link: LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
			PFC:  pfc,
		})
		var sent, got int64
		for _, r := range d.Receivers {
			r.Transport = TransportFunc(func(h *Host, pkt *Packet) { got += int64(pkt.Size) })
		}
		rng := nw.Rng
		burst := 1 + int(burst8)%50
		for i := 0; i < burst; i++ {
			src := d.Senders[rng.Intn(3)]
			dst := d.Receivers[rng.Intn(3)]
			size := 64 + rng.Intn(DataMTU-64)
			src.Send(&Packet{Dst: dst.ID(), Size: size, Kind: Data, ECT: true})
			sent += int64(size)
		}
		nw.Sim.Run()
		return got == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
