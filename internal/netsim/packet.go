package netsim

import "ecndelay/internal/des"

// Kind distinguishes the packet types the simulated protocols exchange.
type Kind uint8

// Packet kinds. Data carries flow payload; Ack is TIMELY's completion
// event (and, with loss recovery enabled, a cumulative acknowledgement);
// CNP is DCQCN's congestion notification; Pause/Resume are PFC control
// frames; Nack is the go-back-N gap report carrying the receiver's next
// expected byte offset in Seq.
const (
	Data Kind = iota
	Ack
	CNP
	Pause
	Resume
	Nack
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case CNP:
		return "CNP"
	case Pause:
		return "PAUSE"
	case Resume:
		return "RESUME"
	case Nack:
		return "NACK"
	}
	return "?"
}

// Control reports whether the kind is a feedback/control packet (which
// ports treat preferentially and to which feedback jitter applies).
func (k Kind) Control() bool { return k != Data }

// Common on-wire sizes in bytes. DataMTU matches the 1 KB packets used
// throughout the paper's scenarios.
const (
	DataMTU  = 1000
	CtrlSize = 64
)

// Packet is the unit the simulator moves. Packets come from the network's
// free list (Network.NewPacket) and are owned by the network once sent; the
// delivery endpoint recycles them, so receivers and transports may read but
// must not retain them past the Receive/Handle call. Every field of a
// freshly allocated packet is zero, whether pooled or not.
type Packet struct {
	ID   uint64
	Flow int // flow identifier, -1 for control not tied to a flow
	Src  int // originating host/switch node id
	Dst  int // destination host node id
	Size int // bytes on the wire
	Kind Kind

	// ECN state (RFC 3168 semantics, simplified to two bits).
	ECT bool // ECN-capable transport
	CE  bool // congestion experienced

	Seq    int64    // first payload byte offset (Data); cumulative-ack offset (Ack/Nack)
	Last   bool     // last packet of its flow (Data)
	AckReq bool     // completion event requested (TIMELY segment end)
	SentAt des.Time // stamped by the sender when handed to the NIC
	EchoT  des.Time // Ack: echo of the acknowledged packet's SentAt
	Bytes  int      // Ack: payload bytes covered by this completion event
	EnqT   des.Time // stamped at each egress-queue Push (per-hop delay histograms)

	// MarkEp/MarkT carry the control-loop audit's mark-episode provenance:
	// the marking port stamps a CE-marked data packet with the episode id
	// and mark time, and the DCQCN notification point copies both onto the
	// CNP it sends back, so the sender's rate cut can name the episode that
	// caused it and measure the mark→CNP-receipt latency. Both stay zero
	// when no audit trail is attached (the usual state), so the fields are
	// pure payload — they never influence simulation behaviour.
	MarkEp uint64   // mark-episode id, 0 when unmarked or audit detached
	MarkT  des.Time // time the CE mark was applied

	ingress int // switch-internal: ingress port index while buffered
	// prevHop is the node that transmitted the packet on its most recent
	// hop, stamped by the delivering port just before Receive. Switches on
	// multipath (ECMP) fabrics use it to attribute PFC accounting to the
	// true upstream when the source's reverse route is an ECMP group
	// rather than a single port.
	prevHop int

	// inPool marks a packet currently sitting in the free list, letting the
	// observability layer detect double frees. Always false on a packet
	// handed out by NewPacket (it is part of the all-fields-zero contract).
	inPool bool
}
