package netsim

import (
	"testing"

	"ecndelay/internal/des"
)

// --- Finite queue capacity (tail drop) ---

func TestQueueCapTailDrop(t *testing.T) {
	q := NewQueue(nil)
	q.SetCapBytes(2500)
	if q.CapBytes() != 2500 {
		t.Fatalf("CapBytes = %d, want 2500", q.CapBytes())
	}
	for i := 0; i < 5; i++ {
		q.Push(&Packet{ID: uint64(i), Size: 1000})
	}
	// 1000 + 1000 admitted; the third would hit 3000 > 2500 → dropped.
	if q.Len() != 2 || q.Bytes() != 2000 {
		t.Errorf("len/bytes = %d/%d, want 2/2000", q.Len(), q.Bytes())
	}
	if q.Drops() != 3 || q.DroppedBytes() != 3000 {
		t.Errorf("drops/bytes = %d/%d, want 3/3000", q.Drops(), q.DroppedBytes())
	}
	// FIFO order of survivors.
	if q.Pop().ID != 0 || q.Pop().ID != 1 {
		t.Error("tail drop disturbed FIFO order of admitted packets")
	}
}

func TestQueueCapEmptyQueueAdmitsOversize(t *testing.T) {
	q := NewQueue(nil)
	q.SetCapBytes(100) // below the packet size
	if !q.Push(&Packet{Size: 1000}) {
		t.Fatal("empty queue must admit one packet even above capacity")
	}
	if q.Push(&Packet{Size: 1000}) {
		t.Fatal("second oversize packet must tail-drop")
	}
	if q.Drops() != 1 {
		t.Errorf("drops = %d, want 1", q.Drops())
	}
}

func TestQueueCapZeroIsUnbounded(t *testing.T) {
	q := NewQueue(nil)
	for i := 0; i < 1000; i++ {
		if !q.Push(&Packet{Size: DataMTU}) {
			t.Fatal("unbounded queue dropped a packet")
		}
	}
	if q.Drops() != 0 {
		t.Errorf("drops = %d on unbounded queue", q.Drops())
	}
}

// A finite switch buffer under 2:1 overload: every sent packet is either
// delivered or accounted as a tail drop — no packet vanishes.
func TestFiniteSwitchBufferConservesWithDrops(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders:        2,
		Link:           LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		SwitchQueueCap: 5000,
	})
	received := 0
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	const n = 200
	for i := 0; i < n/2; i++ {
		star.Senders[0].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
		star.Senders[1].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	drops := int(star.Bottleneck.Queue().Drops())
	if drops == 0 {
		t.Error("2:1 overload of a 5 KB buffer produced no tail drops")
	}
	if received+drops != n {
		t.Errorf("received %d + drops %d = %d, want %d (conservation)",
			received, drops, received+drops, n)
	}
	if star.Bottleneck.Queue().DroppedBytes() != int64(drops)*DataMTU {
		t.Errorf("dropped bytes %d, want %d",
			star.Bottleneck.Queue().DroppedBytes(), drops*DataMTU)
	}
}

// Tail drops must release PFC ingress accounting: with a buffer smaller
// than the pause threshold region, the run must terminate with zeroed
// ingress counters and no port left paused (a leak would wedge the fabric).
func TestFiniteBufferReleasesPFCAccounting(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders:        2,
		Link:           LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		PFC:            PFCConfig{PauseBytes: 2000, ResumeBytes: 1000},
		SwitchQueueCap: 3000,
	})
	received := 0
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	const n = 100
	for i := 0; i < n/2; i++ {
		star.Senders[0].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
		star.Senders[1].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	drops := int(star.Bottleneck.Queue().Drops())
	if received+drops != n {
		t.Errorf("received %d + drops %d != sent %d", received, drops, n)
	}
	for i, use := range star.Switch.ingressUse {
		if use != 0 {
			t.Errorf("ingress %d still accounts %d bytes after drain (leak)", i, use)
		}
	}
	for _, s := range star.Senders {
		if s.Port().Paused() {
			t.Error("sender left paused after the run (accounting leak)")
		}
	}
}

// --- Link flaps ---

func TestLinkFlapDropsAndRecovers(t *testing.T) {
	nw := New(1)
	received := 0
	rx := nw.NewHost()
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	const n = 100
	for i := 0; i < n; i++ {
		tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	}
	// Down at 100 µs (mid-transfer), up at 300 µs.
	nw.Sim.At(des.Time(100*des.Microsecond), func() { p.SetLinkDown(true) })
	nw.Sim.At(des.Time(300*des.Microsecond), func() {
		if !p.LinkDown() {
			t.Error("LinkDown() false while flapped down")
		}
		p.SetLinkDown(false)
	})
	nw.Sim.Run()
	drops := int(p.WireDrops())
	if drops == 0 {
		t.Error("flap during transfer lost nothing — in-flight packets should die")
	}
	if received == 0 || received+drops != n {
		t.Errorf("received %d + wire drops %d != sent %d", received, drops, n)
	}
	if p.LinkDown() {
		t.Error("link still down at end")
	}
}

// While a link is down the transmitter must not serialise at all — queued
// packets survive the outage and flow once the link returns.
func TestLinkDownHoldsQueue(t *testing.T) {
	nw := New(1)
	received := 0
	rx := nw.NewHost()
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	p.SetLinkDown(true) // down before anything is sent
	for i := 0; i < 10; i++ {
		tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.At(des.Time(des.Millisecond), func() { p.SetLinkDown(false) })
	nw.Sim.Run()
	if received != 10 {
		t.Errorf("received %d, want 10 — queue must hold through the outage", received)
	}
	if p.WireDrops() != 0 {
		t.Errorf("wire drops %d, want 0 (nothing was in flight)", p.WireDrops())
	}
}

// --- Fault hook ---

type dropEveryN struct {
	n, seen int
	drops   int
}

func (d *dropEveryN) DropTx(pkt *Packet) bool {
	d.seen++
	if d.seen%d.n == 0 {
		d.drops++
		return true
	}
	return false
}

func TestFaultHookDropsOnWire(t *testing.T) {
	nw := New(1)
	received := 0
	rx := nw.NewHost()
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	hook := &dropEveryN{n: 2}
	p.SetFaultHook(hook)
	const n = 100
	for i := 0; i < n; i++ {
		tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	if received != n/2 {
		t.Errorf("received %d, want %d", received, n/2)
	}
	if int(p.WireDrops()) != hook.drops || hook.drops != n/2 {
		t.Errorf("wire drops %d (hook %d), want %d", p.WireDrops(), hook.drops, n/2)
	}
	// Dropped packets still consumed link bandwidth.
	if p.TxBytes != int64(n)*DataMTU {
		t.Errorf("TxBytes %d, want %d — drops happen after serialisation", p.TxBytes, n*DataMTU)
	}
	// Removing the hook restores lossless delivery.
	p.SetFaultHook(nil)
	for i := 0; i < 10; i++ {
		tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	if received != n/2+10 {
		t.Errorf("received %d after hook removal, want %d", received, n/2+10)
	}
}

// --- PFC edge cases (satellite: pause-while-paused, spurious resume,
// cascade ordering across two switches) ---

// Pause-while-paused must be absorbed: one pause episode, released by a
// single RESUME, with repeated RESUMEs equally harmless.
func TestPFCPauseWhilePaused(t *testing.T) {
	nw := New(1)
	rx := nw.NewHost()
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	wd := NewPFCWatchdog(nw.Sim, des.Millisecond)
	wd.Watch(p)
	nw.Sim.At(des.Time(10*des.Microsecond), func() {
		tx.Receive(&Packet{Kind: Pause, Src: rx.ID()})
	})
	nw.Sim.At(des.Time(20*des.Microsecond), func() {
		if !p.Paused() {
			t.Error("port not paused after PAUSE")
		}
		tx.Receive(&Packet{Kind: Pause, Src: rx.ID()}) // pause-while-paused
	})
	nw.Sim.At(des.Time(50*des.Microsecond), func() {
		tx.Receive(&Packet{Kind: Resume, Src: rx.ID()})
	})
	nw.Sim.At(des.Time(60*des.Microsecond), func() {
		if p.Paused() {
			t.Error("one RESUME must release the pause — PFC does not nest")
		}
		tx.Receive(&Packet{Kind: Resume, Src: rx.ID()}) // resume-while-resumed
	})
	nw.Sim.Run()
	if p.Paused() {
		t.Error("port left paused")
	}
	if wd.Pauses() != 1 {
		t.Errorf("watchdog saw %d pause episodes, want 1 (duplicate absorbed)", wd.Pauses())
	}
	if got, want := wd.PausedTotal(), 40*des.Microsecond; got != want {
		t.Errorf("paused total %v, want %v", got, want)
	}
}

// A RESUME arriving at a switch whose ingress was never paused (empty
// ingress accounting) must be a harmless no-op and leave traffic flowing.
func TestPFCResumeWithEmptyIngress(t *testing.T) {
	nw := New(1)
	star := NewStar(nw, StarConfig{
		Senders: 1,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		PFC:     PFCConfig{PauseBytes: 1 << 20, ResumeBytes: 1 << 19},
	})
	received := 0
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	// Spurious RESUME into the switch from the sender side, and into the
	// idle sender NIC: neither was ever paused.
	star.Switch.Receive(&Packet{Kind: Resume, Src: star.Senders[0].ID()})
	star.Senders[0].Receive(&Packet{Kind: Resume, Src: star.Switch.ID()})
	for i := 0; i < 20; i++ {
		star.Senders[0].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	if received != 20 {
		t.Errorf("received %d, want 20 after spurious RESUMEs", received)
	}
	if star.Senders[0].Port().Paused() {
		t.Error("spurious RESUME corrupted pause state")
	}
}

// Backpressure cascade across two switches: with a fast trunk, congestion
// at SW2's receiver egress pauses the trunk first, and only then does SW1's
// buildup pause the sender NICs. Everything drains drop-free afterwards.
func TestPFCCascadeOrderingAcrossSwitches(t *testing.T) {
	nw := New(1)
	d := NewDumbbell(nw, DumbbellConfig{
		Senders: 2, Receivers: 1,
		Link:           LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		TrunkBandwidth: 2.5e8,
		PFC:            PFCConfig{PauseBytes: 3000, ResumeBytes: 1000},
	})
	received := 0
	d.Receivers[0].Transport = TransportFunc(func(h *Host, pkt *Packet) { received++ })
	const n = 200
	for i := 0; i < n/2; i++ {
		d.Senders[0].Send(&Packet{Dst: d.Receivers[0].ID(), Size: DataMTU, Kind: Data})
		d.Senders[1].Send(&Packet{Dst: d.Receivers[0].ID(), Size: DataMTU, Kind: Data})
	}
	var trunkPausedAt, senderPausedAt des.Time = -1, -1
	nw.Sim.Every(0, des.Microsecond, func() {
		now := nw.Sim.Now()
		if trunkPausedAt < 0 && d.Bottleneck.Paused() {
			trunkPausedAt = now
		}
		if senderPausedAt < 0 &&
			(d.Senders[0].Port().Paused() || d.Senders[1].Port().Paused()) {
			senderPausedAt = now
		}
		if now > des.Time(100*des.Millisecond) {
			nw.Sim.Stop()
		}
	})
	nw.Sim.Run()
	if trunkPausedAt < 0 {
		t.Fatal("SW2 never paused the trunk despite receiver-egress overload")
	}
	if senderPausedAt < 0 {
		t.Fatal("SW1 never propagated backpressure to the sender NICs")
	}
	if trunkPausedAt > senderPausedAt {
		t.Errorf("cascade inverted: trunk paused at %v after senders at %v",
			trunkPausedAt, senderPausedAt)
	}
	if received != n {
		t.Errorf("received %d, want %d (PFC is drop-free)", received, n)
	}
	for _, sw := range []*Switch{d.SW1, d.SW2} {
		for i, use := range sw.ingressUse {
			if use != 0 {
				t.Errorf("switch %d ingress %d still accounts %d bytes", sw.ID(), i, use)
			}
		}
	}
	for _, s := range d.Senders {
		if s.Port().Paused() {
			t.Error("sender left paused after drain")
		}
	}
	if d.Bottleneck.Paused() {
		t.Error("trunk left paused after drain")
	}
}

// --- PFC watchdog ---

func TestPFCWatchdogDetectsStorm(t *testing.T) {
	nw := New(1)
	rx := nw.NewHost()
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	wd := NewPFCWatchdog(nw.Sim, 100*des.Microsecond)
	wd.Watch(p)
	// A 490 µs pause: storm. A 50 µs pause: not a storm.
	nw.Sim.At(des.Time(10*des.Microsecond), func() { p.pause() })
	nw.Sim.At(des.Time(500*des.Microsecond), func() { p.unpause() })
	nw.Sim.At(des.Time(600*des.Microsecond), func() { p.pause() })
	nw.Sim.At(des.Time(650*des.Microsecond), func() { p.unpause() })
	nw.Sim.Run()
	if wd.Storms() != 1 {
		t.Fatalf("storms = %d, want 1", wd.Storms())
	}
	ev := wd.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d, want 1", len(ev))
	}
	if ev[0].Port != p || ev[0].Start != des.Time(10*des.Microsecond) ||
		ev[0].Duration != 490*des.Microsecond || ev[0].OpenAtFinish {
		t.Errorf("bad storm record: %+v", ev[0])
	}
	if wd.Pauses() != 2 {
		t.Errorf("pauses = %d, want 2", wd.Pauses())
	}
	if got, want := wd.PausedTotal(), 540*des.Microsecond; got != want {
		t.Errorf("paused total %v, want %v", got, want)
	}
}

// A pause still held at the end of the run is flagged as a suspected
// deadlock by Finish.
func TestPFCWatchdogFlagsOpenStorm(t *testing.T) {
	nw := New(1)
	rx := nw.NewHost()
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	wd := NewPFCWatchdog(nw.Sim, 100*des.Microsecond)
	wd.Watch(p)
	nw.Sim.At(des.Time(10*des.Microsecond), func() { p.pause() })
	nw.Sim.RunUntil(des.Time(des.Millisecond))
	if wd.Storms() != 1 {
		t.Fatalf("storms = %d, want 1", wd.Storms())
	}
	if len(wd.Events()) != 0 {
		t.Fatal("open storm must not appear in Events before Finish")
	}
	wd.Finish()
	ev := wd.Events()
	if len(ev) != 1 || !ev[0].OpenAtFinish {
		t.Fatalf("Finish did not flag the held pause: %+v", ev)
	}
	if ev[0].Duration != 990*des.Microsecond {
		t.Errorf("open storm duration %v, want 990µs", ev[0].Duration)
	}
}

// A watchdog whose ports never pause long enough records nothing — and a
// port watched while already paused is picked up mid-pause.
func TestPFCWatchdogWatchWhilePaused(t *testing.T) {
	nw := New(1)
	rx := nw.NewHost()
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	p.pause()
	wd := NewPFCWatchdog(nw.Sim, 100*des.Microsecond)
	wd.Watch(p) // already paused: treated as pausing now
	nw.Sim.At(des.Time(200*des.Microsecond), func() { p.unpause() })
	nw.Sim.Run()
	if wd.Storms() != 1 || wd.Pauses() != 1 {
		t.Errorf("storms/pauses = %d/%d, want 1/1", wd.Storms(), wd.Pauses())
	}
}
