//go:build nopool

package netsim

// poolingDefault disables the packet pool under -tags=nopool, the reference
// configuration the pooling determinism tests compare against.
const poolingDefault = false
