package netsim

import (
	"math/rand"

	"ecndelay/internal/des"
)

// Queue is a byte-accounted FIFO of packets with an attached ECN marking
// policy. By default it never drops: the RoCEv2 setting the paper studies
// is drop-free (PFC backpressure, not loss, handles overload). An optional
// byte capacity (SetCapBytes) turns it into a finite shared-buffer egress
// that tail-drops — the regime where PFC is disabled or its thresholds are
// misconfigured.
type Queue struct {
	pkts     []*Packet
	head     int
	bytes    int
	capBytes int // 0: unbounded
	drops    int64
	dropped  int64 // bytes
	virtual  int   // fluid background occupancy, bytes (see SetVirtualBytes)
	mark     Marker

	// port is the owning port, set by NewPort; nil for standalone queues
	// (tests), which then emit no observability events.
	port *Port
}

// NewQueue builds a queue with the given marking policy (nil means no
// marking).
func NewQueue(m Marker) *Queue {
	return &Queue{mark: m}
}

// Len reports the number of queued packets.
func (q *Queue) Len() int { return len(q.pkts) - q.head }

// Bytes reports the queued payload in bytes.
func (q *Queue) Bytes() int { return q.bytes }

// SetVirtualBytes sets the fluid background occupancy superimposed on this
// queue. Markers see Bytes()+VirtualBytes() through MarkBytes, so a fluid
// aggregate (internal/hybrid) can shift the marking operating point without
// injecting packets. It does not consume capacity (SetCapBytes) and does not
// delay real packets: the coupling is through the congestion signal only.
// Zero — the default — leaves every marker byte-identical to the
// pre-virtual-bytes behaviour.
func (q *Queue) SetVirtualBytes(n int) {
	if n < 0 {
		n = 0
	}
	q.virtual = n
}

// VirtualBytes reports the fluid background occupancy (0 unless a hybrid
// aggregate is attached).
func (q *Queue) VirtualBytes() int { return q.virtual }

// MarkBytes reports the occupancy marking policies should act on: real
// queued bytes plus any fluid background occupancy.
func (q *Queue) MarkBytes() int { return q.bytes + q.virtual }

// SetCapBytes bounds the queue at c buffered bytes; 0 restores the default
// unbounded (lossless) behaviour. A non-empty queue tail-drops arrivals
// that would exceed the capacity; an empty queue always admits one packet,
// so a capacity below the MTU degrades rather than blackholes a link.
func (q *Queue) SetCapBytes(c int) { q.capBytes = c }

// CapBytes reports the configured capacity (0: unbounded).
func (q *Queue) CapBytes() int { return q.capBytes }

// Drops reports the number of packets tail-dropped at this queue.
func (q *Queue) Drops() int64 { return q.drops }

// DroppedBytes reports the payload bytes tail-dropped at this queue.
func (q *Queue) DroppedBytes() int64 { return q.dropped }

// Push appends a packet, applying enqueue-time marking if the policy asks
// for it (the "ingress marking" ablation of Figure 17). The marker sees the
// queue state at the instant of arrival, with the arriving packet included.
// It reports false when the packet was tail-dropped instead (finite
// capacity exceeded); the caller keeps ownership of a dropped packet.
func (q *Queue) Push(pkt *Packet) bool {
	if q.capBytes > 0 && q.bytes+pkt.Size > q.capBytes && q.Len() > 0 {
		q.drops++
		q.dropped += int64(pkt.Size)
		if q.port != nil && q.port.net.obs != nil {
			q.port.obsBufDrop(pkt)
		}
		return false
	}
	ceBefore := pkt.CE
	if q.port != nil {
		pkt.EnqT = q.port.ctx.sim.Now()
	}
	q.pkts = append(q.pkts, pkt)
	q.bytes += pkt.Size
	if q.mark != nil && q.mark.AtEnqueue() {
		q.mark.Mark(q, pkt)
	}
	// Compact the slice occasionally so memory stays bounded.
	if q.head > 1024 && q.head*2 > len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	if q.port != nil && q.port.net.obs != nil {
		q.port.obsQueue(obsEnqueue, pkt, ceBefore)
	}
	return true
}

// Pop removes the packet at the head, applying departure-time marking
// ("egress marking": the mark reflects the queue at the instant the packet
// departs, §5.2, with the departing packet still counted). It returns nil
// if the queue is empty.
func (q *Queue) Pop() *Packet {
	if q.Len() == 0 {
		return nil
	}
	pkt := q.pkts[q.head]
	ceBefore := pkt.CE
	if q.mark != nil && !q.mark.AtEnqueue() {
		q.mark.Mark(q, pkt)
	}
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= pkt.Size
	// Reset an emptied queue so a drain-by-Pop workload reuses the backing
	// array from the front instead of growing it (and holding dead slots)
	// forever; Push's occasional compaction only helps mixed workloads.
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	if q.port != nil {
		if h := q.port.qdH; h != nil {
			h.Record(q.port.ctx.sim.Now().Sub(pkt.EnqT).Seconds())
		}
		if q.port.net.obs != nil {
			q.port.obsQueue(obsDequeue, pkt, ceBefore)
		}
	}
	return pkt
}

// Marker decides whether a packet gets an ECN mark.
type Marker interface {
	// AtEnqueue reports whether marks are applied when packets arrive
	// (true: the queue state at arrival is encoded, and the mark then
	// waits out the queueing delay) or when they depart (false: the mark
	// reflects the instantaneous egress queue, the modern shared-buffer
	// behaviour the paper highlights).
	AtEnqueue() bool
	// Mark inspects q and may set pkt.CE.
	Mark(q *Queue, pkt *Packet)
}

// ThresholdMarker is implemented by markers with a well-defined onset
// occupancy below which they never mark. The control-loop audit uses it
// to time queue-crossing→first-mark latency and to delimit mark episodes;
// markers without a threshold (PI) fall back to 0, making an episode
// coincide with the marker-visible busy period.
type ThresholdMarker interface {
	// MarkThreshold reports the occupancy (bytes, against MarkBytes)
	// at or below which the marker never marks.
	MarkThreshold() int
}

// REDMarker implements the Eq. 3 RED-like profile on the instantaneous
// queue length.
type REDMarker struct {
	Kmin, Kmax int     // bytes
	Pmax       float64 // marking probability at Kmax
	Ingress    bool    // mark at enqueue instead of dequeue (Figure 17)
	Rng        *rand.Rand
}

// AtEnqueue implements Marker.
func (m *REDMarker) AtEnqueue() bool { return m.Ingress }

// MarkThreshold implements ThresholdMarker: RED never marks at or below
// Kmin.
func (m *REDMarker) MarkThreshold() int { return m.Kmin }

// Mark implements Marker.
func (m *REDMarker) Mark(q *Queue, pkt *Packet) {
	if !pkt.ECT || pkt.CE {
		return
	}
	b := q.MarkBytes()
	var p float64
	switch {
	case b <= m.Kmin:
		return
	case b <= m.Kmax:
		p = float64(b-m.Kmin) / float64(m.Kmax-m.Kmin) * m.Pmax
	default:
		p = 1
	}
	if p >= 1 || m.Rng.Float64() < p {
		pkt.CE = true
	}
}

// PIMarker is the Eq. 32 integral controller as a switch AQM: a timer
// updates the marking probability from the queue error, and departing
// packets are marked with that probability. Register it on a simulator with
// Start before running.
type PIMarker struct {
	K1       float64 // per byte
	K2       float64 // per byte per second
	QRef     int     // bytes
	PMax     float64 // anti-windup cap
	Interval des.Duration
	Rng      *rand.Rand

	p     float64
	prevQ int
	queue *Queue
}

// Start begins periodic probability updates against q.
func (m *PIMarker) Start(sim *des.Simulator, q *Queue) {
	m.queue = q
	if m.PMax == 0 {
		m.PMax = 0.1
	}
	if m.Interval == 0 {
		m.Interval = 10 * des.Microsecond
	}
	sim.Every(sim.Now().Add(m.Interval), m.Interval, func() {
		qb := q.MarkBytes()
		dt := m.Interval.Seconds()
		m.p += m.K1*float64(qb-m.prevQ) + m.K2*float64(qb-m.QRef)*dt
		if m.p < 0 {
			m.p = 0
		}
		if m.p > m.PMax {
			m.p = m.PMax
		}
		m.prevQ = qb
	})
}

// P exposes the current marking probability (for tests and monitoring).
func (m *PIMarker) P() float64 { return m.p }

// AtEnqueue implements Marker (PI marks on egress).
func (m *PIMarker) AtEnqueue() bool { return false }

// Mark implements Marker.
func (m *PIMarker) Mark(_ *Queue, pkt *Packet) {
	if !pkt.ECT || pkt.CE {
		return
	}
	if m.Rng.Float64() < m.p {
		pkt.CE = true
	}
}
