package netsim

import (
	"testing"

	"ecndelay/internal/des"
)

func TestParkingLotDelivery(t *testing.T) {
	nw := New(1)
	pl := NewParkingLot(nw, ParkingLotConfig{
		Hops: 3,
		Link: LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
	})
	if pl.Hops() != 3 || len(pl.Trunks) != 2 {
		t.Fatalf("hops=%d trunks=%d, want 3/2", pl.Hops(), len(pl.Trunks))
	}
	got := map[int]int{}
	for _, r := range pl.Recvs {
		id := r.ID()
		r.Transport = TransportFunc(func(h *Host, pkt *Packet) { got[id]++ })
	}
	// Long flow: S0 → R2 (crosses both trunks). Cross: S1 → R1 (local).
	// Backward: S2 → R0.
	for i := 0; i < 5; i++ {
		pl.Senders[0].Send(&Packet{Dst: pl.Recvs[2].ID(), Size: DataMTU, Kind: Data})
		pl.Senders[1].Send(&Packet{Dst: pl.Recvs[1].ID(), Size: DataMTU, Kind: Data})
		pl.Senders[2].Send(&Packet{Dst: pl.Recvs[0].ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	for i, r := range pl.Recvs {
		if got[r.ID()] != 5 {
			t.Errorf("receiver %d got %d packets, want 5", i, got[r.ID()])
		}
	}
	// The long flow's packets crossed both trunks; S2→R0 crossed both
	// backward; S1→R1 touched neither.
	if pl.Trunks[0].TxBytes != 5*DataMTU {
		t.Errorf("trunk 0 carried %d bytes, want %d", pl.Trunks[0].TxBytes, 5*DataMTU)
	}
	if pl.Trunks[1].TxBytes != 5*DataMTU {
		t.Errorf("trunk 1 carried %d bytes, want %d", pl.Trunks[1].TxBytes, 5*DataMTU)
	}
}

func TestParkingLotTooFewHopsPanics(t *testing.T) {
	nw := New(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Hops=1")
		}
	}()
	NewParkingLot(nw, ParkingLotConfig{Hops: 1, Link: LinkConfig{Bandwidth: 1, PropDelay: 0}})
}

// PIMarker wired through a topology factory starts automatically and holds
// the queue near its reference under sustained overload.
func TestPIMarkerAutoStartInTopology(t *testing.T) {
	nw := New(1)
	var pi *PIMarker
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		Mark: func() Marker {
			m := &PIMarker{K1: 1e-7, K2: 1e-4, QRef: 20000, Rng: nw.Rng}
			pi = m // last-created marker guards the bottleneck
			return m
		},
	})
	_ = star
	// Overdrive the bottleneck 2:1 with raw traffic; the marker's p must
	// rise (no senders react here, we only check the controller runs).
	for i := 0; i < 2000; i++ {
		star.Senders[0].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data, ECT: true})
		star.Senders[1].Send(&Packet{Dst: star.Receiver.ID(), Size: DataMTU, Kind: Data, ECT: true})
	}
	nw.Sim.RunUntil(des.Time(5 * des.Millisecond))
	if pi.P() <= 0 {
		t.Errorf("PI marker never engaged (p=%v) despite sustained overload", pi.P())
	}
}
