package netsim

import (
	"fmt"

	"ecndelay/internal/des"
)

// PFCConfig sets the Priority Flow Control thresholds on a switch. PFC
// tracks buffered bytes per ingress port; crossing PauseBytes sends PAUSE
// upstream, and draining below ResumeBytes sends RESUME. Zero values
// disable PFC (infinite buffer, never pauses) — the regime the fluid models
// assume ("ECN marking is triggered before PFC").
type PFCConfig struct {
	PauseBytes  int
	ResumeBytes int
}

// Enabled reports whether the thresholds are active.
func (c PFCConfig) Enabled() bool { return c.PauseBytes > 0 }

// Switch is a shared-buffer output-queued switch: every egress port has a
// FIFO with an ECN marking policy, and PFC watches per-ingress occupancy.
type Switch struct {
	net    *Network
	id     int
	ports  []*Port
	routes map[int]int // destination host id → egress port index

	pfc        PFCConfig
	ingressUse []int  // buffered bytes attributed to each ingress port
	pausedUp   []bool // whether we have PAUSEd the upstream on that port
}

// NewSwitch creates a switch with no ports. Wire it with AddPort and
// SetRoute (the topology builders do this).
func (nw *Network) NewSwitch(pfc PFCConfig) *Switch {
	sw := &Switch{net: nw, routes: make(map[int]int), pfc: pfc}
	sw.id = nw.addNode(sw)
	return sw
}

// ID implements Node.
func (sw *Switch) ID() int { return sw.id }

// AddPort attaches an egress port toward peer and returns its index.
func (sw *Switch) AddPort(peer Node, bandwidth float64, prop des.Duration, m Marker) int {
	p := sw.net.NewPort(sw, peer, bandwidth, prop, m)
	sw.ports = append(sw.ports, p)
	sw.ingressUse = append(sw.ingressUse, 0)
	sw.pausedUp = append(sw.pausedUp, false)
	return len(sw.ports) - 1
}

// Port returns the port at index i.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// Ports returns the switch's egress ports (the live slice; treat as
// read-only). Useful for summing per-port drop counters.
func (sw *Switch) Ports() []*Port { return sw.ports }

// SetRoute directs traffic for host dst out of port index i.
func (sw *Switch) SetRoute(dst, portIndex int) {
	if portIndex < 0 || portIndex >= len(sw.ports) {
		panic(fmt.Sprintf("netsim: switch %d has no port %d", sw.id, portIndex))
	}
	sw.routes[dst] = portIndex
}

// portToward finds the port whose peer is the given node id (for PFC
// control addressed to a neighbour).
func (sw *Switch) portToward(nodeID int) *Port {
	for _, p := range sw.ports {
		if p.peer.ID() == nodeID {
			return p
		}
	}
	return nil
}

// Receive implements Node: forward by static route, tracking PFC state.
func (sw *Switch) Receive(pkt *Packet) {
	switch pkt.Kind {
	case Pause:
		if p := sw.portToward(pkt.Src); p != nil {
			p.pause()
		}
		sw.net.FreePacket(pkt)
		return
	case Resume:
		if p := sw.portToward(pkt.Src); p != nil {
			p.unpause()
		}
		sw.net.FreePacket(pkt)
		return
	}
	idx, ok := sw.routes[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: switch %d has no route to %d", sw.id, pkt.Dst))
	}
	if sw.pfc.Enabled() {
		// Attribute the buffered bytes to the ingress the packet came
		// through (the port facing its source side); for a single-path
		// topology the reverse route of the source works.
		in := sw.ingressIndexFor(pkt)
		pkt.ingress = in
		if in >= 0 {
			sw.ingressUse[in] += pkt.Size
			if !sw.pausedUp[in] && sw.ingressUse[in] > sw.pfc.PauseBytes {
				sw.pausedUp[in] = true
				sw.sendPFC(in, Pause)
			}
		}
	} else {
		pkt.ingress = -1
	}
	sw.ports[idx].Send(pkt)
}

func (sw *Switch) ingressIndexFor(pkt *Packet) int {
	if idx, ok := sw.routes[pkt.Src]; ok {
		return idx
	}
	return -1
}

// departed is called by the owning port when a buffered packet finishes
// transmission, releasing its PFC accounting.
func (sw *Switch) departed(pkt *Packet) {
	if !sw.pfc.Enabled() || pkt.ingress < 0 {
		return
	}
	in := pkt.ingress
	sw.ingressUse[in] -= pkt.Size
	if sw.pausedUp[in] && sw.ingressUse[in] <= sw.pfc.ResumeBytes {
		sw.pausedUp[in] = false
		sw.sendPFC(in, Resume)
	}
}

func (sw *Switch) sendPFC(portIndex int, kind Kind) {
	p := sw.ports[portIndex]
	pkt := sw.net.NewPacket()
	pkt.ID = sw.net.NextPacketID()
	pkt.Flow = -1
	pkt.Src = sw.id
	pkt.Dst = p.peer.ID()
	pkt.Size = CtrlSize
	pkt.Kind = kind
	p.SendDirect(pkt)
}
