package netsim

import (
	"fmt"

	"ecndelay/internal/des"
)

// PFCConfig sets the Priority Flow Control thresholds on a switch. PFC
// tracks buffered bytes per ingress port; crossing PauseBytes sends PAUSE
// upstream, and draining below ResumeBytes sends RESUME. Zero values
// disable PFC (infinite buffer, never pauses) — the regime the fluid models
// assume ("ECN marking is triggered before PFC").
type PFCConfig struct {
	PauseBytes  int
	ResumeBytes int
}

// Enabled reports whether the thresholds are active.
func (c PFCConfig) Enabled() bool { return c.PauseBytes > 0 }

// Switch is a shared-buffer output-queued switch: every egress port has a
// FIFO with an ECN marking policy, and PFC watches per-ingress occupancy.
// Forwarding is by static per-destination route (SetRoute) or, for
// destinations with several equal-cost next hops, by seeded flow-consistent
// ECMP hashing (SetECMPRoutes).
type Switch struct {
	net     *Network
	ctx     *shardCtx
	id      int
	seq     nodeSeq
	ports   []*Port
	routes  map[int]int // destination host id → egress port index
	ecmp    map[int][]int
	peerIdx map[int]int // neighbour node id → egress port index toward it

	ecmpSeed uint64

	pfc        PFCConfig
	ingressUse []int  // buffered bytes attributed to each ingress port
	pausedUp   []bool // whether we have PAUSEd the upstream on that port
}

// NewSwitch creates a switch with no ports. Wire it with AddPort and
// SetRoute (the topology builders do this).
func (nw *Network) NewSwitch(pfc PFCConfig) *Switch {
	sw := &Switch{net: nw, ctx: &nw.def, routes: make(map[int]int), peerIdx: make(map[int]int), pfc: pfc}
	sw.id = nw.addNode(sw)
	sw.seq.init(sw.id)
	return sw
}

// ID implements Node.
func (sw *Switch) ID() int { return sw.id }

// AddPort attaches an egress port toward peer and returns its index.
func (sw *Switch) AddPort(peer Node, bandwidth float64, prop des.Duration, m Marker) int {
	p := sw.net.NewPort(sw, peer, bandwidth, prop, m)
	sw.ports = append(sw.ports, p)
	sw.ingressUse = append(sw.ingressUse, 0)
	sw.pausedUp = append(sw.pausedUp, false)
	idx := len(sw.ports) - 1
	if _, dup := sw.peerIdx[peer.ID()]; !dup {
		sw.peerIdx[peer.ID()] = idx
	}
	return idx
}

// Port returns the port at index i.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// Ports returns the switch's egress ports (the live slice; treat as
// read-only). Useful for summing per-port drop counters.
func (sw *Switch) Ports() []*Port { return sw.ports }

// SetRoute directs traffic for host dst out of port index i.
func (sw *Switch) SetRoute(dst, portIndex int) {
	if portIndex < 0 || portIndex >= len(sw.ports) {
		panic(fmt.Sprintf("netsim: switch %d has no port %d", sw.id, portIndex))
	}
	sw.routes[dst] = portIndex
}

// SetECMPRoutes directs traffic for host dst over a group of equal-cost
// egress ports, selected per packet by a seeded hash of the flow key
// (Src, Dst, Flow) — the simulator's 5-tuple equivalent — so every packet
// of a flow takes the same path while distinct flows spread across the
// group. A single-port group behaves exactly like SetRoute. SetRoute
// entries take precedence over ECMP groups for the same destination, so a
// topology may pin a deterministic down path while load-balancing the up
// direction.
func (sw *Switch) SetECMPRoutes(dst int, portIndexes []int) {
	if len(portIndexes) == 0 {
		panic(fmt.Sprintf("netsim: switch %d ECMP group for %d is empty", sw.id, dst))
	}
	for _, i := range portIndexes {
		if i < 0 || i >= len(sw.ports) {
			panic(fmt.Sprintf("netsim: switch %d has no port %d", sw.id, i))
		}
	}
	if sw.ecmp == nil {
		sw.ecmp = make(map[int][]int)
	}
	sw.ecmp[dst] = append([]int(nil), portIndexes...)
}

// SetECMPSeed seeds the flow-key hash. Two switches given distinct seeds
// make independent choices for the same flow (real fabrics hash with
// per-switch salts for exactly this reason); the topology generators derive
// per-switch seeds deterministically from one fabric seed, so a whole wired
// fabric is reproducible from its configuration.
func (sw *Switch) SetECMPSeed(seed uint64) { sw.ecmpSeed = seed }

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-mixed 64-bit permutation (same scheme the sweep engine uses for
// per-job seed derivation).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ecmpHash maps a flow key to a 64-bit hash, deterministically in
// (seed, src, dst, flow).
func ecmpHash(seed uint64, src, dst, flow int) uint64 {
	x := splitmix64(seed ^ (uint64(uint32(src)) | uint64(uint32(dst))<<32))
	return splitmix64(x ^ uint64(int64(flow)))
}

// EgressIndex reports the egress port index the switch would forward a
// packet with the given flow key through: the pinned route when one exists,
// otherwise the hashed pick from the destination's ECMP group. It returns
// -1 for unknown destinations. Pure — topology tests and path-tracing tools
// call it without moving packets.
func (sw *Switch) EgressIndex(src, dst, flow int) int {
	if idx, ok := sw.routes[dst]; ok {
		return idx
	}
	if g, ok := sw.ecmp[dst]; ok {
		return g[int(ecmpHash(sw.ecmpSeed, src, dst, flow)%uint64(len(g)))]
	}
	return -1
}

// portToward finds the port whose peer is the given node id (for PFC
// control addressed to a neighbour).
func (sw *Switch) portToward(nodeID int) *Port {
	if idx, ok := sw.peerIdx[nodeID]; ok {
		return sw.ports[idx]
	}
	return nil
}

// Receive implements Node: forward by static route, tracking PFC state.
func (sw *Switch) Receive(pkt *Packet) {
	switch pkt.Kind {
	case Pause:
		if p := sw.portToward(pkt.Src); p != nil {
			p.pause()
		}
		sw.ctx.freePacket(pkt)
		return
	case Resume:
		if p := sw.portToward(pkt.Src); p != nil {
			p.unpause()
		}
		sw.ctx.freePacket(pkt)
		return
	}
	idx := sw.EgressIndex(pkt.Src, pkt.Dst, pkt.Flow)
	if idx < 0 {
		panic(fmt.Sprintf("netsim: switch %d has no route to %d", sw.id, pkt.Dst))
	}
	if sw.pfc.Enabled() {
		// Attribute the buffered bytes to the ingress the packet came
		// through (the port facing its source side); for a single-path
		// topology the reverse route of the source works.
		in := sw.ingressIndexFor(pkt)
		pkt.ingress = in
		if in >= 0 {
			sw.ingressUse[in] += pkt.Size
			if !sw.pausedUp[in] && sw.ingressUse[in] > sw.pfc.PauseBytes {
				sw.pausedUp[in] = true
				sw.sendPFC(in, Pause)
			}
		}
	} else {
		pkt.ingress = -1
	}
	sw.ports[idx].Send(pkt)
}

// ingressIndexFor attributes a buffered packet to the ingress port it came
// through. The pinned reverse route of the source is the historical
// single-path answer and is kept first so existing topologies behave
// exactly as before; when the reverse path is an ECMP group (no pinned
// route), the delivering port's stamp identifies the true upstream — the
// hashed reverse pick could name a different equal-cost neighbour than the
// one actually feeding us.
func (sw *Switch) ingressIndexFor(pkt *Packet) int {
	if idx, ok := sw.routes[pkt.Src]; ok {
		return idx
	}
	if idx, ok := sw.peerIdx[pkt.prevHop]; ok {
		return idx
	}
	return -1
}

// departed is called by the owning port when a buffered packet finishes
// transmission, releasing its PFC accounting.
func (sw *Switch) departed(pkt *Packet) {
	if !sw.pfc.Enabled() || pkt.ingress < 0 {
		return
	}
	in := pkt.ingress
	sw.ingressUse[in] -= pkt.Size
	if sw.pausedUp[in] && sw.ingressUse[in] <= sw.pfc.ResumeBytes {
		sw.pausedUp[in] = false
		sw.sendPFC(in, Resume)
	}
}

func (sw *Switch) sendPFC(portIndex int, kind Kind) {
	p := sw.ports[portIndex]
	pkt := sw.ctx.newPacket()
	pkt.ID = sw.ctx.nextPacketID()
	pkt.Flow = -1
	pkt.Src = sw.id
	pkt.Dst = p.peer.ID()
	pkt.Size = CtrlSize
	pkt.Kind = kind
	p.SendDirect(pkt)
}
