package netsim

import "fmt"

// ParkingLot is the classic multi-bottleneck chain the paper lists as
// future work (§7): switches SW[0..H-1] in a line, one sender and one
// receiver hanging off each switch, so a "long" flow from the first to the
// last host crosses every inter-switch trunk while per-hop "short" cross
// flows load individual trunks.
//
//	S0        S1        S2    ...
//	 \         \         \
//	 SW0 ====> SW1 ====> SW2 ...
//	 /         /         /
//	R0        R1        R2
//
// Traffic conventions are up to the caller: any host can talk to any other
// host; routing follows the chain.
type ParkingLot struct {
	Net      *Network
	Switches []*Switch
	Senders  []*Host // Senders[i] attached to Switches[i]
	Recvs    []*Host // Recvs[i] attached to Switches[i]
	// Trunks[i] is the forward (increasing index) port from Switches[i]
	// to Switches[i+1] — the i-th potential bottleneck.
	Trunks []*Port
}

// ParkingLotConfig parameterises NewParkingLot.
type ParkingLotConfig struct {
	Hops int // number of switches (>= 2)
	Link LinkConfig
	Mark MarkerFactory
	PFC  PFCConfig
}

// NewParkingLot wires the chain.
func NewParkingLot(nw *Network, cfg ParkingLotConfig) *ParkingLot {
	if cfg.Hops < 2 {
		panic(fmt.Sprintf("netsim: parking lot needs >= 2 switches, got %d", cfg.Hops))
	}
	pl := &ParkingLot{Net: nw}
	mark := func() Marker {
		if cfg.Mark == nil {
			return nil
		}
		return cfg.Mark()
	}
	for i := 0; i < cfg.Hops; i++ {
		pl.Switches = append(pl.Switches, nw.NewSwitch(cfg.PFC))
	}
	for i, sw := range pl.Switches {
		s := nw.NewHost()
		s.Connect(sw, cfg.Link.Bandwidth, cfg.Link.PropDelay, nil)
		si := sw.AddPort(s, cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		sw.SetRoute(s.ID(), si)
		pl.Senders = append(pl.Senders, s)

		r := nw.NewHost()
		r.Connect(sw, cfg.Link.Bandwidth, cfg.Link.PropDelay, nil)
		ri := sw.AddPort(r, cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		sw.SetRoute(r.ID(), ri)
		pl.Recvs = append(pl.Recvs, r)
		_ = i
	}
	// Inter-switch trunks, both directions.
	fwd := make([]int, cfg.Hops-1)
	bwd := make([]int, cfg.Hops-1)
	for i := 0; i+1 < cfg.Hops; i++ {
		fwd[i] = pl.Switches[i].AddPort(pl.Switches[i+1], cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		bwd[i] = pl.Switches[i+1].AddPort(pl.Switches[i], cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		pl.Trunks = append(pl.Trunks, pl.Switches[i].Port(fwd[i]))
	}
	// Routes: every switch forwards toward the switch owning the target
	// host along the chain.
	for i, sw := range pl.Switches {
		for j := range pl.Switches {
			if i == j {
				continue
			}
			var port int
			if j > i {
				port = fwd[i]
			} else {
				port = bwd[i-1]
			}
			sw.SetRoute(pl.Senders[j].ID(), port)
			sw.SetRoute(pl.Recvs[j].ID(), port)
		}
	}
	return pl
}

// Hops reports the number of switches in the chain.
func (pl *ParkingLot) Hops() int { return len(pl.Switches) }
