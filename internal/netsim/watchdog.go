package netsim

import (
	"sync"

	"ecndelay/internal/des"
)

// PauseStorm is one sustained-pause event recorded by the PFC watchdog: a
// port that stayed PAUSEd continuously for at least the watchdog threshold.
type PauseStorm struct {
	Port     *Port
	Start    des.Time
	Duration des.Duration
	// OpenAtFinish marks a pause still held when Finish was called — the
	// fabric never released it, the signature of a pause deadlock rather
	// than a transient storm.
	OpenAtFinish bool
}

// PFCWatchdog detects PFC pause storms: it watches registered ports and
// records an event whenever one stays paused continuously for at least the
// threshold (the paper's motivating failure mode — congestion control
// exists precisely to keep PAUSE from firing, let alone persisting).
// Detection rides the pooled handler event path, so a watchdog adds no
// steady-state allocations; a network without a watchdog attached behaves
// bit-identically to one built before watchdogs existed.
type PFCWatchdog struct {
	sim       *des.Simulator
	threshold des.Duration
	ports     []*watchedPort

	// mu guards storms and events: in a sharded run each watched port's
	// pause bookkeeping fires on its own shard goroutine, and ports on
	// different shards may record storms concurrently. Per-port state
	// (watchedPort fields) stays lock-free — only its shard touches it.
	mu     sync.Mutex
	storms int
	events []PauseStorm
}

// watchedPort is the per-port pause bookkeeping; it is the des.Handler for
// the storm-threshold check events.
type watchedPort struct {
	wd        *PFCWatchdog
	p         *Port
	pausedAt  des.Time
	stormOpen bool
	check     des.EventRef
	pauses    int
	total     des.Duration // cumulative paused time over closed pauses
}

// NewPFCWatchdog builds a watchdog that flags any continuous pause lasting
// at least threshold. Attach ports with Watch (or WatchHost/WatchSwitch).
func NewPFCWatchdog(sim *des.Simulator, threshold des.Duration) *PFCWatchdog {
	if threshold <= 0 {
		panic("netsim: PFC watchdog threshold must be positive")
	}
	return &PFCWatchdog{sim: sim, threshold: threshold}
}

// Watch registers a port. A port already paused at registration is treated
// as pausing now. Watching the same port twice replaces the previous
// watcher.
func (wd *PFCWatchdog) Watch(p *Port) {
	w := &watchedPort{wd: wd, p: p}
	p.watch = w
	wd.ports = append(wd.ports, w)
	if p.paused {
		w.onPause()
	}
}

// WatchHost registers the host's NIC port.
func (wd *PFCWatchdog) WatchHost(h *Host) { wd.Watch(h.Port()) }

// WatchSwitch registers every port of the switch.
func (wd *PFCWatchdog) WatchSwitch(sw *Switch) {
	for _, p := range sw.ports {
		wd.Watch(p)
	}
}

// OnEvent implements des.Handler on the per-port state: the check fires
// threshold after a pause began; the check is cancelled at unpause, so
// firing means that same pause is still held — a storm.
func (w *watchedPort) OnEvent(any) {
	if w.p.paused && !w.stormOpen {
		w.stormOpen = true
		w.wd.mu.Lock()
		w.wd.storms++
		w.wd.mu.Unlock()
	}
}

// onPause/onUnpause run on the port owner's shard, so the check event is
// scheduled on (and its clock read from) the port's shard simulator — the
// same simulator as wd.sim in a serial run.
func (w *watchedPort) onPause() {
	w.pausedAt = w.p.ctx.sim.Now()
	w.pauses++
	if w.p.mint != nil {
		w.check = w.p.ctx.sim.ScheduleHandlerSeq(w.wd.threshold, w.p.mint.mint(), w, nil)
	} else {
		w.check = w.p.ctx.sim.ScheduleHandler(w.wd.threshold, w, nil)
	}
}

func (w *watchedPort) onUnpause() {
	now := w.p.ctx.sim.Now()
	w.total += now.Sub(w.pausedAt)
	w.check.Cancel()
	if w.stormOpen {
		w.stormOpen = false
		w.wd.mu.Lock()
		w.wd.events = append(w.wd.events, PauseStorm{
			Port: w.p, Start: w.pausedAt, Duration: now.Sub(w.pausedAt),
		})
		w.wd.mu.Unlock()
	}
}

// Storms reports the number of sustained-pause events detected so far,
// including ones still open.
func (wd *PFCWatchdog) Storms() int { return wd.storms }

// Events returns the closed storm records; call Finish first to also close
// out pauses still held at the end of a run.
func (wd *PFCWatchdog) Events() []PauseStorm {
	return append([]PauseStorm(nil), wd.events...)
}

// Pauses reports the total number of pause episodes (of any duration) seen
// across all watched ports.
func (wd *PFCWatchdog) Pauses() int {
	n := 0
	for _, w := range wd.ports {
		n += w.pauses
	}
	return n
}

// PausedTotal reports cumulative paused time across all watched ports,
// counting still-open pauses up to the current simulation time.
func (wd *PFCWatchdog) PausedTotal() des.Duration {
	t := des.Duration(0)
	now := wd.sim.Now()
	for _, w := range wd.ports {
		t += w.total
		if w.p.paused {
			t += now.Sub(w.pausedAt)
		}
	}
	return t
}

// Finish closes out storms still open at the end of a run: any port whose
// storm never released gets an event flagged OpenAtFinish (a suspected
// deadlock). Call once after the simulation horizon.
func (wd *PFCWatchdog) Finish() {
	now := wd.sim.Now()
	for _, w := range wd.ports {
		if w.stormOpen {
			w.stormOpen = false
			wd.events = append(wd.events, PauseStorm{
				Port: w.p, Start: w.pausedAt, Duration: now.Sub(w.pausedAt),
				OpenAtFinish: true,
			})
		}
	}
}
