package netsim

// Packet pooling: the hot path allocates packets from a per-context free
// list (NewPacket) and the delivery endpoint recycles them (FreePacket), so
// a steady-state run moves millions of packets through a handful of structs.
// Each pool is a plain LIFO slice touched only by its own shard's goroutine
// — the serial engine has one context, a partitioned network one per shard —
// so no locking is needed and reuse order is deterministic. After a
// cross-shard hop the packet is freed into the receiver's pool; structs
// migrate between free lists but never race.
//
// Building with -tags=nopool (or calling SetPooling(false) before a run)
// turns both calls into plain allocate/forget, the reference behaviour the
// pooling determinism tests compare against.

// NewPacket returns a zeroed packet, reusing a recycled one when pooling is
// on. All fields are zero, exactly as a &Packet{} literal. Allocates from
// the default context's pool; sharded datapath code allocates through its
// own shardCtx instead.
func (nw *Network) NewPacket() *Packet { return nw.def.newPacket() }

// FreePacket recycles a delivered packet. The caller must be the packet's
// final consumer: after this call every field is zeroed and the struct may
// be handed out again by NewPacket. Packets not minted by NewPacket (tests
// build them with literals) may be freed too; they simply join the pool.
func (nw *Network) FreePacket(pkt *Packet) { nw.def.freePacket(pkt) }

// SetPooling toggles packet recycling. Turning it off makes FreePacket a
// no-op, so every NewPacket heap-allocates — the fallback used to verify
// pooling does not change simulated results. Toggle before running; packets
// already in the pool remain reusable.
func (nw *Network) SetPooling(on bool) { nw.pooling = on }

// PoolSize reports the number of packets currently in the free lists,
// summed across shards (the default context alone in a serial run).
func (nw *Network) PoolSize() int {
	n := len(nw.def.pktFree)
	if nw.shard != nil {
		for _, c := range nw.shard.ctxs {
			n += len(c.pktFree)
		}
	}
	return n
}
