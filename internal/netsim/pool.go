package netsim

// Packet pooling: the hot path allocates packets from a per-network free
// list (NewPacket) and the delivery endpoint recycles them (FreePacket), so
// a steady-state run moves millions of packets through a handful of structs.
// The pool is a plain LIFO slice — the simulator is single-threaded per
// network, so no locking is needed, and reuse order is deterministic.
//
// Building with -tags=nopool (or calling SetPooling(false) before a run)
// turns both calls into plain allocate/forget, the reference behaviour the
// pooling determinism tests compare against.

// NewPacket returns a zeroed packet, reusing a recycled one when pooling is
// on. All fields are zero, exactly as a &Packet{} literal.
func (nw *Network) NewPacket() *Packet {
	if n := len(nw.pktFree); n > 0 {
		pkt := nw.pktFree[n-1]
		nw.pktFree[n-1] = nil
		nw.pktFree = nw.pktFree[:n-1]
		pkt.inPool = false
		return pkt
	}
	return &Packet{}
}

// FreePacket recycles a delivered packet. The caller must be the packet's
// final consumer: after this call every field is zeroed and the struct may
// be handed out again by NewPacket. Packets not minted by NewPacket (tests
// build them with literals) may be freed too; they simply join the pool.
func (nw *Network) FreePacket(pkt *Packet) {
	if !nw.pooling {
		return
	}
	if pkt.inPool {
		// Double free: the packet is already in the free list. Leave the
		// pool untouched — appending it again would hand the same struct
		// to two owners later — and report it when someone is watching.
		// Skipping the re-append is safe unobserved too: free-list length
		// is invisible to simulation logic, so healthy runs stay
		// bit-identical and broken ones stop corrupting the pool.
		if nw.obs != nil {
			nw.obsDoubleFree(pkt)
		}
		return
	}
	*pkt = Packet{}
	pkt.inPool = true
	nw.pktFree = append(nw.pktFree, pkt)
}

// SetPooling toggles packet recycling. Turning it off makes FreePacket a
// no-op, so every NewPacket heap-allocates — the fallback used to verify
// pooling does not change simulated results. Toggle before running; packets
// already in the pool remain reusable.
func (nw *Network) SetPooling(on bool) { nw.pooling = on }

// PoolSize reports the number of packets currently in the free list.
func (nw *Network) PoolSize() int { return len(nw.pktFree) }
