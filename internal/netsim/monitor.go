package netsim

import (
	"ecndelay/internal/des"
	"ecndelay/internal/stats"
)

// MonitorQueueBytes samples a port's egress queue occupancy (bytes) every
// interval into a time series (time in seconds). Sampling starts at the
// first interval boundary and runs for the life of the simulation.
func MonitorQueueBytes(sim *des.Simulator, p *Port, interval des.Duration) *stats.Series {
	s := &stats.Series{}
	sim.Every(sim.Now().Add(interval), interval, func() {
		s.Add(sim.Now().Seconds(), float64(p.Queue().Bytes()))
	})
	return s
}

// MonitorThroughput samples a port's delivered rate (bytes/second, averaged
// over each interval) into a time series.
func MonitorThroughput(sim *des.Simulator, p *Port, interval des.Duration) *stats.Series {
	s := &stats.Series{}
	var last int64
	sim.Every(sim.Now().Add(interval), interval, func() {
		cur := p.TxBytes
		rate := float64(cur-last) / interval.Seconds()
		last = cur
		s.Add(sim.Now().Seconds(), rate)
	})
	return s
}
