//go:build !nopool

package netsim

// poolingDefault is the packet-pool state for new networks; the nopool
// build tag flips it off for A/B determinism runs.
const poolingDefault = true
