// Package netsim is the packet-level network simulator the paper's NS3
// experiments correspond to: hosts, switches with shared-buffer egress
// queues and ECN marking (egress or ingress), PFC backpressure, static
// routing, and per-port serialisation and propagation delays — all driven
// by the deterministic event engine in internal/des.
package netsim

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// Node is anything attached to the network fabric.
type Node interface {
	// ID is the node's index in the network.
	ID() int
	// Receive handles a packet delivered to this node.
	Receive(pkt *Packet)
}

// Network owns the simulator, the node table and the shared RNG. Build one
// with New, attach nodes (hosts, switches) via the topology helpers, then
// drive Sim.
type Network struct {
	Sim   *des.Simulator
	Rng   *rand.Rand
	nodes []Node
	ports []*Port

	// def is the default (serial) shard context: it owns the packet free
	// list and id counter of an unpartitioned run and schedules on Sim.
	// PartitionByNode replaces the per-node context pointers with
	// per-shard ones; shard is nil until then.
	def     shardCtx
	shard   *sharding
	pooling bool

	// obs is the attached observability layer; nil — the default — keeps
	// every hook site a single pointer check (see SetObserver).
	obs *obs.NetObserver
	// obsRun is the process-unique tag stamped into this network's
	// port-scoped events (obs.Event.Run), assigned when an observer
	// attaches; it keeps a shared invariant checker's per-port books
	// separate across networks with identical node ids.
	obsRun uint32
}

// New creates an empty network with a deterministic RNG.
func New(seed int64) *Network {
	nw := &Network{
		Sim:     des.New(),
		Rng:     rand.New(rand.NewSource(seed)),
		pooling: poolingDefault,
	}
	nw.def = shardCtx{nw: nw, sim: nw.Sim}
	return nw
}

// AddNode registers n and returns its id. Topology helpers call this.
func (nw *Network) addNode(n Node) int {
	nw.nodes = append(nw.nodes, n)
	return len(nw.nodes) - 1
}

// NodeCount reports the number of registered nodes (partition maps must
// cover exactly this many entries).
func (nw *Network) NodeCount() int { return len(nw.nodes) }

// NodeByID returns a registered node.
func (nw *Network) NodeByID(id int) Node {
	if id < 0 || id >= len(nw.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return nw.nodes[id]
}

// NextPacketID hands out unique packet ids from the default context.
// Sharded nodes use their own context's id space instead.
func (nw *Network) NextPacketID() uint64 { return nw.def.nextPacketID() }

// FaultHook intercepts packets leaving a port; internal/fault installs
// implementations via SetFaultHook. DropTx is consulted once per packet at
// the end of serialisation: returning true loses the packet on the wire
// (it consumed link bandwidth but is never delivered). A nil hook — the
// default — leaves the transmit path exactly as it was, so fault-free runs
// are bit-identical with the fault subsystem compiled in.
type FaultHook interface {
	DropTx(pkt *Packet) bool
}

// Port is a unidirectional attachment point: it owns the egress queue
// toward a fixed peer and models serialisation (Bandwidth) plus propagation
// (PropDelay). PFC pauses stop new transmissions; the in-flight packet
// always completes.
//
// A port is its own des.Handler: the transmit state machine reschedules
// itself through the pooled event path, so per-packet transmission and
// delivery capture no closures and allocate nothing in steady state.
type Port struct {
	net   *Network
	owner Node
	peer  Node

	// ctx is the owner's shard context (scheduling, packet pool);
	// peerCtx the peer's. They coincide — and out is nil — unless the
	// port crosses a shard boundary, in which case deliveries route
	// through the out mailbox instead of the local heap.
	ctx     *shardCtx
	peerCtx *shardCtx
	out     *mailbox
	// mint is the owner node's event-sequence minter: transmit ticks and
	// deliveries carry owner-minted keys so their tie order is independent
	// of the shard partition. Nil only for custom Node implementations
	// (tests), which fall back to the simulator counter and cannot be
	// sharded anyway.
	mint *nodeSeq

	// ownerSwitch caches the owner's *Switch identity so the per-packet
	// departure hook avoids a type assertion; nil for host NICs.
	ownerSwitch *Switch

	Bandwidth float64 // bytes/second
	PropDelay des.Duration

	// CtrlExtraDelay adds a fixed delay to delivered control packets
	// (Ack/CNP), modelling a longer feedback path without stretching the
	// forward path.
	CtrlExtraDelay des.Duration
	// CtrlJitterMax adds uniform [0, CtrlJitterMax) random delay to
	// delivered control packets (the Figure 20 jitter injection).
	CtrlJitterMax des.Duration

	queue  *Queue
	txPkt  *Packet // in-flight packet being serialised (busy == true)
	busy   bool
	paused bool

	// Fault-injection state (inert unless internal/fault wires it up).
	// down and wireDrops are atomic because a sharded delivery fires on
	// the peer's shard while flaps and transmit-side drops happen on the
	// owner's; serial behaviour is unchanged.
	hook      FaultHook
	down      atomic.Bool  // link flap: refuses tx and drops deliveries
	wireDrops atomic.Int64 // packets lost on the wire (fault hook or flap)
	watch     *watchedPort

	// ctr is the port's bound counter set; nil when no observer (or no
	// metrics registry) is attached.
	ctr *obs.PortCounters
	// qdH is the port's bound per-hop queueing-delay histogram; nil when
	// no observer (or no histogram set) is attached.
	qdH *obs.Hist

	// Control-loop audit state (see obs_netsim.go). aud is non-nil only
	// when an audit trail is attached AND this port has a marking policy;
	// every episode field below is then owned by the owner's shard, like
	// the queue itself.
	aud      *obs.AuditTrail
	crossH   *obs.Hist // queue-crossing→first-mark latency histogram
	epThresh int       // marker onset occupancy (bytes), 0 without one
	epSeq    uint64    // episodes opened on this port
	epID     uint64    // id of the open episode, valid while epOpen
	epCrossT des.Time  // when the queue last crossed above epThresh
	epCross  bool      // queue is above epThresh
	epOpen   bool      // a mark episode is open

	// TxBytes counts payload transmitted, for utilisation accounting.
	TxBytes int64
}

// startableMarker is implemented by markers that need the simulator to run
// periodic state updates (the PI AQM).
type startableMarker interface {
	Start(sim *des.Simulator, q *Queue)
}

// NewPort wires a port from owner toward peer. Marking policy m may be
// nil; markers that need a clock (PIMarker) are started automatically.
func (nw *Network) NewPort(owner, peer Node, bandwidth float64, prop des.Duration, m Marker) *Port {
	if bandwidth <= 0 {
		panic("netsim: port bandwidth must be positive")
	}
	p := &Port{
		net: nw, owner: owner, peer: peer,
		ctx: &nw.def, peerCtx: &nw.def,
		Bandwidth: bandwidth, PropDelay: prop,
		queue: NewQueue(m),
	}
	p.queue.port = p
	switch v := owner.(type) {
	case *Switch:
		p.ownerSwitch = v
		p.mint = &v.seq
	case *Host:
		p.mint = &v.seq
	}
	if sm, ok := m.(startableMarker); ok {
		sm.Start(nw.Sim, p.queue)
	}
	nw.ports = append(nw.ports, p)
	if nw.obs != nil {
		p.bindObs()
	}
	return p
}

// Ports returns every port wired into the network, in creation order (the
// live slice; treat as read-only).
func (nw *Network) Ports() []*Port { return nw.ports }

// Queue exposes the egress queue (monitoring, tests).
func (p *Port) Queue() *Queue { return p.queue }

// PrefillQueue synthesises a queued data packet on this port's egress at
// the current instant, so a run can start with the queue already at an
// analytic operating point (internal/hybrid warm start) instead of
// simulating the fill transient. The packet is a normal ECT data segment —
// it drains, is delivered and can be CE-marked like any other — but it
// bypasses PFC ingress accounting (it was never received on an ingress),
// so prefilling is safe on PFC-enabled switches. It reports false when a
// finite queue tail-dropped the fill. Flow/src/dst should name a real flow
// so any CE feedback lands at a live sender; go-back-N runs should not
// prefill (the synthetic segments alias sequence space).
func (p *Port) PrefillQueue(flow, src, dst, size int) bool {
	pkt := p.ctx.newPacket()
	pkt.ID = p.ctx.nextPacketID()
	pkt.Flow = flow
	pkt.Src = src
	pkt.Dst = dst
	pkt.Size = size
	pkt.Kind = Data
	pkt.ECT = true
	pkt.ingress = -1
	pkt.SentAt = p.ctx.sim.Now()
	if !p.queue.Push(pkt) {
		p.ctx.freePacket(pkt)
		return false
	}
	p.tryTx()
	return true
}

// Peer reports the node at the far end.
func (p *Port) Peer() Node { return p.peer }

// Paused reports the PFC pause state.
func (p *Port) Paused() bool { return p.paused }

// SetFaultHook installs (or, with nil, removes) the packet-loss hook for
// this port. Normally called through a fault.Plan rather than directly.
func (p *Port) SetFaultHook(h FaultHook) { p.hook = h }

// SetLinkDown flaps the link: a down port refuses new transmissions and
// every packet that would land at the peer while the link is down is lost
// (the in-flight contents of the wire die with the link). Bringing the
// link back up restarts the transmitter.
func (p *Port) SetLinkDown(down bool) {
	p.down.Store(down)
	if !down {
		p.tryTx()
	}
}

// LinkDown reports whether the link is flapped down.
func (p *Port) LinkDown() bool { return p.down.Load() }

// WireDrops reports packets lost on the wire by fault injection or link
// flaps (tail drops at the finite egress queue are counted separately, by
// Queue.Drops).
func (p *Port) WireDrops() int64 { return p.wireDrops.Load() }

// Sim returns the simulator the port's owner schedules on: Network.Sim
// for a serial run, the owner's shard simulator when partitioned.
func (p *Port) Sim() *des.Simulator { return p.ctx.sim }

// Send enqueues pkt for transmission and starts the transmitter if idle.
// A tail drop at a finite queue releases the switch's PFC accounting for
// the packet and recycles it.
func (p *Port) Send(pkt *Packet) {
	if !p.queue.Push(pkt) {
		if p.ownerSwitch != nil {
			p.ownerSwitch.departed(pkt)
		}
		p.ctx.freePacket(pkt)
		return
	}
	p.tryTx()
}

// SendDirect bypasses the queue entirely (PFC PAUSE/RESUME frames, which
// real NICs emit from a dedicated high-priority path): the packet arrives
// after just the propagation delay.
func (p *Port) SendDirect(pkt *Packet) {
	p.deliver(p.PropDelay, pkt)
}

// deliver launches the propagation leg: a local event on the owner's
// simulator, or — when the peer lives on another shard — a mailbox push
// that keeps the exact (send-time, owner-minted seq) key the local
// schedule mints, so the consumer heap fires it in the identical order.
func (p *Port) deliver(delay des.Duration, pkt *Packet) {
	if p.mint == nil {
		p.ctx.sim.ScheduleHandler(delay, p, pkt)
		return
	}
	if p.out == nil {
		p.ctx.sim.ScheduleHandlerSeq(delay, p.mint.mint(), p, pkt)
		return
	}
	now := p.ctx.sim.Now()
	p.out.push(now.Add(delay), now, p.mint.mint(), pkt)
}

// pause and unpause implement PFC flow control on this port. Both are
// idempotent — repeated PAUSE (pause-while-paused) or RESUME frames are
// absorbed — and they notify the PFC watchdog, when one is attached, only
// on genuine state transitions.
func (p *Port) pause() {
	if p.paused {
		return
	}
	p.paused = true
	if p.watch != nil {
		p.watch.onPause()
	}
	if p.net.obs != nil {
		if p.ctr != nil {
			p.ctr.Pauses.Inc()
		}
		p.obsEvent(obs.Pause, nil)
	}
}

func (p *Port) unpause() {
	if p.paused {
		p.paused = false
		if p.watch != nil {
			p.watch.onUnpause()
		}
		if p.net.obs != nil {
			if p.ctr != nil {
				p.ctr.Resumes.Inc()
			}
			p.obsEvent(obs.Resume, nil)
		}
	}
	p.tryTx()
}

// OnEvent implements des.Handler: a nil argument is the serialisation-done
// tick for the in-flight packet; a *Packet argument is a delivery landing at
// the peer after propagation (lost instead if the link is flapped down).
func (p *Port) OnEvent(arg any) {
	if arg == nil {
		p.txDone()
		return
	}
	pkt := arg.(*Packet)
	// Deliveries fire on the peer's shard: free into the peer's pool and
	// stamp observability with the peer simulator's clock.
	if p.down.Load() {
		p.wireDrops.Add(1)
		if p.net.obs != nil {
			p.obsWireDropAt(p.peerCtx.sim.Now(), pkt)
		}
		p.peerCtx.freePacket(pkt)
		return
	}
	pkt.prevHop = p.owner.ID()
	p.peer.Receive(pkt)
}

func (p *Port) tryTx() {
	if p.busy || p.paused || p.down.Load() || p.queue.Len() == 0 {
		return
	}
	pkt := p.queue.Pop()
	p.busy = true
	p.txPkt = pkt
	txTime := des.DurationFromSeconds(float64(pkt.Size) / p.Bandwidth)
	p.TxBytes += int64(pkt.Size)
	if p.ctr != nil {
		p.ctr.TxBytes.Add(int64(pkt.Size))
		p.ctr.TxPkts.Inc()
	}
	if p.mint != nil {
		p.ctx.sim.ScheduleHandlerSeq(txTime, p.mint.mint(), p, nil)
	} else {
		p.ctx.sim.ScheduleHandler(txTime, p, nil)
	}
}

// txDone finishes serialising the in-flight packet: release PFC accounting,
// consult the fault hook, launch the propagation-delay delivery, and start
// on the next queued packet. A packet the fault layer drops (or that was
// being serialised when the link flapped down) consumed its serialisation
// time and TxBytes — it burned link bandwidth — but is never delivered.
func (p *Port) txDone() {
	pkt := p.txPkt
	p.txPkt = nil
	p.busy = false
	if p.ownerSwitch != nil {
		p.ownerSwitch.departed(pkt)
	}
	if p.down.Load() || (p.hook != nil && p.hook.DropTx(pkt)) {
		p.wireDrops.Add(1)
		if p.net.obs != nil {
			p.obsWireDropAt(p.ctx.sim.Now(), pkt)
		}
		p.ctx.freePacket(pkt)
		p.tryTx()
		return
	}
	delay := p.PropDelay
	if pkt.Kind.Control() && pkt.Kind != Pause && pkt.Kind != Resume {
		delay += p.CtrlExtraDelay
		if p.CtrlJitterMax > 0 {
			delay += des.Duration(p.net.Rng.Int63n(int64(p.CtrlJitterMax)))
		}
	}
	p.deliver(delay, pkt)
	p.tryTx()
}
