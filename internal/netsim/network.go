// Package netsim is the packet-level network simulator the paper's NS3
// experiments correspond to: hosts, switches with shared-buffer egress
// queues and ECN marking (egress or ingress), PFC backpressure, static
// routing, and per-port serialisation and propagation delays — all driven
// by the deterministic event engine in internal/des.
package netsim

import (
	"fmt"
	"math/rand"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// Node is anything attached to the network fabric.
type Node interface {
	// ID is the node's index in the network.
	ID() int
	// Receive handles a packet delivered to this node.
	Receive(pkt *Packet)
}

// Network owns the simulator, the node table and the shared RNG. Build one
// with New, attach nodes (hosts, switches) via the topology helpers, then
// drive Sim.
type Network struct {
	Sim   *des.Simulator
	Rng   *rand.Rand
	nodes []Node
	ports []*Port
	pktID uint64

	pktFree []*Packet
	pooling bool

	// obs is the attached observability layer; nil — the default — keeps
	// every hook site a single pointer check (see SetObserver).
	obs *obs.NetObserver
	// obsRun is the process-unique tag stamped into this network's
	// port-scoped events (obs.Event.Run), assigned when an observer
	// attaches; it keeps a shared invariant checker's per-port books
	// separate across networks with identical node ids.
	obsRun uint32
}

// New creates an empty network with a deterministic RNG.
func New(seed int64) *Network {
	return &Network{
		Sim:     des.New(),
		Rng:     rand.New(rand.NewSource(seed)),
		pooling: poolingDefault,
	}
}

// AddNode registers n and returns its id. Topology helpers call this.
func (nw *Network) addNode(n Node) int {
	nw.nodes = append(nw.nodes, n)
	return len(nw.nodes) - 1
}

// NodeByID returns a registered node.
func (nw *Network) NodeByID(id int) Node {
	if id < 0 || id >= len(nw.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return nw.nodes[id]
}

// NextPacketID hands out unique packet ids.
func (nw *Network) NextPacketID() uint64 {
	nw.pktID++
	return nw.pktID
}

// FaultHook intercepts packets leaving a port; internal/fault installs
// implementations via SetFaultHook. DropTx is consulted once per packet at
// the end of serialisation: returning true loses the packet on the wire
// (it consumed link bandwidth but is never delivered). A nil hook — the
// default — leaves the transmit path exactly as it was, so fault-free runs
// are bit-identical with the fault subsystem compiled in.
type FaultHook interface {
	DropTx(pkt *Packet) bool
}

// Port is a unidirectional attachment point: it owns the egress queue
// toward a fixed peer and models serialisation (Bandwidth) plus propagation
// (PropDelay). PFC pauses stop new transmissions; the in-flight packet
// always completes.
//
// A port is its own des.Handler: the transmit state machine reschedules
// itself through the pooled event path, so per-packet transmission and
// delivery capture no closures and allocate nothing in steady state.
type Port struct {
	net   *Network
	owner Node
	peer  Node

	// ownerSwitch caches the owner's *Switch identity so the per-packet
	// departure hook avoids a type assertion; nil for host NICs.
	ownerSwitch *Switch

	Bandwidth float64 // bytes/second
	PropDelay des.Duration

	// CtrlExtraDelay adds a fixed delay to delivered control packets
	// (Ack/CNP), modelling a longer feedback path without stretching the
	// forward path.
	CtrlExtraDelay des.Duration
	// CtrlJitterMax adds uniform [0, CtrlJitterMax) random delay to
	// delivered control packets (the Figure 20 jitter injection).
	CtrlJitterMax des.Duration

	queue  *Queue
	txPkt  *Packet // in-flight packet being serialised (busy == true)
	busy   bool
	paused bool

	// Fault-injection state (inert unless internal/fault wires it up).
	hook      FaultHook
	down      bool  // link flap: refuses tx and drops deliveries
	wireDrops int64 // packets lost on the wire (fault hook or flap)
	watch     *watchedPort

	// ctr is the port's bound counter set; nil when no observer (or no
	// metrics registry) is attached.
	ctr *obs.PortCounters
	// qdH is the port's bound per-hop queueing-delay histogram; nil when
	// no observer (or no histogram set) is attached.
	qdH *obs.Hist

	// TxBytes counts payload transmitted, for utilisation accounting.
	TxBytes int64
}

// startableMarker is implemented by markers that need the simulator to run
// periodic state updates (the PI AQM).
type startableMarker interface {
	Start(sim *des.Simulator, q *Queue)
}

// NewPort wires a port from owner toward peer. Marking policy m may be
// nil; markers that need a clock (PIMarker) are started automatically.
func (nw *Network) NewPort(owner, peer Node, bandwidth float64, prop des.Duration, m Marker) *Port {
	if bandwidth <= 0 {
		panic("netsim: port bandwidth must be positive")
	}
	p := &Port{
		net: nw, owner: owner, peer: peer,
		Bandwidth: bandwidth, PropDelay: prop,
		queue: NewQueue(m),
	}
	p.queue.port = p
	if sw, ok := owner.(*Switch); ok {
		p.ownerSwitch = sw
	}
	if sm, ok := m.(startableMarker); ok {
		sm.Start(nw.Sim, p.queue)
	}
	nw.ports = append(nw.ports, p)
	if nw.obs != nil {
		p.bindObs()
	}
	return p
}

// Ports returns every port wired into the network, in creation order (the
// live slice; treat as read-only).
func (nw *Network) Ports() []*Port { return nw.ports }

// Queue exposes the egress queue (monitoring, tests).
func (p *Port) Queue() *Queue { return p.queue }

// Peer reports the node at the far end.
func (p *Port) Peer() Node { return p.peer }

// Paused reports the PFC pause state.
func (p *Port) Paused() bool { return p.paused }

// SetFaultHook installs (or, with nil, removes) the packet-loss hook for
// this port. Normally called through a fault.Plan rather than directly.
func (p *Port) SetFaultHook(h FaultHook) { p.hook = h }

// SetLinkDown flaps the link: a down port refuses new transmissions and
// every packet that would land at the peer while the link is down is lost
// (the in-flight contents of the wire die with the link). Bringing the
// link back up restarts the transmitter.
func (p *Port) SetLinkDown(down bool) {
	p.down = down
	if !down {
		p.tryTx()
	}
}

// LinkDown reports whether the link is flapped down.
func (p *Port) LinkDown() bool { return p.down }

// WireDrops reports packets lost on the wire by fault injection or link
// flaps (tail drops at the finite egress queue are counted separately, by
// Queue.Drops).
func (p *Port) WireDrops() int64 { return p.wireDrops }

// Send enqueues pkt for transmission and starts the transmitter if idle.
// A tail drop at a finite queue releases the switch's PFC accounting for
// the packet and recycles it.
func (p *Port) Send(pkt *Packet) {
	if !p.queue.Push(pkt) {
		if p.ownerSwitch != nil {
			p.ownerSwitch.departed(pkt)
		}
		p.net.FreePacket(pkt)
		return
	}
	p.tryTx()
}

// SendDirect bypasses the queue entirely (PFC PAUSE/RESUME frames, which
// real NICs emit from a dedicated high-priority path): the packet arrives
// after just the propagation delay.
func (p *Port) SendDirect(pkt *Packet) {
	p.net.Sim.ScheduleHandler(p.PropDelay, p, pkt)
}

// pause and unpause implement PFC flow control on this port. Both are
// idempotent — repeated PAUSE (pause-while-paused) or RESUME frames are
// absorbed — and they notify the PFC watchdog, when one is attached, only
// on genuine state transitions.
func (p *Port) pause() {
	if p.paused {
		return
	}
	p.paused = true
	if p.watch != nil {
		p.watch.onPause()
	}
	if p.net.obs != nil {
		if p.ctr != nil {
			p.ctr.Pauses.Inc()
		}
		p.obsEvent(obs.Pause, nil)
	}
}

func (p *Port) unpause() {
	if p.paused {
		p.paused = false
		if p.watch != nil {
			p.watch.onUnpause()
		}
		if p.net.obs != nil {
			if p.ctr != nil {
				p.ctr.Resumes.Inc()
			}
			p.obsEvent(obs.Resume, nil)
		}
	}
	p.tryTx()
}

// OnEvent implements des.Handler: a nil argument is the serialisation-done
// tick for the in-flight packet; a *Packet argument is a delivery landing at
// the peer after propagation (lost instead if the link is flapped down).
func (p *Port) OnEvent(arg any) {
	if arg == nil {
		p.txDone()
		return
	}
	pkt := arg.(*Packet)
	if p.down {
		p.wireDrops++
		if p.net.obs != nil {
			p.obsWireDrop(pkt)
		}
		p.net.FreePacket(pkt)
		return
	}
	pkt.prevHop = p.owner.ID()
	p.peer.Receive(pkt)
}

func (p *Port) tryTx() {
	if p.busy || p.paused || p.down || p.queue.Len() == 0 {
		return
	}
	pkt := p.queue.Pop()
	p.busy = true
	p.txPkt = pkt
	txTime := des.DurationFromSeconds(float64(pkt.Size) / p.Bandwidth)
	p.TxBytes += int64(pkt.Size)
	if p.ctr != nil {
		p.ctr.TxBytes.Add(int64(pkt.Size))
		p.ctr.TxPkts.Inc()
	}
	p.net.Sim.ScheduleHandler(txTime, p, nil)
}

// txDone finishes serialising the in-flight packet: release PFC accounting,
// consult the fault hook, launch the propagation-delay delivery, and start
// on the next queued packet. A packet the fault layer drops (or that was
// being serialised when the link flapped down) consumed its serialisation
// time and TxBytes — it burned link bandwidth — but is never delivered.
func (p *Port) txDone() {
	pkt := p.txPkt
	p.txPkt = nil
	p.busy = false
	if p.ownerSwitch != nil {
		p.ownerSwitch.departed(pkt)
	}
	if p.down || (p.hook != nil && p.hook.DropTx(pkt)) {
		p.wireDrops++
		if p.net.obs != nil {
			p.obsWireDrop(pkt)
		}
		p.net.FreePacket(pkt)
		p.tryTx()
		return
	}
	delay := p.PropDelay
	if pkt.Kind.Control() && pkt.Kind != Pause && pkt.Kind != Resume {
		delay += p.CtrlExtraDelay
		if p.CtrlJitterMax > 0 {
			delay += des.Duration(p.net.Rng.Int63n(int64(p.CtrlJitterMax)))
		}
	}
	p.net.Sim.ScheduleHandler(delay, p, pkt)
	p.tryTx()
}
