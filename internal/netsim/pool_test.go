package netsim

import (
	"testing"

	"ecndelay/internal/des"
)

// Recycled packets must come back with every field zeroed — stale CE/Seq/
// ingress state leaking across reuses would corrupt marking and PFC
// accounting in ways determinism tests can't always catch.
func TestPacketPoolNoStaleState(t *testing.T) {
	nw := New(1)
	nw.SetPooling(true)
	pkt := nw.NewPacket()
	pkt.ID = 42
	pkt.Flow = 7
	pkt.Size = 999
	pkt.Kind = CNP
	pkt.ECT = true
	pkt.CE = true
	pkt.Seq = 12345
	pkt.Last = true
	pkt.AckReq = true
	pkt.SentAt = 99
	pkt.EchoT = 88
	pkt.Bytes = 77
	pkt.ingress = 3
	nw.FreePacket(pkt)
	if nw.PoolSize() != 1 {
		t.Fatalf("PoolSize = %d after free, want 1", nw.PoolSize())
	}
	got := nw.NewPacket()
	if got != pkt {
		t.Fatal("pool did not return the recycled packet")
	}
	if *got != (Packet{}) {
		t.Errorf("recycled packet has stale state: %+v", *got)
	}
}

// A double free without an observer attached must not corrupt the pool
// either: the second push is silently skipped (free-list length is
// invisible to simulation logic), so the same struct is never handed to
// two owners. Only the reporting needs an observer.
func TestPacketPoolUnobservedDoubleFree(t *testing.T) {
	nw := New(1)
	nw.SetPooling(true)
	pkt := nw.NewPacket()
	other := nw.NewPacket()
	nw.FreePacket(pkt)
	nw.FreePacket(pkt) // caller bug, absorbed without an observer
	if got := nw.PoolSize(); got != 1 {
		t.Fatalf("PoolSize = %d after unobserved double free, want 1", got)
	}
	nw.FreePacket(other)
	a, b := nw.NewPacket(), nw.NewPacket()
	if a == b {
		t.Fatal("double free handed the same packet to two owners")
	}
}

func TestPacketPoolDisabled(t *testing.T) {
	nw := New(1)
	nw.SetPooling(false)
	pkt := nw.NewPacket()
	nw.FreePacket(pkt)
	if nw.PoolSize() != 0 {
		t.Errorf("PoolSize = %d with pooling off, want 0", nw.PoolSize())
	}
	// FreePacket must not zero the packet when pooling is off: the caller
	// owns it again only in pooled mode.
	pkt2 := nw.NewPacket()
	if pkt2 == pkt {
		t.Error("disabled pool recycled a packet")
	}
}

// A queue drained purely by Pop must reset its backing array when it
// empties, so fill/drain cycles reuse the same storage instead of growing
// the slice (and its dead prefix) without bound.
func TestQueuePopResetsBacking(t *testing.T) {
	q := NewQueue(nil)
	fill := func(n int) {
		for i := 0; i < n; i++ {
			q.Push(&Packet{ID: uint64(i), Size: 1})
		}
	}
	fill(100)
	for q.Len() > 0 {
		q.Pop()
	}
	if q.head != 0 || len(q.pkts) != 0 {
		t.Fatalf("drained queue head/len = %d/%d, want 0/0", q.head, len(q.pkts))
	}
	capAfterFirst := cap(q.pkts)
	// Repeated fill/drain cycles must not grow the backing array.
	for cycle := 0; cycle < 50; cycle++ {
		fill(100)
		for q.Len() > 0 {
			q.Pop()
		}
	}
	if cap(q.pkts) != capAfterFirst {
		t.Errorf("backing array grew across drain cycles: cap %d -> %d",
			capAfterFirst, cap(q.pkts))
	}
	// FIFO order still holds after resets.
	fill(3)
	for i := 0; i < 3; i++ {
		if got := q.Pop().ID; got != uint64(i) {
			t.Fatalf("pop %d: got id %d", i, got)
		}
	}
}

// twoHopChain wires host -> switch -> host, the minimal store-and-forward
// path (two serialisations, two propagations, one routed queue).
func twoHopChain(seed int64) (nw *Network, tx, rx *Host) {
	nw = New(seed)
	nw.SetPooling(true) // the alloc gates test the pooled path under any build tag
	sw := nw.NewSwitch(PFCConfig{})
	rx = nw.NewHost()
	rx.Connect(sw, 1.25e9, des.Microsecond, nil)
	ri := sw.AddPort(rx, 1.25e9, des.Microsecond, nil)
	sw.SetRoute(rx.ID(), ri)
	tx = nw.NewHost()
	tx.Connect(sw, 1.25e9, des.Microsecond, nil)
	si := sw.AddPort(tx, 1.25e9, des.Microsecond, nil)
	sw.SetRoute(tx.ID(), si)
	return nw, tx, rx
}

// Alloc-regression gate for the packet hot path: after warmup, pushing
// packets through a 2-hop chain (pool alloc, queue, two tx state machines,
// delivery, recycle) must not allocate at all.
func TestPacketHotPathAllocFree(t *testing.T) {
	nw, tx, rx := twoHopChain(1)
	delivered := 0
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) { delivered++ })
	drive := func() {
		for i := 0; i < 32; i++ {
			pkt := nw.NewPacket()
			pkt.Dst = rx.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			pkt.ECT = true
			tx.Send(pkt)
		}
		nw.Sim.Run()
	}
	drive() // warm the packet pool, event free list, and queue storage
	drive()
	if allocs := testing.AllocsPerRun(50, drive); allocs != 0 {
		t.Errorf("packet hot path allocates %.1f allocs/run, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
	if nw.PoolSize() == 0 {
		t.Error("pool empty after runs; packets are not being recycled")
	}
}

// Same-seed runs with pooling on and off must be indistinguishable: the
// pool only changes memory reuse, never simulated behaviour.
func TestPoolingDeterminism(t *testing.T) {
	run := func(pooling bool) (processed uint64, now des.Time, marked, delivered int) {
		nw := New(11)
		nw.SetPooling(pooling)
		star := NewStar(nw, StarConfig{
			Senders: 3,
			Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() Marker {
				return &REDMarker{Kmin: 1000, Kmax: 5000, Pmax: 0.5, Rng: nw.Rng}
			},
			PFC: PFCConfig{PauseBytes: 50000, ResumeBytes: 20000},
		})
		star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
			delivered++
			if pkt.CE {
				marked++
			}
		})
		for _, s := range star.Senders {
			for i := 0; i < 500; i++ {
				pkt := nw.NewPacket()
				pkt.Dst = star.Receiver.ID()
				pkt.Size = DataMTU
				pkt.Kind = Data
				pkt.ECT = true
				s.Send(pkt)
			}
		}
		nw.Sim.Run()
		return nw.Sim.Processed(), nw.Sim.Now(), marked, delivered
	}
	p1, t1, m1, d1 := run(true)
	p2, t2, m2, d2 := run(false)
	if p1 != p2 || t1 != t2 || m1 != m2 || d1 != d2 {
		t.Errorf("pooled run (%d,%v,%d,%d) != unpooled run (%d,%v,%d,%d)",
			p1, t1, m1, d1, p2, t2, m2, d2)
	}
}

// BenchmarkPortChain measures packets/sec through the 2-hop chain: one
// packet end to end per iteration (send, switch store-and-forward, deliver,
// recycle).
func BenchmarkPortChain(b *testing.B) {
	nw, tx, rx := twoHopChain(1)
	delivered := 0
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) { delivered++ })
	// Warm pools so the measurement is the steady state.
	for i := 0; i < 100; i++ {
		pkt := nw.NewPacket()
		pkt.Dst = rx.ID()
		pkt.Size = DataMTU
		pkt.Kind = Data
		tx.Send(pkt)
	}
	nw.Sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := nw.NewPacket()
		pkt.Dst = rx.ID()
		pkt.Size = DataMTU
		pkt.Kind = Data
		tx.Send(pkt)
		nw.Sim.Run()
	}
	b.StopTimer()
	if delivered != b.N+100 {
		b.Fatalf("delivered %d, want %d", delivered, b.N+100)
	}
	b.ReportMetric(1e9/float64(b.Elapsed().Nanoseconds())*float64(b.N), "pkts/s")
}
