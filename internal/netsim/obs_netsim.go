package netsim

import (
	"fmt"
	"sync/atomic"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// Observability binding. The hooks follow the nil-hook pattern of the
// fault subsystem: without an observer attached every hook site is a
// single nil check on an already-loaded pointer, so unobserved runs are
// bit-identical to pre-observability builds and stay allocation-free.
// With an observer attached, ports bind their counters once (at attach
// time) and the per-packet path only touches atomics and emits value-type
// events — still allocation-free after warm-up.

// obsRunSeq numbers observed networks process-wide; see obs.Event.Run.
var obsRunSeq atomic.Uint32

// SetObserver attaches (or, with nil, detaches) the observability layer.
// Ports already wired bind their counters immediately; ports created
// later bind as they are created. Attach before running: counters only
// accumulate from the moment they are bound. Each attach stamps the
// network with a fresh run tag (obs.Event.Run), so a shared checker keeps
// this network's invariant books apart from every other observed run's.
func (nw *Network) SetObserver(o *obs.NetObserver) {
	nw.obs = o
	if o != nil {
		nw.obsRun = obsRunSeq.Add(1)
	}
	for _, p := range nw.ports {
		p.bindObs()
	}
}

// Observer reports the attached observability layer (nil when detached).
func (nw *Network) Observer() *obs.NetObserver { return nw.obs }

// PortName is the canonical metric prefix for the directed port from owner
// to peer, e.g. "port.n0-n2".
func PortName(owner, peer int) string {
	return fmt.Sprintf("port.n%d-n%d", owner, peer)
}

// Local aliases so queue.go's hook sites avoid an obs import of their own.
const (
	obsEnqueue = obs.Enqueue
	obsDequeue = obs.Dequeue
)

// bindObs registers the port's counter set with the observer's registry
// and its queueing-delay histogram with the observer's HistSet. Called
// when the port is created or when an observer is attached.
func (p *Port) bindObs() {
	o := p.net.obs
	p.ctr = nil
	p.qdH = nil
	p.aud = nil
	p.crossH = nil
	p.epCross = false
	p.epOpen = false
	if o == nil {
		return
	}
	if o.Metrics != nil {
		p.ctr = o.Metrics.PortCounters(PortName(p.owner.ID(), p.peer.ID()))
	}
	p.qdH = o.Hist(PortName(p.owner.ID(), p.peer.ID()) + ".qdelay_s")
	// The control-loop audit only tracks mark episodes on ports that can
	// mark; host NICs and unmarked fabric links keep a nil trail and skip
	// the episode hook with one check.
	if o.Audit != nil && p.queue.mark != nil {
		p.aud = o.Audit
		p.epThresh = 0
		if tm, ok := p.queue.mark.(ThresholdMarker); ok {
			p.epThresh = tm.MarkThreshold()
		}
		p.crossH = o.Hist("ctl.cross_to_mark_s")
	}
}

// obsEvent fills the port-invariant fields of a trace record and routes it
// through the observer. The caller has already checked p.net.obs != nil.
// Callers run on the owner's shard, so the owner context's clock is the
// correct event time (identical to Network.Sim in a serial run).
func (p *Port) obsEvent(typ obs.EventType, pkt *Packet) {
	p.obsEventAt(p.ctx.sim.Now(), typ, pkt)
}

func (p *Port) obsEventAt(t des.Time, typ obs.EventType, pkt *Packet) {
	e := obs.Event{
		T:    t,
		Type: typ,
		Kind: obs.KindNone,
		Run:  p.net.obsRun,
		Node: int32(p.owner.ID()),
		Peer: int32(p.peer.ID()),
	}
	if pkt != nil {
		e.Kind = uint8(pkt.Kind)
		e.Flow = int32(pkt.Flow)
		e.Size = int32(pkt.Size)
		e.Pkt = pkt.ID
		e.Seq = pkt.Seq
	}
	e.QLen = int32(p.queue.Len())
	e.QBytes = int64(p.queue.Bytes())
	e.QCap = int64(p.queue.CapBytes())
	p.net.obs.Emit(e)
}

// obsQueue reports queue events from Push/Pop: the enqueue/dequeue record
// plus a Mark record when the marking policy set CE during the operation.
func (p *Port) obsQueue(typ obs.EventType, pkt *Packet, ceBefore bool) {
	p.obsEvent(typ, pkt)
	fresh := !ceBefore && pkt.CE
	if fresh {
		if p.ctr != nil {
			p.ctr.Marks.Inc()
		}
		p.obsEvent(obs.Mark, pkt)
	}
	if p.aud != nil {
		p.audEpisode(typ, pkt, fresh)
	}
}

// audEpisode maintains the port's mark-episode state for the control-loop
// audit. A mark episode is "the first CE mark after the queue crosses the
// marker threshold until the occupancy falls back to or below it": the
// upward crossing is timestamped at enqueue, the first fresh mark after
// it opens the episode (recording crossing→mark latency and stamping the
// packet), and the occupancy falling back at dequeue closes it. Every
// freshly marked packet — episode-opening or not — carries the open
// episode's id and its mark time back toward the notification point.
func (p *Port) audEpisode(typ obs.EventType, pkt *Packet, fresh bool) {
	now := p.ctx.sim.Now()
	qb := p.queue.MarkBytes()
	if typ == obsEnqueue && !p.epCross && qb > p.epThresh {
		p.epCross = true
		p.epCrossT = now
	}
	if fresh {
		if !p.epOpen {
			p.epOpen = true
			p.epSeq++
			p.epID = uint64(p.owner.ID()+1)<<48 | uint64(p.peer.ID()+1)<<32 | p.epSeq
			crossT := p.epCrossT
			if !p.epCross {
				// A marker below its threshold "crossed" at the mark itself
				// (possible for threshold-free markers like PI on a draining
				// queue); report zero latency rather than a stale crossing.
				crossT = now
			}
			lat := now.Sub(crossT).Seconds()
			if p.crossH != nil {
				p.crossH.Record(lat)
			}
			p.aud.Emit(obs.Decision{
				T: now, Type: obs.DecMarkOpen,
				Node: int32(p.owner.ID()), Peer: int32(p.peer.ID()), Flow: -1,
				Seq: p.epSeq, Episode: p.epID, RTT: lat, QBytes: int64(qb),
			})
		}
		pkt.MarkEp = p.epID
		pkt.MarkT = now
	}
	if typ == obsDequeue && p.epCross && qb <= p.epThresh {
		p.epCross = false
		if p.epOpen {
			p.epOpen = false
			p.aud.Emit(obs.Decision{
				T: now, Type: obs.DecMarkClose,
				Node: int32(p.owner.ID()), Peer: int32(p.peer.ID()), Flow: -1,
				Seq: p.epSeq, Episode: p.epID, QBytes: int64(qb),
			})
		}
	}
}

// obsBufDrop records a tail drop at the finite egress queue.
func (p *Port) obsBufDrop(pkt *Packet) {
	if p.ctr != nil {
		p.ctr.BufDrops.Inc()
	}
	p.obsEvent(obs.BufDrop, pkt)
}

// obsWireDropAt records a packet lost on the wire (fault hook or link
// flap) at an explicit time: transmit-side drops happen on the owner's
// clock, delivery-side flap drops on the peer shard's.
func (p *Port) obsWireDropAt(t des.Time, pkt *Packet) {
	if p.ctr != nil {
		p.ctr.WireDrops.Inc()
	}
	p.obsEventAt(t, obs.WireDrop, pkt)
}

// obsDeliver records a packet landing at its destination host.
func (h *Host) obsDeliver(pkt *Packet) {
	o := h.net.obs
	if o == nil {
		return
	}
	o.Emit(obs.Event{
		T:    h.ctx.sim.Now(),
		Type: obs.Deliver,
		Kind: uint8(pkt.Kind),
		Run:  h.net.obsRun,
		Node: int32(h.id),
		Peer: int32(pkt.Src),
		Flow: int32(pkt.Flow),
		Size: int32(pkt.Size),
		Pkt:  pkt.ID,
		Seq:  pkt.Seq,
	})
}

// obsDoubleFreeAt records a pooled packet freed twice, stamped with the
// freeing shard's clock.
func (nw *Network) obsDoubleFreeAt(t des.Time, pkt *Packet) {
	nw.obs.Emit(obs.Event{
		T:    t,
		Type: obs.DoubleFree,
		Kind: uint8(pkt.Kind),
		Run:  nw.obsRun,
		Node: -1,
		Peer: -1,
		Flow: int32(pkt.Flow),
		Size: int32(pkt.Size),
		Pkt:  pkt.ID,
		Seq:  pkt.Seq,
	})
}
