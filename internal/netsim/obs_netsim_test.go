package netsim

import (
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// The obs package renders packet kinds from a name table it cannot derive
// from netsim (importing it would cycle); this test pins the value
// correspondence.
func TestObsKindNamesMatchNetsim(t *testing.T) {
	want := map[Kind]string{
		Data: "data", Ack: "ack", CNP: "cnp",
		Pause: "pause", Resume: "resume", Nack: "nack",
	}
	for k, name := range want {
		if got := obs.KindName(uint8(k)); got != name {
			t.Errorf("obs.KindName(%d) = %q, want %q (netsim.%v)", k, got, name, k)
		}
	}
}

// observedNet builds a network with every obs facility attached before any
// topology exists, so all counters bind at creation.
func observedNet(seed int64) (*Network, *obs.NetObserver) {
	nw := New(seed)
	nw.SetPooling(true)
	o := obs.Full()
	nw.SetObserver(o)
	return nw, o
}

func TestObsCountersMatchGroundTruth(t *testing.T) {
	nw, o := observedNet(3)
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		Mark: func() Marker {
			return &REDMarker{Kmin: 1000, Kmax: 5000, Pmax: 0.5, Rng: nw.Rng}
		},
		SwitchQueueCap: 20000,
	})
	delivered, marked := 0, 0
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		delivered++
		if pkt.CE {
			marked++
		}
	})
	for _, s := range star.Senders {
		for i := 0; i < 300; i++ {
			pkt := nw.NewPacket()
			pkt.Dst = star.Receiver.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			pkt.ECT = true
			s.Send(pkt)
		}
	}
	nw.Sim.Run()

	bn := PortName(star.Switch.ID(), star.Receiver.ID())
	reg := o.Metrics
	if got, want := reg.Counter(bn+".tx_bytes").Value(), star.Bottleneck.TxBytes; got != want {
		t.Errorf("%s.tx_bytes = %d, ground truth %d", bn, got, want)
	}
	if got, want := reg.Counter(bn+".buf_drops").Value(), star.Bottleneck.Queue().Drops(); got != want {
		t.Errorf("%s.buf_drops = %d, ground truth %d", bn, got, want)
	}
	if got, want := reg.Counter(bn+".marks").Value(), int64(marked); got != want {
		t.Errorf("%s.marks = %d, receiver saw %d CE packets", bn, got, want)
	}
	if marked == 0 || star.Bottleneck.Queue().Drops() == 0 {
		t.Fatalf("scenario not exercising marks (%d) and drops (%d)", marked, star.Bottleneck.Queue().Drops())
	}
	// Trace totals agree with the counters and with delivery.
	if got := o.Trace.Count(obs.Mark); got != int64(marked) {
		t.Errorf("trace marks %d, want %d", got, marked)
	}
	if got := o.Trace.Count(obs.BufDrop); got != star.Bottleneck.Queue().Drops() {
		t.Errorf("trace buf drops %d, want %d", got, star.Bottleneck.Queue().Drops())
	}
	if got := o.Trace.Count(obs.Deliver); got != int64(delivered) {
		t.Errorf("trace delivers %d, want %d", got, delivered)
	}
	// All queues drained: enqueues and dequeues must balance.
	if enq, deq := o.Trace.Count(obs.Enqueue), o.Trace.Count(obs.Dequeue); enq != deq {
		t.Errorf("enq %d != deq %d with all queues drained", enq, deq)
	}
	// And the invariant checker saw nothing wrong end to end.
	o.Check.Finish(nw.Sim.Now())
	if err := o.Check.Err(); err != nil {
		t.Errorf("invariants violated on a healthy run: %v", err)
	}
}

func TestObsWireDropCounter(t *testing.T) {
	nw := New(5)
	o := obs.Full()
	nw.SetObserver(o)
	rx := nw.NewHost()
	tx := nw.NewHost()
	tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	rx.Connect(tx, 1.25e8, des.Microsecond, nil)
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) {})
	for i := 0; i < 10; i++ {
		tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	}
	// Take the link down mid-flight: everything still in the pipe or the
	// queue is lost on the wire.
	nw.Sim.At(des.Time(20*des.Microsecond), func() { tx.Port().SetLinkDown(true) })
	nw.Sim.Run()
	if tx.Port().WireDrops() == 0 {
		t.Fatal("scenario lost nothing; cannot validate the counter")
	}
	name := PortName(tx.ID(), rx.ID()) + ".wire_drops"
	if got, want := o.Metrics.Counter(name).Value(), tx.Port().WireDrops(); got != want {
		t.Errorf("%s = %d, ground truth %d", name, got, want)
	}
	if got := o.Trace.Count(obs.WireDrop); got != tx.Port().WireDrops() {
		t.Errorf("trace wire drops %d, want %d", got, tx.Port().WireDrops())
	}
}

// A PFC scenario: pauses and resumes alternate, the counters match the
// trace, and the pairing invariant holds on a genuine run.
func TestObsPFCCleanAndCounted(t *testing.T) {
	nw, o := observedNet(7)
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		PFC:     PFCConfig{PauseBytes: 3000, ResumeBytes: 1000},
	})
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {})
	for i := 0; i < 100; i++ {
		for _, s := range star.Senders {
			pkt := nw.NewPacket()
			pkt.Dst = star.Receiver.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			s.Send(pkt)
		}
	}
	nw.Sim.Run()
	pauses, resumes := o.Trace.Count(obs.Pause), o.Trace.Count(obs.Resume)
	if pauses == 0 {
		t.Fatal("PFC never engaged; scenario broken")
	}
	if pauses != resumes {
		t.Errorf("pauses %d != resumes %d after full drain", pauses, resumes)
	}
	var ctrPauses, ctrResumes int64
	for _, m := range o.Metrics.Snapshot() {
		switch {
		case len(m.Name) > 7 && m.Name[len(m.Name)-7:] == ".pauses":
			ctrPauses += m.Value
		case len(m.Name) > 8 && m.Name[len(m.Name)-8:] == ".resumes":
			ctrResumes += m.Value
		}
	}
	if ctrPauses != pauses || ctrResumes != resumes {
		t.Errorf("counters (%d,%d) disagree with trace (%d,%d)", ctrPauses, ctrResumes, pauses, resumes)
	}
	o.Check.Finish(nw.Sim.Now())
	if err := o.Check.Err(); err != nil {
		t.Errorf("invariants violated on a healthy PFC run: %v", err)
	}
}

// Pause/resume records carry no packet, so their kind must render as "-"
// in the trace, never as a phantom data packet.
func TestObsPauseResumeKindNone(t *testing.T) {
	nw, o := observedNet(7)
	ms := obs.NewMemorySink(0)
	o.Trace.AddSink(ms)
	star := NewStar(nw, StarConfig{
		Senders: 2,
		Link:    LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
		PFC:     PFCConfig{PauseBytes: 3000, ResumeBytes: 1000},
	})
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {})
	for i := 0; i < 100; i++ {
		for _, s := range star.Senders {
			pkt := nw.NewPacket()
			pkt.Dst = star.Receiver.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			s.Send(pkt)
		}
	}
	nw.Sim.Run()
	if o.Trace.Count(obs.Pause) == 0 {
		t.Fatal("PFC never engaged; scenario broken")
	}
	for _, e := range ms.Events() {
		switch e.Type {
		case obs.Pause, obs.Resume:
			if e.Kind != obs.KindNone {
				t.Fatalf("%s record carries kind %q, want %q",
					e.Type, obs.KindName(e.Kind), obs.KindName(obs.KindNone))
			}
		case obs.Enqueue:
			if e.Kind == obs.KindNone {
				t.Fatal("packet-carrying record lost its kind")
			}
		}
	}
}

// Two networks observed by one shared observer get distinct run tags, so
// their identically-numbered ports never share invariant books — even when
// the first network stops mid-flight with packets still queued and a later
// network reuses the same node ids from zero.
func TestObsSharedObserverAcrossNetworks(t *testing.T) {
	o := obs.Full()
	ms := obs.NewMemorySink(0)
	o.Trace.AddSink(ms)
	run := func(stopEarly bool) {
		nw, tx, rx := twoHopChain(1)
		nw.SetObserver(o)
		rx.Transport = TransportFunc(func(h *Host, pkt *Packet) {})
		for i := 0; i < 32; i++ {
			pkt := nw.NewPacket()
			pkt.Dst = rx.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			tx.Send(pkt)
		}
		if stopEarly {
			// Stop with the switch queue still holding packets: the books
			// for this run legitimately end non-empty.
			nw.Sim.RunUntil(des.Time(30 * des.Microsecond))
		} else {
			nw.Sim.Run()
		}
		o.Check.Finish(nw.Sim.Now())
	}
	run(true)
	run(false)
	if err := o.Check.Err(); err != nil {
		t.Errorf("shared checker mixed books across networks: %v", err)
	}
	runs := make(map[uint32]bool)
	for _, e := range ms.Events() {
		runs[e.Run] = true
	}
	if len(runs) != 2 || runs[0] {
		t.Errorf("expected 2 distinct nonzero run tags, got %v", runs)
	}
}

// Freeing a pooled packet twice is detected when an observer watches, and
// the pool is protected from the corrupting second push.
func TestObsDoubleFreeDetected(t *testing.T) {
	nw := New(1)
	nw.SetPooling(true)
	o := obs.Full()
	nw.SetObserver(o)
	pkt := nw.NewPacket()
	pkt.ID = 42
	nw.FreePacket(pkt)
	if got := nw.PoolSize(); got != 1 {
		t.Fatalf("PoolSize = %d after first free, want 1", got)
	}
	nw.FreePacket(pkt)
	if got := o.Check.Count(obs.InvDoubleFree); got != 1 {
		t.Errorf("double-free violations = %d, want 1", got)
	}
	if got := o.Trace.Count(obs.DoubleFree); got != 1 {
		t.Errorf("double-free trace events = %d, want 1", got)
	}
	if got := nw.PoolSize(); got != 1 {
		t.Errorf("PoolSize = %d after double free, want 1 (second push rejected)", got)
	}
	// Legitimate reuse does not trip the detector.
	again := nw.NewPacket()
	nw.FreePacket(again)
	if got := o.Check.Count(obs.InvDoubleFree); got != 1 {
		t.Errorf("legitimate free counted as double free (%d violations)", got)
	}
}

// Attaching a full observer must not perturb the simulation: same seed,
// same traffic, same event count, same clock, observer on or off.
func TestObsOnOffDeterminism(t *testing.T) {
	run := func(observe bool) (processed uint64, now des.Time, delivered int, tx int64) {
		nw := New(11)
		nw.SetPooling(true)
		if observe {
			nw.SetObserver(obs.Full())
		}
		star := NewStar(nw, StarConfig{
			Senders: 3,
			Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
			Mark: func() Marker {
				return &REDMarker{Kmin: 1000, Kmax: 5000, Pmax: 0.5, Rng: nw.Rng}
			},
			PFC: PFCConfig{PauseBytes: 50000, ResumeBytes: 20000},
		})
		star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
			delivered++
		})
		for _, s := range star.Senders {
			for i := 0; i < 500; i++ {
				pkt := nw.NewPacket()
				pkt.Dst = star.Receiver.ID()
				pkt.Size = DataMTU
				pkt.Kind = Data
				pkt.ECT = true
				s.Send(pkt)
			}
		}
		nw.Sim.Run()
		return nw.Sim.Processed(), nw.Sim.Now(), delivered, star.Bottleneck.TxBytes
	}
	p1, t1, d1, x1 := run(true)
	p2, t2, d2, x2 := run(false)
	if p1 != p2 || t1 != t2 || d1 != d2 || x1 != x2 {
		t.Errorf("observed run (%d,%v,%d,%d) != unobserved run (%d,%v,%d,%d)",
			p1, t1, d1, x1, p2, t2, d2, x2)
	}
}

// The packet hot path must stay allocation-free with a full observer
// attached, once counters are bound, checker port entries exist, and the
// memory sink has hit its retention limit.
func TestObservedHotPathAllocFree(t *testing.T) {
	nw, tx, rx := twoHopChain(1)
	o := obs.Full()
	sink := obs.NewMemorySink(256)
	sink.Limit = 256
	o.Trace.AddSink(sink)
	nw.SetObserver(o)
	delivered := 0
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) { delivered++ })
	drive := func() {
		for i := 0; i < 32; i++ {
			pkt := nw.NewPacket()
			pkt.Dst = rx.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			pkt.ECT = true
			tx.Send(pkt)
		}
		nw.Sim.Run()
	}
	drive() // warm pools, counters, checker state, and fill the sink
	drive()
	if allocs := testing.AllocsPerRun(50, drive); allocs != 0 {
		t.Errorf("observed packet hot path allocates %.1f allocs/run, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
	o.Check.Finish(nw.Sim.Now())
	if err := o.Check.Err(); err != nil {
		t.Errorf("invariants violated: %v", err)
	}
}

// SetObserver after ports exist still binds their counters (late attach).
func TestObsLateAttachBindsExistingPorts(t *testing.T) {
	nw := New(1)
	rx := nw.NewHost()
	tx := nw.NewHost()
	tx.Connect(rx, 1.25e9, des.Microsecond, nil)
	rx.Connect(tx, 1.25e9, des.Microsecond, nil)
	o := obs.Full()
	nw.SetObserver(o) // ports already created
	rx.Transport = TransportFunc(func(h *Host, pkt *Packet) {})
	tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	nw.Sim.Run()
	name := PortName(tx.ID(), rx.ID()) + ".tx_bytes"
	if got := o.Metrics.Counter(name).Value(); got != DataMTU {
		t.Errorf("%s = %d after late attach, want %d", name, got, DataMTU)
	}
	// Detaching stops everything without disturbing the run.
	nw.SetObserver(nil)
	tx.Send(&Packet{Dst: rx.ID(), Size: DataMTU, Kind: Data})
	nw.Sim.Run()
	if got := o.Metrics.Counter(name).Value(); got != DataMTU {
		t.Errorf("%s = %d after detach, want unchanged %d", name, got, DataMTU)
	}
}

// The parking-lot topology under cross traffic keeps every invariant:
// multi-hop store-and-forward, two trunks, all queues drained.
func TestObsParkingLotCleanInvariants(t *testing.T) {
	nw, o := observedNet(9)
	pl := NewParkingLot(nw, ParkingLotConfig{
		Hops: 3,
		Link: LinkConfig{Bandwidth: 1.25e8, PropDelay: des.Microsecond},
	})
	for _, r := range pl.Recvs {
		r.Transport = TransportFunc(func(h *Host, pkt *Packet) {})
	}
	for i := 0; i < 50; i++ {
		pl.Senders[0].Send(&Packet{Dst: pl.Recvs[2].ID(), Size: DataMTU, Kind: Data})
		pl.Senders[1].Send(&Packet{Dst: pl.Recvs[1].ID(), Size: DataMTU, Kind: Data})
		pl.Senders[2].Send(&Packet{Dst: pl.Recvs[0].ID(), Size: DataMTU, Kind: Data})
	}
	nw.Sim.Run()
	if o.Trace.Count(obs.Deliver) != 150 {
		t.Fatalf("delivered %d, want 150", o.Trace.Count(obs.Deliver))
	}
	o.Check.Finish(nw.Sim.Now())
	if err := o.Check.Err(); err != nil {
		t.Errorf("parking-lot invariants violated: %v", err)
	}
}

// A PFC pause storm long enough to trip the watchdog still satisfies the
// pairing invariant: storms are a performance pathology, not a protocol
// violation, and the checker must not confuse the two.
func TestObsWatchdogStormCleanPairing(t *testing.T) {
	nw, o := observedNet(13)
	rx := nw.NewHost()
	tx := nw.NewHost()
	p := tx.Connect(rx, 1.25e8, des.Microsecond, nil)
	wd := NewPFCWatchdog(nw.Sim, 100*des.Microsecond)
	wd.Watch(p)
	nw.Sim.At(des.Time(10*des.Microsecond), func() { p.pause() })
	nw.Sim.At(des.Time(15*des.Microsecond), func() { p.pause() }) // idempotent re-pause: absorbed
	nw.Sim.At(des.Time(500*des.Microsecond), func() { p.unpause() })
	nw.Sim.Run()
	if wd.Storms() != 1 {
		t.Fatalf("storms = %d, want 1 (scenario must trip the watchdog)", wd.Storms())
	}
	if got := o.Trace.Count(obs.Pause); got != 1 {
		t.Errorf("trace pauses = %d, want 1 (re-pause is not a transition)", got)
	}
	o.Check.Finish(nw.Sim.Now())
	if err := o.Check.Err(); err != nil {
		t.Errorf("storm run violated invariants: %v", err)
	}
}

// Mark episodes: each threshold excursion gets a unique id stamped at the
// marker, every fresh CE mark carries it on the packet, and the episode
// closes when the queue falls back below the threshold — so a receiver
// (and the CNPs it reflects) can name the exact congestion event behind
// each mark.
func TestObsMarkEpisodeLifecycle(t *testing.T) {
	mem := obs.NewAuditMemorySink(0)
	o := &obs.NetObserver{Audit: obs.NewAuditTrail(mem), Hists: obs.NewHistSet()}
	nw := New(1)
	nw.SetPooling(true)
	nw.SetObserver(o)
	star := NewStar(nw, StarConfig{
		Senders: 3, // 3× incast: the bottleneck queue must build
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
		Mark: func() Marker {
			// A cliff at 3 packets: marking is deterministic above Kmax.
			return &REDMarker{Kmin: 3 * DataMTU, Kmax: 3*DataMTU + 1, Pmax: 1, Rng: nw.Rng}
		},
	})
	var marks []uint64
	var markT []des.Time
	star.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		if pkt.CE {
			marks = append(marks, pkt.MarkEp)
			markT = append(markT, pkt.MarkT)
		}
	})
	burst := func() {
		for _, s := range star.Senders {
			for i := 0; i < 20; i++ {
				pkt := nw.NewPacket()
				pkt.Dst = star.Receiver.ID()
				pkt.Size = DataMTU
				pkt.Kind = Data
				pkt.ECT = true
				s.Send(pkt)
			}
		}
	}
	burst()
	nw.Sim.Run() // queue drains to zero: the episode must close
	burst()
	nw.Sim.Run()

	var opens, closes []obs.Decision
	for _, d := range mem.Decisions() {
		switch d.Type {
		case obs.DecMarkOpen:
			opens = append(opens, d)
		case obs.DecMarkClose:
			closes = append(closes, d)
		}
	}
	if len(opens) != 2 || len(closes) != 2 {
		t.Fatalf("got %d opens, %d closes; want 2 and 2 (one per burst)", len(opens), len(closes))
	}
	if opens[0].Episode == 0 || opens[0].Episode == opens[1].Episode {
		t.Errorf("episode ids not unique: %d, %d", opens[0].Episode, opens[1].Episode)
	}
	for i := range opens {
		if closes[i].Episode != opens[i].Episode {
			t.Errorf("close %d names episode %d, open was %d", i, closes[i].Episode, opens[i].Episode)
		}
		if opens[i].QBytes <= int64(3*DataMTU) {
			t.Errorf("open %d queue depth %d not above the threshold", i, opens[i].QBytes)
		}
	}
	if len(marks) == 0 {
		t.Fatal("no CE-marked packet reached the receiver")
	}
	// Every mark names one of the two episodes, all first-episode marks
	// precede all second-episode marks, and both episodes produced marks.
	firstDone := false
	seen := map[uint64]bool{}
	for i, ep := range marks {
		seen[ep] = true
		switch ep {
		case opens[0].Episode:
			if firstDone {
				t.Errorf("mark %d names episode 1 after episode 2 began", i)
			}
		case opens[1].Episode:
			firstDone = true
		default:
			t.Errorf("mark %d carries unknown episode %d", i, ep)
		}
		if markT[i] == 0 {
			t.Errorf("mark %d carries no mark timestamp", i)
		}
	}
	if !seen[opens[0].Episode] || !seen[opens[1].Episode] {
		t.Errorf("marks covered episodes %v, want both %d and %d", seen, opens[0].Episode, opens[1].Episode)
	}
	if h := o.Hist("ctl.cross_to_mark_s"); h.Count() != 2 {
		t.Errorf("cross_to_mark histogram has %d samples, want 2 (one per episode)", h.Count())
	}

	// Detached: the same run stamps nothing — provenance fields stay zero.
	nw2 := New(1)
	nw2.SetPooling(true)
	star2 := NewStar(nw2, StarConfig{
		Senders: 3,
		Link:    LinkConfig{Bandwidth: 1.25e9, PropDelay: des.Microsecond},
		Mark: func() Marker {
			return &REDMarker{Kmin: 3 * DataMTU, Kmax: 3*DataMTU + 1, Pmax: 1, Rng: nw2.Rng}
		},
	})
	ceSeen := false
	star2.Receiver.Transport = TransportFunc(func(h *Host, pkt *Packet) {
		if pkt.CE {
			ceSeen = true
			if pkt.MarkEp != 0 || pkt.MarkT != 0 {
				t.Errorf("detached run stamped provenance: ep=%d t=%v", pkt.MarkEp, pkt.MarkT)
			}
		}
	})
	for _, s2 := range star2.Senders {
		for i := 0; i < 20; i++ {
			pkt := nw2.NewPacket()
			pkt.Dst = star2.Receiver.ID()
			pkt.Size = DataMTU
			pkt.Kind = Data
			pkt.ECT = true
			s2.Send(pkt)
		}
	}
	nw2.Sim.Run()
	if !ceSeen {
		t.Fatal("detached run produced no CE marks; scenario not comparable")
	}
}
