package netsim

import (
	"ecndelay/internal/des"
)

// Transport is the protocol engine attached to a host: it receives every
// non-PFC packet addressed to the host. DCQCN and TIMELY endpoints
// implement it in their own packages.
type Transport interface {
	Handle(h *Host, pkt *Packet)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(h *Host, pkt *Packet)

// Handle implements Transport.
func (f TransportFunc) Handle(h *Host, pkt *Packet) { f(h, pkt) }

// Host is an end station with a single NIC port.
type Host struct {
	net       *Network
	ctx       *shardCtx
	id        int
	seq       nodeSeq
	port      *Port
	Transport Transport
}

// NewHost creates a host; attach its NIC with Connect.
func (nw *Network) NewHost() *Host {
	h := &Host{net: nw, ctx: &nw.def}
	h.id = nw.addNode(h)
	h.seq.init(h.id)
	return h
}

// Connect wires the host NIC toward peer (normally a switch).
func (h *Host) Connect(peer Node, bandwidth float64, prop des.Duration, m Marker) *Port {
	h.port = h.net.NewPort(h, peer, bandwidth, prop, m)
	return h.port
}

// ID implements Node.
func (h *Host) ID() int { return h.id }

// Net exposes the owning network (protocols need the clock and RNG).
func (h *Host) Net() *Network { return h.net }

// Port returns the NIC port.
func (h *Host) Port() *Port { return h.port }

// Now is the current simulation time on the host's shard (Network.Sim's
// clock in a serial run).
func (h *Host) Now() des.Time { return h.ctx.sim.Now() }

// Sim is the simulator the host's events run on. Protocol engines read the
// clock here but schedule through ScheduleHandler/AtHandler below, so a
// sharded run keeps each host's timers on its own shard with keys that do
// not depend on the partition.
func (h *Host) Sim() *des.Simulator { return h.ctx.sim }

// ScheduleHandler schedules hd.OnEvent(arg) after delay d on the host's
// simulator with a host-minted sequence key: events tie-break identically
// whether the host runs on the serial engine or on any shard.
func (h *Host) ScheduleHandler(d des.Duration, hd des.Handler, arg any) des.EventRef {
	return h.ctx.sim.ScheduleHandlerSeq(d, h.seq.mint(), hd, arg)
}

// AtHandler is ScheduleHandler with an absolute firing time.
func (h *Host) AtHandler(t des.Time, hd des.Handler, arg any) des.EventRef {
	return h.ctx.sim.AtHandlerSeq(t, h.seq.mint(), hd, arg)
}

// AllocPacket draws a zeroed packet from the host's shard-local pool.
// Protocol engines allocate through this instead of Network.NewPacket.
func (h *Host) AllocPacket() *Packet { return h.ctx.newPacket() }

// Receive implements Node: PFC is handled by the NIC itself; everything
// else goes to the transport. The host is the packet's final consumer, so
// once the transport returns the packet is recycled — transports may read
// but must not retain it past the Handle call (see the Packet contract).
func (h *Host) Receive(pkt *Packet) {
	switch pkt.Kind {
	case Pause:
		h.port.pause()
		h.ctx.freePacket(pkt)
		return
	case Resume:
		h.port.unpause()
		h.ctx.freePacket(pkt)
		return
	}
	if h.net.obs != nil {
		h.obsDeliver(pkt)
	}
	if h.Transport != nil {
		h.Transport.Handle(h, pkt)
	}
	h.ctx.freePacket(pkt)
}

// Send stamps and transmits a packet through the NIC.
func (h *Host) Send(pkt *Packet) {
	pkt.ID = h.ctx.nextPacketID()
	pkt.Src = h.id
	pkt.SentAt = h.ctx.sim.Now()
	h.port.Send(pkt)
}

// LineRate reports the NIC bandwidth in bytes/second.
func (h *Host) LineRate() float64 { return h.port.Bandwidth }
