package netsim

import (
	"ecndelay/internal/des"
)

// Transport is the protocol engine attached to a host: it receives every
// non-PFC packet addressed to the host. DCQCN and TIMELY endpoints
// implement it in their own packages.
type Transport interface {
	Handle(h *Host, pkt *Packet)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(h *Host, pkt *Packet)

// Handle implements Transport.
func (f TransportFunc) Handle(h *Host, pkt *Packet) { f(h, pkt) }

// Host is an end station with a single NIC port.
type Host struct {
	net       *Network
	id        int
	port      *Port
	Transport Transport
}

// NewHost creates a host; attach its NIC with Connect.
func (nw *Network) NewHost() *Host {
	h := &Host{net: nw}
	h.id = nw.addNode(h)
	return h
}

// Connect wires the host NIC toward peer (normally a switch).
func (h *Host) Connect(peer Node, bandwidth float64, prop des.Duration, m Marker) *Port {
	h.port = h.net.NewPort(h, peer, bandwidth, prop, m)
	return h.port
}

// ID implements Node.
func (h *Host) ID() int { return h.id }

// Net exposes the owning network (protocols need the clock and RNG).
func (h *Host) Net() *Network { return h.net }

// Port returns the NIC port.
func (h *Host) Port() *Port { return h.port }

// Now is the current simulation time.
func (h *Host) Now() des.Time { return h.net.Sim.Now() }

// Receive implements Node: PFC is handled by the NIC itself; everything
// else goes to the transport. The host is the packet's final consumer, so
// once the transport returns the packet is recycled — transports may read
// but must not retain it past the Handle call (see the Packet contract).
func (h *Host) Receive(pkt *Packet) {
	switch pkt.Kind {
	case Pause:
		h.port.pause()
		h.net.FreePacket(pkt)
		return
	case Resume:
		h.port.unpause()
		h.net.FreePacket(pkt)
		return
	}
	if h.net.obs != nil {
		h.obsDeliver(pkt)
	}
	if h.Transport != nil {
		h.Transport.Handle(h, pkt)
	}
	h.net.FreePacket(pkt)
}

// Send stamps and transmits a packet through the NIC.
func (h *Host) Send(pkt *Packet) {
	pkt.ID = h.net.NextPacketID()
	pkt.Src = h.id
	pkt.SentAt = h.net.Sim.Now()
	h.port.Send(pkt)
}

// LineRate reports the NIC bandwidth in bytes/second.
func (h *Host) LineRate() float64 { return h.port.Bandwidth }
