package netsim

import (
	"ecndelay/internal/des"
)

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	Bandwidth float64 // bytes/s
	PropDelay des.Duration
}

// MarkerFactory builds a fresh Marker per egress queue (markers hold
// per-queue state, so they cannot be shared).
type MarkerFactory func() Marker

// Star is the validation topology of §3.1/§4.1: N senders and one receiver
// hang off a single switch; the switch→receiver port is the bottleneck.
type Star struct {
	Net        *Network
	Senders    []*Host
	Receiver   *Host
	Switch     *Switch
	Bottleneck *Port // the switch's port toward the receiver
}

// StarConfig parameterises NewStar.
type StarConfig struct {
	Senders int
	Link    LinkConfig
	// Mark builds the marking policy for switch egress queues (nil: none).
	Mark MarkerFactory
	// CtrlExtraDelay/CtrlJitterMax apply to feedback packets on the paths
	// back toward the senders, lengthening or jittering the control loop
	// without touching the data path.
	CtrlExtraDelay des.Duration
	CtrlJitterMax  des.Duration
	PFC            PFCConfig
	// SwitchQueueCap bounds every switch egress queue in bytes (0:
	// unbounded, the lossless default). Finite buffers tail-drop — the
	// misconfigured-fabric regime of the fault experiments.
	SwitchQueueCap int
}

// NewStar wires the topology.
func NewStar(nw *Network, cfg StarConfig) *Star {
	s := &Star{Net: nw}
	s.Switch = nw.NewSwitch(cfg.PFC)
	mark := func() Marker {
		if cfg.Mark == nil {
			return nil
		}
		return cfg.Mark()
	}
	for i := 0; i < cfg.Senders; i++ {
		h := nw.NewHost()
		h.Connect(s.Switch, cfg.Link.Bandwidth, cfg.Link.PropDelay, nil)
		idx := s.Switch.AddPort(h, cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		s.Switch.Port(idx).CtrlExtraDelay = cfg.CtrlExtraDelay
		s.Switch.Port(idx).CtrlJitterMax = cfg.CtrlJitterMax
		s.Switch.Port(idx).Queue().SetCapBytes(cfg.SwitchQueueCap)
		s.Switch.SetRoute(h.ID(), idx)
		s.Senders = append(s.Senders, h)
	}
	s.Receiver = nw.NewHost()
	s.Receiver.Connect(s.Switch, cfg.Link.Bandwidth, cfg.Link.PropDelay, nil)
	ri := s.Switch.AddPort(s.Receiver, cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
	s.Switch.Port(ri).Queue().SetCapBytes(cfg.SwitchQueueCap)
	s.Switch.SetRoute(s.Receiver.ID(), ri)
	s.Bottleneck = s.Switch.Port(ri)
	return s
}

// Dumbbell is the Figure 13 topology: senders on SW1, receivers on SW2,
// with the SW1→SW2 link as the bottleneck all traffic crosses.
type Dumbbell struct {
	Net        *Network
	Senders    []*Host
	Receivers  []*Host
	SW1, SW2   *Switch
	Bottleneck *Port // SW1's port toward SW2
	Reverse    *Port // SW2's port toward SW1 (the feedback path)
}

// DumbbellConfig parameterises NewDumbbell.
type DumbbellConfig struct {
	Senders   int
	Receivers int
	Link      LinkConfig // all links identical, as in the paper
	Mark      MarkerFactory
	PFC       PFCConfig
	// CtrlJitterMax jitters feedback packets crossing back through the
	// bottleneck switches.
	CtrlJitterMax des.Duration
	// TrunkBandwidth overrides the inter-switch link speed (bytes/s);
	// zero means Link.Bandwidth. A faster trunk moves the bottleneck to
	// the receiver egress ports, the regime where PFC head-of-line
	// blocking appears.
	TrunkBandwidth float64
	// SwitchQueueCap bounds every switch egress queue in bytes (0:
	// unbounded, the lossless default).
	SwitchQueueCap int
}

// NewDumbbell wires the topology.
func NewDumbbell(nw *Network, cfg DumbbellConfig) *Dumbbell {
	d := &Dumbbell{Net: nw}
	d.SW1 = nw.NewSwitch(cfg.PFC)
	d.SW2 = nw.NewSwitch(cfg.PFC)
	mark := func() Marker {
		if cfg.Mark == nil {
			return nil
		}
		return cfg.Mark()
	}
	for i := 0; i < cfg.Senders; i++ {
		h := nw.NewHost()
		h.Connect(d.SW1, cfg.Link.Bandwidth, cfg.Link.PropDelay, nil)
		idx := d.SW1.AddPort(h, cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		d.SW1.Port(idx).CtrlJitterMax = cfg.CtrlJitterMax
		d.SW1.Port(idx).Queue().SetCapBytes(cfg.SwitchQueueCap)
		d.SW1.SetRoute(h.ID(), idx)
		d.Senders = append(d.Senders, h)
	}
	for i := 0; i < cfg.Receivers; i++ {
		h := nw.NewHost()
		h.Connect(d.SW2, cfg.Link.Bandwidth, cfg.Link.PropDelay, nil)
		idx := d.SW2.AddPort(h, cfg.Link.Bandwidth, cfg.Link.PropDelay, mark())
		d.SW2.Port(idx).Queue().SetCapBytes(cfg.SwitchQueueCap)
		d.SW2.SetRoute(h.ID(), idx)
		d.Receivers = append(d.Receivers, h)
	}
	// Inter-switch trunk, both directions.
	trunkBW := cfg.TrunkBandwidth
	if trunkBW == 0 {
		trunkBW = cfg.Link.Bandwidth
	}
	i12 := d.SW1.AddPort(d.SW2, trunkBW, cfg.Link.PropDelay, mark())
	i21 := d.SW2.AddPort(d.SW1, trunkBW, cfg.Link.PropDelay, mark())
	d.SW2.Port(i21).CtrlJitterMax = cfg.CtrlJitterMax
	d.SW1.Port(i12).Queue().SetCapBytes(cfg.SwitchQueueCap)
	d.SW2.Port(i21).Queue().SetCapBytes(cfg.SwitchQueueCap)
	for _, h := range d.Receivers {
		d.SW1.SetRoute(h.ID(), i12)
	}
	for _, h := range d.Senders {
		d.SW2.SetRoute(h.ID(), i21)
	}
	d.Bottleneck = d.SW1.Port(i12)
	d.Reverse = d.SW2.Port(i21)
	return d
}
