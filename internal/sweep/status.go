package sweep

import (
	"sort"
	"sync"
	"time"
)

// Status is a thread-safe live view of one engine invocation, built for
// the telemetry server's /progress endpoint: pass one in Config.Status,
// hand Snapshot to obs.Server.SetProgress, and concurrent scrapes see
// job states, counts and an ETA without touching the workers. The board
// is observation-only — attaching one changes no scheduling, seeding or
// output.
type Status struct {
	mu      sync.Mutex
	started time.Time
	total   int
	skipped int
	done    int
	failed  int
	retried int
	panics  int
	running map[string]*runningJob
}

type runningJob struct {
	since   time.Time
	attempt int
}

// NewStatus returns an empty board.
func NewStatus() *Status {
	return &Status{running: make(map[string]*runningJob)}
}

func (s *Status) begin(total, skipped int) {
	s.mu.Lock()
	s.started = time.Now()
	s.total = total
	s.skipped = skipped
	s.mu.Unlock()
}

func (s *Status) jobStarted(id string) {
	s.mu.Lock()
	s.running[id] = &runningJob{since: time.Now(), attempt: 1}
	s.mu.Unlock()
}

func (s *Status) jobAttempt(id string, attempt int) {
	s.mu.Lock()
	if j := s.running[id]; j != nil {
		j.attempt = attempt
	}
	s.mu.Unlock()
}

func (s *Status) jobFinished(r Result) {
	s.mu.Lock()
	delete(s.running, r.JobID)
	s.done++
	if r.Err != "" {
		s.failed++
	}
	s.retried += r.Retries
	s.panics += r.Panics
	s.mu.Unlock()
}

// RunningJob is one in-flight job in a snapshot.
type RunningJob struct {
	ID       string  `json:"job"`
	Attempt  int     `json:"attempt"`
	RunningS float64 `json:"running_s"`
}

// StatusSnapshot is the JSON shape /progress serves.
type StatusSnapshot struct {
	Total      int          `json:"total"`
	Skipped    int          `json:"skipped"`
	Done       int          `json:"done"`
	Failed     int          `json:"failed"`
	Retried    int          `json:"retried"`
	Panics     int          `json:"panics"`
	Running    []RunningJob `json:"running"`
	ElapsedS   float64      `json:"elapsed_s"`
	JobsPerSec float64      `json:"jobs_per_sec"`
	// ETAS estimates seconds until the sweep drains at the observed
	// completion rate; 0 until the first job finishes.
	ETAS float64 `json:"eta_s"`
}

// Snapshot captures the board. The running list is sorted by job ID so
// repeated scrapes render stably.
func (s *Status) Snapshot() StatusSnapshot {
	now := time.Now()
	s.mu.Lock()
	snap := StatusSnapshot{
		Total:   s.total,
		Skipped: s.skipped,
		Done:    s.done,
		Failed:  s.failed,
		Retried: s.retried,
		Panics:  s.panics,
	}
	if !s.started.IsZero() {
		snap.ElapsedS = now.Sub(s.started).Seconds()
	}
	for id, j := range s.running {
		snap.Running = append(snap.Running, RunningJob{
			ID:       id,
			Attempt:  j.attempt,
			RunningS: now.Sub(j.since).Seconds(),
		})
	}
	s.mu.Unlock()
	sort.Slice(snap.Running, func(i, j int) bool { return snap.Running[i].ID < snap.Running[j].ID })
	if snap.ElapsedS > 0 && snap.Done > 0 {
		snap.JobsPerSec = float64(snap.Done) / snap.ElapsedS
		remaining := snap.Total - snap.Skipped - snap.Done
		if remaining > 0 {
			snap.ETAS = float64(remaining) / snap.JobsPerSec
		}
	}
	return snap
}
