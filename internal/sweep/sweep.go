// Package sweep is a deterministic parallel job engine for experiment
// grids. Every result in this repository — phase-margin grids, FCT
// sweeps, the exp.Runner tables — is an embarrassingly parallel matrix
// of independent jobs; this package fans such a matrix out over a
// bounded worker pool while keeping the output bit-identical to a
// serial run:
//
//   - each job's seed is derived from the sweep base seed and the job's
//     stable index (DeriveSeed), never from scheduling order;
//   - jobs are fault-isolated: a panic or a hung integration fails that
//     one job with a recorded error instead of killing the sweep, and
//     transient failures can be retried a bounded number of times;
//   - results stream through a Sink; the JSONL sink checkpoints every
//     completed job so an interrupted sweep resumes where it stopped;
//   - progress (done/total, jobs/sec, ETA) is reported live on an
//     io.Writer, normally stderr.
//
// The engine is generic: a Job is any func(seed) -> metrics. The glue
// that turns registered experiments or phase-margin grids into jobs
// lives in the callers (the ecndelay facade and the cmd/ binaries).
package sweep

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work in a sweep. ID must be unique within the
// sweep and stable across runs: it keys checkpoint/resume. Meta is
// copied verbatim into the job's Result row (grid coordinates, model
// names — anything a reader of the JSONL needs to pivot on).
type Job struct {
	ID   string
	Meta map[string]string
	// Run executes the job with the engine-derived seed. Deterministic
	// jobs that pin their own seed (e.g. an explicit -seeds grid axis)
	// may ignore it.
	Run func(seed int64) (map[string]float64, error)
}

// Config tunes one engine invocation. The zero value is usable: all
// CPUs, no timeout, no retries, base seed 0, silent.
type Config struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout fails any single job attempt that runs longer. 0 means
	// no limit. A timed-out attempt's goroutine is abandoned (Go
	// cannot kill it); its eventual result is discarded.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failure.
	Retries int
	// BaseSeed is mixed with each job's index by DeriveSeed.
	BaseSeed int64
	// Progress, when non-nil, receives live done/total, jobs/sec and
	// ETA lines (normally os.Stderr) plus a final summary line.
	Progress io.Writer
	// ProgressEvery is the reporting period; <= 0 means 2s.
	ProgressEvery time.Duration
	// Status, when non-nil, is kept current with live job states for the
	// telemetry server's /progress endpoint. Purely observational: it
	// changes no scheduling, seeding or output.
	Status *Status
	// FailFast stops dispatching new jobs after the first job whose
	// retries are exhausted. In-flight jobs drain normally and their
	// rows are still delivered to the sink, so a poisoned grid keeps
	// every completed checkpoint row instead of burning the full budget.
	FailFast bool
	// Stop, when non-nil, is polled before each job dispatch; returning
	// true cancels dispatch of not-yet-started jobs (in-flight jobs
	// drain and are still checkpointed). It is called from the
	// dispatcher goroutine and must be safe for concurrent use — the
	// fleet worker uses it to abandon a shard whose lease was
	// reassigned.
	Stop func() bool
}

// Result is the outcome of one job. Its JSON encoding is deterministic
// (fixed field order, map keys sorted by encoding/json), so sorting a
// sweep's JSONL rows by job ID yields byte-identical output regardless
// of worker count. Wall-clock timing is deliberately excluded for the
// same reason.
type Result struct {
	JobID    string             `json:"job"`
	Index    int                `json:"index"`
	Seed     int64              `json:"seed"`
	Meta     map[string]string  `json:"meta,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Err      string             `json:"err,omitempty"`
	Attempts int                `json:"attempts"`
	// Retries is Attempts-1 — the attempts this job needed beyond its
	// first. Panics counts the attempts that ended in a recovered panic
	// (a subset of the failures). Both are zero on the happy path and
	// omitted from the JSONL so fault-free checkpoints are unchanged.
	Retries int `json:"retries,omitempty"`
	Panics  int `json:"panics,omitempty"`
}

// Summary aggregates one engine invocation.
type Summary struct {
	Total     int // jobs passed in
	Executed  int // jobs actually run (not resumed away)
	Skipped   int // jobs the sink reported already completed
	Failed    int // executed jobs whose final attempt errored
	Retried   int // attempts beyond the first, summed over executed jobs
	Panics    int // attempts that ended in a recovered panic
	Cancelled int // jobs never dispatched (FailFast, Stop, or a sink error)
	Elapsed   time.Duration
}

// DeriveSeed maps (baseSeed, job index) to a well-mixed per-job seed
// using the splitmix64 finalizer, so neighbouring indices get
// statistically independent seeds and a parallel sweep seeds each job
// identically to a serial one.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes jobs over a bounded worker pool and streams results into
// sink (nil discards them). Jobs whose ID the sink reports completed
// are skipped. Results are delivered to the sink from a single
// goroutine, so sinks need no internal locking for engine use. A sink
// write error aborts dispatch of not-yet-started jobs and is returned
// after in-flight jobs drain.
func Run(cfg Config, jobs []Job, sink Sink) (Summary, error) {
	indices := make([]int, len(jobs))
	for i := range jobs {
		indices[i] = i
	}
	return RunIndexed(cfg, jobs, indices, sink)
}

// RunIndexed executes only the jobs at the given global indices — the
// shard-addressable form of Run. Seeds and Result.Index are derived
// from each job's position in the full jobs slice, never from its
// position in indices, so a shard of a grid produces rows byte-identical
// to the same jobs run as part of the whole: the property the fleet
// coordinator relies on to re-queue a dead worker's shard anywhere.
func RunIndexed(cfg Config, jobs []Job, indices []int, sink Sink) (Summary, error) {
	start := time.Now()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	seen := make(map[string]struct{}, len(jobs))
	for i, j := range jobs {
		if j.ID == "" {
			return Summary{}, fmt.Errorf("sweep: job %d has empty ID", i)
		}
		if j.Run == nil {
			return Summary{}, fmt.Errorf("sweep: job %q has nil Run", j.ID)
		}
		if _, dup := seen[j.ID]; dup {
			return Summary{}, fmt.Errorf("sweep: duplicate job ID %q", j.ID)
		}
		seen[j.ID] = struct{}{}
	}
	seenIdx := make(map[int]struct{}, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(jobs) {
			return Summary{}, fmt.Errorf("sweep: job index %d out of range [0,%d)", i, len(jobs))
		}
		if _, dup := seenIdx[i]; dup {
			return Summary{}, fmt.Errorf("sweep: duplicate job index %d", i)
		}
		seenIdx[i] = struct{}{}
	}

	var pending []int
	for _, i := range indices {
		if sink != nil && sink.Completed(jobs[i].ID) {
			continue
		}
		pending = append(pending, i)
	}
	sum := Summary{Total: len(indices), Skipped: len(indices) - len(pending)}
	if cfg.Status != nil {
		cfg.Status.begin(sum.Total, sum.Skipped)
	}

	var aborted atomic.Bool
	work := make(chan int)
	results := make(chan Result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if aborted.Load() {
					continue
				}
				if cfg.Status != nil {
					cfg.Status.jobStarted(jobs[i].ID)
				}
				results <- execute(cfg, jobs[i], i)
			}
		}()
	}
	go func() {
		for _, i := range pending {
			if aborted.Load() || (cfg.Stop != nil && cfg.Stop()) {
				break
			}
			work <- i
		}
		close(work)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	prog := newProgress(cfg.Progress, cfg.ProgressEvery, sum.Total, sum.Skipped)
	var sinkErr error
	for r := range results {
		sum.Executed++
		if r.Err != "" {
			sum.Failed++
			if cfg.FailFast {
				aborted.Store(true)
			}
		}
		sum.Retried += r.Retries
		sum.Panics += r.Panics
		if cfg.Status != nil {
			cfg.Status.jobFinished(r)
		}
		prog.observe(r.Err != "")
		if sink != nil && sinkErr == nil {
			if err := sink.Write(r); err != nil {
				sinkErr = fmt.Errorf("sweep: sink write for job %q: %w", r.JobID, err)
				aborted.Store(true)
			}
		}
	}
	sum.Cancelled = sum.Total - sum.Skipped - sum.Executed
	sum.Elapsed = time.Since(start)
	prog.finish(sum)
	return sum, sinkErr
}

// execute runs one job to its final outcome: up to 1+Retries attempts,
// each panic-recovered and bounded by cfg.Timeout.
func execute(cfg Config, job Job, index int) Result {
	res := Result{
		JobID: job.ID,
		Index: index,
		Seed:  DeriveSeed(cfg.BaseSeed, index),
		Meta:  job.Meta,
	}
	var lastErr error
	for attempt := 1; attempt <= cfg.Retries+1; attempt++ {
		res.Attempts = attempt
		res.Retries = attempt - 1
		if cfg.Status != nil && attempt > 1 {
			cfg.Status.jobAttempt(job.ID, attempt)
		}
		m, err := runAttempt(job, res.Seed, cfg.Timeout)
		if err == nil {
			res.Metrics = m
			return res
		}
		var pe *panicError
		if errors.As(err, &pe) {
			res.Panics++
		}
		lastErr = err
	}
	res.Err = lastErr.Error()
	return res
}

// panicError marks an attempt that died in a recovered panic, so the
// engine can count panics separately from ordinary job errors.
type panicError struct{ err error }

func (p *panicError) Error() string { return p.err.Error() }
func (p *panicError) Unwrap() error { return p.err }

// errTimeout marks an attempt that outran cfg.Timeout.
var errTimeout = errors.New("sweep: job timed out")

// runAttempt executes one attempt in its own goroutine so a panic is
// confined to the job and a timeout can abandon it.
func runAttempt(job Job, seed int64, timeout time.Duration) (map[string]float64, error) {
	type outcome struct {
		m   map[string]float64
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &panicError{fmt.Errorf("sweep: job %q panicked: %v", job.ID, r)}}
			}
		}()
		m, err := job.Run(seed)
		ch <- outcome{m: m, err: err}
	}()
	if timeout <= 0 {
		o := <-ch
		return o.m, o.err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.m, o.err
	case <-t.C:
		return nil, fmt.Errorf("%w after %v", errTimeout, timeout)
	}
}
