package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// unmarshalRow decodes one JSONL row strictly.
func unmarshalRow(line []byte, r *Result) error { return json.Unmarshal(line, r) }

// syncBuffer is a goroutine-safe bytes.Buffer for capturing progress.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMarshalResultsSortsByJobID(t *testing.T) {
	rs := []Result{
		{JobID: "b", Index: 1, Attempts: 1},
		{JobID: "a", Index: 0, Attempts: 1, Metrics: map[string]float64{"z": 1, "a": 2}},
	}
	b, err := MarshalResults(rs)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"job":"a"`) {
		t.Fatalf("rows not sorted by job ID:\n%s", b)
	}
	// Metric keys are emitted sorted, so encoding is deterministic.
	if i, j := strings.Index(lines[0], `"a":2`), strings.Index(lines[0], `"z":1`); i < 0 || j < 0 || i > j {
		t.Errorf("metric keys not sorted: %s", lines[0])
	}
}

func TestMemorySinkOrdersByIndex(t *testing.T) {
	s := &MemorySink{}
	for _, i := range []int{3, 0, 2, 1} {
		if err := s.Write(Result{JobID: "x", Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	for want, r := range s.Results() {
		if r.Index != want {
			t.Fatalf("results not sorted by index: %+v", s.Results())
		}
	}
}

// TestJSONLSinkCrashConsistency simulates a kill mid-write: the final
// checkpoint row is truncated at every byte offset, and resume must
// (a) recover exactly the rows whose lines survived intact, (b) leave
// at most one torn line in the healed file, and (c) append fresh rows
// cleanly after the tear — the contract sink.go promises.
func TestJSONLSinkCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	s, err := OpenJSONL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r := Result{
			JobID:    fmt.Sprintf("job%d", i),
			Index:    i,
			Seed:     int64(1000 + i),
			Meta:     map[string]string{"cell": fmt.Sprint(i)},
			Metrics:  map[string]float64{"v": float64(i) * 1.5},
			Attempts: 1,
		}
		if err := s.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := bytes.LastIndexByte(bytes.TrimRight(full, "\n"), '\n') + 1

	for off := lastStart; off <= len(full); off++ {
		p := filepath.Join(dir, fmt.Sprintf("trunc%d.jsonl", off))
		if err := os.WriteFile(p, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		// Is the surviving fragment of the final row a complete line?
		frag := bytes.TrimSpace(full[lastStart:off])
		var fragRow Result
		lastIntact := len(frag) > 0 && unmarshalRow(frag, &fragRow) == nil
		wantDone := 2
		if lastIntact {
			wantDone = 3
		}

		sink, err := OpenJSONL(p, true)
		if err != nil {
			t.Fatalf("offset %d: resume failed: %v", off, err)
		}
		if got := sink.Resumed(); got != wantDone {
			t.Fatalf("offset %d: resumed %d jobs, want %d", off, got, wantDone)
		}
		if err := sink.Write(Result{JobID: "fresh", Index: 3, Attempts: 1}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}

		healed, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		torn, parsed := 0, 0
		for _, line := range bytes.Split(healed, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var r Result
			if unmarshalRow(line, &r) != nil {
				torn++
			} else {
				parsed++
			}
		}
		if torn > 1 {
			t.Fatalf("offset %d: %d torn lines after resume, want at most 1", off, torn)
		}
		if parsed != wantDone+1 {
			t.Fatalf("offset %d: %d parsed rows after append, want %d", off, parsed, wantDone+1)
		}
		// A second resume sees every intact job, including the fresh one.
		again, err := OpenJSONL(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Completed("fresh") || again.Resumed() != wantDone+1 {
			t.Fatalf("offset %d: second resume lost rows (resumed %d)", off, again.Resumed())
		}
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadResultsKeepsLastRowPerJob(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rows.jsonl")
	body := `{"job":"a","index":0,"seed":1,"err":"first try failed","attempts":1}
{"job":"b","index":1,"seed":2,"attempts":1}
{"job":"a","index":0,"seed":1,"attempts":2}
{"job":"torn","index":9,"se`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	if rows[0].JobID != "a" || rows[0].Err != "" || rows[0].Attempts != 2 {
		t.Errorf("row a not the last-written version: %+v", rows[0])
	}
	if rows[1].JobID != "b" {
		t.Errorf("unexpected second row: %+v", rows[1])
	}
	if none, err := ReadResults(filepath.Join(dir, "missing.jsonl")); err != nil || none != nil {
		t.Errorf("missing file should yield no rows, nil error (got %v, %v)", none, err)
	}
}

func TestSinkFuncAdapts(t *testing.T) {
	var got []Result
	sink := SinkFunc(func(r Result) error { got = append(got, r); return nil })
	if sink.Completed("anything") {
		t.Error("SinkFunc should never report completion")
	}
	if err := sink.Write(Result{JobID: "x"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].JobID != "x" {
		t.Errorf("write not delivered: %+v", got)
	}
}
