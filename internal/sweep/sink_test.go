package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// unmarshalRow decodes one JSONL row strictly.
func unmarshalRow(line []byte, r *Result) error { return json.Unmarshal(line, r) }

// syncBuffer is a goroutine-safe bytes.Buffer for capturing progress.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMarshalResultsSortsByJobID(t *testing.T) {
	rs := []Result{
		{JobID: "b", Index: 1, Attempts: 1},
		{JobID: "a", Index: 0, Attempts: 1, Metrics: map[string]float64{"z": 1, "a": 2}},
	}
	b, err := MarshalResults(rs)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"job":"a"`) {
		t.Fatalf("rows not sorted by job ID:\n%s", b)
	}
	// Metric keys are emitted sorted, so encoding is deterministic.
	if i, j := strings.Index(lines[0], `"a":2`), strings.Index(lines[0], `"z":1`); i < 0 || j < 0 || i > j {
		t.Errorf("metric keys not sorted: %s", lines[0])
	}
}

func TestMemorySinkOrdersByIndex(t *testing.T) {
	s := &MemorySink{}
	for _, i := range []int{3, 0, 2, 1} {
		if err := s.Write(Result{JobID: "x", Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	for want, r := range s.Results() {
		if r.Index != want {
			t.Fatalf("results not sorted by index: %+v", s.Results())
		}
	}
}
