package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress reports live sweep throughput on a writer. The engine's
// collector goroutine calls observe; a ticker goroutine prints.
type progress struct {
	w     io.Writer
	total int

	mu      sync.Mutex
	done    int // includes skipped
	failed  int
	started time.Time

	stop chan struct{}
	wg   sync.WaitGroup
}

func newProgress(w io.Writer, every time.Duration, total, skipped int) *progress {
	p := &progress{w: w, total: total, done: skipped, started: time.Now(), stop: make(chan struct{})}
	if w == nil {
		return p
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.print()
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

func (p *progress) observe(failed bool) {
	p.mu.Lock()
	p.done++
	if failed {
		p.failed++
	}
	p.mu.Unlock()
}

func (p *progress) print() {
	p.mu.Lock()
	done, failed := p.done, p.failed
	elapsed := time.Since(p.started)
	p.mu.Unlock()
	rate := float64(done) / elapsed.Seconds()
	eta := "?"
	if rate > 0 {
		eta = (time.Duration(float64(p.total-done)/rate*1e9) * time.Nanosecond).Round(time.Second).String()
	}
	fmt.Fprintf(p.w, "sweep: %d/%d done (%d failed) %.1f jobs/s ETA %s\n",
		done, p.total, failed, rate, eta)
}

// finish stops the ticker and prints the summary line.
func (p *progress) finish(sum Summary) {
	close(p.stop)
	p.wg.Wait()
	if p.w == nil {
		return
	}
	rate := 0.0
	if sum.Elapsed > 0 {
		rate = float64(sum.Executed) / sum.Elapsed.Seconds()
	}
	cancelled := ""
	if sum.Cancelled > 0 {
		cancelled = fmt.Sprintf(", %d cancelled", sum.Cancelled)
	}
	fmt.Fprintf(p.w, "sweep: %d jobs: %d run, %d skipped, %d failed, %d retried, %d panicked%s in %s (%.1f jobs/s)\n",
		sum.Total, sum.Executed, sum.Skipped, sum.Failed, sum.Retried, sum.Panics, cancelled,
		sum.Elapsed.Round(time.Millisecond), rate)
}
