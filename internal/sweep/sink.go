package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Sink receives completed job results. The engine calls Write from a
// single goroutine; Completed is called once per job before dispatch.
type Sink interface {
	// Completed reports whether a job already has a checkpointed
	// success, in which case the engine skips it.
	Completed(id string) bool
	// Write records one result.
	Write(r Result) error
}

// JSONLSink checkpoints results as one JSON object per line. Each row
// is written with a single syscall, so a killed sweep leaves at most
// one torn trailing line, which resume tolerates. On resume, rows with
// an empty err field mark their job as completed; failed jobs run
// again (their old rows remain — readers should keep the last row per
// job ID).
type JSONLSink struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]struct{}
}

// OpenJSONL opens (resume=true) or truncates (resume=false) the sweep
// checkpoint file at path.
func OpenJSONL(path string, resume bool) (*JSONLSink, error) {
	s := &JSONLSink{done: make(map[string]struct{})}
	if resume {
		b, err := os.ReadFile(path)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("sweep: reading checkpoint %s: %w", path, err)
		}
		for _, line := range bytes.Split(b, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var r Result
			// A torn final line from a killed run fails to parse;
			// its job simply runs again.
			if json.Unmarshal(line, &r) != nil {
				continue
			}
			if r.JobID != "" && r.Err == "" {
				s.done[r.JobID] = struct{}{}
			}
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		// Terminate a torn trailing line (kill mid-write) so the next
		// row starts clean.
		if len(b) > 0 && b[len(b)-1] != '\n' {
			if _, err := f.WriteString("\n"); err != nil {
				f.Close()
				return nil, err
			}
		}
		s.f = f
		return s, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s.f = f
	return s, nil
}

// Completed reports whether id has a checkpointed success.
func (s *JSONLSink) Completed(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.done[id]
	return ok
}

// Resumed is the number of completed jobs loaded from the checkpoint.
func (s *JSONLSink) Resumed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Write appends one result row.
func (s *JSONLSink) Write(r Result) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return err
	}
	if r.Err == "" {
		s.done[r.JobID] = struct{}{}
	}
	return nil
}

// Close closes the checkpoint file.
func (s *JSONLSink) Close() error { return s.f.Close() }

// SinkFunc adapts a function to the Sink interface for streaming
// consumers that track completion elsewhere (the fleet worker streams
// rows to its coordinator this way). Completed always reports false.
type SinkFunc func(Result) error

// Completed always reports false: function sinks do not resume.
func (f SinkFunc) Completed(string) bool { return false }

// Write records one result.
func (f SinkFunc) Write(r Result) error { return f(r) }

// ReadResults parses a JSONL checkpoint or spool file, returning the
// last row per job ID in first-seen job order. Blank and torn lines
// (a kill mid-write leaves at most one) are skipped, mirroring
// OpenJSONL's resume tolerance. A missing file yields no rows.
func ReadResults(path string) ([]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("sweep: reading checkpoint %s: %w", path, err)
	}
	byID := make(map[string]int)
	var out []Result
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Result
		if json.Unmarshal(line, &r) != nil || r.JobID == "" {
			continue
		}
		if i, ok := byID[r.JobID]; ok {
			out[i] = r
			continue
		}
		byID[r.JobID] = len(out)
		out = append(out, r)
	}
	return out, nil
}

// MemorySink collects results in memory for callers that post-process
// a sweep in-process (the cmd front-ends, tests).
type MemorySink struct {
	mu      sync.Mutex
	results []Result
}

// Completed always reports false: memory sinks do not resume.
func (s *MemorySink) Completed(string) bool { return false }

// Write records one result.
func (s *MemorySink) Write(r Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, r)
	return nil
}

// Results returns the collected results sorted by job index, i.e. in
// the order the jobs were submitted.
func (s *MemorySink) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Result(nil), s.results...)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// MarshalResults renders results as sorted JSONL (by job ID): the
// canonical byte-comparable form of a sweep's output.
func MarshalResults(rs []Result) ([]byte, error) {
	sorted := append([]Result(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].JobID < sorted[j].JobID })
	var buf bytes.Buffer
	for _, r := range sorted {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
