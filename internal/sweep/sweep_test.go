package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// syntheticJobs builds n deterministic jobs whose metrics depend only
// on the engine-derived seed and the job's own coordinates.
func syntheticJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID:   fmt.Sprintf("job%03d", i),
			Meta: map[string]string{"i": fmt.Sprint(i)},
			Run: func(seed int64) (map[string]float64, error) {
				return map[string]float64{
					"seed_low": float64(seed & 0xffff),
					"square":   float64(i * i),
				}, nil
			},
		}
	}
	return jobs
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not stable")
	}
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide on seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Error("base seed does not influence derived seed")
	}
}

// A sweep's sorted JSONL must be byte-identical for 1 and N workers.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := syntheticJobs(24)
	run := func(workers int) []byte {
		sink := &MemorySink{}
		sum, err := Run(Config{Workers: workers, BaseSeed: 7}, jobs, sink)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Executed != len(jobs) || sum.Failed != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		b, err := MarshalResults(sink.Results())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		if par := run(w); !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d output differs from serial:\n%s\nvs\n%s", w, par, serial)
		}
	}
}

// One panicking job fails alone; every other job completes.
func TestPanicIsolation(t *testing.T) {
	jobs := syntheticJobs(10)
	jobs[3].Run = func(int64) (map[string]float64, error) {
		panic("diverged ODE")
	}
	sink := &MemorySink{}
	sum, err := Run(Config{Workers: 4}, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 || sum.Executed != 10 {
		t.Fatalf("summary %+v, want 1 failed of 10", sum)
	}
	for _, r := range sink.Results() {
		if r.Index == 3 {
			if !strings.Contains(r.Err, "panicked") || !strings.Contains(r.Err, "diverged ODE") {
				t.Errorf("panic job error = %q", r.Err)
			}
		} else if r.Err != "" {
			t.Errorf("job %s unexpectedly failed: %s", r.JobID, r.Err)
		}
	}
}

func TestTimeout(t *testing.T) {
	jobs := syntheticJobs(4)
	jobs[1].Run = func(int64) (map[string]float64, error) {
		time.Sleep(time.Second)
		return nil, nil
	}
	sink := &MemorySink{}
	sum, err := Run(Config{Workers: 2, Timeout: 20 * time.Millisecond}, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("summary %+v, want exactly the slow job failed", sum)
	}
	for _, r := range sink.Results() {
		if r.Index == 1 && !strings.Contains(r.Err, "timed out") {
			t.Errorf("slow job error = %q, want timeout", r.Err)
		}
	}
}

func TestRetryTransientFailure(t *testing.T) {
	var calls atomic.Int64
	jobs := []Job{{
		ID: "flaky",
		Run: func(int64) (map[string]float64, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("transient")
			}
			return map[string]float64{"ok": 1}, nil
		},
	}}
	sink := &MemorySink{}
	sum, err := Run(Config{Retries: 1}, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("summary %+v, want retry to succeed", sum)
	}
	r := sink.Results()[0]
	if r.Attempts != 2 || r.Metrics["ok"] != 1 {
		t.Errorf("result %+v, want 2 attempts and metrics", r)
	}
	// Without retries the same job stays failed.
	calls.Store(0)
	sum, err = Run(Config{}, jobs, &MemorySink{})
	if err != nil || sum.Failed != 1 {
		t.Fatalf("no-retry run: %+v, %v", sum, err)
	}
}

// Retry and panic counts must surface per job and in the summary: a job
// that panics once then succeeds reports one retry and one panic, and a
// job that panics every attempt reports them all.
func TestRetryAndPanicCounts(t *testing.T) {
	var calls atomic.Int64
	jobs := []Job{
		{ID: "clean", Run: func(int64) (map[string]float64, error) {
			return map[string]float64{"ok": 1}, nil
		}},
		{ID: "flaky", Run: func(int64) (map[string]float64, error) {
			if calls.Add(1) == 1 {
				panic("transient blow-up")
			}
			return map[string]float64{"ok": 1}, nil
		}},
		{ID: "doomed", Run: func(int64) (map[string]float64, error) {
			panic("always")
		}},
	}
	sink := &MemorySink{}
	sum, err := Run(Config{Workers: 1, Retries: 2}, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("summary %+v, want only the doomed job failed", sum)
	}
	// flaky: 1 retry, 1 panic; doomed: 3 attempts = 2 retries, 3 panics.
	if sum.Retried != 3 || sum.Panics != 4 {
		t.Errorf("summary retried=%d panics=%d, want 3 and 4", sum.Retried, sum.Panics)
	}
	byID := map[string]Result{}
	for _, r := range sink.Results() {
		byID[r.JobID] = r
	}
	if r := byID["clean"]; r.Retries != 0 || r.Panics != 0 {
		t.Errorf("clean job counted faults: %+v", r)
	}
	if r := byID["flaky"]; r.Retries != 1 || r.Panics != 1 || r.Err != "" {
		t.Errorf("flaky job %+v, want 1 retry, 1 panic, success", r)
	}
	if r := byID["doomed"]; r.Retries != 2 || r.Panics != 3 || r.Err == "" {
		t.Errorf("doomed job %+v, want 2 retries, 3 panics, failure", r)
	}

	// The counters ride the JSONL checkpoint records.
	b, err := MarshalResults(sink.Results())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"retries":2`) || !strings.Contains(string(b), `"panics":3`) {
		t.Errorf("JSONL missing fault counters:\n%s", b)
	}
	if strings.Contains(string(b), `"job":"clean","index":0,"seed"`) &&
		strings.Contains(string(b), `"clean"`) && strings.Contains(string(b), `"retries":0`) {
		t.Error("zero counters should be omitted from JSONL rows")
	}
}

func TestDuplicateAndInvalidJobsRejected(t *testing.T) {
	ok := func(int64) (map[string]float64, error) { return nil, nil }
	for _, jobs := range [][]Job{
		{{ID: "a", Run: ok}, {ID: "a", Run: ok}},
		{{ID: "", Run: ok}},
		{{ID: "a"}},
	} {
		if _, err := Run(Config{}, jobs, nil); err == nil {
			t.Errorf("jobs %+v accepted", jobs)
		}
	}
}

// Killing a sweep mid-run and reopening with resume executes only the
// remaining jobs and ends with every job checkpointed exactly once.
func TestJSONLResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jobs := syntheticJobs(16)

	// First run: only the first 7 jobs complete (simulating a kill by
	// truncating the job list), plus a torn trailing line.
	sink, err := OpenJSONL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Workers: 2, BaseSeed: 9}, jobs[:7], sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":"job009","ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume over the full grid: the 7 checkpointed jobs are skipped,
	// the torn line is ignored, the rest execute.
	var executed atomic.Int64
	resumed := make([]Job, len(jobs))
	copy(resumed, jobs)
	for i := range resumed {
		inner := resumed[i].Run
		resumed[i].Run = func(seed int64) (map[string]float64, error) {
			executed.Add(1)
			return inner(seed)
		}
	}
	sink2, err := OpenJSONL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink2.Resumed(); got != 7 {
		t.Fatalf("resumed %d jobs, want 7", got)
	}
	sum, err := Run(Config{Workers: 3, BaseSeed: 9}, resumed, sink2)
	if err != nil {
		t.Fatal(err)
	}
	sink2.Close()
	if sum.Skipped != 7 || sum.Executed != 9 || executed.Load() != 9 {
		t.Fatalf("summary %+v (executed %d), want 7 skipped / 9 run", sum, executed.Load())
	}

	// The final file holds one valid row per job with the same seeds a
	// fresh serial run derives.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]int{}
	torn := 0
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Result
		if err := unmarshalRow(line, &r); err != nil {
			torn++
			continue
		}
		rows[r.JobID]++
		if want := DeriveSeed(9, r.Index); r.Seed != want {
			t.Errorf("job %s seed %d, want %d", r.JobID, r.Seed, want)
		}
	}
	if torn != 1 {
		t.Errorf("checkpoint has %d unparsable lines, want the 1 torn one", torn)
	}
	if len(rows) != 16 {
		t.Fatalf("checkpoint has %d unique jobs, want 16", len(rows))
	}
	for id, n := range rows {
		if n != 1 {
			t.Errorf("job %s appears %d times", id, n)
		}
	}
}

// Failed rows do not count as completed: a resume re-runs them.
func TestResumeRetriesFailedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	fail := true
	jobs := []Job{{ID: "only", Run: func(int64) (map[string]float64, error) {
		if fail {
			return nil, fmt.Errorf("boom")
		}
		return map[string]float64{"v": 1}, nil
	}}}
	sink, _ := OpenJSONL(path, false)
	sum, err := Run(Config{}, jobs, sink)
	sink.Close()
	if err != nil || sum.Failed != 1 {
		t.Fatalf("first run: %+v, %v", sum, err)
	}
	fail = false
	sink2, err := OpenJSONL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if sink2.Completed("only") {
		t.Fatal("failed job marked completed on resume")
	}
	sum, err = Run(Config{}, jobs, sink2)
	sink2.Close()
	if err != nil || sum.Executed != 1 || sum.Failed != 0 {
		t.Fatalf("resume run: %+v, %v", sum, err)
	}
}

func TestProgressOutput(t *testing.T) {
	var buf syncBuffer
	jobs := syntheticJobs(30)
	if _, err := Run(Config{Workers: 4, Progress: &buf, ProgressEvery: time.Millisecond}, jobs, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "30 jobs: 30 run, 0 skipped, 0 failed") {
		t.Errorf("missing summary line in progress output:\n%s", out)
	}
}

func TestRunIndexedShardsMatchFullRun(t *testing.T) {
	jobs := syntheticJobs(12)
	cfg := Config{Workers: 1, BaseSeed: 99}

	full := &MemorySink{}
	if _, err := Run(cfg, jobs, full); err != nil {
		t.Fatal(err)
	}

	// The same grid split into three shards, executed in scrambled
	// order, must reproduce the full run byte-for-byte: seeds and
	// Result.Index come from the global index, not shard position.
	sharded := &MemorySink{}
	for _, shard := range [][]int{{8, 9, 10, 11}, {0, 1, 2, 3}, {4, 5, 6, 7}} {
		sum, err := RunIndexed(cfg, jobs, shard, sharded)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Total != len(shard) || sum.Executed != len(shard) {
			t.Fatalf("shard summary %+v, want %d executed", sum, len(shard))
		}
	}
	want, err := MarshalResults(full.Results())
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarshalResults(sharded.Results())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("sharded rows diverge from full run:\nfull:\n%s\nsharded:\n%s", want, got)
	}
}

func TestRunIndexedRejectsBadIndices(t *testing.T) {
	jobs := syntheticJobs(3)
	if _, err := RunIndexed(Config{}, jobs, []int{0, 3}, nil); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := RunIndexed(Config{}, jobs, []int{1, 1}, nil); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestStopCancelsDispatch(t *testing.T) {
	jobs := syntheticJobs(20)
	var ran atomic.Int64
	for i := range jobs {
		inner := jobs[i].Run
		jobs[i].Run = func(seed int64) (map[string]float64, error) {
			ran.Add(1)
			return inner(seed)
		}
	}
	stopAfter := int64(3)
	cfg := Config{Workers: 1, Stop: func() bool { return ran.Load() >= stopAfter }}
	sink := &MemorySink{}
	sum, err := Run(cfg, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cancelled == 0 {
		t.Errorf("Stop cancelled nothing: %+v", sum)
	}
	if sum.Executed+sum.Cancelled != sum.Total {
		t.Errorf("executed %d + cancelled %d != total %d", sum.Executed, sum.Cancelled, sum.Total)
	}
}

func TestFailFastStopsDispatchKeepsCompletedRows(t *testing.T) {
	const n = 50
	jobs := syntheticJobs(n)
	jobs[0].Run = func(int64) (map[string]float64, error) {
		return nil, fmt.Errorf("poisoned cell")
	}
	sink := &MemorySink{}
	sum, err := Run(Config{Workers: 1, FailFast: true}, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1: %+v", sum.Failed, sum)
	}
	// The failure lands on the first result; at most a job or two can
	// already be in flight per worker before dispatch stops.
	if sum.Executed > 5 {
		t.Errorf("fail-fast kept dispatching: %d jobs executed", sum.Executed)
	}
	if sum.Cancelled < n-5 {
		t.Errorf("cancelled only %d of %d jobs", sum.Cancelled, n)
	}
	// Every executed job — including the failure — is checkpointed.
	if got := len(sink.Results()); got != sum.Executed {
		t.Errorf("sink holds %d rows, summary says %d executed", got, sum.Executed)
	}
}

func TestFailFastOffRunsWholeGrid(t *testing.T) {
	const n = 10
	jobs := syntheticJobs(n)
	jobs[0].Run = func(int64) (map[string]float64, error) {
		return nil, fmt.Errorf("poisoned cell")
	}
	sum, err := Run(Config{Workers: 1}, jobs, &MemorySink{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != n || sum.Cancelled != 0 {
		t.Errorf("without FailFast the grid should drain fully: %+v", sum)
	}
}
