package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenSweepJSONL throws arbitrary bytes at the checkpoint parser.
// Contract: OpenJSONL(path, resume=true) returns a usable sink or an
// error — it never panics, whatever a crashed or corrupted run left in
// the file — and the reopened sink still accepts new rows.
//
// Run the seed corpus with go test; explore with:
//
//	go test ./internal/sweep -fuzz FuzzOpenSweepJSONL -fuzztime 30s
func FuzzOpenSweepJSONL(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"job":"a","index":0,"seed":1,"metrics":{"x":1}}` + "\n"))
	f.Add([]byte(`{"job":"a","err":"boom"}` + "\n"))
	// Torn trailing line from a killed run.
	f.Add([]byte(`{"job":"a","index":0}` + "\n" + `{"job":"b","ind`))
	// Not JSON at all.
	f.Add([]byte("PK\x03\x04 this is a zip, not a checkpoint"))
	// JSON of the wrong shape.
	f.Add([]byte(`[1,2,3]` + "\n" + `"just a string"` + "\n" + `{"job":17}`))
	// Huge numbers, null fields, duplicate keys.
	f.Add([]byte(`{"job":"x","index":1e309,"metrics":null,"job":"y"}`))
	// Valid row among garbage: its job must count as completed.
	f.Add([]byte("garbage\n" + `{"job":"ok","index":2,"seed":3,"metrics":{}}` + "\n" + "\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ckpt.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenJSONL(path, true)
		if err != nil {
			return // rejecting the file is fine; panicking is not
		}
		if s.Resumed() < 0 {
			t.Error("negative resumed count")
		}
		s.Completed("ok")
		// The sink must still function: append a row and close.
		if err := s.Write(Result{JobID: "post-fuzz", Index: 99}); err != nil {
			t.Errorf("Write after resume failed: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("Close failed: %v", err)
		}
		// Reopening must see the appended success, whatever preceded it.
		s2, err := OpenJSONL(path, true)
		if err != nil {
			t.Fatalf("reopen failed: %v", err)
		}
		if !s2.Completed("post-fuzz") {
			t.Error("appended row lost on reopen")
		}
		s2.Close()
	})
}
