package sweep

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestStatusTracksSweep scrapes the status board concurrently with a
// running sweep (data-race coverage under -race) and checks the final
// tallies against the engine summary.
func TestStatusTracksSweep(t *testing.T) {
	var jobs []Job
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("job%02d", i)
		fail := i == 3 // fails once, succeeds on retry
		first := true
		var mu sync.Mutex
		jobs = append(jobs, Job{ID: id, Run: func(seed int64) (map[string]float64, error) {
			mu.Lock()
			defer mu.Unlock()
			if fail && first {
				first = false
				return nil, errors.New("transient")
			}
			return map[string]float64{"v": float64(seed)}, nil
		}})
	}
	st := NewStatus()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			snap := st.Snapshot()
			if snap.Done > snap.Total {
				t.Errorf("done %d > total %d", snap.Done, snap.Total)
				return
			}
			for i := 1; i < len(snap.Running); i++ {
				if snap.Running[i].ID < snap.Running[i-1].ID {
					t.Errorf("running list unsorted: %v", snap.Running)
					return
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	sum, err := Run(Config{Workers: 4, Retries: 1, Status: st}, jobs, nil)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Total != 20 || snap.Done != 20 || snap.Failed != 0 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.Retried != sum.Retried || snap.Panics != sum.Panics {
		t.Errorf("snapshot retries/panics %d/%d, summary %d/%d",
			snap.Retried, snap.Panics, sum.Retried, sum.Panics)
	}
	if len(snap.Running) != 0 {
		t.Errorf("jobs still running after drain: %v", snap.Running)
	}
	if snap.JobsPerSec <= 0 || snap.ETAS != 0 {
		t.Errorf("rate %g, eta %g", snap.JobsPerSec, snap.ETAS)
	}
}

// TestStatusSkippedAndETA pins the resume arithmetic: skipped jobs count
// toward neither done nor the ETA denominator.
func TestStatusSkippedAndETA(t *testing.T) {
	st := NewStatus()
	st.begin(10, 4)
	for i := 0; i < 3; i++ {
		st.jobStarted(fmt.Sprintf("j%d", i))
		st.jobFinished(Result{JobID: fmt.Sprintf("j%d", i)})
	}
	snap := st.Snapshot()
	if snap.Total != 10 || snap.Skipped != 4 || snap.Done != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.ETAS <= 0 {
		t.Errorf("with 3 jobs left, ETA must be positive: %+v", snap)
	}
}
