// Package workload generates the §5.1 traffic: flow sizes drawn from the
// empirical web-search distribution of the DCTCP paper [2] (the same
// distribution used by pFabric [5] and ProjecToR [12]), Poisson flow
// arrivals whose rate sets the bottleneck load factor, and random
// sender/receiver pairing on the Figure 13 dumbbell.
//
// The original production trace is proprietary; the published CDF it was
// condensed to is what the paper itself simulates from, and what this
// package reproduces.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Empirical is a piecewise-linear CDF over values (e.g. flow sizes in
// bytes), sampled by inverse transform.
type Empirical struct {
	x   []float64 // values, strictly increasing
	cdf []float64 // cumulative probability at x, ending at 1
}

// NewEmpirical builds a distribution from (value, cdf) points. The cdf
// column must be non-decreasing, start at 0 and end at 1; values must be
// strictly increasing.
func NewEmpirical(x, cdf []float64) (*Empirical, error) {
	if len(x) != len(cdf) || len(x) < 2 {
		return nil, errors.New("workload: need matching x/cdf with >= 2 points")
	}
	if cdf[0] != 0 || cdf[len(cdf)-1] != 1 {
		return nil, errors.New("workload: cdf must start at 0 and end at 1")
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] || cdf[i] < cdf[i-1] {
			return nil, errors.New("workload: x must increase strictly, cdf monotonically")
		}
	}
	return &Empirical{x: append([]float64(nil), x...), cdf: append([]float64(nil), cdf...)}, nil
}

// Sample draws one value using rng.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cdf, u)
	if i == 0 {
		return e.x[0]
	}
	if i >= len(e.cdf) {
		return e.x[len(e.x)-1]
	}
	lo, hi := e.cdf[i-1], e.cdf[i]
	frac := 0.5
	if hi > lo {
		frac = (u - lo) / (hi - lo)
	}
	return e.x[i-1] + frac*(e.x[i]-e.x[i-1])
}

// Mean is the analytic mean of the piecewise-linear distribution.
func (e *Empirical) Mean() float64 {
	m := 0.0
	for i := 1; i < len(e.x); i++ {
		mass := e.cdf[i] - e.cdf[i-1]
		m += mass * (e.x[i] + e.x[i-1]) / 2
	}
	return m
}

// Quantile returns the value at cumulative probability p in [0,1].
func (e *Empirical) Quantile(p float64) float64 {
	p = math.Max(0, math.Min(1, p))
	i := sort.SearchFloat64s(e.cdf, p)
	if i == 0 {
		return e.x[0]
	}
	if i >= len(e.cdf) {
		return e.x[len(e.x)-1]
	}
	lo, hi := e.cdf[i-1], e.cdf[i]
	frac := 0.5
	if hi > lo {
		frac = (p - lo) / (hi - lo)
	}
	return e.x[i-1] + frac*(e.x[i]-e.x[i-1])
}

// WebSearch returns the DCTCP [2] web-search flow-size distribution in
// bytes (the widely used condensation: heavy-tailed, ~57% of flows under
// the paper's 100 KB "small flow" threshold, mean ≈ 1.1 MB).
func WebSearch() *Empirical {
	e, err := NewEmpirical(
		[]float64{1e3, 6e3, 13e3, 19e3, 33e3, 53e3, 133e3, 667e3, 1.333e6, 3.333e6, 6.667e6, 20e6},
		[]float64{0, 0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 1.0},
	)
	if err != nil {
		panic(err) // static table, cannot fail
	}
	return e
}

// Flow is one generated transfer.
type Flow struct {
	ID     int
	Start  float64 // seconds
	Size   int64   // bytes
	Sender int     // index into the sender set
	Recv   int     // index into the receiver set
}

// Config drives Generate and NewPoissonStream.
type Config struct {
	// Load is the target average offered load on the bottleneck in
	// bytes/second (the paper's load factor 1.0 = 8 Gb/s = 1e9 B/s).
	Load float64
	// Capacity, when positive, is the bottleneck link capacity in
	// bytes/second, and generation refuses a Load above it: an offered load
	// past capacity has no steady state — queues grow without bound and FCT
	// statistics measure the horizon, not the protocol. Zero skips the check
	// (the overload regime is still reachable deliberately, e.g. the golden
	// trajectories drive LoadFactor 1.5 to exercise saturation).
	Capacity float64
	// Sizes is the flow-size distribution.
	Sizes *Empirical
	// Senders and Receivers are the pool sizes to pair from.
	Senders, Receivers int
	// Horizon is the generation window in seconds.
	Horizon float64
	// Seed makes the workload reproducible.
	Seed int64
}

func (cfg Config) validate() error {
	switch {
	case cfg.Load <= 0:
		return errors.New("workload: Load must be positive")
	case cfg.Capacity > 0 && cfg.Load > cfg.Capacity:
		return fmt.Errorf("workload: offered load %.3g B/s exceeds bottleneck capacity %.3g B/s (load factor %.2f); the queue has no steady state — lower Load or raise Capacity",
			cfg.Load, cfg.Capacity, cfg.Load/cfg.Capacity)
	case cfg.Sizes == nil:
		return errors.New("workload: nil size distribution")
	case cfg.Senders <= 0 || cfg.Receivers <= 0:
		return errors.New("workload: need senders and receivers")
	case cfg.Horizon <= 0:
		return errors.New("workload: Horizon must be positive")
	}
	return nil
}

// PoissonStream generates the same Poisson arrival sequence as Generate,
// one flow at a time: million-flow churn experiments pull flows lazily as
// simulated time advances instead of materialising the whole slice, so
// memory stays bounded by the flows in flight, not the flows in the
// horizon. Draw order per flow is identical to Generate's (inter-arrival,
// size, sender, receiver), so draining a stream reproduces Generate
// bit-for-bit from the same rng state.
type PoissonStream struct {
	cfg    Config
	lambda float64 // flows per second
	t      float64
	id     int
}

// NewPoissonStream validates cfg and positions the stream at time zero.
// The caller owns the rng passed to Next; use rand.New(rand.NewSource(
// cfg.Seed)) for the canonical sequence.
func NewPoissonStream(cfg Config) (*PoissonStream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &PoissonStream{cfg: cfg, lambda: cfg.Load / cfg.Sizes.Mean()}, nil
}

// Next draws the next flow, or reports ok=false once the arrival process
// passes the horizon. After the first !ok the stream is exhausted.
func (s *PoissonStream) Next(rng *rand.Rand) (Flow, bool) {
	s.t += rng.ExpFloat64() / s.lambda
	if s.t >= s.cfg.Horizon {
		return Flow{}, false
	}
	f := Flow{
		ID:     s.id,
		Start:  s.t,
		Size:   int64(math.Max(1, s.cfg.Sizes.Sample(rng))),
		Sender: rng.Intn(s.cfg.Senders),
		Recv:   rng.Intn(s.cfg.Receivers),
	}
	s.id++
	return f, true
}

// Generate produces a Poisson flow arrival sequence: exponential
// inter-arrival times with rate Load/mean(Sizes), each flow between a
// uniformly random sender/receiver pair. It is exactly a drained
// PoissonStream.
func Generate(cfg Config) ([]Flow, error) {
	s, err := NewPoissonStream(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var flows []Flow
	for {
		f, ok := s.Next(rng)
		if !ok {
			return flows, nil
		}
		flows = append(flows, f)
	}
}
