package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpiricalValidation(t *testing.T) {
	cases := []struct {
		name   string
		x, cdf []float64
	}{
		{"length mismatch", []float64{1, 2}, []float64{0, 0.5, 1}},
		{"too short", []float64{1}, []float64{1}},
		{"cdf not starting at 0", []float64{1, 2}, []float64{0.1, 1}},
		{"cdf not ending at 1", []float64{1, 2}, []float64{0, 0.9}},
		{"x not increasing", []float64{2, 2}, []float64{0, 1}},
		{"cdf decreasing", []float64{1, 2, 3}, []float64{0, 0.8, 0.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewEmpirical(c.x, c.cdf); err == nil {
				t.Error("accepted invalid input")
			}
		})
	}
	if _, err := NewEmpirical([]float64{1, 10}, []float64{0, 1}); err != nil {
		t.Errorf("rejected valid input: %v", err)
	}
}

func TestEmpiricalUniformCase(t *testing.T) {
	// Two points (0,0)-(10,1) is Uniform(0,10).
	e, err := NewEmpirical([]float64{0, 10}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := e.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Q(0.25) = %v, want 2.5", got)
	}
	rng := rand.New(rand.NewSource(1))
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		v := e.Sample(rng)
		if v < 0 || v > 10 {
			t.Fatalf("sample %v out of support", v)
		}
		sum += v
	}
	if got := sum / float64(n); math.Abs(got-5) > 0.05 {
		t.Errorf("sample mean %v, want ~5", got)
	}
}

func TestWebSearchShape(t *testing.T) {
	ws := WebSearch()
	// Heavy tail: mean near 1.1 MB but median well under 100 KB.
	mean := ws.Mean()
	if mean < 0.8e6 || mean > 1.5e6 {
		t.Errorf("mean = %v, want ~1.1e6", mean)
	}
	med := ws.Quantile(0.5)
	if med > 100e3 {
		t.Errorf("median = %v, want < 100 KB (heavy tail)", med)
	}
	// The paper's small-flow threshold (100 KB) covers roughly half the
	// flows by count.
	rng := rand.New(rand.NewSource(2))
	small := 0
	n := 100000
	for i := 0; i < n; i++ {
		if ws.Sample(rng) < 100e3 {
			small++
		}
	}
	frac := float64(small) / float64(n)
	if frac < 0.5 || frac < 0.45 || frac > 0.7 {
		t.Errorf("small-flow fraction %v, want ~0.57", frac)
	}
}

// Property: quantiles are monotone and sampling respects the support.
func TestPropertyQuantileMonotone(t *testing.T) {
	ws := WebSearch()
	f := func(a, b uint8) bool {
		p1, p2 := float64(a)/255, float64(b)/255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, q2 := ws.Quantile(p1), ws.Quantile(p2)
		return q1 <= q2+1e-9 && q1 >= 1e3-1e-9 && q2 <= 20e6+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the empirical CDF of samples matches the specified CDF at the
// knot points (Glivenko-Cantelli at the table entries).
func TestSamplingMatchesCDF(t *testing.T) {
	ws := WebSearch()
	rng := rand.New(rand.NewSource(3))
	n := 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = ws.Sample(rng)
	}
	check := func(x, wantP float64) {
		count := 0
		for _, s := range samples {
			if s <= x {
				count++
			}
		}
		got := float64(count) / float64(n)
		if math.Abs(got-wantP) > 0.01 {
			t.Errorf("P(X <= %v) = %v, want %v", x, got, wantP)
		}
	}
	check(6e3, 0.15)
	check(53e3, 0.53)
	check(1.333e6, 0.80)
	check(6.667e6, 0.97)
}

func TestGenerateValidation(t *testing.T) {
	ws := WebSearch()
	bad := []Config{
		{Load: 0, Sizes: ws, Senders: 1, Receivers: 1, Horizon: 1},
		{Load: 1, Senders: 1, Receivers: 1, Horizon: 1},
		{Load: 1, Sizes: ws, Senders: 0, Receivers: 1, Horizon: 1},
		{Load: 1, Sizes: ws, Senders: 1, Receivers: 1, Horizon: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateLoadAndPairing(t *testing.T) {
	ws := WebSearch()
	cfg := Config{
		Load:    1e9, // 8 Gb/s
		Sizes:   ws,
		Senders: 10, Receivers: 10,
		Horizon: 20,
		Seed:    7,
	}
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var bytes int64
	usedS := map[int]bool{}
	usedR := map[int]bool{}
	prev := -1.0
	for _, f := range flows {
		if f.Start <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = f.Start
		if f.Start < 0 || f.Start >= cfg.Horizon {
			t.Fatalf("flow start %v outside horizon", f.Start)
		}
		if f.Sender < 0 || f.Sender >= 10 || f.Recv < 0 || f.Recv >= 10 {
			t.Fatalf("flow pairing out of range: %+v", f)
		}
		usedS[f.Sender] = true
		usedR[f.Recv] = true
		bytes += f.Size
	}
	offered := float64(bytes) / cfg.Horizon
	if offered < 0.8e9 || offered > 1.2e9 {
		t.Errorf("offered load %v B/s, want ~1e9", offered)
	}
	if len(usedS) < 8 || len(usedR) < 8 {
		t.Errorf("pairing not spread: %d senders, %d receivers used", len(usedS), len(usedR))
	}
	// Determinism.
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(flows) || again[3] != flows[3] {
		t.Error("same seed produced a different workload")
	}
}

func TestGenerateLoadScaling(t *testing.T) {
	ws := WebSearch()
	count := func(load float64) int {
		flows, err := Generate(Config{Load: load, Sizes: ws, Senders: 5, Receivers: 5, Horizon: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return len(flows)
	}
	lo, hi := count(2.5e8), count(1e9)
	if ratio := float64(hi) / float64(lo); ratio < 3 || ratio > 5.5 {
		t.Errorf("flow count ratio %v for 4x load, want ~4", ratio)
	}
}
