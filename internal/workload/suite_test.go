package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCapacityValidation(t *testing.T) {
	ws := WebSearch()
	base := Config{Load: 1.2e9, Sizes: ws, Senders: 4, Receivers: 4, Horizon: 1, Seed: 1}

	over := base
	over.Capacity = 1e9
	if _, err := Generate(over); err == nil {
		t.Fatal("Generate accepted a load 20% past the bottleneck capacity")
	} else {
		for _, want := range []string{"1.2e+09", "1e+09", "1.20"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("capacity error %q does not name %s", err, want)
			}
		}
	}

	at := base
	at.Load, at.Capacity = 1e9, 1e9
	if _, err := Generate(at); err != nil {
		t.Errorf("load exactly at capacity rejected: %v", err)
	}

	unchecked := base // Capacity zero: the overload regime stays reachable
	if _, err := Generate(unchecked); err != nil {
		t.Errorf("capacity check applied without a Capacity: %v", err)
	}
}

// Draining a PoissonStream reproduces Generate bit-for-bit: the lazy path
// and the slice path are the same process.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := Config{Load: 1e9, Sizes: WebSearch(), Senders: 8, Receivers: 8, Horizon: 5, Seed: 42}
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPoissonStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; ; i++ {
		f, ok := s.Next(rng)
		if !ok {
			if i != len(flows) {
				t.Fatalf("stream ended after %d flows, Generate made %d", i, len(flows))
			}
			break
		}
		if i >= len(flows) {
			t.Fatalf("stream produced more than Generate's %d flows", len(flows))
		}
		if f != flows[i] {
			t.Fatalf("flow %d differs: stream %+v, Generate %+v", i, f, flows[i])
		}
	}
	if _, ok := s.Next(rng); ok {
		t.Error("stream yielded a flow after exhaustion")
	}
	if _, err := NewPoissonStream(Config{Load: 2, Capacity: 1, Sizes: WebSearch(), Senders: 1, Receivers: 1, Horizon: 1}); err == nil {
		t.Error("stream constructor skipped capacity validation")
	}
}

func TestIncast(t *testing.T) {
	flows, err := Incast(IncastConfig{Fanin: 16, Size: 64e3, Start: 0.001, Rounds: 3, Interval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 48 {
		t.Fatalf("%d flows, want 16×3", len(flows))
	}
	for i, f := range flows {
		round, s := i/16, i%16
		want := Flow{ID: i, Start: 0.001 + float64(round)*0.01, Size: 64e3, Sender: s, Recv: 0}
		if f != want {
			t.Fatalf("flow %d = %+v, want %+v", i, f, want)
		}
	}
	bad := []IncastConfig{
		{Fanin: 0, Size: 1},
		{Fanin: 1, Size: 0},
		{Fanin: 1, Size: 1, Start: -1},
		{Fanin: 1, Size: 1, Rounds: 2}, // no interval
	}
	for i, cfg := range bad {
		if _, err := Incast(cfg); err == nil {
			t.Errorf("incast config %d accepted", i)
		}
	}
}

func TestShuffle(t *testing.T) {
	flows, err := Shuffle(ShuffleConfig{Hosts: 6, Size: 1e6, Start: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 30 {
		t.Fatalf("%d flows, want 6×5", len(flows))
	}
	seen := map[[2]int]bool{}
	for _, f := range flows {
		if f.Sender == f.Recv {
			t.Fatalf("self-flow: %+v", f)
		}
		if f.Start != 0.5 || f.Size != 1e6 {
			t.Fatalf("flow not uniform: %+v", f)
		}
		pair := [2]int{f.Sender, f.Recv}
		if seen[pair] {
			t.Fatalf("pair %v appears twice", pair)
		}
		seen[pair] = true
	}
	if _, err := Shuffle(ShuffleConfig{Hosts: 1, Size: 1}); err == nil {
		t.Error("single-host shuffle accepted")
	}
}

func TestStorageBursts(t *testing.T) {
	cfg := BurstConfig{Writers: 4, Targets: 10, Replicas: 3, Size: 256e3, Rate: 500, Horizon: 1, Seed: 9}
	flows, err := StorageBursts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 || len(flows)%3 != 0 {
		t.Fatalf("%d flows, want a positive multiple of Replicas", len(flows))
	}
	// ~500 bursts expected over the horizon; allow wide Poisson slack.
	if bursts := len(flows) / 3; bursts < 350 || bursts > 650 {
		t.Errorf("%d bursts for rate 500 over 1s", bursts)
	}
	for b := 0; b < len(flows); b += 3 {
		targets := map[int]bool{}
		for _, f := range flows[b : b+3] {
			if f.Start != flows[b].Start || f.Sender != flows[b].Sender {
				t.Fatalf("burst at flow %d not synchronized: %+v vs %+v", b, f, flows[b])
			}
			if f.Recv < 0 || f.Recv >= 10 {
				t.Fatalf("replica target out of pool: %+v", f)
			}
			targets[f.Recv] = true
		}
		if len(targets) != 3 {
			t.Fatalf("burst at flow %d reused a server: %v", b, targets)
		}
	}
	again, err := StorageBursts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(flows) || again[1] != flows[1] {
		t.Error("same seed produced a different burst trace")
	}
	if _, err := StorageBursts(BurstConfig{Writers: 1, Targets: 2, Replicas: 3, Size: 1, Rate: 1, Horizon: 1}); err == nil {
		t.Error("more replicas than servers accepted")
	}
}
