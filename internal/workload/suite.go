package workload

import (
	"errors"
	"fmt"
	"math/rand"
)

// This file holds the datacenter workload suite beyond the paper's §5.1
// Poisson/web-search mix: the synchronized patterns (partition-aggregate
// incast, all-to-all shuffle, replicated storage writes) that stress a Clos
// fabric in ways independent Poisson arrivals do not — correlated bursts
// converging on one egress, which is where DCQCN's PFC storms and TIMELY's
// delay inflation actually bite.

// IncastConfig drives Incast: the partition-aggregate pattern where a query
// fans out and every worker's response shard converges on the aggregator at
// once.
type IncastConfig struct {
	// Fanin is the number of synchronized senders (worker shards).
	Fanin int
	// Size is the bytes each sender contributes per round.
	Size int64
	// Start is the first round's arrival time in seconds.
	Start float64
	// Rounds is the number of query rounds; zero means one.
	Rounds int
	// Interval is the gap between rounds in seconds (required when
	// Rounds > 1).
	Interval float64
}

// Incast generates Fanin synchronized flows per round, all toward receiver
// index 0. Sender indexes are 0..Fanin-1; wire them to distinct hosts.
func Incast(cfg IncastConfig) ([]Flow, error) {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 1
	}
	switch {
	case cfg.Fanin <= 0:
		return nil, errors.New("workload: incast Fanin must be positive")
	case cfg.Size <= 0:
		return nil, errors.New("workload: incast Size must be positive")
	case cfg.Start < 0:
		return nil, errors.New("workload: incast Start must be non-negative")
	case rounds > 1 && cfg.Interval <= 0:
		return nil, errors.New("workload: incast with multiple Rounds needs a positive Interval")
	}
	flows := make([]Flow, 0, rounds*cfg.Fanin)
	for r := 0; r < rounds; r++ {
		at := cfg.Start + float64(r)*cfg.Interval
		for s := 0; s < cfg.Fanin; s++ {
			flows = append(flows, Flow{
				ID: len(flows), Start: at, Size: cfg.Size, Sender: s, Recv: 0,
			})
		}
	}
	return flows, nil
}

// ShuffleConfig drives Shuffle: the map→reduce exchange where every host
// sends a partition to every other host.
type ShuffleConfig struct {
	// Hosts is the number of participants; each is both sender and
	// receiver.
	Hosts int
	// Size is the bytes per ordered pair.
	Size int64
	// Start is when the shuffle begins, in seconds.
	Start float64
}

// Shuffle generates the all-to-all exchange: one flow per ordered pair
// (s, r), s ≠ r, all starting together — Hosts×(Hosts−1) flows. Sender and
// receiver indexes both range over 0..Hosts-1.
func Shuffle(cfg ShuffleConfig) ([]Flow, error) {
	switch {
	case cfg.Hosts < 2:
		return nil, errors.New("workload: shuffle needs at least 2 hosts")
	case cfg.Size <= 0:
		return nil, errors.New("workload: shuffle Size must be positive")
	case cfg.Start < 0:
		return nil, errors.New("workload: shuffle Start must be non-negative")
	}
	flows := make([]Flow, 0, cfg.Hosts*(cfg.Hosts-1))
	for s := 0; s < cfg.Hosts; s++ {
		for r := 0; r < cfg.Hosts; r++ {
			if s == r {
				continue
			}
			flows = append(flows, Flow{
				ID: len(flows), Start: cfg.Start, Size: cfg.Size, Sender: s, Recv: r,
			})
		}
	}
	return flows, nil
}

// BurstConfig drives StorageBursts: replicated-write traffic where each
// client write fans out to several storage servers simultaneously.
type BurstConfig struct {
	// Writers is the client pool size (sender indexes).
	Writers int
	// Targets is the storage server pool size (receiver indexes).
	Targets int
	// Replicas is the copies written per burst, to distinct servers.
	Replicas int
	// Size is the bytes per replica write.
	Size int64
	// Rate is the burst arrival rate in bursts/second (Poisson).
	Rate float64
	// Horizon is the generation window in seconds.
	Horizon float64
	// Seed makes the trace reproducible.
	Seed int64
}

// StorageBursts generates Poisson-arriving replication bursts: at each
// arrival a uniformly random writer opens Replicas equal-size flows to
// distinct uniformly random servers, all starting at the arrival instant.
// The correlated fan-out is the point — R replicas can collide on one rack
// even when the average load is low.
func StorageBursts(cfg BurstConfig) ([]Flow, error) {
	switch {
	case cfg.Writers <= 0 || cfg.Targets <= 0:
		return nil, errors.New("workload: storage bursts need writers and targets")
	case cfg.Replicas <= 0:
		return nil, errors.New("workload: Replicas must be positive")
	case cfg.Replicas > cfg.Targets:
		return nil, fmt.Errorf("workload: %d replicas cannot land on distinct servers in a pool of %d", cfg.Replicas, cfg.Targets)
	case cfg.Size <= 0:
		return nil, errors.New("workload: burst Size must be positive")
	case cfg.Rate <= 0:
		return nil, errors.New("workload: burst Rate must be positive")
	case cfg.Horizon <= 0:
		return nil, errors.New("workload: Horizon must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Partial Fisher–Yates scratch for distinct replica targets.
	pool := make([]int, cfg.Targets)
	var flows []Flow
	t := 0.0
	for {
		t += rng.ExpFloat64() / cfg.Rate
		if t >= cfg.Horizon {
			return flows, nil
		}
		w := rng.Intn(cfg.Writers)
		for i := range pool {
			pool[i] = i
		}
		for i := 0; i < cfg.Replicas; i++ {
			j := i + rng.Intn(cfg.Targets-i)
			pool[i], pool[j] = pool[j], pool[i]
			flows = append(flows, Flow{
				ID: len(flows), Start: t, Size: cfg.Size, Sender: w, Recv: pool[i],
			})
		}
	}
}
