// Package prof wires the standard -cpuprofile/-memprofile flags into the
// commands, so any paper-scale run can be inspected with `go tool pprof`
// (see EXPERIMENTS.md, "Profiling a run").
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling if cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, if memPath is non-empty,
// writes a heap profile (after a GC, so it reflects live steady-state
// memory rather than collectable garbage). Either path may be empty; the
// stop function is always non-nil and safe to call once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
