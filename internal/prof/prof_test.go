package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartBothProfiles exercises the real path: start CPU profiling, burn
// a little work, stop, and check both files landed non-empty. The pprof
// format details belong to the runtime; what this package owes callers is
// that the files exist and hold data.
func TestStartBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Give the CPU profiler something to sample and the heap something to hold.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	_ = sink

	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
}

// TestStartEmptyPathsIsNoOp pins the documented contract: both paths empty
// means no files, no error, and a stop function that is still safe to call.
func TestStartEmptyPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("stop function is nil")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartMemOnly writes a heap profile without CPU profiling.
func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

// TestStartBadCPUPath: an uncreatable CPU path fails up front, before any
// profiling starts, so the caller never gets a half-armed stop function.
func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected an error for an uncreatable cpu profile path")
	}
}

// TestStartBadMemPath: an uncreatable heap path surfaces from stop, the
// first moment the file is needed.
func TestStartBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected an error for an uncreatable heap profile path")
	}
}

// TestStartWhileProfilerBusy: the runtime allows one CPU profile at a
// time; a second Start must fail cleanly and close its half-opened file
// rather than leaking it.
func TestStartWhileProfilerBusy(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "cpu1.pprof"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := Start(filepath.Join(dir, "cpu2.pprof"), ""); err == nil {
		t.Fatal("second concurrent CPU profile should fail")
	}
}
