// Quickstart: two DCQCN flows sharing a 40 Gb/s bottleneck.
//
// The program computes the Theorem 1 fixed point analytically, integrates
// the Figure 1 fluid model toward it, and then runs the same scenario on
// the packet-level simulator — the three views of the system this library
// provides. Expected output: all three agree that each flow settles at
// 20 Gb/s with ~20 KB of standing queue.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run prints the three views of the quickstart scenario. quick shortens
// the packet-level leg so tests finish fast; the full run lets the
// simulator settle into the analytical fixed point.
func run(w io.Writer, quick bool) error {
	// 1. The analytical fixed point (Theorem 1, Eq. 9-11).
	params := ecndelay.DefaultDCQCNParams(2)
	fp, err := ecndelay.SolveDCQCNFixedPoint(params)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Theorem 1 fixed point:")
	fmt.Fprintf(w, "  marking probability p* = %.4g\n", fp.P)
	fmt.Fprintf(w, "  queue q*               = %.1f KB\n", fp.Q) // packets of 1 KB
	fmt.Fprintf(w, "  per-flow rate          = %.1f Gb/s\n", fp.RC*1000*8/1e9)

	// 2. The fluid model (Figure 1) integrated for 100 ms.
	sys, err := ecndelay.NewDCQCNFluid(ecndelay.DCQCNFluidConfig{Params: params})
	if err != nil {
		return err
	}
	trajectory := ecndelay.RunFluid(sys, 1e-6, 0.1, 1e-4)
	last := trajectory[len(trajectory)-1]
	fmt.Fprintln(w, "\nFluid model after 100 ms:")
	fmt.Fprintf(w, "  queue  = %.1f KB\n", last.Y[sys.QIndex()])
	fmt.Fprintf(w, "  flow 1 = %.1f Gb/s, flow 2 = %.1f Gb/s\n",
		last.Y[sys.RCIndex(0)]*1000*8/1e9, last.Y[sys.RCIndex(1)]*1000*8/1e9)

	// 3. The packet-level simulator: same scenario, real packets, RED/ECN
	// marking on egress, CNPs on the reverse path.
	horizon, from, to := 50*ecndelay.Millisecond, 0.03, 0.05
	if quick {
		horizon, from, to = 10*ecndelay.Millisecond, 0.006, 0.01
	}
	nw := ecndelay.NewNetwork(1)
	star := ecndelay.NewStar(nw, ecndelay.StarConfig{
		Senders: 2,
		Link:    ecndelay.LinkConfig{Bandwidth: 5e9, PropDelay: ecndelay.Microsecond},
		Mark: func() ecndelay.Marker {
			return &ecndelay.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Rng: nw.Rng}
		},
	})
	if _, err := ecndelay.NewDCQCNEndpoint(star.Receiver, ecndelay.DefaultDCQCNProtoParams()); err != nil {
		return err
	}
	var senders []*ecndelay.DCQCNSender
	for i, h := range star.Senders {
		ep, err := ecndelay.NewDCQCNEndpoint(h, ecndelay.DefaultDCQCNProtoParams())
		if err != nil {
			return err
		}
		s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
		if err != nil {
			return err
		}
		senders = append(senders, s)
	}
	queue := ecndelay.MonitorQueueBytes(nw, star.Bottleneck, 100*ecndelay.Microsecond)
	nw.Sim.RunUntil(ecndelay.Time(horizon))

	q := queue.WindowSummary(from, to)
	fmt.Fprintf(w, "\nPacket-level simulator after %s:\n", horizon)
	fmt.Fprintf(w, "  queue  = %.1f KB (sd %.1f)\n", q.Mean/1000, q.Stddev/1000)
	fmt.Fprintf(w, "  flow 1 = %.1f Gb/s, flow 2 = %.1f Gb/s\n",
		senders[0].Rate()*8/1e9, senders[1].Rate()*8/1e9)
	fmt.Fprintf(w, "  events simulated: %d\n", nw.Sim.Processed())
	return nil
}
