package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Theorem 1 fixed point", "Fluid model", "Packet-level simulator"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
