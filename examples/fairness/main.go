// Fairness: TIMELY's infinitely many fixed points versus the §4.3 patch.
//
// Two flows start at 7 Gb/s and 3 Gb/s on a 10 Gb/s bottleneck. Under
// original TIMELY (Theorem 4) the unfair split freezes: the RTT gradient
// goes to zero with the queue anywhere inside the (T_low, T_high) band and
// nothing ever equalises the rates. Patched TIMELY (Algorithm 2) feeds the
// absolute queue into the rate law, creating the unique fair fixed point
// of Theorem 5 with the Eq. 31 queue.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run prints the two rate trajectories side by side. The fluid
// integrations finish in well under a second, so quick and full runs are
// identical; the flag exists for symmetry with the other examples.
func run(w io.Writer, quick bool) error {
	_ = quick

	sim := func(patched bool) ([]ecndelay.FluidSample, error) {
		cfg := ecndelay.DefaultTimelyFluidConfig(2)
		if patched {
			cfg = ecndelay.DefaultPatchedTimelyFluidConfig(2)
		}
		cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
		var sys ecndelay.FluidModel
		if patched {
			m, err := ecndelay.NewPatchedTimelyFluid(cfg)
			if err != nil {
				return nil, err
			}
			sys = m
		} else {
			m, err := ecndelay.NewTimelyFluid(cfg)
			if err != nil {
				return nil, err
			}
			sys = m
		}
		return ecndelay.RunFluid(sys, 1e-6, 0.5, 0.05), nil
	}

	gbps := func(bytesPerSec float64) float64 { return bytesPerSec * 8 / 1e9 }

	fmt.Fprintln(w, "Two TIMELY flows, 7 Gb/s and 3 Gb/s starts (fluid model)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s | %-25s | %-25s\n", "", "original TIMELY", "patched TIMELY")
	fmt.Fprintf(w, "%-8s | %-12s %-12s | %-12s %-12s\n", "t (ms)", "R1 (Gb/s)", "R2 (Gb/s)", "R1 (Gb/s)", "R2 (Gb/s)")

	orig, err := sim(false)
	if err != nil {
		return err
	}
	patch, err := sim(true)
	if err != nil {
		return err
	}
	// State layout for both TIMELY fluids: y[0]=queue, y[1]=R1, y[3]=R2.
	for i := range orig {
		fmt.Fprintf(w, "%-8.0f | %-12.2f %-12.2f | %-12.2f %-12.2f\n",
			orig[i].T*1e3,
			gbps(orig[i].Y[1]), gbps(orig[i].Y[3]),
			gbps(patch[i].Y[1]), gbps(patch[i].Y[3]))
	}

	lo, po := orig[len(orig)-1], patch[len(patch)-1]
	fmt.Fprintln(w)
	fmt.Fprintf(w, "original TIMELY end ratio: %.2f (unfairness frozen — Theorem 4)\n", lo.Y[1]/lo.Y[3])
	fmt.Fprintf(w, "patched TIMELY end ratio:  %.2f (fair — Theorem 5)\n", po.Y[1]/po.Y[3])

	// The patched fixed-point queue is exactly Eq. 31.
	c := 10e9 / 8.0
	qStar := ecndelay.PatchedTimelyQStar(2, 10e6/8, 0.008, c, c*50e-6)
	fmt.Fprintf(w, "patched queue: %.1f KB measured vs %.1f KB from Eq. 31\n",
		po.Y[0]/1000, qStar/1000)

	// Jain's index over the final rates.
	fmt.Fprintf(w, "Jain index: original %.3f, patched %.3f\n",
		ecndelay.JainIndex([]float64{lo.Y[1], lo.Y[3]}),
		ecndelay.JainIndex([]float64{po.Y[1], po.Y[3]}))
	return nil
}
