package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFairnessRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"original TIMELY end ratio", "patched TIMELY end ratio", "Jain index"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
