package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestStabilityRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DCQCN phase margin", "Patched TIMELY phase margin"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
