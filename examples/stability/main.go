// Stability: the control-theoretic heart of the paper.
//
// The program linearises the DCQCN fluid model around its Theorem 1 fixed
// point and prints the Bode phase-margin map over flow counts and feedback
// delays — making DCQCN's strange non-monotonic stability (Figure 3a)
// visible as a valley of negative margins in the middle of the N axis.
// It then does the same for patched TIMELY (Figure 11), where the margin
// collapses at large N because the Eq. 31 queue drags the feedback delay
// up with it — the structural ECN-vs-delay difference of §5.2.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run prints the phase-margin tables. Everything here is analytical
// (linearisation plus a frequency sweep), so quick and full runs are the
// same computation; the flag exists for symmetry with the other examples.
func run(w io.Writer, quick bool) error {
	_ = quick

	fmt.Fprintln(w, "DCQCN phase margin (degrees) — negative = unstable")
	fmt.Fprintln(w)
	delays := []float64{1e-6, 25e-6, 50e-6, 85e-6, 100e-6}
	fmt.Fprintf(w, "%6s", "N")
	for _, d := range delays {
		fmt.Fprintf(w, "%10.0fµs", d*1e6)
	}
	fmt.Fprintln(w)
	for _, n := range []int{1, 2, 4, 8, 10, 16, 32, 64} {
		fmt.Fprintf(w, "%6d", n)
		for _, d := range delays {
			p := ecndelay.DefaultDCQCNParams(n)
			p.TauStar = d
			loop, err := ecndelay.NewDCQCNLoop(p)
			if err != nil {
				return err
			}
			res, err := ecndelay.PhaseMargin(loop)
			if err != nil {
				return err
			}
			marker := " "
			if !res.Stable {
				marker = "*"
			}
			fmt.Fprintf(w, "%11s", fmt.Sprintf("%.1f%s", res.PhaseMarginDeg, marker))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(*) unstable: note the dip around N≈8-16 at high delay, recovering for many flows —")
	fmt.Fprintln(w, "the non-monotonic behaviour §3.2 derives. Tuning R_AI down or K_max up lifts the valley:")

	for _, tune := range []struct {
		name string
		mod  func(*ecndelay.DCQCNParams)
	}{
		{"default (R_AI=40Mb/s, K_max=200KB)", func(*ecndelay.DCQCNParams) {}},
		{"R_AI=5Mb/s", func(p *ecndelay.DCQCNParams) { p.RAI = 5e6 / 8 / 1000 }},
		{"K_max=1600KB", func(p *ecndelay.DCQCNParams) { p.Kmax = 1600 }},
	} {
		p := ecndelay.DefaultDCQCNParams(10)
		p.TauStar = 85e-6
		tune.mod(&p)
		loop, err := ecndelay.NewDCQCNLoop(p)
		if err != nil {
			return err
		}
		res, err := ecndelay.PhaseMargin(loop)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  N=10, τ*=85µs, %-36s → %+6.1f°\n", tune.name, res.PhaseMarginDeg)
	}

	fmt.Fprintln(w, "\nPatched TIMELY phase margin vs N (Figure 11)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %14s %14s\n", "N", "q* (KB, Eq.31)", "margin (deg)")
	for _, n := range []int{2, 5, 10, 20, 30, 40, 50, 64} {
		cfg := ecndelay.DefaultPatchedTimelyFluidConfig(n)
		loop, err := ecndelay.NewPatchedTimelyLoop(cfg)
		if err != nil {
			return err
		}
		res, err := ecndelay.PhaseMargin(loop)
		if err != nil {
			return err
		}
		sys, err := ecndelay.NewPatchedTimelyFluid(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %14.1f %14.1f\n", n, sys.FixedPointQueue()/1000, res.PhaseMarginDeg)
	}
	fmt.Fprintln(w, "\nDelay-based control cannot escape this: the queue IS the signal, so more flows mean")
	fmt.Fprintln(w, "more queue, more feedback lag, less margin. ECN marked on egress never couples the two.")
	return nil
}
