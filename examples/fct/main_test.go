package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFCTRunsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, proto := range []string{"DCQCN", "TIMELY", "Patched TIMELY"} {
		if !strings.Contains(out, proto) {
			t.Errorf("output missing a row for %q:\n%s", proto, out)
		}
	}
	if !strings.Contains(out, "web-search") {
		t.Errorf("output missing the workload footer:\n%s", out)
	}
}
