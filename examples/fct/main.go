// FCT: the §5.1 case study on the Figure 13 dumbbell.
//
// Ten senders and ten receivers exchange flows drawn from the DCTCP
// web-search size distribution with Poisson arrivals; all links are
// 10 Gb/s. The program compares the small-flow (<100 KB) completion times
// of DCQCN, TIMELY, and patched TIMELY at two load factors — the shape to
// look for is DCQCN winning, with the gap growing at higher loads and
// percentiles (Figure 14/15).
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run prints the FCT comparison table. quick shrinks the horizon and runs
// a single load so the smoke test finishes in seconds; the full run uses
// the paper-scale one-second horizon at two loads.
func run(w io.Writer, quick bool) error {
	loads := []float64{0.4, 0.8}
	horizon, warmup, drain := 1.0, 0.15, 1.0
	if quick {
		loads = []float64{0.8}
		horizon, warmup, drain = 0.1, 0.02, 0.3
	}

	fmt.Fprintln(w, "Small-flow FCT on the dumbbell (load 1.0 = 8 Gb/s offered)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s %-15s %6s %12s %12s %12s %8s\n",
		"load", "protocol", "flows", "median (ms)", "p90 (ms)", "p99 (ms)", "util")

	for _, load := range loads {
		for _, proto := range []ecndelay.Protocol{
			ecndelay.ProtoDCQCN, ecndelay.ProtoTimely, ecndelay.ProtoPatchedTimely,
		} {
			res, err := ecndelay.RunFCT(ecndelay.FCTConfig{
				Protocol:   proto,
				LoadFactor: load,
				Horizon:    horizon,
				Warmup:     warmup,
				Drain:      drain,
				Seed:       1,
			})
			if err != nil {
				return err
			}
			med, err := ecndelay.Percentile(res.SmallFCT, 50)
			if err != nil {
				return err
			}
			p90, _ := ecndelay.Percentile(res.SmallFCT, 90)
			p99, _ := ecndelay.Percentile(res.SmallFCT, 99)
			fmt.Fprintf(w, "%-5.1f %-15s %6d %12.3f %12.3f %12.3f %8.2f\n",
				load, proto, len(res.SmallFCT), med*1e3, p90*1e3, p99*1e3, res.Utilisation)
		}
		fmt.Fprintln(w)
	}

	// The flow-size distribution driving the experiment.
	ws := ecndelay.WebSearchSizes()
	fmt.Fprintf(w, "workload: DCTCP web-search sizes — mean %.2f MB, median %.0f KB, P(size<100KB) ≈ 0.57\n",
		ws.Mean()/1e6, ws.Quantile(0.5)/1e3)
	return nil
}
