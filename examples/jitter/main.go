// Jitter: why ECN survives a noisy feedback path and delay does not (§5.2,
// Figure 20).
//
// Both protocols get the same uniform [0,100µs] random delay injected into
// their feedback. For DCQCN the ECN mark arrives late but intact; for
// (patched) TIMELY the jitter lands inside the RTT measurement itself, so
// the controller reacts to noise as if it were congestion. The program
// prints the late-run queue and rate variability for all four cases.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run prints the jitter-sensitivity table. The fluid integrations are
// already sub-second, so quick and full runs are identical; the flag
// exists for symmetry with the other examples.
func run(w io.Writer, quick bool) error {
	_ = quick

	stats := func(samples []ecndelay.FluidSample, idx int, tFrom float64) ecndelay.Summary {
		var vals []float64
		for _, s := range samples {
			if s.T >= tFrom {
				vals = append(vals, s.Y[idx])
			}
		}
		return ecndelay.Summarize(vals)
	}

	fmt.Fprintln(w, "Uniform [0,100µs] feedback jitter, fluid models, 2 flows")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %-8s %12s %12s\n", "protocol", "jitter", "queue CV", "rate CV")

	for _, jit := range []float64{0, 100e-6} {
		p := ecndelay.DefaultDCQCNParams(2)
		sys, err := ecndelay.NewDCQCNFluid(ecndelay.DCQCNFluidConfig{
			Params: p, JitterMax: jit, Seed: 7,
		})
		if err != nil {
			return err
		}
		sm := ecndelay.RunFluid(sys, 1e-6, 0.2, 1e-4)
		q := stats(sm, sys.QIndex(), 0.12)
		r := stats(sm, sys.RCIndex(0), 0.12)
		fmt.Fprintf(w, "%-16s %-8s %12.4f %12.4f\n", "DCQCN", label(jit), q.CV(), r.CV())
	}
	for _, jit := range []float64{0, 100e-6} {
		cfg := ecndelay.DefaultPatchedTimelyFluidConfig(2)
		cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
		cfg.JitterMax = jit
		cfg.Seed = 7
		sys, err := ecndelay.NewPatchedTimelyFluid(cfg)
		if err != nil {
			return err
		}
		sm := ecndelay.RunFluid(sys, 1e-6, 0.6, 1e-3)
		q := stats(sm, sys.QIndex(), 0.4)
		r := stats(sm, sys.RateIndex(0), 0.4)
		fmt.Fprintf(w, "%-16s %-8s %12.4f %12.4f\n", "patched TIMELY", label(jit), q.CV(), r.CV())
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "The ECN mark is a fact that arrives late; the RTT sample is a measurement that")
	fmt.Fprintln(w, "arrives wrong. Delay-based control gets feedback that is both delayed and noisy.")
	return nil
}

func label(jit float64) string {
	if jit == 0 {
		return "off"
	}
	return fmt.Sprintf("%.0fµs", jit*1e6)
}
