package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestJitterRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DCQCN") || !strings.Contains(out, "patched TIMELY") {
		t.Errorf("output missing a protocol row:\n%s", out)
	}
	if !strings.Contains(out, "100µs") {
		t.Errorf("output missing the jittered case:\n%s", out)
	}
}
