package ecndelay_test

// Facade-level tests: exercise the public API end to end the way a
// downstream user would, without touching internal packages.

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"ecndelay"
)

func TestPublicFixedPointAPI(t *testing.T) {
	p := ecndelay.DefaultDCQCNParams(4)
	fp, err := ecndelay.SolveDCQCNFixedPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	if fp.RC != p.C/4 {
		t.Errorf("fair share %v, want %v", fp.RC, p.C/4)
	}
	approx := ecndelay.DCQCNPStarApprox(p)
	if approx <= 0 || approx/fp.P > 2 || fp.P/approx > 2 {
		t.Errorf("approx %v vs exact %v", approx, fp.P)
	}
	q := ecndelay.PatchedTimelyQStar(2, 1.25e6, 0.008, 1.25e9, 62500)
	if q <= 62500 {
		t.Errorf("Eq.31 queue %v must exceed the reference", q)
	}
}

func TestPublicFluidAPI(t *testing.T) {
	sys, err := ecndelay.NewDCQCNFluid(ecndelay.DCQCNFluidConfig{
		Params: ecndelay.DefaultDCQCNParams(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := ecndelay.RunFluid(sys, 1e-6, 0.05, 1e-3)
	if len(tr) == 0 {
		t.Fatal("empty trajectory")
	}
	last := tr[len(tr)-1]
	fp, err := sys.FixedPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.Y[sys.QIndex()]-fp.Q)/fp.Q > 0.1 {
		t.Errorf("queue %v vs fixed point %v", last.Y[sys.QIndex()], fp.Q)
	}
}

func TestPublicStabilityAPI(t *testing.T) {
	p := ecndelay.DefaultDCQCNParams(8)
	p.TauStar = 85e-6
	loop, err := ecndelay.NewDCQCNLoop(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ecndelay.PhaseMargin(loop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Errorf("N=8 at 85µs should be in the unstable valley (PM=%v)", res.PhaseMarginDeg)
	}
	l, err := ecndelay.LoopGain(loop, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l == 0 {
		t.Error("zero loop gain at low frequency")
	}
}

func TestPublicConvergenceAPI(t *testing.T) {
	cfg := ecndelay.DefaultConvergenceConfig(2)
	cfg.InitialRates = []float64{4e6, 1e6}
	cycles, err := ecndelay.RunConvergence(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	alphaStar, _, err := ecndelay.AlphaFixedPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := ecndelay.GapDecayRate(cycles, 1)
	if rate <= 0 || rate > 1-alphaStar/4 {
		t.Errorf("gap decay %v vs α* %v", rate, alphaStar)
	}
}

func TestPublicPacketSimAPI(t *testing.T) {
	nw := ecndelay.NewNetwork(1)
	star := ecndelay.NewStar(nw, ecndelay.StarConfig{
		Senders: 2,
		Link:    ecndelay.LinkConfig{Bandwidth: 1.25e9, PropDelay: ecndelay.Microsecond},
	})
	rx, err := ecndelay.NewDCQCNEndpoint(star.Receiver, ecndelay.DefaultDCQCNProtoParams())
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	rx.OnComplete = func(c ecndelay.DCQCNCompletion) { done++ }
	_ = rx
	ep, err := ecndelay.NewDCQCNEndpoint(star.Senders[0], ecndelay.DefaultDCQCNProtoParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.NewFlow(0, star.Receiver.ID(), 50000, 0); err != nil {
		t.Fatal(err)
	}
	nw.Sim.Run()
	if done != 1 {
		t.Errorf("completions = %d, want 1", done)
	}
}

func TestPublicWorkloadAndStatsAPI(t *testing.T) {
	ws := ecndelay.WebSearchSizes()
	if ws.Mean() < 0.5e6 {
		t.Errorf("web-search mean %v looks wrong", ws.Mean())
	}
	flows, err := ecndelay.GenerateWorkload(ecndelay.WorkloadConfig{
		Load: 1e8, Sizes: ws, Senders: 2, Receivers: 2, Horizon: 5, Seed: 1,
	})
	if err != nil || len(flows) == 0 {
		t.Fatalf("workload: %v (%d flows)", err, len(flows))
	}
	med, err := ecndelay.Percentile([]float64{3, 1, 2}, 50)
	if err != nil || med != 2 {
		t.Errorf("median %v, %v", med, err)
	}
	if j := ecndelay.JainIndex([]float64{1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("Jain %v", j)
	}
	if pts := ecndelay.CDF([]float64{1, 2}); len(pts) != 2 {
		t.Errorf("CDF %v", pts)
	}
	if s := ecndelay.Summarize([]float64{1, 3}); s.Mean != 2 {
		t.Errorf("Summarize %v", s)
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	if len(ecndelay.Runners()) < 20 {
		t.Errorf("only %d experiments registered", len(ecndelay.Runners()))
	}
	r, ok := ecndelay.GetRunner("params")
	if !ok {
		t.Fatal("params runner missing")
	}
	rep, err := r.Run(ecndelay.ExperimentOptions{Scale: ecndelay.Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "params" || len(rep.Tables) != 2 {
		t.Errorf("unexpected report %+v", rep)
	}
}

func TestPublicJobObserver(t *testing.T) {
	if ecndelay.JobObserver(nil, "fig14") != nil {
		t.Error("JobObserver(nil) must stay nil")
	}
	base := ecndelay.FullObserver()
	jo := ecndelay.JobObserver(base, "fig14/seed1")
	if jo == base {
		t.Fatal("JobObserver must return a copy, not the original")
	}
	if jo.Probes != base.Probes || jo.Check != base.Check ||
		jo.Trace != base.Trace || jo.Metrics != base.Metrics {
		t.Error("the copy must share every facility with the original")
	}
	if got := jo.ProbeName("queue_bytes"); got != "fig14/seed1.queue_bytes" {
		t.Errorf("qualified probe name %q", got)
	}
	// Prefixes compose, so nested orchestration keeps names unique.
	nested := ecndelay.JobObserver(jo, "run2")
	if got := nested.ProbeName("queue_bytes"); got != "fig14/seed1.run2.queue_bytes" {
		t.Errorf("composed probe name %q", got)
	}
	if base.ProbePrefix != "" {
		t.Error("JobObserver mutated the shared observer")
	}
}

// TestPerJobTraceDeterministicAcrossWorkers pins the per-job trace
// contract behind sweep -trace: with TracePerJob installed on a shared
// observer, every job writes its own trace stream through JobObserver,
// and each stream is byte-identical whether the jobs run serially or
// race across four workers.
func TestPerJobTraceDeterministicAcrossWorkers(t *testing.T) {
	protos := []ecndelay.Protocol{ecndelay.ProtoDCQCN, ecndelay.ProtoTimely}
	runAll := func(workers int) map[string][]byte {
		var mu sync.Mutex
		bufs := map[string]*bytes.Buffer{}
		var sinks []*ecndelay.TraceJSONLSink
		shared := &ecndelay.Observer{
			TracePerJob: func(jobID string) *ecndelay.Tracer {
				mu.Lock()
				defer mu.Unlock()
				b := &bytes.Buffer{}
				bufs[jobID] = b
				sink := ecndelay.NewTraceJSONLSink(b)
				sinks = append(sinks, sink)
				return ecndelay.NewTracer(sink)
			},
		}
		var jobs []ecndelay.SweepJob
		for _, proto := range protos {
			for _, seed := range []int64{1, 2} {
				proto, seed := proto, seed
				id := fmt.Sprintf("%s/seed%d", proto, seed)
				jobs = append(jobs, ecndelay.SweepJob{
					ID: id,
					Run: func(int64) (map[string]float64, error) {
						cfg := ecndelay.FCTConfig{
							Protocol: proto, LoadFactor: 1.2,
							Horizon: 0.004, Warmup: 0.001, Drain: 0.05,
							Seed:     seed,
							Observer: ecndelay.JobObserver(shared, id),
						}
						if _, err := ecndelay.RunFCT(cfg); err != nil {
							return nil, err
						}
						return map[string]float64{"ok": 1}, nil
					},
				})
			}
		}
		sum, err := ecndelay.RunSweep(ecndelay.SweepConfig{Workers: workers},
			jobs, &ecndelay.SweepMemorySink{})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 || sum.Executed != len(jobs) {
			t.Fatalf("workers=%d summary %+v", workers, sum)
		}
		for _, s := range sinks {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}
		out := make(map[string][]byte, len(bufs))
		for id, b := range bufs {
			out[id] = b.Bytes()
		}
		return out
	}
	serial := runAll(1)
	if len(serial) != 2*len(protos) {
		t.Fatalf("got %d per-job trace streams, want %d", len(serial), 2*len(protos))
	}
	for id, b := range serial {
		if len(b) == 0 {
			t.Fatalf("job %s produced an empty trace", id)
		}
	}
	parallel := runAll(4)
	for id, want := range serial {
		if got, ok := parallel[id]; !ok {
			t.Errorf("parallel run missing trace for job %s", id)
		} else if !bytes.Equal(got, want) {
			t.Errorf("job %s trace differs between 1 and 4 workers (%d vs %d bytes)",
				id, len(want), len(got))
		}
	}
}
