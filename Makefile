# CI gates for the ecndelay reproduction. `make ci` is the full gate;
# `make race` is the correctness gate for the concurrent sweep engine.

GO ?= go

.PHONY: ci build vet fmt test race bench bench-smoke

ci: fmt vet build test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race gate for the concurrent code paths: the sweep engine, the
# experiment registry it drives, and the pooled event/packet engines
# underneath them.
race:
	$(GO) test -race ./internal/des ./internal/netsim ./internal/sweep ./internal/exp

bench:
	$(GO) test -bench=Sweep -run='^$$' .

# Alloc-regression gate: run the hot-path microbenchmarks once and the
# AllocsPerRun guards that pin the steady-state paths at 0 allocs/op.
bench-smoke:
	$(GO) test -run='^$$' -bench='HandlerEvents|ClosureEvents|PortChain' \
		-benchmem -benchtime=1x ./internal/des ./internal/netsim
	$(GO) test -run='AllocFree' ./internal/des ./internal/netsim
