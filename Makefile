# CI gates for the ecndelay reproduction. `make ci` is the full gate;
# `make race` is the correctness gate for the concurrent sweep engine.

GO ?= go

.PHONY: ci build vet fmt test race bench

ci: fmt vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race gate for the concurrent code paths: the sweep engine and the
# experiment registry it drives.
race:
	$(GO) test -race ./internal/sweep ./internal/exp

bench:
	$(GO) test -bench=Sweep -run='^$$' .
